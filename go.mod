module github.com/cidr09/unbundled

go 1.23
