// Command soak runs a chaos soak against a real fleet: unbundled-dc OS
// processes serving stable media over TCP, an in-process fleet of TCs
// driving open-loop load at them, and three kinds of injected trouble —
// wire-level frame loss (DialConfig.DropProb), kill -9/restart of DC
// processes, and operator drains through the real HTTP admin endpoint.
//
// The soak is an oracle, not a load generator: every committed
// transaction's unique keys are remembered and read back at the end, so
// "no lost committed writes" is checked exactly, whatever the fleet
// suffered in between. Metrics-level invariants ride along, read from the
// same /stats endpoints an operator would curl: commits flowed, kills
// were actually ridden out by the resend/redial path (resends and
// reconnects nonzero), and every drained TC quiesced within the bound.
//
//	soak -dc-bin ./bin/unbundled-dc -duration 60s
//
// Exit status 0 and a final "SOAK OK" line mean every invariant held.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/core"
	"github.com/cidr09/unbundled/internal/placement"
	"github.com/cidr09/unbundled/internal/stats"
	"github.com/cidr09/unbundled/internal/tc"
	"github.com/cidr09/unbundled/internal/wire"
)

func main() {
	dcBin := flag.String("dc-bin", "unbundled-dc", "path to the unbundled-dc binary")
	dcCount := flag.Int("dcs", 2, "DC processes to run")
	tcCount := flag.Int("tcs", 2, "TCs to run (in this process); >1 lets drains re-route load")
	duration := flag.Duration("duration", 60*time.Second, "how long to drive load")
	load := flag.Int("load", 150, "target transactions per second (open loop)")
	opsPer := flag.Int("ops", 2, "writes per transaction")
	dropProb := flag.Float64("drop-prob", 0.02, "injected outbound frame-loss probability per TC:DC connection (0: none)")
	killEvery := flag.Duration("kill-every", 15*time.Second, "kill -9 and restart a DC process this often (0: never)")
	drainEvery := flag.Duration("drain-every", 12*time.Second, "drain+undrain a TC through its admin endpoint this often (0: never)")
	quiesceBound := flag.Duration("quiesce-bound", 15*time.Second, "a drained TC must quiesce within this bound")
	dir := flag.String("dir", "", "working directory for DC stable media (empty: a temp dir, removed on success)")
	seed := flag.Int64("seed", 1, "chaos schedule seed")
	flag.Parse()

	if err := run(soakConfig{
		dcBin: *dcBin, dcs: *dcCount, tcs: *tcCount, duration: *duration,
		load: *load, ops: *opsPer, dropProb: *dropProb,
		killEvery: *killEvery, drainEvery: *drainEvery, quiesceBound: *quiesceBound,
		dir: *dir, seed: *seed,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "soak: SOAK FAILED:", err)
		os.Exit(1)
	}
}

type soakConfig struct {
	dcBin        string
	dcs, tcs     int
	duration     time.Duration
	load, ops    int
	dropProb     float64
	killEvery    time.Duration
	drainEvery   time.Duration
	quiesceBound time.Duration
	dir          string
	seed         int64
}

// dcProc is one supervised unbundled-dc process. Restarting after a kill
// reuses the same listen and data directory, so the new incarnation is the
// same DC as far as the TCs' redial supervision is concerned.
type dcProc struct {
	idx        int
	dir        string
	addr       string // service listen address, fixed across restarts
	cmd        *exec.Cmd
	stdoutDone chan struct{}

	mu        sync.Mutex
	adminAddr string // admin endpoint address, re-parsed per incarnation
}

// admin returns the current incarnation's admin address; restart replaces
// it from the chaos goroutine while the queue watchdog reads it.
func (p *dcProc) admin() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.adminAddr
}

func run(cfg soakConfig) error {
	if cfg.dir == "" {
		tmp, err := os.MkdirTemp("", "soak-")
		if err != nil {
			return err
		}
		cfg.dir = tmp
		defer os.RemoveAll(tmp)
	}

	// --- fleet assembly -------------------------------------------------
	dcs := make([]*dcProc, cfg.dcs)
	defer func() {
		for _, p := range dcs {
			if p != nil && p.cmd != nil && p.cmd.Process != nil {
				p.cmd.Process.Kill()
				p.cmd.Wait()
			}
		}
	}()
	for i := range dcs {
		p, err := startDC(cfg.dcBin, i, filepath.Join(cfg.dir, fmt.Sprintf("dc%d", i)), "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("start dc %d: %w", i, err)
		}
		dcs[i] = p
		fmt.Printf("soak: dc%d on %s (admin %s)\n", i, p.addr, p.adminAddr)
	}
	addrs := make([]string, len(dcs))
	for i, p := range dcs {
		addrs[i] = p.addr
	}

	// Ownerless placement: any TC may update any key, so draining one TC
	// legally re-routes its load to the others.
	pl := placement.MustParse(fmt.Sprintf("kv: dc=hash(%d) owner=any", cfg.dcs))
	dep, err := core.New(core.Options{
		TCs:        cfg.tcs,
		DCAddrs:    addrs,
		Placement:  pl,
		TCConfig:   func(i int) tc.Config { return tc.Config{ID: base.TCID(i + 1), Pipeline: true} },
		DialConfig: wire.DialConfig{DropProb: cfg.dropProb, DropSeed: cfg.seed},
	})
	if err != nil {
		return err
	}
	defer dep.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = dep.WaitConnected(ctx)
	cancel()
	if err != nil {
		return fmt.Errorf("connect: %w", err)
	}
	if err := dep.ValidatePlacement(context.Background()); err != nil {
		return err
	}

	// One admin endpoint per TC, sharing one registry: exactly the shape a
	// one-TC-per-process fleet exposes, compressed into one soak binary.
	reg := dep.StatsRegistry()
	admins := make([]*stats.Admin, cfg.tcs)
	for i, target := range dep.Drainables() {
		adm, err := stats.Serve("127.0.0.1:0", reg, target)
		if err != nil {
			return err
		}
		defer adm.Close()
		admins[i] = adm
		fmt.Printf("soak: tc%d admin on %s\n", i+1, adm.Addr())
	}

	// --- open-loop load -------------------------------------------------
	o := &oracle{}
	var committedTxns, ambiguousTxns, failedTxns, shedTxns atomic.Uint64
	client := dep.Client()
	value := func(seq uint64, j int) []byte {
		return []byte(fmt.Sprintf("v:%d:%d", seq, j))
	}
	stopLoad := make(chan struct{})
	var inflight sync.WaitGroup
	sem := make(chan struct{}, 256)
	var seq atomic.Uint64
	runOne := func(s uint64) {
		defer inflight.Done()
		defer func() { <-sem }()
		err := client.RunTxn(context.Background(), core.TxnOptions{MaxAttempts: 64}, func(x *tc.Txn) error {
			for j := 0; j < cfg.ops; j++ {
				if err := x.Upsert("kv", soakKey(s, j), value(s, j)); err != nil {
					return err
				}
			}
			return nil
		})
		switch {
		case err == nil:
			committedTxns.Add(1)
			o.commit(s)
		case errors.Is(err, tc.ErrCommitAmbiguous):
			ambiguousTxns.Add(1)
			o.maybe(s)
		default:
			failedTxns.Add(1)
		}
	}
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		interval := time.Second / time.Duration(cfg.load)
		if interval <= 0 {
			interval = time.Millisecond
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stopLoad:
				return
			case <-tick.C:
				select {
				case sem <- struct{}{}:
					inflight.Add(1)
					go runOne(seq.Add(1))
				default:
					// Open loop with a concurrency cap: when the fleet is
					// riding out an outage, offered load is shed, not queued.
					shedTxns.Add(1)
				}
			}
		}
	}()

	// --- chaos ----------------------------------------------------------
	// One scheduler goroutine runs kill and drain actions sequentially, so
	// a quiesce bound is never measured against a concurrently-injected DC
	// outage in the same instant (loss injection stays always-on).
	rnd := rand.New(rand.NewSource(cfg.seed))
	var kills, drains int
	chaosErrCh := make(chan error, 1)
	stopChaos := make(chan struct{})
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		killC, drainC := neverTick(), neverTick()
		if cfg.killEvery > 0 {
			t := time.NewTicker(cfg.killEvery)
			defer t.Stop()
			killC = t.C
		}
		if cfg.drainEvery > 0 {
			t := time.NewTicker(cfg.drainEvery)
			defer t.Stop()
			drainC = t.C
		}
		for {
			select {
			case <-stopChaos:
				return
			case <-killC:
				i := rnd.Intn(len(dcs))
				fmt.Printf("soak: chaos: kill -9 dc%d\n", i)
				if err := dcs[i].restart(cfg.dcBin); err != nil {
					select {
					case chaosErrCh <- fmt.Errorf("restart dc%d: %w", i, err):
					default:
					}
					return
				}
				kills++
			case <-drainC:
				i := rnd.Intn(len(admins))
				fmt.Printf("soak: chaos: drain tc%d\n", i+1)
				if err := drainCycle(admins[i].Addr(), cfg.quiesceBound); err != nil {
					select {
					case chaosErrCh <- fmt.Errorf("drain tc%d: %w", i+1, err):
					default:
					}
					return
				}
				drains++
			}
		}
	}()

	// --- worker-queue watchdog --------------------------------------------
	// The DC server runtime promises bounded queueing: depth can never
	// exceed workers x queue-depth, whatever the load does, because the
	// excess is refused as typed overloads instead. Sample every DC's
	// /stats wire group throughout the soak and fail the moment the
	// promise breaks.
	queueErrCh := make(chan error, 1)
	var maxQueueDepth uint64
	stopWatch := make(chan struct{})
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopWatch:
				return
			case <-tick.C:
				for _, p := range dcs {
					snap, err := fetchStats(p.admin())
					if err != nil {
						continue // DC mid-restart; the kill arm owns that window
					}
					w := snap["wire"]
					c, d := w["worker_queue_cap"], w["worker_queue_depth"]
					if d > maxQueueDepth {
						maxQueueDepth = d
					}
					if c > 0 && d > c {
						select {
						case queueErrCh <- fmt.Errorf(
							"dc%d worker queues exceed their cap: depth=%d cap=%d", p.idx, d, c):
						default:
						}
						return
					}
				}
			}
		}
	}()

	// --- run, then wind down --------------------------------------------
	fmt.Printf("soak: driving ~%d txn/s for %v over %d TCs, %d DCs (drop-prob %.3f)\n",
		cfg.load, cfg.duration, cfg.tcs, cfg.dcs, cfg.dropProb)
	var chaosErr error
	select {
	case <-time.After(cfg.duration):
	case chaosErr = <-chaosErrCh:
	}
	close(stopChaos)
	<-chaosDone
	if chaosErr == nil {
		select {
		case chaosErr = <-chaosErrCh:
		default:
		}
	}
	close(stopLoad)
	<-loadDone
	inflight.Wait()
	close(stopWatch)
	<-watchDone
	if chaosErr == nil {
		select {
		case chaosErr = <-queueErrCh:
		default:
		}
	}
	if chaosErr != nil {
		return chaosErr
	}
	fmt.Printf("soak: load done: committed=%d ambiguous=%d failed=%d shed=%d kills=%d drains=%d\n",
		committedTxns.Load(), ambiguousTxns.Load(), failedTxns.Load(), shedTxns.Load(), kills, drains)

	// --- invariants -----------------------------------------------------
	// 1. No lost committed writes: every key of every committed transaction
	// reads back with its final value; ambiguous commits may have landed or
	// not, but a landed one must be intact.
	lost := 0
	verify := func(seqs []uint64, mustExist bool) error {
		for start := 0; start < len(seqs); start += 64 {
			batch := seqs[start:min(start+64, len(seqs))]
			err := client.RunTxn(context.Background(), core.TxnOptions{MaxAttempts: 64}, func(x *tc.Txn) error {
				for _, s := range batch {
					for j := 0; j < cfg.ops; j++ {
						got, ok, err := x.Read("kv", soakKey(s, j))
						if err != nil {
							return err
						}
						if !ok {
							if mustExist {
								lost++
								fmt.Printf("soak: LOST committed write %s\n", soakKey(s, j))
							}
							continue
						}
						if want := value(s, j); string(got) != string(want) {
							lost++
							fmt.Printf("soak: CORRUPT %s: got %q want %q\n", soakKey(s, j), got, want)
						}
					}
				}
				return nil
			})
			if err != nil {
				return fmt.Errorf("verify read: %w", err)
			}
		}
		return nil
	}
	if err := verify(o.committed, true); err != nil {
		return err
	}
	if err := verify(o.ambiguous, false); err != nil {
		return err
	}
	if lost > 0 {
		return fmt.Errorf("%d lost or corrupt committed writes", lost)
	}

	// 2. Metrics invariants, read from the same endpoints an operator has:
	// the TC-side registry over HTTP, and each DC process's /stats.
	snap, err := fetchStats(admins[0].Addr())
	if err != nil {
		return err
	}
	commits := uint64(0)
	for g, vals := range snap {
		if strings.HasPrefix(g, "tc") {
			commits += vals["commits"]
		}
	}
	if commits == 0 {
		return fmt.Errorf("/stats reports zero commits across the TC fleet")
	}
	if _, ok := snap["wire"]; !ok {
		return fmt.Errorf("/stats has no wire group")
	}
	ws := dep.RemoteWireStats()
	if kills > 0 && (ws.Resends == 0 || ws.Reconnects == 0) {
		return fmt.Errorf("%d DC kills but resends=%d reconnects=%d — the outage was not ridden out by the wire layer",
			kills, ws.Resends, ws.Reconnects)
	}
	if cfg.dropProb > 0 && ws.Resends == 0 {
		return fmt.Errorf("drop-prob %.3f but zero resends — loss injection is not reaching the wire", cfg.dropProb)
	}
	for _, p := range dcs {
		dsnap, err := fetchStats(p.admin())
		if err != nil {
			return fmt.Errorf("dc%d stats: %w", p.idx, err)
		}
		if dsnap["dc"]["performs"] == 0 {
			return fmt.Errorf("dc%d /stats reports zero performs", p.idx)
		}
		// 3. Bounded, drained worker queues: the server pool must report a
		// real cap and, with the load long stopped, an empty queue — work
		// admitted is work finished, not work parked.
		w := dsnap["wire"]
		if w["worker_queue_cap"] == 0 {
			return fmt.Errorf("dc%d /stats reports no worker queue capacity", p.idx)
		}
		deadline := time.Now().Add(5 * time.Second)
		for w["worker_queue_depth"] != 0 {
			if time.Now().After(deadline) {
				return fmt.Errorf("dc%d worker queues not drained after load stopped: depth=%d",
					p.idx, w["worker_queue_depth"])
			}
			time.Sleep(100 * time.Millisecond)
			if dsnap, err = fetchStats(p.admin()); err != nil {
				return fmt.Errorf("dc%d stats: %w", p.idx, err)
			}
			w = dsnap["wire"]
		}
	}

	fmt.Printf("soak: SOAK OK: commits=%d resends=%d reconnects=%d kills=%d drains=%d max-queue-depth=%d lost=0\n",
		commits, ws.Resends, ws.Reconnects, kills, drains, maxQueueDepth)
	return nil
}

func soakKey(seq uint64, j int) string { return fmt.Sprintf("s-%010d-%d", seq, j) }

// neverTick returns a channel no ticker feeds: a disabled chaos arm.
func neverTick() <-chan time.Time { return make(chan time.Time) }

// oracle remembers which transactions definitely committed (keys must read
// back) and which ended ambiguous (keys may have landed).
type oracle struct {
	mu        sync.Mutex
	committed []uint64
	ambiguous []uint64
}

func (o *oracle) commit(s uint64) {
	o.mu.Lock()
	o.committed = append(o.committed, s)
	o.mu.Unlock()
}

func (o *oracle) maybe(s uint64) {
	o.mu.Lock()
	o.ambiguous = append(o.ambiguous, s)
	o.mu.Unlock()
}

// startDC spawns one unbundled-dc and waits for both readiness lines
// (service and admin), parsing the bound addresses so ":0" listens work.
func startDC(bin string, idx int, dir, listen string) (*dcProc, error) {
	cmd := exec.Command(bin,
		"-listen", listen, "-admin", "127.0.0.1:0",
		"-tables", "kv", "-dir", dir, "-name", fmt.Sprintf("dc%d", idx))
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &dcProc{idx: idx, dir: dir, cmd: cmd, stdoutDone: make(chan struct{})}
	addrCh := make(chan [2]string, 1)
	go func() {
		defer close(p.stdoutDone)
		var svc, admin string
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			fields := strings.Fields(line)
			switch {
			case strings.Contains(line, "admin listening on"):
				admin = fields[len(fields)-1]
			case strings.Contains(line, " listening on "):
				// "unbundled-dc: dcN listening on ADDR (tables: ...)"
				for i, f := range fields {
					if f == "on" && i+1 < len(fields) {
						svc = fields[i+1]
					}
				}
			}
			if svc != "" && admin != "" {
				select {
				case addrCh <- [2]string{svc, admin}:
				default:
				}
				svc = "" // report once per incarnation
			}
		}
	}()
	select {
	case a := <-addrCh:
		p.addr, p.adminAddr = a[0], a[1]
		return p, nil
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("dc %d: no readiness line within 10s", idx)
	}
}

// restart kill -9s the process and brings up a new incarnation on the
// same listen address over the same stable media. The freshly-released
// port can linger briefly, so the respawn retries.
func (p *dcProc) restart(bin string) error {
	p.cmd.Process.Kill()
	p.cmd.Wait()
	<-p.stdoutDone
	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		np, err := startDC(bin, p.idx, p.dir, p.addr)
		if err == nil {
			p.cmd, p.stdoutDone = np.cmd, np.stdoutDone
			p.mu.Lock()
			p.adminAddr = np.adminAddr
			p.mu.Unlock()
			return nil
		}
		lastErr = err
		time.Sleep(100 * time.Millisecond)
	}
	return lastErr
}

// adminHealth mirrors the stats.Admin health body.
type adminHealth struct {
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
	Quiesced bool   `json:"quiesced"`
}

// drainCycle drains one TC through its real admin endpoint, polls
// /healthz until it reports quiesced (failing the soak if the bound is
// exceeded), holds the drain briefly, then undrains. Undrain always runs —
// a failed cycle must not leave the TC shedding load for the rest of the
// soak, or every later invariant measures a degraded fleet.
func drainCycle(adminAddr string, bound time.Duration) error {
	defer func() {
		resp, err := http.Get("http://" + adminAddr + "/undrain")
		if err == nil {
			resp.Body.Close()
		}
	}()
	resp, err := http.Get("http://" + adminAddr + "/drain")
	if err != nil {
		return err
	}
	resp.Body.Close()
	deadline := time.Now().Add(bound)
	for {
		resp, err := http.Get("http://" + adminAddr + "/healthz")
		if err != nil {
			return err
		}
		var h adminHealth
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if !h.Draining {
			return fmt.Errorf("drain did not take: /healthz says %q", h.Status)
		}
		if h.Quiesced {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("not quiesced within %v", bound)
		}
		time.Sleep(25 * time.Millisecond)
	}
	// Hold the quiesced state long enough that new load provably flowed
	// around the drained TC in the meantime.
	time.Sleep(500 * time.Millisecond)
	return nil
}

// fetchStats GETs /stats and decodes the two-level registry snapshot.
func fetchStats(adminAddr string) (map[string]map[string]uint64, error) {
	resp, err := http.Get("http://" + adminAddr + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var snap map[string]map[string]uint64
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return snap, nil
}
