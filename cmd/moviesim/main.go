// Command moviesim runs the Figure-2 movie-site deployment interactively:
// two updating TCs partitioned by user, one reader TC, Movies/Reviews
// partitioned by movie over two DCs and Users/MyReviews over a third.
// It drives the W1–W4 mix for the requested duration, optionally crashing
// components along the way, and prints per-workload statistics.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cidr09/unbundled/internal/core"
	"github.com/cidr09/unbundled/internal/tc"
	"github.com/cidr09/unbundled/internal/workload"
)

func main() {
	dur := flag.Duration("duration", 3*time.Second, "how long to run the mix")
	users := flag.Int("users", 500, "number of users")
	movies := flag.Int("movies", 100, "number of movies")
	crash := flag.Bool("crash", false, "crash TC1 and DC0 mid-run and recover")
	flag.Parse()

	p := workload.MoviePlacement{MovieDCs: 2, UserDCs: 1, Movies: *movies, Users: *users}
	const updateTCs = 2
	dep, err := core.New(core.Options{
		TCs: updateTCs + 1, DCs: 3,
		Placement: p.Placement(updateTCs),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer dep.Close()

	fmt.Printf("deployment: %d updating TCs + 1 reader TC over %d DCs\n", updateTCs, 3)
	ctx := context.Background()
	client := dep.Client()
	seed(ctx, client, p, updateTCs)

	var w1, w2, w3, w4, errs atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(g) + 7))
			// 1-based TC IDs: the reader TC follows the updating TCs.
			// ReadOnly makes W1 a timestamp snapshot: the scan is served
			// by the DCs at the read timestamp, lock-free, with no
			// operation through the reader TC.
			reader := core.TxnOptions{TC: updateTCs + 1, ReadOnly: true}
			for {
				select {
				case <-stop:
					return
				default:
				}
				u := rnd.Intn(p.Users)
				m := rnd.Intn(p.Movies)
				owner := core.TxnOptions{TC: p.OwnerTC(u, updateTCs) + 1}
				ownerV := core.TxnOptions{TC: owner.TC, Versioned: true}
				var err error
				switch rnd.Intn(10) {
				case 0, 1, 2, 3, 4, 5: // W1 dominates (reads are most common, §6.3)
					prefix := workload.MovieKey(m) + "/"
					err = client.RunTxn(ctx, reader, func(x *tc.Txn) error {
						_, _, e := x.Scan(workload.TableReviews, prefix, prefix+"~", 0)
						return e
					})
					w1.Add(1)
				case 6, 7: // W2 add review
					review := []byte(fmt.Sprintf("review m%d u%d", m, u))
					err = client.RunTxn(ctx, ownerV, func(x *tc.Txn) error {
						if e := x.Upsert(workload.TableReviews, workload.ReviewKey(m, u), review); e != nil {
							return e
						}
						return x.Upsert(workload.TableMyReviews, workload.MyReviewKey(u, m), review)
					})
					w2.Add(1)
				case 8: // W3 update profile
					err = client.RunTxn(ctx, ownerV, func(x *tc.Txn) error {
						return x.Upsert(workload.TableUsers, workload.UserKey(u),
							[]byte(fmt.Sprintf("profile-%d@%d", u, time.Now().UnixNano())))
					})
					w3.Add(1)
				case 9: // W4 my reviews
					prefix := workload.UserKey(u) + "/"
					err = client.RunTxn(ctx, owner, func(x *tc.Txn) error {
						_, _, e := x.Scan(workload.TableMyReviews, prefix, prefix+"~", 0)
						return e
					})
					w4.Add(1)
				}
				if err != nil {
					errs.Add(1)
				}
			}
		}(g)
	}

	if *crash {
		time.Sleep(*dur / 3)
		fmt.Println("!! crashing TC1 (owner of even users) — odd users keep going;" +
			" fresh snapshots stall until TC1's safe timestamp resumes")
		dep.CrashTC(0)
		time.Sleep(*dur / 6)
		if err := dep.RecoverTC(0); err != nil {
			fmt.Fprintln(os.Stderr, "recover TC1:", err)
			os.Exit(1)
		}
		fmt.Println("!! TC1 recovered (targeted DC page resets; other TCs undisturbed)")
		time.Sleep(*dur / 6)
		fmt.Println("!! crashing DC0 (half the movies)")
		dep.CrashDC(0)
		time.Sleep(*dur / 6)
		if err := dep.RecoverDC(0); err != nil {
			fmt.Fprintln(os.Stderr, "recover DC0:", err)
			os.Exit(1)
		}
		fmt.Println("!! DC0 recovered (DC-log replay, then TC redo resend)")
		time.Sleep(*dur / 6)
	} else {
		time.Sleep(*dur)
	}
	close(stop)
	wg.Wait()

	total := w1.Load() + w2.Load() + w3.Load() + w4.Load()
	fmt.Printf("\ncompleted %d transactions in %v (%d failed/retried away)\n",
		total, *dur, errs.Load())
	fmt.Printf("  W1 obtain reviews for movie : %7d\n", w1.Load())
	fmt.Printf("  W2 add movie review         : %7d\n", w2.Load())
	fmt.Printf("  W3 update user profile      : %7d\n", w3.Load())
	fmt.Printf("  W4 obtain reviews by user   : %7d\n", w4.Load())
	for i, dci := range dep.DCs {
		st := dci.Stats()
		fmt.Printf("  DC%d: %d operations, %d snapshot reads, %d idempotent skips, %d reset pages\n",
			i, st.Performs, st.SnapshotReads, st.DupSkips, st.ResetPages)
	}
	rtc := dep.TCs[updateTCs]
	fmt.Printf("  reader TC: %d snapshots, %d locks acquired, %d ops sent\n",
		rtc.Stats().Snapshots, rtc.Locks().Stats().Acquired, rtc.Stats().OpsSent)
}

func seed(ctx context.Context, client *core.Client, p workload.MoviePlacement, updateTCs int) {
	if err := client.RunTxn(ctx, core.TxnOptions{TC: 1}, func(x *tc.Txn) error {
		for m := 0; m < p.Movies; m++ {
			if err := x.Upsert(workload.TableMovies, workload.MovieKey(m),
				[]byte(fmt.Sprintf("movie-%d", m))); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		fmt.Fprintln(os.Stderr, "seed movies:", err)
		os.Exit(1)
	}
	for u := 0; u < p.Users; u++ {
		owner := core.TxnOptions{TC: p.OwnerTC(u, updateTCs) + 1, Versioned: true}
		if err := client.RunTxn(ctx, owner, func(x *tc.Txn) error {
			return x.Upsert(workload.TableUsers, workload.UserKey(u),
				[]byte(fmt.Sprintf("profile-%d", u)))
		}); err != nil {
			fmt.Fprintln(os.Stderr, "seed users:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("seeded %d movies, %d users\n", p.Movies, p.Users)
}
