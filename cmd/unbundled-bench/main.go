// Command unbundled-bench regenerates every table in EXPERIMENTS.md: the
// reproduction of the paper's figures and claims (see DESIGN.md §4 for the
// experiment index). Run with -quick for a fast smoke pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/cidr09/unbundled/internal/experiments"
	"github.com/cidr09/unbundled/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "run the reduced smoke configuration")
	only := flag.String("only", "", "run a single experiment (E1..E9, F1, F2)")
	flag.Parse()

	s := experiments.DefaultScale()
	if *quick {
		s = experiments.QuickScale()
	}

	exps := []struct {
		id, title string
		run       func(experiments.Scale) *harness.Table
	}{
		{"E1", "unbundled vs monolithic kernel (§7 'longer code paths')", experiments.E1},
		{"E2", "abstract-LSN space vs per-record LSNs (§5.1.2)", experiments.E2},
		{"E3", "page-sync strategies 1/2/3 (§5.1.2)", experiments.E3},
		{"E4", "range locking: fetch-ahead vs static ranges (§3.1)", experiments.E4},
		{"E5", "system-transaction recovery: splits & consolidates (§5.2)", experiments.E5},
		{"E6", "partial failures: DC crash redo; TC crash targeted reset (§5.3)", experiments.E6},
		{"E7", "multiple TCs per DC; non-blocking readers, no 2PC (§6)", experiments.E7},
		{"E8", "DC instance scaling behind one TC (§1.1(3))", experiments.E8},
		{"E9", "snapshot vs locked reads under write contention", experiments.E9},
		{"F1", "Figure 1: heterogeneous TC/DC deployment", experiments.F1},
		{"F2", "Figure 2 + §6.3: movie site workloads W1–W4", experiments.F2},
	}

	for _, e := range exps {
		if *only != "" && *only != e.id {
			continue
		}
		fmt.Printf("== %s: %s ==\n", e.id, e.title)
		start := time.Now()
		tab := e.run(s)
		tab.Fprint(os.Stdout)
		fmt.Printf("(%s)\n\n", time.Since(start).Round(time.Millisecond))
	}
}
