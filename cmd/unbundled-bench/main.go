// Command unbundled-bench regenerates every table in EXPERIMENTS.md: the
// reproduction of the paper's figures and claims (see DESIGN.md §4 for the
// experiment index). Run with -quick for a fast smoke pass.
//
// The -throughput mode runs the open-loop TCP throughput comparison
// instead (per-request-goroutine baseline vs the sharded worker pool with
// coalesced acks), at an offered -rate for -duration across -clients
// executors; -json emits the machine-readable report.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/cidr09/unbundled/internal/experiments"
	"github.com/cidr09/unbundled/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "run the reduced smoke configuration")
	only := flag.String("only", "", "run a single experiment (E1..E9, F1, F2)")
	throughput := flag.Bool("throughput", false, "run the open-loop TCP throughput comparison instead of the experiment tables")
	rate := flag.Int("rate", 0, "throughput: offered transactions per second (0: default)")
	clients := flag.Int("clients", 0, "throughput: open-loop executor goroutines (0: default)")
	duration := flag.Duration("duration", 0, "throughput: offered window (0: default)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON instead of a table")
	flag.Parse()

	if *throughput {
		o := experiments.ThroughputOptions{Rate: *rate, Clients: *clients, Duration: *duration}
		if *quick {
			if o.Rate == 0 {
				o.Rate = 2000
			}
			if o.Duration == 0 {
				o.Duration = time.Second
			}
			o.Warmup = 200 * time.Millisecond
		}
		rep := experiments.Throughput(o)
		if *jsonOut {
			os.Stdout.Write(rep.JSON())
			fmt.Println()
			return
		}
		rep.Fprint(os.Stdout)
		return
	}

	s := experiments.DefaultScale()
	if *quick {
		s = experiments.QuickScale()
	}

	exps := []struct {
		id, title string
		run       func(experiments.Scale) *harness.Report
	}{
		{"E1", "unbundled vs monolithic kernel (§7 'longer code paths')", experiments.E1},
		{"E2", "abstract-LSN space vs per-record LSNs (§5.1.2)", experiments.E2},
		{"E3", "page-sync strategies 1/2/3 (§5.1.2)", experiments.E3},
		{"E4", "range locking: fetch-ahead vs static ranges (§3.1)", experiments.E4},
		{"E5", "system-transaction recovery: splits & consolidates (§5.2)", experiments.E5},
		{"E6", "partial failures: DC crash redo; TC crash targeted reset (§5.3)", experiments.E6},
		{"E7", "multiple TCs per DC; non-blocking readers, no 2PC (§6)", experiments.E7},
		{"E8", "DC instance scaling behind one TC (§1.1(3))", experiments.E8},
		{"E9", "snapshot vs locked reads under write contention", experiments.E9},
		{"F1", "Figure 1: heterogeneous TC/DC deployment", experiments.F1},
		{"F2", "Figure 2 + §6.3: movie site workloads W1–W4", experiments.F2},
	}

	for _, e := range exps {
		if *only != "" && *only != e.id {
			continue
		}
		fmt.Printf("== %s: %s ==\n", e.id, e.title)
		start := time.Now()
		rep := e.run(s)
		if *jsonOut {
			os.Stdout.Write(rep.JSON())
			fmt.Println()
		} else {
			rep.Fprint(os.Stdout)
		}
		fmt.Printf("(%s)\n\n", time.Since(start).Round(time.Millisecond))
	}
}
