// Command unbundled-dc runs one data component as a standalone process
// serving the TC:DC protocol over TCP — the deployable half of the
// paper's unbundling. Point one or more unbundled-tc processes (or any
// core deployment built with Options.DCAddrs) at its listen address.
//
//	unbundled-dc -listen 127.0.0.1:7070 -tables kv,users -dir ./dc0
//
// With -dir, the stable media (pages and DC-log) live in that directory
// and survive kill -9: restarting with the same flags re-opens the state,
// runs DC-log recovery, and resumes serving; connected TCs notice the
// re-established connection and replay their redo streams automatically.
// Without -dir the media are in-memory: a restarted DC comes back empty
// and is rebuilt entirely from the TCs' redo streams, which is only
// lossless while the TCs have never checkpointed.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/cidr09/unbundled/internal/dc"
	"github.com/cidr09/unbundled/internal/stats"
	"github.com/cidr09/unbundled/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "TCP listen address (use :0 for an ephemeral port)")
	admin := flag.String("admin", "", "HTTP admin listen address serving /stats, /healthz, /drain, /undrain (empty: no admin endpoint)")
	tables := flag.String("tables", "kv", "comma-separated tables to create (idempotent across restarts)")
	dir := flag.String("dir", "", "data directory for stable media (empty: in-memory, lost on exit)")
	name := flag.String("name", "dc0", "DC name for diagnostics")
	pageBytes := flag.Int("page-bytes", 4096, "page split threshold")
	cache := flag.Int("cache", 0, "buffer-pool capacity in pages (0: unbounded)")
	workers := flag.Int("workers", 0, "request worker pool size (0: 2x GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "per-worker queue capacity before requests are refused as overloaded (0: default 256)")
	flag.Parse()

	d, err := dc.New(dc.Config{
		Name:          *name,
		Dir:           *dir,
		PageBytes:     *pageBytes,
		CacheCapacity: *cache,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "unbundled-dc:", err)
		os.Exit(1)
	}
	for _, table := range strings.Split(*tables, ",") {
		if table = strings.TrimSpace(table); table == "" {
			continue
		}
		if err := d.CreateTable(table); err != nil {
			fmt.Fprintf(os.Stderr, "unbundled-dc: create table %s: %v\n", table, err)
			os.Exit(1)
		}
	}

	l, err := wire.ListenWith(*listen, d, wire.ListenConfig{
		Workers:    *workers,
		QueueDepth: *queueDepth,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "unbundled-dc:", err)
		os.Exit(1)
	}
	// The listening line is a tiny readiness protocol: supervisors (the
	// e2e suite, scripts) wait for it and parse the bound address from it,
	// which makes -listen :0 usable.
	fmt.Printf("unbundled-dc: %s listening on %s (tables: %s)\n", *name, l.Addr(), *tables)
	if *dir != "" {
		fmt.Printf("unbundled-dc: stable media in %s (tables now: %s)\n", *dir, strings.Join(d.Tables(), ","))
	}
	if *admin != "" {
		reg := stats.NewRegistry()
		d.RegisterStats(reg.Group("dc"))
		l.RegisterStats(reg.Group("wire"))
		adm, err := stats.Serve(*admin, reg, d)
		if err != nil {
			fmt.Fprintln(os.Stderr, "unbundled-dc: admin:", err)
			os.Exit(1)
		}
		defer adm.Close()
		// Same readiness protocol as the service line: parseable bound
		// address, so -admin :0 works under a supervisor.
		fmt.Printf("unbundled-dc: admin listening on %s\n", adm.Addr())
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	<-sigCh
	fmt.Println("unbundled-dc: shutting down")
	l.Close()
	d.Close()
}
