// Command unbundled-tc runs one transactional component as a standalone
// process, committing transactions against unbundled-dc processes over
// TCP. It has two modes:
//
// Workload mode (default) runs -txns write transactions of -ops unique
// keys each, then reads every committed key back and verifies its value —
// the committed-write oracle the e2e suite uses. The workload rides out
// DC outages without intervention: the wire client resends, the redial
// supervisor reconnects, and the deployment replays the redo stream to a
// restarted DC before new work flows.
//
//	unbundled-tc -dcs 127.0.0.1:7070 -txns 500 -ops 4 -verify
//
// REPL mode (-repl) reads commands from stdin, one autocommitted
// transaction per line:
//
//	put <table> <key> <value>
//	get <table> <key>
//	del <table> <key>
//	scan <table> <lo> <hi>
//	checkpoint | stats | exit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"strings"
	"time"

	"github.com/cidr09/unbundled/internal/core"
	"github.com/cidr09/unbundled/internal/tc"
)

func main() {
	dcs := flag.String("dcs", "127.0.0.1:7070", "comma-separated DC listen addresses")
	routeSpec := flag.String("route", "hash", `route spec: "hash" (key hash mod #DCs) or "first" (everything to DC 0)`)
	table := flag.String("table", "kv", "table the workload writes")
	txns := flag.Int("txns", 200, "workload transactions to run")
	ops := flag.Int("ops", 4, "writes per transaction")
	valueBytes := flag.Int("value-bytes", 32, "payload size per write")
	pipeline := flag.Bool("pipeline", false, "pipelined operation shipping")
	verify := flag.Bool("verify", true, "read back every committed key and verify its value")
	checkpointEvery := flag.Int("checkpoint-every", 0, "checkpoint the TC every N transactions (0: never)")
	progressEvery := flag.Int("progress-every", 50, "print progress every N transactions")
	repl := flag.Bool("repl", false, "interactive mode: read commands from stdin")
	connectWait := flag.Duration("connect-wait", 10*time.Second, "how long to wait for the initial DC connections")
	flag.Parse()

	addrs := splitList(*dcs)
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "unbundled-tc: -dcs must name at least one address")
		os.Exit(1)
	}
	route, err := buildRoute(*routeSpec, len(addrs))
	if err != nil {
		fmt.Fprintln(os.Stderr, "unbundled-tc:", err)
		os.Exit(1)
	}
	dep, err := core.New(core.Options{
		TCs:     1,
		DCAddrs: addrs,
		Route:   route,
		TCConfig: func(int) tc.Config {
			return tc.Config{Pipeline: *pipeline}
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "unbundled-tc:", err)
		os.Exit(1)
	}
	defer dep.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *connectWait)
	err = dep.WaitConnected(ctx)
	cancel()
	if err != nil {
		fmt.Fprintf(os.Stderr, "unbundled-tc: no DC connection within %v: %v\n", *connectWait, err)
		os.Exit(1)
	}
	fmt.Printf("unbundled-tc: connected to %d DC(s): %s\n", len(addrs), *dcs)

	if *repl {
		runREPL(dep, *table)
		return
	}
	ok := runWorkload(dep, workloadConfig{
		table: *table, txns: *txns, ops: *ops, valueBytes: *valueBytes,
		verify: *verify, checkpointEvery: *checkpointEvery, progressEvery: *progressEvery,
	})
	ws := dep.RemoteWireStats()
	st := dep.TCs[0].Stats()
	fmt.Printf("unbundled-tc: commits=%d aborts=%d redo-ops=%d checkpoints=%d wire-calls=%d resends=%d reconnects=%d\n",
		st.Commits, st.Aborts, st.RedoOps, st.Checkpoints, ws.Calls, ws.Resends, ws.Reconnects)
	if !ok {
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func buildRoute(spec string, n int) (func(table, key string) int, error) {
	switch spec {
	case "first":
		return func(string, string) int { return 0 }, nil
	case "hash":
		return func(_, key string) int {
			h := fnv.New32a()
			h.Write([]byte(key))
			return int(h.Sum32() % uint32(n))
		}, nil
	default:
		return nil, fmt.Errorf("unknown -route %q (want hash or first)", spec)
	}
}

type workloadConfig struct {
	table           string
	txns, ops       int
	valueBytes      int
	verify          bool
	checkpointEvery int
	progressEvery   int
}

// runWorkload commits cfg.txns transactions of unique-key writes and then
// verifies every committed key. Unique keys make the oracle exact: a
// committed transaction's writes must all be present with their final
// values, whatever the DC suffered in between.
func runWorkload(dep *core.Deployment, cfg workloadConfig) bool {
	ctx := context.Background()
	client := dep.Client()
	value := func(i, j int) []byte {
		v := fmt.Sprintf("v-%d-%d/", i, j)
		for len(v) < cfg.valueBytes {
			v += "x"
		}
		return []byte(v)
	}
	start := time.Now()
	committed := 0
	for i := 0; i < cfg.txns; i++ {
		i := i
		err := client.RunTxn(ctx, core.TxnOptions{}, func(x *tc.Txn) error {
			for j := 0; j < cfg.ops; j++ {
				if err := x.Upsert(cfg.table, workloadKey(i, j), value(i, j)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			fmt.Printf("unbundled-tc: txn %d failed: %v\n", i, err)
			continue
		}
		committed++
		if cfg.progressEvery > 0 && (i+1)%cfg.progressEvery == 0 {
			fmt.Printf("unbundled-tc: committed %d/%d\n", i+1, cfg.txns)
		}
		if cfg.checkpointEvery > 0 && (i+1)%cfg.checkpointEvery == 0 {
			if _, err := dep.TCs[0].Checkpoint(ctx); err != nil {
				fmt.Printf("unbundled-tc: checkpoint after txn %d: %v\n", i, err)
			}
		}
	}
	fmt.Printf("unbundled-tc: workload done: %d/%d committed in %v\n", committed, cfg.txns, time.Since(start).Round(time.Millisecond))
	if !cfg.verify {
		return committed == cfg.txns
	}
	lost := 0
	for i := 0; i < cfg.txns; i++ {
		i := i
		err := client.RunTxn(ctx, core.TxnOptions{}, func(x *tc.Txn) error {
			for j := 0; j < cfg.ops; j++ {
				got, okRead, err := x.Read(cfg.table, workloadKey(i, j))
				if err != nil {
					return err
				}
				if !okRead || string(got) != string(value(i, j)) {
					lost++
					fmt.Printf("unbundled-tc: LOST committed write %s (found=%v)\n", workloadKey(i, j), okRead)
				}
			}
			return nil
		})
		if err != nil {
			fmt.Printf("unbundled-tc: verify txn %d failed: %v\n", i, err)
			return false
		}
	}
	if lost > 0 || committed != cfg.txns {
		fmt.Printf("unbundled-tc: VERIFY FAILED: %d lost writes, %d/%d committed\n", lost, committed, cfg.txns)
		return false
	}
	fmt.Printf("unbundled-tc: VERIFY OK: %d committed transactions, %d keys intact\n", committed, committed*cfg.ops)
	return true
}

func workloadKey(i, j int) string { return fmt.Sprintf("w-%06d-%d", i, j) }

func runREPL(dep *core.Deployment, defaultTable string) {
	ctx := context.Background()
	client := dep.Client()
	sc := bufio.NewScanner(os.Stdin)
	fmt.Printf("unbundled-tc: repl ready (default table %q)\n", defaultTable)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch cmd := fields[0]; cmd {
		case "exit", "quit":
			return
		case "stats":
			ws := dep.RemoteWireStats()
			st := dep.TCs[0].Stats()
			fmt.Printf("commits=%d aborts=%d wire-calls=%d resends=%d reconnects=%d\n",
				st.Commits, st.Aborts, ws.Calls, ws.Resends, ws.Reconnects)
		case "checkpoint":
			rssp, err := dep.TCs[0].Checkpoint(ctx)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("rssp=%d\n", rssp)
		case "put", "get", "del", "scan":
			if err := replTxn(ctx, client, cmd, fields[1:]); err != nil {
				fmt.Println("error:", err)
			}
		default:
			fmt.Printf("unknown command %q (put/get/del/scan/checkpoint/stats/exit)\n", cmd)
		}
	}
}

func replTxn(ctx context.Context, client *core.Client, cmd string, args []string) error {
	return client.RunTxn(ctx, core.TxnOptions{}, func(x *tc.Txn) error {
		switch cmd {
		case "put":
			if len(args) != 3 {
				return fmt.Errorf("usage: put <table> <key> <value>")
			}
			return x.Upsert(args[0], args[1], []byte(args[2]))
		case "get":
			if len(args) != 2 {
				return fmt.Errorf("usage: get <table> <key>")
			}
			v, ok, err := x.Read(args[0], args[1])
			if err != nil {
				return err
			}
			if !ok {
				fmt.Println("(not found)")
				return nil
			}
			fmt.Printf("%s\n", v)
			return nil
		case "del":
			if len(args) != 2 {
				return fmt.Errorf("usage: del <table> <key>")
			}
			return x.Delete(args[0], args[1])
		case "scan":
			if len(args) != 3 {
				return fmt.Errorf("usage: scan <table> <lo> <hi>")
			}
			keys, vals, err := x.Scan(args[0], args[1], args[2], 0)
			if err != nil {
				return err
			}
			for i := range keys {
				fmt.Printf("%s = %s\n", keys[i], vals[i])
			}
			fmt.Printf("(%d rows)\n", len(keys))
			return nil
		}
		return fmt.Errorf("unreachable")
	})
}
