// Command unbundled-tc runs one transactional component as a standalone
// process, committing transactions against unbundled-dc processes over
// TCP. Several unbundled-tc processes — one TC each, distinguished by
// -tc-id — share the same DCs under one -placement spec: the §6.1
// update-ownership partition is enforced by each TC (writes outside its
// partition abort with ErrWrongOwner), and each TC fences the DCs with
// its own incarnation epochs, so killing and restarting one process never
// disturbs the others.
//
// With -dir, the TC-log lives in that directory and survives kill -9:
// restarting with the same flags reopens the log and runs the §5.3.2
// restart protocol (analysis, epoch-fenced DC reset, redo, loser undo)
// against the DCs before serving.
//
// Workload mode (default) runs -txns write transactions of -ops unique
// keys each — keys prefixed "w<tc-id>-", so fleet members generate
// disjoint key populations — then reads every committed key back and
// verifies its value. The workload rides out DC outages without
// intervention: the wire client resends, the redial supervisor
// reconnects, and the deployment replays the redo stream to a restarted
// DC before new work flows.
//
//	unbundled-tc -dcs 127.0.0.1:7070 -txns 500 -ops 4 -verify
//
// A two-TC fleet over two DCs, ownership split by key range:
//
//	P='kv: dc=hash(2) owner=range(<w2:1,*:2)'
//	unbundled-tc -dcs :7071,:7072 -placement "$P" -tc-id 1 -tcs 2 -dir ./tc1
//	unbundled-tc -dcs :7071,:7072 -placement "$P" -tc-id 2 -tcs 2 -dir ./tc2
//
// REPL mode (-repl) reads commands from stdin, one autocommitted
// transaction per line:
//
//	put <table> <key> <value>
//	get <table> <key>
//	del <table> <key>
//	scan <table> <lo> <hi>
//	checkpoint | stats | exit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/core"
	"github.com/cidr09/unbundled/internal/placement"
	"github.com/cidr09/unbundled/internal/stats"
	"github.com/cidr09/unbundled/internal/tc"
)

func main() {
	dcs := flag.String("dcs", "127.0.0.1:7070", "comma-separated DC listen addresses")
	placementSpec := flag.String("placement", "", `placement spec ("<table>: dc=<axis> owner=<axis>; ..."); empty derives one from -route/-tcs`)
	tcID := flag.Int("tc-id", 1, "this TC's ID, unique across every process sharing the DCs")
	tcs := flag.Int("tcs", 1, "total TCs in the fleet (IDs 1..tcs); ownership axes may name any of them")
	dir := flag.String("dir", "", "data directory for the TC-log (empty: in-memory, lost on exit); restart with the same flags to recover")
	routeSpec := flag.String("route", "hash", `deprecated data-axis shorthand used when -placement is empty: "hash" (key hash mod #DCs) or "first" (everything to DC 0)`)
	table := flag.String("table", "kv", "table the workload writes")
	txns := flag.Int("txns", 200, "workload transactions to run")
	ops := flag.Int("ops", 4, "writes per transaction")
	valueBytes := flag.Int("value-bytes", 32, "payload size per write")
	pipeline := flag.Bool("pipeline", false, "pipelined operation shipping")
	verify := flag.Bool("verify", true, "read back every committed key and verify its value")
	checkpointEvery := flag.Int("checkpoint-every", 0, "checkpoint the TC every N transactions (0: never)")
	progressEvery := flag.Int("progress-every", 50, "print progress every N transactions")
	repl := flag.Bool("repl", false, "interactive mode: read commands from stdin")
	connectWait := flag.Duration("connect-wait", 10*time.Second, "how long to wait for the initial DC connections")
	admin := flag.String("admin", "", "HTTP admin listen address serving /stats, /healthz, /drain, /undrain (empty: no admin endpoint)")
	flag.Parse()

	addrs := splitList(*dcs)
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "unbundled-tc: -dcs must name at least one address")
		os.Exit(1)
	}
	if *tcID < 1 || *tcID > *tcs {
		fmt.Fprintf(os.Stderr, "unbundled-tc: -tc-id %d outside the fleet 1..%d (-tcs)\n", *tcID, *tcs)
		os.Exit(1)
	}
	pl, err := buildPlacement(*placementSpec, *routeSpec, *table, len(addrs), *tcs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "unbundled-tc:", err)
		os.Exit(1)
	}
	dep, err := core.New(core.Options{
		TCs:       1,
		FleetTCs:  *tcs,
		DCAddrs:   addrs,
		Placement: pl,
		TCConfig: func(int) tc.Config {
			return tc.Config{ID: base.TCID(*tcID), Pipeline: *pipeline, Dir: *dir}
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "unbundled-tc:", err)
		os.Exit(1)
	}
	defer dep.Close()
	fmt.Printf("unbundled-tc: tc %d of %d, placement %q\n", *tcID, *tcs, pl.String())

	ctx, cancel := context.WithTimeout(context.Background(), *connectWait)
	err = dep.WaitConnected(ctx)
	cancel()
	if err != nil {
		fmt.Fprintf(os.Stderr, "unbundled-tc: no DC connection within %v: %v\n", *connectWait, err)
		os.Exit(1)
	}
	fmt.Printf("unbundled-tc: connected to %d DC(s): %s\n", len(addrs), *dcs)

	// Fleet-assembly cross-check: every DC the placement's data axes can
	// route to must actually serve the tables routed there. A misassembled
	// fleet fails loudly here (ErrPlacementMismatch) instead of aborting
	// transactions with ErrUnknownTable at run time.
	{
		vctx, vcancel := context.WithTimeout(context.Background(), *connectWait)
		err := dep.ValidatePlacement(vctx)
		vcancel()
		if err != nil {
			fmt.Fprintln(os.Stderr, "unbundled-tc:", err)
			os.Exit(1)
		}
	}

	if *admin != "" {
		adm, err := stats.Serve(*admin, dep.StatsRegistry(), dep.TCs[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "unbundled-tc: admin:", err)
			os.Exit(1)
		}
		defer adm.Close()
		fmt.Printf("unbundled-tc: admin listening on %s\n", adm.Addr())
	}

	// A -dir holding a previous incarnation's log: the DCs are reachable
	// now, so run the §5.3.2 restart (analysis, epoch-fenced reset, redo,
	// loser undo) before serving anything.
	if dep.TCs[0].NeedsRecovery() {
		fmt.Printf("unbundled-tc: restarting tc %d from its log in %s\n", *tcID, *dir)
		if err := dep.RecoverTC(0); err != nil {
			fmt.Fprintf(os.Stderr, "unbundled-tc: restart from %s: %v\n", *dir, err)
			os.Exit(1)
		}
		st := dep.TCs[0].Stats()
		fmt.Printf("unbundled-tc: tc %d restarted: epoch=%d redo-ops=%d undo-ops=%d\n",
			*tcID, dep.TCs[0].Epoch(), st.RedoOps, st.UndoOps)
	}

	if *repl {
		runREPL(dep, *table)
		return
	}
	ok := runWorkload(dep, workloadConfig{
		table: *table, tcID: *tcID, txns: *txns, ops: *ops, valueBytes: *valueBytes,
		verify: *verify, checkpointEvery: *checkpointEvery, progressEvery: *progressEvery,
	})
	ws := dep.RemoteWireStats()
	st := dep.TCs[0].Stats()
	fmt.Printf("unbundled-tc: commits=%d aborts=%d redo-ops=%d checkpoints=%d epoch=%d wire-calls=%d resends=%d reconnects=%d\n",
		st.Commits, st.Aborts, st.RedoOps, st.Checkpoints, dep.TCs[0].Epoch(), ws.Calls, ws.Resends, ws.Reconnects)
	if !ok {
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// buildPlacement parses -placement, or derives a spec: the workload table
// hash- (or, with the deprecated -route shorthand, first-)placed across
// the DCs, update ownership split along the workload's own "w<tc-id>-"
// key prefixes so every fleet member owns exactly the keys it generates,
// plus a catch-all so REPL sessions can touch ad-hoc tables.
func buildPlacement(spec, route, table string, dcs, tcs int) (*placement.Placement, error) {
	if spec != "" {
		return placement.Parse(spec)
	}
	dcAxis := fmt.Sprintf("hash(%d)", dcs)
	switch route {
	case "hash":
	case "first":
		dcAxis = "0"
	default:
		return nil, fmt.Errorf("unknown -route %q (want hash or first)", route)
	}
	owner := "1"
	if tcs > 1 {
		// The range grammar wants lexicographically ascending split keys,
		// and the "w<id>-" prefixes do not sort numerically past 9 TCs
		// ("w10-" < "w2-"): sort the prefixes and emit each boundary with
		// the preceding prefix's owner, so any fleet size derives a valid
		// spec whose partition is exactly the prefix populations.
		prefixes := make([]string, tcs)
		for w := 1; w <= tcs; w++ {
			prefixes[w-1] = fmt.Sprintf("w%d-", w)
		}
		sort.Strings(prefixes)
		idOf := func(p string) int {
			id, err := strconv.Atoi(p[1 : len(p)-1])
			if err != nil {
				panic(err) // unreachable: prefixes are built two lines up
			}
			return id
		}
		var ents strings.Builder
		for i := 1; i < len(prefixes); i++ {
			fmt.Fprintf(&ents, "<%s:%d,", prefixes[i], idOf(prefixes[i-1]))
		}
		owner = fmt.Sprintf("range(%s*:%d)", ents.String(), idOf(prefixes[len(prefixes)-1]))
	}
	return placement.Parse(fmt.Sprintf("%s: dc=%s owner=%s; *: dc=%s owner=any",
		table, dcAxis, owner, dcAxis))
}

type workloadConfig struct {
	table           string
	tcID            int
	txns, ops       int
	valueBytes      int
	verify          bool
	checkpointEvery int
	progressEvery   int
}

// runWorkload commits cfg.txns transactions of unique-key writes and then
// verifies every committed key. Unique keys make the oracle exact: a
// committed transaction's writes must all be present with their final
// values, whatever the DC suffered in between. Keys carry the TC ID, so
// fleet members running this workload concurrently write disjoint
// populations — pair that with a range-ownership placement
// (owner=range(<w2:1,*:2)) and the §6.1 partition lines up with the
// key prefixes.
func runWorkload(dep *core.Deployment, cfg workloadConfig) bool {
	ctx := context.Background()
	client := dep.Client()
	value := func(i, j int) []byte {
		v := fmt.Sprintf("v-%d-%d-%d/", cfg.tcID, i, j)
		for len(v) < cfg.valueBytes {
			v += "x"
		}
		return []byte(v)
	}
	start := time.Now()
	committed := 0
	committedTxn := make([]bool, cfg.txns)
	for i := 0; i < cfg.txns; i++ {
		i := i
		err := client.RunTxnAt(ctx, cfg.table, workloadKey(cfg.tcID, i, 0), core.TxnOptions{}, func(x *tc.Txn) error {
			for j := 0; j < cfg.ops; j++ {
				if err := x.Upsert(cfg.table, workloadKey(cfg.tcID, i, j), value(i, j)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			fmt.Printf("unbundled-tc: txn %d failed: %v\n", i, err)
			continue
		}
		committed++
		committedTxn[i] = true
		if cfg.progressEvery > 0 && (i+1)%cfg.progressEvery == 0 {
			fmt.Printf("unbundled-tc: committed %d/%d\n", i+1, cfg.txns)
		}
		if cfg.checkpointEvery > 0 && (i+1)%cfg.checkpointEvery == 0 {
			if _, err := dep.TCs[0].Checkpoint(ctx); err != nil {
				fmt.Printf("unbundled-tc: checkpoint after txn %d: %v\n", i, err)
			}
		}
	}
	fmt.Printf("unbundled-tc: workload done: %d/%d committed in %v\n", committed, cfg.txns, time.Since(start).Round(time.Millisecond))
	if !cfg.verify {
		return committed == cfg.txns
	}
	// Only transactions that reported commit are in the oracle: a txn
	// rejected typed (e.g. ErrDraining with no peer TC to re-route to)
	// never promised durability, so its absent keys are not lost writes.
	// The committed != txns check below still fails the run as a whole.
	lost := 0
	for i := 0; i < cfg.txns; i++ {
		i := i
		if !committedTxn[i] {
			continue
		}
		err := client.RunTxn(ctx, core.TxnOptions{}, func(x *tc.Txn) error {
			for j := 0; j < cfg.ops; j++ {
				got, okRead, err := x.Read(cfg.table, workloadKey(cfg.tcID, i, j))
				if err != nil {
					return err
				}
				if !okRead || string(got) != string(value(i, j)) {
					lost++
					fmt.Printf("unbundled-tc: LOST committed write %s (found=%v)\n", workloadKey(cfg.tcID, i, j), okRead)
				}
			}
			return nil
		})
		if err != nil {
			fmt.Printf("unbundled-tc: verify txn %d failed: %v\n", i, err)
			return false
		}
	}
	if lost > 0 || committed != cfg.txns {
		fmt.Printf("unbundled-tc: VERIFY FAILED: %d lost writes, %d/%d committed\n", lost, committed, cfg.txns)
		return false
	}
	fmt.Printf("unbundled-tc: VERIFY OK: %d committed transactions, %d keys intact\n", committed, committed*cfg.ops)
	return true
}

func workloadKey(tcID, i, j int) string { return fmt.Sprintf("w%d-%06d-%d", tcID, i, j) }

func runREPL(dep *core.Deployment, defaultTable string) {
	ctx := context.Background()
	client := dep.Client()
	sc := bufio.NewScanner(os.Stdin)
	fmt.Printf("unbundled-tc: repl ready (default table %q)\n", defaultTable)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch cmd := fields[0]; cmd {
		case "exit", "quit":
			return
		case "stats":
			ws := dep.RemoteWireStats()
			st := dep.TCs[0].Stats()
			fmt.Printf("commits=%d aborts=%d epoch=%d wire-calls=%d resends=%d reconnects=%d\n",
				st.Commits, st.Aborts, dep.TCs[0].Epoch(), ws.Calls, ws.Resends, ws.Reconnects)
		case "checkpoint":
			rssp, err := dep.TCs[0].Checkpoint(ctx)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("rssp=%d\n", rssp)
		case "put", "get", "del", "scan":
			if err := replTxn(ctx, client, cmd, fields[1:]); err != nil {
				fmt.Println("error:", err)
			}
		default:
			fmt.Printf("unknown command %q (put/get/del/scan/checkpoint/stats/exit)\n", cmd)
		}
	}
}

func replTxn(ctx context.Context, client *core.Client, cmd string, args []string) error {
	return client.RunTxn(ctx, core.TxnOptions{}, func(x *tc.Txn) error {
		switch cmd {
		case "put":
			if len(args) != 3 {
				return fmt.Errorf("usage: put <table> <key> <value>")
			}
			return x.Upsert(args[0], args[1], []byte(args[2]))
		case "get":
			if len(args) != 2 {
				return fmt.Errorf("usage: get <table> <key>")
			}
			v, ok, err := x.Read(args[0], args[1])
			if err != nil {
				return err
			}
			if !ok {
				fmt.Println("(not found)")
				return nil
			}
			fmt.Printf("%s\n", v)
			return nil
		case "del":
			if len(args) != 2 {
				return fmt.Errorf("usage: del <table> <key>")
			}
			return x.Delete(args[0], args[1])
		case "scan":
			if len(args) != 3 {
				return fmt.Errorf("usage: scan <table> <lo> <hi>")
			}
			keys, vals, err := x.Scan(args[0], args[1], args[2], 0)
			if err != nil {
				return err
			}
			for i := range keys {
				fmt.Printf("%s = %s\n", keys[i], vals[i])
			}
			fmt.Printf("(%d rows)\n", len(keys))
			return nil
		}
		return fmt.Errorf("unreachable")
	})
}
