// Command benchcheck gates CI on benchmark regressions: it parses `go
// test -bench` output, compares each benchmark's ns/op against the
// checked-in baseline (BENCH_BASELINE.json), and exits nonzero when any
// benchmark regresses past the allowed ratio — or silently disappears
// from the output, which would otherwise let a deleted benchmark "pass"
// forever. The baseline's "ratios" block additionally gates relative
// claims: each entry names a fast and a slow benchmark and the minimum
// slow/fast ns-per-op ratio that must hold (e.g. snapshot reads >= 3x
// locked-read throughput under contention). The "throughput" block gates
// custom b.ReportMetric metrics instead of ns/op: a completed-txn/s floor
// and a p99-ms ceiling per benchmark (the open-loop throughput runs).
//
//	go test -run='^$' -bench='E1|E9|ThroughputOpenLoop' . | tee bench.txt
//	benchcheck -baseline BENCH_BASELINE.json -in bench.txt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
)

type baseline struct {
	MaxRatio   float64                   `json:"max_ratio"`
	Benchmarks map[string]float64        `json:"benchmarks"`
	Ratios     map[string]ratioGate      `json:"ratios"`
	Throughput map[string]throughputGate `json:"throughput"`
}

// ratioGate asserts Slow's ns/op stays at least MinRatio times Fast's —
// i.e. the fast path keeps its relative advantage.
type ratioGate struct {
	Fast     string  `json:"fast"`
	Slow     string  `json:"slow"`
	MinRatio float64 `json:"min_ratio"`
}

// throughputGate gates a benchmark's custom metrics (b.ReportMetric): the
// "txn/s" value must stay at or above the floor, and — when a ceiling is
// set — the "p99-ms" value at or below it. Floors are absolute (not
// regression ratios) so they hold meaning across runner generations:
// set them well under a healthy run's numbers.
type throughputGate struct {
	MinTxnPerSec float64 `json:"min_txn_per_sec"`
	MaxP99Ms     float64 `json:"max_p99_ms"`
}

// benchLine matches e.g. "BenchmarkE1TxnMonolith-8   100   6941 ns/op ...";
// the -8 GOMAXPROCS suffix is optional and discarded. The trailing group
// carries any custom "<value> <unit>" metric pairs b.ReportMetric added.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)

// metricPair matches one custom metric, e.g. "3656 txn/s" or "131.1 p99-ms".
var metricPair = regexp.MustCompile(`([0-9]+(?:\.[0-9]+)?(?:e[+-]?[0-9]+)?) (\S+)`)

func main() {
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "baseline file")
	in := flag.String("in", "-", "bench output file (- for stdin)")
	maxRatio := flag.Float64("max-ratio", 0, "override the baseline's max_ratio")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parse %s: %w", *baselinePath, err))
	}
	ratio := base.MaxRatio
	if *maxRatio > 0 {
		ratio = *maxRatio
	}
	if ratio <= 0 {
		ratio = 2.0
	}

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	data, err := io.ReadAll(src)
	if err != nil {
		fatal(err)
	}
	got := make(map[string]float64)
	metrics := make(map[string]map[string]float64)
	for _, line := range regexp.MustCompile(`\r?\n`).Split(string(data), -1) {
		if m := benchLine.FindStringSubmatch(line); m != nil {
			if ns, err := strconv.ParseFloat(m[2], 64); err == nil {
				got[m[1]] = ns
			}
			for _, p := range metricPair.FindAllStringSubmatch(m[3], -1) {
				if v, err := strconv.ParseFloat(p[1], 64); err == nil {
					if metrics[m[1]] == nil {
						metrics[m[1]] = make(map[string]float64)
					}
					metrics[m[1]][p[2]] = v
				}
			}
		}
	}

	failed := false
	for name, want := range base.Benchmarks {
		ns, ok := got[name]
		if !ok {
			fmt.Printf("FAIL %-40s missing from bench output\n", name)
			failed = true
			continue
		}
		r := ns / want
		verdict := "ok  "
		if r > ratio {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-40s %12.0f ns/op  baseline %12.0f  ratio %.2fx (limit %.1fx)\n",
			verdict, name, ns, want, r, ratio)
	}
	for name, g := range base.Ratios {
		fast, fok := got[g.Fast]
		slow, sok := got[g.Slow]
		if !fok || !sok {
			fmt.Printf("FAIL %-40s missing %s from bench output\n", name,
				map[bool]string{true: g.Slow, false: g.Fast}[fok])
			failed = true
			continue
		}
		r := slow / fast
		verdict := "ok  "
		if r < g.MinRatio {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-40s %.2fx (%s %.0f ns/op vs %s %.0f ns/op, need >= %.1fx)\n",
			verdict, name, r, g.Fast, fast, g.Slow, slow, g.MinRatio)
	}
	for name, g := range base.Throughput {
		m, ok := metrics[name]
		if !ok {
			fmt.Printf("FAIL %-40s missing from bench output\n", name)
			failed = true
			continue
		}
		tps, tok := m["txn/s"]
		if !tok {
			fmt.Printf("FAIL %-40s has no txn/s metric\n", name)
			failed = true
			continue
		}
		verdict := "ok  "
		if tps < g.MinTxnPerSec {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-40s %10.0f txn/s (floor %.0f)\n", verdict, name, tps, g.MinTxnPerSec)
		if g.MaxP99Ms > 0 {
			p99, pok := m["p99-ms"]
			verdict = "ok  "
			if !pok || p99 > g.MaxP99Ms {
				verdict = "FAIL"
				failed = true
			}
			fmt.Printf("%s %-40s %10.1f p99-ms (ceiling %.0f)\n", verdict, name, p99, g.MaxP99Ms)
		}
	}
	if failed {
		fmt.Println("benchcheck: latency regression (or missing benchmark) vs BENCH_BASELINE.json")
		os.Exit(1)
	}
	fmt.Println("benchcheck: all benchmarks within budget")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
