// Benchmarks regenerating every experiment table (DESIGN.md §4):
//
//	go test -bench=. -benchmem
//
// The per-transaction benchmarks (BenchmarkE1*) are conventional Go
// benchmarks; the table benchmarks (BenchmarkE2..E8, F1, F2) run one full
// experiment per iteration at reduced scale and report the headline
// metric via b.ReportMetric. cmd/unbundled-bench prints the full tables.
package unbundled_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/cidr09/unbundled/internal/core"
	"github.com/cidr09/unbundled/internal/dc"
	"github.com/cidr09/unbundled/internal/experiments"
	"github.com/cidr09/unbundled/internal/monolith"
	"github.com/cidr09/unbundled/internal/placement"
	"github.com/cidr09/unbundled/internal/tc"
	"github.com/cidr09/unbundled/internal/wire"
	"github.com/cidr09/unbundled/internal/workload"
)

// --- E1: per-transaction comparison, monolithic vs unbundled -----------

func kvTxnBench(b *testing.B, run func(i int) error) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1TxnMonolith(b *testing.B) {
	e, err := monolith.New(monolith.Config{})
	if err != nil {
		b.Fatal(err)
	}
	if err := e.CreateTable("kv"); err != nil {
		b.Fatal(err)
	}
	g := workload.KV{Keys: 4096, ReadFrac: 0.5, OpsPerTxn: 4, Seed: 1}.NewGen(0)
	kvTxnBench(b, func(i int) error {
		return e.RunTxn(func(x *monolith.Txn) error {
			for j := 0; j < g.OpsPerTxn(); j++ {
				if g.IsRead() {
					_, _, err := x.Read("kv", g.Key())
					return err
				}
				if err := x.Upsert("kv", g.Key(), g.Value()); err != nil {
					return err
				}
			}
			return nil
		})
	})
}

func unbundledTxnBench(b *testing.B, net *wire.Config) {
	dep, err := core.New(core.Options{TCs: 1, DCs: 1, Tables: []string{"kv"}, Network: net})
	if err != nil {
		b.Fatal(err)
	}
	defer dep.Close()
	g := workload.KV{Keys: 4096, ReadFrac: 0.5, OpsPerTxn: 4, Seed: 1}.NewGen(0)
	client := dep.Client()
	kvTxnBench(b, func(i int) error {
		return client.RunTxn(context.Background(), core.TxnOptions{}, func(x *tc.Txn) error {
			for j := 0; j < g.OpsPerTxn(); j++ {
				if g.IsRead() {
					_, _, err := x.Read("kv", g.Key())
					return err
				}
				if err := x.Upsert("kv", g.Key(), g.Value()); err != nil {
					return err
				}
			}
			return nil
		})
	})
}

func BenchmarkE1TxnUnbundledDirect(b *testing.B) { unbundledTxnBench(b, nil) }
func BenchmarkE1TxnUnbundledWire(b *testing.B)   { unbundledTxnBench(b, &wire.Config{}) }

// pipelinedTxnBench measures multi-op write transactions over a wire with
// real propagation delay, with operation shipping either synchronous (one
// blocking round trip per op, the seed behaviour) or pipelined (async
// writes, batched messages, commit-time ack barrier). Transactions are
// versioned so upserts skip the existence pre-check — the configuration
// where pipelining removes every per-op wait from the hot path.
func pipelinedTxnBench(b *testing.B, pipeline bool) {
	b.Helper()
	dep, err := core.New(core.Options{
		TCs: 1, DCs: 1, Tables: []string{"kv"},
		TCConfig: func(int) tc.Config { return tc.Config{Pipeline: pipeline} },
		Network:  &wire.Config{Delay: 200 * time.Microsecond},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer dep.Close()
	g := workload.KV{Keys: 4096, ReadFrac: 0, OpsPerTxn: 4, Seed: 1}.NewGen(0)
	client := dep.Client()
	kvTxnBench(b, func(i int) error {
		return client.RunTxn(context.Background(), core.TxnOptions{Versioned: true}, func(x *tc.Txn) error {
			for j := 0; j < g.OpsPerTxn(); j++ {
				if err := x.Upsert("kv", g.Key(), g.Value()); err != nil {
					return err
				}
			}
			return nil
		})
	})
}

func BenchmarkE1TxnUnbundledWireDelay(b *testing.B) { pipelinedTxnBench(b, false) }
func BenchmarkE1TxnUnbundledPipelined(b *testing.B) { pipelinedTxnBench(b, true) }

// BenchmarkE1TxnMultiTCPartitioned is the §6.1 scale-out topology: two
// TCs with update ownership partitioned by key parity (owner=mod(2))
// over two DCs, transactions routed to their owner by write intent
// (RunTxnAt) and ownership enforced by the TCs. The benchcheck gate keeps
// the partitioned topology's per-transaction latency honest next to the
// single-TC E1 variants.
func BenchmarkE1TxnMultiTCPartitioned(b *testing.B) {
	dep, err := core.New(core.Options{TCs: 2, DCs: 2,
		Placement: placement.MustParse("kv: dc=hash(2) owner=mod(2)")})
	if err != nil {
		b.Fatal(err)
	}
	defer dep.Close()
	g := workload.KV{Keys: 4096, ReadFrac: 0.5, OpsPerTxn: 4, Seed: 1}.NewGen(0)
	client := dep.Client()
	// Partition p owns the keys with even/odd index: 2i+p has owner p+1.
	key := func(part int) string { return workload.KVKey(2*g.Rand().Intn(2048) + part) }
	kvTxnBench(b, func(i int) error {
		part := i % 2
		return client.RunTxnAt(context.Background(), "kv", workload.KVKey(part), core.TxnOptions{}, func(x *tc.Txn) error {
			for j := 0; j < g.OpsPerTxn(); j++ {
				if g.IsRead() {
					_, _, err := x.Read("kv", key(part))
					return err
				}
				if err := x.Upsert("kv", key(part), g.Value()); err != nil {
					return err
				}
			}
			return nil
		})
	})
}

// --- E9: locked vs snapshot reads under write contention ---------------

// benchE9Reads measures one multi-key read-only transaction against a hot
// set that independent writers keep X-locked (one versioned writer per
// key, commit force 2ms), alongside a small pool of identical unmeasured
// readers — the mixed read/write population every key's lock queue sees
// in a real deployment. The locked mode (SnapshotLocked) pays a lock
// wait at every key, convoying with writers and other readers; the
// default snapshot mode waits once for the safe timestamp and reads
// lock-free at the DCs. cmd/benchcheck gates the ratio between the two
// (BENCH_BASELINE.json "ratios"): snapshot reads must stay >= 3x
// locked-read throughput.
func benchE9Reads(b *testing.B, opts core.TxnOptions) {
	dep, err := core.New(core.Options{TCs: 1, DCs: 1, Tables: []string{"kv"},
		TCConfig: func(int) tc.Config { return tc.Config{ForceDelay: 2 * time.Millisecond} }})
	if err != nil {
		b.Fatal(err)
	}
	defer dep.Close()
	ctx := context.Background()
	client := dep.Client()
	const hot = 16
	const bgReaders = 4
	hotKey := func(k int) string { return fmt.Sprintf("hot%d", k) }
	write := func(k, round int) error {
		return client.RunTxn(ctx, core.TxnOptions{Versioned: true}, func(x *tc.Txn) error {
			return x.Upsert("kv", hotKey(k), []byte(fmt.Sprintf("v%d", round)))
		})
	}
	readAll := func() error {
		return client.RunTxn(ctx, opts, func(x *tc.Txn) error {
			for k := 0; k < hot; k++ {
				if _, _, err := x.Read("kv", hotKey(k)); err != nil {
					return err
				}
			}
			return nil
		})
	}
	for k := 0; k < hot; k++ {
		if err := write(k, 0); err != nil {
			b.Fatal(err)
		}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	var rounds atomic.Uint64
	for w := 0; w < hot; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for r := 1; ; r++ {
				select {
				case <-stop:
					return
				default:
				}
				if write(w, r) == nil {
					rounds.Add(1)
				}
			}
		}(w)
	}
	for r := 0; r < bgReaders; r++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = readAll()
			}
		}()
	}
	// Measure only the steady state: wait until the writers have pushed a
	// couple of contending rounds through commit.
	for rounds.Load() < 2*hot {
		time.Sleep(time.Millisecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := readAll(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	for w := 0; w < hot+bgReaders; w++ {
		<-done
	}
}

func BenchmarkE9SnapshotReadContention(b *testing.B) {
	b.Run("locked", func(b *testing.B) {
		benchE9Reads(b, core.TxnOptions{ReadOnly: true, Snapshot: core.SnapshotLocked})
	})
	b.Run("snapshot", func(b *testing.B) {
		benchE9Reads(b, core.TxnOptions{ReadOnly: true})
	})
}

// --- open-loop throughput: server runtime comparison -------------------

// benchThroughput runs one open-loop TCP throughput measurement per
// iteration (experiments.ThroughputRun: one DC on loopback, two TC
// frontends, a fixed arrival schedule) and reports completed txn/s plus
// the p99 latency against that schedule. CI runs it with -benchtime=1x
// and cmd/benchcheck gates the sharded runtime against its floor.
func benchThroughput(b *testing.B, name string, lc wire.ListenConfig) {
	o := experiments.ThroughputOptions{
		Rate: 4000, Clients: 64,
		Duration: 2 * time.Second, Warmup: 300 * time.Millisecond,
	}
	var tps, p99ms float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.ThroughputRun(name, lc, o, "")
		tps += res.Throughput()
		p99ms += float64(res.Quantile(0.99)) / float64(time.Millisecond)
	}
	b.StopTimer()
	b.ReportMetric(tps/float64(b.N), "txn/s")
	b.ReportMetric(p99ms/float64(b.N), "p99-ms")
}

func BenchmarkThroughputOpenLoop(b *testing.B) {
	b.Run("baseline", func(b *testing.B) {
		benchThroughput(b, "per-request+flat-acks", wire.ListenConfig{PerRequest: true, FlatAcks: true})
	})
	b.Run("sharded", func(b *testing.B) {
		benchThroughput(b, "sharded+coalesced", wire.ListenConfig{})
	})
}

// --- table experiments, one per figure/claim ---------------------------

func tableBench(b *testing.B, run func(experiments.Scale)) {
	s := experiments.QuickScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(s)
	}
}

func BenchmarkE2AbLSNSpace(b *testing.B) {
	tableBench(b, func(s experiments.Scale) { _ = experiments.E2(s) })
}

func BenchmarkE3PageSync(b *testing.B) {
	tableBench(b, func(s experiments.Scale) { _ = experiments.E3(s) })
}

func BenchmarkE4RangeLocking(b *testing.B) {
	tableBench(b, func(s experiments.Scale) { _ = experiments.E4(s) })
}

func BenchmarkE5SMORecovery(b *testing.B) {
	tableBench(b, func(s experiments.Scale) { _ = experiments.E5(s) })
}

func BenchmarkE6PartialFailure(b *testing.B) {
	tableBench(b, func(s experiments.Scale) { _ = experiments.E6(s) })
}

func BenchmarkE7MultiTC(b *testing.B) {
	tableBench(b, func(s experiments.Scale) { _ = experiments.E7(s) })
}

func BenchmarkE8Scaling(b *testing.B) {
	tableBench(b, func(s experiments.Scale) { _ = experiments.E8(s) })
}

func BenchmarkFig1Architecture(b *testing.B) {
	tableBench(b, func(s experiments.Scale) { _ = experiments.F1(s) })
}

// --- Figure 2 / §6.3: per-workload movie-site benchmarks ---------------

type movieEnv struct {
	client *core.Client
	p      workload.MoviePlacement
	reader core.TxnOptions
}

// ownerOpts hints user u's partition as write intent: the client resolves
// the owning TC from the placement (no hand-computed pin).
func (e *movieEnv) ownerOpts(u int, versioned bool) core.TxnOptions {
	return core.TxnOptions{
		WriteSet:  map[string][]string{workload.TableUsers: {workload.UserKey(u)}},
		Versioned: versioned,
	}
}

func newMovieEnv(b *testing.B) *movieEnv {
	b.Helper()
	p := workload.MoviePlacement{MovieDCs: 2, UserDCs: 1, Movies: 200, Users: 400}
	dep, err := core.New(core.Options{TCs: 3, DCs: 3, Placement: p.Placement(2)})
	if err != nil {
		b.Fatal(err)
	}
	client := dep.Client()
	if err := client.RunTxn(context.Background(), core.TxnOptions{TC: 1}, func(x *tc.Txn) error {
		for m := 0; m < p.Movies; m++ {
			if err := x.Upsert(workload.TableMovies, workload.MovieKey(m), []byte("m")); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	for u := 0; u < p.Users; u++ {
		if err := client.RunTxn(context.Background(), newMovieEnvOwner(p, u), func(x *tc.Txn) error {
			return x.Upsert(workload.TableUsers, workload.UserKey(u), []byte("p"))
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.Cleanup(dep.Close)
	return &movieEnv{client: client, p: p, reader: core.TxnOptions{TC: 3, ReadOnly: true}}
}

func newMovieEnvOwner(p workload.MoviePlacement, u int) core.TxnOptions {
	return core.TxnOptions{
		WriteSet:  map[string][]string{workload.TableUsers: {workload.UserKey(u)}},
		Versioned: true,
	}
}

func BenchmarkFig2MovieW1(b *testing.B) {
	env := newMovieEnv(b)
	// Seed some reviews to read.
	for i := 0; i < 500; i++ {
		u, m := i%env.p.Users, i%env.p.Movies
		if err := env.client.RunTxn(context.Background(), env.ownerOpts(u, true), func(x *tc.Txn) error {
			return x.Upsert(workload.TableReviews, workload.ReviewKey(m, u), []byte("r"))
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prefix := workload.MovieKey(i%env.p.Movies) + "/"
		if err := env.client.RunTxn(context.Background(), env.reader, func(x *tc.Txn) error {
			_, _, err := x.ScanCommitted(workload.TableReviews, prefix, prefix+"~", 0)
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2MovieW2(b *testing.B) {
	env := newMovieEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, m := i%env.p.Users, (i*7)%env.p.Movies
		review := []byte(fmt.Sprintf("review-%d", i))
		if err := env.client.RunTxn(context.Background(), env.ownerOpts(u, true), func(x *tc.Txn) error {
			if err := x.Upsert(workload.TableReviews, workload.ReviewKey(m, u), review); err != nil {
				return err
			}
			return x.Upsert(workload.TableMyReviews, workload.MyReviewKey(u, m), review)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2MovieW3(b *testing.B) {
	env := newMovieEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := i % env.p.Users
		if err := env.client.RunTxn(context.Background(), env.ownerOpts(u, true), func(x *tc.Txn) error {
			return x.Upsert(workload.TableUsers, workload.UserKey(u),
				[]byte(fmt.Sprintf("profile-%d", i)))
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2MovieW4(b *testing.B) {
	env := newMovieEnv(b)
	for i := 0; i < 500; i++ {
		u, m := i%env.p.Users, i%env.p.Movies
		if err := env.client.RunTxn(context.Background(), env.ownerOpts(u, true), func(x *tc.Txn) error {
			return x.Upsert(workload.TableMyReviews, workload.MyReviewKey(u, m), []byte("r"))
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := i % env.p.Users
		prefix := workload.UserKey(u) + "/"
		if err := env.client.RunTxn(context.Background(), env.ownerOpts(u, false), func(x *tc.Txn) error {
			_, _, err := x.Scan(workload.TableMyReviews, prefix, prefix+"~", 0)
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- recovery micro-benchmarks ------------------------------------------

func BenchmarkDCCrashRecovery(b *testing.B) {
	dep, err := core.New(core.Options{TCs: 1, DCs: 1, Tables: []string{"kv"},
		DCConfig: func(int) dc.Config { return dc.Config{PageBytes: 1024} }})
	if err != nil {
		b.Fatal(err)
	}
	defer dep.Close()
	client := dep.Client()
	for i := 0; i < 2000; i++ {
		if err := client.RunTxn(context.Background(), core.TxnOptions{}, func(x *tc.Txn) error {
			return x.Upsert("kv", workload.KVKey(i), []byte("v"))
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dep.CrashDC(0)
		if err := dep.RecoverDC(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCCrashRecovery(b *testing.B) {
	dep, err := core.New(core.Options{TCs: 1, DCs: 1, Tables: []string{"kv"}})
	if err != nil {
		b.Fatal(err)
	}
	defer dep.Close()
	client := dep.Client()
	for i := 0; i < 2000; i++ {
		if err := client.RunTxn(context.Background(), core.TxnOptions{}, func(x *tc.Txn) error {
			return x.Upsert("kv", workload.KVKey(i), []byte("v"))
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dep.CrashTC(0)
		if err := dep.RecoverTC(0); err != nil {
			b.Fatal(err)
		}
	}
}
