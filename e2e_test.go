package unbundled_test

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildBinaries compiles unbundled-dc and unbundled-tc into dir and
// returns their paths.
func buildBinaries(t *testing.T) (dcBin, tcBin string) {
	t.Helper()
	bin := t.TempDir()
	dcBin = filepath.Join(bin, "unbundled-dc")
	tcBin = filepath.Join(bin, "unbundled-tc")
	for path, pkg := range map[string]string{dcBin: "./cmd/unbundled-dc", tcBin: "./cmd/unbundled-tc"} {
		cmd := exec.Command("go", "build", "-o", path, pkg)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	return dcBin, tcBin
}

// TestE2ETCPKillRestart is the cross-process acceptance test, the local
// twin of the CI e2e job: build the real binaries, run a TC process
// against a DC process over real TCP, SIGKILL the DC mid-workload,
// restart it on the same address and data dir, and require that every
// committed transaction's writes survive and the TC rode the outage out
// on its own (resend + redial + automatic redo replay — no manual
// intervention).
//
// Skipped under -short (it builds binaries and runs for seconds) and on
// Windows (no SIGKILL).
func TestE2ETCPKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e: skipped in -short mode")
	}
	if runtime.GOOS == "windows" {
		t.Skip("e2e: SIGKILL semantics are POSIX-only")
	}

	dcBin, tcBin := buildBinaries(t)

	dataDir := filepath.Join(t.TempDir(), "dc0")
	startDC := func(listen string) (*exec.Cmd, string) {
		t.Helper()
		cmd := exec.Command(dcBin, "-listen", listen, "-tables", "kv", "-dir", dataDir)
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
		// Readiness line: "unbundled-dc: <name> listening on <addr> ...".
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			for i, f := range fields {
				if f == "on" && i+1 < len(fields) {
					go io.Copy(io.Discard, out) // keep the pipe drained
					return cmd, fields[i+1]
				}
			}
		}
		t.Fatalf("unbundled-dc produced no listening line (scanner err: %v)", sc.Err())
		return nil, ""
	}

	dc1, addr := startDC("127.0.0.1:0")

	const totalTxns = 5000
	tc := exec.Command(tcBin,
		"-dcs", addr, "-txns", fmt.Sprint(totalTxns), "-ops", "4",
		"-checkpoint-every", "500", "-progress-every", "100", "-verify")
	tcOut, err := tc.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	tc.Stderr = os.Stderr
	if err := tc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tc.Process.Kill() })

	var mu sync.Mutex
	var output bytes.Buffer
	progressed := make(chan struct{})
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(tcOut)
		signalled := false
		for sc.Scan() {
			line := sc.Text()
			mu.Lock()
			output.WriteString(line + "\n")
			mu.Unlock()
			if !signalled && strings.Contains(line, "committed 300/") {
				close(progressed)
				signalled = true
			}
		}
		if !signalled {
			close(progressed)
		}
	}()

	// Kill -9 the DC once the workload is demonstrably mid-stream.
	select {
	case <-progressed:
	case <-time.After(60 * time.Second):
		t.Fatal("workload made no progress")
	}
	if err := dc1.Process.Kill(); err != nil { // SIGKILL
		t.Fatalf("kill dc: %v", err)
	}
	dc1.Wait()
	time.Sleep(300 * time.Millisecond) // let the outage bite mid-stream
	startDC(addr)                      // same address, same data dir

	// Drain the pipe before reaping: os/exec's Wait closes it and could
	// discard the trailing VERIFY OK / stats lines this test greps for.
	done := make(chan error, 1)
	go func() { <-scanDone; done <- tc.Wait() }()
	select {
	case err := <-done:
		mu.Lock()
		out := output.String()
		mu.Unlock()
		if err != nil {
			t.Fatalf("unbundled-tc failed: %v\n%s", err, out)
		}
		if !strings.Contains(out, "VERIFY OK") {
			t.Fatalf("no VERIFY OK in output:\n%s", out)
		}
		if m := regexp.MustCompile(`reconnects=(\d+)`).FindStringSubmatch(out); m == nil || m[1] == "0" {
			t.Fatalf("TC reports no reconnect after the DC restart:\n%s", out)
		}
		if m := regexp.MustCompile(`resends=(\d+)`).FindStringSubmatch(out); m == nil || m[1] == "0" {
			t.Fatalf("TC reports no resends despite a mid-stream kill:\n%s", out)
		}
	case <-time.After(120 * time.Second):
		mu.Lock()
		out := output.String()
		mu.Unlock()
		t.Fatalf("unbundled-tc did not finish after the DC restart; output so far:\n%s", out)
	}
}

// TestE2EMultiTCKillRestart is the §6.1 scale-out acceptance test, the
// local twin of the CI multi-TC e2e leg: two unbundled-tc processes (TC 1
// and TC 2 of a fleet, disjoint update ownership declared by one
// -placement spec string) share two unbundled-dc processes over real TCP.
// TC 1 is SIGKILLed mid-workload and restarted on the same TC-log
// directory; both workloads must end VERIFY OK — zero lost committed
// writes — and TC 1's restart (its own incarnation-epoch fence at the
// shared DCs) must not disturb TC 2 at all.
func TestE2EMultiTCKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e: skipped in -short mode")
	}
	if runtime.GOOS == "windows" {
		t.Skip("e2e: SIGKILL semantics are POSIX-only")
	}
	dcBin, tcBin := buildBinaries(t)
	work := t.TempDir()

	// The one spec string that drives the whole fleet: data hashed across
	// both DCs, ownership split along the workload key prefixes.
	const spec = "kv: dc=hash(2) owner=range(<w2:1,*:2)"

	var dcAddrs []string
	for i := 0; i < 2; i++ {
		cmd := exec.Command(dcBin, "-listen", "127.0.0.1:0", "-tables", "kv",
			"-dir", filepath.Join(work, fmt.Sprintf("dc%d", i)), "-name", fmt.Sprintf("dc%d", i))
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
		sc := bufio.NewScanner(out)
		addr := ""
		for sc.Scan() && addr == "" {
			fields := strings.Fields(sc.Text())
			for i, f := range fields {
				if f == "on" && i+1 < len(fields) {
					addr = fields[i+1]
					break
				}
			}
		}
		if addr == "" {
			t.Fatalf("dc%d produced no listening line (scanner err: %v)", i, sc.Err())
		}
		go io.Copy(io.Discard, out)
		dcAddrs = append(dcAddrs, addr)
	}
	dcList := strings.Join(dcAddrs, ",")

	type tcProc struct {
		cmd        *exec.Cmd
		mu         sync.Mutex
		buf        bytes.Buffer
		progressed chan struct{}
		scanDone   chan struct{}
	}
	startTC := func(id, txns int) *tcProc {
		t.Helper()
		cmd := exec.Command(tcBin,
			"-dcs", dcList, "-placement", spec,
			"-tc-id", fmt.Sprint(id), "-tcs", "2",
			"-dir", filepath.Join(work, fmt.Sprintf("tc%d", id)),
			"-txns", fmt.Sprint(txns), "-ops", "4",
			"-checkpoint-every", "500", "-progress-every", "100", "-verify")
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill() })
		p := &tcProc{cmd: cmd, progressed: make(chan struct{}), scanDone: make(chan struct{})}
		go func() {
			defer close(p.scanDone)
			sc := bufio.NewScanner(out)
			signalled := false
			for sc.Scan() {
				line := sc.Text()
				p.mu.Lock()
				p.buf.WriteString(line + "\n")
				p.mu.Unlock()
				if !signalled && strings.Contains(line, "committed 300/") {
					close(p.progressed)
					signalled = true
				}
			}
			if !signalled {
				close(p.progressed)
			}
		}()
		return p
	}
	output := func(p *tcProc) string {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.buf.String()
	}

	const totalTxns = 4000
	tc2 := startTC(2, totalTxns)
	tc1a := startTC(1, totalTxns)

	select {
	case <-tc1a.progressed:
	case <-time.After(60 * time.Second):
		t.Fatal("TC1 made no progress")
	}
	if err := tc1a.cmd.Process.Kill(); err != nil { // SIGKILL mid-workload
		t.Fatalf("kill tc1: %v", err)
	}
	<-tc1a.scanDone // drain the pipe before Wait may close it
	tc1a.cmd.Wait()
	time.Sleep(300 * time.Millisecond)

	// Restart TC 1 on the same flags and TC-log directory: it recovers
	// from its own log (epoch-fenced DC reset, redo, loser undo) and runs
	// the whole workload again — unique keys and deterministic values
	// make the re-run idempotent and the verify oracle exact.
	tc1b := startTC(1, totalTxns)

	waitTC := func(name string, p *tcProc) string {
		t.Helper()
		// Wait for the scanner's EOF before reaping: os/exec's Wait
		// closes the stdout pipe, which could discard trailing output
		// (the VERIFY OK line this test greps for) still in flight.
		select {
		case <-p.scanDone:
		case <-time.After(180 * time.Second):
			t.Fatalf("%s did not finish; output so far:\n%s", name, output(p))
		}
		if err := p.cmd.Wait(); err != nil {
			t.Fatalf("%s failed: %v\n%s", name, err, output(p))
		}
		return output(p)
	}
	o1 := waitTC("restarted tc1", tc1b)
	o2 := waitTC("tc2", tc2)

	if !strings.Contains(o1, "VERIFY OK") {
		t.Fatalf("restarted TC1: no VERIFY OK:\n%s", o1)
	}
	if !strings.Contains(o1, "restarting tc 1 from its log") {
		t.Fatalf("restarted TC1 did not recover from its log:\n%s", o1)
	}
	if m := regexp.MustCompile(`restarted: epoch=(\d+)`).FindStringSubmatch(o1); m == nil || m[1] == "1" {
		t.Fatalf("restarted TC1 did not advance its epoch:\n%s", o1)
	}
	if !strings.Contains(o2, "VERIFY OK") {
		t.Fatalf("TC2 (undisturbed by TC1's restart): no VERIFY OK:\n%s", o2)
	}
	if killed := output(tc1a); strings.Contains(killed, "VERIFY") {
		t.Fatalf("TC1 was killed after verification started; the restart leg proved nothing:\n%s", killed)
	}
}
