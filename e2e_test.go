package unbundled_test

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestE2ETCPKillRestart is the cross-process acceptance test, the local
// twin of the CI e2e job: build the real binaries, run a TC process
// against a DC process over real TCP, SIGKILL the DC mid-workload,
// restart it on the same address and data dir, and require that every
// committed transaction's writes survive and the TC rode the outage out
// on its own (resend + redial + automatic redo replay — no manual
// intervention).
//
// Skipped under -short (it builds binaries and runs for seconds) and on
// Windows (no SIGKILL).
func TestE2ETCPKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e: skipped in -short mode")
	}
	if runtime.GOOS == "windows" {
		t.Skip("e2e: SIGKILL semantics are POSIX-only")
	}

	bin := t.TempDir()
	dcBin := filepath.Join(bin, "unbundled-dc")
	tcBin := filepath.Join(bin, "unbundled-tc")
	for path, pkg := range map[string]string{dcBin: "./cmd/unbundled-dc", tcBin: "./cmd/unbundled-tc"} {
		cmd := exec.Command("go", "build", "-o", path, pkg)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	dataDir := filepath.Join(t.TempDir(), "dc0")
	startDC := func(listen string) (*exec.Cmd, string) {
		t.Helper()
		cmd := exec.Command(dcBin, "-listen", listen, "-tables", "kv", "-dir", dataDir)
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
		// Readiness line: "unbundled-dc: <name> listening on <addr> ...".
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			for i, f := range fields {
				if f == "on" && i+1 < len(fields) {
					go io.Copy(io.Discard, out) // keep the pipe drained
					return cmd, fields[i+1]
				}
			}
		}
		t.Fatalf("unbundled-dc produced no listening line (scanner err: %v)", sc.Err())
		return nil, ""
	}

	dc1, addr := startDC("127.0.0.1:0")

	const totalTxns = 5000
	tc := exec.Command(tcBin,
		"-dcs", addr, "-txns", fmt.Sprint(totalTxns), "-ops", "4",
		"-checkpoint-every", "500", "-progress-every", "100", "-verify")
	tcOut, err := tc.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	tc.Stderr = os.Stderr
	if err := tc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tc.Process.Kill() })

	var mu sync.Mutex
	var output bytes.Buffer
	progressed := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(tcOut)
		signalled := false
		for sc.Scan() {
			line := sc.Text()
			mu.Lock()
			output.WriteString(line + "\n")
			mu.Unlock()
			if !signalled && strings.Contains(line, "committed 300/") {
				close(progressed)
				signalled = true
			}
		}
		if !signalled {
			close(progressed)
		}
	}()

	// Kill -9 the DC once the workload is demonstrably mid-stream.
	select {
	case <-progressed:
	case <-time.After(60 * time.Second):
		t.Fatal("workload made no progress")
	}
	if err := dc1.Process.Kill(); err != nil { // SIGKILL
		t.Fatalf("kill dc: %v", err)
	}
	dc1.Wait()
	time.Sleep(300 * time.Millisecond) // let the outage bite mid-stream
	startDC(addr)                      // same address, same data dir

	done := make(chan error, 1)
	go func() { done <- tc.Wait() }()
	select {
	case err := <-done:
		mu.Lock()
		out := output.String()
		mu.Unlock()
		if err != nil {
			t.Fatalf("unbundled-tc failed: %v\n%s", err, out)
		}
		if !strings.Contains(out, "VERIFY OK") {
			t.Fatalf("no VERIFY OK in output:\n%s", out)
		}
		if m := regexp.MustCompile(`reconnects=(\d+)`).FindStringSubmatch(out); m == nil || m[1] == "0" {
			t.Fatalf("TC reports no reconnect after the DC restart:\n%s", out)
		}
		if m := regexp.MustCompile(`resends=(\d+)`).FindStringSubmatch(out); m == nil || m[1] == "0" {
			t.Fatalf("TC reports no resends despite a mid-stream kill:\n%s", out)
		}
	case <-time.After(120 * time.Second):
		mu.Lock()
		out := output.String()
		mu.Unlock()
		t.Fatalf("unbundled-tc did not finish after the DC restart; output so far:\n%s", out)
	}
}
