// Package unbundled is a faithful implementation of "Unbundling
// Transaction Services in the Cloud" (Lomet, Fekete, Weikum, Zwilling,
// CIDR 2009): a database kernel factored into transactional components
// (TCs — logical locking, logical undo/redo logging, transaction
// atomicity and durability) and data components (DCs — access methods,
// cache, stable storage, atomic idempotent record operations), interacting
// at arm's length through a contract-governed message interface.
//
// # The client API
//
// Open a deployment under a declarative Placement, take its Client, and
// run transactions through it:
//
//	pl := unbundled.MustParsePlacement("kv: dc=hash(2) owner=hash(2)")
//	dep, err := unbundled.Open(unbundled.Options{TCs: 2, DCs: 2, Placement: pl})
//	...
//	defer dep.Close()
//	client := dep.Client()
//	err = client.RunTxnAt(ctx, "kv", "hello", unbundled.TxnOptions{}, func(x *unbundled.Txn) error {
//		if err := x.Insert("kv", "hello", []byte("world")); err != nil {
//			return err
//		}
//		v, ok, err := x.Read("kv", "hello")
//		...
//		return nil
//	})
//
// RunTxn commits when fn returns nil and aborts when it returns an error;
// transient aborts — deadlock victims, lock timeouts, component-
// unavailable windows — are retried automatically with exponential
// backoff, bounded by TxnOptions.MaxAttempts. TxnOptions also selects
// versioned writes (§6.2.2 sharing), read-only enforcement, and a
// per-transaction lock timeout. Client.Begin starts an explicitly managed
// transaction (no retry; Commit/Abort are the caller's job).
//
// # Placement: data placement and §6.1 update ownership
//
// A Placement is the deployment map, declared as a text spec that
// round-trips (ParsePlacement, Placement.String) so the identical string
// drives an in-process deployment and a fleet of separate OS processes.
// Each table clause names two axes:
//
//	users: dc=hash(0-1) owner=range(<m:1,*:2); events: dc=2 owner=any
//
// The dc axis places data — which DC serves each key (fixed target,
// hash(n), mod(n) over the key's digit run, or named key ranges). The
// owner axis partitions update responsibility among the TCs per §6.1:
// each key has at most one owning TC, all TCs may read everywhere, and a
// write outside the issuing TC's partition aborts with the permanent
// ErrWrongOwner — enforced by the TC itself, before anything is locked or
// logged. Lookups on a table no clause covers fail typed
// (ErrUnknownTable) rather than silently landing on DC 0; a "*" clause
// opts into a catch-all. See the internal placement package docs for the
// full grammar.
//
// Transactions route by ownership: hint the write intent with
// TxnOptions.WriteSet (or the Client.RunTxnAt convenience) and the client
// sends the transaction to the owning TC; read-only transactions
// round-robin across TCs with a least-inflight tiebreak, as do writes to
// unowned keys. TxnOptions.TC still pins explicitly when needed.
//
// # Snapshot reads
//
// TxnOptions.ReadOnly transactions are timestamp snapshots by default:
// Begin picks a read timestamp and every Read/Scan is answered by the
// DCs from the committed versions at that timestamp — no locks are
// acquired and no operation flows through the TC, so readers never block
// writers, never deadlock, and any TC can serve any snapshot regardless
// of update ownership. Consistency comes from time, not locks: each TC
// continuously publishes a safe timestamp below which no new commits
// will be assigned, and a DC answers a read at T only once every TC's
// safe timestamp has passed T. A fresh snapshot additionally waits out
// the clock's uncertainty window at Begin, so it observes everything
// committed before Begin returned.
//
//	snap, err := client.Snapshot(ctx)   // one consistent multi-read view
//	defer snap.Close()
//	v, ok, err := snap.Read("kv", "hello")
//
// TxnOptions.Snapshot selects the policy: SnapshotFresh (default — see
// all commits up to Begin), SnapshotBounded (read up to
// TxnOptions.Staleness in the past, skipping both the uncertainty wait
// and the safe-timestamp wait for already-safe timestamps), and
// SnapshotLocked (the pre-snapshot behaviour: S locks through the TC,
// for reads that must serialize against in-flight writers). Snapshot
// reads see versioned writes (TxnOptions.Versioned) at full fidelity;
// unversioned tables degrade to latest-committed-state reads. DCs prune
// versions older than TCConfig.SnapshotRetention (default 10s), which
// bounds SnapshotBounded staleness.
//
// # Contexts and cancellation
//
// Every wait in the stack honors the transaction's context: lock-manager
// queues, wire send/resend loops and unavailable-retry pauses, the
// pipelined commit's ack barrier, and simulated log-force latency. A
// cancelled wait returns promptly with an error that errors.Is-matches
// both ErrCancelled and the context's own error. One thing is deliberately
// not cancellable: the delivery of an already-logged write. Its record is
// in the TC-log, so the §4.2 resend/redo contract must (and will) run to
// completion — cancellation abandons waits, never the protocol.
//
// # Errors
//
// Failures are typed, end to end: the sentinels below (with ErrStaleEpoch
// and friends) survive crossing the TC:DC wire — operation outcomes travel
// as result codes and control-call failures are rehydrated from their
// message text — so errors.Is works identically over direct and networked
// deployments. IsTransient classifies what a caller (or Client.RunTxn
// itself) should retry.
//
// # Failures and recovery
//
// Components fail independently: Deployment.CrashTC / CrashDC /
// CrashAll inject the paper's §5.3 partial failures, and RecoverTC /
// RecoverDC / RecoverAll run the corresponding restart protocols.
//
// # Pipelined operation shipping
//
// The cost of unbundling is that every logical operation crosses a TC:DC
// message boundary (§4.2). With TCConfig.Pipeline, logged writes no longer
// wait for that round trip: their outcome is already decided when they are
// sent — the X lock freezes the key and the pre-check (or, for versioned
// upserts, the operation's own semantics) guarantees success at the DC —
// and the operation is in the TC-log, so the resend/redo contract delivers
// it even across failures. The TC appends the op record, posts the op into
// a per-DC pipeline, and returns to the transaction immediately.
//
// Each pipeline keeps exactly one batch in flight per DC: operations
// queued behind it are coalesced into a single PerformBatch wire message
// (per-op results in the reply) that the DC executes in arrival order, so
// the logical operation stream per DC never reorders and each op keeps its
// LSN request ID for resend idempotence. The ack barrier sits at commit:
// Commit appends the commit record, then overlaps forcing it with draining
// the transaction's outstanding DC acknowledgements, and releases locks
// only after both — no other transaction can ever observe a
// not-yet-applied write, preserving strict two-phase locking semantics
// while transaction latency drops from ops x RTT toward one RTT per batch.
// Abort drains before sending inverse operations, and scans drain for
// read-your-writes (point reads are answered by the transaction cache).
//
// # Networked deployment
//
// The components are separately deployable OS processes: cmd/unbundled-dc
// serves one DC on a TCP address, and a deployment built with
// Options.DCAddrs (as cmd/unbundled-tc does) commits transactions against
// it over real sockets. Both transports — the misbehaving simulated
// fabric and TCP — share one wire codec and one resending client stub, so
// exactly-once semantics are identical; a killed-and-restarted DC process
// is detected through its re-established connection and caught up by
// replaying the TC's redo stream automatically. With a data directory
// (DCConfig.Dir, TCConfig.Dir) the stable media survive process death,
// keeping checkpoint contracts honest across kill -9; a restarted
// unbundled-tc reopens its own log and runs the ordinary §5.3.2 restart
// against the DCs before serving.
//
// Placement is what makes the TC tier itself scale out (§6.1): several
// unbundled-tc processes — each one TC of the fleet, distinguished by
// -tc-id — share the same unbundled-dc processes under one spec string:
//
//	unbundled-dc -listen :7071 -tables kv -dir ./dc1 &
//	unbundled-dc -listen :7072 -tables kv -dir ./dc2 &
//	P='kv: dc=hash(2) owner=range(<w2:1,*:2)'
//	unbundled-tc -dcs :7071,:7072 -placement "$P" -tc-id 1 -tcs 2 -dir ./tc1 &
//	unbundled-tc -dcs :7071,:7072 -placement "$P" -tc-id 2 -tcs 2 -dir ./tc2 &
//
// Each TC fences the DCs with its own incarnation epochs, so killing and
// restarting one TC process never disturbs the other's traffic (§6.1.2).
//
// # Throughput runtime and the overload contract
//
// A networked DC executes requests on a sharded worker pool rather than a
// goroutine per request: ListenConfig sizes the pool (default
// 2xGOMAXPROCS workers) and each worker's bounded queue (default 256).
// Dispatch picks the least-loaded worker; when every queue is full the
// server refuses the request before decoding it, and the refusal crosses
// the wire as the typed transient ErrOverloaded. That is the overload
// contract: a refused request was never executed, so retrying after a
// pause is always safe — and the TC's wire client does exactly that,
// invisibly, counting each refusal in its overloads counter (visible on
// /stats). Callers only ever see ErrOverloaded if they drive the wire
// layer directly; through Client.RunTxn, backpressure surfaces as
// latency, never as an error. Replies that accumulate while a reply
// flush is on the wire leave as one coalesced batch frame (group commit
// for acks); ListenConfig.PerRequest and FlatAcks each restore one
// pre-pool behaviour for comparison. cmd/unbundled-dc exposes the knobs
// as -workers and -queue-depth.
//
// The open-loop throughput harness measures this runtime the way real
// traffic would: transactions arrive on a fixed schedule whatever the
// system is doing, and latency is measured from the scheduled arrival —
// queueing delay counts against the system instead of slowing the load
// down (the "coordinated omission" correction). cmd/unbundled-bench
// -throughput compares the per-request baseline against the sharded
// runtime at the same offered rate; BenchmarkThroughputOpenLoop gates
// the completed-txn/s floor and p99 ceiling in CI.
//
// # Operations plane
//
// Both binaries expose an HTTP admin endpoint with -admin <addr>: /stats
// is a JSON snapshot of every component's counters (TC transaction and
// pipeline counters, DC operation and recovery counters, per-connection
// wire counters — one schema over both transports), /healthz reports
// drain state (503 while draining, so health-checking load balancers
// eject the instance), and /drain + /undrain quiesce and restore the
// component. Draining is an admission gate, not a shutdown: in-flight
// transactions finish (including the pipelined ack barrier), new work is
// refused with the transient ErrDraining — which auto-routed clients ride
// out by retrying onto an undrained peer — and /healthz reports
// "quiesced" once nothing is left in flight. Drain state dies with the
// process: a restarted component serves. Fleet assembly is cross-checked
// at startup (Deployment.ValidatePlacement): every DC the placement
// routes a table to must actually serve that table, else startup fails
// with ErrPlacementMismatch. cmd/soak ties it together: a metrics-
// asserted chaos soak over a real fleet (frame loss, kill -9, drains).
//
// # Restart safety: incarnation epochs
//
// A restarted TC reuses the LSN space above its stable log end (§5.3.2),
// so a request the dead incarnation still had on the wire — a pipelined
// batch, a synchronous resend, a watermark broadcast, even a checkpoint
// call — must never take effect afterwards: its log record died with the
// unforced tail, and executing it would both apply a write no undo covers
// and record a reused LSN in the DC's abstract-LSN idempotence tables.
//
// Every TC therefore carries a monotonic incarnation epoch. It is minted
// at startup and again by every recovery (strictly larger each time), and
// forced into the TC-log before any operation is stamped with it; the
// checkpoint records carry it too, so log truncation never loses the
// incarnation history. Every operation and control call is stamped with
// the sender's epoch. BeginRestart installs the new epoch at each DC as a
// per-TC fence — durably, in the DC-log, before the cache reset runs — and
// from that moment the DC refuses anything stamped with an older epoch:
// operations nack permanently with ErrStaleEpoch (never retried), stale
// watermark broadcasts are dropped, and stale control calls fail typed.
// EndRestart atomically activates the staged epoch and discards whatever
// the dead incarnation still had queued. The fence survives DC crashes
// (epoch snapshots are replayed from the DC-log before any operation is
// served, and truncation re-logs them), making restart correctness
// independent of timing on a lossy, reordering, duplicating network.
package unbundled

import (
	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/buffer"
	"github.com/cidr09/unbundled/internal/core"
	"github.com/cidr09/unbundled/internal/dc"
	"github.com/cidr09/unbundled/internal/placement"
	"github.com/cidr09/unbundled/internal/tc"
	"github.com/cidr09/unbundled/internal/wire"
)

// Re-exported types: the full API surface of a deployment.
type (
	// Deployment is a running unbundled kernel (N TCs sharing M DCs).
	Deployment = core.Deployment
	// Client is the deployment-level transaction API: routing, typed
	// retry, and context plumbing. Obtain it with Deployment.Client.
	Client = core.Client
	// TxnOptions shapes one client transaction (versioning, read-only
	// snapshot reads, lock timeout, write-intent routing, TC pin, retry
	// policy). The zero value is a plain auto-routed read-write
	// transaction.
	TxnOptions = core.TxnOptions
	// Snapshot is a consistent multi-read view of the deployment at one
	// timestamp, from Client.Snapshot. Close releases it.
	Snapshot = core.Snapshot
	// SnapshotPolicy selects how a read-only transaction picks its read
	// timestamp (TxnOptions.Snapshot).
	SnapshotPolicy = core.SnapshotPolicy
	// Options configures Open.
	Options = core.Options
	// Placement is the declarative deployment map: data placement
	// (table/key to DC) and §6.1 update ownership (table/key to owning
	// TC), round-trippable through ParsePlacement and String.
	Placement = placement.Placement
	// TCConfig customizes one transactional component.
	TCConfig = tc.Config
	// DCConfig customizes one data component.
	DCConfig = dc.Config
	// NetworkConfig interposes the misbehaving message fabric.
	NetworkConfig = wire.Config
	// DialConfig shapes the TCP connections of a networked deployment
	// (Options.DCAddrs pointing at cmd/unbundled-dc processes).
	DialConfig = wire.DialConfig
	// ListenConfig shapes the server runtime behind a networked DC: worker
	// pool size, per-worker queue depth (past which requests are refused
	// with ErrOverloaded), and the PerRequest/FlatAcks baseline switches.
	// cmd/unbundled-dc surfaces it as -workers and -queue-depth.
	ListenConfig = wire.ListenConfig
	// TC is a transactional component.
	TC = tc.TC
	// DC is a data component.
	DC = dc.DC
	// Txn is a user transaction executing at a TC.
	Txn = tc.Txn
	// SyncStrategy selects the §5.1.2 page-sync algorithm.
	SyncStrategy = buffer.SyncStrategy
	// RangeProtocol selects the §3.1 range-locking strategy.
	RangeProtocol = tc.RangeProtocol
)

// Page-sync strategies (§5.1.2).
const (
	SyncBlock  = buffer.SyncBlock
	SyncFull   = buffer.SyncFull
	SyncHybrid = buffer.SyncHybrid
)

// Range-locking protocols (§3.1).
const (
	FetchAhead  = tc.FetchAhead
	StaticRange = tc.StaticRange
)

// Snapshot policies for read-only transactions.
const (
	SnapshotFresh   = core.SnapshotFresh
	SnapshotBounded = core.SnapshotBounded
	SnapshotLocked  = core.SnapshotLocked
)

// The error taxonomy. Branch with errors.Is; IsTransient classifies the
// retryable subset. ErrCancelled-carrying errors also wrap the context's
// own error (context.Canceled / context.DeadlineExceeded).
var (
	// ErrNotFound: update/delete/read of a missing key.
	ErrNotFound = tc.ErrNotFound
	// ErrDuplicate: insert of an existing key.
	ErrDuplicate = tc.ErrDuplicate
	// ErrTxnDone: use of a committed or aborted transaction.
	ErrTxnDone = tc.ErrTxnDone
	// ErrDeadlock: the transaction was chosen as a deadlock victim and
	// aborted. Transient.
	ErrDeadlock = base.ErrDeadlock
	// ErrLockTimeout: a lock wait exceeded its bound; the transaction was
	// aborted. Transient.
	ErrLockTimeout = base.ErrLockTimeout
	// ErrUnavailable: a component is down, restarting, or shut down.
	// Transient.
	ErrUnavailable = base.ErrUnavailable
	// ErrStaleEpoch: the request came from a TC incarnation fenced by a
	// restart. Permanent.
	ErrStaleEpoch = base.ErrStaleEpoch
	// ErrCancelled: the caller's context was cancelled or its deadline
	// expired. Permanent under that context.
	ErrCancelled = base.ErrCancelled
	// ErrReadOnly: a write inside a TxnOptions.ReadOnly transaction.
	// Permanent.
	ErrReadOnly = base.ErrReadOnly
	// ErrCommitAmbiguous: Commit failed after the commit record was
	// appended — the outcome is decided by the log, so the transaction
	// must not be re-executed. Client.RunTxn never retries it, even when
	// the underlying failure is transient.
	ErrCommitAmbiguous = tc.ErrCommitAmbiguous
	// ErrWrongOwner: a write outside the issuing TC's §6.1 update-
	// ownership partition; the transaction was aborted. Permanent — route
	// the transaction to the owner (TxnOptions.WriteSet, Client.RunTxnAt)
	// instead of retrying.
	ErrWrongOwner = base.ErrWrongOwner
	// ErrUnknownTable: a placement lookup for a table no clause covers
	// (and no "*" catch-all exists). Permanent.
	ErrUnknownTable = base.ErrUnknownTable
	// ErrDraining: the component is draining — finishing in-flight work
	// while refusing new admission (the operations-plane drain verb).
	// Transient: retry routes onto an undrained peer, or succeeds once the
	// operator undrains.
	ErrDraining = base.ErrDraining
	// ErrPlacementMismatch: the fleet-assembly cross-check found a DC whose
	// served-table catalog contradicts the placement spec
	// (Deployment.ValidatePlacement). Permanent — fix the spec or the DC's
	// -tables before serving traffic.
	ErrPlacementMismatch = base.ErrPlacementMismatch
	// ErrOverloaded: a server's worker queues were full and the request was
	// refused before executing (admission control shedding load). Transient
	// — retrying after a pause is always safe; the wire client absorbs
	// these itself, so through Client.RunTxn overload surfaces as latency,
	// not as this error.
	ErrOverloaded = base.ErrOverloaded
)

// ParsePlacement reads a placement spec — ";"- or newline-separated
// "<table>: dc=<axis> owner=<axis>" clauses — and returns the Placement
// it describes. Placement.String prints the canonical form of the same
// spec, so ParsePlacement(s).String() is a fixpoint: the one string can
// be checked into a config, passed to cmd/unbundled-tc -placement, and
// handed to Options.Placement, and every holder resolves keys
// identically.
func ParsePlacement(spec string) (*Placement, error) { return placement.Parse(spec) }

// MustParsePlacement is ParsePlacement for compile-time-constant specs;
// it panics on error.
func MustParsePlacement(spec string) *Placement { return placement.MustParse(spec) }

// HashPlacement returns the uniform placement: every listed table hashed
// across all dcs data components, ownership hashed across all tcs
// transactional components.
func HashPlacement(tables []string, dcs, tcs int) *Placement {
	return placement.Hash(tables, dcs, tcs)
}

// IsTransient reports whether err is an abort worth retrying as a fresh
// transaction (deadlock victim, lock timeout, component unavailable).
// Client.RunTxn already retries exactly this class.
func IsTransient(err error) bool { return base.IsTransient(err) }

// Open builds and starts a deployment.
func Open(opts Options) (*Deployment, error) { return core.New(opts) }
