// Package unbundled is a faithful implementation of "Unbundling
// Transaction Services in the Cloud" (Lomet, Fekete, Weikum, Zwilling,
// CIDR 2009): a database kernel factored into transactional components
// (TCs — logical locking, logical undo/redo logging, transaction
// atomicity and durability) and data components (DCs — access methods,
// cache, stable storage, atomic idempotent record operations), interacting
// at arm's length through a contract-governed message interface.
//
// Open a deployment, then run transactions against any of its TCs:
//
//	dep, err := unbundled.Open(unbundled.Options{
//		TCs: 1, DCs: 2, Tables: []string{"kv"},
//		Route: func(table, key string) int { ... },
//	})
//	...
//	err = dep.TCs[0].RunTxn(false, func(x *unbundled.Txn) error {
//		if err := x.Insert("kv", "hello", []byte("world")); err != nil {
//			return err
//		}
//		v, ok, err := x.Read("kv", "hello")
//		...
//		return nil
//	})
//
// Components fail independently: Deployment.CrashTC / CrashDC /
// CrashAll inject the paper's §5.3 partial failures, and RecoverTC /
// RecoverDC / RecoverAll run the corresponding restart protocols.
package unbundled

import (
	"github.com/cidr09/unbundled/internal/buffer"
	"github.com/cidr09/unbundled/internal/core"
	"github.com/cidr09/unbundled/internal/dc"
	"github.com/cidr09/unbundled/internal/tc"
	"github.com/cidr09/unbundled/internal/wire"
)

// Re-exported types: the full API surface of a deployment.
type (
	// Deployment is a running unbundled kernel (N TCs sharing M DCs).
	Deployment = core.Deployment
	// Options configures Open.
	Options = core.Options
	// TCConfig customizes one transactional component.
	TCConfig = tc.Config
	// DCConfig customizes one data component.
	DCConfig = dc.Config
	// NetworkConfig interposes the misbehaving message fabric.
	NetworkConfig = wire.Config
	// TC is a transactional component.
	TC = tc.TC
	// DC is a data component.
	DC = dc.DC
	// Txn is a user transaction executing at a TC.
	Txn = tc.Txn
	// SyncStrategy selects the §5.1.2 page-sync algorithm.
	SyncStrategy = buffer.SyncStrategy
	// RangeProtocol selects the §3.1 range-locking strategy.
	RangeProtocol = tc.RangeProtocol
)

// Page-sync strategies (§5.1.2).
const (
	SyncBlock  = buffer.SyncBlock
	SyncFull   = buffer.SyncFull
	SyncHybrid = buffer.SyncHybrid
)

// Range-locking protocols (§3.1).
const (
	FetchAhead  = tc.FetchAhead
	StaticRange = tc.StaticRange
)

// Transaction-level errors.
var (
	ErrNotFound  = tc.ErrNotFound
	ErrDuplicate = tc.ErrDuplicate
	ErrTxnDone   = tc.ErrTxnDone
)

// Open builds and starts a deployment.
func Open(opts Options) (*Deployment, error) { return core.New(opts) }
