// Package unbundled is a faithful implementation of "Unbundling
// Transaction Services in the Cloud" (Lomet, Fekete, Weikum, Zwilling,
// CIDR 2009): a database kernel factored into transactional components
// (TCs — logical locking, logical undo/redo logging, transaction
// atomicity and durability) and data components (DCs — access methods,
// cache, stable storage, atomic idempotent record operations), interacting
// at arm's length through a contract-governed message interface.
//
// Open a deployment, then run transactions against any of its TCs:
//
//	dep, err := unbundled.Open(unbundled.Options{
//		TCs: 1, DCs: 2, Tables: []string{"kv"},
//		Route: func(table, key string) int { ... },
//	})
//	...
//	err = dep.TCs[0].RunTxn(false, func(x *unbundled.Txn) error {
//		if err := x.Insert("kv", "hello", []byte("world")); err != nil {
//			return err
//		}
//		v, ok, err := x.Read("kv", "hello")
//		...
//		return nil
//	})
//
// Components fail independently: Deployment.CrashTC / CrashDC /
// CrashAll inject the paper's §5.3 partial failures, and RecoverTC /
// RecoverDC / RecoverAll run the corresponding restart protocols.
//
// # Pipelined operation shipping
//
// The cost of unbundling is that every logical operation crosses a TC:DC
// message boundary (§4.2). With TCConfig.Pipeline, logged writes no longer
// wait for that round trip: their outcome is already decided when they are
// sent — the X lock freezes the key and the pre-check (or, for versioned
// upserts, the operation's own semantics) guarantees success at the DC —
// and the operation is in the TC-log, so the resend/redo contract delivers
// it even across failures. The TC appends the op record, posts the op into
// a per-DC pipeline, and returns to the transaction immediately.
//
// Each pipeline keeps exactly one batch in flight per DC: operations
// queued behind it are coalesced into a single PerformBatch wire message
// (per-op results in the reply) that the DC executes in arrival order, so
// the logical operation stream per DC never reorders and each op keeps its
// LSN request ID for resend idempotence. The ack barrier sits at commit:
// Commit appends the commit record, then overlaps forcing it with draining
// the transaction's outstanding DC acknowledgements, and releases locks
// only after both — no other transaction can ever observe a
// not-yet-applied write, preserving strict two-phase locking semantics
// while transaction latency drops from ops x RTT toward one RTT per batch.
// Abort drains before sending inverse operations, and scans drain for
// read-your-writes (point reads are answered by the transaction cache).
//
// # Restart safety: incarnation epochs
//
// A restarted TC reuses the LSN space above its stable log end (§5.3.2),
// so a request the dead incarnation still had on the wire — a pipelined
// batch, a synchronous resend, a watermark broadcast, even a checkpoint
// call — must never take effect afterwards: its log record died with the
// unforced tail, and executing it would both apply a write no undo covers
// and record a reused LSN in the DC's abstract-LSN idempotence tables.
//
// Every TC therefore carries a monotonic incarnation epoch. It is minted
// at startup and again by every recovery (strictly larger each time), and
// forced into the TC-log before any operation is stamped with it; the
// checkpoint records carry it too, so log truncation never loses the
// incarnation history. Every operation and control call is stamped with
// the sender's epoch. BeginRestart installs the new epoch at each DC as a
// per-TC fence — durably, in the DC-log, before the cache reset runs — and
// from that moment the DC refuses anything stamped with an older epoch:
// operations nack permanently with CodeStaleEpoch (never retried; the
// pipeline surfaces ErrStaleEpoch at the barrier), stale watermark
// broadcasts are dropped, and stale control calls fail with ErrStaleEpoch.
// EndRestart atomically activates the staged epoch and discards whatever
// the dead incarnation still had queued inside the DC. The same epoch
// stamp doubles as the TC-side generation fence: acknowledgements of a
// dead incarnation's calls can never feed the restarted ack tracker. The
// fence survives DC crashes (epoch snapshots are replayed from the DC-log
// before any operation is served, and truncation re-logs them), making
// restart correctness independent of timing on a lossy, reordering,
// duplicating network.
package unbundled

import (
	"github.com/cidr09/unbundled/internal/buffer"
	"github.com/cidr09/unbundled/internal/core"
	"github.com/cidr09/unbundled/internal/dc"
	"github.com/cidr09/unbundled/internal/tc"
	"github.com/cidr09/unbundled/internal/wire"
)

// Re-exported types: the full API surface of a deployment.
type (
	// Deployment is a running unbundled kernel (N TCs sharing M DCs).
	Deployment = core.Deployment
	// Options configures Open.
	Options = core.Options
	// TCConfig customizes one transactional component.
	TCConfig = tc.Config
	// DCConfig customizes one data component.
	DCConfig = dc.Config
	// NetworkConfig interposes the misbehaving message fabric.
	NetworkConfig = wire.Config
	// TC is a transactional component.
	TC = tc.TC
	// DC is a data component.
	DC = dc.DC
	// Txn is a user transaction executing at a TC.
	Txn = tc.Txn
	// SyncStrategy selects the §5.1.2 page-sync algorithm.
	SyncStrategy = buffer.SyncStrategy
	// RangeProtocol selects the §3.1 range-locking strategy.
	RangeProtocol = tc.RangeProtocol
)

// Page-sync strategies (§5.1.2).
const (
	SyncBlock  = buffer.SyncBlock
	SyncFull   = buffer.SyncFull
	SyncHybrid = buffer.SyncHybrid
)

// Range-locking protocols (§3.1).
const (
	FetchAhead  = tc.FetchAhead
	StaticRange = tc.StaticRange
)

// Transaction-level errors.
var (
	ErrNotFound  = tc.ErrNotFound
	ErrDuplicate = tc.ErrDuplicate
	ErrTxnDone   = tc.ErrTxnDone
)

// Open builds and starts a deployment.
func Open(opts Options) (*Deployment, error) { return core.New(opts) }
