package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/cidr09/unbundled/internal/dc"
	"github.com/cidr09/unbundled/internal/tc"
	"github.com/cidr09/unbundled/internal/wire"
)

// TestRemoteDeploymentKillRestart drives the Options.DCAddrs path without
// spawning processes: the "DC process" is a dc.DC behind a wire.Listener
// in this test, and its kill -9 is modelled as a kill between requests —
// the listener closes (draining in-flight handlers, so the abandoned,
// un-shut-down DC object can never touch its directory again) and only
// the disk directory survives into the second incarnation, which reopens
// it on the same address. The deployment must reconnect, replay the redo
// stream unprompted, and lose nothing.
func TestRemoteDeploymentKillRestart(t *testing.T) {
	dir := t.TempDir()
	startDC := func(addr string) *wire.Listener {
		t.Helper()
		d, err := dc.New(dc.Config{Name: "rdc", Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.CreateTable("kv"); err != nil {
			t.Fatal(err)
		}
		l, err := wire.Listen(addr, d)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	l1 := startDC("127.0.0.1:0")
	addr := l1.Addr()

	dep, err := New(Options{
		TCs:     1,
		DCAddrs: []string{addr},
		DialConfig: wire.DialConfig{
			ResendAfter: 5 * time.Millisecond, RedialBackoff: 2 * time.Millisecond,
		},
		TCConfig: func(int) tc.Config { return tc.Config{Pipeline: true} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if !dep.Remote() {
		t.Fatal("DCAddrs deployment does not report Remote")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := dep.WaitConnected(ctx); err != nil {
		t.Fatal(err)
	}

	client := dep.Client()
	write := func(i int) error {
		return client.RunTxn(context.Background(), TxnOptions{}, func(x *tc.Txn) error {
			return x.Upsert("kv", fmt.Sprintf("k%04d", i), []byte(fmt.Sprintf("v%d", i)))
		})
	}
	const before, after = 150, 150
	for i := 0; i < before; i++ {
		if err := write(i); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if _, err := dep.TCs[0].Checkpoint(context.Background()); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	// Kill: the listener vanishes, the DC object is abandoned with its
	// cache un-flushed. Only the directory survives.
	l1.Close()

	// Writes issued during the outage must simply stall and then land.
	errCh := make(chan error, after)
	go func() {
		for i := before; i < before+after; i++ {
			errCh <- write(i)
		}
	}()
	time.Sleep(50 * time.Millisecond) // let resends hit the void

	l2 := startDC(addr)
	defer l2.Close()

	for i := 0; i < after; i++ {
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatalf("outage-spanning write failed: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("outage-spanning writes never completed after DC restart")
		}
	}

	// Every committed write must be readable from the restarted DC.
	if err := client.RunTxn(context.Background(), TxnOptions{}, func(x *tc.Txn) error {
		for i := 0; i < before+after; i++ {
			v, ok, err := x.Read("kv", fmt.Sprintf("k%04d", i))
			if err != nil {
				return err
			}
			if !ok || string(v) != fmt.Sprintf("v%d", i) {
				return fmt.Errorf("key k%04d lost across kill+restart (found=%v, v=%q)", i, ok, v)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	ws := dep.RemoteWireStats()
	if ws.Reconnects == 0 {
		t.Fatalf("no reconnects recorded: %+v", ws)
	}
	if ws.Resends == 0 {
		t.Fatalf("no resends recorded: %+v", ws)
	}
}

// TestRemoteDeploymentCrashGuards pins the in-process-only crash API on
// remote deployments: both misuses fail loudly — CrashDC panics (it has
// no error return, and a silent no-op would fake a fault injection),
// RecoverDC returns a typed refusal.
func TestRemoteDeploymentCrashGuards(t *testing.T) {
	l := func() *wire.Listener {
		d, err := dc.New(dc.Config{Name: "g"})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := wire.Listen("127.0.0.1:0", d)
		if err != nil {
			t.Fatal(err)
		}
		return ln
	}()
	defer l.Close()
	dep, err := New(Options{DCAddrs: []string{l.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("CrashDC on a remote DC did not panic")
			}
		}()
		dep.CrashDC(0)
	}()
	if err := dep.RecoverDC(0); err == nil {
		t.Fatal("RecoverDC on a remote DC did not error")
	}
}
