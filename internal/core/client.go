package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/tc"
)

// SnapshotPolicy selects how a read-only transaction obtains its
// consistent view; see the tc package constants for the semantics.
type SnapshotPolicy = tc.SnapshotPolicy

const (
	// SnapshotFresh reads at a fresh timestamp after waiting out the
	// clock's uncertainty window: externally consistent (the default).
	SnapshotFresh SnapshotPolicy = tc.SnapshotFresh
	// SnapshotBounded reads up to TxnOptions.Staleness behind now, never
	// waiting on the clock.
	SnapshotBounded SnapshotPolicy = tc.SnapshotBounded
	// SnapshotLocked is the legacy lock-based read-only posture.
	SnapshotLocked SnapshotPolicy = tc.SnapshotLocked
)

// TxnOptions shapes one client transaction. The zero value is a plain
// read-write transaction, auto-routed across the deployment's TCs, with
// the default retry policy.
type TxnOptions struct {
	// Versioned makes writes keep before versions (§6.2.2), enabling
	// cross-TC read-committed readers, snapshot visibility, and cheap
	// undo.
	Versioned bool
	// ReadOnly refuses every mutation with ErrReadOnly and (unless
	// Snapshot is SnapshotLocked) serves every Read/Scan from a snapshot:
	// a consistent view at one timestamp, read at the DC without locks
	// and without TC round trips.
	ReadOnly bool
	// Snapshot selects the read-only view policy; ignored unless ReadOnly.
	Snapshot SnapshotPolicy
	// Staleness is how far behind now a SnapshotBounded view may read;
	// ignored otherwise.
	Staleness time.Duration
	// LockTimeout overrides the TC's configured lock-wait bound for this
	// transaction: positive bounds each wait, negative waits forever, zero
	// keeps the TC default.
	LockTimeout time.Duration
	// TC pins the transaction to one transactional component by its ID
	// (matching TC.ID; in-process deployments default to IDs 1..TCs).
	// Zero routes automatically: by WriteSet ownership when the
	// deployment's placement partitions update rights, else round-robin
	// across TCs with a least-inflight tiebreak.
	//
	// Locks live per TC, so two TCs serialize nothing against each other:
	// when a deployment runs more than one TC, the §6.1 contract applies —
	// update responsibility for each key must be partitioned among the
	// TCs. Declare the partition in Options.Placement and hint writes via
	// WriteSet (or RunTxnAt) instead of hand-computing this pin; the TC
	// itself enforces the partition (ErrWrongOwner) either way.
	TC int
	// WriteSet hints the transaction's write intent: table -> keys it
	// will update. When the deployment's placement partitions update
	// ownership (§6.1), the transaction is routed to the TC owning those
	// keys — every hinted key must resolve to the same owner, and a hint
	// spanning two partitions fails with ErrWrongOwner before the
	// transaction starts (a §6.1 deployment has no distributed
	// transactions to offer). Keys nobody owns contribute nothing; if no
	// hinted key is owned, round-robin applies. Ignored when TC pins
	// explicitly or for ReadOnly transactions (reads run anywhere).
	// The hint routes; it does not limit — but writes outside the owner's
	// partition will abort with ErrWrongOwner at the TC.
	WriteSet map[string][]string
	// MaxAttempts bounds RunTxn's automatic retry of transient aborts
	// (deadlock victims, lock timeouts, component-unavailable windows):
	// total attempts including the first. Zero means the default (8); 1
	// disables retry. Begin ignores it.
	MaxAttempts int
	// RetryBackoff is RunTxn's initial inter-attempt backoff, doubling per
	// attempt (capped at 50ms). Zero means the default (200µs).
	RetryBackoff time.Duration
}

// tcOpts is the single conversion point from deployment-level options to
// TC-level options: every tc.TxnOptions field is threaded through a
// same-named field here (options_test.go enforces this by reflection, so
// a field added to one struct but not the other fails the build's tests,
// not a user's transaction).
func (o TxnOptions) tcOpts() tc.TxnOptions {
	return tc.TxnOptions{
		Versioned:   o.Versioned,
		ReadOnly:    o.ReadOnly,
		Snapshot:    o.Snapshot,
		Staleness:   o.Staleness,
		LockTimeout: o.LockTimeout,
	}
}

// Client is the deployment-level transaction API: it routes transactions
// across the deployment's TCs (or honors a pin), retries transient aborts
// with backoff, and threads the caller's context through every wait in the
// stack — lock queues, wire resend/pause loops, and commit barriers.
//
// A Client is safe for concurrent use; Deployment.Client returns a shared
// instance. With multiple TCs, see TxnOptions.TC for the key-ownership
// contract auto-routing relies on.
type Client struct {
	dep *Deployment
	rr  atomic.Uint64
}

// Client returns the deployment's shared transaction client.
func (d *Deployment) Client() *Client {
	d.clientOnce.Do(func() { d.client = &Client{dep: d} })
	return d.client
}

const (
	defaultAttempts = 8
	defaultBackoff  = 200 * time.Microsecond
	maxBackoff      = 50 * time.Millisecond
)

// pick selects the TC for one attempt: the pinned one, the §6.1 owner of
// the hinted write set, or round-robin with a least-inflight tiebreak —
// the rotating start index spreads ties, and a TC running fewer
// transactions wins outright so a stalled or loaded TC sheds new work.
func (c *Client) pick(opts TxnOptions) (*tc.TC, error) {
	tcs := c.dep.TCs
	if opts.TC != 0 {
		// Bounds before the uint16 conversion: a negative or oversized pin
		// must error, not alias a valid TC ID.
		if opts.TC < 1 || opts.TC > math.MaxUint16 {
			return nil, fmt.Errorf("unbundled: no TC with ID %d in this deployment", opts.TC)
		}
		return c.byID(base.TCID(opts.TC))
	}
	if len(opts.WriteSet) > 0 && !opts.ReadOnly {
		if t, err := c.owner(opts.WriteSet); err != nil || t != nil {
			return t, err
		}
	}
	start := int(c.rr.Add(1)-1) % len(tcs)
	var best *tc.TC
	bestLoad := 0
	for i := 0; i < len(tcs); i++ {
		cand := tcs[(start+i)%len(tcs)]
		// A draining TC sheds new work entirely: auto-routed transactions
		// flow to its peers, which is what lets an operator quiesce one TC
		// of a fleet without failing a single client call.
		if cand.Draining() {
			continue
		}
		if load := cand.ActiveTxns(); best == nil || load < bestLoad {
			best, bestLoad = cand, load
		}
	}
	if best == nil {
		// Every TC is draining. Hand the attempt to one anyway: its
		// admission gate rejects typed (ErrDraining, transient), so RunTxn's
		// backoff rides out a drain that lifts mid-retry, and a caller that
		// exhausts its attempts gets the honest error.
		best = tcs[start]
	}
	return best, nil
}

func (c *Client) byID(id base.TCID) (*tc.TC, error) {
	for _, t := range c.dep.TCs {
		if t.ID() == id {
			return t, nil
		}
	}
	return nil, fmt.Errorf("unbundled: no TC with ID %d in this deployment", id)
}

// owner resolves the §6.1 owner of a hinted write set: the unique owning
// TC, nil when nothing in the set is owned (caller falls back to
// round-robin). A set spanning two partitions, or owned by a TC running
// in another process, fails typed with ErrWrongOwner — routing cannot
// make such a transaction legal, only re-partitioning (or sending it to
// the process that owns it) can.
func (c *Client) owner(ws map[string][]string) (*tc.TC, error) {
	var owner base.TCID
	var otable, okey string
	for table, keys := range ws {
		for _, key := range keys {
			o, err := c.dep.router.Owner(table, key)
			if err != nil {
				return nil, fmt.Errorf("unbundled: route write set: %w", err)
			}
			if o == 0 || o == owner {
				continue
			}
			if owner != 0 {
				return nil, fmt.Errorf(
					"unbundled: write set spans ownership partitions (%s/%q owned by tc %d, %s/%q by tc %d): %w",
					otable, okey, owner, table, key, o, base.ErrWrongOwner)
			}
			owner, otable, okey = o, table, key
		}
	}
	if owner == 0 {
		return nil, nil
	}
	t, err := c.byID(owner)
	if err != nil {
		return nil, fmt.Errorf("unbundled: %s/%q is owned by tc %d, which is not in this deployment: %w",
			otable, okey, owner, base.ErrWrongOwner)
	}
	return t, nil
}

// Begin starts a single transaction on a routed (or pinned) TC. The caller
// owns its lifecycle: Commit or Abort must be called, and no automatic
// retry applies. The transaction is bound to ctx — see RunTxn for the
// cancellation semantics.
func (c *Client) Begin(ctx context.Context, opts TxnOptions) (*tc.Txn, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, base.CancelErr(ctx)
	}
	tcx, err := c.pick(opts)
	if err != nil {
		return nil, err
	}
	if tcx.Draining() {
		// Only reachable when the pick had no choice (a pin, a §6.1 owner,
		// or a fleet-wide drain): admission is refused typed and transient,
		// matching the RunTxnOnce gate.
		return nil, fmt.Errorf("unbundled: tc %d: %w", tcx.ID(), base.ErrDraining)
	}
	return tcx.Begin(ctx, opts.tcOpts()), nil
}

// RunTxn runs fn inside a transaction: commit on success, abort on error.
// Transient aborts — deadlock victims, lock timeouts, component-
// unavailable windows (IsTransient) — are retried as fresh transactions
// with exponential backoff, re-routed per attempt, up to
// opts.MaxAttempts. Permanent failures (cancellation, stale epochs,
// not-found/duplicate, read-only violations) return immediately.
//
// ctx bounds the whole call: lock waits, wire waits, retry backoffs, and
// the commit barrier all return promptly with an ErrCancelled-wrapped
// ctx error once it is done. The delivery of already-logged writes is the
// one thing cancellation never interrupts — the resend/redo contract
// finishes those in the background.
func (c *Client) RunTxn(ctx context.Context, opts TxnOptions, fn func(*tc.Txn) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	attempts := opts.MaxAttempts
	if attempts <= 0 {
		attempts = defaultAttempts
	}
	backoff := opts.RetryBackoff
	if backoff <= 0 {
		backoff = defaultBackoff
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			timer := time.NewTimer(backoff)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return base.CancelErr(ctx)
			}
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
		var tcx *tc.TC
		tcx, err = c.pick(opts)
		if err != nil {
			return err
		}
		err = tcx.RunTxnOnce(ctx, opts.tcOpts(), fn)
		if err == nil {
			return nil
		}
		// An ambiguous commit is never retried, even when the underlying
		// failure is transient: the commit record is already in the log, so
		// the transaction may be a winner — re-executing fn would apply its
		// effects twice.
		if !base.IsTransient(err) || errors.Is(err, tc.ErrCommitAmbiguous) || ctx.Err() != nil {
			return err
		}
	}
	return err
}

// Snapshot is an explicit multi-read consistent view: a read-only
// snapshot transaction whose Reads and Scans all observe the database at
// one timestamp, without locks and without TC round trips. Close releases
// it (until then it pins the version-GC horizon at its timestamp). Like a
// transaction, a Snapshot is used from a single goroutine.
type Snapshot struct {
	txn *tc.Txn
}

// Snapshot opens a fresh consistent view at the current time: Begin waits
// out the clock's uncertainty window, so every transaction whose commit
// completed before the call is visible in the view. For bounded-staleness
// or lock-based read-only policies, use Begin with TxnOptions.ReadOnly
// and the Snapshot/Staleness knobs instead.
func (c *Client) Snapshot(ctx context.Context) (*Snapshot, error) {
	x, err := c.Begin(ctx, TxnOptions{ReadOnly: true})
	if err != nil {
		return nil, err
	}
	return &Snapshot{txn: x}, nil
}

// TS returns the view's timestamp.
func (s *Snapshot) TS() base.TS { return s.txn.SnapshotTS() }

// Read returns the value of key as of the view's timestamp.
func (s *Snapshot) Read(table, key string) ([]byte, bool, error) {
	return s.txn.Read(table, key)
}

// Scan range-reads [lo, hi) as of the view's timestamp. hi == "" scans to
// the end of the table's partition; limit <= 0 means unlimited.
func (s *Snapshot) Scan(table, lo, hi string, limit int) ([]string, [][]byte, error) {
	return s.txn.Scan(table, lo, hi, limit)
}

// Close releases the view. Idempotent.
func (s *Snapshot) Close() error {
	if err := s.txn.Commit(); err != nil && !errors.Is(err, tc.ErrTxnDone) {
		return err
	}
	return nil
}

// RunTxnAt runs fn like RunTxn with (table, key) hinted as write intent:
// the transaction is routed to the TC owning that key per the
// deployment's §6.1 placement, sparing callers the hand-computed
// TxnOptions.TC pin. The hint merges into any WriteSet already in opts.
func (c *Client) RunTxnAt(ctx context.Context, table, key string, opts TxnOptions, fn func(*tc.Txn) error) error {
	ws := make(map[string][]string, len(opts.WriteSet)+1)
	for t, ks := range opts.WriteSet {
		ws[t] = ks
	}
	ws[table] = append(append([]string(nil), ws[table]...), key)
	opts.WriteSet = ws
	return c.RunTxn(ctx, opts, fn)
}
