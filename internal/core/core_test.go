package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/cidr09/unbundled/internal/dc"
	"github.com/cidr09/unbundled/internal/placement"
	"github.com/cidr09/unbundled/internal/tc"
	"github.com/cidr09/unbundled/internal/wire"
)

func TestEndToEndDirect(t *testing.T) {
	d, err := New(Options{TCs: 1, DCs: 2, Tables: []string{"kv"},
		Placement: placement.MustParse("kv: dc=range(<m:0,*:1)"),
		DCConfig:  func(int) dc.Config { return dc.Config{CheckConflicts: true} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	tcx := d.TCs[0]
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("%c%03d", 'a'+byte(i%26), i)
		if err := tcx.RunTxn(context.Background(), tc.TxnOptions{}, func(x *tc.Txn) error {
			return x.Upsert("kv", key, []byte(fmt.Sprintf("v%d", i)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Keys landed on both DCs.
	if d.DCs[0].Stats().Performs == 0 || d.DCs[1].Stats().Performs == 0 {
		t.Fatal("routing sent everything to one DC")
	}
	if err := tcx.RunTxn(context.Background(), tc.TxnOptions{}, func(x *tc.Txn) error {
		for i := 0; i < 100; i++ {
			key := fmt.Sprintf("%c%03d", 'a'+byte(i%26), i)
			v, ok, err := x.Read("kv", key)
			if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
				return fmt.Errorf("key %s: %q %v %v", key, v, ok, err)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, dci := range d.DCs {
		if v := dci.Stats().ConflictViols; v != 0 {
			t.Fatalf("conflict invariant violated: %d", v)
		}
	}
}

func TestEndToEndLossyNetwork(t *testing.T) {
	d, err := New(Options{TCs: 1, DCs: 2, Tables: []string{"kv"},
		Placement: placement.MustParse("kv: dc=range(<m:0,*:1)"),
		Network: &wire.Config{LossProb: 0.1, DupProb: 0.05,
			Jitter: 200 * time.Microsecond, ResendAfter: 2 * time.Millisecond, Seed: 7},
		DCConfig: func(int) dc.Config { return dc.Config{CheckConflicts: true} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	tcx := d.TCs[0]
	model := map[string]string{}
	rnd := rand.New(rand.NewSource(3))
	for i := 0; i < 150; i++ {
		key := fmt.Sprintf("%c%02d", 'a'+byte(rnd.Intn(26)), rnd.Intn(40))
		val := fmt.Sprintf("v%d", i)
		del := rnd.Intn(4) == 0
		err := tcx.RunTxn(context.Background(), tc.TxnOptions{}, func(x *tc.Txn) error {
			if del {
				if _, ok, _ := x.Read("kv", key); !ok {
					return nil
				}
				return x.Delete("kv", key)
			}
			return x.Upsert("kv", key, []byte(val))
		})
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
		if del {
			delete(model, key)
		} else {
			model[key] = val
		}
	}
	if err := tcx.RunTxn(context.Background(), tc.TxnOptions{}, func(x *tc.Txn) error {
		for k, want := range model {
			v, ok, err := x.Read("kv", k)
			if err != nil || !ok || string(v) != want {
				return fmt.Errorf("%s: got %q,%v want %q (err %v)", k, v, ok, want, err)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if d.Net().Stats().Resends == 0 {
		t.Fatal("lossy network should have caused resends")
	}
	for _, dci := range d.DCs {
		if v := dci.Stats().ConflictViols; v != 0 {
			t.Fatalf("conflict invariant violated under loss: %d", v)
		}
	}
}

// TestCrashRecoveryFuzz is the paper's whole-system correctness check:
// random workload interleaved with random TC / DC / joint crashes; after
// every recovery the database must equal the model built from committed
// transactions only.
func TestCrashRecoveryFuzz(t *testing.T) {
	d, err := New(Options{TCs: 1, DCs: 2, Tables: []string{"kv"},
		Placement: placement.MustParse("kv: dc=range(<m:0,*:1)"),
		DCConfig: func(int) dc.Config {
			return dc.Config{PageBytes: 512, CheckConflicts: true}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	tcx := d.TCs[0]
	model := map[string]string{}
	rnd := rand.New(rand.NewSource(99))

	verify := func(round int) {
		t.Helper()
		if err := tcx.RunTxn(context.Background(), tc.TxnOptions{}, func(x *tc.Txn) error {
			for k, want := range model {
				v, ok, err := x.Read("kv", k)
				if err != nil || !ok || string(v) != want {
					return fmt.Errorf("round %d key %s: got %q,%v want %q (err %v)",
						round, k, v, ok, want, err)
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	for round := 0; round < 12; round++ {
		// Committed work.
		for i := 0; i < 40; i++ {
			key := fmt.Sprintf("%c%02d", 'a'+byte(rnd.Intn(26)), rnd.Intn(30))
			val := fmt.Sprintf("r%d-%d", round, i)
			op := rnd.Intn(5)
			err := tcx.RunTxn(context.Background(), tc.TxnOptions{}, func(x *tc.Txn) error {
				if op == 0 {
					if _, ok, _ := x.Read("kv", key); ok {
						return x.Delete("kv", key)
					}
					return nil
				}
				return x.Upsert("kv", key, []byte(val))
			})
			if err != nil {
				t.Fatalf("round %d txn: %v", round, err)
			}
			if op == 0 {
				delete(model, key)
			} else {
				model[key] = val
			}
		}
		// Occasional checkpoints bound redo work.
		if rnd.Intn(3) == 0 {
			if _, err := tcx.Checkpoint(context.Background()); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
		}
		// Crash something. When the TC itself will crash, sometimes leave
		// an uncommitted transaction hanging into the crash: its effects
		// must vanish (the TC crash clears its lock table, so the hanging
		// transaction cannot block later rounds).
		crash := rnd.Intn(4)
		if (crash == 0 || crash == 2) && rnd.Intn(2) == 0 {
			x := tcx.Begin(context.Background(), tc.TxnOptions{})
			_ = x.Upsert("kv", "zz-ghost", []byte("ghost"))
			// no commit: dies with the TC
		}
		switch crash {
		case 0: // TC crash
			d.CrashTC(0)
			if err := d.RecoverTC(0); err != nil {
				t.Fatalf("round %d recover TC: %v", round, err)
			}
		case 1: // one DC crash
			i := rnd.Intn(2)
			d.CrashDC(i)
			if err := d.RecoverDC(i); err != nil {
				t.Fatalf("round %d recover DC%d: %v", round, i, err)
			}
		case 2: // everything
			d.CrashAll()
			if err := d.RecoverAll(); err != nil {
				t.Fatalf("round %d recover all: %v", round, err)
			}
		case 3: // no crash this round
		}
		delete(model, "zz-ghost")
		verify(round)
		if _, ok := model["zz-ghost"]; ok {
			t.Fatal("model corrupted")
		}
		// The ghost must never be visible.
		if err := tcx.RunTxn(context.Background(), tc.TxnOptions{}, func(x *tc.Txn) error {
			if _, ok, _ := x.Read("kv", "zz-ghost"); ok {
				return fmt.Errorf("uncommitted ghost survived round %d", round)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, dci := range d.DCs {
		if v := dci.Stats().ConflictViols; v != 0 {
			t.Fatalf("conflict invariant violated: %d", v)
		}
	}
}

// TestMultiTCSharedDC exercises §6: two updating TCs with disjoint key
// partitions over one DC, a TC crash resetting only its own records, and
// cross-TC read-committed reads.
func TestMultiTCSharedDC(t *testing.T) {
	d, err := New(Options{TCs: 2, DCs: 1, Tables: []string{"users"},
		DCConfig: func(int) dc.Config { return dc.Config{CheckConflicts: true} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	tc1, tc2 := d.TCs[0], d.TCs[1]

	// Each TC owns its prefix; both use versioning for sharing.
	if err := tc1.RunTxn(context.Background(), tc.TxnOptions{Versioned: true}, func(x *tc.Txn) error {
		return x.Insert("users", "p1/alice", []byte("alice-v1"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := tc2.RunTxn(context.Background(), tc.TxnOptions{Versioned: true}, func(x *tc.Txn) error {
		return x.Insert("users", "p2/bob", []byte("bob-v1"))
	}); err != nil {
		t.Fatal(err)
	}
	// Cross-TC read-committed: TC2 reads TC1's data without locks.
	if err := tc2.RunTxn(context.Background(), tc.TxnOptions{}, func(x *tc.Txn) error {
		v, ok, err := x.ReadCommitted("users", "p1/alice")
		if err != nil || !ok || string(v) != "alice-v1" {
			return fmt.Errorf("cross-TC read: %q %v %v", v, ok, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// TC1 updates without committing the page flush anywhere; then crashes.
	x := tc1.Begin(context.Background(), tc.TxnOptions{Versioned: true})
	if err := x.Update("users", "p1/alice", []byte("alice-lost")); err != nil {
		t.Fatal(err)
	}
	// TC2 writes more data to the same DC (same pages potentially).
	if err := tc2.RunTxn(context.Background(), tc.TxnOptions{Versioned: true}, func(y *tc.Txn) error {
		return y.Update("users", "p2/bob", []byte("bob-v2"))
	}); err != nil {
		t.Fatal(err)
	}
	d.CrashTC(0)
	if err := d.RecoverTC(0); err != nil {
		t.Fatal(err)
	}
	// TC1's uncommitted update is gone; TC2's committed update survives.
	if err := tc1.RunTxn(context.Background(), tc.TxnOptions{}, func(y *tc.Txn) error {
		v, ok, err := y.Read("users", "p1/alice")
		if err != nil || !ok || string(v) != "alice-v1" {
			return fmt.Errorf("tc1 data after its crash: %q %v %v", v, ok, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := tc2.RunTxn(context.Background(), tc.TxnOptions{}, func(y *tc.Txn) error {
		v, ok, err := y.Read("users", "p2/bob")
		if err != nil || !ok || string(v) != "bob-v2" {
			return fmt.Errorf("tc2 data disturbed by tc1 crash: %q %v %v", v, ok, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v := d.DCs[0].Stats().ConflictViols; v != 0 {
		t.Fatalf("conflict invariant violated: %d", v)
	}
}

// TestFigure1Heterogeneous deploys the Figure-1 shape: two applications
// (TCs) over four DCs with different physical organizations — two
// record stores, an inverted-index-style DC, and a geohash-style DC.
func TestFigure1Heterogeneous(t *testing.T) {
	tables := []string{"photos", "accounts", "textidx", "shapes"}
	d, err := New(Options{TCs: 2, DCs: 4, Tables: tables,
		Placement: placement.MustParse("photos: dc=0; accounts: dc=1; textidx: dc=2; shapes: dc=3"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	app1, app2 := d.TCs[0], d.TCs[1]

	// App 1 stores a photo + posting-list entries (term#photo keys).
	if err := app1.RunTxn(context.Background(), tc.TxnOptions{}, func(x *tc.Txn) error {
		if err := x.Insert("photos", "p1/photo42", []byte("golden gate")); err != nil {
			return err
		}
		for _, term := range []string{"golden", "gate", "bridge"} {
			if err := x.Insert("textidx", "p1/"+term+"#photo42", nil); err != nil {
				return err
			}
		}
		return x.Insert("shapes", "p1/9q8yy#photo42", nil) // geohash prefix
	}); err != nil {
		t.Fatal(err)
	}
	// App 2 manages accounts on its own partition.
	if err := app2.RunTxn(context.Background(), tc.TxnOptions{}, func(x *tc.Txn) error {
		return x.Insert("accounts", "p2/user7", []byte("balance=10"))
	}); err != nil {
		t.Fatal(err)
	}
	// Term lookup via the inverted-index DC (prefix scan).
	if err := app1.RunTxn(context.Background(), tc.TxnOptions{}, func(x *tc.Txn) error {
		keys, _, err := x.Scan("textidx", "p1/golden#", "p1/golden#~", 0)
		if err != nil {
			return err
		}
		if len(keys) != 1 || keys[0] != "p1/golden#photo42" {
			return fmt.Errorf("index lookup = %v", keys)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Every DC did real work.
	for i, dci := range d.DCs {
		if dci.Stats().Performs == 0 {
			t.Fatalf("DC%d idle — heterogeneous deployment broken", i)
		}
	}
}

func TestDCCrashUnderLossyNetwork(t *testing.T) {
	d, err := New(Options{TCs: 1, DCs: 1, Tables: []string{"kv"},
		Network: &wire.Config{LossProb: 0.05, ResendAfter: 2 * time.Millisecond, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	tcx := d.TCs[0]
	for i := 0; i < 60; i++ {
		if err := tcx.RunTxn(context.Background(), tc.TxnOptions{}, func(x *tc.Txn) error {
			return x.Upsert("kv", fmt.Sprintf("k%03d", i), []byte("v"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	d.CrashDC(0)
	if err := d.RecoverDC(0); err != nil {
		t.Fatal(err)
	}
	if err := tcx.RunTxn(context.Background(), tc.TxnOptions{}, func(x *tc.Txn) error {
		for i := 0; i < 60; i++ {
			if _, ok, _ := x.Read("kv", fmt.Sprintf("k%03d", i)); !ok {
				return fmt.Errorf("key %d lost across DC crash on lossy net", i)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
