package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/tc"
)

func newClientDeployment(t *testing.T, tcs int) (*Deployment, *Client) {
	t.Helper()
	dep, err := New(Options{TCs: tcs, DCs: 1, Tables: []string{"kv"}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dep.Close)
	return dep, dep.Client()
}

// TestClientRunTxnDeadlockRetriedToSuccess: two transactions acquire the
// same two keys in opposite orders with a rendezvous that guarantees the
// waits-for cycle on the first attempt. One is chosen as the deadlock
// victim; Client.RunTxn must retry it as a fresh transaction and both
// calls must succeed.
func TestClientRunTxnDeadlockRetriedToSuccess(t *testing.T) {
	dep, client := newClientDeployment(t, 1)
	ctx := context.Background()

	var once1, once2 sync.Once
	r1, r2 := make(chan struct{}), make(chan struct{})
	rendezvous := func(mine *sync.Once, signal, wait chan struct{}) {
		mine.Do(func() {
			close(signal)
			select {
			case <-wait:
			case <-time.After(2 * time.Second):
			}
		})
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs[0] = client.RunTxn(ctx, TxnOptions{}, func(x *tc.Txn) error {
			if err := x.Upsert("kv", "a", []byte("t1")); err != nil {
				return err
			}
			rendezvous(&once1, r1, r2)
			return x.Upsert("kv", "b", []byte("t1"))
		})
	}()
	go func() {
		defer wg.Done()
		errs[1] = client.RunTxn(ctx, TxnOptions{}, func(x *tc.Txn) error {
			if err := x.Upsert("kv", "b", []byte("t2")); err != nil {
				return err
			}
			rendezvous(&once2, r2, r1)
			return x.Upsert("kv", "a", []byte("t2"))
		})
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("txn %d failed despite retry: %v", i+1, err)
		}
	}
	if dep.TCs[0].Stats().DeadlockAborts == 0 {
		t.Fatal("expected at least one deadlock abort (the rendezvous guarantees a cycle)")
	}
}

// TestClientRouting: auto-routing spreads sequential transactions across
// every TC; a pin keeps them on one; an invalid pin errors.
func TestClientRouting(t *testing.T) {
	dep, client := newClientDeployment(t, 3)
	ctx := context.Background()

	for i := 0; i < 9; i++ {
		if err := client.RunTxn(ctx, TxnOptions{}, func(x *tc.Txn) error {
			return x.Upsert("kv", "k", []byte("v"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i, tcx := range dep.TCs {
		if tcx.Stats().Commits == 0 {
			t.Fatalf("TC %d never received a routed transaction", i+1)
		}
	}

	before := dep.TCs[1].Stats().Commits
	for i := 0; i < 5; i++ {
		if err := client.RunTxn(ctx, TxnOptions{TC: 2}, func(x *tc.Txn) error {
			return x.Upsert("kv", "pinned", []byte("v"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := dep.TCs[1].Stats().Commits - before; got != 5 {
		t.Fatalf("pinned TC got %d of 5 transactions", got)
	}

	if err := client.RunTxn(ctx, TxnOptions{TC: 7}, func(*tc.Txn) error { return nil }); err == nil {
		t.Fatal("invalid TC pin must error")
	}
	if _, err := client.Begin(ctx, TxnOptions{TC: -1}); err == nil {
		t.Fatal("negative TC pin must error")
	}
}

// TestClientRunTxnCancellation: a context cancelled before or during
// RunTxn surfaces the taxonomy's cancellation error.
func TestClientRunTxnCancellation(t *testing.T) {
	_, client := newClientDeployment(t, 1)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := client.RunTxn(ctx, TxnOptions{}, func(x *tc.Txn) error {
		return x.Upsert("kv", "k", []byte("v"))
	})
	if !errors.Is(err, base.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunTxn returned %v", err)
	}
	if _, err := client.Begin(ctx, TxnOptions{}); !errors.Is(err, base.ErrCancelled) {
		t.Fatalf("pre-cancelled Begin returned %v", err)
	}
}

// TestDeploymentCloseIdempotent: Close twice never panics or hangs, DCs
// are closed with the deployment (operations refuse with unavailable),
// and a crash after close does not resurrect a DC.
func TestDeploymentCloseIdempotent(t *testing.T) {
	dep, err := New(Options{TCs: 1, DCs: 2, Tables: []string{"kv"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Client().RunTxn(context.Background(), TxnOptions{}, func(x *tc.Txn) error {
		return x.Upsert("kv", "k", []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		dep.Close()
		dep.Close() // double close must be a no-op
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Deployment.Close hung")
	}

	for i, d := range dep.DCs {
		res := d.Perform(context.Background(), &base.Op{TC: 1, LSN: 10_000, Kind: base.OpRead, Table: "kv", Key: "k"})
		if res.Code != base.CodeUnavailable {
			t.Fatalf("DC %d still serving after close: %+v", i, res)
		}
		if !errors.Is(res.Err(), base.ErrUnavailable) {
			t.Fatalf("closed-DC error %v does not match ErrUnavailable", res.Err())
		}
		d.Crash() // must stay closed
		if err := d.Recover(); err == nil {
			t.Fatalf("DC %d recovered after Close", i)
		}
		d.Close() // second DC close is a no-op too
	}
}

// TestClientRetriesUnavailable: transient unavailable failures (a crashed
// DC that recovers mid-call) are retried by RunTxn until the component is
// back.
func TestClientRetriesUnavailable(t *testing.T) {
	dep, client := newClientDeployment(t, 1)
	ctx := context.Background()
	if err := client.RunTxn(ctx, TxnOptions{}, func(x *tc.Txn) error {
		return x.Upsert("kv", "k", []byte("v0"))
	}); err != nil {
		t.Fatal(err)
	}
	dep.CrashDC(0)
	go func() {
		time.Sleep(30 * time.Millisecond)
		if err := dep.RecoverDC(0); err != nil {
			t.Error(err)
		}
	}()
	// The pre-check read fails CodeUnavailable while the DC is down;
	// RunTxn keeps retrying with backoff until recovery completes.
	if err := client.RunTxn(ctx, TxnOptions{MaxAttempts: 100}, func(x *tc.Txn) error {
		return x.Update("kv", "k", []byte("v1"))
	}); err != nil {
		t.Fatalf("RunTxn did not ride out the unavailable window: %v", err)
	}
}

// TestClientDoesNotRetryAmbiguousCommit: a commit-barrier failure after
// the commit record is logged (here: the TC closed with pipelined acks
// outstanding, a transient unavailable by classification) must not
// re-execute fn — the transaction may be a winner in the log.
func TestClientDoesNotRetryAmbiguousCommit(t *testing.T) {
	dep, err := New(Options{TCs: 1, DCs: 1, Tables: []string{"kv"},
		TCConfig: func(int) tc.Config { return tc.Config{Pipeline: true} }})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	client := dep.Client()

	dep.CrashDC(0) // park the pipeline in its resend loop
	fnRuns := 0
	commitEntered := make(chan struct{})
	go func() {
		<-commitEntered
		time.Sleep(30 * time.Millisecond) // let Commit reach the stuck barrier
		dep.TCs[0].Close()                // fails the barrier with ErrTCStopped
	}()
	err = client.RunTxn(context.Background(), TxnOptions{Versioned: true}, func(x *tc.Txn) error {
		fnRuns++
		if err := x.Upsert("kv", "k", []byte("v")); err != nil {
			return err
		}
		if fnRuns == 1 {
			close(commitEntered)
		}
		return nil
	})
	if err == nil {
		t.Fatal("commit against a closed TC must fail")
	}
	if !errors.Is(err, tc.ErrCommitAmbiguous) {
		t.Fatalf("error %v does not carry ErrCommitAmbiguous", err)
	}
	if !errors.Is(err, base.ErrUnavailable) {
		t.Fatalf("error %v lost the underlying unavailable classification", err)
	}
	if fnRuns != 1 {
		t.Fatalf("fn re-executed %d times after an ambiguous commit", fnRuns)
	}
}
