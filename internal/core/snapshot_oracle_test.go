package core

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"testing"

	"github.com/cidr09/unbundled/internal/dc"
	"github.com/cidr09/unbundled/internal/placement"
	"github.com/cidr09/unbundled/internal/tc"
)

// TestSnapshotOracle runs concurrent versioned writers against concurrent
// snapshot readers (designed to be meaningful under -race) and asserts
// the two halves of the snapshot contract:
//
//   - Consistency: every multi-key snapshot observes one committed prefix
//     — all keys show the same round, and rounds never move backwards
//     within one reader.
//   - Zero coordination: the reader TC acquires no locks and sends no
//     operations; its whole contribution is the read timestamp.
func TestSnapshotOracle(t *testing.T) {
	d, err := New(Options{TCs: 2, DCs: 1,
		Placement: placement.MustParse("kv: dc=0 owner=1"),
		DCConfig:  func(int) dc.Config { return dc.Config{CheckConflicts: true} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cl := d.Client()
	ctx := context.Background()
	const nkeys = 4

	writeRound := func(round int) error {
		val := []byte(strconv.Itoa(round))
		return cl.RunTxn(ctx, TxnOptions{Versioned: true, TC: 1}, func(x *tc.Txn) error {
			for k := 0; k < nkeys; k++ {
				if err := x.Upsert("kv", fmt.Sprintf("k%d", k), val); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if err := writeRound(0); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		for round := 1; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := writeRound(round); err != nil {
				t.Errorf("writer round %d: %v", round, err)
				return
			}
		}
	}()

	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			last := -1
			for i := 0; i < 50; i++ {
				x, err := cl.Begin(ctx, TxnOptions{ReadOnly: true, TC: 2})
				if err != nil {
					t.Errorf("reader %d: begin: %v", r, err)
					return
				}
				round := -1
				for k := 0; k < nkeys; k++ {
					v, ok, err := x.Read("kv", fmt.Sprintf("k%d", k))
					if err != nil || !ok {
						t.Errorf("reader %d: k%d: %q %v %v", r, k, v, ok, err)
						_ = x.Commit()
						return
					}
					n, _ := strconv.Atoi(string(v))
					if k == 0 {
						round = n
					} else if n != round {
						t.Errorf("reader %d: torn snapshot @%d: k0 at round %d, k%d at %d",
							r, x.SnapshotTS(), round, k, n)
					}
				}
				if round < last {
					t.Errorf("reader %d: snapshot went backwards: round %d after %d", r, round, last)
				}
				last = round
				_ = x.Commit()
			}
		}(r)
	}
	readers.Wait()
	close(stop)
	writers.Wait()

	tc2 := d.TCs[1]
	if got := tc2.Locks().Stats().Acquired; got != 0 {
		t.Errorf("reader TC acquired %d locks, want 0", got)
	}
	if got := tc2.Stats().OpsSent; got != 0 {
		t.Errorf("reader TC sent %d operations, want 0", got)
	}
	if got := tc2.Stats().Snapshots; got != 200 {
		t.Errorf("reader TC snapshot count: %d, want 200", got)
	}
	if got := d.DCs[0].Stats().SnapshotReads; got == 0 {
		t.Error("DC served no snapshot reads")
	}
}
