package core

import (
	"context"
	"sync"
	"time"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/tc"
	"github.com/cidr09/unbundled/internal/wire"
)

// Remote deployments: the TCs live in this process, the DCs in others,
// reached over TCP (Options.DCAddrs). The assembly mirrors the simulated
// path — one dialed connection per (TC, DC) pair, each a wire.Client
// implementing base.Service — but crash/recovery orchestration changes
// shape: nobody in this process can call dc.Recover on a killed DC, so
// the deployment instead supervises the connections. A connection that
// drops and comes back means the DC process restarted (or the network
// blinked; the redo stream is idempotent either way), and the owning TC
// replays its logged operations from the redo scan start point before new
// work flows — the §4.2.1 out-of-band restart prompt, automated.

func newRemote(opts Options) (*Deployment, error) {
	router, err := resolveRouter(&opts, len(opts.DCAddrs))
	if err != nil {
		return nil, err
	}
	d := &Deployment{router: router, pl: opts.Placement, closeCh: make(chan struct{})}
	for t := 0; t < opts.TCs; t++ {
		cfg := tc.Config{}
		if opts.TCConfig != nil {
			cfg = opts.TCConfig(t)
		}
		if cfg.ID == 0 {
			cfg.ID = base.TCID(t + 1)
		}
		var services []base.Service
		var clients []*wire.Client
		var servers []*wire.Server
		for _, addr := range opts.DCAddrs {
			cl := wire.Dial(addr, opts.DialConfig)
			services = append(services, cl)
			clients = append(clients, cl)
			servers = append(servers, nil)
		}
		tci, err := tc.New(cfg, services, router)
		if err != nil {
			for _, cl := range clients {
				cl.Close()
			}
			d.Close()
			return nil, err
		}
		d.TCs = append(d.TCs, tci)
		d.clients = append(d.clients, clients)
		d.servers = append(d.servers, servers)
	}
	// Connection supervision: every re-established session triggers a redo
	// replay for that (TC, DC) pair. The hook must be registered after the
	// TC exists — a reconnect in the window before this loop can only be
	// the initial connect, which needs no replay (the DC has seen nothing).
	for ti, t := range d.TCs {
		for di, cl := range d.clients[ti] {
			d.superviseRemoteDC(t, cl, di)
		}
	}
	// A TC reopening a previous incarnation's log (TCConfig.Dir) is NOT
	// recovered here: its restart protocol must reach the remote DCs, and
	// nothing has dialed yet. The caller gates on WaitConnected and then
	// runs RecoverTC for every TC whose NeedsRecovery reports true, as
	// cmd/unbundled-tc does.
	return d, nil
}

// superviseRemoteDC wires the dialed connection's reconnect signal to
// TC.RecoverDC. Reconnects are coalesced — a flap during a running replay
// schedules exactly one follow-up replay — and a failing replay is retried
// paced until it succeeds or the deployment closes: recovery must need no
// manual intervention.
func (d *Deployment) superviseRemoteDC(t *tc.TC, cl *wire.Client, di int) {
	var mu sync.Mutex
	running, again := false, false
	cl.OnReconnect(func() {
		mu.Lock()
		if running {
			again = true
			mu.Unlock()
			return
		}
		running = true
		mu.Unlock()
		for {
			err := t.RecoverDC(di)
			mu.Lock()
			if err == nil && !again {
				running = false
				mu.Unlock()
				return
			}
			again = false
			mu.Unlock()
			if err != nil {
				select {
				case <-d.closeCh:
					mu.Lock()
					running = false
					mu.Unlock()
					return
				case <-time.After(250 * time.Millisecond):
				}
			}
		}
	})
}

// WaitConnected blocks until every dialed DC connection of a remote
// deployment is established (or ctx is done) — a readiness gate for
// cmds and tests. In-process deployments return immediately.
func (d *Deployment) WaitConnected(ctx context.Context) error {
	for _, row := range d.clients {
		for _, cl := range row {
			if cl == nil {
				continue
			}
			if err := cl.WaitConnected(ctx); err != nil {
				return err
			}
		}
	}
	return nil
}

// Remote reports whether the deployment's DCs live in other processes
// (Options.DCAddrs). Crash/Recover of remote DCs is done by killing and
// restarting those processes, not through this Deployment.
func (d *Deployment) Remote() bool { return len(d.TCs) > 0 && len(d.DCs) == 0 }

// WireStats aggregates the dialed connections' counters: total request
// attempts, §4.2 resends, re-established TCP sessions, and admission
// refusals (base.ErrOverloaded replies) absorbed by the retry loop.
// Zero-valued on in-process deployments.
type WireStats struct {
	Calls, Resends, Reconnects, Overloads uint64
}

// RemoteWireStats sums the per-connection counters of a DCAddrs
// deployment (cmd/unbundled-tc reports them; the e2e suite asserts the
// resend path actually rode out a DC kill).
func (d *Deployment) RemoteWireStats() WireStats {
	var s WireStats
	for _, row := range d.clients {
		for _, cl := range row {
			if cl == nil {
				continue
			}
			s.Calls += cl.Calls()
			s.Resends += cl.Resends()
			s.Reconnects += cl.Reconnects()
			s.Overloads += cl.Overloads()
		}
	}
	return s
}
