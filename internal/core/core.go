// Package core assembles unbundled kernels: N transactional components
// sharing M data components over a (possibly misbehaving) message fabric —
// the architecture of Figure 1. It owns deployment-time concerns (table
// placement, routing), failure injection (independent TC and DC crashes,
// §5.3), and recovery orchestration (the out-of-band prompt that tells TCs
// a DC needs its redo stream, §4.2.1).
package core

import (
	"fmt"
	"sync"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/dc"
	"github.com/cidr09/unbundled/internal/placement"
	"github.com/cidr09/unbundled/internal/tc"
	"github.com/cidr09/unbundled/internal/wire"
)

// Options configures a deployment.
type Options struct {
	// TCs is the number of transactional components built in this
	// process (IDs 1..TCs unless TCConfig assigns explicit IDs).
	TCs int
	// DCs is the number of data components.
	DCs int
	// Tables are created on every DC (placement decides which DC actually
	// serves which key). Empty defaults to Placement.Tables() when a
	// Placement is given.
	Tables []string
	// Placement declares the deployment map: data placement (table/key to
	// DC) and §6.1 update ownership (table/key to owning TC), parsed from
	// or printable as a spec string (placement.Parse/String), so the
	// identical text can drive this in-process deployment and a fleet of
	// cmd/unbundled-tc processes. New validates it against the deployment
	// shape. Nil places every table on DC 0 with no ownership partition.
	Placement *placement.Placement
	// FleetTCs is the total number of TCs across every process sharing
	// this placement (IDs 1..FleetTCs): the ownership axes may name TCs
	// that live in other OS processes. Zero means the fleet is exactly
	// this deployment's TCs.
	FleetTCs int
	// TCConfig customizes each TC (a zero ID field is defaulted to i+1;
	// explicit IDs let one process run TC 3 of a larger fleet).
	TCConfig func(i int) tc.Config
	// DCConfig customizes each DC (the Name field is overwritten).
	DCConfig func(i int) dc.Config
	// Network, when non-nil, interposes the wire fabric between every TC
	// and DC; nil wires them with direct in-process calls.
	Network *wire.Config
	// DCAddrs connects the deployment to data components already running
	// in other OS processes (cmd/unbundled-dc) over real TCP instead of
	// building in-process DCs: entry i is the listen address of DC index
	// i, and len(DCAddrs) is the DC count. With DCAddrs set, DCs,
	// DCConfig, Tables, and Network are ignored — the DC process owns its
	// own configuration and tables — and Deployment.DCs stays empty:
	// remote DCs crash by being killed and recover by being restarted,
	// and the deployment reacts to a re-established connection by
	// replaying the TC's redo stream automatically (§5.3.2 "DC Failure").
	DCAddrs []string
	// DialConfig shapes the TCP connections of a DCAddrs deployment
	// (resend pacing, redial backoff). The zero value uses defaults.
	DialConfig wire.DialConfig
}

// Deployment is a running unbundled kernel.
type Deployment struct {
	TCs []*tc.TC
	DCs []*dc.DC

	net *wire.Network
	// link [t][d] holds the wire pair for TC t -> DC d (nil when direct).
	clients [][]*wire.Client
	servers [][]*wire.Server
	router  placement.Router
	pl      *placement.Placement // nil when built without an explicit placement

	clientOnce sync.Once
	client     *Client
	closeOnce  sync.Once
	closeCh    chan struct{}
}

// resolveRouter validates Options.Placement against the deployment shape
// (dcCount data components, a fleet of max(FleetTCs, TCs) transactional
// components) and returns the router every TC shares; without a
// Placement, a catch-all spec places every table on DC 0 unowned.
func resolveRouter(opts *Options, dcCount int) (placement.Router, error) {
	if opts.Placement == nil {
		return placement.MustParse("*: dc=0"), nil
	}
	fleet := opts.FleetTCs
	if fleet < opts.TCs {
		fleet = opts.TCs
	}
	if err := opts.Placement.Validate(dcCount, fleet); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if len(opts.Tables) == 0 {
		opts.Tables = opts.Placement.Tables()
	}
	return opts.Placement, nil
}

// New builds and starts a deployment.
func New(opts Options) (*Deployment, error) {
	if opts.TCs <= 0 {
		opts.TCs = 1
	}
	if opts.DCs <= 0 {
		opts.DCs = 1
	}
	if len(opts.DCAddrs) > 0 {
		return newRemote(opts)
	}
	router, err := resolveRouter(&opts, opts.DCs)
	if err != nil {
		return nil, err
	}
	d := &Deployment{router: router, pl: opts.Placement, closeCh: make(chan struct{})}
	for i := 0; i < opts.DCs; i++ {
		cfg := dc.Config{}
		if opts.DCConfig != nil {
			cfg = opts.DCConfig(i)
		}
		cfg.Name = fmt.Sprintf("dc%d", i)
		dci, err := dc.New(cfg)
		if err != nil {
			return nil, err
		}
		for _, table := range opts.Tables {
			if err := dci.CreateTable(table); err != nil {
				return nil, err
			}
		}
		d.DCs = append(d.DCs, dci)
	}
	if opts.Network != nil {
		d.net = wire.NewNetwork(*opts.Network)
	}
	for t := 0; t < opts.TCs; t++ {
		cfg := tc.Config{}
		if opts.TCConfig != nil {
			cfg = opts.TCConfig(t)
		}
		if cfg.ID == 0 {
			cfg.ID = base.TCID(t + 1)
		}
		var services []base.Service
		var clients []*wire.Client
		var servers []*wire.Server
		for dcIdx := 0; dcIdx < opts.DCs; dcIdx++ {
			if d.net == nil {
				services = append(services, d.DCs[dcIdx])
				clients = append(clients, nil)
				servers = append(servers, nil)
				continue
			}
			cl, srv := d.net.Connect(d.DCs[dcIdx])
			services = append(services, cl)
			clients = append(clients, cl)
			servers = append(servers, srv)
		}
		tci, err := tc.New(cfg, services, router)
		if err != nil {
			return nil, err
		}
		// A TC rebuilt over a previous incarnation's log (TCConfig.Dir)
		// restarts here, while the DCs are already serving: the ordinary
		// §5.3.2 restart, run at assembly time so the deployment hands
		// back only live TCs.
		if tci.NeedsRecovery() {
			if err := tci.Recover(); err != nil {
				return nil, fmt.Errorf("core: tc %d restart from %q: %w", cfg.ID, cfg.Dir, err)
			}
		}
		d.TCs = append(d.TCs, tci)
		d.clients = append(d.clients, clients)
		d.servers = append(d.servers, servers)
	}
	return d, nil
}

// Net exposes the network (stats), or nil for direct deployments.
func (d *Deployment) Net() *wire.Network { return d.net }

// Route returns the DC index serving (table, key). With a Placement, a
// table no clause covers fails typed (base.ErrUnknownTable) instead of
// silently falling through to DC 0.
func (d *Deployment) Route(table, key string) (int, error) { return d.router.DC(table, key) }

// Owner returns the ID of the TC owning update rights for (table, key)
// per the deployment's §6.1 ownership axes; zero means unowned (any TC
// may update — the posture of ownerless placements).
func (d *Deployment) Owner(table, key string) (base.TCID, error) {
	return d.router.Owner(table, key)
}

// Placement returns the deployment's placement, or nil when it was built
// without an explicit Options.Placement.
func (d *Deployment) Placement() *placement.Placement { return d.pl }

// Close stops the whole deployment: TC background work first (so commit
// barriers unblock), then the wire pumps, then the DCs. Idempotent — a
// second Close is a no-op, and closing twice never panics or hangs.
func (d *Deployment) Close() {
	d.closeOnce.Do(func() {
		close(d.closeCh)
		for _, t := range d.TCs {
			t.Close()
		}
		for ti := range d.clients {
			for di := range d.clients[ti] {
				if d.clients[ti][di] != nil {
					d.clients[ti][di].Close()
				}
				if d.servers[ti][di] != nil {
					d.servers[ti][di].Close()
				}
			}
		}
		for _, dci := range d.DCs {
			dci.Close()
		}
	})
}

// CrashDC fails data component i: its cache and volatile state are lost;
// while down it answers nothing. In-process DCs only — a remote DC
// (Options.DCAddrs) is crashed by killing its process, and calling this
// instead panics: silently skipping would let a test believe it injected
// an outage that never happened.
func (d *Deployment) CrashDC(i int) {
	if i >= len(d.DCs) {
		panic(fmt.Sprintf("core: CrashDC(%d): DC is remote; kill its process instead", i))
	}
	for ti := range d.servers {
		if d.servers[ti][i] != nil {
			d.servers[ti][i].SetDown(true)
		}
	}
	d.DCs[i].Crash()
}

// RecoverDC restarts data component i: DC-log recovery first (structures
// well-formed), then every TC is prompted to resend its redo stream from
// its redo scan start point (§4.2.1 restart, §5.3.2 "DC Failure").
func (d *Deployment) RecoverDC(i int) error {
	if i >= len(d.DCs) {
		return fmt.Errorf("core: DC %d is remote; restart its process instead", i)
	}
	if err := d.DCs[i].Recover(); err != nil {
		return err
	}
	for ti := range d.servers {
		if d.servers[ti][i] != nil {
			d.servers[ti][i].SetDown(false)
		}
	}
	for _, t := range d.TCs {
		if err := t.RecoverDC(i); err != nil {
			return err
		}
	}
	return nil
}

// CrashTC fails transactional component i (0-based): its unforced log
// tail, lock table, and transaction table are lost.
func (d *Deployment) CrashTC(i int) {
	d.TCs[i].Crash()
}

// RecoverTC restarts transactional component i: targeted DC cache resets,
// redo resend, loser undo (§5.3.2 "TC Failure"). Other TCs sharing the
// same DCs are not disturbed (§6.1.2).
func (d *Deployment) RecoverTC(i int) error {
	return d.TCs[i].Recover()
}

// CrashAll fails everything — the paper's "complete failure of both TC
// and DC returns us to the current fail-together situation".
func (d *Deployment) CrashAll() {
	for i := range d.TCs {
		d.CrashTC(i)
	}
	for i := range d.DCs {
		d.CrashDC(i)
	}
}

// RecoverAll restarts everything: DCs first (their structures must be
// well-formed before TC redo), then TCs.
func (d *Deployment) RecoverAll() error {
	for i := range d.DCs {
		if err := d.DCs[i].Recover(); err != nil {
			return err
		}
		for ti := range d.servers {
			if d.servers[ti][i] != nil {
				d.servers[ti][i].SetDown(false)
			}
		}
	}
	for i := range d.TCs {
		if err := d.TCs[i].Recover(); err != nil {
			return err
		}
	}
	return nil
}
