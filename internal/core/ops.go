package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/stats"
)

// The deployment's operations plane: one stats.Registry covering every
// component this process runs, and the fleet-assembly placement
// cross-check that refuses to serve traffic against DCs whose catalogs
// contradict the placement spec.

// StatsRegistry builds the registry an admin endpoint (stats.Serve)
// publishes: one group per TC ("tc1", ...), one per in-process DC
// ("dc0", ...), the simulated fabric's counters under "net" when one is
// interposed, and every wire client endpoint under "wire" with a
// "tc<ID>_dc<idx>_" prefix. Registration installs read-only closures over
// counters the components already maintain; snapshots never stop the
// world, and repeated calls return independent registries over the same
// underlying counters.
func (d *Deployment) StatsRegistry() *stats.Registry {
	reg := stats.NewRegistry()
	for _, t := range d.TCs {
		t.RegisterStats(reg.Group(fmt.Sprintf("tc%d", t.ID())))
	}
	for i, dci := range d.DCs {
		dci.RegisterStats(reg.Group(fmt.Sprintf("dc%d", i)))
	}
	if d.net != nil {
		d.net.RegisterStats(reg.Group("net"))
	}
	var wg *stats.Group
	for ti, row := range d.clients {
		for di, cl := range row {
			if cl == nil {
				continue
			}
			if wg == nil {
				wg = reg.Group("wire")
			}
			cl.RegisterStats(wg, fmt.Sprintf("tc%d_dc%d_", d.TCs[ti].ID(), di))
		}
	}
	return reg
}

// ValidatePlacement cross-checks the placement spec against what the
// deployment's data components actually serve: for every explicitly
// placed table, every DC its data axis can route keys to must list the
// table in its catalog. In-process DCs answer directly; remote DCs
// (Options.DCAddrs) answer over the wire (msgCatalog), so the check also
// proves each address points at a live, speaking DC. A mismatch — a fleet
// assembled from a spec naming tables some unbundled-dc was never told to
// serve — fails typed with base.ErrPlacementMismatch before any
// transaction is misrouted into ErrUnknownTable aborts. Deployments built
// without an explicit placement have nothing to check.
func (d *Deployment) ValidatePlacement(ctx context.Context) error {
	if d.pl == nil {
		return nil
	}
	catalogs := make(map[int]map[string]bool)
	catalog := func(i int) (map[string]bool, error) {
		if c, ok := catalogs[i]; ok {
			return c, nil
		}
		var tables []string
		var err error
		if i < len(d.DCs) {
			tables = d.DCs[i].Tables()
		} else {
			tables, err = d.clients[0][i].Catalog(ctx)
			if err != nil {
				return nil, fmt.Errorf("core: dc %d catalog: %w", i, err)
			}
		}
		c := make(map[string]bool, len(tables))
		for _, t := range tables {
			c[t] = true
		}
		catalogs[i] = c
		return c, nil
	}
	for _, table := range d.pl.Tables() {
		targets, err := d.pl.DataTargets(table)
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		for _, i := range targets {
			c, err := catalog(i)
			if err != nil {
				return err
			}
			if !c[table] {
				served := make([]string, 0, len(c))
				for t := range c {
					served = append(served, t)
				}
				sort.Strings(served)
				return fmt.Errorf("core: placement routes table %q to dc %d, which serves %v: %w",
					table, i, served, base.ErrPlacementMismatch)
			}
		}
	}
	return nil
}

// Drainables returns each TC paired with its admin-endpoint identity
// ("tc<ID>"), in deployment order: the handles stats.Serve needs to back
// /drain and /undrain. A deployment running one TC (the common fleet
// shape — one unbundled-tc process per TC) passes Drainables()[0].
func (d *Deployment) Drainables() []stats.Drainable {
	out := make([]stats.Drainable, len(d.TCs))
	for i, t := range d.TCs {
		out[i] = t
	}
	return out
}
