package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/cidr09/unbundled/internal/lockmgr"
	"github.com/cidr09/unbundled/internal/placement"
	"github.com/cidr09/unbundled/internal/tc"
	"github.com/cidr09/unbundled/internal/wire"
)

// TestCoalescedAcksOnMisbehavingNetwork is the correctness oracle for ack
// coalescing: pipelined increment transactions over a lossy, duplicating,
// jittery network with Config.CoalesceAcks on, checked against the serial
// oracle. Coalescing must be invisible to the protocol — losing or
// duplicating a whole msgReplyBatch is exactly a lost or duplicated set of
// member acks, which the resend loop and DC idempotence already absorb. A
// lost update here would mean a commit's ack barrier was satisfied by a
// reply the batcher mangled; a wedged run would mean a barrier waited on
// an ack a batch dropped. The test also requires the batcher to have
// actually flushed batches and the TC's ack barrier to end drained.
func TestCoalescedAcksOnMisbehavingNetwork(t *testing.T) {
	txns := 25 * chaosIters(t, 1)
	const (
		keys    = 8
		workers = 4
	)
	dep, err := New(Options{
		TCs: 1, DCs: 2, Tables: []string{"kv"},
		Placement: placement.MustParse("kv: dc=mod(2)"),
		TCConfig: func(int) tc.Config {
			// Pipelined shipping is the mode that leans on acks hardest:
			// commit blocks on the barrier until every shipped op is acked.
			return tc.Config{Pipeline: true, LockTimeout: 5 * time.Second}
		},
		Network: &wire.Config{
			Delay:        20 * time.Microsecond,
			Jitter:       100 * time.Microsecond,
			LossProb:     0.05,
			DupProb:      0.05,
			ResendAfter:  time.Millisecond,
			Seed:         11,
			CoalesceAcks: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	tcx := dep.TCs[0]

	key := func(i int) string { return fmt.Sprintf("c%d", i) }
	if err := tcx.RunTxn(context.Background(), tc.TxnOptions{}, func(x *tc.Txn) error {
		for i := 0; i < keys; i++ {
			if err := x.Insert("kv", key(i), []byte("0")); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Each transaction increments two counters, locks acquired in sorted
	// key order (waits, not deadlocks — except same-key S->X upgrades).
	var committed [keys]int64
	var cmu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txns; i++ {
				a := (w + i) % keys
				b := (w*3 + i*5 + 1) % keys
				if a == b {
					b = (b + 1) % keys
				}
				if b < a {
					a, b = b, a
				}
				err := tcx.RunTxn(context.Background(), tc.TxnOptions{}, func(x *tc.Txn) error {
					for _, k := range []int{a, b} {
						v, ok, err := x.Read("kv", key(k))
						if err != nil || !ok {
							return fmt.Errorf("read %s: %v %v", key(k), ok, err)
						}
						n, err := strconv.Atoi(string(v))
						if err != nil {
							return err
						}
						if err := x.Update("kv", key(k), []byte(strconv.Itoa(n+1))); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					if errors.Is(err, lockmgr.ErrDeadlock) ||
						errors.Is(err, lockmgr.ErrTimeout) {
						continue // clean abort; the oracle doesn't count it
					}
					t.Errorf("txn failed: %v", err)
					return
				}
				cmu.Lock()
				committed[a]++
				committed[b]++
				cmu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	// The committed state must match the serial oracle exactly.
	if err := tcx.RunTxn(context.Background(), tc.TxnOptions{}, func(x *tc.Txn) error {
		for i := 0; i < keys; i++ {
			v, ok, err := x.Read("kv", key(i))
			if err != nil || !ok {
				return fmt.Errorf("final read %s: %v %v", key(i), ok, err)
			}
			got, _ := strconv.Atoi(string(v))
			if int64(got) != committed[i] {
				return fmt.Errorf("lost update on %s: counter %d, commits %d",
					key(i), got, committed[i])
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Every shipped op was acked: the commit barrier must end drained.
	if d := tcx.AckBarrierDepth(); d != 0 {
		t.Fatalf("ack barrier still holds %d unacked ops after quiesce", d)
	}

	// The run must have exercised what it claims to: batches flushed
	// through the coalescer, and a network that actually misbehaved.
	// (Whether any batch held >1 reply is scheduling-dependent — the sim
	// delivers asynchronously — so only flushes are required.)
	var batches uint64
	for _, row := range dep.servers {
		for _, s := range row {
			if s == nil {
				continue
			}
			b, _ := s.AckStats()
			batches += b
		}
	}
	if batches == 0 {
		t.Fatal("ack coalescer never flushed a batch despite CoalesceAcks")
	}
	stats := dep.Net().Stats()
	if stats.Dropped == 0 && stats.Duplicated == 0 {
		t.Fatalf("network never misbehaved: %+v", stats)
	}
	if stats.Resends == 0 {
		t.Fatalf("no resends despite loss: %+v", stats)
	}
}
