package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/cidr09/unbundled/internal/lockmgr"
	"github.com/cidr09/unbundled/internal/placement"
	"github.com/cidr09/unbundled/internal/tc"
	"github.com/cidr09/unbundled/internal/wire"
)

// TestConcurrentTxnsOnMisbehavingNetwork runs concurrent increment
// transactions over a lossy, duplicating, reordering network — with and
// without pipelined operation shipping — and checks the committed state
// against the serial oracle: every key's final counter must equal the
// number of successful increments. Any lost update would prove a
// transaction released its locks before its pipelined writes were applied
// (a reader of the stale value would then commit over the top of them).
func TestConcurrentTxnsOnMisbehavingNetwork(t *testing.T) {
	// The per-worker transaction count scales with CHAOS_ITERS so the
	// nightly chaos job soaks the oracle far longer than a PR run.
	txns := 25 * chaosIters(t, 1)
	for _, pipelined := range []bool{false, true} {
		t.Run(fmt.Sprintf("pipeline=%v", pipelined), func(t *testing.T) {
			const (
				keys    = 8
				workers = 4
			)
			dep, err := New(Options{
				TCs: 1, DCs: 2, Tables: []string{"kv"},
				Placement: placement.MustParse("kv: dc=mod(2)"),
				TCConfig: func(int) tc.Config {
					return tc.Config{Pipeline: pipelined, LockTimeout: 5 * time.Second}
				},
				Network: &wire.Config{
					Delay:       20 * time.Microsecond,
					Jitter:      100 * time.Microsecond,
					LossProb:    0.05,
					DupProb:     0.05,
					ResendAfter: time.Millisecond,
					Seed:        7,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer dep.Close()
			tcx := dep.TCs[0]

			key := func(i int) string { return fmt.Sprintf("c%d", i) }
			if err := tcx.RunTxn(context.Background(), tc.TxnOptions{}, func(x *tc.Txn) error {
				for i := 0; i < keys; i++ {
					if err := x.Insert("kv", key(i), []byte("0")); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			// Each transaction increments two counters, always acquiring
			// locks in sorted key order (no deadlocks, only waits).
			var committed [keys]int64
			var cmu sync.Mutex
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < txns; i++ {
						a := (w + i) % keys
						b := (w*3 + i*5 + 1) % keys
						if a == b {
							b = (b + 1) % keys
						}
						if b < a {
							a, b = b, a
						}
						err := tcx.RunTxn(context.Background(), tc.TxnOptions{}, func(x *tc.Txn) error {
							for _, k := range []int{a, b} {
								v, ok, err := x.Read("kv", key(k))
								if err != nil || !ok {
									return fmt.Errorf("read %s: %v %v", key(k), ok, err)
								}
								n, err := strconv.Atoi(string(v))
								if err != nil {
									return err
								}
								if err := x.Update("kv", key(k), []byte(strconv.Itoa(n+1))); err != nil {
									return err
								}
							}
							return nil
						})
						if err != nil {
							// Read-then-update of the same key is an S->X
							// upgrade; two txns upgrading the same key
							// deadlock legitimately, and a txn can lose
							// that race past RunTxn's retry budget. The
							// abort is clean (nothing committed), so the
							// oracle simply doesn't count it.
							if errors.Is(err, lockmgr.ErrDeadlock) ||
								errors.Is(err, lockmgr.ErrTimeout) {
								continue
							}
							t.Errorf("txn failed: %v", err)
							return
						}
						cmu.Lock()
						committed[a]++
						committed[b]++
						cmu.Unlock()
					}
				}(w)
			}
			wg.Wait()

			// The committed state must match the serial oracle exactly.
			if err := tcx.RunTxn(context.Background(), tc.TxnOptions{}, func(x *tc.Txn) error {
				for i := 0; i < keys; i++ {
					v, ok, err := x.Read("kv", key(i))
					if err != nil || !ok {
						return fmt.Errorf("final read %s: %v %v", key(i), ok, err)
					}
					got, _ := strconv.Atoi(string(v))
					if int64(got) != committed[i] {
						return fmt.Errorf("lost update on %s: counter %d, commits %d",
							key(i), got, committed[i])
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			// The network must actually have misbehaved for this to mean
			// anything.
			stats := dep.Net().Stats()
			if stats.Dropped == 0 && stats.Duplicated == 0 {
				t.Fatalf("network never misbehaved: %+v", stats)
			}
			if stats.Resends == 0 {
				t.Fatalf("no resends despite loss: %+v", stats)
			}
		})
	}
}
