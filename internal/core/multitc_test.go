package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/dc"
	"github.com/cidr09/unbundled/internal/placement"
	"github.com/cidr09/unbundled/internal/tc"
	"github.com/cidr09/unbundled/internal/wire"
)

// multiTCSpec is the shared placement of every test here: one table on
// one DC, update ownership split by key range between TC 1 (keys < "m")
// and TC 2 (the rest). The same spec string drives in-process and TCP
// deployments — the acceptance-criterion property.
const multiTCSpec = "kv: dc=0 owner=range(<m:1,*:2)"

// TestMultiTCSharedDCDirect: two TCs with disjoint §6.1 ownership commit
// concurrently against one shared in-process DC, routed by write intent,
// and every committed write is readable afterwards from either TC.
func TestMultiTCSharedDCDirect(t *testing.T) {
	dep, err := New(Options{TCs: 2, DCs: 1, Placement: placement.MustParse(multiTCSpec)})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	client := dep.Client()
	ctx := context.Background()

	const perTC = 200
	var wg sync.WaitGroup
	var failures atomic.Uint64
	for _, prefix := range []string{"a", "z"} { // "a..." -> TC 1, "z..." -> TC 2
		wg.Add(1)
		go func(prefix string) {
			defer wg.Done()
			for i := 0; i < perTC; i++ {
				key := fmt.Sprintf("%s-%04d", prefix, i)
				err := client.RunTxnAt(ctx, "kv", key, TxnOptions{}, func(x *tc.Txn) error {
					return x.Upsert("kv", key, []byte(key))
				})
				if err != nil {
					t.Errorf("write %s: %v", key, err)
					failures.Add(1)
				}
			}
		}(prefix)
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d concurrent cross-TC writes failed", failures.Load())
	}
	// Routing actually partitioned the work: each TC committed its side.
	for i, tcx := range dep.TCs {
		if c := tcx.Stats().Commits; c != perTC {
			t.Fatalf("TC %d committed %d transactions, want %d (write-intent routing broken)", i+1, c, perTC)
		}
	}
	// Reads are unrestricted (§6.1: all TCs may read everywhere): verify
	// both partitions through both TCs.
	for _, pin := range []int{1, 2} {
		for _, prefix := range []string{"a", "z"} {
			key := fmt.Sprintf("%s-%04d", prefix, perTC-1)
			err := client.RunTxn(ctx, TxnOptions{TC: pin, ReadOnly: true}, func(x *tc.Txn) error {
				v, ok, err := x.Read("kv", key)
				if err != nil {
					return err
				}
				if !ok || string(v) != key {
					return fmt.Errorf("key %s: found=%v val=%q", key, ok, v)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("read via TC %d: %v", pin, err)
			}
		}
	}
}

// TestWrongOwnerPermanent: a write outside the issuing TC's partition
// aborts with ErrWrongOwner, the client never retries it (fn runs exactly
// once), and routing a write set that spans partitions fails before a
// transaction starts.
func TestWrongOwnerPermanent(t *testing.T) {
	dep, err := New(Options{TCs: 2, DCs: 1, Placement: placement.MustParse(multiTCSpec)})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	client := dep.Client()
	ctx := context.Background()

	var attempts atomic.Uint64
	err = client.RunTxn(ctx, TxnOptions{TC: 1}, func(x *tc.Txn) error {
		attempts.Add(1)
		return x.Upsert("kv", "z-owned-by-2", []byte("v")) // TC 1 does not own "z..."
	})
	if !errors.Is(err, base.ErrWrongOwner) {
		t.Fatalf("wrong-owner write = %v, want ErrWrongOwner", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1 (ErrWrongOwner must be permanent)", got)
	}

	// The write was aborted before reaching the DC: nothing to read back.
	err = client.RunTxn(ctx, TxnOptions{ReadOnly: true}, func(x *tc.Txn) error {
		if _, ok, err := x.Read("kv", "z-owned-by-2"); err != nil {
			return err
		} else if ok {
			return fmt.Errorf("aborted write is visible")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// A write set spanning two partitions cannot be routed anywhere.
	var ran atomic.Uint64
	err = client.RunTxn(ctx, TxnOptions{
		WriteSet: map[string][]string{"kv": {"a-left", "z-right"}},
	}, func(x *tc.Txn) error { ran.Add(1); return nil })
	if !errors.Is(err, base.ErrWrongOwner) {
		t.Fatalf("spanning write set = %v, want ErrWrongOwner", err)
	}
	if ran.Load() != 0 {
		t.Fatal("fn ran despite unroutable write set")
	}

	// An owner that lives in another process (fleet of 3, deployment of
	// 2) is reported typed too: this client cannot serve it.
	dep3, err := New(Options{TCs: 2, DCs: 1, FleetTCs: 3,
		Placement: placement.MustParse("kv: dc=0 owner=3")})
	if err != nil {
		t.Fatal(err)
	}
	defer dep3.Close()
	err = dep3.Client().RunTxnAt(ctx, "kv", "k", TxnOptions{}, func(x *tc.Txn) error { return nil })
	if !errors.Is(err, base.ErrWrongOwner) {
		t.Fatalf("out-of-process owner = %v, want ErrWrongOwner", err)
	}
}

// TestPinBounds: a TC pin outside the uint16 ID space errors instead of
// aliasing a valid TC after truncation.
func TestPinBounds(t *testing.T) {
	dep, err := New(Options{TCs: 2, DCs: 1, Placement: placement.MustParse(multiTCSpec)})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	for _, pin := range []int{-1, 65536, 65537, 3} { // 65537 would truncate to TC 1
		err := dep.Client().RunTxn(context.Background(), TxnOptions{TC: pin},
			func(x *tc.Txn) error { return nil })
		if err == nil {
			t.Fatalf("pin %d accepted", pin)
		}
	}
}

// TestUnknownTableTyped: lookups on a table the placement does not cover
// fail with ErrUnknownTable at every entry point instead of silently
// routing to DC 0.
func TestUnknownTableTyped(t *testing.T) {
	dep, err := New(Options{TCs: 1, DCs: 1, Placement: placement.MustParse("kv: dc=0 owner=1")})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	client := dep.Client()
	ctx := context.Background()

	if _, err := dep.Route("ghost", "k"); !errors.Is(err, base.ErrUnknownTable) {
		t.Fatalf("Deployment.Route(ghost) = %v, want ErrUnknownTable", err)
	}
	if _, err := dep.Owner("ghost", "k"); !errors.Is(err, base.ErrUnknownTable) {
		t.Fatalf("Deployment.Owner(ghost) = %v, want ErrUnknownTable", err)
	}
	err = client.RunTxn(ctx, TxnOptions{}, func(x *tc.Txn) error {
		return x.Upsert("ghost", "k", []byte("v"))
	})
	if !errors.Is(err, base.ErrUnknownTable) {
		t.Fatalf("write to unplaced table = %v, want ErrUnknownTable", err)
	}
	err = client.RunTxn(ctx, TxnOptions{}, func(x *tc.Txn) error {
		_, _, err := x.Read("ghost", "k")
		return err
	})
	if !errors.Is(err, base.ErrUnknownTable) {
		t.Fatalf("read of unplaced table = %v, want ErrUnknownTable", err)
	}
	err = client.RunTxn(ctx, TxnOptions{}, func(x *tc.Txn) error {
		_, _, err := x.Scan("ghost", "a", "z", 0)
		return err
	})
	if !errors.Is(err, base.ErrUnknownTable) {
		t.Fatalf("scan of unplaced table = %v, want ErrUnknownTable", err)
	}
}

// TestMultiTCSharedDCOverTCP is the §6.1 scale-out shape end to end: two
// single-TC deployments — separate "processes" as far as every component
// can tell, TC IDs 1 and 2, driven by the identical placement spec string
// — share one DC served over real TCP. Both commit concurrently; one TC
// crashes and restarts mid-run, and its epoch fence must not disturb the
// other TC's traffic; a write outside a TC's partition fails typed across
// the whole stack.
func TestMultiTCSharedDCOverTCP(t *testing.T) {
	d, err := dc.New(dc.Config{Name: "shared"})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	l, err := wire.Listen("127.0.0.1:0", d)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	defer d.Close()

	ctx := context.Background()
	newTC := func(id int) *Deployment {
		t.Helper()
		pl, err := placement.Parse(multiTCSpec) // each "process" parses the same flag text
		if err != nil {
			t.Fatal(err)
		}
		dep, err := New(Options{
			TCs: 1, FleetTCs: 2, DCAddrs: []string{l.Addr()}, Placement: pl,
			TCConfig: func(int) tc.Config { return tc.Config{ID: base.TCID(id)} },
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(dep.Close)
		if err := dep.WaitConnected(ctx); err != nil {
			t.Fatal(err)
		}
		return dep
	}
	dep1, dep2 := newTC(1), newTC(2)

	// TC 2 commits throughout; TC 1 crashes and restarts mid-run. TC 2
	// must never observe an error — the §6.1.2 promise that one TC's
	// restart (targeted resets, its own epoch fence) leaves other TCs'
	// traffic alone.
	const txns = 150
	errCh := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c2 := dep2.Client()
		for i := 0; i < txns; i++ {
			key := fmt.Sprintf("z-%04d", i)
			if err := c2.RunTxnAt(ctx, "kv", key, TxnOptions{}, func(x *tc.Txn) error {
				return x.Upsert("kv", key, []byte(key))
			}); err != nil {
				select {
				case errCh <- fmt.Errorf("TC2 txn %d during TC1 restart: %w", i, err):
				default:
				}
				return
			}
		}
	}()

	c1 := dep1.Client()
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("a-%04d", i)
		if err := c1.RunTxnAt(ctx, "kv", key, TxnOptions{}, func(x *tc.Txn) error {
			return x.Upsert("kv", key, []byte(key))
		}); err != nil {
			t.Fatalf("TC1 pre-crash txn %d: %v", i, err)
		}
	}
	preEpoch := dep1.TCs[0].Epoch()
	dep1.CrashTC(0)
	if err := dep1.RecoverTC(0); err != nil {
		t.Fatalf("TC1 recover: %v", err)
	}
	if e := dep1.TCs[0].Epoch(); e <= preEpoch {
		t.Fatalf("TC1 epoch did not advance across restart: %d -> %d", preEpoch, e)
	}
	// TC1 serves again after its restart.
	for i := 40; i < 80; i++ {
		key := fmt.Sprintf("a-%04d", i)
		if err := c1.RunTxnAt(ctx, "kv", key, TxnOptions{}, func(x *tc.Txn) error {
			return x.Upsert("kv", key, []byte(key))
		}); err != nil {
			t.Fatalf("TC1 post-restart txn %d: %v", i, err)
		}
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Ownership is enforced in the TCP deployment too, typed end to end.
	err = c1.RunTxn(ctx, TxnOptions{}, func(x *tc.Txn) error {
		return x.Upsert("kv", "z-not-mine", []byte("v"))
	})
	if !errors.Is(err, base.ErrWrongOwner) {
		t.Fatalf("TCP wrong-owner write = %v, want ErrWrongOwner", err)
	}

	// Every committed write from both TCs is intact at the shared DC.
	verify := func(c *Client, prefix string, n int) {
		t.Helper()
		if err := c.RunTxn(ctx, TxnOptions{ReadOnly: true}, func(x *tc.Txn) error {
			for i := 0; i < n; i++ {
				key := fmt.Sprintf("%s-%04d", prefix, i)
				v, ok, err := x.Read("kv", key)
				if err != nil {
					return err
				}
				if !ok || string(v) != key {
					return fmt.Errorf("lost committed write %s (found=%v)", key, ok)
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	verify(c1, "a", 80)
	verify(dep2.Client(), "z", txns)
	verify(c1, "z", txns) // cross-partition reads are free
}
