package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/dc"
	"github.com/cidr09/unbundled/internal/placement"
	"github.com/cidr09/unbundled/internal/tc"
	"github.com/cidr09/unbundled/internal/wire"
)

// TestDrainUnderConcurrentLoad is the operations-plane contract under
// load (run it with -race): while writers hammer a two-TC deployment,
// draining one TC (a) lets its in-flight transactions complete and the TC
// reach quiesced, (b) rejects work pinned to it with the typed transient
// ErrDraining, (c) loses no committed write because auto-routed load
// re-routes onto the other TC, and (d) undrain restores admission.
func TestDrainUnderConcurrentLoad(t *testing.T) {
	d, err := New(Options{TCs: 2, DCs: 2,
		Placement: placement.MustParse("kv: dc=hash(2) owner=any")})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	client := d.Client()
	ctx := context.Background()

	var committed atomic.Uint64
	var failed atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("d%d-%06d", w, i)
				err := client.RunTxn(ctx, TxnOptions{}, func(x *tc.Txn) error {
					return x.Upsert("kv", key, []byte(key))
				})
				if err != nil {
					failed.Add(1)
				} else {
					committed.Add(1)
				}
			}
		}(w)
	}

	time.Sleep(20 * time.Millisecond) // load flowing through both TCs
	before := committed.Load()
	d.TCs[0].Drain()

	// (a) the drained TC finishes its in-flight work and quiesces.
	qctx, qcancel := context.WithTimeout(ctx, 10*time.Second)
	err = d.TCs[0].WaitQuiesced(qctx)
	qcancel()
	if err != nil {
		t.Fatalf("drained TC did not quiesce under load: %v", err)
	}

	// (b) work pinned to the drained TC is refused typed and transient.
	_, err = client.Begin(ctx, TxnOptions{TC: int(d.TCs[0].ID())})
	if !errors.Is(err, base.ErrDraining) {
		t.Fatalf("Begin pinned to drained TC: err = %v, want ErrDraining", err)
	}
	if !base.IsTransient(err) {
		t.Fatalf("ErrDraining must be transient, got %v", err)
	}

	// (c) auto-routed load keeps committing on the remaining TC.
	deadline := time.Now().Add(5 * time.Second)
	for committed.Load() < before+50 {
		if time.Now().After(deadline) {
			t.Fatalf("load did not re-route around the drained TC: %d -> %d commits",
				before, committed.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if n := d.TCs[0].ActiveTxns(); n != 0 {
		t.Fatalf("drained TC reports %d active transactions after quiesce", n)
	}

	// (d) undrain restores admission.
	d.TCs[0].Undrain()
	if d.TCs[0].Draining() {
		t.Fatal("still draining after Undrain")
	}
	if err := client.RunTxn(ctx, TxnOptions{TC: int(d.TCs[0].ID())}, func(x *tc.Txn) error {
		return x.Upsert("kv", "after-undrain", []byte("v"))
	}); err != nil {
		t.Fatalf("txn on undrained TC: %v", err)
	}

	close(stop)
	wg.Wait()

	// Nothing committed may be lost: spot-check by counting stats — every
	// committed RunTxn reached its commit barrier, so the drained window
	// admitted no torn work.
	st0, st1 := d.TCs[0].Stats(), d.TCs[1].Stats()
	if st0.Commits+st1.Commits < committed.Load() {
		t.Fatalf("TC commit counters (%d+%d) below client-observed commits (%d)",
			st0.Commits, st1.Commits, committed.Load())
	}
}

// TestDrainWaitsForInFlight pins the quiesce definition: a drained TC
// with an open transaction is not quiesced until that transaction ends.
func TestDrainWaitsForInFlight(t *testing.T) {
	d, err := New(Options{TCs: 1, DCs: 1, Tables: []string{"kv"}})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()

	x := d.TCs[0].Begin(ctx, tc.TxnOptions{})
	if err := x.Upsert("kv", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	d.TCs[0].Drain()
	if d.TCs[0].Quiesced() {
		t.Fatal("quiesced while a transaction is in flight")
	}
	// New admission is already refused while the old transaction runs on.
	err = d.TCs[0].RunTxnOnce(ctx, tc.TxnOptions{}, func(*tc.Txn) error { return nil })
	if !errors.Is(err, base.ErrDraining) {
		t.Fatalf("RunTxnOnce during drain: err = %v, want ErrDraining", err)
	}
	if err := x.Commit(); err != nil {
		t.Fatalf("in-flight commit during drain: %v", err)
	}
	qctx, qcancel := context.WithTimeout(ctx, 10*time.Second)
	defer qcancel()
	if err := d.TCs[0].WaitQuiesced(qctx); err != nil {
		t.Fatalf("WaitQuiesced after in-flight commit: %v", err)
	}
}

// TestCrashMidDrainRecoversServing is the kill -9 mid-drain case: drain
// state is not persisted, so a TC that crashes while draining restarts
// serving — operators drain again if they still want the node out.
func TestCrashMidDrainRecoversServing(t *testing.T) {
	d, err := New(Options{TCs: 1, DCs: 1, Tables: []string{"kv"},
		TCConfig: func(int) tc.Config { return tc.Config{Dir: t.TempDir()} }})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()

	if err := d.TCs[0].RunTxn(ctx, tc.TxnOptions{}, func(x *tc.Txn) error {
		return x.Upsert("kv", "pre-crash", []byte("v1"))
	}); err != nil {
		t.Fatal(err)
	}
	d.TCs[0].Drain()
	qctx, qcancel := context.WithTimeout(ctx, 10*time.Second)
	err = d.TCs[0].WaitQuiesced(qctx)
	qcancel()
	if err != nil {
		t.Fatal(err)
	}

	d.CrashTC(0)
	if err := d.RecoverTC(0); err != nil {
		t.Fatalf("recovery of a TC crashed mid-drain: %v", err)
	}
	if d.TCs[0].Draining() {
		t.Fatal("drain survived the crash; a restarted incarnation must serve")
	}
	if err := d.TCs[0].RunTxn(ctx, tc.TxnOptions{}, func(x *tc.Txn) error {
		v, ok, err := x.Read("kv", "pre-crash")
		if err != nil {
			return err
		}
		if !ok || string(v) != "v1" {
			return fmt.Errorf("pre-crash write lost: %q %v", v, ok)
		}
		return x.Upsert("kv", "post-crash", []byte("v2"))
	}); err != nil {
		t.Fatalf("txn after mid-drain crash recovery: %v", err)
	}
}

// TestWaitQuiescedDetectsUndrain: an operator flipping the drain off
// mid-wait fails the waiter instead of blocking it forever.
func TestWaitQuiescedDetectsUndrain(t *testing.T) {
	d, err := New(Options{TCs: 1, DCs: 1, Tables: []string{"kv"}})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	x := d.TCs[0].Begin(context.Background(), tc.TxnOptions{})
	if err := x.Upsert("kv", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	d.TCs[0].Drain()
	go func() {
		time.Sleep(10 * time.Millisecond)
		d.TCs[0].Undrain()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.TCs[0].WaitQuiesced(ctx); err == nil {
		t.Fatal("WaitQuiesced returned success though the drain was lifted")
	}
	if err := x.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestValidatePlacementInProcess cross-checks the spec against in-process
// DC catalogs: a deployment whose DCs were given different tables than
// the placement routes fails typed.
func TestValidatePlacementInProcess(t *testing.T) {
	ok, err := New(Options{TCs: 1, DCs: 2,
		Placement: placement.MustParse("kv: dc=hash(2)")})
	if err != nil {
		t.Fatal(err)
	}
	defer ok.Close()
	if err := ok.ValidatePlacement(context.Background()); err != nil {
		t.Fatalf("matching deployment failed validation: %v", err)
	}

	// Tables overrides what the DCs serve; the placement still routes "kv".
	bad, err := New(Options{TCs: 1, DCs: 2, Tables: []string{"other"},
		Placement: placement.MustParse("kv: dc=hash(2)")})
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	err = bad.ValidatePlacement(context.Background())
	if !errors.Is(err, base.ErrPlacementMismatch) {
		t.Fatalf("mismatched deployment: err = %v, want ErrPlacementMismatch", err)
	}
}

// TestValidatePlacementRemote cross-checks over the wire: the "DC
// process" is a dc.DC behind a wire.Listener in this test, answering
// msgCatalog for real.
func TestValidatePlacementRemote(t *testing.T) {
	startDC := func(tables ...string) *wire.Listener {
		dci, err := dc.New(dc.Config{Name: "dc0"})
		if err != nil {
			t.Fatal(err)
		}
		for _, tbl := range tables {
			if err := dci.CreateTable(tbl); err != nil {
				t.Fatal(err)
			}
		}
		l, err := wire.Listen("127.0.0.1:0", dci)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	l := startDC("kv")
	defer l.Close()
	dep, err := New(Options{DCAddrs: []string{l.Addr()},
		Placement: placement.MustParse("kv: dc=0")})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := dep.WaitConnected(ctx); err != nil {
		t.Fatal(err)
	}
	if err := dep.ValidatePlacement(ctx); err != nil {
		t.Fatalf("matching remote fleet failed validation: %v", err)
	}

	l2 := startDC("users") // serves the wrong table
	defer l2.Close()
	dep2, err := New(Options{DCAddrs: []string{l2.Addr()},
		Placement: placement.MustParse("kv: dc=0")})
	if err != nil {
		t.Fatal(err)
	}
	defer dep2.Close()
	if err := dep2.WaitConnected(ctx); err != nil {
		t.Fatal(err)
	}
	err = dep2.ValidatePlacement(ctx)
	if !errors.Is(err, base.ErrPlacementMismatch) {
		t.Fatalf("misassembled remote fleet: err = %v, want ErrPlacementMismatch", err)
	}
}

// TestStatsRegistryCoversDeployment asserts the registry schema an admin
// endpoint publishes: per-TC groups, per-DC groups, and the simulated
// fabric under "net", with live counters behind them.
func TestStatsRegistryCoversDeployment(t *testing.T) {
	d, err := New(Options{TCs: 2, DCs: 2, Tables: []string{"kv"},
		Placement: placement.MustParse("kv: dc=hash(2) owner=any"),
		Network:   &wire.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Client().RunTxn(context.Background(), TxnOptions{}, func(x *tc.Txn) error {
		return x.Upsert("kv", "k", []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}
	snap := d.StatsRegistry().Snapshot()
	for _, g := range []string{"tc1", "tc2", "dc0", "dc1", "net", "wire"} {
		if _, ok := snap[g]; !ok {
			t.Fatalf("registry snapshot missing group %q (have %v)", g, keys(snap))
		}
	}
	if snap["tc1"]["commits"]+snap["tc2"]["commits"] == 0 {
		t.Fatal("no commits visible through the registry")
	}
	if snap["dc0"]["performs"]+snap["dc1"]["performs"] == 0 {
		t.Fatal("no performs visible through the registry")
	}
	if snap["net"]["sent"] == 0 {
		t.Fatal("no traffic visible under the net group")
	}
}

func keys(m map[string]map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
