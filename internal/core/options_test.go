package core

import (
	"reflect"
	"testing"

	"github.com/cidr09/unbundled/internal/tc"
)

// TestTxnOptionsThreading pins the single-conversion-point contract of
// tcOpts: a field added to tc.TxnOptions without a same-named,
// same-typed core.TxnOptions field fails here, as does a new core field
// that is neither threaded through tcOpts nor declared deployment-only.
func TestTxnOptionsThreading(t *testing.T) {
	// Deployment-level concerns with no TC-side counterpart: routing,
	// and the client retry policy.
	coreOnly := map[string]bool{
		"TC": true, "WriteSet": true, "MaxAttempts": true, "RetryBackoff": true,
	}

	coreT := reflect.TypeOf(TxnOptions{})
	tcT := reflect.TypeOf(tc.TxnOptions{})

	for i := 0; i < tcT.NumField(); i++ {
		f := tcT.Field(i)
		cf, ok := coreT.FieldByName(f.Name)
		if !ok {
			t.Errorf("tc.TxnOptions.%s has no core.TxnOptions counterpart", f.Name)
			continue
		}
		if cf.Type != f.Type {
			t.Errorf("TxnOptions.%s type mismatch: core %v vs tc %v", f.Name, cf.Type, f.Type)
		}
	}
	for i := 0; i < coreT.NumField(); i++ {
		f := coreT.Field(i)
		if _, shared := tcT.FieldByName(f.Name); !shared && !coreOnly[f.Name] {
			t.Errorf("core.TxnOptions.%s: not mirrored in tc.TxnOptions and not in the deployment-only allowlist", f.Name)
		}
	}

	// tcOpts must copy the values, not just compile: fill every core field
	// with a distinctive nonzero value and check each shared field lands.
	var o TxnOptions
	ov := reflect.ValueOf(&o).Elem()
	for i := 0; i < coreT.NumField(); i++ {
		setNonZero(t, ov.Field(i), i)
	}
	got := reflect.ValueOf(o.tcOpts())
	for i := 0; i < tcT.NumField(); i++ {
		name := tcT.Field(i).Name
		want := ov.FieldByName(name)
		if !want.IsValid() {
			continue // missing counterpart, reported above
		}
		if !reflect.DeepEqual(got.Field(i).Interface(), want.Interface()) {
			t.Errorf("tcOpts drops %s: got %v, want %v", name, got.Field(i), want)
		}
	}
}

func setNonZero(t *testing.T, v reflect.Value, seed int) {
	t.Helper()
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(int64(seed) + 1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(uint64(seed) + 1)
	case reflect.String:
		v.SetString("x")
	case reflect.Map:
		v.Set(reflect.MakeMap(v.Type()))
	default:
		t.Fatalf("setNonZero: unhandled kind %v — extend the helper", v.Kind())
	}
}
