package core

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"github.com/cidr09/unbundled/internal/placement"
	"github.com/cidr09/unbundled/internal/tc"
	"github.com/cidr09/unbundled/internal/wire"
)

// chaosIters returns the iteration count for crash-interleaving tests:
// the default for ordinary runs, or CHAOS_ITERS when the chaos CI job (or
// a developer) wants elevated coverage.
func chaosIters(tb testing.TB, def int) int {
	s := os.Getenv("CHAOS_ITERS")
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		tb.Fatalf("bad CHAOS_ITERS %q", s)
	}
	return n
}

// TestEpochFenceCrashDuringBatchChaos crashes a pipelined TC while an
// uncommitted transaction's batches are loose somewhere in a delayed,
// jittery, lossy, duplicating fabric — in flight, parked in a resend loop,
// or duplicated for later delivery — then restarts it and runs a strict
// serial oracle over the reused LSN space. Any of the dead incarnation's
// writes taking effect after the restart shows up as a resurrected ghost
// key or as a lost post-restart update (a reused LSN wrongly treated as
// already applied by the abstract-LSN tables).
func TestEpochFenceCrashDuringBatchChaos(t *testing.T) {
	iters := chaosIters(t, 4)
	for it := 0; it < iters; it++ {
		it := it
		t.Run(fmt.Sprintf("seed%d", it), func(t *testing.T) {
			rnd := rand.New(rand.NewSource(int64(it)*977 + 5))
			dep, err := New(Options{
				TCs: 1, DCs: 2, Tables: []string{"kv"},
				Placement: placement.MustParse("kv: dc=mod(2)"),
				TCConfig: func(int) tc.Config {
					return tc.Config{Pipeline: true, LockTimeout: 5 * time.Second}
				},
				Network: &wire.Config{
					Delay:       100 * time.Microsecond,
					Jitter:      400 * time.Microsecond,
					LossProb:    0.05,
					DupProb:     0.10,
					ResendAfter: time.Millisecond,
					Seed:        int64(it)*31 + 1,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer dep.Close()
			tcx := dep.TCs[0]

			const keys = 4
			key := func(i int) string { return fmt.Sprintf("c%d", i) }
			if err := tcx.RunTxn(context.Background(), tc.TxnOptions{}, func(x *tc.Txn) error {
				for i := 0; i < keys; i++ {
					if err := x.Insert("kv", key(i), []byte("0")); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			// Leave an uncommitted transaction's blind upserts in the
			// fabric (versioned: no pre-check read gates the pipeline),
			// then crash at a random point of their delivery window.
			ghost := tcx.Begin(context.Background(), tc.TxnOptions{Versioned: true})
			for g := 0; g < keys; g++ {
				if err := ghost.Upsert("kv", fmt.Sprintf("g%d", g), []byte("boo")); err != nil {
					t.Fatal(err)
				}
			}
			time.Sleep(time.Duration(rnd.Intn(600)) * time.Microsecond)
			dep.CrashTC(0)
			if err := dep.RecoverTC(0); err != nil {
				t.Fatal(err)
			}

			// Strict oracle over the reused LSN space: every increment must
			// apply exactly once, even while stale batches and duplicated
			// deliveries of the dead incarnation keep arriving.
			const increments = 24
			for r := 0; r < increments; r++ {
				k := key(r % keys)
				if err := tcx.RunTxn(context.Background(), tc.TxnOptions{}, func(x *tc.Txn) error {
					v, ok, err := x.Read("kv", k)
					if err != nil || !ok {
						return fmt.Errorf("read %s: %v %v", k, ok, err)
					}
					n, err := strconv.Atoi(string(v))
					if err != nil {
						return err
					}
					return x.Update("kv", k, []byte(strconv.Itoa(n+1)))
				}); err != nil {
					t.Fatalf("iter %d increment %d: %v", it, r, err)
				}
			}
			if err := tcx.RunTxn(context.Background(), tc.TxnOptions{}, func(x *tc.Txn) error {
				for i := 0; i < keys; i++ {
					v, ok, err := x.Read("kv", key(i))
					if err != nil || !ok {
						return fmt.Errorf("final read %s: %v %v", key(i), ok, err)
					}
					if got, _ := strconv.Atoi(string(v)); got != increments/keys {
						return fmt.Errorf("lost update on %s: %d, want %d (reused LSN poisoned)",
							key(i), got, increments/keys)
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			// The dead incarnation's uncommitted writes must be gone: swept
			// by the restart reset if they landed before it, fenced if after.
			x := tcx.Begin(context.Background(), tc.TxnOptions{})
			for g := 0; g < keys; g++ {
				if _, ok, err := x.ReadDirty("kv", fmt.Sprintf("g%d", g)); err != nil {
					t.Fatal(err)
				} else if ok {
					t.Fatalf("iter %d: ghost g%d took effect after restart", it, g)
				}
			}
			_ = x.Abort()
		})
	}
}
