// Package dc implements the Data Component (§4.1.2): a server for logical,
// record-oriented operations that knows nothing about transactions. It
// organizes, searches, updates, caches, and makes durable the data in the
// database; it makes each individual operation atomic and idempotent so
// that the TC's resend discipline yields exactly-once execution (§4.2).
//
// All knowledge of pages lives here. Structure modifications are system
// transactions on the DC-log (package dclog); the abstract-LSN machinery
// (package ablsn) provides idempotence despite out-of-order operation
// arrival (§5.1); the buffer pool (package buffer) enforces the causality
// and WAL gates; and partial failures are handled by the targeted cache
// reset of §5.3.2/§6.1.2.
package dc

import (
	"context"
	"encoding/binary"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/btree"
	"github.com/cidr09/unbundled/internal/buffer"
	"github.com/cidr09/unbundled/internal/dclog"
	"github.com/cidr09/unbundled/internal/page"
	"github.com/cidr09/unbundled/internal/storage"
	"github.com/cidr09/unbundled/internal/wal"
)

// catalogPageID is the well-known page holding table -> root mappings; it
// is the first page allocated when a DC is formatted.
const catalogPageID = base.PageID(1)

// Config shapes a DC instance.
type Config struct {
	// Name identifies the DC in diagnostics.
	Name string
	// PageBytes is the split threshold (default 4096).
	PageBytes int
	// CacheCapacity is the buffer-pool capacity in pages.
	CacheCapacity int
	// Strategy is the §5.1.2 page-sync strategy (default SyncFull).
	Strategy buffer.SyncStrategy
	// HybridMax is the SyncHybrid threshold.
	HybridMax int
	// CheckConflicts enables the debug invariant that no two conflicting
	// operations execute concurrently (the TC's obligation, §1.2).
	CheckConflicts bool
	// Dir, when nonempty, backs the DC's stable media (page store and
	// DC-log) with that filesystem directory so they survive process death
	// — what a standalone cmd/unbundled-dc needs to honor checkpoint
	// contracts across kill -9. Empty keeps the in-memory simulated media.
	// Reopening a directory a previous incarnation wrote runs DC-log
	// recovery before serving (the TC then resends its redo stream).
	Dir string
}

// Stats counts DC activity.
type Stats struct {
	Performs      uint64
	DupSkips      uint64 // operations recognized as already applied
	Unavailable   uint64
	StaleEpochs   uint64 // operations refused as pre-restart (epoch fence)
	ResetPages    uint64 // pages reset by partial-failure restarts
	RestoredRecs  uint64 // records restored from disk versions during reset
	ConflictViols uint64 // debug conflict-checker violations (must be 0)
	SnapshotReads uint64 // snapshot-flavor reads served
	SnapshotWaits uint64 // snapshot reads that had to wait out a safe TS
}

type dcState int

const (
	stateRunning dcState = iota
	stateDown
	stateRecovering
	stateClosed
)

// tcState is the DC's per-TC bookkeeping: the watermarks that drive
// flushing and pruning, plus the incarnation-epoch fence.
type tcState struct {
	// ctl serializes the control plane — epoch installs and the restart
	// sweep (BeginRestart), activation (EndRestart), checkpoint admission,
	// and watermark advances. The wire server dispatches control calls in
	// their own goroutines and the fabric duplicates deliveries, so every
	// check-then-act on this state must hold ctl or a duplicated/reordered
	// delivery can double-run the sweep, regress the fence, or slip a
	// stale watermark past a concurrent fence raise. Reads on the Perform
	// hot path stay lock-free via the atomics.
	ctl  sync.Mutex
	eosl atomic.Uint64
	lwm  atomic.Uint64
	// epoch is the fence installed by the TC's last begin_restart (zero
	// until the first restart is seen): operations, watermarks, and control
	// calls stamped with an older epoch are refused. It only ever rises.
	epoch atomic.Uint64
	// restarting is true between begin_restart and end_restart: the staged
	// epoch is fencing already, but normal processing (checkpoints) has not
	// been re-admitted yet.
	restarting atomic.Bool

	// safe is the TC's closed timestamp: the TC promises that every commit
	// with TS <= safe has been finalized at this DC and that it will never
	// assign a commit TS at or below it again. A snapshot read at T waits
	// until every registered TC's safe covers T.
	safe atomic.Uint64
	// horizon is the TC's GC watermark: no live or future snapshot of that
	// TC reads below it, so versions under the minimum horizon may be
	// reclaimed.
	horizon atomic.Uint64
	// safeCh, when non-nil, is closed under ctl the next time safe
	// advances; snapshot waiters subscribe through safeChanged.
	safeCh chan struct{}
}

// safeChanged returns a channel closed on the next advance of safe.
func (s *tcState) safeChanged() <-chan struct{} {
	s.ctl.Lock()
	defer s.ctl.Unlock()
	if s.safeCh == nil {
		s.safeCh = make(chan struct{})
	}
	return s.safeCh
}

// fenced reports whether an incoming epoch is older than the installed
// fence and must be refused.
func (s *tcState) fenced(e base.Epoch) bool { return uint64(e) < s.epoch.Load() }

// DC is one data component. It implements base.Service.
type DC struct {
	cfg    Config
	store  *storage.PageStore
	dmedia *storage.LogStore

	mu        sync.Mutex // guards state, trees, tcs, pageTable, epochRec
	state     dcState
	dlog      *wal.Log
	pool      *buffer.Pool
	trees     map[string]*btree.Tree
	pageTable map[base.PageID]string // page -> table (for reset routing)
	tcs       map[base.TCID]*tcState
	// epochRec is the dLSN of the latest KindEpochs snapshot in the DC-log
	// (zero when no epoch has ever been staged). Truncation re-appends a
	// fresh snapshot whenever it would discard this record, so the fences
	// always survive DC crashes.
	epochRec base.DLSN

	inflight *conflictTable

	// gcHorizon caches the minimum nonzero per-TC GC horizon so the write
	// path can prune versions without scanning the TC map.
	gcHorizon atomic.Uint64

	performs, dupSkips, unavailable   atomic.Uint64
	staleEpochs                       atomic.Uint64
	resetPages, restoredRecs, conVios atomic.Uint64
	snapReads, snapWaits              atomic.Uint64
	batches, batchOps, finalizes      atomic.Uint64
	drainRejects                      atomic.Uint64

	// draining is the operations-plane admission gate (see Drain in
	// admin.go): while set, Perform nacks new operations CodeUnavailable;
	// inflightOps tracks operations currently executing so Quiesced can
	// report when the drain has settled.
	draining    atomic.Bool
	inflightOps atomic.Int64
}

// New formats a DC over fresh stable media — or, with Config.Dir naming a
// directory a previous incarnation wrote, re-opens it: the stable pages
// and DC-log are loaded back and DC-log recovery rebuilds the search
// structures before the DC serves anything.
func New(cfg Config) (*DC, error) {
	if cfg.PageBytes <= 0 {
		cfg.PageBytes = 4096
	}
	d := &DC{
		cfg:       cfg,
		store:     storage.NewPageStore(),
		dmedia:    storage.NewLogStore(),
		trees:     make(map[string]*btree.Tree),
		pageTable: make(map[base.PageID]string),
		tcs:       make(map[base.TCID]*tcState),
	}
	if cfg.Dir != "" {
		var err error
		if d.store, err = storage.OpenPageStoreDir(filepath.Join(cfg.Dir, "pages")); err != nil {
			return nil, fmt.Errorf("dc %s: open page dir: %w", cfg.Name, err)
		}
		if d.dmedia, err = storage.OpenLogStoreFile(filepath.Join(cfg.Dir, "dclog")); err != nil {
			return nil, fmt.Errorf("dc %s: open dc-log: %w", cfg.Name, err)
		}
	}
	if cfg.CheckConflicts {
		d.inflight = newConflictTable()
	}
	var err error
	d.dlog, err = wal.New(d.dmedia)
	if err != nil {
		return nil, err
	}
	if d.store.Exists(catalogPageID) {
		// Re-open: a process death is a DC crash whose stable media
		// happen to be on disk, so restart runs the ordinary §5.3.2
		// recovery — replay the DC-log, reopen the trees from the catalog.
		d.state = stateDown
		if err := d.Recover(); err != nil {
			return nil, fmt.Errorf("dc %s: reopen %s: %w", cfg.Name, cfg.Dir, err)
		}
		return d, nil
	}
	d.pool = d.newPool()
	// Format: the catalog page is the first allocation. A kill on a
	// previous boot can leave a persisted allocator with no catalog page
	// (AllocPageID is durable before the catalog write lands); formatting
	// starts the world over, so the stale allocator is discarded rather
	// than bricking the directory.
	d.store.ResetForFormat()
	id := d.store.AllocPageID()
	if id != catalogPageID {
		return nil, fmt.Errorf("dc %s: catalog got page %d", cfg.Name, id)
	}
	cat := page.NewLeaf(catalogPageID)
	d.store.Write(catalogPageID, cat.Encode())
	return d, nil
}

func (d *DC) newPool() *buffer.Pool {
	return buffer.New(
		buffer.Config{Capacity: d.cfg.CacheCapacity, Strategy: d.cfg.Strategy, HybridMax: d.cfg.HybridMax},
		d.store,
		buffer.Gates{
			EOSL:       func(tc base.TCID) base.LSN { return base.LSN(d.tcState(tc).eosl.Load()) },
			LWM:        func(tc base.TCID) base.LSN { return base.LSN(d.tcState(tc).lwm.Load()) },
			ForceDCLog: func(dl base.DLSN) { d.dlog.ForceTo(base.LSN(dl)) },
		})
}

func (d *DC) tcState(tc base.TCID) *tcState {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.tcs[tc]
	if s == nil {
		s = &tcState{}
		d.tcs[tc] = s
	}
	return s
}

// poolNow returns the current buffer pool (nil while crashed). Callers
// racing with a crash may operate on a superseded pool: such work lands in
// a discarded cache, which is precisely the semantics of losing volatile
// state in the crash.
func (d *DC) poolNow() *buffer.Pool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pool
}

// AppendSMO implements dclog.Logger.
func (d *DC) AppendSMO(kind uint8, payload []byte) base.DLSN {
	return base.DLSN(d.dlog.AppendAssign(&wal.Record{Kind: kind, Payload: payload}))
}

// ForceSMO implements dclog.Logger.
func (d *DC) ForceSMO(dl base.DLSN) { d.dlog.ForceTo(base.LSN(dl)) }

// Name returns the DC's configured name.
func (d *DC) Name() string { return d.cfg.Name }

// EpochOf returns the incarnation-epoch fence currently installed for tc
// (zero until the first begin_restart is seen).
func (d *DC) EpochOf(tc base.TCID) base.Epoch {
	return base.Epoch(d.tcState(tc).epoch.Load())
}

// Pool exposes the buffer pool (experiments read its stats).
func (d *DC) Pool() *buffer.Pool { return d.pool }

// Store exposes the stable page store (experiments and invariant checks).
func (d *DC) Store() *storage.PageStore { return d.store }

// DCLog exposes the DC-log (experiments measure SMO log volume).
func (d *DC) DCLog() *wal.Log { return d.dlog }

// Tree returns the B-tree for table, or nil.
func (d *DC) Tree(table string) *btree.Tree {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.trees[table]
}

// Tables returns the table names (sorted order not guaranteed).
func (d *DC) Tables() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.trees))
	for t := range d.trees {
		out = append(out, t)
	}
	return out
}

// CreateTable durably creates an empty table (administrative operation,
// run at deployment time). Idempotent.
func (d *DC) CreateTable(table string) error {
	d.mu.Lock()
	if _, ok := d.trees[table]; ok {
		d.mu.Unlock()
		return nil
	}
	d.mu.Unlock()

	pool := d.poolNow()
	if pool == nil {
		return d.errUnavailable()
	}
	rootID := d.store.AllocPageID()
	root := page.NewLeaf(rootID)
	rec := &dclog.CreateTree{Table: table, RootID: rootID, RootImage: root.Encode()}
	dlsn := d.AppendSMO(dclog.KindCreateTree, rec.Encode())
	root.DLSN = dlsn
	pool.MarkDirty(root, 0, 0, dlsn)
	pool.Install(root)
	pool.Unpin(rootID)
	d.updateCatalog(pool, table, rootID, dlsn)
	d.ForceSMO(dlsn)

	d.mu.Lock()
	d.trees[table] = d.newTree(table, rootID, pool)
	d.pageTable[rootID] = table
	d.mu.Unlock()
	return nil
}

// newTree binds a tree to one pool incarnation; trees are rebuilt (against
// the fresh pool) by Recover after a crash.
func (d *DC) newTree(table string, root base.PageID, pool *buffer.Pool) *btree.Tree {
	return btree.New(table, root, btree.Config{MaxPageBytes: d.cfg.PageBytes},
		pool,
		func() base.PageID {
			id := d.store.AllocPageID()
			d.mu.Lock()
			d.pageTable[id] = table
			d.mu.Unlock()
			return id
		},
		d,
		func(newRoot base.PageID, dlsn base.DLSN) {
			d.mu.Lock()
			d.pageTable[newRoot] = table
			d.mu.Unlock()
			d.updateCatalog(pool, table, newRoot, dlsn)
		})
}

// updateCatalog records table -> root in the catalog page as part of the
// system transaction with the given dLSN.
func (d *DC) updateCatalog(pool *buffer.Pool, table string, root base.PageID, dlsn base.DLSN) {
	cat, err := pool.Fetch(catalogPageID)
	if err != nil || cat == nil {
		panic(fmt.Sprintf("dc %s: catalog page unavailable: %v", d.cfg.Name, err))
	}
	cat.L.Lock()
	cat.Put(page.Record{Key: table, Value: binary.AppendUvarint(nil, uint64(root))})
	if dlsn > cat.DLSN {
		cat.DLSN = dlsn
	}
	pool.MarkDirty(cat, 0, 0, dlsn)
	cat.L.Unlock()
	pool.Unpin(catalogPageID)
}

// EndOfStableLog implements base.Service (§4.2.1): all operations with
// LSN <= eosl are stable in the TC log; causality then allows the DC to
// make them stable too. Broadcasts from a fenced incarnation are dropped;
// the fence check and the advance are one critical section, so a claim
// cannot pass the check and then land after a concurrent fence raise.
func (d *DC) EndOfStableLog(tc base.TCID, epoch base.Epoch, eosl base.LSN) {
	s := d.tcState(tc)
	s.ctl.Lock()
	if s.fenced(epoch) {
		s.ctl.Unlock()
		return
	}
	if uint64(eosl) > s.eosl.Load() {
		s.eosl.Store(uint64(eosl))
	}
	s.ctl.Unlock()
	if p := d.poolNow(); p != nil {
		p.Kick()
	}
}

// SafeTS implements base.Service: the TC's closed-timestamp broadcast.
// After this call, every commit of that TC with TS <= safe is finalized at
// the DC (the finalize operations arrived through the same ordered
// resend/idempotence machinery as any write), and the TC will never assign
// a commit TS at or below safe — so a snapshot at T <= safe reads a stable
// prefix. horizon is the TC's GC watermark. Broadcasts from a fenced
// incarnation are dropped, mirroring EndOfStableLog.
func (d *DC) SafeTS(tc base.TCID, epoch base.Epoch, safe base.TS, horizon base.TS) {
	s := d.tcState(tc)
	s.ctl.Lock()
	if s.fenced(epoch) {
		s.ctl.Unlock()
		return
	}
	if uint64(safe) > s.safe.Load() {
		s.safe.Store(uint64(safe))
		if s.safeCh != nil {
			close(s.safeCh)
			s.safeCh = nil
		}
	}
	if uint64(horizon) > s.horizon.Load() {
		s.horizon.Store(uint64(horizon))
	}
	s.ctl.Unlock()
	d.refreshHorizon()
}

// refreshHorizon recomputes the cached GC horizon: the minimum nonzero
// per-TC horizon. A TC that has never broadcast one contributes no
// constraint (it also hands out no snapshots), and zero means "never
// reclaim" overall.
func (d *DC) refreshHorizon() {
	d.mu.Lock()
	var min uint64
	for _, s := range d.tcs {
		if h := s.horizon.Load(); h != 0 && (min == 0 || h < min) {
			min = h
		}
	}
	d.mu.Unlock()
	for {
		cur := d.gcHorizon.Load()
		if min <= cur || d.gcHorizon.CompareAndSwap(cur, min) {
			return
		}
	}
}

// snapshotSafeWait bounds one snapshot read's wait for the safe timestamp
// to cover its TS; on expiry the read nacks CodeUnavailable and the
// client's resend re-enters the wait.
const snapshotSafeWait = time.Second

// waitSnapshotSafe blocks until every registered TC's safe timestamp is at
// or above t. This is the lock-free read path's only synchronization: it
// never touches a lock manager, it just waits out commit finalization.
func (d *DC) waitSnapshotSafe(ctx context.Context, t base.TS) base.Code {
	var deadline *time.Timer
	for {
		var lag *tcState
		d.mu.Lock()
		for _, s := range d.tcs {
			if s.safe.Load() < uint64(t) {
				lag = s
				break
			}
		}
		d.mu.Unlock()
		if lag == nil {
			if deadline != nil {
				deadline.Stop()
			}
			return base.CodeOK
		}
		if deadline == nil {
			d.snapWaits.Add(1)
			deadline = time.NewTimer(snapshotSafeWait)
			defer deadline.Stop()
		}
		ch := lag.safeChanged()
		if lag.safe.Load() >= uint64(t) {
			continue // advanced between the scan and the subscribe
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return base.CodeCancelled
		case <-deadline.C:
			return base.CodeUnavailable
		}
	}
}

// LowWaterMark implements base.Service (§4.2.1): the TC has received
// replies for every operation with LSN <= lwm, so LSNlw on cached pages
// may advance (bounded by EOSL; see buffer and ablsn for why). Claims from
// a fenced incarnation are dropped: BeginRestart re-based the mark to zero
// precisely because the restarted TC reuses the dead incarnation's LSN
// space, and a stale in-flight claim would prune abstract LSNs into it.
// The check and the advance share ctl with BeginRestart's fence raise and
// re-base, so the stale claim either lands entirely before the raise (and
// is zeroed by the re-base) or is fenced — never in between.
func (d *DC) LowWaterMark(tc base.TCID, epoch base.Epoch, lwm base.LSN) {
	s := d.tcState(tc)
	s.ctl.Lock()
	if s.fenced(epoch) {
		s.ctl.Unlock()
		return
	}
	if uint64(lwm) > s.lwm.Load() {
		s.lwm.Store(uint64(lwm))
	}
	s.ctl.Unlock()
	if p := d.poolNow(); p != nil {
		p.Kick()
	}
}

// Checkpoint implements base.Service (§4.2.1): make stable all pages that
// contain effects of operations with LSN < newRSSP for tc, releasing the
// TC's resend obligation below newRSSP. The TC has forced its log through
// newRSSP before calling, so the causality gate is open. A checkpoint from
// a fenced incarnation is refused — releasing resend obligations based on
// a dead incarnation's view would be unrecoverable — and so is one racing
// an unfinished restart.
func (d *DC) Checkpoint(ctx context.Context, tc base.TCID, epoch base.Epoch, newRSSP base.LSN) error {
	if ctx.Err() != nil {
		return base.CancelErr(ctx)
	}
	s := d.tcState(tc)
	s.ctl.Lock()
	if s.fenced(epoch) {
		cur := s.epoch.Load()
		s.ctl.Unlock()
		return fmt.Errorf("dc %s: checkpoint for tc %d epoch %d behind fence %d: %w",
			d.cfg.Name, tc, epoch, cur, base.ErrStaleEpoch)
	}
	if s.restarting.Load() {
		s.ctl.Unlock()
		return fmt.Errorf("dc %s: checkpoint for tc %d during its restart", d.cfg.Name, tc)
	}
	s.ctl.Unlock()
	pool := d.runningPool()
	if pool == nil {
		return d.errUnavailable()
	}
	err := pool.FlushAll(true, func(pg *page.Page) bool {
		first, ok := pg.FirstDirty[tc]
		return ok && first < newRSSP
	})
	if err != nil {
		return err
	}
	// Best-effort pass over pages dirtied only by system transactions
	// (branch pages, the catalog): flushing them lets the DC-log truncate.
	// Pages gated by other TCs' log stability are skipped, bounding the
	// truncation point accordingly.
	_ = pool.FlushAll(false, func(pg *page.Page) bool {
		return pg.Dirty && len(pg.FirstDirty) == 0
	})
	d.truncateDCLog(pool)
	return nil
}

// runningPool returns the pool iff the DC is serving requests.
func (d *DC) runningPool() *buffer.Pool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != stateRunning {
		return nil
	}
	return d.pool
}

// truncateDCLog discards DC-log records whose effects are fully stable:
// everything below the minimum RecDLSN among dirty cached pages. The
// epoch-fence snapshot is not page-backed, so if truncation would discard
// the latest KindEpochs record a fresh snapshot is forced first — the
// fences must survive any crash.
func (d *DC) truncateDCLog(pool *buffer.Pool) {
	minD := d.dlog.LastLSN() + 1
	pool.Pages(func(pg *page.Page) {
		pg.L.RLock()
		if pg.Dirty && pg.RecDLSN != 0 && base.LSN(pg.RecDLSN) < minD {
			minD = base.LSN(pg.RecDLSN)
		}
		pg.L.RUnlock()
	})
	stable := d.dlog.EOSL()
	if minD > stable+1 {
		minD = stable + 1
	}
	d.mu.Lock()
	relog := d.epochRec != 0 && base.LSN(d.epochRec) < minD
	d.mu.Unlock()
	if relog {
		d.logEpochs()
	}
	d.dlog.Truncate(minD)
}

// logEpochs forces a full per-TC epoch snapshot into the DC-log. Called
// under no locks; the snapshot is taken atomically under d.mu.
func (d *DC) logEpochs() {
	d.mu.Lock()
	snap := make([]dclog.TCEpoch, 0, len(d.tcs))
	for id, s := range d.tcs {
		if e := s.epoch.Load(); e != 0 {
			snap = append(snap, dclog.TCEpoch{TC: id, Epoch: base.Epoch(e)})
		}
	}
	d.mu.Unlock()
	if len(snap) == 0 {
		return
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i].TC < snap[j].TC })
	rec := &dclog.Epochs{Epochs: snap}
	dlsn := d.AppendSMO(dclog.KindEpochs, rec.Encode())
	d.mu.Lock()
	if dlsn > d.epochRec {
		d.epochRec = dlsn
	}
	d.mu.Unlock()
	d.ForceSMO(dlsn)
}

func (d *DC) running() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state == stateRunning
}

// errUnavailable is the typed down/closed/recovering failure; the message
// embeds the sentinel's text so the wire layer can rehydrate it on the
// other side of a string-only control reply.
func (d *DC) errUnavailable() error {
	return fmt.Errorf("dc %s: %w", d.cfg.Name, base.ErrUnavailable)
}

// Close permanently shuts the DC down: it stops serving (operations nack
// CodeUnavailable, control calls fail typed) and will not recover.
// Idempotent — a second Close, or a Close after Crash, is a no-op. The DC
// has no background goroutines; Close exists so Deployment.Close can make
// "everything stopped" explicit and double-closes are safe.
func (d *DC) Close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == stateClosed {
		return
	}
	d.state = stateClosed
	d.pool = nil
}

// Stats returns a snapshot of counters.
func (d *DC) Stats() Stats {
	return Stats{
		Performs:      d.performs.Load(),
		DupSkips:      d.dupSkips.Load(),
		Unavailable:   d.unavailable.Load(),
		StaleEpochs:   d.staleEpochs.Load(),
		ResetPages:    d.resetPages.Load(),
		RestoredRecs:  d.restoredRecs.Load(),
		ConflictViols: d.conVios.Load(),
		SnapshotReads: d.snapReads.Load(),
		SnapshotWaits: d.snapWaits.Load(),
	}
}

// conflictTable is the debug checker for the §1.2 invariant: the TC never
// sends logically conflicting operations concurrently to a DC.
type conflictTable struct {
	mu  sync.Mutex
	ops map[*base.Op]struct{}
}

func newConflictTable() *conflictTable {
	return &conflictTable{ops: make(map[*base.Op]struct{})}
}

// enter registers op, reporting how many conflicting operations are
// currently in flight (excluding duplicates of op itself).
func (c *conflictTable) enter(op *base.Op) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	conflicts := 0
	for other := range c.ops {
		if other.TC == op.TC && other.LSN == op.LSN {
			continue // resend duplicate of the same request
		}
		if op.ConflictsWith(other) {
			conflicts++
		}
	}
	c.ops[op] = struct{}{}
	return conflicts
}

func (c *conflictTable) exit(op *base.Op) {
	c.mu.Lock()
	delete(c.ops, op)
	c.mu.Unlock()
}

// discardStale drops tc's entries stamped with an epoch below the fence:
// fenced operations still draining through the DC (e.g. parked on a page
// barrier) must not count as conflicts against the new incarnation. Their
// own deferred exit calls become harmless double-deletes.
func (c *conflictTable) discardStale(tc base.TCID, fence base.Epoch) {
	c.mu.Lock()
	for op := range c.ops {
		if op.TC == tc && op.Epoch < fence {
			delete(c.ops, op)
		}
	}
	c.mu.Unlock()
}
