package dc

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/btree"
	"github.com/cidr09/unbundled/internal/buffer"
	"github.com/cidr09/unbundled/internal/dclog"
	"github.com/cidr09/unbundled/internal/page"
	"github.com/cidr09/unbundled/internal/wal"
)

// Crash simulates a DC process failure: the cache and all volatile state
// (watermarks, unforced DC-log tail) vanish; stable pages and the stable
// DC-log survive. The DC answers CodeUnavailable until Recover runs.
// Crashing a closed DC leaves it closed.
func (d *DC) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == stateClosed {
		return
	}
	d.state = stateDown
	d.pool = nil
	d.trees = make(map[string]*btree.Tree)
	d.pageTable = make(map[base.PageID]string)
	d.tcs = make(map[base.TCID]*tcState)
	// Epoch fences are rebuilt from the stable DC-log (every bump is forced
	// before it takes effect, and truncation re-snapshots).
	d.epochRec = 0
	d.dlog.Crash()
	if d.inflight != nil {
		d.inflight = newConflictTable()
	}
}

// Recover rebuilds the DC after a crash: replay the stable DC-log in dLSN
// order so the search structures are well-formed *before* any TC redo
// arrives (§4.2 "Recovery", §5.2.2), then reopen the trees from the
// catalog. The TC(s) are then prompted (by the deployment layer) to resend
// operations from their redo scan start points.
func (d *DC) Recover() error {
	d.mu.Lock()
	if d.state != stateDown {
		d.mu.Unlock()
		return fmt.Errorf("dc %s: recover called while not down", d.cfg.Name)
	}
	d.state = stateRecovering
	d.mu.Unlock()

	pool := d.newPool()
	d.mu.Lock()
	d.pool = pool
	d.mu.Unlock()

	// Replay system transactions in their (stable) log order. This can
	// execute structure modifications out of their original execution
	// order relative to TC operations — exactly the §5.2.2 situation the
	// logging formats are designed for.
	for _, raw := range d.dlog.Scan(0) {
		if err := d.redoSMO(pool, raw); err != nil {
			return err
		}
	}

	// Reopen trees from the recovered catalog.
	cat, err := pool.Fetch(catalogPageID)
	if err != nil {
		return err
	}
	if cat == nil {
		return fmt.Errorf("dc %s: catalog page lost", d.cfg.Name)
	}
	trees := make(map[string]*btree.Tree)
	cat.L.RLock()
	for i := range cat.Recs {
		table := cat.Recs[i].Key
		root, n := binary.Uvarint(cat.Recs[i].Value)
		if n <= 0 {
			cat.L.RUnlock()
			pool.Unpin(catalogPageID)
			return fmt.Errorf("dc %s: corrupt catalog entry %q", d.cfg.Name, table)
		}
		trees[table] = d.newTree(table, base.PageID(root), pool)
	}
	cat.L.RUnlock()
	pool.Unpin(catalogPageID)

	// Rebuild the page -> table map by walking each tree.
	pageTable := make(map[base.PageID]string)
	for table, t := range trees {
		if err := d.walkPages(pool, t.Root(), table, pageTable); err != nil {
			return err
		}
	}

	d.mu.Lock()
	d.trees = trees
	d.pageTable = pageTable
	d.state = stateRunning
	d.mu.Unlock()
	return nil
}

func (d *DC) walkPages(pool *buffer.Pool, id base.PageID, table string, out map[base.PageID]string) error {
	pg, err := pool.Fetch(id)
	if err != nil {
		return err
	}
	if pg == nil {
		return fmt.Errorf("dc %s: table %s references missing page %d", d.cfg.Name, table, id)
	}
	out[id] = table
	if !pg.Leaf {
		children := append([]base.PageID(nil), pg.Children...)
		pool.Unpin(id)
		for _, c := range children {
			if err := d.walkPages(pool, c, table, out); err != nil {
				return err
			}
		}
		return nil
	}
	pool.Unpin(id)
	return nil
}

// redoSMO replays one DC-log record using the page dLSN tests of §5.2.2.
func (d *DC) redoSMO(pool *buffer.Pool, rec *wal.Record) error {
	dlsn := base.DLSN(rec.LSN)
	switch rec.Kind {
	case dclog.KindCreateTree:
		ct, err := dclog.DecodeCreateTree(rec.Payload)
		if err != nil {
			return err
		}
		if err := d.redoInstallImage(pool, ct.RootID, ct.RootImage, dlsn); err != nil {
			return err
		}
		d.redoCatalogPut(pool, ct.Table, ct.RootID, dlsn)
	case dclog.KindSplit:
		sp, err := dclog.DecodeSplit(rec.Payload)
		if err != nil {
			return err
		}
		return d.redoSplit(pool, sp, dlsn)
	case dclog.KindConsolidate:
		co, err := dclog.DecodeConsolidate(rec.Payload)
		if err != nil {
			return err
		}
		return d.redoConsolidate(pool, co, dlsn)
	case dclog.KindRootCollapse:
		rc, err := dclog.DecodeRootCollapse(rec.Payload)
		if err != nil {
			return err
		}
		d.redoCatalogPut(pool, rc.Table, rc.NewRootID, dlsn)
		pool.Drop(rc.OldRootID, true)
	case dclog.KindEpochs:
		eps, err := dclog.DecodeEpochs(rec.Payload)
		if err != nil {
			return err
		}
		// Reinstall the incarnation fences before any operation is served:
		// requests of pre-restart TC incarnations stay fenced across DC
		// crashes. Max semantics make replay of multiple snapshots
		// idempotent. No restart is in progress after a DC recover — if one
		// was, the TC's (resent) BeginRestart/EndRestart re-establishes it.
		for _, e := range eps.Epochs {
			s := d.tcState(e.TC)
			for {
				cur := s.epoch.Load()
				if uint64(e.Epoch) <= cur || s.epoch.CompareAndSwap(cur, uint64(e.Epoch)) {
					break
				}
			}
		}
		d.mu.Lock()
		if dlsn > d.epochRec {
			d.epochRec = dlsn
		}
		d.mu.Unlock()
	default:
		return fmt.Errorf("dc %s: unknown DC-log kind %d", d.cfg.Name, rec.Kind)
	}
	return nil
}

// redoInstallImage (re)creates a page from a logged physical image unless
// the stable version already reflects this or a later system transaction.
func (d *DC) redoInstallImage(pool *buffer.Pool, id base.PageID, image []byte, dlsn base.DLSN) error {
	existing, err := pool.Fetch(id)
	if err != nil {
		return err
	}
	if existing != nil {
		skip := existing.DLSN >= dlsn
		if skip {
			pool.Unpin(id)
			return nil
		}
		pool.Unpin(id)
	}
	pg, err := page.Decode(image)
	if err != nil {
		return err
	}
	pg.DLSN = dlsn
	pool.MarkDirty(pg, 0, 0, dlsn)
	pool.Install(pg)
	pool.Unpin(id)
	return nil
}

// redoCatalogPut applies a root-pointer update. Catalog updates are
// replayed unconditionally in dLSN order (they commute per table and the
// last write wins), because two trees' system transactions may stamp the
// shared catalog page out of dLSN order during normal execution.
func (d *DC) redoCatalogPut(pool *buffer.Pool, table string, root base.PageID, dlsn base.DLSN) {
	d.updateCatalog(pool, table, root, dlsn)
}

func (d *DC) redoSplit(pool *buffer.Pool, sp *dclog.Split, dlsn base.DLSN) error {
	// New (right) page: the log record captured its contents, including
	// its abstract LSN at the time of the split (§5.2.2(1)).
	if err := d.redoInstallImage(pool, sp.RightID, sp.RightImage, dlsn); err != nil {
		return err
	}
	// Pre-split (left) page: only the split key was logged; whatever
	// version is on stable storage, its abstract LSN remains valid
	// (§5.2.2(2)).
	left, err := pool.Fetch(sp.LeftID)
	if err != nil {
		return err
	}
	if left == nil {
		return fmt.Errorf("dc %s: split redo lost left page %d", d.cfg.Name, sp.LeftID)
	}
	left.L.Lock()
	if left.DLSN < dlsn {
		pruneForSplit(left, sp.SplitKey)
		if left.Leaf {
			left.Next = sp.RightID
		}
		left.DLSN = dlsn
		pool.MarkDirty(left, 0, 0, dlsn)
	}
	left.L.Unlock()
	pool.Unpin(sp.LeftID)

	if sp.ParentID != 0 {
		parent, err := pool.Fetch(sp.ParentID)
		if err != nil {
			return err
		}
		if parent == nil {
			return fmt.Errorf("dc %s: split redo lost parent page %d", d.cfg.Name, sp.ParentID)
		}
		parent.L.Lock()
		if parent.DLSN < dlsn {
			if ci := parent.ChildIndex(sp.LeftID); ci >= 0 && parent.ChildIndex(sp.RightID) < 0 {
				parent.InsertSep(ci, sp.SplitKey, sp.RightID)
			}
			parent.DLSN = dlsn
			pool.MarkDirty(parent, 0, 0, dlsn)
		}
		parent.L.Unlock()
		pool.Unpin(sp.ParentID)
		return nil
	}
	// Root split: fresh branch root [SplitKey; Left, Right].
	if sp.NewRootID != 0 {
		existing, err := pool.Fetch(sp.NewRootID)
		if err != nil {
			return err
		}
		if existing == nil || existing.DLSN < dlsn {
			if existing != nil {
				pool.Unpin(sp.NewRootID)
			}
			root := page.NewBranch(sp.NewRootID, []string{sp.SplitKey},
				[]base.PageID{sp.LeftID, sp.RightID})
			root.DLSN = dlsn
			pool.MarkDirty(root, 0, 0, dlsn)
			pool.Install(root)
			pool.Unpin(sp.NewRootID)
		} else {
			pool.Unpin(sp.NewRootID)
		}
		d.redoCatalogPut(pool, sp.Table, sp.NewRootID, dlsn)
	}
	return nil
}

// pruneForSplit removes the upper half that moved to the right page.
func pruneForSplit(pg *page.Page, splitKey string) {
	if pg.Leaf {
		i := sort.Search(len(pg.Recs), func(i int) bool { return pg.Recs[i].Key >= splitKey })
		pg.Recs = pg.Recs[:i:i]
		return
	}
	i := sort.Search(len(pg.Keys), func(i int) bool { return pg.Keys[i] >= splitKey })
	pg.Keys = pg.Keys[:i:i]
	pg.Children = pg.Children[: i+1 : i+1]
}

func (d *DC) redoConsolidate(pool *buffer.Pool, co *dclog.Consolidate, dlsn base.DLSN) error {
	// The consolidated page was logged physically with abLSN = max of the
	// two inputs (§5.2.2): installing the image repeats history for the
	// page delete regardless of TC-operation interleavings.
	left, err := pool.Fetch(co.LeftID)
	if err != nil {
		return err
	}
	if left == nil || left.DLSN < dlsn {
		if left != nil {
			pool.Unpin(co.LeftID)
		}
		if err := d.redoInstallImage(pool, co.LeftID, co.LeftImage, dlsn); err != nil {
			return err
		}
	} else {
		pool.Unpin(co.LeftID)
	}
	pool.Drop(co.RightID, true)
	if co.ParentID != 0 {
		parent, err := pool.Fetch(co.ParentID)
		if err != nil {
			return err
		}
		if parent == nil {
			return fmt.Errorf("dc %s: consolidate redo lost parent %d", d.cfg.Name, co.ParentID)
		}
		parent.L.Lock()
		if parent.DLSN < dlsn {
			if ci := parent.ChildIndex(co.RightID); ci > 0 {
				parent.RemoveSep(ci - 1)
			}
			parent.DLSN = dlsn
			pool.MarkDirty(parent, 0, 0, dlsn)
		}
		parent.L.Unlock()
		pool.Unpin(co.ParentID)
	}
	return nil
}

// BeginRestart implements base.Service for TC failure (§5.3.2, §6.1.2):
// the failed TC lost its log tail beyond stableLSN, so the DC must discard
// from its cache every effect of that TC's operations with higher LSNs
// (causality guarantees none reached stable storage). Only the failed TC's
// records are touched: they are replaced from the disk versions of the
// affected pages; other TCs' records survive untouched.
//
// Before anything else the restarting incarnation's epoch is installed as
// the TC's fence and forced into the DC-log: from that moment every
// request stamped by the dead incarnation is refused, and the in-latch
// re-check in write serializes the fence with this sweep — an old-epoch
// operation either lands before the sweep (and is stripped by it) or is
// fenced. Together they close the window the TC-side generation check
// cannot: a batch already on the wire when the TC died.
func (d *DC) BeginRestart(ctx context.Context, tc base.TCID, epoch base.Epoch, stableLSN base.LSN) error {
	if ctx.Err() != nil {
		return base.CancelErr(ctx)
	}
	pool := d.runningPool()
	if pool == nil {
		return d.errUnavailable()
	}
	s := d.tcState(tc)
	// The whole restart — fence install, durable record, re-base, sweep,
	// restores — is one ctl critical section: a duplicated delivery must
	// not reply (unblocking the TC's redo) while the winning delivery is
	// still sweeping, and a reordered older-epoch delivery must not regress
	// a fence a newer incarnation already installed.
	s.ctl.Lock()
	defer s.ctl.Unlock()
	cur := base.Epoch(s.epoch.Load())
	if epoch < cur {
		return fmt.Errorf("dc %s: begin-restart for tc %d epoch %d behind fence %d: %w",
			d.cfg.Name, tc, epoch, cur, base.ErrStaleEpoch)
	}
	if epoch == cur && epoch != 0 {
		// Duplicate delivery of an already-processed begin_restart (the
		// wire resends and duplicates): the reset ran once; running it
		// again after redo/undo started would strip post-restart effects.
		return nil
	}
	s.epoch.Store(uint64(epoch))
	s.restarting.Store(true)
	// Persist the fence before touching any state: once effects are swept,
	// no crash may resurrect the DC without it.
	d.logEpochs()
	// The restarted TC reuses the LSN space above stableLSN: stale
	// low-water-mark claims must not prune abstract LSNs into it. (Claims
	// still in flight from the dead incarnation are epoch-fenced, and the
	// fence raise and this re-base are atomic under ctl.)
	s.lwm.Store(0)

	type restore struct {
		table string
		rec   page.Record
	}
	var restores []restore
	pool.Pages(func(pg *page.Page) {
		pg.L.Lock()
		defer pg.L.Unlock()
		if !pg.Leaf {
			return
		}
		a := pg.Ab.Get(tc)
		if a == nil || a.MaxApplied() <= stableLSN {
			return
		}
		d.resetPages.Add(1)
		table := d.tableOf(pg.ID)
		// Strip the failed TC's records from the cached page.
		kept := pg.Recs[:0]
		for i := range pg.Recs {
			if pg.Recs[i].Owner != tc {
				kept = append(kept, pg.Recs[i])
			}
		}
		pg.Recs = kept
		// Revert the TC's abstract LSN (and record set) to the stable
		// version of this page, if any.
		data, ok := d.store.Read(pg.ID)
		if !ok {
			pg.Ab.Drop(tc)
			pg.Dirty = true
			return
		}
		diskPg, err := page.Decode(data)
		if err != nil {
			pg.Ab.Drop(tc)
			pg.Dirty = true
			return
		}
		pg.Ab.Set(tc, diskPg.Ab.Get(tc))
		for i := range diskPg.Recs {
			if diskPg.Recs[i].Owner == tc {
				restores = append(restores, restore{table: table, rec: diskPg.Recs[i]})
			}
		}
		pg.Dirty = true
	})

	// Reinsert the stable records through current routing: intervening
	// structure modifications may have moved a key's home page.
	for _, r := range restores {
		tree := d.Tree(r.table)
		if tree == nil {
			continue
		}
		rec := r.rec
		_, _, err := tree.Apply(rec.Key, func(leaf *page.Page) bool {
			if leaf.Get(rec.Key) == nil {
				leaf.Put(rec)
				d.restoredRecs.Add(1)
				// FirstDirty = 1: conservatively ancient, so the next
				// checkpoint flushes this page before advancing the RSSP.
				pool.MarkDirty(leaf, tc, 1, 0)
			}
			return false
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// EndRestart implements base.Service: restart processing for tc is
// complete. The staged epoch is atomically activated — normal processing
// (checkpoints included) resumes for the new incarnation — and whatever
// the prior incarnation still has queued inside the DC is discarded: its
// conflict-table entries are purged (fenced operations parked on page
// barriers otherwise count as conflicts against the new incarnation's
// operations). A late EndRestart from a dead incarnation is refused.
func (d *DC) EndRestart(ctx context.Context, tc base.TCID, epoch base.Epoch) error {
	if ctx.Err() != nil {
		return base.CancelErr(ctx)
	}
	if !d.running() {
		return d.errUnavailable()
	}
	s := d.tcState(tc)
	// Validation and activation are one ctl critical section: a dead
	// incarnation's late end_restart racing a newer begin_restart must not
	// load the old fence, pass the check, and then clear the newer
	// restart's in-progress state.
	s.ctl.Lock()
	defer s.ctl.Unlock()
	cur := base.Epoch(s.epoch.Load())
	if epoch < cur {
		return fmt.Errorf("dc %s: end-restart for tc %d epoch %d behind fence %d: %w",
			d.cfg.Name, tc, epoch, cur, base.ErrStaleEpoch)
	}
	s.restarting.Store(false)
	if d.inflight != nil {
		d.inflight.discardStale(tc, cur)
	}
	return nil
}

func (d *DC) tableOf(id base.PageID) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pageTable[id]
}
