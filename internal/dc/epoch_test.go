package dc

import (
	"context"
	"fmt"
	"testing"

	"github.com/cidr09/unbundled/internal/base"
)

// TestEpochFenceRejectsPreRestartOps is the core DC-side guarantee: after
// begin_restart installs incarnation epoch 2, every request still stamped
// by incarnation 1 (or unstamped) is refused with the permanent
// CodeStaleEpoch nack and leaves no trace in the abstract-LSN tables.
func TestEpochFenceRejectsPreRestartOps(t *testing.T) {
	d := newDC(t, Config{})
	h := newOpHelper(d, 1)
	h.epoch = 1
	h.insert("a", "stable")
	h.ack()
	if err := d.Checkpoint(context.Background(), 1, 1, 2); err != nil {
		t.Fatal(err)
	}

	// The TC crashes with stable log end 1 and restarts as incarnation 2.
	if err := d.BeginRestart(context.Background(), 1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.EndRestart(context.Background(), 1, 2); err != nil {
		t.Fatal(err)
	}

	// A batch of the dead incarnation arrives late: every op is refused,
	// nothing executes, nothing lands in the idempotence tables.
	late := []*base.Op{
		{TC: 1, Epoch: 1, LSN: 2, Kind: base.OpInsert, Table: "t", Key: "ghost", Value: []byte("x")},
		{TC: 1, Epoch: 1, LSN: 3, Kind: base.OpUpdate, Table: "t", Key: "a", Value: []byte("scribble")},
	}
	for i, r := range d.PerformBatch(context.Background(), late) {
		if r.Code != base.CodeStaleEpoch {
			t.Fatalf("late op %d not fenced: %+v", i, r)
		}
	}
	if got := d.Stats().StaleEpochs; got != 2 {
		t.Fatalf("stale-epoch stat = %d, want 2", got)
	}
	// An old-epoch read is fenced too — a dead incarnation gets nothing.
	stale := d.Perform(context.Background(), &base.Op{TC: 1, Epoch: 1, Kind: base.OpRead, Table: "t", Key: "a"})
	if stale.Code != base.CodeStaleEpoch {
		t.Fatalf("stale read not fenced: %+v", stale)
	}

	// The new incarnation reuses LSN 2: it must execute fresh (the fenced
	// insert above must not have claimed the LSN) and read back cleanly.
	h.epoch = 2
	h.next = 2
	if r := h.insert("fresh", "v2"); r.Code != base.CodeOK || r.Applied {
		t.Fatalf("reused LSN not clean: %+v", r)
	}
	if r := h.read("ghost"); r.Found {
		t.Fatalf("fenced insert executed: %+v", r)
	}
	if r := h.read("a"); !r.Found || string(r.Value) != "stable" {
		t.Fatalf("fenced update executed: %+v", r)
	}
}

// TestEpochFenceDurableAcrossDCCrash: the fence is recorded in the DC-log
// and forced before the restart reset touches anything, so a DC crash and
// recovery cannot resurrect acceptance of a dead incarnation's requests.
func TestEpochFenceDurableAcrossDCCrash(t *testing.T) {
	d := newDC(t, Config{})
	h := newOpHelper(d, 1)
	h.epoch = 1
	h.insert("a", "v")
	h.ack()
	if err := d.BeginRestart(context.Background(), 1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.EndRestart(context.Background(), 1, 2); err != nil {
		t.Fatal(err)
	}

	d.Crash()
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := d.EpochOf(1); got != 2 {
		t.Fatalf("fence lost in DC crash: epoch = %d, want 2", got)
	}
	r := d.Perform(context.Background(), &base.Op{TC: 1, Epoch: 1, LSN: 9, Kind: base.OpInsert,
		Table: "t", Key: "ghost", Value: []byte("x")})
	if r.Code != base.CodeStaleEpoch {
		t.Fatalf("dead incarnation accepted after DC recovery: %+v", r)
	}
}

// TestEpochFenceSurvivesDCLogTruncation: a checkpoint can truncate the
// DC-log past the epoch snapshot; truncation must re-log the snapshot
// first so a later crash still recovers the fence.
func TestEpochFenceSurvivesDCLogTruncation(t *testing.T) {
	d := newDC(t, Config{PageBytes: 256})
	h := newOpHelper(d, 1)
	h.epoch = 1
	h.insert("a", "v")
	h.ack()
	if err := d.BeginRestart(context.Background(), 1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.EndRestart(context.Background(), 1, 2); err != nil {
		t.Fatal(err)
	}
	// New incarnation fills pages (forcing splits into the DC-log), then
	// checkpoints everything: the log truncates past the epoch record.
	h.epoch = 2
	for i := 0; i < 100; i++ {
		h.insert(fmt.Sprintf("key%04d", i), "v")
	}
	h.ack()
	if err := d.Checkpoint(context.Background(), 1, 2, h.next); err != nil {
		t.Fatal(err)
	}

	d.Crash()
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := d.EpochOf(1); got != 2 {
		t.Fatalf("fence lost to DC-log truncation: epoch = %d, want 2", got)
	}
}

// TestRestartControlEpochValidation covers the control-plane half of the
// fence: stale begin/end restarts and checkpoints are refused, duplicate
// begin_restarts do not repeat the reset, and end_restart re-admits
// checkpoints for the new incarnation only.
func TestRestartControlEpochValidation(t *testing.T) {
	d := newDC(t, Config{})
	h := newOpHelper(d, 1)
	h.epoch = 1
	h.insert("a", "v")
	h.ack()
	if err := d.Checkpoint(context.Background(), 1, 1, 2); err != nil {
		t.Fatal(err)
	}
	h.update("a", "lost") // unstable tail op

	if err := d.BeginRestart(context.Background(), 1, 3, 1); err != nil {
		t.Fatal(err)
	}
	resets := d.Stats().ResetPages
	if resets == 0 {
		t.Fatal("restart reset did not run")
	}

	// Mid-restart: checkpoints are refused — stale ones permanently, the
	// new incarnation's until end_restart activates it.
	if err := d.Checkpoint(context.Background(), 1, 1, 5); !base.IsStaleEpoch(err) {
		t.Fatalf("stale checkpoint: %v", err)
	}
	if err := d.Checkpoint(context.Background(), 1, 3, 5); err == nil || base.IsStaleEpoch(err) {
		t.Fatalf("mid-restart checkpoint: %v", err)
	}

	// Late control calls of the dead incarnation are refused.
	if err := d.BeginRestart(context.Background(), 1, 2, 1); !base.IsStaleEpoch(err) {
		t.Fatalf("stale begin-restart: %v", err)
	}
	if err := d.EndRestart(context.Background(), 1, 2); !base.IsStaleEpoch(err) {
		t.Fatalf("stale end-restart: %v", err)
	}

	// A duplicate delivery of the current begin_restart must not repeat
	// the reset (redo may already have begun).
	if err := d.BeginRestart(context.Background(), 1, 3, 1); err != nil {
		t.Fatalf("duplicate begin-restart: %v", err)
	}
	if got := d.Stats().ResetPages; got != resets {
		t.Fatalf("duplicate begin-restart repeated the reset: %d -> %d", resets, got)
	}

	// Activation: checkpoints for the new incarnation work again.
	if err := d.EndRestart(context.Background(), 1, 3); err != nil {
		t.Fatal(err)
	}
	h.epoch = 3
	h.ack()
	if err := d.Checkpoint(context.Background(), 1, 3, 2); err != nil {
		t.Fatal(err)
	}
}

// TestStaleWatermarksIgnoredAfterRestart: a dead incarnation's fire-and-
// forget watermark broadcasts still in flight must not re-poison the
// low-water mark that begin_restart re-based (the restarted TC reuses the
// LSN space the stale claim covers).
func TestStaleWatermarksIgnoredAfterRestart(t *testing.T) {
	d := newDC(t, Config{})
	h := newOpHelper(d, 1)
	h.epoch = 1
	h.insert("a", "v")
	d.EndOfStableLog(1, 1, 1)
	d.LowWaterMark(1, 1, 1)
	if err := d.BeginRestart(context.Background(), 1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if got := d.tcState(1).lwm.Load(); got != 0 {
		t.Fatalf("restart did not re-base the LWM: %d", got)
	}
	// Stale claim from the dead incarnation: dropped.
	d.LowWaterMark(1, 1, 9)
	if got := d.tcState(1).lwm.Load(); got != 0 {
		t.Fatalf("stale LWM claim accepted: %d", got)
	}
	// The new incarnation's claim lands.
	d.LowWaterMark(1, 2, 1)
	if got := d.tcState(1).lwm.Load(); got != 1 {
		t.Fatalf("new incarnation LWM dropped: %d", got)
	}
}
