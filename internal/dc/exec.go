package dc

import (
	"bytes"
	"context"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/btree"
	"github.com/cidr09/unbundled/internal/buffer"
	"github.com/cidr09/unbundled/internal/page"
)

// Perform implements base.Service: execute one logical operation exactly
// once. The DC does not know which user transaction the operation belongs
// to, nor whether it is forward activity or an inverse applied during
// rollback (§4.2.1). A context that is already done is refused up front
// (CodeCancelled); an operation that starts executing completes.
func (d *DC) Perform(ctx context.Context, op *base.Op) *base.Result {
	if ctx.Err() != nil {
		return &base.Result{LSN: op.LSN, Code: base.CodeCancelled}
	}
	if !d.running() {
		d.unavailable.Add(1)
		return &base.Result{LSN: op.LSN, Code: base.CodeUnavailable}
	}
	// Incarnation fence: an operation stamped by an epoch older than the
	// TC's last begin_restart was issued by a dead incarnation. It must
	// never execute — its log record died with the unforced tail, and its
	// LSN is being reused — so the nack is permanent (no resend).
	ts := d.tcState(op.TC)
	if ts.fenced(op.Epoch) {
		d.staleEpochs.Add(1)
		return &base.Result{LSN: op.LSN, Code: base.CodeStaleEpoch}
	}
	if d.draining.Load() {
		// Operations-plane admission gate (see Drain in admin.go): nack
		// transient, the TC's resend discipline waits the drain out.
		d.drainRejects.Add(1)
		return &base.Result{LSN: op.LSN, Code: base.CodeUnavailable}
	}
	d.performs.Add(1)
	d.inflightOps.Add(1)
	defer d.inflightOps.Add(-1)
	if d.inflight != nil {
		if n := d.inflight.enter(op); n > 0 {
			d.conVios.Add(uint64(n))
		}
		defer d.inflight.exit(op)
	}
	tree := d.Tree(op.Table)
	if tree == nil {
		return &base.Result{LSN: op.LSN, Code: base.CodeBadRequest}
	}
	if op.Flavor == base.ReadSnapshot && op.TS != 0 &&
		(op.Kind == base.OpRead || op.Kind == base.OpRangeRead) {
		// Snapshot read at T: wait until every TC's safe timestamp covers T
		// — all commits <= T are finalized here and no new commit can land
		// under T — then read timestamp-consistent versions lock-free.
		if code := d.waitSnapshotSafe(ctx, op.TS); code != base.CodeOK {
			if code == base.CodeUnavailable {
				d.unavailable.Add(1)
			}
			return &base.Result{LSN: op.LSN, Code: code}
		}
		d.snapReads.Add(1)
	}
	switch op.Kind {
	case base.OpRead:
		return d.read(tree, op)
	case base.OpScanProbe:
		return d.scanProbe(tree, op)
	case base.OpRangeRead:
		return d.rangeRead(tree, op)
	case base.OpInsert, base.OpUpdate, base.OpDelete, base.OpUpsert,
		base.OpCommitVersions, base.OpAbortVersions:
		pool := d.poolNow()
		if pool == nil {
			return &base.Result{LSN: op.LSN, Code: base.CodeUnavailable}
		}
		res := d.write(pool, tree, ts, op)
		if res.Code == base.CodeOK &&
			(op.Kind == base.OpCommitVersions || op.Kind == base.OpAbortVersions) {
			d.finalizes.Add(1)
		}
		return res
	default:
		return &base.Result{LSN: op.LSN, Code: base.CodeBadRequest}
	}
}

// PerformBatch implements base.Service: execute a batch of operations
// sequentially in arrival order. Sequential execution is what makes the
// pipelined shipping protocol sound: two operations of one transaction on
// the same key arrive in one ordered stream per DC, so the DC never
// reorders them (the cross-transaction case is excluded by the TC's
// locks). Idempotence stays per-operation — a resent batch re-runs each
// operation through the abstract-LSN test individually.
func (d *DC) PerformBatch(ctx context.Context, ops []*base.Op) []*base.Result {
	d.batches.Add(1)
	d.batchOps.Add(uint64(len(ops)))
	out := make([]*base.Result, len(ops))
	for i, op := range ops {
		out[i] = d.Perform(ctx, op)
	}
	return out
}

// read executes a point read. Reads do not mutate state and are not
// tracked in abstract LSNs; resends simply re-execute.
func (d *DC) read(tree *btree.Tree, op *base.Op) *base.Result {
	res := &base.Result{LSN: op.LSN, Code: base.CodeOK}
	err := tree.View(op.Key, func(leaf *page.Page) {
		if rec := leaf.Get(op.Key); rec != nil {
			if v, ok := recVersion(rec, op); ok {
				res.Found = true
				res.Value = append([]byte(nil), v...)
			}
		}
	})
	if err != nil {
		return &base.Result{LSN: op.LSN, Code: base.CodeBadRequest}
	}
	if !res.Found {
		res.Code = base.CodeNotFound
	}
	return res
}

// scanProbe is the speculative probe of the fetch-ahead protocol (§3.1):
// return the keys of the next records at or after op.Key so the TC can
// lock them before issuing the real read.
func (d *DC) scanProbe(tree *btree.Tree, op *base.Op) *base.Result {
	res := &base.Result{LSN: op.LSN, Code: base.CodeOK}
	limit := int(op.Limit)
	if limit <= 0 {
		limit = 16
	}
	err := tree.Scan(op.Key, func(leaf *page.Page) bool {
		stopped := leaf.Ascend(op.Key, op.EndKey, func(r *page.Record) bool {
			res.Keys = append(res.Keys, r.Key)
			return len(res.Keys) < limit
		})
		return !stopped
	})
	if err != nil {
		return &base.Result{LSN: op.LSN, Code: base.CodeBadRequest}
	}
	return res
}

// rangeRead returns visible records with op.Key <= k < op.EndKey.
func (d *DC) rangeRead(tree *btree.Tree, op *base.Op) *base.Result {
	res := &base.Result{LSN: op.LSN, Code: base.CodeOK}
	limit := int(op.Limit)
	if limit <= 0 {
		limit = 1 << 30
	}
	err := tree.Scan(op.Key, func(leaf *page.Page) bool {
		stopped := leaf.Ascend(op.Key, op.EndKey, func(r *page.Record) bool {
			if v, ok := recVersion(r, op); ok {
				res.Keys = append(res.Keys, r.Key)
				res.Values = append(res.Values, append([]byte(nil), v...))
			}
			return len(res.Keys) < limit
		})
		return !stopped
	})
	if err != nil {
		return &base.Result{LSN: op.LSN, Code: base.CodeBadRequest}
	}
	return res
}

// recVersion resolves the version of rec visible to op: timestamped
// resolution for snapshot reads, flavor resolution otherwise.
func recVersion(rec *page.Record, op *base.Op) ([]byte, bool) {
	if op.Flavor == base.ReadSnapshot && op.TS != 0 {
		return rec.VersionAt(op.TS)
	}
	return rec.ReadVersion(op.Flavor)
}

// write executes a mutating operation with the abstract-LSN idempotence
// test of §5.1.2: if the page already contains the operation's effects the
// DC skips re-execution and acknowledges.
func (d *DC) write(pool *buffer.Pool, tree *btree.Tree, ts *tcState, op *base.Op) *base.Result {
	for {
		var res *base.Result
		leafID, blocked, err := tree.Apply(op.Key, func(leaf *page.Page) bool {
			// Re-test the incarnation fence under the leaf latch: the
			// restart sweep latches every page, so a write serializes with
			// it — applied before the sweep it is stripped by the reset,
			// latched after it is fenced here. The entry check alone would
			// leave a window where an old-epoch write lands on an
			// already-swept page.
			if ts.fenced(op.Epoch) {
				d.staleEpochs.Add(1)
				res = &base.Result{LSN: op.LSN, Code: base.CodeStaleEpoch}
				return false
			}
			if leaf.Ab.Contains(op.TC, op.LSN) {
				d.dupSkips.Add(1)
				res = &base.Result{LSN: op.LSN, Code: base.CodeOK, Applied: true}
				return false
			}
			if pool.BarrierBlocked(leaf, op.TC, op.LSN) {
				return true // §5.1.2 strategy 1: wait out the page sync
			}
			res = applyWrite(leaf, op, base.TS(d.gcHorizon.Load()))
			if res.Code == base.CodeOK {
				leaf.Ab.Ensure(op.TC).Add(op.LSN)
				pool.MarkDirty(leaf, op.TC, op.LSN, 0)
			}
			return false
		})
		if err != nil {
			return &base.Result{LSN: op.LSN, Code: base.CodeBadRequest}
		}
		if blocked {
			pool.BarrierWait(leafID)
			continue
		}
		return res
	}
}

// applyWrite mutates the latched leaf according to op. Failed operations
// (duplicate insert, update/delete of a missing key) change nothing and
// are deliberately not recorded in the abstract LSN: re-execution is
// deterministic because redo repeats history in operation order.
//
// Versioned writes zero the record's commit TS (the in-flight version is
// uncommitted) and park the previous version's TS in BeforeTS; the commit
// finalize re-stamps it. Unversioned writes clear the timestamp group —
// they do not maintain snapshot history.
func applyWrite(leaf *page.Page, op *base.Op, horizon base.TS) *base.Result {
	res := &base.Result{LSN: op.LSN, Code: base.CodeOK}
	rec := leaf.Get(op.Key)
	switch op.Kind {
	case base.OpInsert:
		if rec != nil {
			if _, visible := rec.ReadVersion(base.ReadDirty); visible {
				// Restore tolerance: re-applying an insert whose record
				// already holds this exact value (same owner) converges
				// idempotently; see DESIGN.md on partial-failure restore.
				if rec.Owner == op.TC && bytes.Equal(rec.Value, op.Value) && !rec.HasBefore() {
					return res
				}
				res.Code = base.CodeDuplicate
				return res
			}
			// Tombstoned slot: fall through and overwrite.
		}
		nr := page.Record{Key: op.Key, Owner: op.TC, Value: cloneBytes(op.Value)}
		if op.Versioned {
			// §6.2.2: "To provide an earlier version for inserts, one can
			// insert two versions, a before null version followed by the
			// intended insert."
			nr.Flags = page.FlagHasBefore | page.FlagBeforeNull
			if rec != nil && !rec.HasBefore() {
				// Re-insert over a committed, timestamped tombstone: carry
				// the deletion's TS and the retained history, so snapshots
				// below the re-insert keep resolving.
				nr.BeforeTS = rec.TS
				nr.Hist = rec.Hist
			}
		}
		leaf.Put(nr)
	case base.OpUpdate:
		if rec == nil {
			res.Code = base.CodeNotFound
			return res
		}
		if _, visible := rec.ReadVersion(base.ReadDirty); !visible {
			res.Code = base.CodeNotFound
			return res
		}
		res.Prior = cloneBytes(rec.Value)
		res.PriorKnown, res.PriorFound = true, true
		if op.Versioned {
			if !rec.HasBefore() {
				rec.Before = rec.Value
				rec.BeforeTS = rec.TS
				rec.Flags |= page.FlagHasBefore
			}
			rec.TS = 0
		} else {
			rec.TS, rec.BeforeTS, rec.Hist = 0, 0, nil
		}
		rec.Value = cloneBytes(op.Value)
		rec.Flags &^= page.FlagTombstone
		rec.Owner = op.TC
	case base.OpUpsert:
		if rec == nil {
			nr := page.Record{Key: op.Key, Owner: op.TC, Value: cloneBytes(op.Value)}
			if op.Versioned {
				nr.Flags = page.FlagHasBefore | page.FlagBeforeNull
			}
			leaf.Put(nr)
			res.PriorKnown = true
			return res
		}
		res.Prior = cloneBytes(rec.Value)
		res.PriorKnown = true
		_, res.PriorFound = rec.ReadVersion(base.ReadDirty)
		if op.Versioned {
			if !rec.HasBefore() {
				rec.Before = rec.Value
				rec.BeforeTS = rec.TS
				rec.Flags |= page.FlagHasBefore
				if rec.Tombstone() {
					// Upsert over a committed tombstone is an insert: the
					// before version is the null version at the deletion's TS.
					rec.Before = nil
					rec.Flags |= page.FlagBeforeNull
				}
			}
			rec.TS = 0
		} else {
			rec.TS, rec.BeforeTS, rec.Hist = 0, 0, nil
		}
		rec.Value = cloneBytes(op.Value)
		rec.Flags &^= page.FlagTombstone
		rec.Owner = op.TC
	case base.OpDelete:
		if rec == nil {
			res.Code = base.CodeNotFound
			return res
		}
		if _, visible := rec.ReadVersion(base.ReadDirty); !visible {
			res.Code = base.CodeNotFound
			return res
		}
		res.Prior = cloneBytes(rec.Value)
		res.PriorKnown, res.PriorFound = true, true
		if op.Versioned {
			// Versioned delete: tombstone the latest version, retain the
			// before version for read-committed readers (§6.2.2).
			if !rec.HasBefore() {
				rec.Before = rec.Value
				rec.BeforeTS = rec.TS
				rec.Flags |= page.FlagHasBefore
			}
			rec.Value = nil
			rec.TS = 0
			rec.Flags |= page.FlagTombstone
			rec.Owner = op.TC
		} else {
			leaf.Remove(op.Key)
		}
	case base.OpCommitVersions:
		// Finalize the versioned write (§6.2.2). With a commit TS the before
		// version moves into history for snapshot readers; without one the
		// legacy discard applies. Missing records and already finalized
		// records are no-ops: commits are resent and replayed.
		if rec != nil {
			if rec.CommitVersionAt(op.TS, horizon) {
				leaf.Remove(op.Key)
			}
		}
	case base.OpAbortVersions:
		// Remove the latest version updated by the transaction (§6.2.2).
		if rec != nil {
			if rec.AbortVersion() {
				leaf.Remove(op.Key)
			}
		}
	default:
		res.Code = base.CodeBadRequest
	}
	return res
}

func cloneBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	return append([]byte(nil), b...)
}
