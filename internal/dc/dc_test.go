package dc

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/buffer"
)

func newDC(t *testing.T, cfg Config) *DC {
	t.Helper()
	if cfg.Name == "" {
		cfg.Name = "test-dc"
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	return d
}

// opHelper issues operations with an incrementing LSN for one TC and
// mirrors the TC's watermark duties. epoch is the incarnation stamp
// (zero until a test simulates a TC restart).
type opHelper struct {
	d     *DC
	tc    base.TCID
	epoch base.Epoch
	next  base.LSN
	// ops issued so far, for replay in recovery tests.
	issued []*base.Op
}

func newOpHelper(d *DC, tc base.TCID) *opHelper {
	return &opHelper{d: d, tc: tc, next: 1}
}

func (h *opHelper) do(kind base.OpKind, key string, val []byte, versioned bool) *base.Result {
	op := &base.Op{TC: h.tc, Epoch: h.epoch, LSN: h.next, Kind: kind, Table: "t", Key: key,
		Value: val, Versioned: versioned}
	h.next++
	h.issued = append(h.issued, op)
	return h.d.Perform(context.Background(), op)
}

func (h *opHelper) insert(key, val string) *base.Result {
	return h.do(base.OpInsert, key, []byte(val), false)
}
func (h *opHelper) update(key, val string) *base.Result {
	return h.do(base.OpUpdate, key, []byte(val), false)
}
func (h *opHelper) del(key string) *base.Result { return h.do(base.OpDelete, key, nil, false) }
func (h *opHelper) read(key string) *base.Result {
	return h.d.Perform(context.Background(), &base.Op{TC: h.tc, Epoch: h.epoch, LSN: 0, Kind: base.OpRead, Table: "t", Key: key})
}

// ack tells the DC everything issued so far is stable and acknowledged.
func (h *opHelper) ack() {
	h.d.EndOfStableLog(h.tc, h.epoch, h.next-1)
	h.d.LowWaterMark(h.tc, h.epoch, h.next-1)
}

func TestBasicCRUD(t *testing.T) {
	d := newDC(t, Config{})
	h := newOpHelper(d, 1)
	if res := h.insert("a", "1"); res.Code != base.CodeOK {
		t.Fatalf("insert: %+v", res)
	}
	if res := h.read("a"); !res.Found || string(res.Value) != "1" {
		t.Fatalf("read: %+v", res)
	}
	if res := h.insert("a", "2"); res.Code != base.CodeDuplicate {
		t.Fatalf("dup insert: %+v", res)
	}
	if res := h.update("a", "2"); res.Code != base.CodeOK || string(res.Prior) != "1" || !res.PriorKnown {
		t.Fatalf("update: %+v", res)
	}
	if res := h.update("missing", "x"); res.Code != base.CodeNotFound {
		t.Fatalf("update missing: %+v", res)
	}
	if res := h.del("a"); res.Code != base.CodeOK || string(res.Prior) != "2" {
		t.Fatalf("delete: %+v", res)
	}
	if res := h.read("a"); res.Code != base.CodeNotFound {
		t.Fatalf("read after delete: %+v", res)
	}
	if res := h.del("a"); res.Code != base.CodeNotFound {
		t.Fatalf("double delete: %+v", res)
	}
}

func TestResendIdempotence(t *testing.T) {
	d := newDC(t, Config{})
	h := newOpHelper(d, 1)
	res := h.insert("k", "v")
	if res.Code != base.CodeOK || res.Applied {
		t.Fatalf("first: %+v", res)
	}
	// Resend with the same request ID: recognized, skipped, acknowledged.
	op := h.issued[len(h.issued)-1]
	res2 := d.Perform(context.Background(), op)
	if res2.Code != base.CodeOK || !res2.Applied {
		t.Fatalf("resend: %+v", res2)
	}
	if d.Stats().DupSkips != 1 {
		t.Fatalf("stats: %+v", d.Stats())
	}
	// The update resend must not re-apply either.
	up := &base.Op{TC: 1, LSN: h.next, Kind: base.OpUpdate, Table: "t", Key: "k", Value: []byte("v2")}
	h.next++
	if r := d.Perform(context.Background(), up); r.Code != base.CodeOK || string(r.Prior) != "v" {
		t.Fatalf("update: %+v", r)
	}
	if r := d.Perform(context.Background(), up); !r.Applied {
		t.Fatalf("update resend not skipped: %+v", r)
	}
	if r := h.read("k"); string(r.Value) != "v2" {
		t.Fatalf("final value: %+v", r)
	}
}

func TestOutOfOrderArrival(t *testing.T) {
	// §5.1: a later operation (higher LSN) reaches the page before an
	// earlier one. Both must apply; neither may be misclassified.
	d := newDC(t, Config{})
	late := &base.Op{TC: 1, LSN: 7, Kind: base.OpInsert, Table: "t", Key: "b", Value: []byte("late")}
	early := &base.Op{TC: 1, LSN: 3, Kind: base.OpInsert, Table: "t", Key: "a", Value: []byte("early")}
	if r := d.Perform(context.Background(), late); r.Code != base.CodeOK {
		t.Fatalf("late: %+v", r)
	}
	// The traditional page-LSN test would now claim LSN 3 applied.
	if r := d.Perform(context.Background(), early); r.Code != base.CodeOK || r.Applied {
		t.Fatalf("early treated as applied: %+v", r)
	}
	// Resends of both are recognized.
	if r := d.Perform(context.Background(), late); !r.Applied {
		t.Fatalf("late resend: %+v", r)
	}
	if r := d.Perform(context.Background(), early); !r.Applied {
		t.Fatalf("early resend: %+v", r)
	}
}

func TestVersionedSharing(t *testing.T) {
	// §6.2.2: TC 1 updates its partition with versioning; TC 2 reads
	// committed data without blocking and without 2PC.
	d := newDC(t, Config{})
	h := newOpHelper(d, 1)
	h.do(base.OpInsert, "user1", []byte("profile-v1"), true)
	h.do(base.OpCommitVersions, "user1", nil, false)

	rc := func() *base.Result {
		return d.Perform(context.Background(), &base.Op{TC: 2, Kind: base.OpRead, Table: "t", Key: "user1",
			Flavor: base.ReadCommitted})
	}
	if r := rc(); !r.Found || string(r.Value) != "profile-v1" {
		t.Fatalf("committed read: %+v", r)
	}
	// Uncommitted update: committed readers still see v1; dirty sees v2.
	h.do(base.OpUpdate, "user1", []byte("profile-v2"), true)
	if r := rc(); !r.Found || string(r.Value) != "profile-v1" {
		t.Fatalf("committed read during update: %+v", r)
	}
	dirty := d.Perform(context.Background(), &base.Op{TC: 2, Kind: base.OpRead, Table: "t", Key: "user1",
		Flavor: base.ReadDirty})
	if !dirty.Found || string(dirty.Value) != "profile-v2" {
		t.Fatalf("dirty read: %+v", dirty)
	}
	// Abort: v2 vanishes.
	h.do(base.OpAbortVersions, "user1", nil, false)
	if r := rc(); string(r.Value) != "profile-v1" {
		t.Fatalf("after abort: %+v", r)
	}
	// New update committed: readers switch to v3.
	h.do(base.OpUpdate, "user1", []byte("profile-v3"), true)
	h.do(base.OpCommitVersions, "user1", nil, false)
	if r := rc(); string(r.Value) != "profile-v3" {
		t.Fatalf("after commit: %+v", r)
	}
	// Versioned delete: committed readers see the before version until
	// commit, nothing after.
	h.do(base.OpDelete, "user1", nil, true)
	if r := rc(); !r.Found || string(r.Value) != "profile-v3" {
		t.Fatalf("committed read during delete: %+v", r)
	}
	h.do(base.OpCommitVersions, "user1", nil, false)
	if r := rc(); r.Found {
		t.Fatalf("after committed delete: %+v", r)
	}
}

func TestVersionedInsertAbortRemoves(t *testing.T) {
	d := newDC(t, Config{})
	h := newOpHelper(d, 1)
	h.do(base.OpInsert, "x", []byte("v"), true)
	h.do(base.OpAbortVersions, "x", nil, false)
	if r := h.read("x"); r.Found {
		t.Fatalf("aborted insert persisted: %+v", r)
	}
}

func TestScanProbeAndRangeRead(t *testing.T) {
	d := newDC(t, Config{PageBytes: 256})
	h := newOpHelper(d, 1)
	for i := 0; i < 50; i++ {
		h.insert(fmt.Sprintf("k%03d", i), "v")
	}
	probe := d.Perform(context.Background(), &base.Op{TC: 1, Kind: base.OpScanProbe, Table: "t", Key: "k010", Limit: 5})
	if len(probe.Keys) != 5 || probe.Keys[0] != "k010" || probe.Keys[4] != "k014" {
		t.Fatalf("probe: %v", probe.Keys)
	}
	rr := d.Perform(context.Background(), &base.Op{TC: 1, Kind: base.OpRangeRead, Table: "t", Key: "k010", EndKey: "k015"})
	if len(rr.Keys) != 5 || len(rr.Values) != 5 {
		t.Fatalf("range: %v", rr.Keys)
	}
}

func TestDCCrashRecoveryWithSplits(t *testing.T) {
	// Build a tree big enough to split many times, checkpoint part of it,
	// crash, recover, then replay the op stream as the TC would. All data
	// must survive and the structure must be well-formed before redo.
	d := newDC(t, Config{PageBytes: 256})
	h := newOpHelper(d, 1)
	const n = 300
	for i := 0; i < n; i++ {
		if r := h.insert(fmt.Sprintf("key%05d", i), fmt.Sprintf("v%d", i)); r.Code != base.CodeOK {
			t.Fatalf("insert %d: %+v", i, r)
		}
	}
	h.ack()
	// Checkpoint half the LSN space: pages with earlier ops are forced.
	mid := base.LSN(n / 2)
	if err := d.Checkpoint(context.Background(), 1, 0, mid); err != nil {
		t.Fatal(err)
	}

	d.Crash()
	// While down: unavailable.
	if r := d.Perform(context.Background(), &base.Op{TC: 1, LSN: 9999, Kind: base.OpRead, Table: "t", Key: "key00000"}); r.Code != base.CodeUnavailable {
		t.Fatalf("down DC answered: %+v", r)
	}
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	// The search structure must be well-formed immediately after DC-log
	// recovery, before any TC redo (§4.2 Recovery).
	if err := d.Tree("t").CheckInvariants(); err != nil {
		t.Fatalf("structure not well-formed before redo: %v", err)
	}

	// TC redo: resend everything from the redo scan start point (we use 0
	// = everything; abstract LSNs skip what survived).
	for _, op := range h.issued {
		if r := d.Perform(context.Background(), op); r.Code != base.CodeOK {
			t.Fatalf("redo %v: %+v", op, r)
		}
	}
	h.ack()
	for i := 0; i < n; i++ {
		r := h.read(fmt.Sprintf("key%05d", i))
		if !r.Found || string(r.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d lost after recovery: %+v", i, r)
		}
	}
	if err := d.Tree("t").CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDCCrashRecoveryWithConsolidates(t *testing.T) {
	d := newDC(t, Config{PageBytes: 256})
	h := newOpHelper(d, 1)
	const n = 300
	for i := 0; i < n; i++ {
		h.insert(fmt.Sprintf("key%05d", i), "v")
	}
	for i := 0; i < n; i++ {
		if i%7 != 0 {
			h.del(fmt.Sprintf("key%05d", i))
		}
	}
	h.ack()
	if _, cons := d.Tree("t").Stats(); cons == 0 {
		t.Fatal("expected consolidations")
	}
	d.Crash()
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := d.Tree("t").CheckInvariants(); err != nil {
		t.Fatalf("structure after consolidate redo: %v", err)
	}
	for _, op := range h.issued {
		r := d.Perform(context.Background(), op)
		if r.Code != base.CodeOK && r.Code != base.CodeDuplicate && r.Code != base.CodeNotFound {
			t.Fatalf("redo %v: %+v", op, r)
		}
	}
	for i := 0; i < n; i++ {
		r := h.read(fmt.Sprintf("key%05d", i))
		if i%7 == 0 && !r.Found {
			t.Fatalf("surviving key %d lost", i)
		}
		if i%7 != 0 && r.Found {
			t.Fatalf("deleted key %d resurrected", i)
		}
	}
}

func TestTCFailureReset(t *testing.T) {
	// §5.3.2: the TC loses its log tail; the DC must drop from its cache
	// exactly the pages whose abstract LSNs include operations beyond the
	// stable log, resetting them from disk.
	d := newDC(t, Config{})
	h := newOpHelper(d, 1)
	h.insert("a", "stable")
	// Stabilize: log stable through LSN 1, page flushed.
	d.EndOfStableLog(1, 0, 1)
	d.LowWaterMark(1, 0, 1)
	if err := d.Checkpoint(context.Background(), 1, 0, 2); err != nil {
		t.Fatal(err)
	}
	// Lost tail: ops 2..3 applied but never forced at the TC.
	h.update("a", "lost1")
	h.insert("b", "lost2")
	if r := h.read("a"); string(r.Value) != "lost1" {
		t.Fatalf("pre-crash read: %+v", r)
	}
	// TC crashes with stable log end = 1; the restarted incarnation is 2.
	if err := d.BeginRestart(context.Background(), 1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.EndRestart(context.Background(), 1, 2); err != nil {
		t.Fatal(err)
	}
	if d.Stats().ResetPages == 0 {
		t.Fatal("no pages were reset")
	}
	// The new incarnation's requests pass the fence.
	h.epoch = 2
	// The stable value is back; the lost operations' effects are gone.
	if r := h.read("a"); !r.Found || string(r.Value) != "stable" {
		t.Fatalf("after reset: %+v", r)
	}
	if r := h.read("b"); r.Found {
		t.Fatalf("lost insert survived: %+v", r)
	}
	// The restarted TC reuses LSNs 2..: they must execute (not be treated
	// as already applied).
	reuse := &base.Op{TC: 1, Epoch: 2, LSN: 2, Kind: base.OpInsert, Table: "t", Key: "c", Value: []byte("new2")}
	if r := d.Perform(context.Background(), reuse); r.Code != base.CodeOK || r.Applied {
		t.Fatalf("reused LSN mishandled: %+v", r)
	}
}

func TestMultiTCResetIsolation(t *testing.T) {
	// §6.1.2: resetting the failed TC's records must not disturb records
	// of other TCs on the same pages.
	d := newDC(t, Config{})
	h1 := newOpHelper(d, 1)
	h2 := newOpHelper(d, 2)
	h1.insert("tc1-a", "stable1")
	h2.insert("tc2-a", "stable2")
	d.EndOfStableLog(1, 0, 1)
	d.LowWaterMark(1, 0, 1)
	d.EndOfStableLog(2, 0, 1)
	d.LowWaterMark(2, 0, 1)
	if err := d.Checkpoint(context.Background(), 1, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(context.Background(), 2, 0, 2); err != nil {
		t.Fatal(err)
	}
	// Both TCs apply further unstable ops to the same page.
	h1.update("tc1-a", "lost")
	h2.update("tc2-a", "kept-unstable")
	// TC 1 crashes; TC 2 is fine.
	if err := d.BeginRestart(context.Background(), 1, 2, 1); err != nil {
		t.Fatal(err)
	}
	h1.epoch = 2
	if r := h1.read("tc1-a"); string(r.Value) != "stable1" {
		t.Fatalf("tc1 record not reset: %+v", r)
	}
	// TC 2's unstable update must survive: only the failing TC resends.
	if r := h2.read("tc2-a"); string(r.Value) != "kept-unstable" {
		t.Fatalf("tc2 record disturbed: %+v", r)
	}
}

func TestCheckpointFlushesAndTruncates(t *testing.T) {
	d := newDC(t, Config{PageBytes: 256})
	h := newOpHelper(d, 1)
	for i := 0; i < 100; i++ {
		h.insert(fmt.Sprintf("key%04d", i), "v")
	}
	h.ack()
	if n := len(d.DCLog().Scan(0)); n == 0 && d.DCLog().LastLSN() > 0 {
		// Splits happened but nothing is forced yet; that is fine.
		t.Logf("pre-checkpoint stable DC-log records: %d", n)
	}
	if err := d.Checkpoint(context.Background(), 1, h.epoch, h.next); err != nil {
		t.Fatal(err)
	}
	// All dirty pages stable; the DC-log contract is released entirely.
	if n := len(d.DCLog().Scan(0)); n != 0 {
		t.Fatalf("DC-log not truncated: %d stable records remain", n)
	}
	// Everything survives a crash with no redo needed.
	d.Crash()
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if r := h.read(fmt.Sprintf("key%04d", i)); !r.Found {
			t.Fatalf("key %d lost after checkpointed crash", i)
		}
	}
}

func TestConflictCheckerCatchesViolation(t *testing.T) {
	d := newDC(t, Config{CheckConflicts: true})
	// Two conflicting writes with different LSNs in flight concurrently:
	// the checker must notice. We simulate by entering via the table
	// directly (Perform is too fast to overlap reliably).
	op1 := &base.Op{TC: 1, LSN: 1, Kind: base.OpUpdate, Table: "t", Key: "k"}
	op2 := &base.Op{TC: 1, LSN: 2, Kind: base.OpUpdate, Table: "t", Key: "k"}
	d.inflight.enter(op1)
	if n := d.inflight.enter(op2); n != 1 {
		t.Fatalf("conflict not detected: %d", n)
	}
	d.inflight.exit(op1)
	d.inflight.exit(op2)
	// Duplicate resends of the same request never count as conflicts.
	d.inflight.enter(op1)
	dup := *op1
	if n := d.inflight.enter(&dup); n != 0 {
		t.Fatalf("resend miscounted as conflict: %d", n)
	}
}

func TestPageSyncStrategiesEndToEnd(t *testing.T) {
	for _, strat := range []buffer.SyncStrategy{buffer.SyncBlock, buffer.SyncFull, buffer.SyncHybrid} {
		t.Run(strat.String(), func(t *testing.T) {
			d := newDC(t, Config{Strategy: strat, HybridMax: 4})
			h := newOpHelper(d, 1)
			for i := 0; i < 50; i++ {
				h.insert(fmt.Sprintf("k%03d", i), "v")
			}
			h.ack()
			if err := d.Checkpoint(context.Background(), 1, h.epoch, h.next); err != nil {
				t.Fatal(err)
			}
			d.Crash()
			if err := d.Recover(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				if r := h.read(fmt.Sprintf("k%03d", i)); !r.Found {
					t.Fatalf("strategy %v lost key %d", strat, i)
				}
			}
		})
	}
}

func TestRandomizedCrashReplayConvergence(t *testing.T) {
	// Repeatedly: random ops, random acks, random crash+recover+full
	// replay; final state must match a model applied in LSN order.
	rnd := rand.New(rand.NewSource(11))
	d := newDC(t, Config{PageBytes: 256})
	h := newOpHelper(d, 1)
	model := map[string]string{}
	for round := 0; round < 5; round++ {
		for i := 0; i < 150; i++ {
			k := fmt.Sprintf("k%03d", rnd.Intn(120))
			switch rnd.Intn(3) {
			case 0:
				v := fmt.Sprintf("v%d", h.next)
				if r := h.do(base.OpUpsert, k, []byte(v), false); r.Code == base.CodeOK {
					model[k] = v
				}
			case 1:
				if r := h.del(k); r.Code == base.CodeOK {
					delete(model, k)
				}
			case 2:
				want, ok := model[k]
				r := h.read(k)
				if ok != r.Found || (ok && want != string(r.Value)) {
					t.Fatalf("round %d: read %q = %+v want %q,%v", round, k, r, want, ok)
				}
			}
		}
		h.ack()
		if rnd.Intn(2) == 0 {
			if err := d.Checkpoint(context.Background(), 1, h.epoch, h.next); err != nil {
				t.Fatal(err)
			}
		}
		d.Crash()
		if err := d.Recover(); err != nil {
			t.Fatal(err)
		}
		// Full redo from LSN 0 (superset of any RSSP; idempotence filters).
		for _, op := range h.issued {
			d.Perform(context.Background(), op)
		}
		h.ack()
		for k, want := range model {
			r := h.read(k)
			if !r.Found || string(r.Value) != want {
				t.Fatalf("round %d: after recovery %q = %+v want %q", round, k, r, want)
			}
		}
		if err := d.Tree("t").CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}
