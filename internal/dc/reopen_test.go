package dc

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/cidr09/unbundled/internal/base"
)

// TestReopenFromDir proves the standalone-DC durability story at the DC
// layer: everything the first incarnation made stable — flushed pages,
// forced DC-log system transactions (splits), installed epoch fences —
// must come back when a second incarnation opens the same directory, with
// no TC in the picture. (Un-flushed cache contents are *supposed* to be
// gone; the TC's redo stream re-delivers them, which the core e2e tests
// cover.)
func TestReopenFromDir(t *testing.T) {
	dir := t.TempDir()
	d, err := New(Config{Name: "dc-reopen", Dir: dir, PageBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const n = 200 // enough writes to force splits through the DC-log
	for i := 0; i < n; i++ {
		op := &base.Op{TC: 1, Epoch: 1, LSN: base.LSN(i + 1), Kind: base.OpUpsert,
			Table: "kv", Key: fmt.Sprintf("k%04d", i), Value: []byte(fmt.Sprintf("v%d", i))}
		if res := d.Perform(ctx, op); res.Code != base.CodeOK {
			t.Fatalf("write %d: %+v", i, res)
		}
	}
	// Make everything stable the way a checkpoint would: watermarks first
	// (the causality gates), then the flush.
	d.EndOfStableLog(1, 1, base.LSN(n+1))
	d.LowWaterMark(1, 1, base.LSN(n))
	if err := d.Checkpoint(ctx, 1, 1, base.LSN(n+1)); err != nil {
		t.Fatal(err)
	}
	// Install an epoch fence, then drop the DC object without any shutdown
	// — the moral equivalent of kill -9 (stable media are on disk, the
	// process image is gone).
	if err := d.BeginRestart(ctx, 1, 7, base.LSN(n+1)); err != nil {
		t.Fatal(err)
	}
	if err := d.EndRestart(ctx, 1, 7); err != nil {
		t.Fatal(err)
	}

	r, err := New(Config{Name: "dc-reopen-2", Dir: dir, PageBytes: 512})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if tables := r.Tables(); len(tables) != 1 || tables[0] != "kv" {
		t.Fatalf("tables after reopen: %v", tables)
	}
	for i := 0; i < n; i++ {
		op := &base.Op{TC: 1, Epoch: 7, LSN: base.LSN(1000 + i), Kind: base.OpRead,
			Table: "kv", Key: fmt.Sprintf("k%04d", i)}
		res := r.Perform(ctx, op)
		if res.Code != base.CodeOK || string(res.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("read %d after reopen: %+v", i, res)
		}
	}
	// The epoch fence survived the process death: the dead incarnation's
	// requests stay fenced.
	if res := r.Perform(ctx, &base.Op{TC: 1, Epoch: 1, LSN: 5000, Kind: base.OpUpsert,
		Table: "kv", Key: "zombie", Value: []byte("x")}); res.Code != base.CodeStaleEpoch {
		t.Fatalf("pre-restart epoch not fenced after reopen: %+v", res)
	}
	// Idempotence state survived too: a resend of an already-applied
	// (flushed) operation is recognized, not re-executed.
	res := r.Perform(ctx, &base.Op{TC: 1, Epoch: 7, LSN: 10, Kind: base.OpUpsert,
		Table: "kv", Key: "k0009", Value: []byte("clobber")})
	if res.Code != base.CodeOK || !res.Applied {
		t.Fatalf("resend of flushed op after reopen not recognized: %+v", res)
	}
}

// TestReopenAfterDCLogTruncationKeepsDLSNsMonotonic is the regression for
// a disk-format bug: a checkpoint can truncate the DC-log to empty, and
// the reopened log must still allocate dLSNs above everything the first
// incarnation consumed — stable pages carry those dLSN stamps, and the
// §5.2.2 redo idempotence tests (page.DLSN >= record dLSN) silently skip
// replays if a new incarnation reuses old dLSNs.
func TestReopenAfterDCLogTruncationKeepsDLSNsMonotonic(t *testing.T) {
	dir := t.TempDir()
	d, err := New(Config{Name: "dlsn", Dir: dir, PageBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const n = 300 // forces splits, so the DC-log sees real traffic
	for i := 0; i < n; i++ {
		op := &base.Op{TC: 1, Epoch: 1, LSN: base.LSN(i + 1), Kind: base.OpUpsert,
			Table: "kv", Key: fmt.Sprintf("k%04d", i), Value: []byte("v")}
		if res := d.Perform(ctx, op); res.Code != base.CodeOK {
			t.Fatalf("write %d: %+v", i, res)
		}
	}
	d.EndOfStableLog(1, 1, base.LSN(n+1))
	d.LowWaterMark(1, 1, base.LSN(n))
	// The checkpoint flushes everything and truncates the DC-log.
	if err := d.Checkpoint(ctx, 1, 1, base.LSN(n+1)); err != nil {
		t.Fatal(err)
	}
	next := d.DCLog().NextLSN()
	if next == 1 {
		t.Fatal("test did not consume any dLSNs")
	}

	r, err := New(Config{Name: "dlsn-2", Dir: dir, PageBytes: 512})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := r.DCLog().NextLSN(); got < next {
		t.Fatalf("dLSN allocation regressed across reopen: next=%d, first incarnation reached %d", got, next)
	}
}

// TestReopenAfterInterruptedFormat is the regression for a bricked data
// dir: a kill between the format's durable first allocation and the
// catalog page write leaves alloc=1 with no pages. The next boot must
// format from scratch, not fail forever on the catalog-page-ID check.
func TestReopenAfterInterruptedFormat(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "pages"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "pages", "alloc"), []byte("1"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{Name: "interrupted", Dir: dir})
	if err != nil {
		t.Fatalf("format over an interrupted format failed: %v", err)
	}
	if err := d.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	op := &base.Op{TC: 1, Epoch: 1, LSN: 1, Kind: base.OpUpsert, Table: "kv", Key: "k", Value: []byte("v")}
	if res := d.Perform(context.Background(), op); res.Code != base.CodeOK {
		t.Fatalf("write after recovered format: %+v", res)
	}
}
