package dc

import (
	"github.com/cidr09/unbundled/internal/stats"
)

// This file is the DC's operations plane: the drain/undrain quiesce
// protocol and the metrics registration consumed by the admin HTTP
// endpoint (internal/stats).

// Drain stops admitting new operations: Perform nacks CodeUnavailable
// (transient — the TCs' resend discipline rides the window out exactly
// as it rides out a crash), while operations already executing run to
// completion. Control calls — watermarks, checkpoints, restart
// protocols — stay admitted, so a draining DC never wedges a TC
// recovery. Quiesced reports when the last in-flight operation has
// left. Drain returns immediately.
func (d *DC) Drain() { d.draining.Store(true) }

// Undrain resumes admitting operations; pending TC resends then land.
func (d *DC) Undrain() { d.draining.Store(false) }

// Draining reports whether the DC is refusing new operations.
func (d *DC) Draining() bool { return d.draining.Load() }

// Quiesced reports whether a drain has fully settled: draining and no
// operation is executing.
func (d *DC) Quiesced() bool {
	return d.draining.Load() && d.inflightOps.Load() == 0
}

// RegisterStats registers this DC's counters and derived gauges with a
// stats group. Values are read at snapshot time from the DC's own
// atomics — registration adds nothing to any hot path.
func (d *DC) RegisterStats(g *stats.Group) {
	g.Func("performs", d.performs.Load)
	g.Func("batches", d.batches.Load)
	g.Func("batch_ops", d.batchOps.Load)
	g.Func("dup_skips", d.dupSkips.Load)
	g.Func("unavailable", d.unavailable.Load)
	g.Func("drain_rejects", d.drainRejects.Load)
	g.Func("stale_epochs", d.staleEpochs.Load)
	g.Func("reset_pages", d.resetPages.Load)
	g.Func("restored_recs", d.restoredRecs.Load)
	g.Func("conflict_violations", d.conVios.Load)
	g.Func("snapshot_reads", d.snapReads.Load)
	g.Func("snapshot_waits", d.snapWaits.Load)
	g.Func("version_finalizes", d.finalizes.Load)
	g.Func("gc_horizon", d.gcHorizon.Load)
	g.Func("inflight_ops", func() uint64 {
		if v := d.inflightOps.Load(); v > 0 {
			return uint64(v)
		}
		return 0
	})
	g.Func("draining", func() uint64 {
		if d.draining.Load() {
			return 1
		}
		return 0
	})
}
