// Package buffer implements the DC's cache manager (§4.1.2(3)). Flushing a
// page to stable storage is gated by three rules:
//
//  1. Causality / distributed WAL (§4.2): a page may be made stable only
//     when, for every TC with operations reflected in the page, the TC log
//     is stable at least through the page's highest applied LSN
//     (end_of_stable_log). Otherwise a TC crash could lose operations that
//     the stable database state already reflects.
//  2. DC-log WAL (§5.2.2): the DC-log must be forced through the page's
//     RecDLSN before the page is written, so structure modifications are
//     never reflected on disk without their log records.
//  3. Page sync (§5.1.2): the abstract LSN must be made stable atomically
//     with the page. The paper's three strategies are implemented:
//     SyncBlock waits (refusing new higher-LSN operations) until the
//     TC-supplied low-water mark swallows the whole {LSNin} set and a lone
//     LSNlw suffices; SyncFull embeds the entire abstract LSN in the page;
//     SyncHybrid waits only until the set is "reduced to a manageable
//     size" and then embeds it.
package buffer

import (
	"container/list"
	"errors"
	"sync"
	"sync/atomic"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/page"
	"github.com/cidr09/unbundled/internal/storage"
)

// SyncStrategy selects the §5.1.2 page-sync algorithm.
type SyncStrategy uint8

const (
	// SyncBlock is strategy 1: delay the flush (and refuse operations with
	// LSNs above the highest tracked LSNin) until the low-water mark
	// covers every LSNin; the page then carries only LSNlw.
	SyncBlock SyncStrategy = iota + 1
	// SyncFull is strategy 2: include the entire abstract LSN on the page.
	SyncFull
	// SyncHybrid is strategy 3: wait until |{LSNin}| <= HybridMax, then
	// embed the remaining abstract LSN.
	SyncHybrid
)

func (s SyncStrategy) String() string {
	switch s {
	case SyncBlock:
		return "block"
	case SyncFull:
		return "full"
	case SyncHybrid:
		return "hybrid"
	}
	return "unknown"
}

// Gates supplies the watermarks that gate flushing.
type Gates struct {
	// EOSL returns the end of stable log for a TC (causality gate).
	EOSL func(base.TCID) base.LSN
	// LWM returns the low-water mark for a TC (abLSN pruning).
	LWM func(base.TCID) base.LSN
	// ForceDCLog forces the DC-log through the given dLSN (WAL gate).
	ForceDCLog func(base.DLSN)
}

// Config shapes the pool.
type Config struct {
	// Capacity is the number of cached pages before eviction kicks in.
	Capacity int
	// Strategy is the page-sync strategy.
	Strategy SyncStrategy
	// HybridMax is the SyncHybrid set-size threshold.
	HybridMax int
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 1024
	}
	if c.Strategy == 0 {
		c.Strategy = SyncFull
	}
	if c.HybridMax <= 0 {
		c.HybridMax = 8
	}
	return c
}

// Stats counts pool activity.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Flushes     uint64
	Evictions   uint64
	FlushWaits  uint64
	PageBytes   uint64 // bytes written to stable pages
	AbLSNBytes  uint64 // of which abstract-LSN bytes (experiment E2/E3)
	BarrierHits uint64 // operations refused by the SyncBlock barrier
}

// ErrNotFlushable is returned by non-waiting flushes whose gates are not
// yet satisfied.
var ErrNotFlushable = errors.New("buffer: flush gates not satisfied")

type frame struct {
	pg  *page.Page
	pin int
	el  *list.Element
	// flushWanted marks a SyncBlock flush in progress: appliers must not
	// add LSNs above barrier (per TC) until the flush completes.
	flushWanted bool
	barrier     map[base.TCID]base.LSN
}

// Pool is the page cache. All methods are safe for concurrent use.
type Pool struct {
	cfg   Config
	store *storage.PageStore
	gates Gates

	mu      sync.Mutex
	cond    *sync.Cond
	kickGen uint64
	frames  map[base.PageID]*frame
	lru     *list.List // front = most recently used; values are PageIDs

	hits, misses, flushes, evictions, flushWaits atomic.Uint64
	pageBytes, abBytes, barrierHits              atomic.Uint64
}

// New returns a pool over store with the given gates.
func New(cfg Config, store *storage.PageStore, gates Gates) *Pool {
	p := &Pool{cfg: cfg.withDefaults(), store: store, gates: gates,
		frames: make(map[base.PageID]*frame), lru: list.New()}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Strategy returns the configured page-sync strategy.
func (p *Pool) Strategy() SyncStrategy { return p.cfg.Strategy }

// Kick wakes flushers waiting on watermark progress; the DC calls it after
// every end_of_stable_log / low_water_mark message.
func (p *Pool) Kick() {
	p.mu.Lock()
	p.kickGen++
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Fetch returns the page, reading and decoding it from stable storage on a
// miss. The frame is pinned; callers must Unpin. Fetching an ID with no
// stable contents and no cached frame returns nil.
func (p *Pool) Fetch(id base.PageID) (*page.Page, error) {
	p.mu.Lock()
	if f, ok := p.frames[id]; ok {
		f.pin++
		p.lru.MoveToFront(f.el)
		p.mu.Unlock()
		p.hits.Add(1)
		return f.pg, nil
	}
	p.mu.Unlock()
	p.misses.Add(1)
	data, ok := p.store.Read(id)
	if !ok {
		return nil, nil
	}
	pg, err := page.Decode(data)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if f, ok := p.frames[id]; ok { // lost a race; use the winner
		f.pin++
		p.lru.MoveToFront(f.el)
		p.mu.Unlock()
		return f.pg, nil
	}
	f := p.insertLocked(pg)
	f.pin++
	p.mu.Unlock()
	p.maybeEvict()
	return f.pg, nil
}

// insertLocked adds a frame for pg (caller holds p.mu).
func (p *Pool) insertLocked(pg *page.Page) *frame {
	f := &frame{pg: pg}
	f.el = p.lru.PushFront(pg.ID)
	p.frames[pg.ID] = f
	return f
}

// Install adds a freshly created page (from an SMO or recovery) to the
// cache, pinned and dirty. The caller allocated the ID.
func (p *Pool) Install(pg *page.Page) {
	pg.Dirty = true
	p.mu.Lock()
	if old, ok := p.frames[pg.ID]; ok {
		// Recovery can re-install over a cached frame: replace contents.
		old.pg = pg
		old.pin++
		p.lru.MoveToFront(old.el)
		p.mu.Unlock()
		return
	}
	f := p.insertLocked(pg)
	f.pin++
	p.mu.Unlock()
	p.maybeEvict()
}

// Unpin releases one pin on id.
func (p *Pool) Unpin(id base.PageID) {
	p.mu.Lock()
	if f, ok := p.frames[id]; ok {
		f.pin--
		if f.pin < 0 {
			panic("buffer: negative pin count")
		}
	}
	p.mu.Unlock()
}

// MarkDirty records a TC operation (lsn may be 0 for pure SMO dirtying)
// and/or an SMO (dlsn may be 0) applied to pg. Callers hold the page latch.
func (p *Pool) MarkDirty(pg *page.Page, tc base.TCID, lsn base.LSN, dlsn base.DLSN) {
	pg.Dirty = true
	if lsn != 0 {
		if pg.FirstDirty == nil {
			pg.FirstDirty = make(map[base.TCID]base.LSN, 1)
		}
		if cur, ok := pg.FirstDirty[tc]; !ok || lsn < cur {
			pg.FirstDirty[tc] = lsn
		}
	}
	if dlsn != 0 && (pg.RecDLSN == 0 || dlsn < pg.RecDLSN) {
		pg.RecDLSN = dlsn
	}
}

// BarrierBlocked reports whether applying an operation with lsn for tc on
// pg must wait for a pending SyncBlock flush (§5.1.2 strategy 1: "we
// refuse to execute operations on the page with LSNs greater than the
// highest valued LSNin"). Callers hold the page latch.
func (p *Pool) BarrierBlocked(pg *page.Page, tc base.TCID, lsn base.LSN) bool {
	if p.cfg.Strategy != SyncBlock {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[pg.ID]
	if !ok || !f.flushWanted {
		return false
	}
	bar, ok := f.barrier[tc]
	if !ok {
		bar = 0 // unknown TC: all new ops wait until flush completes
	}
	if lsn > bar {
		p.barrierHits.Add(1)
		return true
	}
	return false
}

// BarrierWait blocks until the pending flush on id completes (or until the
// next watermark kick re-opens the question). Callers must not hold the
// page latch.
func (p *Pool) BarrierWait(id base.PageID) {
	p.mu.Lock()
	f, ok := p.frames[id]
	if !ok || !f.flushWanted {
		p.mu.Unlock()
		return
	}
	gen := p.kickGen
	for gen == p.kickGen {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// FlushPage makes id stable, honoring the gates. With wait=false it
// returns ErrNotFlushable when a gate is closed; with wait=true it blocks
// until the gates open (watermark kicks re-evaluate). Unknown/clean pages
// succeed trivially.
func (p *Pool) FlushPage(id base.PageID, wait bool) error {
	p.mu.Lock()
	f, ok := p.frames[id]
	if !ok {
		p.mu.Unlock()
		return nil
	}
	f.pin++ // hold the frame across the flush
	p.mu.Unlock()
	err := p.flushFrame(f, wait)
	p.Unpin(id)
	return err
}

func (p *Pool) flushFrame(f *frame, wait bool) error {
	// SyncBlock can deadlock across pages: flush A waits for a low-water
	// mark that requires an operation blocked by flush B's barrier and
	// vice versa. After bounded waiting a blocked flush falls back to
	// embedding the remaining abstract LSN (§5.1.2: "some combination of
	// the two is also possible"), guaranteeing progress.
	blockAttempts := 0
	const blockAttemptLimit = 50
	for {
		p.mu.Lock()
		gen := p.kickGen
		p.mu.Unlock()

		f.pg.L.Lock()
		pg := f.pg
		if !pg.Dirty {
			f.pg.L.Unlock()
			p.clearFlushWanted(f)
			return nil
		}
		// Lazy abstract-LSN advance: prune with min(LWM, EOSL) per TC —
		// never beyond EOSL, so stable pages cannot claim idempotence for
		// operations a TC crash could lose (see ablsn.A contract).
		for _, tc := range pg.Ab.TCs() {
			lwm, eosl := p.gates.LWM(tc), p.gates.EOSL(tc)
			m := lwm
			if eosl < m {
				m = eosl
			}
			pg.Ab.Advance(tc, m)
		}
		// Gate 1: causality.
		open := true
		for _, tc := range pg.Ab.TCs() {
			if p.gates.EOSL(tc) < pg.Ab.MaxApplied(tc) {
				open = false
				break
			}
		}
		// Gate 3: page-sync strategy.
		if open {
			switch p.cfg.Strategy {
			case SyncBlock:
				if pg.Ab.InCountTotal() > 0 && blockAttempts < blockAttemptLimit {
					open = false
					p.setBarrier(f, pg)
					blockAttempts++
				}
			case SyncHybrid:
				if pg.Ab.InCountTotal() > p.cfg.HybridMax {
					open = false
				}
			}
		}
		if !open {
			f.pg.L.Unlock()
			if !wait {
				p.clearFlushWanted(f)
				return ErrNotFlushable
			}
			p.flushWaits.Add(1)
			p.mu.Lock()
			for gen == p.kickGen {
				p.cond.Wait()
			}
			p.mu.Unlock()
			continue
		}
		// Gate 2: DC-log WAL. Force through the page's DLSN — the *latest*
		// system transaction reflected in the page — so no structure
		// modification reaches disk before its log record. (RecDLSN, the
		// earliest unflushed SMO, only drives log truncation.)
		if pg.DLSN != 0 && p.gates.ForceDCLog != nil {
			p.gates.ForceDCLog(pg.DLSN)
		}
		data := pg.Encode()
		p.store.Write(pg.ID, data)
		p.pageBytes.Add(uint64(len(data)))
		p.abBytes.Add(uint64(pg.Ab.EncodedSize()))
		pg.Dirty = false
		pg.FirstDirty = nil
		pg.RecDLSN = 0
		f.pg.L.Unlock()
		p.clearFlushWanted(f)
		p.flushes.Add(1)
		return nil
	}
}

// setBarrier records the per-TC "highest LSNin" barrier for a SyncBlock
// flush in progress. Caller holds the page latch.
func (p *Pool) setBarrier(f *frame, pg *page.Page) {
	p.mu.Lock()
	f.flushWanted = true
	if f.barrier == nil {
		f.barrier = make(map[base.TCID]base.LSN, 1)
	}
	for _, tc := range pg.Ab.TCs() {
		a := pg.Ab.Get(tc)
		bar := a.Low
		if n := a.InCount(); n > 0 {
			bar = a.In[n-1]
		}
		f.barrier[tc] = bar
	}
	p.mu.Unlock()
}

func (p *Pool) clearFlushWanted(f *frame) {
	p.mu.Lock()
	if f.flushWanted {
		f.flushWanted = false
		f.barrier = nil
		p.kickGen++
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// FlushAll flushes every cached dirty page matching pred (nil = all).
// With wait=true it blocks per page until flushable (checkpoint).
func (p *Pool) FlushAll(wait bool, pred func(*page.Page) bool) error {
	var firstErr error
	for _, f := range p.snapshot() {
		if pred != nil {
			f.pg.L.RLock()
			keep := pred(f.pg)
			f.pg.L.RUnlock()
			if !keep {
				p.Unpin(f.pg.ID)
				continue
			}
		}
		if err := p.flushFrame(f, wait); err != nil && firstErr == nil {
			firstErr = err
		}
		p.Unpin(f.pg.ID)
	}
	return firstErr
}

// snapshot pins and returns all current frames.
func (p *Pool) snapshot() []*frame {
	p.mu.Lock()
	out := make([]*frame, 0, len(p.frames))
	for _, f := range p.frames {
		f.pin++
		out = append(out, f)
	}
	p.mu.Unlock()
	return out
}

// Pages calls fn for every cached page with the frame pinned; fn is
// responsible for latching. Used by partial-failure reset (§5.3.2).
func (p *Pool) Pages(fn func(*page.Page)) {
	for _, f := range p.snapshot() {
		fn(f.pg)
		p.Unpin(f.pg.ID)
	}
}

// Drop removes the cached frame without flushing; with free=true the
// stable page is also removed (page delete, §5.2.2).
func (p *Pool) Drop(id base.PageID, free bool) {
	p.mu.Lock()
	if f, ok := p.frames[id]; ok {
		p.lru.Remove(f.el)
		delete(p.frames, id)
	}
	p.mu.Unlock()
	if free {
		p.store.Free(id)
	}
}

// maybeEvict evicts cold clean-or-flushable pages above capacity.
func (p *Pool) maybeEvict() {
	for {
		p.mu.Lock()
		if len(p.frames) <= p.cfg.Capacity {
			p.mu.Unlock()
			return
		}
		// Walk from coldest; pick the first unpinned candidate.
		var victim *frame
		for el := p.lru.Back(); el != nil; el = el.Prev() {
			f := p.frames[el.Value.(base.PageID)]
			if f != nil && f.pin == 0 {
				victim = f
				f.pin++
				break
			}
		}
		p.mu.Unlock()
		if victim == nil {
			return // everything pinned; let it ride
		}
		if err := p.flushFrame(victim, false); err != nil {
			// Gates closed: skip eviction of this page for now.
			p.Unpin(victim.pg.ID)
			p.mu.Lock()
			p.lru.MoveToFront(victim.el) // don't retry it immediately
			p.mu.Unlock()
			return
		}
		p.mu.Lock()
		if f, ok := p.frames[victim.pg.ID]; ok && f == victim && f.pin == 1 && !f.pg.Dirty {
			p.lru.Remove(f.el)
			delete(p.frames, f.pg.ID)
			p.evictions.Add(1)
			p.mu.Unlock()
			continue
		}
		// Re-dirtied or re-pinned during the flush; keep it.
		if f, ok := p.frames[victim.pg.ID]; ok && f == victim {
			f.pin--
		}
		p.mu.Unlock()
		return
	}
}

// Cached returns the number of cached frames.
func (p *Pool) Cached() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// Stats returns a snapshot of counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Hits:        p.hits.Load(),
		Misses:      p.misses.Load(),
		Flushes:     p.flushes.Load(),
		Evictions:   p.evictions.Load(),
		FlushWaits:  p.flushWaits.Load(),
		PageBytes:   p.pageBytes.Load(),
		AbLSNBytes:  p.abBytes.Load(),
		BarrierHits: p.barrierHits.Load(),
	}
}
