package buffer

import (
	"sync"
	"testing"
	"time"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/page"
	"github.com/cidr09/unbundled/internal/storage"
)

// gateState is an adjustable Gates implementation for tests.
type gateState struct {
	mu     sync.Mutex
	eosl   map[base.TCID]base.LSN
	lwm    map[base.TCID]base.LSN
	forced base.DLSN
}

func newGateState() *gateState {
	return &gateState{eosl: map[base.TCID]base.LSN{}, lwm: map[base.TCID]base.LSN{}}
}

func (g *gateState) gates() Gates {
	return Gates{
		EOSL: func(tc base.TCID) base.LSN {
			g.mu.Lock()
			defer g.mu.Unlock()
			return g.eosl[tc]
		},
		LWM: func(tc base.TCID) base.LSN {
			g.mu.Lock()
			defer g.mu.Unlock()
			return g.lwm[tc]
		},
		ForceDCLog: func(d base.DLSN) {
			g.mu.Lock()
			defer g.mu.Unlock()
			if d > g.forced {
				g.forced = d
			}
		},
	}
}

func (g *gateState) set(tc base.TCID, eosl, lwm base.LSN) {
	g.mu.Lock()
	g.eosl[tc] = eosl
	g.lwm[tc] = lwm
	g.mu.Unlock()
}

func newTestPool(t *testing.T, cfg Config) (*Pool, *storage.PageStore, *gateState) {
	t.Helper()
	store := storage.NewPageStore()
	g := newGateState()
	return New(cfg, store, g.gates()), store, g
}

func dirtyLeaf(p *Pool, store *storage.PageStore, tc base.TCID, lsns ...base.LSN) *page.Page {
	pg := page.NewLeaf(store.AllocPageID())
	for _, l := range lsns {
		pg.Ab.Ensure(tc).Add(l)
		p.MarkDirty(pg, tc, l, 0)
	}
	p.Install(pg)
	return pg
}

func TestFetchMissAndHit(t *testing.T) {
	p, store, _ := newTestPool(t, Config{})
	pg := page.NewLeaf(store.AllocPageID())
	pg.Put(page.Record{Key: "k", Value: []byte("v")})
	store.Write(pg.ID, pg.Encode())

	got, err := p.Fetch(pg.ID)
	if err != nil || got == nil || got.Get("k") == nil {
		t.Fatalf("fetch: %v %v", got, err)
	}
	got2, _ := p.Fetch(pg.ID)
	if got2 != got {
		t.Fatal("second fetch must hit the same frame")
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	p.Unpin(pg.ID)
	p.Unpin(pg.ID)
	if missing, err := p.Fetch(base.PageID(9999)); err != nil || missing != nil {
		t.Fatalf("missing page: %v %v", missing, err)
	}
}

func TestCausalityGateBlocksFlush(t *testing.T) {
	p, store, g := newTestPool(t, Config{Strategy: SyncFull})
	pg := dirtyLeaf(p, store, 1, 10)
	// EOSL(1)=5 < maxApplied=10: flush must not happen.
	g.set(1, 5, 10)
	if err := p.FlushPage(pg.ID, false); err != ErrNotFlushable {
		t.Fatalf("err = %v, want ErrNotFlushable", err)
	}
	if store.Exists(pg.ID) {
		t.Fatal("causality violated: unstable op reached disk")
	}
	// Log catches up: flush proceeds.
	g.set(1, 10, 10)
	if err := p.FlushPage(pg.ID, false); err != nil {
		t.Fatal(err)
	}
	if !store.Exists(pg.ID) || pg.Dirty {
		t.Fatal("flush did not complete")
	}
}

func TestFlushWaitsForEOSLKick(t *testing.T) {
	p, store, g := newTestPool(t, Config{Strategy: SyncFull})
	pg := dirtyLeaf(p, store, 1, 10)
	g.set(1, 5, 10)
	done := make(chan error, 1)
	go func() { done <- p.FlushPage(pg.ID, true) }()
	select {
	case err := <-done:
		t.Fatalf("flush returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	g.set(1, 10, 10)
	p.Kick()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("flush never woke up")
	}
}

func TestSyncFullEmbedsInSet(t *testing.T) {
	p, store, g := newTestPool(t, Config{Strategy: SyncFull})
	pg := dirtyLeaf(p, store, 1, 5, 7, 9)
	g.set(1, 9, 0) // log stable, but LWM has not advanced
	if err := p.FlushPage(pg.ID, false); err != nil {
		t.Fatal(err)
	}
	data, _ := store.Read(pg.ID)
	stable, err := page.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	a := stable.Ab.Get(1)
	if a == nil || a.InCount() != 3 {
		t.Fatalf("full strategy must embed the set: %v", a)
	}
	if !stable.Ab.Contains(1, 7) || stable.Ab.Contains(1, 6) {
		t.Fatal("stable claims wrong")
	}
}

func TestSyncBlockWaitsForLWM(t *testing.T) {
	p, store, g := newTestPool(t, Config{Strategy: SyncBlock})
	pg := dirtyLeaf(p, store, 1, 5, 7)
	g.set(1, 7, 0)
	if err := p.FlushPage(pg.ID, false); err != ErrNotFlushable {
		t.Fatalf("err = %v", err)
	}
	// New op above the barrier must be refused while a waiting flush runs.
	done := make(chan error, 1)
	go func() { done <- p.FlushPage(pg.ID, true) }()
	time.Sleep(10 * time.Millisecond)
	pg.L.Lock()
	blockedHigh := p.BarrierBlocked(pg, 1, 8)
	blockedLow := p.BarrierBlocked(pg, 1, 6)
	pg.L.Unlock()
	if !blockedHigh {
		t.Fatal("op above barrier must be blocked")
	}
	if blockedLow {
		t.Fatal("op below barrier must proceed (needed for LWM progress)")
	}
	// LWM covers the set: flush completes with an empty In set on disk.
	g.set(1, 7, 7)
	p.Kick()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	data, _ := store.Read(pg.ID)
	stable, _ := page.Decode(data)
	if a := stable.Ab.Get(1); a == nil || a.InCount() != 0 || a.Low != 7 {
		t.Fatalf("block strategy must write a lone LSNlw: %v", a)
	}
	// Barrier cleared after flush.
	pg.L.Lock()
	still := p.BarrierBlocked(pg, 1, 100)
	pg.L.Unlock()
	if still {
		t.Fatal("barrier survived the flush")
	}
}

func TestSyncHybridThreshold(t *testing.T) {
	p, store, g := newTestPool(t, Config{Strategy: SyncHybrid, HybridMax: 2})
	pg := dirtyLeaf(p, store, 1, 2, 4, 6, 8)
	g.set(1, 8, 0)
	if err := p.FlushPage(pg.ID, false); err != ErrNotFlushable {
		t.Fatalf("4 > HybridMax: err = %v", err)
	}
	// LWM advance prunes to {6,8}: within threshold, embeds the remainder.
	g.set(1, 8, 4)
	if err := p.FlushPage(pg.ID, false); err != nil {
		t.Fatal(err)
	}
	data, _ := store.Read(pg.ID)
	stable, _ := page.Decode(data)
	if a := stable.Ab.Get(1); a == nil || a.InCount() != 2 || a.Low != 4 {
		t.Fatalf("hybrid result: %v", a)
	}
}

func TestAdvanceNeverExceedsEOSL(t *testing.T) {
	p, store, g := newTestPool(t, Config{Strategy: SyncFull})
	pg := dirtyLeaf(p, store, 1, 3)
	// LWM raced ahead of the stable log (replies received for unforced
	// ops): pruning must clamp at EOSL so the stable page never claims
	// idempotence for losable operations.
	g.set(1, 3, 100)
	if err := p.FlushPage(pg.ID, false); err != nil {
		t.Fatal(err)
	}
	data, _ := store.Read(pg.ID)
	stable, _ := page.Decode(data)
	a := stable.Ab.Get(1)
	if a.Low > 3 {
		t.Fatalf("stable Low %d exceeds EOSL 3", a.Low)
	}
	if a.Contains(50) {
		t.Fatal("stable page claims an operation beyond the stable log")
	}
}

func TestDCLogWALGate(t *testing.T) {
	p, store, g := newTestPool(t, Config{Strategy: SyncFull})
	pg := page.NewLeaf(store.AllocPageID())
	pg.DLSN = 42 // latest SMO reflected in the page
	p.MarkDirty(pg, 0, 0, 42)
	p.Install(pg)
	if err := p.FlushPage(pg.ID, false); err != nil {
		t.Fatal(err)
	}
	g.mu.Lock()
	forced := g.forced
	g.mu.Unlock()
	if forced < 42 {
		t.Fatalf("DC-log not forced before page write: %d", forced)
	}
}

func TestEvictionRespectsGates(t *testing.T) {
	p, store, g := newTestPool(t, Config{Capacity: 2, Strategy: SyncFull})
	// Page A flushable, page B gated.
	a := dirtyLeaf(p, store, 1, 1)
	b := dirtyLeaf(p, store, 2, 50)
	g.set(1, 10, 10)
	g.set(2, 0, 0) // B's TC log not stable
	p.Unpin(a.ID)
	p.Unpin(b.ID)
	// Insert a third page to force eviction.
	c := dirtyLeaf(p, store, 1, 2)
	p.Unpin(c.ID)
	// B must never be evicted to disk while gated.
	if store.Exists(b.ID) {
		t.Fatal("gated page leaked to disk via eviction")
	}
}

func TestFlushAllWithPredicate(t *testing.T) {
	p, store, g := newTestPool(t, Config{Strategy: SyncFull})
	a := dirtyLeaf(p, store, 1, 1)
	b := dirtyLeaf(p, store, 1, 2)
	g.set(1, 10, 10)
	err := p.FlushAll(false, func(pg *page.Page) bool { return pg.ID == a.ID })
	if err != nil {
		t.Fatal(err)
	}
	if !store.Exists(a.ID) || store.Exists(b.ID) {
		t.Fatal("predicate not honored")
	}
}

func TestDropAndFree(t *testing.T) {
	p, store, g := newTestPool(t, Config{Strategy: SyncFull})
	g.set(1, 10, 10)
	pg := dirtyLeaf(p, store, 1, 1)
	p.FlushPage(pg.ID, false)
	p.Unpin(pg.ID)
	p.Drop(pg.ID, true)
	if p.Cached() != 0 || store.Exists(pg.ID) {
		t.Fatal("drop+free incomplete")
	}
}

func TestMarkDirtyTracksFirstDirtyAndRecDLSN(t *testing.T) {
	p, store, _ := newTestPool(t, Config{})
	pg := page.NewLeaf(store.AllocPageID())
	p.MarkDirty(pg, 1, 10, 0)
	p.MarkDirty(pg, 1, 5, 0)
	p.MarkDirty(pg, 1, 20, 0)
	if pg.FirstDirty[1] != 5 {
		t.Fatalf("FirstDirty = %d want 5", pg.FirstDirty[1])
	}
	p.MarkDirty(pg, 0, 0, 9)
	p.MarkDirty(pg, 0, 0, 3)
	if pg.RecDLSN != 3 {
		t.Fatalf("RecDLSN = %d want 3", pg.RecDLSN)
	}
}

func TestConcurrentFetchSingleFrame(t *testing.T) {
	p, store, _ := newTestPool(t, Config{})
	pg := page.NewLeaf(store.AllocPageID())
	store.Write(pg.ID, pg.Encode())
	var wg sync.WaitGroup
	frames := make([]*page.Page, 16)
	for i := range frames {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err := p.Fetch(pg.ID)
			if err != nil {
				t.Error(err)
			}
			frames[i] = f
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(frames); i++ {
		if frames[i] != frames[0] {
			t.Fatal("concurrent fetch produced distinct frames for one page")
		}
	}
}
