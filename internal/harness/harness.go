// Package harness is the load-generation and reporting API behind the
// experiments in EXPERIMENTS.md and the throughput benchmarks: fixed-seed
// closed-loop drivers (Run), an open-loop arrival-rate generator
// (RunOpenLoop) that measures latency against the offered schedule, and
// one canonical report shape (Report) that renders every result as an
// aligned table or JSON.
package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Result summarizes one measured configuration.
type Result struct {
	Name   string
	Txns   uint64 // completed transactions
	Errors uint64 // transactions that surfaced an error
	// Retries counts retried attempts underneath the completed
	// transactions. RunOpenLoop cannot observe retries the stack absorbs
	// internally, so drivers populate it from component counters.
	Retries uint64
	// Overloads counts admission refusals (base.ErrOverloaded) ridden
	// out underneath the run: RunOpenLoop records those that surface,
	// drivers add those the wire client absorbed.
	Overloads uint64
	Elapsed   time.Duration
	Latencies *Histogram
	// Extra holds named experiment-specific columns, rendered after the
	// standard ones in first-seen order.
	Extra []Col
}

// Col is one named extra column value.
type Col struct{ Name, Value string }

// Throughput returns completed transactions per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Txns) / r.Elapsed.Seconds()
}

// Quantile returns the q-quantile latency (0 with no samples recorded).
func (r Result) Quantile(q float64) time.Duration {
	if r.Latencies == nil {
		return 0
	}
	return r.Latencies.Quantile(q)
}

func (r Result) mean() time.Duration {
	if r.Latencies == nil {
		return 0
	}
	return r.Latencies.Mean()
}

// Run drives fn concurrently from `workers` goroutines until each has
// executed perWorker transactions (closed loop: each worker offers its
// next transaction only when the previous one finished); fn receives
// (worker, iteration) and reports success. Latency is recorded per
// transaction.
func Run(name string, workers, perWorker int, fn func(worker, i int) error) Result {
	var txns, errs atomic.Uint64
	h := NewHistogram()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				t0 := time.Now()
				if err := fn(w, i); err != nil {
					errs.Add(1)
					continue
				}
				h.Observe(time.Since(t0))
				txns.Add(1)
			}
		}(w)
	}
	wg.Wait()
	return Result{Name: name, Txns: txns.Load(), Errors: errs.Load(),
		Elapsed: time.Since(start), Latencies: h}
}

// Histogram is a fixed-bucket latency histogram (1µs..~17s, 2x buckets).
type Histogram struct {
	mu      sync.Mutex
	buckets [25]uint64
	count   uint64
	sum     time.Duration
	max     time.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	b := 0
	for v := d / time.Microsecond; v > 1 && b < len(h.buckets)-1; v >>= 1 {
		b++
	}
	h.mu.Lock()
	h.buckets[b]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Quantile returns an upper bound on the q-quantile latency.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	var cum uint64
	for b, n := range h.buckets {
		cum += n
		if cum > target {
			return time.Duration(1<<uint(b)) * time.Microsecond
		}
	}
	return h.max
}

// Mean returns the average latency.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Report is the canonical result collection: every experiment and
// benchmark accumulates Results into one and renders it through Table
// (aligned text) or JSON — there is no other rendering path.
type Report struct {
	results []Result
}

// NewReport returns an empty report.
func NewReport() *Report { return &Report{} }

// Add appends a result.
func (t *Report) Add(r Result) { t.results = append(t.results, r) }

// Results returns the accumulated results in insertion order.
func (t *Report) Results() []Result { return t.results }

// stdCols is the fixed column set every report row carries.
var stdCols = []string{"config", "txns", "errors", "tps", "mean", "p50", "p99", "p999"}

// header returns the full column list: the standard columns, retries and
// overloads when any result recorded them, then the union of extra
// column names in first-seen order.
func (t *Report) header() []string {
	h := append([]string(nil), stdCols...)
	var anyRetries, anyOverloads bool
	for _, r := range t.results {
		anyRetries = anyRetries || r.Retries > 0
		anyOverloads = anyOverloads || r.Overloads > 0
	}
	if anyRetries {
		h = append(h, "retries")
	}
	if anyOverloads {
		h = append(h, "overloads")
	}
	seen := make(map[string]bool)
	for _, r := range t.results {
		for _, c := range r.Extra {
			if !seen[c.Name] {
				seen[c.Name] = true
				h = append(h, c.Name)
			}
		}
	}
	return h
}

func (t *Report) row(r Result, header []string) []string {
	vals := map[string]string{
		"config":    r.Name,
		"txns":      fmt.Sprintf("%d", r.Txns),
		"errors":    fmt.Sprintf("%d", r.Errors),
		"tps":       fmt.Sprintf("%.0f", r.Throughput()),
		"mean":      fmtDur(r.mean()),
		"p50":       fmtDur(r.Quantile(0.50)),
		"p99":       fmtDur(r.Quantile(0.99)),
		"p999":      fmtDur(r.Quantile(0.999)),
		"retries":   fmt.Sprintf("%d", r.Retries),
		"overloads": fmt.Sprintf("%d", r.Overloads),
	}
	for _, c := range r.Extra {
		vals[c.Name] = c.Value
	}
	row := make([]string, len(header))
	for i, name := range header {
		row[i] = vals[name]
	}
	return row
}

// Fprint writes the aligned table.
func (t *Report) Fprint(w io.Writer) {
	header := t.header()
	rows := make([][]string, len(t.results))
	for i, r := range t.results {
		rows[i] = t.row(r, header)
	}
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cols []string) string {
		var sb strings.Builder
		for i, c := range cols {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		return strings.TrimRight(sb.String(), " ")
	}
	fmt.Fprintln(w, line(header))
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintln(w, line(sep))
	for _, row := range rows {
		fmt.Fprintln(w, line(row))
	}
}

// Table renders the report as an aligned text table.
func (t *Report) Table() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// String renders the table (fmt.Stringer).
func (t *Report) String() string { return t.Table() }

// jsonResult is the stable machine shape of one result row.
type jsonResult struct {
	Name      string            `json:"name"`
	Txns      uint64            `json:"txns"`
	Errors    uint64            `json:"errors"`
	Retries   uint64            `json:"retries"`
	Overloads uint64            `json:"overloads"`
	TPS       float64           `json:"tps"`
	MeanUs    int64             `json:"mean_us"`
	P50Us     int64             `json:"p50_us"`
	P99Us     int64             `json:"p99_us"`
	P999Us    int64             `json:"p999_us"`
	ElapsedMs float64           `json:"elapsed_ms"`
	Extra     map[string]string `json:"extra,omitempty"`
}

// JSON renders the report as an indented JSON array, one object per
// result, latencies in microseconds.
func (t *Report) JSON() []byte {
	out := make([]jsonResult, len(t.results))
	for i, r := range t.results {
		jr := jsonResult{
			Name:      r.Name,
			Txns:      r.Txns,
			Errors:    r.Errors,
			Retries:   r.Retries,
			Overloads: r.Overloads,
			TPS:       r.Throughput(),
			MeanUs:    r.mean().Microseconds(),
			P50Us:     r.Quantile(0.50).Microseconds(),
			P99Us:     r.Quantile(0.99).Microseconds(),
			P999Us:    r.Quantile(0.999).Microseconds(),
			ElapsedMs: float64(r.Elapsed.Microseconds()) / 1000,
		}
		if len(r.Extra) > 0 {
			jr.Extra = make(map[string]string, len(r.Extra))
			for _, c := range r.Extra {
				jr.Extra[c.Name] = c.Value
			}
		}
		out[i] = jr
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil { // unreachable: the shape is marshalable by construction
		panic(err)
	}
	return buf
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// SortResults orders results by name (stable output for docs).
func SortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Name < rs[j].Name })
}
