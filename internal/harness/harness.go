// Package harness runs experiments and reports the tables in
// EXPERIMENTS.md: fixed-seed workload drivers, wall-clock throughput,
// latency percentiles, and aligned table printing.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Result summarizes one measured configuration.
type Result struct {
	Name      string
	Txns      uint64
	Errors    uint64
	Elapsed   time.Duration
	Latencies *Histogram
	ExtraCols []string // appended verbatim to table rows
}

// Throughput returns committed transactions per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Txns) / r.Elapsed.Seconds()
}

// Run drives fn concurrently from `workers` goroutines until each has
// executed perWorker transactions; fn receives (worker, iteration) and
// reports success. Latency is recorded per transaction.
func Run(name string, workers, perWorker int, fn func(worker, i int) error) Result {
	var txns, errs atomic.Uint64
	h := NewHistogram()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				t0 := time.Now()
				if err := fn(w, i); err != nil {
					errs.Add(1)
					continue
				}
				h.Observe(time.Since(t0))
				txns.Add(1)
			}
		}(w)
	}
	wg.Wait()
	return Result{Name: name, Txns: txns.Load(), Errors: errs.Load(),
		Elapsed: time.Since(start), Latencies: h}
}

// Histogram is a fixed-bucket latency histogram (1µs..~17s, 2x buckets).
type Histogram struct {
	mu      sync.Mutex
	buckets [25]uint64
	count   uint64
	sum     time.Duration
	max     time.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	b := 0
	for v := d / time.Microsecond; v > 1 && b < len(h.buckets)-1; v >>= 1 {
		b++
	}
	h.mu.Lock()
	h.buckets[b]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Quantile returns an upper bound on the q-quantile latency.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	var cum uint64
	for b, n := range h.buckets {
		cum += n
		if cum > target {
			return time.Duration(1<<uint(b)) * time.Microsecond
		}
	}
	return h.max
}

// Mean returns the average latency.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Table prints results as an aligned table with the standard columns plus
// any extra column headers supplied.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable builds a table with the standard columns plus extras.
func NewTable(extra ...string) *Table {
	h := append([]string{"config", "txns", "errors", "tps", "mean", "p50", "p99"}, extra...)
	return &Table{header: h}
}

// Add appends a result row.
func (t *Table) Add(r Result) {
	row := []string{
		r.Name,
		fmt.Sprintf("%d", r.Txns),
		fmt.Sprintf("%d", r.Errors),
		fmt.Sprintf("%.0f", r.Throughput()),
		fmtDur(r.Latencies.Mean()),
		fmtDur(r.Latencies.Quantile(0.50)),
		fmtDur(r.Latencies.Quantile(0.99)),
	}
	row = append(row, r.ExtraCols...)
	t.rows = append(t.rows, row)
}

// AddRow appends a raw row (for non-throughput tables).
func (t *Table) AddRow(cols ...string) { t.rows = append(t.rows, cols) }

// Fprint writes the aligned table.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cols []string) string {
		var sb strings.Builder
		for i, c := range cols {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		return strings.TrimRight(sb.String(), " ")
	}
	fmt.Fprintln(w, line(t.header))
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintln(w, line(sep))
	for _, row := range t.rows {
		fmt.Fprintln(w, line(row))
	}
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// SortResults orders results by name (stable output for docs).
func SortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Name < rs[j].Name })
}
