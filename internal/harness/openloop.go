package harness

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cidr09/unbundled/internal/base"
)

// Open-loop load generation. A closed loop (Run) measures how fast the
// system can go when every client politely waits its turn — it can never
// observe queueing collapse, because a slow system slows its own load
// down. An open loop offers transactions on a fixed arrival schedule
// regardless of how the system is doing, the way real traffic does:
// arrival i is due at start + i/rate, a free client claims it (sleeping
// until it is due), and latency is measured from the *scheduled* arrival,
// not from when a client got around to it — so queueing delay counts
// against the system instead of being silently omitted (the wrk2
// "coordinated omission" correction).

// Load describes one open-loop run.
type Load struct {
	// Name labels the result row.
	Name string
	// Rate is the offered arrival rate, transactions per second.
	Rate int
	// Clients is the number of concurrent executor goroutines (default
	// 64). With all clients busy, due arrivals queue — and their queueing
	// delay is measured, not omitted.
	Clients int
	// Duration is the total offered window.
	Duration time.Duration
	// Warmup excludes the leading slice of the window from the report
	// (caches fill, pools warm, connections establish).
	Warmup time.Duration
	// Workload executes one transaction; seq is the global arrival index
	// (drivers derive keys from it). An error marks the transaction
	// failed.
	Workload func(ctx context.Context, seq int) error
}

// RunOpenLoop offers l.Rate transactions per second for l.Duration and
// returns the measured Result: completed txns, errors (overload refusals
// that surfaced counted separately), and latency quantiles against the
// arrival schedule. The window closes hard at l.Duration: arrivals a
// saturated system has queued but not finished by then are abandoned
// unreported, so throughput is what actually completed inside the window —
// a system that falls behind its offered rate shows it as tps < rate, not
// as a silently stretched run. Cancelling ctx stops the run early; the
// Result covers what was measured up to then. Retries absorbed inside the
// stack are invisible here — drivers populate Result.Retries/Overloads
// from component counters when they want them reported.
func RunOpenLoop(ctx context.Context, l Load) Result {
	if l.Clients <= 0 {
		l.Clients = 64
	}
	interval := float64(time.Second) / float64(l.Rate)
	var txns, errs, overloads atomic.Uint64
	h := NewHistogram()
	start := time.Now()
	measuredFrom := start.Add(l.Warmup)
	deadline := start.Add(l.Duration)
	runCtx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()
	var seq atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < l.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for runCtx.Err() == nil {
				i := seq.Add(1) - 1
				due := start.Add(time.Duration(float64(i) * interval))
				if due.After(deadline) {
					return
				}
				if wait := time.Until(due); wait > 0 {
					timer := time.NewTimer(wait)
					select {
					case <-timer.C:
					case <-runCtx.Done():
						timer.Stop()
						return
					}
				}
				err := l.Workload(runCtx, int(i))
				if err != nil && runCtx.Err() != nil {
					return // window closed mid-flight: arrival unreported
				}
				// Warmup is classified by completion time: everything that
				// finished during the leading slice is unreported. (Not by
				// scheduled time — under saturation the backlog means the
				// steady state is still completing early-due arrivals, and
				// due-based classification would discard the whole window.)
				if time.Now().Before(measuredFrom) {
					continue
				}
				if err != nil {
					if errors.Is(err, base.ErrOverloaded) {
						overloads.Add(1)
					}
					errs.Add(1)
					continue
				}
				h.Observe(time.Since(due))
				txns.Add(1)
			}
		}()
	}
	wg.Wait()
	end := time.Now()
	if end.After(deadline) {
		end = deadline
	}
	elapsed := end.Sub(measuredFrom)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return Result{Name: l.Name, Txns: txns.Load(), Errors: errs.Load(),
		Overloads: overloads.Load(), Elapsed: elapsed, Latencies: h}
}
