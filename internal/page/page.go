// Package page implements the DC's slotted pages. A page carries:
//
//   - per-TC abstract LSNs (ablsn.Table) recording which TC operations are
//     reflected in the page state (§5.1.2, §6.1.1);
//   - a dLSN recording which DC system transactions (structure
//     modifications) are reflected (§5.2.2) — the monolithic baseline
//     reuses this field as the classic page LSN;
//   - records tagged with their owning TC (§6.1.2 uses this to reset a
//     failed TC's records without disturbing other TCs), optionally
//     holding a before version for read-committed sharing (§6.2.2).
//
// How records map to pages is known only to the DC and never revealed to
// the TC (§4.1.2).
package page

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/cidr09/unbundled/internal/ablsn"
	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/latch"
)

// Record flags.
const (
	// FlagHasBefore marks an uncommitted later version with a retained
	// before version (§6.2.2).
	FlagHasBefore uint8 = 1 << iota
	// FlagBeforeNull marks the before version as "null" (versioned insert:
	// a before null version followed by the intended insert).
	FlagBeforeNull
	// FlagTombstone marks the latest version as a deletion.
	FlagTombstone
	// FlagHasTS is an encoding marker: the serialized record carries the
	// timestamp group (TS, BeforeTS, history). It is set at encode time
	// and stripped at decode time, never held in Record.Flags in memory,
	// so records without timestamps stay byte-identical to the
	// pre-snapshot format.
	FlagHasTS
)

// Version is one reclaimable committed version in a record's history: the
// value that was current from TS until the next version's commit
// timestamp. Del marks a committed tombstone (the key did not exist in
// that interval). Hist is ascending by TS; entries below the GC horizon
// are pruned (PruneVersions).
type Version struct {
	TS  base.TS
	Val []byte
	Del bool
}

// Record is one record slot. Value is the latest version; Before the
// retained committed version when FlagHasBefore is set. TS is the commit
// timestamp of Value (zero: unversioned/ancient, visible to every
// snapshot); BeforeTS the commit timestamp of Before while a versioned
// write is in flight; Hist holds older committed versions for snapshot
// reads.
type Record struct {
	Key      string
	Owner    base.TCID
	Flags    uint8
	Value    []byte
	Before   []byte
	TS       base.TS
	BeforeTS base.TS
	Hist     []Version
}

// HasBefore reports whether an uncommitted later version exists.
func (r *Record) HasBefore() bool { return r.Flags&FlagHasBefore != 0 }

// BeforeNull reports whether the before version is the null version.
func (r *Record) BeforeNull() bool { return r.Flags&FlagBeforeNull != 0 }

// Tombstone reports whether the latest version is a deletion marker.
func (r *Record) Tombstone() bool { return r.Flags&FlagTombstone != 0 }

// ReadVersion returns the value visible under flavor and whether a value
// is visible at all.
func (r *Record) ReadVersion(flavor base.ReadFlavor) (val []byte, visible bool) {
	switch flavor {
	case base.ReadCommitted:
		if r.HasBefore() {
			if r.BeforeNull() {
				return nil, false
			}
			return r.Before, true
		}
		if r.Tombstone() {
			return nil, false
		}
		return r.Value, true
	default: // plain and dirty both see the latest version
		if r.Tombstone() {
			return nil, false
		}
		return r.Value, true
	}
}

// VersionAt returns the value committed at snapshot timestamp t: the
// newest committed version with commit TS <= t. An in-flight versioned
// write is never visible (the retained before version and history carry
// the committed state); a tombstone or null version at t reads as "not
// found". TS zero versions (unversioned/ancient data) are visible to
// every snapshot.
func (r *Record) VersionAt(t base.TS) (val []byte, visible bool) {
	if r.HasBefore() {
		if r.BeforeTS <= t {
			if r.BeforeNull() {
				return nil, false
			}
			return r.Before, true
		}
	} else if r.TS <= t {
		if r.Tombstone() {
			return nil, false
		}
		return r.Value, true
	}
	for i := len(r.Hist) - 1; i >= 0; i-- {
		if r.Hist[i].TS <= t {
			if r.Hist[i].Del {
				return nil, false
			}
			return r.Hist[i].Val, true
		}
	}
	return nil, false
}

// CommitVersion finalizes the uncommitted version (§6.2.2) with no commit
// timestamp: the before version is eliminated, making the later version
// the committed one. It reports whether the record should be removed from
// the page (a committed tombstone). Timestamped commits use
// CommitVersionAt, which retains the before version for snapshots.
func (r *Record) CommitVersion() (remove bool) {
	if !r.HasBefore() {
		// Already finalized (idempotent replays are filtered by abstract
		// LSNs; this is for robustness).
		return r.Tombstone()
	}
	if r.Tombstone() {
		return true
	}
	r.Flags &^= FlagHasBefore | FlagBeforeNull
	r.Before = nil
	r.BeforeTS = 0
	return false
}

// CommitVersionAt finalizes the uncommitted version at commit timestamp c:
// the before version — committed until this instant — moves into the
// record's history so snapshots below c keep resolving, and the later
// version becomes the committed one stamped c. A committed tombstone is
// retained (not removed) until the GC horizon passes it, so snapshots
// below the deletion still see the prior value. It reports whether the
// record is immediately reclaimable. horizon prunes history in passing.
func (r *Record) CommitVersionAt(c, horizon base.TS) (remove bool) {
	if c == 0 {
		return r.CommitVersion()
	}
	if !r.HasBefore() {
		// Already finalized; reclaim a tombstone only once no snapshot can
		// see below it.
		return r.PruneVersions(horizon)
	}
	switch {
	case r.BeforeNull() && r.BeforeTS != 0:
		// The before version was a committed tombstone (insert after a
		// versioned delete): keep the deletion visible below c.
		r.Hist = append(r.Hist, Version{TS: r.BeforeTS, Del: true})
	case !r.BeforeNull():
		r.Hist = append(r.Hist, Version{TS: r.BeforeTS, Val: r.Before})
	}
	r.Flags &^= FlagHasBefore | FlagBeforeNull
	r.Before = nil
	r.BeforeTS = 0
	r.TS = c
	return r.PruneVersions(horizon)
}

// AbortVersion rolls back the uncommitted version: the latest version is
// removed and the before version (value or tombstone) restored with its
// commit timestamp. It reports whether the record should be removed (a
// versioned insert of a never-existing key rolled back).
func (r *Record) AbortVersion() (remove bool) {
	if !r.HasBefore() {
		return false
	}
	if r.BeforeNull() {
		if r.BeforeTS == 0 && len(r.Hist) == 0 {
			return true
		}
		// The before version was a committed tombstone: restore it.
		r.Value = nil
		r.Before = nil
		r.TS = r.BeforeTS
		r.BeforeTS = 0
		r.Flags = (r.Flags &^ (FlagHasBefore | FlagBeforeNull)) | FlagTombstone
		return false
	}
	r.Value = r.Before
	r.Before = nil
	r.TS = r.BeforeTS
	r.BeforeTS = 0
	r.Flags &^= FlagHasBefore | FlagBeforeNull | FlagTombstone
	return false
}

// PruneVersions discards history no snapshot can reach, given that no
// live or future snapshot reads below horizon: everything older than the
// newest committed version at or below horizon. It reports whether the
// whole record is reclaimable (a committed, timestamped tombstone at or
// below the horizon with no retained history).
func (r *Record) PruneVersions(horizon base.TS) (remove bool) {
	if horizon == 0 {
		return false
	}
	cur := r.TS
	if r.HasBefore() {
		cur = r.BeforeTS
	}
	if cur <= horizon {
		// The current committed version already covers every reachable
		// snapshot; the whole history is unreachable.
		r.Hist = nil
	} else if n := len(r.Hist); n > 0 {
		idx := -1
		for i := n - 1; i >= 0; i-- {
			if r.Hist[i].TS <= horizon {
				idx = i
				break
			}
		}
		if idx >= 0 && r.Hist[idx].Del {
			// A tombstone at the horizon boundary resolves identically to
			// "no version": drop it too.
			idx++
		}
		if idx > 0 {
			r.Hist = append(r.Hist[:0:0], r.Hist[idx:]...)
		}
	}
	return !r.HasBefore() && r.Tombstone() && r.TS != 0 && r.TS <= horizon && len(r.Hist) == 0
}

// size returns the serialized footprint of the record.
func (r *Record) size() int {
	n := 8 + len(r.Key) + len(r.Value) + len(r.Before)
	if r.TS != 0 || r.BeforeTS != 0 || len(r.Hist) > 0 {
		n += 20
		for i := range r.Hist {
			n += 12 + len(r.Hist[i].Val)
		}
	}
	return n
}

// Page is one DC page: either a leaf holding records or a branch holding
// separator keys and children. The latch makes individual logical
// operations atomic under DC multi-threading (§4.1.2(1)).
//
// Volatile bookkeeping fields (Dirty, FirstDirty, RecDLSN) are maintained
// by the buffer pool and never serialized.
type Page struct {
	L latch.Latch

	ID   base.PageID
	Leaf bool
	// DLSN is the DC system-transaction stamp (§5.2.2); the monolith uses
	// it as the traditional page LSN.
	DLSN base.DLSN
	// Next links leaves left-to-right for range scans.
	Next base.PageID
	// Ab holds the per-TC abstract LSNs (§5.1.2, §6.1.1).
	Ab ablsn.Table

	// Leaf payload, sorted by Key.
	Recs []Record

	// Branch payload: Keys separate Children; len(Children) == len(Keys)+1.
	// Child i holds keys < Keys[i]; the last child holds the rest.
	Keys     []string
	Children []base.PageID

	// Dirty is set while the cached page differs from its stable version.
	Dirty bool
	// FirstDirty records, per TC, the first operation LSN applied since
	// the page was last made stable; the checkpoint protocol flushes pages
	// whose FirstDirty lies below the proposed redo scan start point.
	FirstDirty map[base.TCID]base.LSN
	// RecDLSN is the earliest DC-log record that dirtied this page since
	// the last flush; the buffer pool forces the DC-log this far before
	// writing the page (write-ahead logging for system transactions).
	RecDLSN base.DLSN
}

// NewLeaf returns an empty leaf page.
func NewLeaf(id base.PageID) *Page { return &Page{ID: id, Leaf: true} }

// NewBranch returns a branch page over the given children.
func NewBranch(id base.PageID, keys []string, children []base.PageID) *Page {
	return &Page{ID: id, Keys: keys, Children: children}
}

// find returns the index of key and whether it is present.
func (p *Page) find(key string) (int, bool) {
	i := sort.Search(len(p.Recs), func(i int) bool { return p.Recs[i].Key >= key })
	return i, i < len(p.Recs) && p.Recs[i].Key == key
}

// Get returns the record for key, or nil.
func (p *Page) Get(key string) *Record {
	if i, ok := p.find(key); ok {
		return &p.Recs[i]
	}
	return nil
}

// Put inserts or replaces the record, keeping sort order.
func (p *Page) Put(rec Record) {
	i, ok := p.find(rec.Key)
	if ok {
		p.Recs[i] = rec
		return
	}
	p.Recs = append(p.Recs, Record{})
	copy(p.Recs[i+1:], p.Recs[i:])
	p.Recs[i] = rec
}

// Remove deletes the record for key; it reports whether it was present.
func (p *Page) Remove(key string) bool {
	i, ok := p.find(key)
	if !ok {
		return false
	}
	p.Recs = append(p.Recs[:i], p.Recs[i+1:]...)
	return true
}

// Ascend calls fn for records with from <= Key < to (to == "" means
// unbounded) in key order; fn returns false to stop. It reports whether
// iteration was stopped early.
func (p *Page) Ascend(from, to string, fn func(*Record) bool) bool {
	i := sort.Search(len(p.Recs), func(i int) bool { return p.Recs[i].Key >= from })
	for ; i < len(p.Recs); i++ {
		if to != "" && p.Recs[i].Key >= to {
			return false
		}
		if !fn(&p.Recs[i]) {
			return true
		}
	}
	return false
}

// ChildFor returns the child page that covers key (branch pages).
func (p *Page) ChildFor(key string) base.PageID {
	i := sort.Search(len(p.Keys), func(i int) bool { return key < p.Keys[i] })
	return p.Children[i]
}

// ChildIndex returns the slot of child id, or -1.
func (p *Page) ChildIndex(id base.PageID) int {
	for i, c := range p.Children {
		if c == id {
			return i
		}
	}
	return -1
}

// InsertSep inserts separator key with newChild to the right of child at
// index idx (branch pages; used by splits).
func (p *Page) InsertSep(idx int, key string, newChild base.PageID) {
	p.Keys = append(p.Keys, "")
	copy(p.Keys[idx+1:], p.Keys[idx:])
	p.Keys[idx] = key
	p.Children = append(p.Children, 0)
	copy(p.Children[idx+2:], p.Children[idx+1:])
	p.Children[idx+1] = newChild
}

// RemoveSep removes the separator at index i and the child to its right
// (used by consolidation).
func (p *Page) RemoveSep(i int) {
	p.Keys = append(p.Keys[:i], p.Keys[i+1:]...)
	p.Children = append(p.Children[:i+1], p.Children[i+2:]...)
}

// Size estimates the serialized size in bytes (split/consolidate
// decisions).
func (p *Page) Size() int {
	n := 32 + p.Ab.EncodedSize()
	if p.Leaf {
		for i := range p.Recs {
			n += p.Recs[i].size()
		}
		return n
	}
	for _, k := range p.Keys {
		n += len(k) + 6
	}
	n += 5 * len(p.Children)
	return n
}

// SplitLeaf moves the upper half of the records onto right and returns the
// split key (the smallest key that moved). The right page inherits a copy
// of the full abstract-LSN table: an abLSN claim is only ever tested for
// keys that route to the page, so over-claiming for keys that stayed left
// is harmless and preserves idempotence for the moved records (§5.2.2).
func (p *Page) SplitLeaf(right *Page) (splitKey string) {
	mid := len(p.Recs) / 2
	splitKey = p.Recs[mid].Key
	right.Recs = append(right.Recs[:0], p.Recs[mid:]...)
	p.Recs = p.Recs[:mid:mid] // clip capacity so right's records stay unaliased
	right.Ab = *p.Ab.Clone()
	right.Next = p.Next
	p.Next = right.ID
	return splitKey
}

// SplitBranch moves the upper half of separators/children onto right and
// returns the key to push up into the parent.
func (p *Page) SplitBranch(right *Page) (pushKey string) {
	mid := len(p.Keys) / 2
	pushKey = p.Keys[mid]
	right.Keys = append(right.Keys[:0], p.Keys[mid+1:]...)
	right.Children = append(right.Children[:0], p.Children[mid+1:]...)
	p.Keys = p.Keys[:mid:mid]
	p.Children = p.Children[: mid+1 : mid+1]
	return pushKey
}

// AbsorbLeaf merges right's records into p (consolidation, §5.2.2): p
// inherits right's key range, sibling link, and the per-TC maximum of the
// two abstract-LSN tables.
func (p *Page) AbsorbLeaf(right *Page) {
	p.Recs = append(p.Recs, right.Recs...)
	p.Next = right.Next
	p.Ab.MergeMax(&right.Ab)
	if right.DLSN > p.DLSN {
		p.DLSN = right.DLSN
	}
}

// Clone returns a deep copy of the page (no volatile bookkeeping, no latch
// state).
func (p *Page) Clone() *Page {
	c := &Page{ID: p.ID, Leaf: p.Leaf, DLSN: p.DLSN, Next: p.Next, Ab: *p.Ab.Clone()}
	if p.Leaf {
		c.Recs = make([]Record, len(p.Recs))
		copy(c.Recs, p.Recs)
		for i := range c.Recs {
			c.Recs[i].Value = append([]byte(nil), p.Recs[i].Value...)
			if p.Recs[i].Before != nil {
				c.Recs[i].Before = append([]byte(nil), p.Recs[i].Before...)
			} else {
				c.Recs[i].Before = nil
			}
			if len(c.Recs[i].Value) == 0 {
				c.Recs[i].Value = nil
			}
			if len(p.Recs[i].Hist) > 0 {
				h := make([]Version, len(p.Recs[i].Hist))
				copy(h, p.Recs[i].Hist)
				for j := range h {
					if h[j].Val != nil {
						h[j].Val = append([]byte(nil), h[j].Val...)
					}
				}
				c.Recs[i].Hist = h
			}
		}
		return c
	}
	c.Keys = append([]string(nil), p.Keys...)
	c.Children = append([]base.PageID(nil), p.Children...)
	return c
}

// Encode serializes the page (stable format: used both for disk writes and
// for physical DC-log images).
func (p *Page) Encode() []byte {
	buf := make([]byte, 0, p.Size())
	buf = binary.AppendUvarint(buf, uint64(p.ID))
	if p.Leaf {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(p.DLSN))
	buf = binary.AppendUvarint(buf, uint64(p.Next))
	buf = p.Ab.Append(buf)
	if p.Leaf {
		buf = binary.AppendUvarint(buf, uint64(len(p.Recs)))
		for i := range p.Recs {
			r := &p.Recs[i]
			buf = binary.AppendUvarint(buf, uint64(len(r.Key)))
			buf = append(buf, r.Key...)
			buf = binary.AppendUvarint(buf, uint64(r.Owner))
			hasTS := r.TS != 0 || r.BeforeTS != 0 || len(r.Hist) > 0
			flags := r.Flags
			if hasTS {
				flags |= FlagHasTS
			}
			buf = append(buf, flags)
			buf = binary.AppendUvarint(buf, uint64(len(r.Value)))
			buf = append(buf, r.Value...)
			buf = binary.AppendUvarint(buf, uint64(len(r.Before)))
			buf = append(buf, r.Before...)
			if hasTS {
				buf = binary.AppendUvarint(buf, uint64(r.TS))
				buf = binary.AppendUvarint(buf, uint64(r.BeforeTS))
				buf = binary.AppendUvarint(buf, uint64(len(r.Hist)))
				for j := range r.Hist {
					v := &r.Hist[j]
					buf = binary.AppendUvarint(buf, uint64(v.TS))
					if v.Del {
						buf = append(buf, 1)
					} else {
						buf = append(buf, 0)
					}
					buf = binary.AppendUvarint(buf, uint64(len(v.Val)))
					buf = append(buf, v.Val...)
				}
			}
		}
		return buf
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.Keys)))
	for _, k := range p.Keys {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.Children)))
	for _, c := range p.Children {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	return buf
}

// Decode parses a page previously produced by Encode.
func Decode(data []byte) (*Page, error) {
	d := decoder{buf: data}
	p := &Page{}
	p.ID = base.PageID(d.uvarint())
	p.Leaf = d.byte() != 0
	p.DLSN = base.DLSN(d.uvarint())
	p.Next = base.PageID(d.uvarint())
	if d.err == nil {
		tab, rest, err := ablsn.DecodeTable(d.buf)
		if err != nil {
			return nil, err
		}
		p.Ab = *tab
		d.buf = rest
	}
	if p.Leaf {
		n := d.uvarint()
		if d.err == nil && n > uint64(len(d.buf)) {
			return nil, errCorrupt
		}
		if d.err == nil && n > 0 {
			p.Recs = make([]Record, n)
			for i := range p.Recs {
				r := &p.Recs[i]
				r.Key = d.str()
				r.Owner = base.TCID(d.uvarint())
				r.Flags = d.byte()
				r.Value = d.bytes()
				r.Before = d.bytes()
				if r.Flags&FlagHasTS != 0 {
					r.Flags &^= FlagHasTS
					r.TS = base.TS(d.uvarint())
					r.BeforeTS = base.TS(d.uvarint())
					hn := d.uvarint()
					if d.err == nil && hn > uint64(len(d.buf)) {
						return nil, errCorrupt
					}
					if d.err == nil && hn > 0 {
						r.Hist = make([]Version, hn)
						for j := range r.Hist {
							r.Hist[j].TS = base.TS(d.uvarint())
							r.Hist[j].Del = d.byte() != 0
							r.Hist[j].Val = d.bytes()
						}
					}
				}
			}
		}
	} else {
		n := d.uvarint()
		if d.err == nil && n > uint64(len(d.buf)) {
			return nil, errCorrupt
		}
		if d.err == nil && n > 0 {
			p.Keys = make([]string, n)
			for i := range p.Keys {
				p.Keys[i] = d.str()
			}
		}
		n = d.uvarint()
		if d.err == nil && n > uint64(len(d.buf))+1 {
			return nil, errCorrupt
		}
		if d.err == nil && n > 0 {
			p.Children = make([]base.PageID, n)
			for i := range p.Children {
				p.Children[i] = base.PageID(d.uvarint())
			}
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return p, nil
}

var errCorrupt = fmt.Errorf("page: corrupt encoding")

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	u, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = errCorrupt
		return 0
	}
	d.buf = d.buf[n:]
	return u
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 1 {
		d.err = errCorrupt
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.buf)) {
		d.err = errCorrupt
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.buf)) {
		d.err = errCorrupt
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[:n])
	d.buf = d.buf[n:]
	return out
}

// Equal reports deep equality of page contents (test helper; ignores
// volatile bookkeeping).
func (p *Page) Equal(q *Page) bool {
	return bytes.Equal(p.Encode(), q.Encode())
}
