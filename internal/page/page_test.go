package page

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/cidr09/unbundled/internal/base"
)

func leafWith(keys ...string) *Page {
	p := NewLeaf(1)
	for _, k := range keys {
		p.Put(Record{Key: k, Owner: 1, Value: []byte("v" + k)})
	}
	return p
}

func TestPutGetRemoveSorted(t *testing.T) {
	p := NewLeaf(1)
	for _, k := range []string{"m", "a", "z", "c"} {
		p.Put(Record{Key: k, Value: []byte(k)})
	}
	if !sort.SliceIsSorted(p.Recs, func(i, j int) bool { return p.Recs[i].Key < p.Recs[j].Key }) {
		t.Fatalf("records unsorted: %v", keysOf(p))
	}
	if r := p.Get("c"); r == nil || string(r.Value) != "c" {
		t.Fatalf("Get(c) = %+v", r)
	}
	if p.Get("q") != nil {
		t.Fatal("phantom record")
	}
	p.Put(Record{Key: "c", Value: []byte("c2")}) // replace
	if got := len(p.Recs); got != 4 {
		t.Fatalf("replace grew page: %d", got)
	}
	if string(p.Get("c").Value) != "c2" {
		t.Fatal("replace did not take")
	}
	if !p.Remove("a") || p.Remove("a") {
		t.Fatal("remove semantics wrong")
	}
	if len(p.Recs) != 3 {
		t.Fatalf("len = %d", len(p.Recs))
	}
}

func TestAscend(t *testing.T) {
	p := leafWith("a", "b", "c", "d", "e")
	var got []string
	p.Ascend("b", "e", func(r *Record) bool { got = append(got, r.Key); return true })
	want := []string{"b", "c", "d"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("ascend = %v want %v", got, want)
	}
	got = nil
	p.Ascend("c", "", func(r *Record) bool { got = append(got, r.Key); return true })
	if fmt.Sprint(got) != fmt.Sprint([]string{"c", "d", "e"}) {
		t.Fatalf("open ascend = %v", got)
	}
	// early stop
	got = nil
	stopped := p.Ascend("a", "", func(r *Record) bool { got = append(got, r.Key); return len(got) < 2 })
	if !stopped || len(got) != 2 {
		t.Fatalf("stop: %v %v", stopped, got)
	}
}

func TestVersionLifecycle(t *testing.T) {
	// Versioned update: before retained, committed read sees before,
	// plain/dirty sees latest; commit discards before; abort restores it.
	r := Record{Key: "k", Owner: 1, Value: []byte("old")}
	r.Before = r.Value
	r.Value = []byte("new")
	r.Flags |= FlagHasBefore

	if v, ok := r.ReadVersion(base.ReadCommitted); !ok || string(v) != "old" {
		t.Fatalf("committed read = %q %v", v, ok)
	}
	if v, ok := r.ReadVersion(base.ReadDirty); !ok || string(v) != "new" {
		t.Fatalf("dirty read = %q %v", v, ok)
	}
	abort := r // copy
	if remove := abort.AbortVersion(); remove {
		t.Fatal("abort of update must keep the record")
	}
	if v, _ := abort.ReadVersion(base.ReadPlain); string(v) != "old" {
		t.Fatalf("after abort value = %q", v)
	}
	if remove := r.CommitVersion(); remove {
		t.Fatal("commit of update must keep the record")
	}
	if v, _ := r.ReadVersion(base.ReadCommitted); string(v) != "new" {
		t.Fatalf("after commit committed read = %q", v)
	}
}

func TestVersionedInsertAndDelete(t *testing.T) {
	// Versioned insert: null before version, then the intended insert.
	ins := Record{Key: "k", Owner: 2, Value: []byte("v"), Flags: FlagHasBefore | FlagBeforeNull}
	if _, ok := ins.ReadVersion(base.ReadCommitted); ok {
		t.Fatal("committed read must not see uncommitted insert")
	}
	if v, ok := ins.ReadVersion(base.ReadDirty); !ok || string(v) != "v" {
		t.Fatalf("dirty read = %q %v", v, ok)
	}
	abortIns := ins
	if !abortIns.AbortVersion() {
		t.Fatal("aborted insert must remove the record")
	}
	if ins.CommitVersion() {
		t.Fatal("committed insert must keep the record")
	}
	if v, ok := ins.ReadVersion(base.ReadCommitted); !ok || string(v) != "v" {
		t.Fatalf("after commit = %q %v", v, ok)
	}

	// Versioned delete: tombstone latest, before retained.
	del := Record{Key: "d", Owner: 2, Value: nil, Before: []byte("was"),
		Flags: FlagHasBefore | FlagTombstone}
	if v, ok := del.ReadVersion(base.ReadCommitted); !ok || string(v) != "was" {
		t.Fatalf("committed read of tombstoned = %q %v", v, ok)
	}
	if _, ok := del.ReadVersion(base.ReadPlain); ok {
		t.Fatal("plain read must see the tombstone")
	}
	commitDel := del
	if !commitDel.CommitVersion() {
		t.Fatal("committed delete must remove the record")
	}
	abortDel := del
	if abortDel.AbortVersion() {
		t.Fatal("aborted delete must keep the record")
	}
	if v, _ := abortDel.ReadVersion(base.ReadPlain); string(v) != "was" {
		t.Fatalf("after aborted delete = %q", v)
	}
}

func TestSplitLeaf(t *testing.T) {
	p := leafWith("a", "b", "c", "d", "e", "f")
	p.Next = 99
	p.Ab.Ensure(1).Add(7)
	right := NewLeaf(2)
	splitKey := p.SplitLeaf(right)
	if splitKey != "d" {
		t.Fatalf("splitKey = %q", splitKey)
	}
	if fmt.Sprint(keysOf(p)) != fmt.Sprint([]string{"a", "b", "c"}) {
		t.Fatalf("left = %v", keysOf(p))
	}
	if fmt.Sprint(keysOf(right)) != fmt.Sprint([]string{"d", "e", "f"}) {
		t.Fatalf("right = %v", keysOf(right))
	}
	if p.Next != 2 || right.Next != 99 {
		t.Fatalf("sibling chain: %d %d", p.Next, right.Next)
	}
	// Right inherits the abstract LSN claims (§5.2.2).
	if !right.Ab.Contains(1, 7) {
		t.Fatal("right page lost abLSN claims")
	}
	// Left mutations must not alias right.
	p.Put(Record{Key: "aa", Value: []byte("x")})
	if right.Recs[0].Key != "d" {
		t.Fatal("aliasing between split halves")
	}
}

func TestSplitBranch(t *testing.T) {
	p := NewBranch(1, []string{"b", "d", "f", "h"}, []base.PageID{10, 20, 30, 40, 50})
	right := NewBranch(2, nil, nil)
	push := p.SplitBranch(right)
	if push != "f" {
		t.Fatalf("push = %q", push)
	}
	if fmt.Sprint(p.Keys) != fmt.Sprint([]string{"b", "d"}) ||
		fmt.Sprint(p.Children) != fmt.Sprint([]base.PageID{10, 20, 30}) {
		t.Fatalf("left: %v %v", p.Keys, p.Children)
	}
	if fmt.Sprint(right.Keys) != fmt.Sprint([]string{"h"}) ||
		fmt.Sprint(right.Children) != fmt.Sprint([]base.PageID{40, 50}) {
		t.Fatalf("right: %v %v", right.Keys, right.Children)
	}
	// Routing stays correct: keys < push go left, >= push go right.
	if p.ChildFor("e") != 30 || right.ChildFor("g") != 40 || right.ChildFor("z") != 50 {
		t.Fatal("routing after split broken")
	}
}

func TestAbsorbLeaf(t *testing.T) {
	l := leafWith("a", "b")
	r := leafWith("c", "d")
	r.ID = 2
	r.Next = 42
	l.Next = 2
	l.Ab.Ensure(1).Add(3)
	r.Ab.Ensure(1).Add(9)
	r.Ab.Ensure(2).Add(5)
	r.DLSN = 7
	l.AbsorbLeaf(r)
	if fmt.Sprint(keysOf(l)) != fmt.Sprint([]string{"a", "b", "c", "d"}) {
		t.Fatalf("absorb = %v", keysOf(l))
	}
	if l.Next != 42 {
		t.Fatalf("next = %d", l.Next)
	}
	if !l.Ab.Contains(1, 3) || !l.Ab.Contains(1, 9) || !l.Ab.Contains(2, 5) {
		t.Fatal("merged abLSN lost claims")
	}
	if l.DLSN != 7 {
		t.Fatalf("DLSN = %d (must take max)", l.DLSN)
	}
}

func TestBranchSepOps(t *testing.T) {
	p := NewBranch(1, []string{"m"}, []base.PageID{10, 20})
	p.InsertSep(0, "g", 15) // splits child 10 at "g" -> new child 15
	if fmt.Sprint(p.Keys) != fmt.Sprint([]string{"g", "m"}) ||
		fmt.Sprint(p.Children) != fmt.Sprint([]base.PageID{10, 15, 20}) {
		t.Fatalf("after insert: %v %v", p.Keys, p.Children)
	}
	if p.ChildFor("a") != 10 || p.ChildFor("h") != 15 || p.ChildFor("x") != 20 {
		t.Fatal("routing broken")
	}
	if p.ChildIndex(15) != 1 || p.ChildIndex(99) != -1 {
		t.Fatal("ChildIndex broken")
	}
	p.RemoveSep(0) // consolidates child 15 into 10
	if fmt.Sprint(p.Keys) != fmt.Sprint([]string{"m"}) ||
		fmt.Sprint(p.Children) != fmt.Sprint([]base.PageID{10, 20}) {
		t.Fatalf("after remove: %v %v", p.Keys, p.Children)
	}
}

func TestEncodeDecodeRoundTripLeaf(t *testing.T) {
	p := NewLeaf(7)
	p.DLSN = 12
	p.Next = 8
	p.Ab.Ensure(1).Add(100)
	p.Ab.Ensure(3).Add(5)
	p.Put(Record{Key: "a", Owner: 1, Value: []byte("va")})
	p.Put(Record{Key: "b", Owner: 3, Flags: FlagHasBefore, Value: []byte("new"), Before: []byte("old")})
	p.Put(Record{Key: "c", Owner: 1, Flags: FlagHasBefore | FlagBeforeNull, Value: []byte("ins")})

	got, err := Decode(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(got) {
		t.Fatalf("roundtrip mismatch:\n in=%+v\nout=%+v", p, got)
	}
	if got.DLSN != 12 || got.Next != 8 || !got.Ab.Contains(1, 100) || !got.Ab.Contains(3, 5) {
		t.Fatal("header fields lost")
	}
	if r := got.Get("b"); r == nil || !r.HasBefore() || string(r.Before) != "old" {
		t.Fatalf("version fields lost: %+v", r)
	}
}

func TestEncodeDecodeRoundTripBranch(t *testing.T) {
	p := NewBranch(9, []string{"g", "m"}, []base.PageID{1, 2, 3})
	p.DLSN = 4
	got, err := Decode(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(got) || got.Leaf {
		t.Fatalf("branch roundtrip mismatch")
	}
	if got.ChildFor("h") != 2 {
		t.Fatal("routing lost")
	}
}

func TestDecodeTruncated(t *testing.T) {
	p := leafWith("a", "b", "c")
	p.Ab.Ensure(1).Add(5)
	buf := p.Encode()
	for i := 0; i < len(buf); i++ {
		if _, err := Decode(buf[:i]); err == nil {
			t.Fatalf("truncation at %d undetected", i)
		}
	}
}

func TestQuickEncodeRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rnd := rand.New(rand.NewSource(seed))
		p := NewLeaf(base.PageID(rnd.Uint32() | 1))
		p.DLSN = base.DLSN(rnd.Uint64() >> 16)
		used := map[string]bool{}
		for i := 0; i < int(n%24); i++ {
			k := fmt.Sprintf("k%03d", rnd.Intn(200))
			if used[k] {
				continue
			}
			used[k] = true
			rec := Record{Key: k, Owner: base.TCID(rnd.Intn(4)), Flags: uint8(rnd.Intn(8))}
			if rnd.Intn(4) > 0 {
				rec.Value = []byte(fmt.Sprintf("v%d", rnd.Intn(1000)))
			}
			if rec.Flags&FlagHasBefore != 0 && rec.Flags&FlagBeforeNull == 0 {
				rec.Before = []byte("b")
			}
			p.Put(rec)
			p.Ab.Ensure(rec.Owner).Add(base.LSN(i + 1))
		}
		got, err := Decode(p.Encode())
		return err == nil && p.Equal(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneDeep(t *testing.T) {
	p := leafWith("a")
	p.Recs[0].Before = []byte("b")
	p.Recs[0].Flags = FlagHasBefore
	p.Ab.Ensure(1).Add(4)
	c := p.Clone()
	c.Recs[0].Value[0] = 'Z'
	c.Ab.Ensure(1).Add(9)
	c.Recs[0].Before[0] = 'X'
	if string(p.Recs[0].Value) != "va" || string(p.Recs[0].Before) != "b" || p.Ab.Contains(1, 9) {
		t.Fatal("clone aliases original")
	}
}

func TestSizeGrowsWithPayload(t *testing.T) {
	p := NewLeaf(1)
	s0 := p.Size()
	p.Put(Record{Key: "k", Value: bytes.Repeat([]byte("x"), 100)})
	if p.Size() <= s0+100 {
		t.Fatalf("size did not grow: %d -> %d", s0, p.Size())
	}
	// Size should approximate encoded length (within fixed overhead).
	enc := len(p.Encode())
	if p.Size() < enc/2 || p.Size() > enc*2+64 {
		t.Fatalf("size estimate %d far from encoded %d", p.Size(), enc)
	}
}

func keysOf(p *Page) []string {
	out := make([]string, len(p.Recs))
	for i := range p.Recs {
		out[i] = p.Recs[i].Key
	}
	return out
}

func BenchmarkEncodeLeaf(b *testing.B) {
	p := NewLeaf(1)
	for i := 0; i < 50; i++ {
		p.Put(Record{Key: fmt.Sprintf("key%04d", i), Owner: 1, Value: bytes.Repeat([]byte("v"), 64)})
	}
	p.Ab.Ensure(1).Add(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Encode()
	}
}

func BenchmarkDecodeLeaf(b *testing.B) {
	p := NewLeaf(1)
	for i := 0; i < 50; i++ {
		p.Put(Record{Key: fmt.Sprintf("key%04d", i), Owner: 1, Value: bytes.Repeat([]byte("v"), 64)})
	}
	buf := p.Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
