package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/cidr09/unbundled/internal/core"
	"github.com/cidr09/unbundled/internal/dc"
	"github.com/cidr09/unbundled/internal/dclog"
	"github.com/cidr09/unbundled/internal/harness"
	"github.com/cidr09/unbundled/internal/page"
	"github.com/cidr09/unbundled/internal/tc"
	"github.com/cidr09/unbundled/internal/wal"
	"github.com/cidr09/unbundled/internal/workload"
)

// E2 quantifies §5.1.2's space argument: abstract page LSNs versus the
// rejected per-record LSN alternative ("this is very expensive in the
// space required"), measured on the stable pages produced by a real
// workload, per page-sync strategy.
func E2(s Scale) *harness.Report {
	t := harness.NewReport()
	for _, strat := range []struct {
		name string
		cfg  dc.Config
	}{
		{"block", dc.Config{Strategy: 1}},
		{"full", dc.Config{Strategy: 2}},
		{"hybrid(8)", dc.Config{Strategy: 3, HybridMax: 8}},
	} {
		strat := strat
		dep, err := core.New(core.Options{TCs: 1, DCs: 1, Tables: []string{"kv"},
			DCConfig: func(int) dc.Config { return strat.cfg }})
		if err != nil {
			panic(err)
		}
		res := runKVUnbundled(strat.name, dep, s, 0.2)
		// Make every page stable and measure.
		if _, err := dep.TCs[0].Checkpoint(context.Background()); err != nil {
			panic(err)
		}
		st := dep.DCs[0].Pool().Stats()
		// Hypothetical per-record LSN cost: 8 bytes per record per flush.
		var recs, pages int
		for _, id := range dep.DCs[0].Store().IDs() {
			if data, ok := dep.DCs[0].Store().Read(id); ok {
				if pg, err := decodePage(data); err == nil && pg.leaf {
					pages++
					recs += pg.recs
				}
			}
		}
		abPerPage := "0"
		if st.Flushes > 0 {
			abPerPage = fmt.Sprintf("%.1f", float64(st.AbLSNBytes)/float64(st.Flushes))
		}
		hyp := "0"
		if pages > 0 {
			hyp = fmt.Sprintf("%.1f", float64(8*recs)/float64(pages))
		}
		res.Extra = []harness.Col{
			{Name: "pages", Value: fmt.Sprintf("%d", pages)},
			{Name: "page-bytes", Value: fmt.Sprintf("%d", st.PageBytes)},
			{Name: "abLSN-bytes", Value: fmt.Sprintf("%d", st.AbLSNBytes)},
			{Name: "abLSN/page", Value: abPerPage},
			{Name: "recLSN/page(hyp)", Value: hyp},
		}
		t.Add(res)
		dep.Close()
	}
	return t
}

// E5 reproduces §5.2.2: structure-modification recovery. It builds a tree
// through many splits and consolidations, reports the DC-log cost of the
// logical split records versus the physical consolidate records, then
// crashes the DC and measures recovery (DC-log replay before TC redo).
func E5(s Scale) *harness.Report {
	t := harness.NewReport()
	dep, err := core.New(core.Options{TCs: 1, DCs: 1, Tables: []string{"kv"},
		DCConfig: func(int) dc.Config { return dc.Config{PageBytes: 512} }})
	if err != nil {
		panic(err)
	}
	defer dep.Close()
	ctx := context.Background()
	client := dep.Client()
	tcx := dep.TCs[0]
	n := s.Keys
	res := harness.Run("smo-workload", 1, 1, func(int, int) error {
		for i := 0; i < n; i++ {
			if err := client.RunTxn(ctx, core.TxnOptions{}, func(x *tc.Txn) error {
				return x.Upsert("kv", workload.KVKey(i), make([]byte, s.ValueSize))
			}); err != nil {
				return err
			}
		}
		// Delete three quarters: drives consolidations.
		for i := 0; i < n; i++ {
			if i%4 == 0 {
				continue
			}
			if err := client.RunTxn(ctx, core.TxnOptions{}, func(x *tc.Txn) error {
				return x.Delete("kv", workload.KVKey(i))
			}); err != nil {
				return err
			}
		}
		return nil
	})
	res.Txns = uint64(n + 3*n/4)

	// DC-log byte accounting per record kind.
	var splitB, consB int
	for _, rec := range scanAll(dep.DCs[0].DCLog()) {
		switch rec.Kind {
		case dclog.KindSplit:
			splitB += len(rec.Payload)
		case dclog.KindConsolidate:
			consB += len(rec.Payload)
		}
	}
	splits, cons := dep.DCs[0].Tree("kv").Stats()

	dep.DCs[0].Crash()
	t0 := time.Now()
	if err := dep.DCs[0].Recover(); err != nil {
		panic(err)
	}
	dcTime := time.Since(t0)
	if err := tcx.RecoverDC(0); err != nil {
		panic(err)
	}
	if err := dep.DCs[0].Tree("kv").CheckInvariants(); err != nil {
		panic(fmt.Sprintf("E5: tree not well-formed after recovery: %v", err))
	}
	res.Extra = []harness.Col{
		{Name: "splits", Value: fmt.Sprintf("%d", splits)},
		{Name: "consolidates", Value: fmt.Sprintf("%d", cons)},
		{Name: "splitLogB", Value: fmt.Sprintf("%d", splitB)},
		{Name: "consLogB", Value: fmt.Sprintf("%d", consB)},
		{Name: "dcRecover", Value: dcTime.Round(10 * time.Microsecond).String()},
		{Name: "redoOps", Value: fmt.Sprintf("%d", tcx.Stats().RedoOps)},
	}
	t.Add(res)
	return t
}

// E6 reproduces §5.3 partial failures. Part (a): DC-crash recovery work
// grows with operations since the last checkpoint. Part (b): a TC crash
// resets only the cached pages holding its lost operations — compared
// against the "draconian" alternative of dropping the whole cache (which
// the paper rejects).
func E6(s Scale) *harness.Report {
	t := harness.NewReport()

	// (a) DC crash: vary ops since checkpoint.
	for _, since := range []int{s.Keys / 8, s.Keys / 2} {
		dep, err := core.New(core.Options{TCs: 1, DCs: 1, Tables: []string{"kv"},
			DCConfig: func(int) dc.Config { return dc.Config{PageBytes: 1024} }})
		if err != nil {
			panic(err)
		}
		ctx := context.Background()
		client := dep.Client()
		tcx := dep.TCs[0]
		for i := 0; i < s.Keys/2; i++ {
			must(client.RunTxn(ctx, core.TxnOptions{}, func(x *tc.Txn) error {
				return x.Upsert("kv", workload.KVKey(i), make([]byte, s.ValueSize))
			}))
		}
		if _, err := tcx.Checkpoint(context.Background()); err != nil {
			panic(err)
		}
		base := tcx.Stats().RedoOps
		for i := 0; i < since; i++ {
			must(client.RunTxn(ctx, core.TxnOptions{}, func(x *tc.Txn) error {
				return x.Upsert("kv", workload.KVKey(i), []byte("post-ckpt"))
			}))
		}
		cached := dep.DCs[0].Pool().Cached()
		dep.CrashDC(0)
		t0 := time.Now()
		must(dep.RecoverDC(0))
		el := time.Since(t0)
		res := harness.Result{Name: fmt.Sprintf("dc-crash/opsSinceCkpt=%d", since),
			Txns: uint64(since), Elapsed: el, Latencies: harness.NewHistogram()}
		res.Extra = []harness.Col{
			{Name: "cachedPages", Value: fmt.Sprintf("%d", cached)},
			{Name: "resetPages", Value: "-"},
			{Name: "restoredRecs", Value: "-"},
			{Name: "redoOps", Value: fmt.Sprintf("%d", tcx.Stats().RedoOps-base)},
			{Name: "recovery", Value: el.Round(10 * time.Microsecond).String()},
		}
		t.Add(res)
		dep.Close()
	}

	// (b) TC crash: targeted reset vs full cache drop on identical states.
	for _, mode := range []string{"targeted-reset", "full-drop"} {
		dep, err := core.New(core.Options{TCs: 1, DCs: 1, Tables: []string{"kv"},
			DCConfig: func(int) dc.Config { return dc.Config{PageBytes: 1024} }})
		if err != nil {
			panic(err)
		}
		ctx := context.Background()
		client := dep.Client()
		tcx := dep.TCs[0]
		for i := 0; i < s.Keys/2; i++ {
			must(client.RunTxn(ctx, core.TxnOptions{}, func(x *tc.Txn) error {
				return x.Upsert("kv", workload.KVKey(i), make([]byte, s.ValueSize))
			}))
		}
		if _, err := tcx.Checkpoint(context.Background()); err != nil {
			panic(err)
		}
		// An uncommitted transaction whose operations reached the DC cache
		// but whose log records were never forced: exactly the lost-tail
		// state of §5.3.2. Only the pages it touched carry lost state.
		ghost := tcx.Begin(ctx, tc.TxnOptions{})
		for i := 0; i < 32; i++ {
			must(ghost.Upsert("kv", workload.KVKey(i*7), []byte("lost-tail")))
		}
		cached := dep.DCs[0].Pool().Cached()
		t0 := time.Now()
		if mode == "targeted-reset" {
			dep.CrashTC(0)
			must(dep.RecoverTC(0))
		} else {
			// The paper's rejected alternative: turn the partial failure
			// into a complete one — drop the whole DC cache and redo.
			dep.CrashTC(0)
			dep.CrashDC(0)
			must(dep.DCs[0].Recover())
			must(dep.RecoverTC(0))
		}
		el := time.Since(t0)
		st := dep.DCs[0].Stats()
		res := harness.Result{Name: "tc-crash/" + mode, Txns: 32, Elapsed: el,
			Latencies: harness.NewHistogram()}
		reset := fmt.Sprintf("%d", st.ResetPages)
		if mode == "full-drop" {
			reset = fmt.Sprintf("%d (all)", cached)
		}
		res.Extra = []harness.Col{
			{Name: "cachedPages", Value: fmt.Sprintf("%d", cached)},
			{Name: "resetPages", Value: reset},
			{Name: "restoredRecs", Value: fmt.Sprintf("%d", st.RestoredRecs)},
			{Name: "redoOps", Value: fmt.Sprintf("%d", tcx.Stats().RedoOps)},
			{Name: "recovery", Value: el.Round(10 * time.Microsecond).String()},
		}
		t.Add(res)
		dep.Close()
	}
	return t
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func scanAll(l *wal.Log) []*wal.Record {
	l.Force()
	return l.Scan(0)
}

// pageStats is a minimal structural peek used by E2 (leaf/record counts).
type pageStats struct {
	leaf bool
	recs int
}

func decodePage(data []byte) (pageStats, error) {
	pg, err := page.Decode(data)
	if err != nil {
		return pageStats{}, err
	}
	return pageStats{leaf: pg.Leaf, recs: len(pg.Recs)}, nil
}
