package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/cidr09/unbundled/internal/core"
	"github.com/cidr09/unbundled/internal/dc"
	"github.com/cidr09/unbundled/internal/harness"
	"github.com/cidr09/unbundled/internal/tc"
	"github.com/cidr09/unbundled/internal/wire"
)

// The throughput experiment measures the server runtime itself: one DC
// served over real loopback TCP, several TC frontends dialing it, and an
// open-loop arrival schedule offered across them. Two runtimes face the
// identical offered load: the pre-pool baseline (a goroutine per request,
// one frame per reply) and the production runtime (sharded worker pool
// with bounded admission, coalesced ack frames). At rates the baseline
// cannot sustain, its completed-txn count and tail latencies fall behind
// while the pooled runtime keeps queueing bounded and sheds the excess as
// typed overloads the TC's wire client rides out.

// ThroughputOptions configures one open-loop TCP throughput run.
type ThroughputOptions struct {
	// Rate is the offered arrival rate, transactions per second
	// (default 8000).
	Rate int
	// Clients is the number of open-loop executor goroutines (default 64).
	Clients int
	// Duration is the offered window (default 3s).
	Duration time.Duration
	// Warmup is the unreported leading slice (default 500ms).
	Warmup time.Duration
	// TCs is the number of TC frontends sharing the DC (default 2).
	TCs int
	// Keys is the key-space size per TC partition (default 4096).
	Keys int
	// OpsPerTxn is the number of upserts per transaction (default 4).
	OpsPerTxn int
	// ValueSize is the value payload in bytes (default 64).
	ValueSize int
}

func (o ThroughputOptions) withDefaults() ThroughputOptions {
	if o.Rate <= 0 {
		o.Rate = 8000
	}
	if o.Clients <= 0 {
		o.Clients = 64
	}
	if o.Duration <= 0 {
		o.Duration = 3 * time.Second
	}
	if o.Warmup <= 0 {
		o.Warmup = 500 * time.Millisecond
	}
	if o.TCs <= 0 {
		o.TCs = 2
	}
	if o.Keys <= 0 {
		o.Keys = 4096
	}
	if o.OpsPerTxn <= 0 {
		o.OpsPerTxn = 4
	}
	if o.ValueSize <= 0 {
		o.ValueSize = 64
	}
	return o
}

// Throughput compares the two server runtimes under the same offered
// load: the per-request-goroutine flat-ack baseline against the sharded
// worker pool with coalesced acks.
func Throughput(o ThroughputOptions) *harness.Report {
	o = o.withDefaults()
	t := harness.NewReport()
	for _, mode := range []struct {
		name string
		cfg  wire.ListenConfig
		note string
	}{
		{"per-request+flat-acks", wire.ListenConfig{PerRequest: true, FlatAcks: true},
			"goroutine per request, one frame per reply"},
		{"sharded+coalesced", wire.ListenConfig{},
			"worker pool, bounded queues, batched ack frames"},
	} {
		t.Add(ThroughputRun(mode.name, mode.cfg, o, mode.note))
	}
	return t
}

// ThroughputRun measures one server runtime: an in-process DC served on
// loopback TCP under lc, o.TCs TC frontends dialed to it, and an
// open-loop schedule of o.Rate versioned multi-upsert transactions spread
// round-robin across the TCs (each TC writes its own key prefix, so the
// frontends never contend on locks — the server is the variable). Ops ship
// synchronously: every upsert is a full server round trip, the maximum
// wire pressure per transaction (the pipelined mode's TC-global ack
// barrier convoys concurrent committers and would measure the TC, not the
// server). Result.Retries carries the wire resends and Result.Overloads
// the admission refusals the clients absorbed underneath the run.
func ThroughputRun(name string, lc wire.ListenConfig, o ThroughputOptions, note string) harness.Result {
	o = o.withDefaults()
	d, err := dc.New(dc.Config{Name: "bench-dc"})
	if err != nil {
		panic(err)
	}
	if err := d.CreateTable("kv"); err != nil {
		panic(err)
	}
	l, err := wire.ListenWith("127.0.0.1:0", d, lc)
	if err != nil {
		panic(err)
	}
	dep, err := core.New(core.Options{
		TCs:      o.TCs,
		DCAddrs:  []string{l.Addr()},
		TCConfig: func(int) tc.Config { return tc.Config{Pipeline: false} },
	})
	if err != nil {
		panic(err)
	}
	ctx := context.Background()
	if err := dep.WaitConnected(ctx); err != nil {
		panic(err)
	}
	client := dep.Client()
	value := make([]byte, o.ValueSize)
	res := harness.RunOpenLoop(ctx, harness.Load{
		Name:     name,
		Rate:     o.Rate,
		Clients:  o.Clients,
		Duration: o.Duration,
		Warmup:   o.Warmup,
		Workload: func(ctx context.Context, seq int) error {
			tcIdx := seq % o.TCs
			// Multiplicative hash spreads adjacent arrivals across the
			// keyspace: sequential indexes would convoy every in-flight
			// transaction onto the same B-tree leaf.
			k := int(uint64(seq/o.TCs) * 2654435761 % uint64(o.Keys))
			opts := core.TxnOptions{TC: tcIdx + 1, Versioned: true}
			return client.RunTxn(ctx, opts, func(x *tc.Txn) error {
				for j := 0; j < o.OpsPerTxn; j++ {
					key := fmt.Sprintf("t%d/key%06d-%d", tcIdx, k, j)
					if err := x.Upsert("kv", key, value); err != nil {
						return err
					}
				}
				return nil
			})
		},
	})
	ws := dep.RemoteWireStats()
	res.Retries = ws.Resends
	res.Overloads += ws.Overloads
	res.Extra = []harness.Col{{Name: "note", Value: note}}
	dep.Close()
	l.Close()
	d.Close()
	return res
}
