package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cidr09/unbundled/internal/core"
	"github.com/cidr09/unbundled/internal/harness"
	"github.com/cidr09/unbundled/internal/placement"
	"github.com/cidr09/unbundled/internal/tc"
	"github.com/cidr09/unbundled/internal/workload"
)

// E7 reproduces §6: multiple TCs updating disjoint partitions of one DC,
// plus never-blocked read-committed readers over versioned data. The
// throughput column shows update scaling with TC count; the reader row
// shows read latency while all writers are running (readers take no locks
// and are "never blocked" — §6.2.2).
func E7(s Scale) *harness.Report {
	t := harness.NewReport()
	for _, tcs := range []int{1, 2, 4} {
		// Writer w (TC w+1) owns the "p<w>/" key-range slice of the table;
		// the reader TC (tcs+1) owns nothing and reads everywhere.
		var ent strings.Builder
		for w := 1; w < tcs; w++ {
			fmt.Fprintf(&ent, "<p%d:%d,", w, w)
		}
		dep, err := core.New(core.Options{TCs: tcs + 1, DCs: 1,
			Placement: placement.MustParse(
				fmt.Sprintf("users: dc=0 owner=range(%s*:%d)", ent.String(), tcs))})
		if err != nil {
			panic(err)
		}
		ctx := context.Background()
		client := dep.Client()
		var wg sync.WaitGroup
		var committed atomic.Uint64
		start := time.Now()
		for w := 0; w < tcs; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				owner := core.TxnOptions{TC: w + 1, Versioned: true}
				g := s.kv(0).NewGen(w)
				for i := 0; i < s.TxnsPerW; i++ {
					key := fmt.Sprintf("p%d/%s", w, g.Key())
					if err := client.RunTxn(ctx, owner, func(x *tc.Txn) error {
						return x.Upsert("users", key, g.Value())
					}); err == nil {
						committed.Add(1)
					}
				}
			}(w)
		}
		// The reader TC does read-committed point reads throughout.
		readerHist := harness.NewHistogram()
		var readerReads atomic.Uint64
		stopReader := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			reader := core.TxnOptions{TC: tcs + 1, ReadOnly: true}
			g := s.kv(1).NewGen(99)
			for {
				select {
				case <-stopReader:
					return
				default:
				}
				key := fmt.Sprintf("p%d/%s", int(readerReads.Load())%tcs, g.Key())
				t0 := time.Now()
				_ = client.RunTxn(ctx, reader, func(x *tc.Txn) error {
					_, _, err := x.ReadCommitted("users", key)
					return err
				})
				readerHist.Observe(time.Since(t0))
				readerReads.Add(1)
			}
		}()
		// Wait for the writers, then stop the reader.
		done := make(chan struct{})
		go func() {
			for committed.Load() < uint64(tcs*s.TxnsPerW) {
				time.Sleep(time.Millisecond)
			}
			close(done)
		}()
		<-done
		close(stopReader)
		wg.Wait()
		el := time.Since(start)
		res := harness.Result{Name: fmt.Sprintf("writers=%d", tcs),
			Txns: committed.Load(), Elapsed: el, Latencies: harness.NewHistogram()}
		res.Extra = []harness.Col{{Name: "note", Value: "disjoint update partitions, no 2PC"}}
		t.Add(res)
		readerRes := harness.Result{Name: fmt.Sprintf("reader-with-%d-writers", tcs),
			Txns: readerReads.Load(), Elapsed: el, Latencies: readerHist}
		readerRes.Extra = []harness.Col{{Name: "note", Value: "read-committed, lock-free, never blocked"}}
		t.Add(readerRes)
		dep.Close()
	}
	return t
}

// F2 reproduces Figure 2 and §6.3: the movie site. Users and their
// updates (W2, W3, W4) are partitioned across two updating TCs; movie
// review reads (W1) run on a separate reader TC with read-committed
// access; Movies/Reviews partition by MId over two DCs, Users/MyReviews
// by UId over a third. Updating transactions are completely local to one
// TC — no distributed transactions — and no query touches more than two
// DCs.
func F2(s Scale) *harness.Report {
	p := workload.MoviePlacement{MovieDCs: 2, UserDCs: 1,
		Movies: s.Keys / 10, Users: s.Keys / 4}
	const updateTCs = 2
	dep, err := core.New(core.Options{
		TCs: updateTCs + 1, DCs: p.MovieDCs + p.UserDCs,
		Placement: p.Placement(updateTCs),
	})
	if err != nil {
		panic(err)
	}
	defer dep.Close()
	ctx := context.Background()
	client := dep.Client()
	reader := core.TxnOptions{TC: updateTCs + 1, ReadOnly: true}

	// Seed movies and users (admin TC 1 owns the bulk load).
	must(client.RunTxn(ctx, core.TxnOptions{TC: 1}, func(x *tc.Txn) error {
		for m := 0; m < p.Movies; m++ {
			if err := x.Upsert(workload.TableMovies, workload.MovieKey(m),
				[]byte(fmt.Sprintf("movie-%d", m))); err != nil {
				return err
			}
		}
		return nil
	}))
	for u := 0; u < p.Users; u++ {
		owner := core.TxnOptions{TC: p.OwnerTC(u, updateTCs) + 1, Versioned: true}
		must(client.RunTxn(ctx, owner, func(x *tc.Txn) error {
			return x.Upsert(workload.TableUsers, workload.UserKey(u),
				[]byte(fmt.Sprintf("profile-%d", u)))
		}))
	}

	t := harness.NewReport()

	// W2: add a movie review — the user's TC inserts into Reviews (movie
	// DC) and MyReviews (user DC) in ONE local transaction.
	gens := make([]*workload.Gen, s.Workers)
	for i := range gens {
		gens[i] = s.kv(0).NewGen(200 + i)
	}
	w2 := harness.Run("W2 add review", s.Workers, s.TxnsPerW/2, func(w, i int) error {
		g := gens[w]
		u := g.Rand().Intn(p.Users)
		m := g.Rand().Intn(p.Movies)
		owner := core.TxnOptions{TC: p.OwnerTC(u, updateTCs) + 1, Versioned: true}
		review := []byte(fmt.Sprintf("review of %d by %d (#%d)", m, u, i))
		return client.RunTxn(ctx, owner, func(x *tc.Txn) error {
			if err := x.Upsert(workload.TableReviews, workload.ReviewKey(m, u), review); err != nil {
				return err
			}
			return x.Upsert(workload.TableMyReviews, workload.MyReviewKey(u, m), review)
		})
	})
	w2.Extra = []harness.Col{{Name: "dcsTouched", Value: "2"},
		{Name: "protocol", Value: "local txn at owner TC (no 2PC)"}}
	t.Add(w2)

	// W3: update profile information for a user — single DC, single TC.
	w3 := harness.Run("W3 update profile", s.Workers, s.TxnsPerW/2, func(w, i int) error {
		g := gens[w]
		u := g.Rand().Intn(p.Users)
		owner := core.TxnOptions{TC: p.OwnerTC(u, updateTCs) + 1, Versioned: true}
		return client.RunTxn(ctx, owner, func(x *tc.Txn) error {
			return x.Upsert(workload.TableUsers, workload.UserKey(u),
				[]byte(fmt.Sprintf("profile-%d-v%d", u, i)))
		})
	})
	w3.Extra = []harness.Col{{Name: "dcsTouched", Value: "1"},
		{Name: "protocol", Value: "local txn at owner TC"}}
	t.Add(w3)

	// W1: obtain all reviews for a particular movie — the reader TC scans
	// the Reviews clustering with read-committed access: clustered, one
	// DC, never blocked by the updating TCs.
	w1 := harness.Run("W1 reviews of movie", s.Workers, s.TxnsPerW/2, func(w, i int) error {
		g := gens[w]
		m := g.Rand().Intn(p.Movies)
		prefix := workload.MovieKey(m) + "/"
		return client.RunTxn(ctx, reader, func(x *tc.Txn) error {
			_, _, err := x.ScanCommitted(workload.TableReviews, prefix, prefix+"~", 0)
			return err
		})
	})
	w1.Extra = []harness.Col{{Name: "dcsTouched", Value: "1"},
		{Name: "protocol", Value: "read-committed scan at reader TC"}}
	t.Add(w1)

	// W4: obtain all reviews written by a particular user — the owner TC
	// scans its own MyReviews partition with full locking.
	w4 := harness.Run("W4 reviews by user", s.Workers, s.TxnsPerW/2, func(w, i int) error {
		g := gens[w]
		u := g.Rand().Intn(p.Users)
		owner := core.TxnOptions{TC: p.OwnerTC(u, updateTCs) + 1}
		prefix := workload.UserKey(u) + "/"
		return client.RunTxn(ctx, owner, func(x *tc.Txn) error {
			_, _, err := x.Scan(workload.TableMyReviews, prefix, prefix+"~", 0)
			return err
		})
	})
	w4.Extra = []harness.Col{{Name: "dcsTouched", Value: "1"},
		{Name: "protocol", Value: "locked scan of own partition"}}
	t.Add(w4)
	return t
}

// F1 deploys the Figure-1 architecture: two applications on separate TCs
// over four heterogeneous DCs (two record stores, an inverted-index DC,
// and a geo-prefix DC) and reports aggregate throughput per DC kind.
func F1(s Scale) *harness.Report {
	tables := []string{"photos", "accounts", "textidx", "shapes"}
	// Whole-table axes: each table lives on its own (heterogeneous) DC,
	// and ownership is per application — app1 (TC 1) owns everything but
	// the accounts table, which is app2's (TC 2).
	dep, err := core.New(core.Options{TCs: 2, DCs: 4,
		Placement: placement.MustParse(
			"photos: dc=0 owner=1; accounts: dc=1 owner=2; textidx: dc=2 owner=1; shapes: dc=3 owner=1")})
	if err != nil {
		panic(err)
	}
	defer dep.Close()
	ctx := context.Background()
	client := dep.Client()
	t := harness.NewReport()
	app1 := harness.Run("app1 photo+index", s.Workers, s.TxnsPerW/2, func(w, i int) error {
		id := fmt.Sprintf("p%d-%d", w, i)
		return client.RunTxn(ctx, core.TxnOptions{TC: 1}, func(x *tc.Txn) error {
			if err := x.Upsert("photos", "a1/"+id, []byte("blob")); err != nil {
				return err
			}
			if err := x.Upsert("textidx", "a1/word"+id+"#"+id, nil); err != nil {
				return err
			}
			return x.Upsert("shapes", "a1/9q8yy"+id+"#"+id, nil)
		})
	})
	app1.Extra = []harness.Col{{Name: "dcKind", Value: "record+inverted+geo"}}
	t.Add(app1)
	app2 := harness.Run("app2 accounts", s.Workers, s.TxnsPerW/2, func(w, i int) error {
		return client.RunTxn(ctx, core.TxnOptions{TC: 2}, func(x *tc.Txn) error {
			return x.Upsert("accounts", fmt.Sprintf("a2/u%d-%d", w, i), []byte("acct"))
		})
	})
	app2.Extra = []harness.Col{{Name: "dcKind", Value: "record"}}
	t.Add(app2)
	// Per-DC operation counts as real result rows: each DC's perform total
	// is its transaction column, labeled with the heterogeneous store kind.
	for i, dci := range dep.DCs {
		t.Add(harness.Result{Name: fmt.Sprintf("dc%d ops", i),
			Txns: dci.Stats().Performs, Latencies: harness.NewHistogram(),
			Extra: []harness.Col{{Name: "dcKind", Value: tables[i]}}})
	}
	return t
}
