// Package experiments implements the reproduction of every figure and
// claim in the paper (see DESIGN.md §4 for the index). Each experiment
// returns a harness.Report whose rows appear in EXPERIMENTS.md; the cmd
// tool prints them and bench_test.go wraps them as Go benchmarks.
package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/cidr09/unbundled/internal/core"
	"github.com/cidr09/unbundled/internal/dc"
	"github.com/cidr09/unbundled/internal/harness"
	"github.com/cidr09/unbundled/internal/monolith"
	"github.com/cidr09/unbundled/internal/placement"
	"github.com/cidr09/unbundled/internal/tc"
	"github.com/cidr09/unbundled/internal/wire"
	"github.com/cidr09/unbundled/internal/workload"
)

// Scale shrinks or grows every experiment uniformly (1 = the numbers
// reported in EXPERIMENTS.md; benchmarks use smaller).
type Scale struct {
	Workers   int
	TxnsPerW  int
	Keys      int
	ValueSize int
}

// DefaultScale is the EXPERIMENTS.md configuration.
func DefaultScale() Scale {
	return Scale{Workers: 4, TxnsPerW: 800, Keys: 8000, ValueSize: 64}
}

// QuickScale is for smoke runs and Go benchmarks.
func QuickScale() Scale {
	return Scale{Workers: 2, TxnsPerW: 150, Keys: 1000, ValueSize: 64}
}

func (s Scale) kv(readFrac float64) workload.KV {
	return workload.KV{Keys: s.Keys, ValueSize: s.ValueSize, ReadFrac: readFrac,
		OpsPerTxn: 4, Seed: 42}
}

// runKVUnbundled drives the KV mix through the deployment client.
func runKVUnbundled(name string, dep *core.Deployment, s Scale, readFrac float64) harness.Result {
	kv := s.kv(readFrac)
	gens := make([]*workload.Gen, s.Workers)
	for i := range gens {
		gens[i] = kv.NewGen(i)
	}
	ctx := context.Background()
	client := dep.Client()
	return harness.Run(name, s.Workers, s.TxnsPerW, func(w, i int) error {
		g := gens[w]
		return client.RunTxn(ctx, core.TxnOptions{}, func(x *tc.Txn) error {
			for j := 0; j < g.OpsPerTxn(); j++ {
				key := g.Key()
				if g.IsRead() {
					if _, _, err := x.Read("kv", key); err != nil {
						return err
					}
				} else if err := x.Upsert("kv", key, g.Value()); err != nil {
					return err
				}
			}
			return nil
		})
	})
}

func runKVMonolith(name string, e *monolith.Engine, s Scale, readFrac float64) harness.Result {
	kv := s.kv(readFrac)
	gens := make([]*workload.Gen, s.Workers)
	for i := range gens {
		gens[i] = kv.NewGen(i)
	}
	return harness.Run(name, s.Workers, s.TxnsPerW, func(w, i int) error {
		g := gens[w]
		return e.RunTxn(func(x *monolith.Txn) error {
			for j := 0; j < g.OpsPerTxn(); j++ {
				key := g.Key()
				if g.IsRead() {
					if _, _, err := x.Read("kv", key); err != nil {
						return err
					}
				} else if err := x.Upsert("kv", key, g.Value()); err != nil {
					return err
				}
			}
			return nil
		})
	})
}

// E1 compares the unbundled kernel against the integrated baseline on the
// identical workload (§7: "our unbundling approach inevitably has longer
// code paths … justified by the flexibility of deploying
// adequately-grained cloud services").
func E1(s Scale) *harness.Report {
	t := harness.NewReport()
	for _, readFrac := range []float64{0.5, 0.95} {
		mono, err := monolith.New(monolith.Config{})
		if err != nil {
			panic(err)
		}
		if err := mono.CreateTable("kv"); err != nil {
			panic(err)
		}
		t.Add(runKVMonolith(fmt.Sprintf("monolith/reads=%.0f%%", readFrac*100), mono, s, readFrac))

		for _, net := range []struct {
			name string
			cfg  *wire.Config
		}{
			{"unbundled-direct", nil},
			{"unbundled-wire", &wire.Config{}},
			// Nominal 1ms one-way delay; the host timer floor (~1.2ms in
			// the reference environment) sets the effective value — see
			// EXPERIMENTS.md.
			{"unbundled-wire+1ms", &wire.Config{Delay: time.Millisecond}},
		} {
			dep, err := core.New(core.Options{TCs: 1, DCs: 1, Tables: []string{"kv"}, Network: net.cfg})
			if err != nil {
				panic(err)
			}
			t.Add(runKVUnbundled(fmt.Sprintf("%s/reads=%.0f%%", net.name, readFrac*100), dep, s, readFrac))
			dep.Close()
		}
	}
	return t
}

// E3 compares the three §5.1.2 page-sync strategies under a steady update
// stream with concurrent checkpoint-driven flushing.
func E3(s Scale) *harness.Report {
	t := harness.NewReport()
	for _, strat := range []struct {
		name string
		cfg  dc.Config
	}{
		{"block", dc.Config{Strategy: 1}},
		{"full", dc.Config{Strategy: 2}},
		{"hybrid(8)", dc.Config{Strategy: 3, HybridMax: 8}},
	} {
		strat := strat
		dep, err := core.New(core.Options{TCs: 1, DCs: 1, Tables: []string{"kv"},
			DCConfig: func(int) dc.Config { return strat.cfg }})
		if err != nil {
			panic(err)
		}
		stop := make(chan struct{})
		go func() { // steady checkpoint pressure forces page syncs
			for {
				select {
				case <-stop:
					return
				case <-time.After(2 * time.Millisecond):
					_, _ = dep.TCs[0].Checkpoint(context.Background())
				}
			}
		}()
		res := runKVUnbundled(strat.name, dep, s, 0.2)
		close(stop)
		st := dep.DCs[0].Pool().Stats()
		perPage := "0"
		if st.Flushes > 0 {
			perPage = fmt.Sprintf("%.1f", float64(st.AbLSNBytes)/float64(st.Flushes))
		}
		res.Extra = []harness.Col{
			{Name: "flushes", Value: fmt.Sprintf("%d", st.Flushes)},
			{Name: "flushWaits", Value: fmt.Sprintf("%d", st.FlushWaits)},
			{Name: "barrierHits", Value: fmt.Sprintf("%d", st.BarrierHits)},
			{Name: "abLSN-bytes/page", Value: perPage},
		}
		t.Add(res)
		dep.Close()
	}
	return t
}

// E4 compares the §3.1 range-locking protocols: fetch-ahead key locking
// versus static range buckets. The paper predicts static ranges reduce
// locking overhead but give up concurrency: with few workers (low
// contention) static wins on overhead; with concentrated updates and more
// workers, whole-bucket X locks serialize writers and fetch-ahead's
// key-granular locks win.
func E4(s Scale) *harness.Report {
	t := harness.NewReport()
	for _, contention := range []struct {
		name    string
		workers int
		theta   float64
		buckets int
		net     *wire.Config
		scale   float64 // txn-count multiplier (network runs are slow)
	}{
		{"lowContention", s.Workers, 0, 64, nil, 1},
		{"hotKeys", s.Workers * 4, 1.2, 8, nil, 1},
		// Over a real network the fetch-ahead protocol pays an extra
		// message round trip per range (the speculative probe); static
		// ranges need none.
		{"wire+1ms", 2, 0, 64, &wire.Config{Delay: time.Millisecond}, 0.1},
	} {
		for _, proto := range []tc.RangeProtocol{tc.FetchAhead, tc.StaticRange} {
			proto := proto
			cont := contention
			dep, err := core.New(core.Options{TCs: 1, DCs: 1, Tables: []string{"kv"},
				Network: cont.net,
				TCConfig: func(int) tc.Config {
					return tc.Config{Protocol: proto, RangeBuckets: cont.buckets,
						LockTimeout: 2 * time.Second}
				}})
			if err != nil {
				panic(err)
			}
			// Preload.
			ctx := context.Background()
			client := dep.Client()
			tcx := dep.TCs[0]
			for i := 0; i < s.Keys; i += 4 {
				if err := client.RunTxn(ctx, core.TxnOptions{}, func(x *tc.Txn) error {
					return x.Upsert("kv", workload.KVKey(i), []byte("v"))
				}); err != nil {
					panic(err)
				}
			}
			kv := s.kv(0)
			kv.Theta = cont.theta
			gens := make([]*workload.Gen, cont.workers)
			for i := range gens {
				gens[i] = kv.NewGen(i)
			}
			perWorker := int(float64(s.TxnsPerW/2) * cont.scale)
			if perWorker < 10 {
				perWorker = 10
			}
			name := fmt.Sprintf("%s/%s", proto, cont.name)
			res := harness.Run(name, cont.workers, perWorker, func(w, i int) error {
				g := gens[w]
				if g.Rand().Float64() < 0.3 {
					lo := g.Rand().Intn(s.Keys - 64)
					return client.RunTxn(ctx, core.TxnOptions{}, func(x *tc.Txn) error {
						_, _, err := x.Scan("kv", workload.KVKey(lo), workload.KVKey(lo+32), 0)
						return err
					})
				}
				key := g.Key()
				return client.RunTxn(ctx, core.TxnOptions{}, func(x *tc.Txn) error {
					return x.Upsert("kv", key, g.Value())
				})
			})
			ls := tcx.Locks().Stats()
			res.Extra = []harness.Col{
				{Name: "locks", Value: fmt.Sprintf("%d", ls.Acquired)},
				{Name: "waits", Value: fmt.Sprintf("%d", ls.Waited)},
				{Name: "deadlocks", Value: fmt.Sprintf("%d", ls.Deadlocks)},
				{Name: "probes", Value: fmt.Sprintf("%d", tcx.Stats().Probes)},
			}
			t.Add(res)
			dep.Close()
		}
	}
	return t
}

// E8 fixes the work and varies the number of DC instances behind one TC
// (§1.1(3): deploy more DCs than TCs for load balance).
func E8(s Scale) *harness.Report {
	t := harness.NewReport()
	for _, dcs := range []int{1, 2, 4, 8} {
		n := dcs
		// mod(n) reads the key's digit run, matching workload.KVKeyIndex:
		// "key00000042" lands on DC 42 % n.
		dep, err := core.New(core.Options{TCs: 1, DCs: n,
			Placement: placement.MustParse(fmt.Sprintf("kv: dc=mod(%d) owner=any", n))})
		if err != nil {
			panic(err)
		}
		t.Add(runKVUnbundled(fmt.Sprintf("dcs=%d", n), dep, s, 0.5))
		dep.Close()
	}
	return t
}
