package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cidr09/unbundled/internal/core"
	"github.com/cidr09/unbundled/internal/harness"
	"github.com/cidr09/unbundled/internal/tc"
)

// E9 measures read throughput under write contention: the pre-snapshot
// locked read path (SnapshotLocked — S locks through the TC, so a
// multi-key read pays a lock wait at every hot key, each behind an
// independent writer's commit-duration X lock) against the default
// timestamp-snapshot path (lock-free, served by the DC at the read
// timestamp; the only wait is for the safe timestamp to pass it — one
// in-flight commit window total, however many keys the read touches).
// One writer per hot key keeps every key X-locked almost continuously
// in versioned transactions while each reader mode runs the identical
// multi-key read transaction.
func E9(s Scale) *harness.Report {
	t := harness.NewReport()
	const hot = 16
	hotKey := func(k int) string { return fmt.Sprintf("hot%d", k) }
	for _, mode := range []struct {
		name string
		opts core.TxnOptions
		note string
	}{
		{"locked reads", core.TxnOptions{ReadOnly: true, Snapshot: core.SnapshotLocked},
			"S locks convoy behind writer commits"},
		{"snapshot reads", core.TxnOptions{ReadOnly: true},
			"lock-free at the read timestamp"},
	} {
		dep, err := core.New(core.Options{TCs: 1, DCs: 1, Tables: []string{"kv"},
			TCConfig: func(int) tc.Config { return tc.Config{ForceDelay: 2 * time.Millisecond} }})
		if err != nil {
			panic(err)
		}
		ctx := context.Background()
		client := dep.Client()
		write := func(k, round int) error {
			return client.RunTxn(ctx, core.TxnOptions{Versioned: true}, func(x *tc.Txn) error {
				return x.Upsert("kv", hotKey(k), []byte(fmt.Sprintf("v%d", round)))
			})
		}
		for k := 0; k < hot; k++ {
			must(write(k, 0))
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		var rounds atomic.Uint64
		for w := 0; w < hot; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for r := 1; ; r++ {
					select {
					case <-stop:
						return
					default:
					}
					if write(w, r) == nil {
						rounds.Add(1)
					}
				}
			}(w)
		}
		// Measure only the steady state: a couple of writer rounds through.
		for rounds.Load() < 2*hot {
			time.Sleep(time.Millisecond)
		}
		res := harness.Run(mode.name, s.Workers, s.TxnsPerW/8, func(w, i int) error {
			return client.RunTxn(ctx, mode.opts, func(x *tc.Txn) error {
				for k := 0; k < hot; k++ {
					if _, _, err := x.Read("kv", hotKey(k)); err != nil {
						return err
					}
				}
				return nil
			})
		})
		close(stop)
		wg.Wait()
		res.Extra = []harness.Col{{Name: "note", Value: mode.note}}
		t.Add(res)
		dep.Close()
	}
	return t
}
