// Package lockmgr implements the TC-side lock manager (§4.1.1(1)).
//
// Because all knowledge of pages is confined to the DC, the lock manager
// deals only in logical resources: single keys, static key-range buckets
// (the "Range locks" protocol of §3.1), and whole tables. Locks are
// acquired *before* the corresponding operation is sent to a DC — this is
// what enforces the requirement that the DC never sees two conflicting
// operations executing concurrently.
//
// Modes are S (shared), U (update; compatible with S, not with U/X), and
// X (exclusive). Waiting is FIFO-fair except lock upgrades, which jump the
// queue to reduce upgrade deadlocks. Deadlocks are detected with a
// waits-for graph search at block time; the requester closing the cycle is
// the victim and receives ErrDeadlock.
package lockmgr

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cidr09/unbundled/internal/base"
)

// Mode is a lock mode.
type Mode uint8

const (
	// None is the absence of a lock; never stored.
	None Mode = iota
	// S is shared (read) mode.
	S
	// U is update mode: compatible with S, incompatible with U and X.
	// Converting U->X cannot deadlock against other U holders.
	U
	// X is exclusive (write) mode.
	X
)

func (m Mode) String() string {
	switch m {
	case S:
		return "S"
	case U:
		return "U"
	case X:
		return "X"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Compatible reports whether a requested mode can be granted alongside a
// held mode.
func Compatible(req, held Mode) bool {
	switch req {
	case S:
		return held == S || held == U
	case U:
		return held == S
	case X:
		return false
	}
	return false
}

// Covers reports whether holding mode m satisfies a request for mode r.
func (m Mode) Covers(r Mode) bool {
	if m == r {
		return true
	}
	switch m {
	case X:
		return true
	case U:
		return r == S
	}
	return false
}

// ResKind classifies lockable resources.
type ResKind uint8

const (
	// KindKey locks one record by key.
	KindKey ResKind = iota
	// KindRange locks one bucket of a static range partition (§3.1).
	KindRange
	// KindTable locks a whole table.
	KindTable
)

// Resource names one lockable object.
type Resource struct {
	Table  string
	Kind   ResKind
	Key    string // for KindKey
	Bucket int32  // for KindRange
}

// KeyRes builds a key resource.
func KeyRes(table, key string) Resource { return Resource{Table: table, Kind: KindKey, Key: key} }

// RangeRes builds a range-bucket resource.
func RangeRes(table string, bucket int32) Resource {
	return Resource{Table: table, Kind: KindRange, Bucket: bucket}
}

// TableRes builds a whole-table resource.
func TableRes(table string) Resource { return Resource{Table: table, Kind: KindTable} }

func (r Resource) String() string {
	switch r.Kind {
	case KindKey:
		return fmt.Sprintf("%s/key:%s", r.Table, r.Key)
	case KindRange:
		return fmt.Sprintf("%s/range:%d", r.Table, r.Bucket)
	default:
		return fmt.Sprintf("%s/table", r.Table)
	}
}

// Errors returned by Lock. Both wrap the corresponding taxonomy sentinel,
// so errors.Is(err, base.ErrDeadlock) / base.ErrLockTimeout (and therefore
// base.IsTransient) hold anywhere the failure propagates.
var (
	ErrDeadlock = fmt.Errorf("lockmgr: deadlock victim: %w", base.ErrDeadlock)
	ErrTimeout  = fmt.Errorf("lockmgr: lock wait timeout: %w", base.ErrLockTimeout)
)

// Stats counts lock-manager activity; experiment E4 compares lock overhead
// between the fetch-ahead and static-range protocols.
type Stats struct {
	Acquired  uint64
	Waited    uint64
	Deadlocks uint64
	Timeouts  uint64
	Cancels   uint64
	Upgrades  uint64
}

type request struct {
	txn     base.TxnID
	mode    Mode
	upgrade bool
	ready   chan error
}

type lockState struct {
	granted map[base.TxnID]Mode
	queue   []*request
}

// Manager is a lock manager. The zero value is not usable; call New.
type Manager struct {
	mu    sync.Mutex
	locks map[Resource]*lockState
	held  map[base.TxnID]map[Resource]Mode
	// waiting maps a txn to the resource it is blocked on (at most one).
	waiting map[base.TxnID]Resource

	// Timeout bounds each lock wait; zero means wait forever (deadlock
	// detection still applies).
	Timeout time.Duration

	// poisoned, once set, fails every current and future wait with this
	// error: the manager was superseded (TC crash) and nothing will ever
	// release the locks its waiters are queued behind.
	poisoned error

	acquired, waited, deadlocks, timeouts, cancels, upgrades atomic.Uint64
}

// New returns an empty lock manager.
func New() *Manager {
	return &Manager{
		locks:   make(map[Resource]*lockState),
		held:    make(map[base.TxnID]map[Resource]Mode),
		waiting: make(map[base.TxnID]Resource),
	}
}

// Lock acquires res in mode for txn with the manager's default wait bound,
// blocking until granted, the wait expires, or ctx is done. See LockWait.
func (m *Manager) Lock(ctx context.Context, txn base.TxnID, res Resource, mode Mode) error {
	return m.LockWait(ctx, txn, res, mode, m.Timeout)
}

// LockWait acquires res in mode for txn, blocking until granted. timeout
// bounds this wait (zero: wait forever); it overrides the manager default,
// which lets callers carry a per-transaction bound. It returns ErrDeadlock
// if granting would close a waits-for cycle (the caller should abort the
// transaction), ErrTimeout if the wait expires, or an ErrCancelled-wrapped
// ctx error if ctx is done first. Re-acquiring a covered mode is a no-op;
// requesting a stronger mode upgrades.
func (m *Manager) LockWait(ctx context.Context, txn base.TxnID, res Resource, mode Mode, timeout time.Duration) error {
	m.mu.Lock()
	if err := m.poisoned; err != nil {
		m.mu.Unlock()
		return err
	}
	cur := m.held[txn][res]
	if cur.Covers(mode) {
		m.mu.Unlock()
		return nil
	}
	st := m.locks[res]
	if st == nil {
		st = &lockState{granted: make(map[base.TxnID]Mode, 1)}
		m.locks[res] = st
	}
	upgrade := cur != None
	if upgrade {
		m.upgrades.Add(1)
		// The held mode stays granted while the upgrade waits.
	}
	if m.grantableLocked(st, txn, mode, upgrade) {
		m.grantLocked(st, txn, res, mode)
		m.mu.Unlock()
		return nil
	}
	req := &request{txn: txn, mode: mode, upgrade: upgrade, ready: make(chan error, 1)}
	if upgrade {
		st.queue = append([]*request{req}, st.queue...)
	} else {
		st.queue = append(st.queue, req)
	}
	m.waiting[txn] = res
	if m.cycleLocked(txn) {
		m.removeRequestLocked(st, req)
		delete(m.waiting, txn)
		m.deadlocks.Add(1)
		m.mu.Unlock()
		return ErrDeadlock
	}
	m.waited.Add(1)
	m.mu.Unlock()

	var expire <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expire = t.C
	}
	// abandon withdraws the request unless a grant won the race; the
	// re-check under the mutex closes the window where wakeLocked already
	// delivered into req.ready.
	abandon := func(count *atomic.Uint64, failure error) error {
		m.mu.Lock()
		select {
		case err := <-req.ready:
			m.mu.Unlock()
			return err
		default:
		}
		m.removeRequestLocked(m.locks[res], req)
		delete(m.waiting, txn)
		count.Add(1)
		m.mu.Unlock()
		return failure
	}
	select {
	case err := <-req.ready:
		return err
	case <-expire:
		return abandon(&m.timeouts, ErrTimeout)
	case <-ctx.Done():
		return abandon(&m.cancels, fmt.Errorf("lockmgr: wait for %v abandoned: %w", res, base.CancelErr(ctx)))
	}
}

// grantableLocked reports whether txn can be granted mode right now:
// compatible with every other holder, and (unless upgrading) no earlier
// waiter exists (FIFO fairness).
func (m *Manager) grantableLocked(st *lockState, txn base.TxnID, mode Mode, upgrade bool) bool {
	for holder, hm := range st.granted {
		if holder == txn {
			continue
		}
		if !Compatible(mode, hm) {
			return false
		}
	}
	if !upgrade {
		for _, w := range st.queue {
			if w.txn != txn {
				return false // someone queued ahead
			}
		}
	}
	return true
}

func (m *Manager) grantLocked(st *lockState, txn base.TxnID, res Resource, mode Mode) {
	st.granted[txn] = mode
	h := m.held[txn]
	if h == nil {
		h = make(map[Resource]Mode, 4)
		m.held[txn] = h
	}
	h[res] = mode
	m.acquired.Add(1)
}

func (m *Manager) removeRequestLocked(st *lockState, req *request) {
	if st == nil {
		return
	}
	for i, r := range st.queue {
		if r == req {
			st.queue = append(st.queue[:i], st.queue[i+1:]...)
			return
		}
	}
}

// Release drops txn's lock on res and wakes newly grantable waiters.
func (m *Manager) Release(txn base.TxnID, res Resource) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.releaseLocked(txn, res)
}

func (m *Manager) releaseLocked(txn base.TxnID, res Resource) {
	st := m.locks[res]
	if st == nil {
		return
	}
	delete(st.granted, txn)
	if h := m.held[txn]; h != nil {
		delete(h, res)
		if len(h) == 0 {
			delete(m.held, txn)
		}
	}
	m.wakeLocked(st, res)
	if len(st.granted) == 0 && len(st.queue) == 0 {
		delete(m.locks, res)
	}
}

// wakeLocked grants queued requests in order until one cannot be granted.
func (m *Manager) wakeLocked(st *lockState, res Resource) {
	for len(st.queue) > 0 {
		req := st.queue[0]
		ok := true
		for holder, hm := range st.granted {
			if holder == req.txn {
				continue
			}
			if !Compatible(req.mode, hm) {
				ok = false
				break
			}
		}
		if !ok {
			return
		}
		st.queue = st.queue[1:]
		delete(m.waiting, req.txn)
		m.grantLocked(st, req.txn, res, req.mode)
		req.ready <- nil
	}
}

// Poison fails every blocked waiter with err and makes every future
// LockWait return it immediately. TC.Crash poisons the lock manager it
// discards: the waiters still queued in it belong to the dead
// incarnation — the locks they are blocked behind vanished with the
// table, so nothing will ever wake them — and they must fail out instead
// of sleeping forever. A granted request that raced the poison keeps its
// grant; only waits fail.
func (m *Manager) Poison(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.poisoned != nil {
		return
	}
	m.poisoned = err
	for _, st := range m.locks {
		for _, req := range st.queue {
			req.ready <- err
		}
		st.queue = nil
	}
	m.waiting = make(map[base.TxnID]Resource)
}

// ReleaseAll drops every lock txn holds (commit/abort).
func (m *Manager) ReleaseAll(txn base.TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.held[txn]
	if h == nil {
		return
	}
	resources := make([]Resource, 0, len(h))
	for res := range h {
		resources = append(resources, res)
	}
	for _, res := range resources {
		m.releaseLocked(txn, res)
	}
}

// Held returns the modes txn currently holds (copy; diagnostics/tests).
func (m *Manager) Held(txn base.TxnID) map[Resource]Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[Resource]Mode, len(m.held[txn]))
	for r, md := range m.held[txn] {
		out[r] = md
	}
	return out
}

// cycleLocked reports whether txn's wait closes a waits-for cycle.
func (m *Manager) cycleLocked(start base.TxnID) bool {
	visited := map[base.TxnID]bool{}
	var dfs func(t base.TxnID) bool
	dfs = func(t base.TxnID) bool {
		res, isWaiting := m.waiting[t]
		if !isWaiting {
			return false
		}
		st := m.locks[res]
		if st == nil {
			return false
		}
		var req *request
		for _, r := range st.queue {
			if r.txn == t {
				req = r
				break
			}
		}
		if req == nil {
			return false
		}
		blockers := map[base.TxnID]bool{}
		for holder, hm := range st.granted {
			if holder != t && !Compatible(req.mode, hm) {
				blockers[holder] = true
			}
		}
		if !req.upgrade {
			for _, w := range st.queue {
				if w == req {
					break
				}
				if w.txn != t {
					blockers[w.txn] = true
				}
			}
		}
		for b := range blockers {
			if b == start {
				return true
			}
			if !visited[b] {
				visited[b] = true
				if dfs(b) {
					return true
				}
			}
		}
		return false
	}
	return dfs(start)
}

// Stats returns a snapshot of activity counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Acquired:  m.acquired.Load(),
		Waited:    m.waited.Load(),
		Deadlocks: m.deadlocks.Load(),
		Timeouts:  m.timeouts.Load(),
		Cancels:   m.cancels.Load(),
		Upgrades:  m.upgrades.Load(),
	}
}
