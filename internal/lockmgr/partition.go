package lockmgr

import "sort"

// Partition is a static partitioning of a table's key space into contiguous
// range buckets, the "Range locks" protocol of §3.1: "Introduce explicit
// range locks that partition the keys of any table. … Each range of the
// partition is locked prior to accessing the requested records."
//
// A partition with bounds b1 < b2 < … < bn defines n+1 buckets:
//
//	bucket 0: keys < b1
//	bucket i: bi <= keys < b(i+1)
//	bucket n: keys >= bn
type Partition struct {
	bounds []string
}

// NewPartition builds a partition from split points (sorted and
// de-duplicated internally).
func NewPartition(bounds []string) Partition {
	b := append([]string(nil), bounds...)
	sort.Strings(b)
	out := b[:0]
	for i, s := range b {
		if i == 0 || s != b[i-1] {
			out = append(out, s)
		}
	}
	return Partition{bounds: out}
}

// UniformBytePartition builds a partition splitting on the first byte into
// n roughly equal buckets over the full byte range.
func UniformBytePartition(n int) Partition {
	if n <= 1 {
		return Partition{}
	}
	bounds := make([]string, 0, n-1)
	for i := 1; i < n; i++ {
		bounds = append(bounds, string([]byte{byte(i * 256 / n)}))
	}
	return NewPartition(bounds)
}

// Buckets returns the number of buckets.
func (p Partition) Buckets() int { return len(p.bounds) + 1 }

// Locate returns the bucket containing key.
func (p Partition) Locate(key string) int32 {
	// Number of bounds <= key.
	i := sort.SearchStrings(p.bounds, key)
	if i < len(p.bounds) && p.bounds[i] == key {
		i++
	}
	return int32(i)
}

// Overlapping returns the bucket indexes intersecting [lo, hi); hi == ""
// means unbounded above.
func (p Partition) Overlapping(lo, hi string) []int32 {
	from := p.Locate(lo)
	to := int32(len(p.bounds)) // last bucket
	if hi != "" {
		// hi is exclusive: the bucket containing hi is included only if
		// the interval reaches into it, i.e. some key < hi lies in it.
		to = p.Locate(hi)
		if to > from {
			// If hi is exactly a bound, bucket `to` starts at hi and the
			// exclusive interval does not reach it.
			j := sort.SearchStrings(p.bounds, hi)
			if j < len(p.bounds) && p.bounds[j] == hi {
				to--
			}
		}
	}
	if to < from { // empty interval
		return nil
	}
	out := make([]int32, 0, to-from+1)
	for b := from; b <= to; b++ {
		out = append(out, b)
	}
	return out
}
