package lockmgr

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"github.com/cidr09/unbundled/internal/base"
)

func TestCompatibilityMatrix(t *testing.T) {
	cases := []struct {
		req, held Mode
		want      bool
	}{
		{S, S, true}, {S, U, true}, {S, X, false},
		{U, S, true}, {U, U, false}, {U, X, false},
		{X, S, false}, {X, U, false}, {X, X, false},
	}
	for _, c := range cases {
		if got := Compatible(c.req, c.held); got != c.want {
			t.Errorf("Compatible(%v,%v) = %v want %v", c.req, c.held, got, c.want)
		}
	}
}

func TestCovers(t *testing.T) {
	if !X.Covers(S) || !X.Covers(U) || !X.Covers(X) {
		t.Fatal("X must cover everything")
	}
	if !U.Covers(S) || U.Covers(X) {
		t.Fatal("U covers S only (besides itself)")
	}
	if S.Covers(X) || S.Covers(U) {
		t.Fatal("S covers nothing stronger")
	}
}

func TestSharedThenExclusiveBlocks(t *testing.T) {
	m := New()
	r := KeyRes("t", "k")
	if err := m.Lock(context.Background(), 1, r, S); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(context.Background(), 2, r, S); err != nil {
		t.Fatal(err)
	}
	granted := make(chan struct{})
	go func() {
		if err := m.Lock(context.Background(), 3, r, X); err != nil {
			t.Error(err)
		}
		close(granted)
	}()
	select {
	case <-granted:
		t.Fatal("X granted alongside S holders")
	case <-time.After(20 * time.Millisecond):
	}
	m.Release(1, r)
	select {
	case <-granted:
		t.Fatal("X granted with one S holder left")
	case <-time.After(20 * time.Millisecond):
	}
	m.Release(2, r)
	select {
	case <-granted:
	case <-time.After(time.Second):
		t.Fatal("X never granted")
	}
}

func TestReacquireIsNoop(t *testing.T) {
	m := New()
	r := KeyRes("t", "k")
	for i := 0; i < 3; i++ {
		if err := m.Lock(context.Background(), 1, r, X); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Lock(context.Background(), 1, r, S); err != nil {
		t.Fatal("X must cover S re-request")
	}
	m.ReleaseAll(1)
	if err := m.Lock(context.Background(), 2, r, X); err != nil {
		t.Fatal("release-all did not free the lock")
	}
}

func TestUpgrade(t *testing.T) {
	m := New()
	r := KeyRes("t", "k")
	if err := m.Lock(context.Background(), 1, r, S); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(context.Background(), 2, r, S); err != nil {
		t.Fatal(err)
	}
	upgraded := make(chan error, 1)
	go func() { upgraded <- m.Lock(context.Background(), 1, r, X) }()
	select {
	case err := <-upgraded:
		t.Fatalf("upgrade granted while other S holder present: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.Release(2, r)
	if err := <-upgraded; err != nil {
		t.Fatal(err)
	}
	if got := m.Held(1)[r]; got != X {
		t.Fatalf("held mode = %v", got)
	}
}

func TestUpgradeJumpsQueue(t *testing.T) {
	m := New()
	r := KeyRes("t", "k")
	m.Lock(context.Background(), 1, r, S)
	// Txn 2 queues for X behind txn 1's S.
	got2 := make(chan error, 1)
	go func() { got2 <- m.Lock(context.Background(), 2, r, X) }()
	time.Sleep(10 * time.Millisecond)
	// Txn 1 upgrades: must jump ahead of txn 2 (and be granted since it is
	// the only holder).
	if err := m.Lock(context.Background(), 1, r, X); err != nil {
		t.Fatalf("upgrade: %v", err)
	}
	m.ReleaseAll(1)
	if err := <-got2; err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := New()
	ra, rb := KeyRes("t", "a"), KeyRes("t", "b")
	m.Lock(context.Background(), 1, ra, X)
	m.Lock(context.Background(), 2, rb, X)
	errs := make(chan error, 2)
	go func() { errs <- m.Lock(context.Background(), 1, rb, X) }()
	time.Sleep(20 * time.Millisecond)
	go func() { errs <- m.Lock(context.Background(), 2, ra, X) }()
	err := <-errs
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected deadlock, got %v", err)
	}
	// The victim aborts: releasing its locks unblocks the survivor.
	m.ReleaseAll(2)
	if err := <-errs; err != nil {
		t.Fatalf("survivor got %v", err)
	}
	m.ReleaseAll(1)
	if m.Stats().Deadlocks != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

func TestThreeWayDeadlock(t *testing.T) {
	m := New()
	r := func(k string) Resource { return KeyRes("t", k) }
	m.Lock(context.Background(), 1, r("a"), X)
	m.Lock(context.Background(), 2, r("b"), X)
	m.Lock(context.Background(), 3, r("c"), X)
	errs := make(chan error, 3)
	go func() { errs <- m.Lock(context.Background(), 1, r("b"), X) }()
	time.Sleep(10 * time.Millisecond)
	go func() { errs <- m.Lock(context.Background(), 2, r("c"), X) }()
	time.Sleep(10 * time.Millisecond)
	go func() { errs <- m.Lock(context.Background(), 3, r("a"), X) }()
	err := <-errs
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected deadlock, got %v", err)
	}
	m.ReleaseAll(3) // victim was 3 (it closed the cycle)
	if e := <-errs; e != nil {
		t.Fatalf("unexpected: %v", e)
	}
}

func TestTimeout(t *testing.T) {
	m := New()
	m.Timeout = 30 * time.Millisecond
	r := KeyRes("t", "k")
	m.Lock(context.Background(), 1, r, X)
	start := time.Now()
	err := m.Lock(context.Background(), 2, r, X)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want timeout, got %v", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("returned too early")
	}
	// After the timeout the queue entry is gone; release and re-acquire.
	m.ReleaseAll(1)
	if err := m.Lock(context.Background(), 2, r, X); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOFairnessNoStarvation(t *testing.T) {
	m := New()
	r := KeyRes("t", "k")
	m.Lock(context.Background(), 1, r, S)
	// Writer queues.
	wGot := make(chan struct{})
	go func() {
		m.Lock(context.Background(), 2, r, X)
		close(wGot)
	}()
	time.Sleep(10 * time.Millisecond)
	// A later reader must NOT jump ahead of the queued writer.
	rGot := make(chan struct{})
	go func() {
		m.Lock(context.Background(), 3, r, S)
		close(rGot)
	}()
	select {
	case <-rGot:
		t.Fatal("reader starved the queued writer")
	case <-time.After(20 * time.Millisecond):
	}
	m.Release(1, r)
	<-wGot
	m.Release(2, r)
	<-rGot
}

// Mutual exclusion property under concurrent stress: at most one X holder
// or any number of S holders, never both.
func TestStressMutualExclusion(t *testing.T) {
	m := New()
	res := KeyRes("t", "hot")
	var readers, writers atomic.Int32
	var violations atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(id)))
			for i := 0; i < 300; i++ {
				txn := base.TxnID(id*1000 + i + 1)
				if rnd.Intn(2) == 0 {
					if err := m.Lock(context.Background(), txn, res, S); err != nil {
						continue
					}
					readers.Add(1)
					if writers.Load() > 0 {
						violations.Add(1)
					}
					readers.Add(-1)
				} else {
					if err := m.Lock(context.Background(), txn, res, X); err != nil {
						continue
					}
					writers.Add(1)
					if writers.Load() > 1 || readers.Load() > 0 {
						violations.Add(1)
					}
					writers.Add(-1)
				}
				m.ReleaseAll(txn)
			}
		}(g)
	}
	wg.Wait()
	if v := violations.Load(); v > 0 {
		t.Fatalf("%d mutual-exclusion violations", v)
	}
}

func TestRandomStressNoLostWakeups(t *testing.T) {
	m := New()
	m.Timeout = 2 * time.Second
	keys := []string{"a", "b", "c", "d", "e"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(id) * 77))
			for i := 0; i < 200; i++ {
				txn := base.TxnID(id*10000 + i + 1)
				n := 1 + rnd.Intn(3)
				ok := true
				for j := 0; j < n; j++ {
					res := KeyRes("t", keys[rnd.Intn(len(keys))])
					mode := []Mode{S, U, X}[rnd.Intn(3)]
					if err := m.Lock(context.Background(), txn, res, mode); err != nil {
						ok = false
						break
					}
				}
				_ = ok
				m.ReleaseAll(txn)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stress test hung: lost wakeup or undetected deadlock")
	}
}

func TestPartitionLocate(t *testing.T) {
	p := NewPartition([]string{"g", "n", "t"})
	if p.Buckets() != 4 {
		t.Fatalf("buckets = %d", p.Buckets())
	}
	cases := map[string]int32{"a": 0, "f": 0, "g": 1, "m": 1, "n": 2, "s": 2, "t": 3, "z": 3}
	for k, want := range cases {
		if got := p.Locate(k); got != want {
			t.Errorf("Locate(%q) = %d want %d", k, got, want)
		}
	}
}

func TestPartitionOverlapping(t *testing.T) {
	p := NewPartition([]string{"g", "n", "t"})
	cases := []struct {
		lo, hi string
		want   []int32
	}{
		{"a", "f", []int32{0}},
		{"a", "g", []int32{0}}, // hi == bound: bucket 1 untouched
		{"a", "h", []int32{0, 1}},
		{"g", "t", []int32{1, 2}},
		{"g", "z", []int32{1, 2, 3}},
		{"a", "", []int32{0, 1, 2, 3}},
		{"u", "", []int32{3}},
	}
	for _, c := range cases {
		got := p.Overlapping(c.lo, c.hi)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("Overlapping(%q,%q) = %v want %v", c.lo, c.hi, got, c.want)
		}
	}
}

// Property: Overlapping(lo,hi) == exactly the set of buckets of keys in
// [lo,hi), computed by brute force over a sample key space.
func TestQuickPartitionOverlapMatchesBruteForce(t *testing.T) {
	f := func(rawBounds []byte, a, b byte) bool {
		var bounds []string
		for _, x := range rawBounds {
			bounds = append(bounds, string([]byte{x}))
		}
		p := NewPartition(bounds)
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == hi {
			return true
		}
		want := map[int32]bool{}
		for k := int(lo); k < int(hi); k++ {
			want[p.Locate(string([]byte{byte(k)}))] = true
		}
		got := p.Overlapping(string([]byte{lo}), string([]byte{hi}))
		if len(got) < len(want) {
			return false // must cover every touched bucket
		}
		gotSet := map[int32]bool{}
		for _, g := range got {
			gotSet[g] = true
		}
		for w := range want {
			if !gotSet[w] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformBytePartition(t *testing.T) {
	p := UniformBytePartition(16)
	if p.Buckets() != 16 {
		t.Fatalf("buckets = %d", p.Buckets())
	}
	if UniformBytePartition(1).Buckets() != 1 {
		t.Fatal("n=1 must mean a single bucket")
	}
}

func BenchmarkUncontendedLock(b *testing.B) {
	m := New()
	res := KeyRes("t", "k")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		txn := base.TxnID(i + 1)
		m.Lock(context.Background(), txn, res, X)
		m.ReleaseAll(txn)
	}
}

func BenchmarkLockPerKey(b *testing.B) {
	m := New()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			txn := base.TxnID(rand.Int63() + 1)
			res := KeyRes("t", fmt.Sprintf("k%d", i%1024))
			if m.Lock(context.Background(), txn, res, S) == nil {
				m.ReleaseAll(txn)
			}
		}
	})
}

// TestErrorTaxonomy pins the sentinel folding: lockmgr failures must
// errors.Is-match the public taxonomy (and classify as transient) so
// retry policies can branch without string matching.
func TestErrorTaxonomy(t *testing.T) {
	if !errors.Is(ErrDeadlock, base.ErrDeadlock) {
		t.Fatal("ErrDeadlock does not fold into base.ErrDeadlock")
	}
	if !errors.Is(ErrTimeout, base.ErrLockTimeout) {
		t.Fatal("ErrTimeout does not fold into base.ErrLockTimeout")
	}
	if !base.IsTransient(ErrDeadlock) || !base.IsTransient(ErrTimeout) {
		t.Fatal("deadlock/timeout must classify as transient")
	}

	// End to end: a real deadlock and a real timeout carry the sentinels.
	m := New()
	ra, rb := KeyRes("t", "a"), KeyRes("t", "b")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.Lock(context.Background(), 1, ra, X))
	must(m.Lock(context.Background(), 2, rb, X))
	errs := make(chan error, 1)
	go func() { errs <- m.Lock(context.Background(), 1, rb, X) }()
	time.Sleep(20 * time.Millisecond)
	err := m.Lock(context.Background(), 2, ra, X)
	if !errors.Is(err, base.ErrDeadlock) {
		t.Fatalf("deadlock error %v does not match base.ErrDeadlock", err)
	}
	m.ReleaseAll(2)
	must(<-errs)
	m.ReleaseAll(1)

	m.Lock(context.Background(), 3, ra, X)
	if err := m.LockWait(context.Background(), 4, ra, X, 20*time.Millisecond); !errors.Is(err, base.ErrLockTimeout) {
		t.Fatalf("timeout error %v does not match base.ErrLockTimeout", err)
	}
	m.ReleaseAll(3)
}

// TestLockWaitCancellation: a blocked lock wait returns promptly when the
// context is cancelled, the error matches both ErrCancelled and the
// context's own error, and the abandoned request leaves no queue residue
// (the resource is re-acquirable and the waits-for graph is clean).
func TestLockWaitCancellation(t *testing.T) {
	m := New()
	r := KeyRes("t", "k")
	if err := m.Lock(context.Background(), 1, r, X); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, 1)
	go func() { errs <- m.Lock(ctx, 2, r, X) }()
	time.Sleep(10 * time.Millisecond) // let txn 2 enqueue
	start := time.Now()
	cancel()
	select {
	case err := <-errs:
		if !errors.Is(err, base.ErrCancelled) {
			t.Fatalf("want ErrCancelled, got %v", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled via errors.Is, got %v", err)
		}
		if base.IsTransient(err) {
			t.Fatal("cancellation must not classify as transient")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled lock wait did not return")
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Fatalf("cancelled wait took %v", el)
	}
	if m.Stats().Cancels != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
	// The abandoned request must be gone: release and re-acquire works.
	m.ReleaseAll(1)
	if err := m.Lock(context.Background(), 3, r, X); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(3)
}

// TestLockDeadlineExceeded: a context deadline behaves like cancellation
// and surfaces context.DeadlineExceeded through errors.Is.
func TestLockDeadlineExceeded(t *testing.T) {
	m := New()
	r := KeyRes("t", "k")
	if err := m.Lock(context.Background(), 1, r, X); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := m.Lock(ctx, 2, r, X)
	if !errors.Is(err, base.ErrCancelled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrCancelled + DeadlineExceeded, got %v", err)
	}
	m.ReleaseAll(1)
}

// TestPoison: a superseded manager (TC crash) fails every blocked waiter
// and every future wait with the poisoning error, while grants that
// already happened stay granted.
func TestPoison(t *testing.T) {
	m := New()
	r := KeyRes("t", "k")
	if err := m.Lock(context.Background(), 1, r, X); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- m.Lock(context.Background(), 2, r, X) }()
	go func() { errs <- m.Lock(context.Background(), 3, KeyRes("t", "other"), S) }()
	for i := 0; ; i++ {
		m.mu.Lock()
		queued := len(m.waiting)
		m.mu.Unlock()
		if queued == 1 { // txn 3 is granted instantly; only txn 2 queues
			break
		}
		if i > 1000 {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	poison := fmt.Errorf("table gone: %w", base.ErrUnavailable)
	m.Poison(poison)

	// txn 3's grant succeeded; txn 2's wait fails with the poison error.
	var sawErr, sawNil int
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err == nil {
				sawNil++
			} else if errors.Is(err, base.ErrUnavailable) {
				sawErr++
			} else {
				t.Fatalf("unexpected error %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("poisoned waiter did not return")
		}
	}
	if sawErr != 1 || sawNil != 1 {
		t.Fatalf("got %d errors and %d grants, want 1 and 1", sawErr, sawNil)
	}
	// Future waits fail immediately, even for free resources.
	if err := m.Lock(context.Background(), 9, KeyRes("t", "free"), S); !errors.Is(err, base.ErrUnavailable) {
		t.Fatalf("post-poison lock = %v, want the poison error", err)
	}
	// Poisoning twice is a no-op.
	m.Poison(errors.New("second"))
	if err := m.Lock(context.Background(), 10, KeyRes("t", "free"), S); !errors.Is(err, poison) {
		t.Fatalf("second poison replaced the first: %v", err)
	}
}
