// Package placement implements the declarative deployment map of §6.1:
// for every table, a data axis (which data component serves each key) and
// an update-ownership axis (which transactional component holds the
// exclusive right to update each key). Data placement decides where a
// logical operation is shipped; update ownership is the contract that lets
// several TCs share DCs without any cross-TC concurrency control — each TC
// runs strict 2PL over its own partition, all TCs may read everywhere
// (§6.2 versioned reads make that safe), and a TC refuses to write outside
// its partition (base.ErrWrongOwner).
//
// A Placement is text-round-trippable so the identical spec can drive an
// in-process deployment (core.Options.Placement) and a fleet of separate
// OS processes (cmd/unbundled-tc -placement): Parse reads the grammar
// below and String prints the canonical form, with
// Parse(s).String() == Parse(Parse(s).String()).String().
//
// # Spec grammar
//
// A spec is a list of table clauses separated by ";" or newlines:
//
//	<table>: dc=<axis> owner=<axis>
//
// The table "*" is the optional catch-all for tables not named by any
// other clause; without it, lookups on an unknown table fail with
// base.ErrUnknownTable instead of silently landing on DC 0. "dc=" defaults
// to 0 and "owner=" to "any" when omitted.
//
// An axis maps a key to a target: a DC index (0-based) on the dc axis, a
// TC ID (1-based) on the owner axis. Axis forms:
//
//	3               every key to one fixed target
//	any             owner axis only: no ownership partition (any TC may
//	                update; the pre-§6.1 posture, safe only with one TC)
//	hash(N)         FNV-32a of the whole key across N targets counted
//	                from the axis base (DCs 0..N-1, TCs 1..N)
//	hash(LO-HI)     same, across the explicit target span LO..HI
//	mod(N) mod(LO-HI)
//	                the key's first decimal digit run, modulo the span —
//	                matches index-structured keys like "key00000042" or
//	                "u000007/m000003" (partition by user)
//	mod2(N) mod2(LO-HI)
//	                the key's second digit run ("m000003/u000007"
//	                partitions by user while data clusters by movie)
//	range(<K1:T1,<K2:T2,...,*:T)
//	                named key ranges: keys < K1 to T1, then keys < K2 to
//	                T2, ...; the mandatory final "*" takes the rest. Keys
//	                must be strictly increasing.
//
// Example — two tables over three DCs, update ownership split between two
// TCs by key range while a third (reader) TC owns nothing:
//
//	users: dc=hash(0-1) owner=range(<m:1,*:2); events: dc=2 owner=any
package placement

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"github.com/cidr09/unbundled/internal/base"
)

// Router is the run-time placement oracle a TC (and the deployment
// client) consults: data placement for shipping operations, update
// ownership for §6.1 enforcement and write-intent routing. Placement
// implements it.
type Router interface {
	// DC resolves the data component index serving (table, key).
	DC(table, key string) (int, error)
	// Owner resolves the TC ID owning update rights for (table, key);
	// zero means unowned — any TC may update (no §6.1 partition).
	Owner(table, key string) (base.TCID, error)
}

type axisKind uint8

const (
	axisAny axisKind = iota
	axisFixed
	axisHash
	axisMod
	axisMod2
	axisRange
)

var axisNames = map[axisKind]string{axisHash: "hash", axisMod: "mod", axisMod2: "mod2"}

// rangeEntry maps keys below Below to Target; the final entry of an axis
// has Below == "" and catches everything at or above the last split.
type rangeEntry struct {
	below  string
	target int
}

// axis maps a key to a target in one span of the deployment: lo..hi for
// the span kinds (hash/mod/mod2), lo for fixed, entries for range.
type axis struct {
	kind    axisKind
	lo, hi  int
	entries []rangeEntry
}

func (a axis) target(key string) int {
	switch a.kind {
	case axisFixed:
		return a.lo
	case axisHash:
		h := fnv.New32a()
		h.Write([]byte(key))
		return a.lo + int(h.Sum32()%uint32(a.hi-a.lo+1))
	case axisMod:
		return a.lo + digitRun(key, 1)%(a.hi-a.lo+1)
	case axisMod2:
		return a.lo + digitRun(key, 2)%(a.hi-a.lo+1)
	case axisRange:
		for _, e := range a.entries[:len(a.entries)-1] {
			if key < e.below {
				return e.target
			}
		}
		return a.entries[len(a.entries)-1].target
	}
	return 0 // axisAny: callers never ask
}

// digitRun returns the value of the n-th contiguous decimal digit run in
// key (1-based), the last run when there are fewer, and 0 when there are
// none: "m000003/u000007" has runs 3 and 7.
func digitRun(key string, n int) int {
	val, runs, inRun := 0, 0, false
	for i := 0; i < len(key); i++ {
		if c := key[i]; c >= '0' && c <= '9' {
			if !inRun {
				if runs == n {
					break // already have the requested run
				}
				inRun, runs, val = true, runs+1, 0
			}
			if val < 1<<40 { // cap: long runs saturate instead of overflowing
				val = val*10 + int(c-'0')
			}
		} else {
			inRun = false
		}
	}
	return val
}

// maxTarget returns the highest target the axis can produce.
func (a axis) maxTarget() int {
	switch a.kind {
	case axisFixed:
		return a.lo
	case axisHash, axisMod, axisMod2:
		return a.hi
	case axisRange:
		m := 0
		for _, e := range a.entries {
			if e.target > m {
				m = e.target
			}
		}
		return m
	}
	return 0
}

func (a axis) format(base int) string {
	switch a.kind {
	case axisAny:
		return "any"
	case axisFixed:
		return strconv.Itoa(a.lo)
	case axisHash, axisMod, axisMod2:
		if a.lo == base {
			return fmt.Sprintf("%s(%d)", axisNames[a.kind], a.hi-a.lo+1)
		}
		return fmt.Sprintf("%s(%d-%d)", axisNames[a.kind], a.lo, a.hi)
	case axisRange:
		var b strings.Builder
		b.WriteString("range(")
		for i, e := range a.entries {
			if i > 0 {
				b.WriteByte(',')
			}
			if e.below == "" {
				b.WriteByte('*')
			} else {
				b.WriteByte('<')
				b.WriteString(e.below)
			}
			b.WriteByte(':')
			b.WriteString(strconv.Itoa(e.target))
		}
		b.WriteByte(')')
		return b.String()
	}
	return "?"
}

// tableSpec is one table's two axes.
type tableSpec struct {
	data  axis // targets are DC indices (0-based)
	owner axis // targets are TC IDs (1-based); axisAny = unowned
}

// Placement is a parsed, immutable deployment map. The zero value is not
// usable; build one with Parse, MustParse, or Hash.
type Placement struct {
	tables map[string]tableSpec
	catch  *tableSpec // the "*" clause, nil when absent
}

// Parse reads a placement spec (see the package grammar) and returns the
// Placement it describes. Parse is strict about structure — unknown
// fields, overlapping clauses, descending range keys, and out-of-base
// targets are errors — but lenient about layout (extra whitespace,
// newline or ";" clause separators, spaces inside parentheses).
func Parse(spec string) (*Placement, error) {
	p := &Placement{tables: make(map[string]tableSpec)}
	for _, clause := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == '\n' }) {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, rest, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("placement: clause %q: want \"<table>: dc=... owner=...\"", clause)
		}
		name = strings.TrimSpace(name)
		if name == "" || strings.ContainsAny(name, " \t(),=<*") && name != "*" {
			return nil, fmt.Errorf("placement: bad table name %q", name)
		}
		if _, dup := p.tables[name]; dup || (name == "*" && p.catch != nil) {
			return nil, fmt.Errorf("placement: duplicate clause for table %q", name)
		}
		ts := tableSpec{data: axis{kind: axisFixed}, owner: axis{kind: axisAny}}
		seen := map[string]bool{}
		for _, field := range splitTop(rest, ' ') {
			k, v, ok := strings.Cut(field, "=")
			if !ok {
				return nil, fmt.Errorf("placement: table %q: bad field %q (want dc=... or owner=...)", name, field)
			}
			if seen[k] {
				return nil, fmt.Errorf("placement: table %q: duplicate %s axis", name, k)
			}
			seen[k] = true
			var err error
			switch k {
			case "dc":
				ts.data, err = parseAxis(v, 0)
			case "owner":
				ts.owner, err = parseAxis(v, 1)
			default:
				err = fmt.Errorf("unknown axis %q (want dc or owner)", k)
			}
			if err != nil {
				return nil, fmt.Errorf("placement: table %q: %w", name, err)
			}
		}
		if name == "*" {
			c := ts
			p.catch = &c
		} else {
			p.tables[name] = ts
		}
	}
	if len(p.tables) == 0 && p.catch == nil {
		return nil, fmt.Errorf("placement: empty spec")
	}
	return p, nil
}

// MustParse is Parse for compile-time-constant specs; it panics on error.
func MustParse(spec string) *Placement {
	p, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// splitTop splits s on sep outside parentheses, dropping empty parts, so
// "dc=range(<a:0, <b:1)" stays one field despite its inner space.
func splitTop(s string, sep byte) []string {
	var out []string
	depth, start := 0, 0
	flush := func(end int) {
		if f := strings.TrimSpace(s[start:end]); f != "" {
			out = append(out, f)
		}
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case sep:
			if depth == 0 {
				flush(i)
				start = i + 1
			}
		}
	}
	flush(len(s))
	return out
}

// parseAxis reads one axis. base is the smallest legal target: 0 for the
// dc axis, 1 for the owner axis (which alone also accepts "any").
func parseAxis(v string, base int) (axis, error) {
	v = strings.TrimSpace(v)
	if v == "any" {
		if base != 1 {
			return axis{}, fmt.Errorf("axis %q: \"any\" is owner-only", v)
		}
		return axis{kind: axisAny}, nil
	}
	if n, err := strconv.Atoi(v); err == nil {
		if n < base {
			return axis{}, fmt.Errorf("axis %q: target below %d", v, base)
		}
		return axis{kind: axisFixed, lo: n, hi: n}, nil
	}
	name, inner, ok := strings.Cut(strings.TrimSuffix(v, ")"), "(")
	if !ok || !strings.HasSuffix(v, ")") {
		return axis{}, fmt.Errorf("bad axis %q", v)
	}
	var kind axisKind
	switch name {
	case "hash":
		kind = axisHash
	case "mod":
		kind = axisMod
	case "mod2":
		kind = axisMod2
	case "range":
		return parseRange(inner, base)
	default:
		return axis{}, fmt.Errorf("bad axis %q (want a target, any, hash, mod, mod2, or range)", v)
	}
	lo, hi := base, 0
	if los, his, spanned := strings.Cut(inner, "-"); spanned {
		l, err1 := strconv.Atoi(strings.TrimSpace(los))
		h, err2 := strconv.Atoi(strings.TrimSpace(his))
		if err1 != nil || err2 != nil || l < base || h < l {
			return axis{}, fmt.Errorf("axis %q: bad span", v)
		}
		lo, hi = l, h
	} else {
		n, err := strconv.Atoi(strings.TrimSpace(inner))
		if err != nil || n < 1 {
			return axis{}, fmt.Errorf("axis %q: bad target count", v)
		}
		hi = base + n - 1
	}
	return axis{kind: kind, lo: lo, hi: hi}, nil
}

func parseRange(inner string, base int) (axis, error) {
	a := axis{kind: axisRange}
	for _, ent := range splitTop(inner, ',') {
		i := strings.LastIndexByte(ent, ':')
		if i < 0 {
			return axis{}, fmt.Errorf("range entry %q: want <key:target or *:target", ent)
		}
		target, err := strconv.Atoi(strings.TrimSpace(ent[i+1:]))
		if err != nil || target < base {
			return axis{}, fmt.Errorf("range entry %q: bad target", ent)
		}
		switch key := strings.TrimSpace(ent[:i]); {
		case key == "*":
			if len(a.entries) > 0 && a.entries[len(a.entries)-1].below == "" {
				return axis{}, fmt.Errorf("range: duplicate \"*\" entry")
			}
			a.entries = append(a.entries, rangeEntry{target: target})
		case strings.HasPrefix(key, "<") && len(key) > 1:
			below := key[1:]
			if strings.ContainsAny(below, "(),*;\n") {
				return axis{}, fmt.Errorf("range key %q: reserved character", below)
			}
			if n := len(a.entries); n > 0 {
				if last := a.entries[n-1]; last.below == "" || below <= last.below {
					return axis{}, fmt.Errorf("range keys must be strictly increasing with \"*\" last (at %q)", below)
				}
			}
			a.entries = append(a.entries, rangeEntry{below: below, target: target})
		default:
			return axis{}, fmt.Errorf("range entry %q: want <key:target or *:target", ent)
		}
	}
	if n := len(a.entries); n == 0 || a.entries[n-1].below != "" {
		return axis{}, fmt.Errorf("range needs a final \"*\" catch-all entry")
	}
	return a, nil
}

// Hash returns the uniform placement: every listed table hashed across
// all dcs data components, update ownership hashed across all tcs
// transactional components (owner "any" when tcs < 1).
func Hash(tables []string, dcs, tcs int) *Placement {
	if dcs < 1 {
		dcs = 1
	}
	p := &Placement{tables: make(map[string]tableSpec, len(tables))}
	for _, t := range tables {
		ts := tableSpec{data: axis{kind: axisHash, lo: 0, hi: dcs - 1}, owner: axis{kind: axisAny}}
		if tcs >= 1 {
			ts.owner = axis{kind: axisHash, lo: 1, hi: tcs}
		}
		p.tables[t] = ts
	}
	return p
}

// String prints the canonical spec: clauses sorted by table name with the
// "*" catch-all last, both axes explicit, no optional whitespace inside
// axes. Parse(p.String()) reproduces p.
func (p *Placement) String() string {
	names := make([]string, 0, len(p.tables))
	for name := range p.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	writeClause := func(name string, ts tableSpec) {
		if b.Len() > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s: dc=%s owner=%s", name, ts.data.format(0), ts.owner.format(1))
	}
	for _, name := range names {
		writeClause(name, p.tables[name])
	}
	if p.catch != nil {
		writeClause("*", *p.catch)
	}
	return b.String()
}

// Tables returns the explicitly placed table names, sorted (the "*"
// catch-all is not a table). Deployments use it to create tables when
// Options.Tables is not given.
func (p *Placement) Tables() []string {
	names := make([]string, 0, len(p.tables))
	for name := range p.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DataTargets returns the sorted set of data-component indices the
// table's data axis can route keys to: the fleet-assembly cross-check
// (core.Deployment.ValidatePlacement) asks every one of them to prove it
// actually serves the table before traffic flows. Span axes (hash, mod,
// mod2) report their whole span — any key may land anywhere in it.
func (p *Placement) DataTargets(table string) ([]int, error) {
	ts, err := p.spec(table)
	if err != nil {
		return nil, err
	}
	a := ts.data
	switch a.kind {
	case axisFixed:
		return []int{a.lo}, nil
	case axisHash, axisMod, axisMod2:
		out := make([]int, 0, a.hi-a.lo+1)
		for t := a.lo; t <= a.hi; t++ {
			out = append(out, t)
		}
		return out, nil
	case axisRange:
		set := make(map[int]bool, len(a.entries))
		for _, e := range a.entries {
			set[e.target] = true
		}
		out := make([]int, 0, len(set))
		for t := range set {
			out = append(out, t)
		}
		sort.Ints(out)
		return out, nil
	}
	return []int{0}, nil
}

func (p *Placement) spec(table string) (tableSpec, error) {
	if ts, ok := p.tables[table]; ok {
		return ts, nil
	}
	if p.catch != nil {
		return *p.catch, nil
	}
	return tableSpec{}, fmt.Errorf("placement: table %q: %w", table, base.ErrUnknownTable)
}

// DC implements Router: the data component index serving (table, key).
// Unknown tables fail typed (base.ErrUnknownTable) unless a "*" clause
// catches them.
func (p *Placement) DC(table, key string) (int, error) {
	ts, err := p.spec(table)
	if err != nil {
		return 0, err
	}
	return ts.data.target(key), nil
}

// Owner implements Router: the TC ID owning update rights for
// (table, key), or zero when the table's ownership axis is "any".
func (p *Placement) Owner(table, key string) (base.TCID, error) {
	ts, err := p.spec(table)
	if err != nil {
		return 0, err
	}
	if ts.owner.kind == axisAny {
		return 0, nil
	}
	return base.TCID(ts.owner.target(key)), nil
}

// Validate checks every reachable target against the deployment shape:
// data targets must be DC indices below dcs, ownership targets TC IDs at
// most tcs. Deployments validate at build time so a misdeclared spec
// fails loudly instead of misrouting at run time.
func (p *Placement) Validate(dcs, tcs int) error {
	check := func(name string, ts tableSpec) error {
		if m := ts.data.maxTarget(); m >= dcs {
			return fmt.Errorf("placement: table %q: dc axis reaches DC %d, deployment has %d", name, m, dcs)
		}
		if ts.owner.kind != axisAny {
			if m := ts.owner.maxTarget(); m > tcs {
				return fmt.Errorf("placement: table %q: owner axis reaches TC %d, fleet has %d", name, m, tcs)
			}
		}
		return nil
	}
	for name, ts := range p.tables {
		if err := check(name, ts); err != nil {
			return err
		}
	}
	if p.catch != nil {
		return check("*", *p.catch)
	}
	return nil
}
