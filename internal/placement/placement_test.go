package placement

import (
	"errors"
	"hash/fnv"
	"strings"
	"testing"

	"github.com/cidr09/unbundled/internal/base"
)

// TestCanonicalRoundTrip: ParsePlacement(s).String() is the canonical
// form — messy-but-equivalent inputs all print it, and it is a fixpoint
// of Parse∘String (the acceptance-criterion property).
func TestCanonicalRoundTrip(t *testing.T) {
	cases := []struct{ in, canon string }{
		{"kv: dc=hash(2) owner=hash(2)", "kv: dc=hash(2) owner=hash(2)"},
		{" kv :  dc=hash(2)   owner=hash(2) ;", "kv: dc=hash(2) owner=hash(2)"},
		{"b: dc=1\na: dc=0", "a: dc=0 owner=any; b: dc=1 owner=any"},
		{"*: dc=hash(4); kv: owner=3", "kv: dc=0 owner=3; *: dc=hash(4) owner=any"},
		{"kv: dc=range(<g:0, <p:1, *:2) owner=range(<m:1,*:2)",
			"kv: dc=range(<g:0,<p:1,*:2) owner=range(<m:1,*:2)"},
		{"u: dc=mod(2-3) owner=mod2(2)", "u: dc=mod(2-3) owner=mod2(2)"},
		{"u: dc=hash(0-1) owner=hash(1-2)", "u: dc=hash(2) owner=hash(2)"},
		{"u: dc=hash(2-5) owner=hash(2-3)", "u: dc=hash(2-5) owner=hash(2-3)"},
		{"kv: dc=hash(2) owner=range(<w2:1,*:2)", "kv: dc=hash(2) owner=range(<w2:1,*:2)"},
	}
	for _, c := range cases {
		p, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got := p.String(); got != c.canon {
			t.Fatalf("Parse(%q).String() = %q, want %q", c.in, got, c.canon)
		}
		// Fixpoint: parsing the canonical form reproduces it.
		p2, err := Parse(p.String())
		if err != nil {
			t.Fatalf("reparse canonical %q: %v", p.String(), err)
		}
		if p2.String() != c.canon {
			t.Fatalf("canonical not a fixpoint: %q -> %q", c.canon, p2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"",                            // empty
		"   ;  \n ",                   // effectively empty
		"kv dc=0",                     // no colon
		"kv: dc",                      // no '='
		"kv: zone=3",                  // unknown axis name
		"kv: dc=0 dc=1",               // duplicate axis
		"kv: dc=0; kv: dc=1",          // duplicate table
		"kv: dc=any",                  // any is owner-only
		"kv: owner=0",                 // owner IDs are 1-based
		"kv: dc=-1",                   // negative target
		"kv: dc=hash(0)",              // empty span
		"kv: owner=hash(0-2)",         // owner span below base
		"kv: dc=hash(5-3)",            // descending span
		"kv: dc=range(<b:0)",          // no catch-all
		"kv: dc=range(*:0,<b:1)",      // catch-all not last
		"kv: dc=range(<b:0,<a:1,*:2)", // descending keys
		"kv: dc=range(<a:0,<a:1,*:2)", // duplicate key
		"kv: dc=range(*:0,*:1)",       // duplicate catch-all
		"kv: dc=bogus(2)",             // unknown axis kind
		"kv: dc=range(a:0,*:1)",       // entry without < or *
		"kv: owner=range(<a:0,*:1)",   // owner target below base
		"k v: dc=0",                   // table name with space
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): expected error", spec)
		}
	}
}

func TestLookups(t *testing.T) {
	p := MustParse("kv: dc=hash(2) owner=range(<w2:1,*:2); idx: dc=1 owner=mod(2); rev: dc=mod(3) owner=mod2(2)")

	// hash axis matches FNV-32a of the whole key (the cmd's legacy -route
	// hash behaviour).
	h := fnv.New32a()
	h.Write([]byte("w1-000001-0"))
	wantDC := int(h.Sum32() % 2)
	if dc, err := p.DC("kv", "w1-000001-0"); err != nil || dc != wantDC {
		t.Fatalf("DC(kv) = %d, %v; want %d", dc, err, wantDC)
	}
	// range ownership: "w1..." < "w2" -> TC 1; "w2..." -> TC 2.
	if o, _ := p.Owner("kv", "w1-000001-0"); o != 1 {
		t.Fatalf("Owner(w1...) = %d, want 1", o)
	}
	if o, _ := p.Owner("kv", "w2-000001-0"); o != 2 {
		t.Fatalf("Owner(w2...) = %d, want 2", o)
	}
	// mod: first digit run, 1-based owner IDs.
	if o, _ := p.Owner("idx", "u000007/m000002"); o != base.TCID(1+7%2) {
		t.Fatalf("mod owner = %d", o)
	}
	// mod2: second digit run.
	if o, _ := p.Owner("rev", "m000003/u000007"); o != base.TCID(1+7%2) {
		t.Fatalf("mod2 owner = %d", o)
	}
	if dc, _ := p.DC("rev", "m000004/u000007"); dc != 4%3 {
		t.Fatalf("mod dc = %d", dc)
	}
	// A key with a single digit run: mod2 falls back to that run.
	if o, _ := p.Owner("rev", "m000005"); o != base.TCID(1+5%2) {
		t.Fatalf("mod2 single-run owner = %d", o)
	}
}

func TestUnknownTableTyped(t *testing.T) {
	p := MustParse("kv: dc=0")
	if _, err := p.DC("nope", "k"); !errors.Is(err, base.ErrUnknownTable) {
		t.Fatalf("DC(unknown) = %v, want ErrUnknownTable", err)
	}
	if _, err := p.Owner("nope", "k"); !errors.Is(err, base.ErrUnknownTable) {
		t.Fatalf("Owner(unknown) = %v, want ErrUnknownTable", err)
	}
	// A "*" catch-all opts into the fall-through explicitly.
	pc := MustParse("kv: dc=1; *: dc=0 owner=3")
	if dc, err := pc.DC("nope", "k"); err != nil || dc != 0 {
		t.Fatalf("catch-all DC = %d, %v", dc, err)
	}
	if o, err := pc.Owner("nope", "k"); err != nil || o != 3 {
		t.Fatalf("catch-all Owner = %d, %v", o, err)
	}
}

func TestValidate(t *testing.T) {
	p := MustParse("kv: dc=hash(2) owner=hash(2)")
	if err := p.Validate(2, 2); err != nil {
		t.Fatalf("Validate(2,2): %v", err)
	}
	if err := p.Validate(1, 2); err == nil {
		t.Fatal("dc axis beyond deployment accepted")
	}
	if err := p.Validate(2, 1); err == nil {
		t.Fatal("owner axis beyond fleet accepted")
	}
	if err := MustParse("kv: dc=range(<a:0,*:3)").Validate(3, 1); err == nil {
		t.Fatal("range target beyond deployment accepted")
	}
	if err := MustParse("*: dc=5").Validate(5, 1); err == nil {
		t.Fatal("catch-all target beyond deployment accepted")
	}
	// "any" ownership validates against any fleet size.
	if err := MustParse("kv: dc=0 owner=any").Validate(1, 0); err != nil {
		t.Fatalf("owner=any: %v", err)
	}
}

func TestHashBuilder(t *testing.T) {
	p := Hash([]string{"b", "a"}, 3, 2)
	if got, want := p.String(), "a: dc=hash(3) owner=hash(2); b: dc=hash(3) owner=hash(2)"; got != want {
		t.Fatalf("Hash builder canonical = %q, want %q", got, want)
	}
	if tables := p.Tables(); strings.Join(tables, ",") != "a,b" {
		t.Fatalf("Tables() = %v", tables)
	}
	if err := p.Validate(3, 2); err != nil {
		t.Fatal(err)
	}
}

// TestDigitRun pins the key-shape contract the mod/mod2 axes rely on.
func TestDigitRun(t *testing.T) {
	cases := []struct {
		key  string
		n    int
		want int
	}{
		{"key00000042", 1, 42},
		{"m000003/u000007", 1, 3},
		{"m000003/u000007", 2, 7},
		{"u000007", 2, 7}, // fewer runs: last one
		{"nodigits", 1, 0},
		{"", 1, 0},
		{"a1b2c3", 3, 3},
	}
	for _, c := range cases {
		if got := digitRun(c.key, c.n); got != c.want {
			t.Errorf("digitRun(%q, %d) = %d, want %d", c.key, c.n, got, c.want)
		}
	}
}
