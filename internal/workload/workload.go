// Package workload generates the paper's evaluation workloads: generic
// key-value transaction mixes (experiments E1, E3, E4, E7, E8) and the
// Figure-2 movie-review cloud scenario with its four transaction classes
// W1–W4 (§6.3).
package workload

import (
	"fmt"
	"math/rand"

	"github.com/cidr09/unbundled/internal/placement"
)

// KV describes a key-value transaction mix.
type KV struct {
	// Keys is the size of the key space.
	Keys int
	// ValueSize is the value payload size in bytes.
	ValueSize int
	// ReadFrac is the fraction of operations that are reads.
	ReadFrac float64
	// OpsPerTxn is the number of operations per transaction.
	OpsPerTxn int
	// Theta > 0 skews key choice with a Zipf-like distribution; 0 is
	// uniform.
	Theta float64
	// Seed makes generation reproducible.
	Seed int64
}

// WithDefaults fills unset fields.
func (k KV) WithDefaults() KV {
	if k.Keys <= 0 {
		k.Keys = 10000
	}
	if k.ValueSize <= 0 {
		k.ValueSize = 64
	}
	if k.OpsPerTxn <= 0 {
		k.OpsPerTxn = 4
	}
	return k
}

// Gen is a deterministic operation stream for one worker.
type Gen struct {
	kv   KV
	rnd  *rand.Rand
	zipf *rand.Zipf
	val  []byte
}

// NewGen builds a generator for worker i.
func (k KV) NewGen(worker int) *Gen {
	k = k.WithDefaults()
	rnd := rand.New(rand.NewSource(k.Seed + int64(worker)*7919 + 1))
	g := &Gen{kv: k, rnd: rnd, val: make([]byte, k.ValueSize)}
	for i := range g.val {
		g.val[i] = byte('a' + (i % 26))
	}
	if k.Theta > 0 {
		g.zipf = rand.NewZipf(rnd, 1+k.Theta, 1, uint64(k.Keys-1))
	}
	return g
}

// Key draws the next key.
func (g *Gen) Key() string {
	var i uint64
	if g.zipf != nil {
		i = g.zipf.Uint64()
	} else {
		i = uint64(g.rnd.Intn(g.kv.Keys))
	}
	return KVKey(int(i))
}

// KVKey formats key i in the canonical shape.
func KVKey(i int) string { return fmt.Sprintf("key%08d", i) }

// KVKeyIndex parses a canonical key back to its index (routing helpers).
func KVKeyIndex(key string) int {
	n := 0
	for _, c := range key {
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
		}
	}
	return n
}

// IsRead draws whether the next operation is a read.
func (g *Gen) IsRead() bool { return g.rnd.Float64() < g.kv.ReadFrac }

// Value returns the payload (shared buffer; callers must not retain).
func (g *Gen) Value() []byte { return g.val }

// OpsPerTxn returns the configured transaction size.
func (g *Gen) OpsPerTxn() int { return g.kv.OpsPerTxn }

// Rand exposes the underlying source for auxiliary decisions.
func (g *Gen) Rand() *rand.Rand { return g.rnd }

// --- Figure 2: movie site schema (§6.3) --------------------------------

// Movie schema table names.
const (
	TableMovies    = "movies"
	TableReviews   = "reviews"
	TableUsers     = "users"
	TableMyReviews = "myreviews"
)

// MovieKey formats the Movies primary key (MId).
func MovieKey(m int) string { return fmt.Sprintf("m%06d", m) }

// ReviewKey formats the Reviews primary key (MId, UId) — reviews cluster
// with their movie for W1 (§6.3).
func ReviewKey(m, u int) string { return fmt.Sprintf("m%06d/u%06d", m, u) }

// UserKey formats the Users primary key (UId).
func UserKey(u int) string { return fmt.Sprintf("u%06d", u) }

// MyReviewKey formats the MyReviews primary key (UId, MId) — a redundant
// copy clustering a user's reviews for W4 (§6.3).
func MyReviewKey(u, m int) string { return fmt.Sprintf("u%06d/m%06d", u, m) }

// MovieTables lists the four tables of Figure 2.
func MovieTables() []string {
	return []string{TableMovies, TableReviews, TableUsers, TableMyReviews}
}

// MoviePlacement computes Figure 2's partitioning: Movies and Reviews are
// partitioned by MId across movieDCs data components; Users and MyReviews
// by UId across userDCs further components.
type MoviePlacement struct {
	MovieDCs int
	UserDCs  int
	Movies   int
	Users    int
}

// Placement expresses Figure 2's deployment map declaratively: Movies and
// Reviews cluster by MId across the movie DCs (0..MovieDCs-1), Users and
// MyReviews by UId across the user DCs that follow; update ownership
// follows §6.3 — "TC1: responsible for UId mod 2 = 0; TC2: UId mod 2 = 1"
// — so user-keyed rows are owned by UId mod updateTCs (the mod2 axis digs
// the UId out of the movie-clustered Reviews key) and the Movies bulk
// data is owned by TC 1 (the admin/loader TC every scenario here uses).
func (p MoviePlacement) Placement(updateTCs int) *placement.Placement {
	userLo, userHi := p.MovieDCs, p.MovieDCs+p.UserDCs-1
	return placement.MustParse(fmt.Sprintf(
		"%s: dc=mod(%d) owner=1; "+
			"%s: dc=mod(%d) owner=mod2(%d); "+
			"%s: dc=mod(%d-%d) owner=mod(%d); "+
			"%s: dc=mod(%d-%d) owner=mod(%d)",
		TableMovies, p.MovieDCs,
		TableReviews, p.MovieDCs, updateTCs,
		TableUsers, userLo, userHi, updateTCs,
		TableMyReviews, userLo, userHi, updateTCs))
}

// OwnerTC maps a user to the updating TC responsible for it (Figure 2:
// "TC1: responsible for UId mod 2 = 0; TC2: UId mod 2 = 1").
func (p MoviePlacement) OwnerTC(user, updateTCs int) int { return user % updateTCs }
