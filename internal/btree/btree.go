// Package btree implements the DC's access method (§4.1.2(2)): a classic
// B-tree over the buffer pool whose structure modifications — page splits
// and page deletes/consolidations — run as system transactions logged to
// the DC-log (§5.2.2). The tree is "maintained behind the scenes": the TC
// never sees pages, only records.
//
// Concurrency: a tree-level reader/writer lock protects the structure
// (descent holds it shared; system transactions hold it exclusive), and
// per-page latches make individual operations atomic under DC
// multi-threading. Record operations on distinct leaves proceed in
// parallel. Latch order is parent before child and left before right, so
// latch deadlocks cannot occur (§4.1.2(1)).
package btree

import (
	"fmt"
	"sync"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/buffer"
	"github.com/cidr09/unbundled/internal/dclog"
	"github.com/cidr09/unbundled/internal/page"
)

// Config shapes a tree.
type Config struct {
	// MaxPageBytes triggers a split when a page grows beyond it.
	MaxPageBytes int
	// MinPageBytes triggers a consolidation attempt when a leaf shrinks
	// below it (default MaxPageBytes/4).
	MinPageBytes int
}

func (c Config) withDefaults() Config {
	if c.MaxPageBytes <= 0 {
		c.MaxPageBytes = 4096
	}
	if c.MinPageBytes <= 0 {
		c.MinPageBytes = c.MaxPageBytes / 4
	}
	return c
}

// Tree is one table's B-tree.
type Tree struct {
	table string
	cfg   Config
	pool  *buffer.Pool
	alloc func() base.PageID
	smo   dclog.Logger
	// onRootChange persists the new root in the DC catalog within the same
	// system transaction (same dLSN).
	onRootChange func(newRoot base.PageID, dlsn base.DLSN)

	lock sync.RWMutex
	root base.PageID

	// SMOs performed (experiment E5 reports split/consolidate counts).
	splits, consolidates uint64
}

// New wires up a tree whose root already exists (opened from the catalog,
// or just created by the caller via a CreateTree system transaction).
func New(table string, root base.PageID, cfg Config, pool *buffer.Pool,
	alloc func() base.PageID, smo dclog.Logger,
	onRootChange func(base.PageID, base.DLSN)) *Tree {
	return &Tree{table: table, cfg: cfg.withDefaults(), pool: pool,
		alloc: alloc, smo: smo, onRootChange: onRootChange, root: root}
}

// Root returns the current root page ID.
func (t *Tree) Root() base.PageID {
	t.lock.RLock()
	defer t.lock.RUnlock()
	return t.root
}

// SetRoot replaces the root pointer (recovery only).
func (t *Tree) SetRoot(id base.PageID) {
	t.lock.Lock()
	t.root = id
	t.lock.Unlock()
}

// Stats returns (splits, consolidates).
func (t *Tree) Stats() (splits, consolidates uint64) {
	t.lock.RLock()
	defer t.lock.RUnlock()
	return t.splits, t.consolidates
}

// descendLocked walks from the root to the leaf covering key; the caller
// holds the tree lock (shared suffices: branch pages only change under the
// exclusive lock). The returned leaf is pinned.
func (t *Tree) descendLocked(key string) (*page.Page, error) {
	id := t.root
	for {
		pg, err := t.pool.Fetch(id)
		if err != nil {
			return nil, err
		}
		if pg == nil {
			return nil, fmt.Errorf("btree %s: dangling page %d", t.table, id)
		}
		if pg.Leaf {
			return pg, nil
		}
		next := pg.ChildFor(key)
		t.pool.Unpin(id)
		id = next
	}
}

// View runs fn on the leaf covering key under a shared latch.
func (t *Tree) View(key string, fn func(*page.Page)) error {
	t.lock.RLock()
	leaf, err := t.descendLocked(key)
	if err != nil {
		t.lock.RUnlock()
		return err
	}
	leaf.L.RLock()
	t.lock.RUnlock()
	fn(leaf)
	leaf.L.RUnlock()
	t.pool.Unpin(leaf.ID)
	return nil
}

// Apply runs mutate on the exclusively latched leaf covering key. When
// mutate returns blocked=true (page-sync barrier, §5.1.2 strategy 1)
// nothing was applied and the caller should wait and retry; leafID
// identifies the page to wait on. Structure maintenance (split or
// consolidate) is triggered afterwards as needed.
func (t *Tree) Apply(key string, mutate func(*page.Page) (blocked bool)) (leafID base.PageID, blocked bool, err error) {
	t.lock.RLock()
	leaf, err := t.descendLocked(key)
	if err != nil {
		t.lock.RUnlock()
		return 0, false, err
	}
	leaf.L.Lock()
	t.lock.RUnlock()
	blocked = mutate(leaf)
	size := leaf.Size()
	nrecs := len(leaf.Recs)
	leafID = leaf.ID
	leaf.L.Unlock()
	t.pool.Unpin(leafID)
	if blocked {
		return leafID, true, nil
	}
	if size > t.cfg.MaxPageBytes {
		err = t.split(key)
	} else if size < t.cfg.MinPageBytes || nrecs == 0 {
		err = t.maybeConsolidate(key)
	}
	return leafID, false, err
}

// Scan calls fn for each latched leaf from the one covering lo onward
// (sibling order); fn returns false to stop. The structure lock is held
// shared for the whole scan, so the leaf chain cannot change underfoot.
func (t *Tree) Scan(lo string, fn func(*page.Page) bool) error {
	t.lock.RLock()
	defer t.lock.RUnlock()
	leaf, err := t.descendLocked(lo)
	if err != nil {
		return err
	}
	for leaf != nil {
		leaf.L.RLock()
		cont := fn(leaf)
		next := leaf.Next
		leaf.L.RUnlock()
		t.pool.Unpin(leaf.ID)
		if !cont || next == 0 {
			return nil
		}
		leaf, err = t.pool.Fetch(next)
		if err != nil {
			return err
		}
	}
	return nil
}

// --- system transactions ----------------------------------------------

// pathEntry records the descent for SMOs (performed under the exclusive
// structure lock, so it stays valid).
type pathEntry struct {
	pg *page.Page // pinned
}

// descendPath returns the pinned chain of pages from root to the leaf
// covering key. Caller holds the exclusive lock and must unpinPath.
func (t *Tree) descendPath(key string) ([]pathEntry, error) {
	var path []pathEntry
	id := t.root
	for {
		pg, err := t.pool.Fetch(id)
		if err != nil {
			t.unpinPath(path)
			return nil, err
		}
		if pg == nil {
			t.unpinPath(path)
			return nil, fmt.Errorf("btree %s: dangling page %d", t.table, id)
		}
		path = append(path, pathEntry{pg: pg})
		if pg.Leaf {
			return path, nil
		}
		id = pg.ChildFor(key)
	}
}

func (t *Tree) unpinPath(path []pathEntry) {
	for _, e := range path {
		t.pool.Unpin(e.pg.ID)
	}
}

// split divides the (possibly cascading) overfull pages on the path to
// key. Each level's split is its own system transaction: one DC-log record
// capturing the new page image and the split key (§5.2.2).
func (t *Tree) split(key string) error {
	t.lock.Lock()
	defer t.lock.Unlock()
	for {
		path, err := t.descendPath(key)
		if err != nil {
			return err
		}
		// Find the deepest overfull page on the path. Leaf sizes are read
		// under the page latch: an applier that latched its leaf before we
		// took the exclusive structure lock may still be mutating it.
		idx := -1
		for i := len(path) - 1; i >= 0; i-- {
			pg := path[i].pg
			pg.L.RLock()
			over := pg.Size() > t.cfg.MaxPageBytes && t.splittable(pg)
			pg.L.RUnlock()
			if over {
				idx = i
				break
			}
		}
		if idx == -1 {
			t.unpinPath(path)
			return nil
		}
		err = t.splitOneLocked(path, idx)
		t.unpinPath(path)
		if err != nil {
			return err
		}
	}
}

func (t *Tree) splittable(pg *page.Page) bool {
	if pg.Leaf {
		return len(pg.Recs) >= 2
	}
	return len(pg.Keys) >= 2
}

// splitOneLocked splits path[idx] into itself plus a new right page and
// links the new page into the parent (or a new root). Caller holds the
// exclusive lock.
func (t *Tree) splitOneLocked(path []pathEntry, idx int) error {
	left := path[idx].pg
	right := &page.Page{ID: t.alloc(), Leaf: left.Leaf}

	left.L.Lock()
	var splitKey string
	if left.Leaf {
		splitKey = left.SplitLeaf(right)
	} else {
		splitKey = left.SplitBranch(right)
	}
	rightImage := right.Encode()
	left.L.Unlock()

	rec := &dclog.Split{
		Table: t.table, Leaf: left.Leaf, LeftID: left.ID, RightID: right.ID,
		SplitKey: splitKey, RightImage: rightImage,
	}

	var parent *page.Page
	if idx > 0 {
		parent = path[idx-1].pg
		rec.ParentID = parent.ID
	} else {
		rec.NewRootID = t.alloc()
	}
	dlsn := t.smo.AppendSMO(dclog.KindSplit, rec.Encode())

	// Stamp and publish the results of the system transaction.
	left.L.Lock()
	left.DLSN = dlsn
	t.pool.MarkDirty(left, 0, 0, dlsn)
	left.L.Unlock()
	right.DLSN = dlsn
	t.pool.MarkDirty(right, 0, 0, dlsn)
	t.pool.Install(right)
	t.pool.Unpin(right.ID)

	if parent != nil {
		parent.L.Lock()
		ci := parent.ChildIndex(left.ID)
		if ci < 0 {
			parent.L.Unlock()
			return fmt.Errorf("btree %s: split parent lost child %d", t.table, left.ID)
		}
		parent.InsertSep(ci, splitKey, right.ID)
		parent.DLSN = dlsn
		t.pool.MarkDirty(parent, 0, 0, dlsn)
		parent.L.Unlock()
	} else {
		newRoot := page.NewBranch(rec.NewRootID, []string{splitKey}, []base.PageID{left.ID, right.ID})
		newRoot.DLSN = dlsn
		t.pool.MarkDirty(newRoot, 0, 0, dlsn)
		t.pool.Install(newRoot)
		t.pool.Unpin(newRoot.ID)
		t.root = newRoot.ID
		if t.onRootChange != nil {
			t.onRootChange(newRoot.ID, dlsn)
		}
	}
	t.splits++
	return nil
}

// maybeConsolidate merges the underfull leaf covering key with a sibling
// when the result fits in a page; the paper's page delete (§5.2.2). The
// consolidated page is logged physically and the DC-log forced before the
// right page's stable image is freed.
func (t *Tree) maybeConsolidate(key string) error {
	t.lock.Lock()
	defer t.lock.Unlock()
	path, err := t.descendPath(key)
	if err != nil {
		return err
	}
	defer t.unpinPath(path)
	leaf := path[len(path)-1].pg
	if len(path) == 1 {
		return nil // root leaf: nothing to merge with
	}
	leaf.L.RLock()
	refilled := leaf.Size() >= t.cfg.MinPageBytes && len(leaf.Recs) > 0
	leaf.L.RUnlock()
	if refilled {
		return nil // raced: refilled
	}
	parent := path[len(path)-2].pg
	ci := parent.ChildIndex(leaf.ID)
	if ci < 0 {
		return fmt.Errorf("btree %s: consolidate parent lost child %d", t.table, leaf.ID)
	}
	// Prefer absorbing leaf into its left sibling; otherwise absorb the
	// right sibling into leaf. Both reduce to (left, right) with right
	// freed afterwards.
	var left, right *page.Page
	var sepIdx int
	switch {
	case ci > 0:
		sib, err := t.pool.Fetch(parent.Children[ci-1])
		if err != nil {
			return err
		}
		left, right, sepIdx = sib, leaf, ci-1
		defer t.pool.Unpin(sib.ID)
	case ci < len(parent.Children)-1:
		sib, err := t.pool.Fetch(parent.Children[ci+1])
		if err != nil {
			return err
		}
		left, right, sepIdx = leaf, sib, ci
		defer t.pool.Unpin(sib.ID)
	default:
		return nil // single child (transient); root collapse handles it
	}
	if left == nil || right == nil || !left.Leaf || !right.Leaf {
		return nil
	}
	// Latch order: left before right. Sizes are checked under the latches:
	// a consolidation that would not fit must not happen (§5.2.2 notes
	// recovery-time refits are the hazard; we avoid creating them).
	left.L.Lock()
	right.L.Lock()
	if left.Size()+right.Size() > t.cfg.MaxPageBytes*9/10 {
		right.L.Unlock()
		left.L.Unlock()
		return nil
	}
	left.AbsorbLeaf(right)
	leftImage := left.Encode()
	right.L.Unlock()

	rec := &dclog.Consolidate{Table: t.table, LeftID: left.ID, RightID: right.ID,
		ParentID: parent.ID, LeftImage: leftImage}
	dlsn := t.smo.AppendSMO(dclog.KindConsolidate, rec.Encode())
	left.DLSN = dlsn
	t.pool.MarkDirty(left, 0, 0, dlsn)
	left.L.Unlock()

	parent.L.Lock()
	parent.RemoveSep(sepIdx)
	parent.DLSN = dlsn
	t.pool.MarkDirty(parent, 0, 0, dlsn)
	rootKeys := len(parent.Keys)
	parent.L.Unlock()

	// WAL for the free: the right page's stable image may only disappear
	// after the consolidate record (holding its contents) is stable.
	t.smo.ForceSMO(dlsn)
	t.pool.Drop(right.ID, true)
	t.consolidates++

	// Root collapse: a branch root left with a single child is replaced by
	// that child.
	if parent.ID == t.root && rootKeys == 0 {
		return t.collapseRootLocked(parent)
	}
	return nil
}

func (t *Tree) collapseRootLocked(oldRoot *page.Page) error {
	if len(oldRoot.Children) != 1 {
		return nil
	}
	newRootID := oldRoot.Children[0]
	rec := &dclog.RootCollapse{Table: t.table, OldRootID: oldRoot.ID, NewRootID: newRootID}
	dlsn := t.smo.AppendSMO(dclog.KindRootCollapse, rec.Encode())
	t.root = newRootID
	if t.onRootChange != nil {
		t.onRootChange(newRootID, dlsn)
	}
	t.smo.ForceSMO(dlsn)
	t.pool.Drop(oldRoot.ID, true)
	return nil
}

// Keys returns every key in order (tests and invariant checks).
func (t *Tree) Keys() ([]string, error) {
	var out []string
	err := t.Scan("", func(leaf *page.Page) bool {
		for i := range leaf.Recs {
			out = append(out, leaf.Recs[i].Key)
		}
		return true
	})
	return out, err
}

// CheckInvariants verifies structural soundness: sorted keys, correct
// routing, connected leaf chain. Test helper.
func (t *Tree) CheckInvariants() error {
	t.lock.RLock()
	defer t.lock.RUnlock()
	var prev string
	first := true
	var walk func(id base.PageID, lo, hi string) error
	walk = func(id base.PageID, lo, hi string) error {
		pg, err := t.pool.Fetch(id)
		if err != nil {
			return err
		}
		if pg == nil {
			return fmt.Errorf("dangling page %d", id)
		}
		defer t.pool.Unpin(id)
		if pg.Leaf {
			for i := range pg.Recs {
				k := pg.Recs[i].Key
				if (lo != "" && k < lo) || (hi != "" && k >= hi) {
					return fmt.Errorf("leaf %d key %q outside [%q,%q)", id, k, lo, hi)
				}
				if !first && k <= prev {
					return fmt.Errorf("key order violated at %q (prev %q)", k, prev)
				}
				prev, first = k, false
			}
			return nil
		}
		if len(pg.Children) != len(pg.Keys)+1 {
			return fmt.Errorf("branch %d arity broken", id)
		}
		for i, c := range pg.Children {
			clo, chi := lo, hi
			if i > 0 {
				clo = pg.Keys[i-1]
			}
			if i < len(pg.Keys) {
				chi = pg.Keys[i]
			}
			if err := walk(c, clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, "", "")
}
