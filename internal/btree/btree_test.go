package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/buffer"
	"github.com/cidr09/unbundled/internal/page"
	"github.com/cidr09/unbundled/internal/storage"
	"github.com/cidr09/unbundled/internal/wal"
)

// testEnv wires a tree over a real pool, store, and DC-log.
type testEnv struct {
	store *storage.PageStore
	pool  *buffer.Pool
	dlog  *wal.Log
	tree  *Tree
	roots map[string]base.PageID
	mu    sync.Mutex
}

// AppendSMO implements dclog.Logger.
func (e *testEnv) AppendSMO(kind uint8, payload []byte) base.DLSN {
	return base.DLSN(e.dlog.AppendAssign(&wal.Record{Kind: kind, Payload: payload}))
}

// ForceSMO implements dclog.Logger.
func (e *testEnv) ForceSMO(d base.DLSN) { e.dlog.ForceTo(base.LSN(d)) }

func newEnv(t *testing.T, maxBytes int) *testEnv {
	t.Helper()
	e := &testEnv{store: storage.NewPageStore(), roots: map[string]base.PageID{}}
	var err error
	e.dlog, err = wal.New(storage.NewLogStore())
	if err != nil {
		t.Fatal(err)
	}
	open := func(base.TCID) base.LSN { return 1 << 60 } // gates open for tree tests
	e.pool = buffer.New(buffer.Config{Capacity: 64, Strategy: buffer.SyncFull},
		e.store, buffer.Gates{EOSL: open, LWM: open,
			ForceDCLog: func(d base.DLSN) { e.ForceSMO(d) }})
	root := page.NewLeaf(e.store.AllocPageID())
	e.pool.Install(root)
	e.pool.Unpin(root.ID)
	e.tree = New("t", root.ID, Config{MaxPageBytes: maxBytes}, e.pool,
		e.store.AllocPageID, e,
		func(newRoot base.PageID, dlsn base.DLSN) {
			e.mu.Lock()
			e.roots["t"] = newRoot
			e.mu.Unlock()
		})
	return e
}

func (e *testEnv) put(t *testing.T, key, val string) {
	t.Helper()
	_, blocked, err := e.tree.Apply(key, func(leaf *page.Page) bool {
		leaf.Put(page.Record{Key: key, Owner: 1, Value: []byte(val)})
		e.pool.MarkDirty(leaf, 1, 0, 0)
		return false
	})
	if err != nil || blocked {
		t.Fatalf("put %q: err=%v blocked=%v", key, err, blocked)
	}
}

func (e *testEnv) del(t *testing.T, key string) {
	t.Helper()
	_, _, err := e.tree.Apply(key, func(leaf *page.Page) bool {
		leaf.Remove(key)
		e.pool.MarkDirty(leaf, 1, 0, 0)
		return false
	})
	if err != nil {
		t.Fatalf("del %q: %v", key, err)
	}
}

func (e *testEnv) get(t *testing.T, key string) (string, bool) {
	t.Helper()
	var val string
	var ok bool
	if err := e.tree.View(key, func(leaf *page.Page) {
		if r := leaf.Get(key); r != nil {
			val, ok = string(r.Value), true
		}
	}); err != nil {
		t.Fatalf("get %q: %v", key, err)
	}
	return val, ok
}

func TestInsertSearchSingleLeaf(t *testing.T) {
	e := newEnv(t, 4096)
	e.put(t, "b", "vb")
	e.put(t, "a", "va")
	if v, ok := e.get(t, "a"); !ok || v != "va" {
		t.Fatalf("get a = %q %v", v, ok)
	}
	if _, ok := e.get(t, "zz"); ok {
		t.Fatal("phantom key")
	}
}

func TestSplitsPreserveAllKeys(t *testing.T) {
	e := newEnv(t, 256) // tiny pages force many splits
	const n = 500
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		e.put(t, fmt.Sprintf("key%05d", i), fmt.Sprintf("val%d", i))
	}
	splits, _ := e.tree.Stats()
	if splits == 0 {
		t.Fatal("expected splits with tiny pages")
	}
	if err := e.tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	keys, err := e.tree.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != n {
		t.Fatalf("key count = %d want %d", len(keys), n)
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatal("keys unsorted")
	}
	for i := 0; i < n; i++ {
		if v, ok := e.get(t, fmt.Sprintf("key%05d", i)); !ok || v != fmt.Sprintf("val%d", i) {
			t.Fatalf("lost key %d: %q %v", i, v, ok)
		}
	}
}

func TestDeleteAndConsolidate(t *testing.T) {
	e := newEnv(t, 256)
	const n = 400
	for i := 0; i < n; i++ {
		e.put(t, fmt.Sprintf("key%05d", i), "v")
	}
	// Delete most keys; consolidations should shrink the tree.
	for i := 0; i < n; i++ {
		if i%10 != 0 {
			e.del(t, fmt.Sprintf("key%05d", i))
		}
	}
	_, consolidates := e.tree.Stats()
	if consolidates == 0 {
		t.Fatal("expected consolidations")
	}
	if err := e.tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	keys, _ := e.tree.Keys()
	if len(keys) != n/10 {
		t.Fatalf("keys = %d want %d", len(keys), n/10)
	}
	for i := 0; i < n; i += 10 {
		if _, ok := e.get(t, fmt.Sprintf("key%05d", i)); !ok {
			t.Fatalf("surviving key %d lost", i)
		}
	}
}

func TestDeleteAllCollapsesToEmptyTree(t *testing.T) {
	e := newEnv(t, 256)
	const n = 300
	for i := 0; i < n; i++ {
		e.put(t, fmt.Sprintf("key%05d", i), "v")
	}
	for i := 0; i < n; i++ {
		e.del(t, fmt.Sprintf("key%05d", i))
	}
	keys, err := e.tree.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Fatalf("residual keys: %v", keys)
	}
	if err := e.tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScanRange(t *testing.T) {
	e := newEnv(t, 256)
	for i := 0; i < 200; i++ {
		e.put(t, fmt.Sprintf("k%04d", i), "v")
	}
	var got []string
	err := e.tree.Scan("k0050", func(leaf *page.Page) bool {
		stop := leaf.Ascend("k0050", "k0060", func(r *page.Record) bool {
			got = append(got, r.Key)
			return true
		})
		return !stop && (len(leaf.Recs) == 0 || leaf.Recs[len(leaf.Recs)-1].Key < "k0060")
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != "k0050" || got[9] != "k0059" {
		t.Fatalf("scan = %v", got)
	}
}

func TestConcurrentApplies(t *testing.T) {
	e := newEnv(t, 512)
	var wg sync.WaitGroup
	const writers = 8
	const perW = 150
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				key := fmt.Sprintf("w%02d-%04d", w, i)
				_, _, err := e.tree.Apply(key, func(leaf *page.Page) bool {
					leaf.Put(page.Record{Key: key, Owner: 1, Value: []byte("v")})
					e.pool.MarkDirty(leaf, 1, 0, 0)
					return false
				})
				if err != nil {
					t.Errorf("apply: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := e.tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	keys, _ := e.tree.Keys()
	if len(keys) != writers*perW {
		t.Fatalf("keys = %d want %d", len(keys), writers*perW)
	}
}

func TestTreeVsModelRandomOps(t *testing.T) {
	e := newEnv(t, 200)
	model := map[string]string{}
	rnd := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("k%03d", rnd.Intn(300))
		switch rnd.Intn(3) {
		case 0, 1:
			v := fmt.Sprintf("v%d", i)
			e.put(t, k, v)
			model[k] = v
		case 2:
			e.del(t, k)
			delete(model, k)
		}
	}
	if err := e.tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k, want := range model {
		if got, ok := e.get(t, k); !ok || got != want {
			t.Fatalf("key %q: got %q,%v want %q", k, got, ok, want)
		}
	}
	keys, _ := e.tree.Keys()
	if len(keys) != len(model) {
		t.Fatalf("tree has %d keys, model %d", len(keys), len(model))
	}
}

func TestRootPointerPersistedViaCallback(t *testing.T) {
	e := newEnv(t, 128)
	for i := 0; i < 200; i++ {
		e.put(t, fmt.Sprintf("key%04d", i), "v")
	}
	e.mu.Lock()
	persisted := e.roots["t"]
	e.mu.Unlock()
	if persisted == 0 {
		t.Fatal("root change callback never fired despite splits")
	}
	if persisted != e.tree.Root() {
		t.Fatalf("catalog root %d != tree root %d", persisted, e.tree.Root())
	}
}

func BenchmarkTreeInsert(b *testing.B) {
	e := newEnv(&testing.T{}, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("key%09d", i)
		e.tree.Apply(key, func(leaf *page.Page) bool {
			leaf.Put(page.Record{Key: key, Owner: 1, Value: []byte("v")})
			e.pool.MarkDirty(leaf, 1, 0, 0)
			return false
		})
	}
}

func BenchmarkTreeRead(b *testing.B) {
	e := newEnv(&testing.T{}, 4096)
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("key%09d", i)
		e.tree.Apply(key, func(leaf *page.Page) bool {
			leaf.Put(page.Record{Key: key, Owner: 1, Value: []byte("v")})
			e.pool.MarkDirty(leaf, 1, 0, 0)
			return false
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			e.tree.View(fmt.Sprintf("key%09d", i%10000), func(*page.Page) {})
		}
	})
}
