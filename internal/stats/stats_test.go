package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestRegistrySnapshot(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	var g Gauge
	reg.Group("tc0").Counter("commits", &c)
	reg.Group("tc0").Gauge("inflight", &g)
	reg.Group("dc1").Func("performs", func() uint64 { return 7 })

	c.Add(3)
	c.Inc()
	g.Add(2)
	g.Add(-1)

	snap := reg.Snapshot()
	if got := snap["tc0"]["commits"]; got != 4 {
		t.Fatalf("commits = %d, want 4", got)
	}
	if got := snap["tc0"]["inflight"]; got != 1 {
		t.Fatalf("inflight = %d, want 1", got)
	}
	if got := snap["dc1"]["performs"]; got != 7 {
		t.Fatalf("performs = %d, want 7", got)
	}
	if names := reg.GroupNames(); len(names) != 2 || names[0] != "dc1" || names[1] != "tc0" {
		t.Fatalf("GroupNames = %v", names)
	}
}

func TestGaugeClampsNegative(t *testing.T) {
	reg := NewRegistry()
	var g Gauge
	reg.Group("x").Gauge("depth", &g)
	g.Add(-5)
	if got := reg.Snapshot()["x"]["depth"]; got != 0 {
		t.Fatalf("negative gauge exported as %d, want 0", got)
	}
}

func TestSnapshotConcurrentWithWrites(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	reg.Group("g").Counter("n", &c)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Inc()
			}
		}
	}()
	for i := 0; i < 1000; i++ {
		reg.Snapshot()
	}
	close(stop)
	wg.Wait()
}

func TestWriteJSONShape(t *testing.T) {
	reg := NewRegistry()
	reg.Group("wire.tc0.dc0").Func("resends", func() uint64 { return 2 })
	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]map[string]uint64
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("WriteJSON output not the documented shape: %v\n%s", err, sb.String())
	}
	if decoded["wire.tc0.dc0"]["resends"] != 2 {
		t.Fatalf("decoded = %v", decoded)
	}
}

// fakeDrainable quiesces one Drain()+step later, exercising the
// draining-but-not-quiesced window.
type fakeDrainable struct {
	mu       sync.Mutex
	draining bool
	inflight int
}

func (f *fakeDrainable) Drain()   { f.mu.Lock(); f.draining = true; f.mu.Unlock() }
func (f *fakeDrainable) Undrain() { f.mu.Lock(); f.draining = false; f.mu.Unlock() }
func (f *fakeDrainable) Draining() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.draining
}
func (f *fakeDrainable) Quiesced() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.draining && f.inflight == 0
}

func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	c.Add(41)
	reg.Group("tc0").Counter("commits", &c)
	target := &fakeDrainable{inflight: 1}

	a, err := Serve("127.0.0.1:0", reg, target)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	base := "http://" + a.Addr()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/stats"); code != 200 || !strings.Contains(body, `"commits": 41`) {
		t.Fatalf("/stats = %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthy /healthz = %d %q", code, body)
	}

	// Drain with in-flight work: draining, not quiesced, 503 health.
	if code, body := get("/drain"); code != 200 || !strings.Contains(body, `"status":"draining"`) {
		t.Fatalf("/drain = %d %q", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz code = %d, want 503", code)
	}

	// In-flight work finishes: quiesced.
	target.mu.Lock()
	target.inflight = 0
	target.mu.Unlock()
	if _, body := get("/healthz"); !strings.Contains(body, `"status":"quiesced"`) {
		t.Fatalf("quiesced /healthz = %q", body)
	}

	if code, body := get("/undrain"); code != 200 || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("/undrain = %d %q", code, body)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("post-undrain /healthz code = %d", code)
	}
}

func TestAdminWithoutTarget(t *testing.T) {
	a, err := Serve("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/drain", a.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/drain without target = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(fmt.Sprintf("http://%s/healthz", a.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz without target = %d, want 200", resp.StatusCode)
	}
}
