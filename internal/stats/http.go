package stats

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Drainable is the quiesce surface a component exposes to the admin
// endpoint. Drain must only flip admission off and return immediately
// (quiescing is observed, not awaited, so a draining process keeps
// serving /healthz); Undrain restores admission; Quiesced reports
// whether the drain has fully settled — no in-flight work remains.
type Drainable interface {
	Drain()
	Undrain()
	Draining() bool
	Quiesced() bool
}

// Admin is the operations-plane HTTP server: /stats (the registry
// snapshot as JSON), /healthz (drain state, 503 while draining so load
// balancers eject the instance), and /drain + /undrain verbs against
// the configured Drainable.
type Admin struct {
	reg    *Registry
	target Drainable // nil: drain verbs 404
	ln     net.Listener
	srv    *http.Server
}

// Serve starts the admin endpoint on addr (use host:0 for ephemeral).
// target may be nil for a stats-only endpoint.
func Serve(addr string, reg *Registry, target Drainable) (*Admin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stats: admin listen %s: %w", addr, err)
	}
	a := &Admin{reg: reg, target: target, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", a.handleStats)
	mux.HandleFunc("/healthz", a.handleHealthz)
	mux.HandleFunc("/drain", a.handleDrain)
	mux.HandleFunc("/undrain", a.handleUndrain)
	a.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go a.srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return a, nil
}

// Addr returns the bound address (resolves :0).
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Close stops the server.
func (a *Admin) Close() error { return a.srv.Close() }

func (a *Admin) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := a.reg.WriteJSON(w); err != nil {
		// Too late for a status code; the connection carries the error.
		return
	}
}

// health is the /healthz and /drain//undrain response body.
type health struct {
	Status   string `json:"status"` // "ok" | "draining" | "quiesced"
	Draining bool   `json:"draining"`
	Quiesced bool   `json:"quiesced"`
}

func (a *Admin) healthNow() health {
	h := health{Status: "ok"}
	if a.target == nil {
		return h
	}
	h.Draining = a.target.Draining()
	if h.Draining {
		h.Status = "draining"
		if h.Quiesced = a.target.Quiesced(); h.Quiesced {
			h.Status = "quiesced"
		}
	}
	return h
}

func writeHealth(w http.ResponseWriter, h health, code int) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(h) //nolint:errcheck
}

func (a *Admin) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := a.healthNow()
	code := http.StatusOK
	if h.Draining {
		// 503 while draining: health-checking load balancers stop
		// routing here, which is the point of draining.
		code = http.StatusServiceUnavailable
	}
	writeHealth(w, h, code)
}

func (a *Admin) handleDrain(w http.ResponseWriter, r *http.Request) {
	if a.target == nil {
		http.NotFound(w, r)
		return
	}
	a.target.Drain()
	writeHealth(w, a.healthNow(), http.StatusOK)
}

func (a *Admin) handleUndrain(w http.ResponseWriter, r *http.Request) {
	if a.target == nil {
		http.NotFound(w, r)
		return
	}
	a.target.Undrain()
	writeHealth(w, a.healthNow(), http.StatusOK)
}
