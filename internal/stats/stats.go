// Package stats is the operations plane's metrics registry: named
// counters and gauges grouped per component (one group per TC, DC, wire
// endpoint, ...), snapshot-able without stopping the world and exported
// as a flat JSON document over the admin HTTP endpoint (see Serve).
//
// The design constraint is the hot path: instrumented code must pay at
// most one atomic add per event. The registry therefore never wraps or
// locks the instrumented counters — components keep their own
// sync/atomic fields and register read-only closures (Group.Func) that
// the registry calls only when a snapshot is taken. Counter and Gauge
// are provided for call sites that have no pre-existing atomic, and are
// themselves single atomic words.
//
// A snapshot is a point-in-time read of every registered value:
//
//	reg := stats.NewRegistry()
//	g := reg.Group("tc0")
//	g.Func("commits", tcCommits.Load)
//	snap := reg.Snapshot() // map[group]map[name]uint64
//
// Snapshot reads each value with its own atomic load; it does not
// freeze the world, so values read microseconds apart may disagree by
// in-flight events — exactly the monitoring contract of every
// production counter endpoint.
//
// The JSON shape (WriteJSON, and the /stats admin endpoint) is two
// levels — {"<group>": {"<counter>": n, ...}, ...} — with groups and
// names sorted, in the style of ptp4u's stats/json.go: flat enough for
// a Prometheus exporter or a jq one-liner, structured enough to keep
// per-component namespaces apart.
package stats

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is ready
// to use. Add is one atomic add — safe on any hot path.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous level (in-flight requests, queue depth).
// The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current level, clamped at zero for export (a gauge
// observed mid-decrement can transiently read negative).
func (g *Gauge) Load() int64 { return g.v.Load() }

// A Group is one component's named values. Groups are created through
// Registry.Group and are safe for concurrent registration and snapshot.
type Group struct {
	mu   sync.Mutex
	vals map[string]func() uint64
}

// Func registers a read-only closure under name. The closure is called
// at snapshot time only; it must be safe to call concurrently with the
// component's normal operation (an atomic load, or a computed value
// over atomic loads). Registering an existing name replaces it.
func (g *Group) Func(name string, f func() uint64) *Group {
	g.mu.Lock()
	g.vals[name] = f
	g.mu.Unlock()
	return g
}

// Counter registers c under name and returns c for inline declaration.
func (g *Group) Counter(name string, c *Counter) *Counter {
	g.Func(name, c.Load)
	return c
}

// Gauge registers ga under name.
func (g *Group) Gauge(name string, ga *Gauge) *Gauge {
	g.Func(name, func() uint64 {
		if v := ga.Load(); v > 0 {
			return uint64(v)
		}
		return 0
	})
	return ga
}

// snapshot reads every registered value.
func (g *Group) snapshot() map[string]uint64 {
	g.mu.Lock()
	fns := make(map[string]func() uint64, len(g.vals))
	for name, f := range g.vals {
		fns[name] = f
	}
	g.mu.Unlock()
	// Values are read outside the lock: a reader closure may itself
	// take component locks, and holding ours across it invites cycles.
	out := make(map[string]uint64, len(fns))
	for name, f := range fns {
		out[name] = f()
	}
	return out
}

// Registry is a set of named groups. The zero value is not usable; use
// NewRegistry.
type Registry struct {
	mu     sync.Mutex
	groups map[string]*Group
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{groups: make(map[string]*Group)}
}

// Group returns the group registered under name, creating it on first
// use. Components typically call this once at wiring time and hold the
// *Group.
func (r *Registry) Group(name string) *Group {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.groups[name]
	if g == nil {
		g = &Group{vals: make(map[string]func() uint64)}
		r.groups[name] = g
	}
	return g
}

// Snapshot reads every value in every group: map[group][name] = value.
func (r *Registry) Snapshot() map[string]map[string]uint64 {
	r.mu.Lock()
	groups := make(map[string]*Group, len(r.groups))
	for name, g := range r.groups {
		groups[name] = g
	}
	r.mu.Unlock()
	out := make(map[string]map[string]uint64, len(groups))
	for name, g := range groups {
		out[name] = g.snapshot()
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON with sorted keys
// (encoding/json sorts map keys), one stable schema for tests, curl,
// and scrapers alike.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// GroupNames returns the sorted names of all registered groups.
func (r *Registry) GroupNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.groups))
	for name := range r.groups {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
