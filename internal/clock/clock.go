// Package clock is the timestamp source for snapshot reads: a clock that
// reports, alongside every reading, how wrong it might be. The interface
// is modeled on the window-of-uncertainty APIs of datacenter clock
// services (fbclock, TrueTime): Now returns the best estimate of the
// current time and an error bound, and the true time is guaranteed to lie
// within [estimate-uncertainty, estimate+uncertainty].
//
// The TC draws commit timestamps from its clock and a snapshot transaction
// draws its read timestamp from it; neither needs the bound to be tight
// for *consistency* (the safe-timestamp protocol in internal/tc handles
// arbitrary skew), but a fresh snapshot waits out the uncertainty window
// so that every transaction whose commit completed in real time before the
// snapshot began is visible in it — external consistency for reads.
//
// Two implementations: System, a monotonic wall clock for deployments, and
// Fake, a hand-advanced clock for tests that need to prove wait behaviour
// deterministically.
package clock

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cidr09/unbundled/internal/base"
)

// Clock reports the current time as a base.TS (nanoseconds on the Unix
// epoch) plus the error bound of that reading. Implementations must be
// safe for concurrent use and must never report a smaller TS after a
// larger one (monotonic per clock instance).
type Clock interface {
	// Now returns the clock's best estimate of the current time and its
	// uncertainty: the true time lies in [ts-unc, ts+unc].
	Now() (ts base.TS, unc time.Duration)
}

// System is a monotonic wall clock. Readings start from time.Now but are
// forced non-decreasing across concurrent callers, so a wall-clock step
// backwards (NTP, VM migration) never yields a retreating timestamp.
//
// Uncertainty is the configured bound on how far this machine's wall
// clock may drift from true time; zero — the default, appropriate for
// single-machine deployments where every component shares one kernel
// clock — means readings are taken at face value and fresh snapshots
// never wait.
type System struct {
	// Uncertainty is the fixed error bound reported with every reading.
	Uncertainty time.Duration

	last atomic.Uint64
}

// Now implements Clock.
func (s *System) Now() (base.TS, time.Duration) {
	ts := uint64(time.Now().UnixNano())
	for {
		prev := s.last.Load()
		if ts <= prev {
			return base.TS(prev), s.Uncertainty
		}
		if s.last.CompareAndSwap(prev, ts) {
			return base.TS(ts), s.Uncertainty
		}
	}
}

// Fake is a hand-advanced clock for tests. The zero value starts at TS 1
// (0 is the "no timestamp" sentinel throughout the system) with zero
// uncertainty; Set and SetUncertainty shape it, Advance moves it forward.
// Waiters blocked in WaitUntilAfter observe every change promptly.
type Fake struct {
	mu   sync.Mutex
	ts   base.TS
	unc  time.Duration
	bump chan struct{} // closed and replaced on every change
}

// NewFake returns a Fake reading ts with uncertainty unc.
func NewFake(ts base.TS, unc time.Duration) *Fake {
	return &Fake{ts: ts, unc: unc, bump: make(chan struct{})}
}

// Now implements Clock.
func (f *Fake) Now() (base.TS, time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.ts == 0 {
		f.ts = 1
	}
	return f.ts, f.unc
}

// Set moves the clock to ts (never backwards) and wakes waiters.
func (f *Fake) Set(ts base.TS) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ts > f.ts {
		f.ts = ts
	}
	f.wake()
}

// Advance moves the clock forward by d and wakes waiters.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.ts == 0 {
		f.ts = 1
	}
	f.ts += base.TS(d)
	f.wake()
}

// SetUncertainty changes the reported error bound and wakes waiters.
func (f *Fake) SetUncertainty(unc time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.unc = unc
	f.wake()
}

func (f *Fake) wake() {
	if f.bump == nil {
		f.bump = make(chan struct{})
	}
	close(f.bump)
	f.bump = make(chan struct{})
}

// changed returns a channel closed on the next clock change.
func (f *Fake) changed() <-chan struct{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.bump == nil {
		f.bump = make(chan struct{})
	}
	return f.bump
}

// WaitUntilAfter blocks until the clock guarantees the true time is past
// t — that is, until the earliest bound of the uncertainty window,
// Now().ts - unc, exceeds t. This is the uncertainty-window wait of a
// fresh snapshot read: once it returns, no clock anywhere (within the
// bound) can still read t or earlier, so no new commit can be assigned a
// timestamp at or below t.
//
// The wait is cut short by ctx; the returned error is then the
// ErrCancelled-wrapped context error. A System clock with zero
// uncertainty returns immediately.
func WaitUntilAfter(ctx context.Context, c Clock, t base.TS) error {
	for {
		ts, unc := c.Now()
		if ts > t+base.TS(unc) {
			return nil
		}
		// Sleep out (most of) the remaining window; a Fake clock wakes the
		// wait on every change instead of relying on real time passing.
		remain := time.Duration(t+base.TS(unc)-ts) + time.Nanosecond
		var bump <-chan struct{}
		if f, ok := c.(*Fake); ok {
			bump = f.changed()
			remain = time.Second // re-check on fake advance, not on real time
		}
		timer := time.NewTimer(remain)
		select {
		case <-timer.C:
		case <-bump:
			timer.Stop()
		case <-ctx.Done():
			timer.Stop()
			return base.CancelErr(ctx)
		}
	}
}
