// Package monolith is the baseline the paper unbundles: a traditional
// integrated transactional storage manager in which the lock manager, log
// manager, buffer pool, and access methods are one tightly bound engine
// (§1 quoting Hellerstein et al.). It reuses the same B-tree, pages, and
// buffer pool as the DC, but:
//
//   - one integrated log holds user operations and structure
//     modifications, in strict history order;
//   - log records are physiological: each user-op record names the page it
//     modified, and the LSN is assigned *while the page latch is held*, so
//     the traditional idempotence test "operation LSN <= page LSN" is
//     sound (§5.1.1) — there is no out-of-order problem to solve and no
//     abstract LSNs;
//   - there are no messages: the "TC half" calls the "DC half" by function
//     call.
//
// Experiment E1 compares this engine with the unbundled kernel on the same
// workloads: the paper predicts the unbundled kernel pays a constant
// factor for its longer code paths and message round trips (§7).
package monolith

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/btree"
	"github.com/cidr09/unbundled/internal/buffer"
	"github.com/cidr09/unbundled/internal/lockmgr"
	"github.com/cidr09/unbundled/internal/page"
	"github.com/cidr09/unbundled/internal/storage"
	"github.com/cidr09/unbundled/internal/wal"
)

const catalogPageID = base.PageID(1)

// Integrated-log record kinds (values disjoint from dclog's 1..4, which
// this engine reuses verbatim for structure modifications).
const (
	recOp         uint8 = 10 + iota // physiological user operation
	recCLR                          // compensation (logical inverse)
	recCommit                       // transaction commit
	recAbort                        // abort complete
	recCheckpoint                   // redo scan start point
)

// Config shapes the engine.
type Config struct {
	PageBytes     int
	CacheCapacity int
	LockTimeout   time.Duration
	// ForceDelay simulates stable-log force latency (group commit).
	ForceDelay time.Duration
}

// Stats counts engine activity.
type Stats struct {
	Commits uint64
	Aborts  uint64
	RedoOps uint64
	UndoOps uint64
}

// Engine is the integrated kernel.
type Engine struct {
	cfg    Config
	store  *storage.PageStore
	lmedia *storage.LogStore
	log    *wal.Log
	pool   *buffer.Pool
	locks  *lockmgr.Manager

	mu      sync.Mutex
	trees   map[string]*btree.Tree
	txns    map[base.TxnID]*Txn
	nextTxn uint64
	rssp    base.LSN
	down    bool

	commits, aborts, redoOps, undoOps atomic.Uint64
}

// New formats an engine over fresh stable media.
func New(cfg Config) (*Engine, error) {
	if cfg.PageBytes <= 0 {
		cfg.PageBytes = 4096
	}
	e := &Engine{
		cfg:    cfg,
		store:  storage.NewPageStore(),
		lmedia: storage.NewLogStore(),
		trees:  make(map[string]*btree.Tree),
		txns:   make(map[base.TxnID]*Txn),
		locks:  lockmgr.New(),
		rssp:   1,
	}
	e.lmedia.ForceDelay = cfg.ForceDelay
	e.locks.Timeout = cfg.LockTimeout
	var err error
	e.log, err = wal.New(e.lmedia)
	if err != nil {
		return nil, err
	}
	e.pool = e.newPool()
	id := e.store.AllocPageID()
	if id != catalogPageID {
		return nil, fmt.Errorf("monolith: catalog got page %d", id)
	}
	cat := page.NewLeaf(catalogPageID)
	e.store.Write(catalogPageID, cat.Encode())
	return e, nil
}

func (e *Engine) newPool() *buffer.Pool {
	open := func(base.TCID) base.LSN { return 1 << 62 }
	return buffer.New(
		buffer.Config{Capacity: e.cfg.CacheCapacity, Strategy: buffer.SyncFull},
		e.store,
		buffer.Gates{
			EOSL: open, LWM: open, // no abstract LSNs in the monolith
			// Classic write-ahead logging: force the integrated log
			// through the page LSN before the page is written.
			ForceDCLog: func(d base.DLSN) { e.log.ForceTo(base.LSN(d)) },
		})
}

// AppendSMO implements dclog.Logger on the integrated log.
func (e *Engine) AppendSMO(kind uint8, payload []byte) base.DLSN {
	return base.DLSN(e.log.AppendAssign(&wal.Record{Kind: kind, Payload: payload}))
}

// ForceSMO implements dclog.Logger.
func (e *Engine) ForceSMO(d base.DLSN) { e.log.ForceTo(base.LSN(d)) }

// Log exposes the integrated log (benches).
func (e *Engine) Log() *wal.Log { return e.log }

// Pool exposes the buffer pool (benches).
func (e *Engine) Pool() *buffer.Pool { return e.pool }

// CreateTable durably creates an empty table. Idempotent.
func (e *Engine) CreateTable(table string) error {
	e.mu.Lock()
	if _, ok := e.trees[table]; ok {
		e.mu.Unlock()
		return nil
	}
	e.mu.Unlock()
	rootID := e.store.AllocPageID()
	root := page.NewLeaf(rootID)
	rec := createTreePayload(table, rootID, root.Encode())
	dlsn := e.AppendSMO(kindCreateTree, rec)
	root.DLSN = dlsn
	e.pool.MarkDirty(root, 0, 0, dlsn)
	e.pool.Install(root)
	e.pool.Unpin(rootID)
	e.updateCatalog(table, rootID, dlsn)
	e.ForceSMO(dlsn)
	e.mu.Lock()
	e.trees[table] = e.newTree(table, rootID)
	e.mu.Unlock()
	return nil
}

func (e *Engine) newTree(table string, root base.PageID) *btree.Tree {
	return btree.New(table, root, btree.Config{MaxPageBytes: e.cfg.PageBytes},
		e.pool, e.store.AllocPageID, e,
		func(newRoot base.PageID, dlsn base.DLSN) {
			e.updateCatalog(table, newRoot, dlsn)
		})
}

func (e *Engine) updateCatalog(table string, root base.PageID, dlsn base.DLSN) {
	cat, err := e.pool.Fetch(catalogPageID)
	if err != nil || cat == nil {
		panic(fmt.Sprintf("monolith: catalog unavailable: %v", err))
	}
	cat.L.Lock()
	cat.Put(page.Record{Key: table, Value: binary.AppendUvarint(nil, uint64(root))})
	if dlsn > cat.DLSN {
		cat.DLSN = dlsn
	}
	e.pool.MarkDirty(cat, 0, 0, dlsn)
	cat.L.Unlock()
	e.pool.Unpin(catalogPageID)
}

func (e *Engine) tree(table string) *btree.Tree {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.trees[table]
}

// Checkpoint flushes all dirty pages and truncates the log below both the
// redo scan start point and the oldest active transaction.
func (e *Engine) Checkpoint() (base.LSN, error) {
	e.log.Force()
	if err := e.pool.FlushAll(true, nil); err != nil {
		return 0, err
	}
	newRSSP := e.log.LastLSN() + 1
	e.mu.Lock()
	e.rssp = newRSSP
	oldest := base.LSN(0)
	for _, x := range e.txns {
		if x.state == txnActive && x.firstLSN != 0 && (oldest == 0 || x.firstLSN < oldest) {
			oldest = x.firstLSN
		}
	}
	e.mu.Unlock()
	e.log.AppendAssign(&wal.Record{Kind: recCheckpoint, Payload: binary.AppendUvarint(nil, uint64(newRSSP))})
	e.log.Force()
	trunc := newRSSP
	if oldest != 0 && oldest < trunc {
		trunc = oldest
	}
	e.log.Truncate(trunc)
	return newRSSP, nil
}

// Stats returns a snapshot of counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Commits: e.commits.Load(),
		Aborts:  e.aborts.Load(),
		RedoOps: e.redoOps.Load(),
		UndoOps: e.undoOps.Load(),
	}
}

// --- record payloads ----------------------------------------------------

// SMO payloads reuse the dclog formats; these helpers exist so the package
// compiles without importing dclog symbols at every call site.
const (
	kindCreateTree   = 1 // dclog.KindCreateTree
	kindSplit        = 2
	kindConsolidate  = 3
	kindRootCollapse = 4
)

func createTreePayload(table string, root base.PageID, image []byte) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(table)))
	buf = append(buf, table...)
	buf = binary.AppendUvarint(buf, uint64(root))
	buf = binary.AppendUvarint(buf, uint64(len(image)))
	return append(buf, image...)
}

// opPayload is the physiological user-op record: the page it modified plus
// the logical operation and undo value.
func encodeOpPayload(pageID base.PageID, op *base.Op, prior []byte, priorFound bool) []byte {
	buf := binary.AppendUvarint(nil, uint64(pageID))
	saved := op.LSN
	op.LSN = 0
	buf = base.AppendOp(buf, op)
	op.LSN = saved
	buf = binary.AppendUvarint(buf, uint64(len(prior)))
	buf = append(buf, prior...)
	if priorFound {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

func decodeOpPayload(payload []byte) (pageID base.PageID, op *base.Op, prior []byte, priorFound bool, err error) {
	u, w := binary.Uvarint(payload)
	if w <= 0 {
		return 0, nil, nil, false, fmt.Errorf("monolith: corrupt op payload")
	}
	pageID = base.PageID(u)
	op, rest, err := base.DecodeOp(payload[w:])
	if err != nil {
		return 0, nil, nil, false, err
	}
	n, w2 := binary.Uvarint(rest)
	if w2 <= 0 || n > uint64(len(rest)-w2) {
		return 0, nil, nil, false, fmt.Errorf("monolith: corrupt op payload")
	}
	rest = rest[w2:]
	if n > 0 {
		prior = append([]byte(nil), rest[:n]...)
	}
	rest = rest[n:]
	if len(rest) < 1 {
		return 0, nil, nil, false, fmt.Errorf("monolith: corrupt op payload")
	}
	return pageID, op, prior, rest[0] != 0, nil
}
