package monolith

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func newEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBasicTxn(t *testing.T) {
	e := newEngine(t, Config{})
	if err := e.RunTxn(func(x *Txn) error {
		if err := x.Insert("t", "a", []byte("1")); err != nil {
			return err
		}
		if err := x.Insert("t", "a", nil); !errors.Is(err, ErrDuplicate) {
			return fmt.Errorf("dup: %v", err)
		}
		if err := x.Update("t", "missing", nil); !errors.Is(err, ErrNotFound) {
			return fmt.Errorf("missing: %v", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.RunTxn(func(x *Txn) error {
		v, ok, err := x.Read("t", "a")
		if err != nil || !ok || string(v) != "1" {
			return fmt.Errorf("read: %q %v %v", v, ok, err)
		}
		return x.Delete("t", "a")
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAbortRestores(t *testing.T) {
	e := newEngine(t, Config{})
	if err := e.RunTxn(func(x *Txn) error {
		return x.Insert("t", "k", []byte("orig"))
	}); err != nil {
		t.Fatal(err)
	}
	x := e.Begin()
	if err := x.Update("t", "k", []byte("scratch")); err != nil {
		t.Fatal(err)
	}
	if err := x.Insert("t", "new", []byte("n")); err != nil {
		t.Fatal(err)
	}
	x.Abort()
	if err := e.RunTxn(func(y *Txn) error {
		if v, ok, _ := y.Read("t", "k"); !ok || string(v) != "orig" {
			return fmt.Errorf("rollback failed: %q %v", v, ok)
		}
		if _, ok, _ := y.Read("t", "new"); ok {
			return fmt.Errorf("inserted key survived abort")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoveryCommittedSurvivesLoserVanishes(t *testing.T) {
	e := newEngine(t, Config{PageBytes: 256})
	for i := 0; i < 120; i++ {
		if err := e.RunTxn(func(x *Txn) error {
			return x.Insert("t", fmt.Sprintf("k%04d", i), []byte(fmt.Sprintf("v%d", i)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	// A forced loser (ops stable, no commit).
	loser := e.Begin()
	if err := loser.Update("t", "k0000", []byte("scribble")); err != nil {
		t.Fatal(err)
	}
	if err := loser.Insert("t", "ghost", []byte("x")); err != nil {
		t.Fatal(err)
	}
	e.Log().Force()

	e.Crash()
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := e.RunTxn(func(x *Txn) error {
		for i := 0; i < 120; i++ {
			v, ok, _ := x.Read("t", fmt.Sprintf("k%04d", i))
			if !ok || string(v) != fmt.Sprintf("v%d", i) {
				return fmt.Errorf("key %d: %q %v", i, v, ok)
			}
		}
		if _, ok, _ := x.Read("t", "ghost"); ok {
			return fmt.Errorf("loser insert survived")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if e.Stats().UndoOps == 0 {
		t.Fatal("expected restart undo")
	}
}

func TestCheckpointBoundsRedo(t *testing.T) {
	e := newEngine(t, Config{PageBytes: 256})
	for i := 0; i < 100; i++ {
		if err := e.RunTxn(func(x *Txn) error {
			return x.Insert("t", fmt.Sprintf("k%04d", i), []byte("v"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	e.Crash()
	if err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().RedoOps; got != 0 {
		t.Fatalf("redo after checkpoint should be empty: %d", got)
	}
	if err := e.RunTxn(func(x *Txn) error {
		for i := 0; i < 100; i++ {
			if _, ok, _ := x.Read("t", fmt.Sprintf("k%04d", i)); !ok {
				return fmt.Errorf("key %d lost", i)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestScan(t *testing.T) {
	e := newEngine(t, Config{PageBytes: 256})
	if err := e.RunTxn(func(x *Txn) error {
		for i := 0; i < 60; i++ {
			if err := x.Insert("t", fmt.Sprintf("k%03d", i), []byte("v")); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.RunTxn(func(x *Txn) error {
		keys, _, err := x.Scan("t", "k010", "k020", 0)
		if err != nil {
			return err
		}
		if len(keys) != 10 || keys[0] != "k010" {
			return fmt.Errorf("scan = %v", keys)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedCrashConvergence(t *testing.T) {
	e := newEngine(t, Config{PageBytes: 256})
	model := map[string]string{}
	rnd := rand.New(rand.NewSource(21))
	for round := 0; round < 5; round++ {
		for i := 0; i < 100; i++ {
			k := fmt.Sprintf("k%03d", rnd.Intn(100))
			v := fmt.Sprintf("r%d-%d", round, i)
			del := rnd.Intn(4) == 0
			if err := e.RunTxn(func(x *Txn) error {
				if del {
					if _, ok, _ := x.Read("t", k); !ok {
						return nil
					}
					return x.Delete("t", k)
				}
				return x.Upsert("t", k, []byte(v))
			}); err != nil {
				t.Fatal(err)
			}
			if del {
				delete(model, k)
			} else {
				model[k] = v
			}
		}
		if rnd.Intn(2) == 0 {
			if _, err := e.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		e.Crash()
		if err := e.Recover(); err != nil {
			t.Fatal(err)
		}
		if err := e.RunTxn(func(x *Txn) error {
			for k, want := range model {
				v, ok, _ := x.Read("t", k)
				if !ok || string(v) != want {
					return fmt.Errorf("round %d %s: %q,%v want %q", round, k, v, ok, want)
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConcurrentTxns(t *testing.T) {
	e := newEngine(t, Config{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				_ = e.RunTxn(func(x *Txn) error {
					return x.Upsert("t", fmt.Sprintf("hot%d", i%7), []byte(fmt.Sprintf("g%d", g)))
				})
			}
		}(g)
	}
	wg.Wait()
	if e.Stats().Commits == 0 {
		t.Fatal("nothing committed")
	}
}
