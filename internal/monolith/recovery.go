package monolith

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/btree"
	"github.com/cidr09/unbundled/internal/dclog"
	"github.com/cidr09/unbundled/internal/lockmgr"
	"github.com/cidr09/unbundled/internal/page"
	"github.com/cidr09/unbundled/internal/wal"
)

// Crash simulates a whole-engine failure: log and cache manager fail
// together (§5.3.1: "Failures in a monolithic database kernel are never
// partial").
func (e *Engine) Crash() {
	e.mu.Lock()
	e.down = true
	e.pool = nil
	e.trees = make(map[string]*btree.Tree)
	e.txns = make(map[base.TxnID]*Txn)
	e.mu.Unlock()
	e.log.Crash()
	e.locks = lockmgr.New()
	e.locks.Timeout = e.cfg.LockTimeout
}

// Recover is ARIES-style restart: repeat history with page-oriented redo
// (the traditional "operation LSN <= page LSN" test, sound here because
// LSNs were assigned under page latches), then logical undo of losers.
func (e *Engine) Recover() error {
	pool := e.newPool()
	e.mu.Lock()
	e.pool = pool
	e.mu.Unlock()

	records := e.log.Scan(0)

	// Analysis.
	rssp := base.LSN(1)
	losers := make(map[base.TxnID]base.LSN)
	maxTxn := uint64(0)
	for _, rec := range records {
		if uint64(rec.Txn) > maxTxn {
			maxTxn = uint64(rec.Txn)
		}
		switch rec.Kind {
		case recCheckpoint:
			if u, n := binary.Uvarint(rec.Payload); n > 0 && base.LSN(u) > rssp {
				rssp = base.LSN(u)
			}
		case recOp, recCLR:
			if rec.Txn != 0 {
				losers[rec.Txn] = rec.LSN
			}
		case recCommit, recAbort:
			delete(losers, rec.Txn)
		}
	}

	// Redo: repeat history from the redo scan start point, structure
	// modifications and user operations interleaved in log order.
	for _, rec := range records {
		if rec.LSN < rssp {
			continue
		}
		if err := e.redoRecord(rec); err != nil {
			return err
		}
	}

	// Reopen trees from the recovered catalog.
	cat, err := e.pool.Fetch(catalogPageID)
	if err != nil || cat == nil {
		return fmt.Errorf("monolith: catalog lost: %v", err)
	}
	trees := make(map[string]*btree.Tree)
	cat.L.RLock()
	for i := range cat.Recs {
		root, n := binary.Uvarint(cat.Recs[i].Value)
		if n <= 0 {
			cat.L.RUnlock()
			e.pool.Unpin(catalogPageID)
			return fmt.Errorf("monolith: corrupt catalog entry %q", cat.Recs[i].Key)
		}
		trees[cat.Recs[i].Key] = e.newTree(cat.Recs[i].Key, base.PageID(root))
	}
	cat.L.RUnlock()
	e.pool.Unpin(catalogPageID)

	e.mu.Lock()
	e.trees = trees
	e.nextTxn = maxTxn
	e.rssp = rssp
	e.down = false
	e.mu.Unlock()

	// Undo losers (logical inverses, CLR-protected).
	for txn, lastLSN := range losers {
		e.undoChain(txn, lastLSN)
		e.log.AppendAssign(&wal.Record{Kind: recAbort, Txn: txn, Prev: lastLSN})
	}
	return nil
}

func (e *Engine) redoRecord(rec *wal.Record) error {
	dlsn := base.DLSN(rec.LSN)
	switch rec.Kind {
	case kindCreateTree:
		ct, err := dclog.DecodeCreateTree(rec.Payload)
		if err != nil {
			return err
		}
		if err := e.redoInstallImage(ct.RootID, ct.RootImage, dlsn); err != nil {
			return err
		}
		e.updateCatalog(ct.Table, ct.RootID, dlsn)
	case kindSplit:
		sp, err := dclog.DecodeSplit(rec.Payload)
		if err != nil {
			return err
		}
		return e.redoSplit(sp, dlsn)
	case kindConsolidate:
		co, err := dclog.DecodeConsolidate(rec.Payload)
		if err != nil {
			return err
		}
		return e.redoConsolidate(co, dlsn)
	case kindRootCollapse:
		rc, err := dclog.DecodeRootCollapse(rec.Payload)
		if err != nil {
			return err
		}
		e.updateCatalog(rc.Table, rc.NewRootID, dlsn)
		e.pool.Drop(rc.OldRootID, true)
	case recOp, recCLR:
		return e.redoOp(rec)
	}
	return nil
}

// redoOp is physiological redo: apply to the logged page iff the page LSN
// says the effect is missing.
func (e *Engine) redoOp(rec *wal.Record) error {
	pageID, op, _, _, err := decodeOpPayload(rec.Payload)
	if err != nil {
		return err
	}
	pg, err := e.pool.Fetch(pageID)
	if err != nil {
		return err
	}
	if pg == nil {
		// The page was later consolidated away; the consolidation's
		// physical image carries this operation's effect.
		return nil
	}
	pg.L.Lock()
	if pg.DLSN < base.DLSN(rec.LSN) {
		applyMonoWrite(pg, op.Kind, op.Key, op.Value)
		pg.DLSN = base.DLSN(rec.LSN)
		e.pool.MarkDirty(pg, 0, 0, pg.DLSN)
		e.redoOps.Add(1)
	}
	pg.L.Unlock()
	e.pool.Unpin(pageID)
	return nil
}

func (e *Engine) redoInstallImage(id base.PageID, image []byte, dlsn base.DLSN) error {
	existing, err := e.pool.Fetch(id)
	if err != nil {
		return err
	}
	if existing != nil {
		skip := existing.DLSN >= dlsn
		e.pool.Unpin(id)
		if skip {
			return nil
		}
	}
	pg, err := page.Decode(image)
	if err != nil {
		return err
	}
	pg.DLSN = dlsn
	e.pool.MarkDirty(pg, 0, 0, dlsn)
	e.pool.Install(pg)
	e.pool.Unpin(id)
	return nil
}

func (e *Engine) redoSplit(sp *dclog.Split, dlsn base.DLSN) error {
	if err := e.redoInstallImage(sp.RightID, sp.RightImage, dlsn); err != nil {
		return err
	}
	left, err := e.pool.Fetch(sp.LeftID)
	if err != nil {
		return err
	}
	if left == nil {
		return fmt.Errorf("monolith: split redo lost left page %d", sp.LeftID)
	}
	left.L.Lock()
	if left.DLSN < dlsn {
		pruneForSplit(left, sp.SplitKey)
		if left.Leaf {
			left.Next = sp.RightID
		}
		left.DLSN = dlsn
		e.pool.MarkDirty(left, 0, 0, dlsn)
	}
	left.L.Unlock()
	e.pool.Unpin(sp.LeftID)
	if sp.ParentID != 0 {
		parent, err := e.pool.Fetch(sp.ParentID)
		if err != nil || parent == nil {
			return fmt.Errorf("monolith: split redo lost parent %d: %v", sp.ParentID, err)
		}
		parent.L.Lock()
		if parent.DLSN < dlsn {
			if ci := parent.ChildIndex(sp.LeftID); ci >= 0 && parent.ChildIndex(sp.RightID) < 0 {
				parent.InsertSep(ci, sp.SplitKey, sp.RightID)
			}
			parent.DLSN = dlsn
			e.pool.MarkDirty(parent, 0, 0, dlsn)
		}
		parent.L.Unlock()
		e.pool.Unpin(sp.ParentID)
		return nil
	}
	if sp.NewRootID != 0 {
		existing, err := e.pool.Fetch(sp.NewRootID)
		if err != nil {
			return err
		}
		if existing == nil || existing.DLSN < dlsn {
			if existing != nil {
				e.pool.Unpin(sp.NewRootID)
			}
			root := page.NewBranch(sp.NewRootID, []string{sp.SplitKey},
				[]base.PageID{sp.LeftID, sp.RightID})
			root.DLSN = dlsn
			e.pool.MarkDirty(root, 0, 0, dlsn)
			e.pool.Install(root)
			e.pool.Unpin(sp.NewRootID)
		} else {
			e.pool.Unpin(sp.NewRootID)
		}
		e.updateCatalog(sp.Table, sp.NewRootID, dlsn)
	}
	return nil
}

func (e *Engine) redoConsolidate(co *dclog.Consolidate, dlsn base.DLSN) error {
	left, err := e.pool.Fetch(co.LeftID)
	if err != nil {
		return err
	}
	if left == nil || left.DLSN < dlsn {
		if left != nil {
			e.pool.Unpin(co.LeftID)
		}
		if err := e.redoInstallImage(co.LeftID, co.LeftImage, dlsn); err != nil {
			return err
		}
	} else {
		e.pool.Unpin(co.LeftID)
	}
	e.pool.Drop(co.RightID, true)
	if co.ParentID != 0 {
		parent, err := e.pool.Fetch(co.ParentID)
		if err != nil || parent == nil {
			return fmt.Errorf("monolith: consolidate redo lost parent %d: %v", co.ParentID, err)
		}
		parent.L.Lock()
		if parent.DLSN < dlsn {
			if ci := parent.ChildIndex(co.RightID); ci > 0 {
				parent.RemoveSep(ci - 1)
			}
			parent.DLSN = dlsn
			e.pool.MarkDirty(parent, 0, 0, dlsn)
		}
		parent.L.Unlock()
		e.pool.Unpin(co.ParentID)
	}
	return nil
}

func pruneForSplit(pg *page.Page, splitKey string) {
	if pg.Leaf {
		i := sort.Search(len(pg.Recs), func(i int) bool { return pg.Recs[i].Key >= splitKey })
		pg.Recs = pg.Recs[:i:i]
		return
	}
	i := sort.Search(len(pg.Keys), func(i int) bool { return pg.Keys[i] >= splitKey })
	pg.Keys = pg.Keys[:i:i]
	pg.Children = pg.Children[: i+1 : i+1]
}
