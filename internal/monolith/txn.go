package monolith

import (
	"context"
	"errors"
	"fmt"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/lockmgr"
	"github.com/cidr09/unbundled/internal/page"
	"github.com/cidr09/unbundled/internal/wal"
)

// Errors mirroring the tc package's transaction API.
var (
	ErrTxnDone   = errors.New("monolith: transaction already finished")
	ErrNotFound  = errors.New("monolith: key not found")
	ErrDuplicate = errors.New("monolith: key already exists")
)

type txnState uint8

const (
	txnActive txnState = iota
	txnCommitted
	txnAborted
)

// Txn is one transaction in the integrated engine.
type Txn struct {
	e                 *Engine
	id                base.TxnID
	state             txnState
	firstLSN, lastLSN base.LSN
}

// Begin starts a transaction.
func (e *Engine) Begin() *Txn {
	e.mu.Lock()
	e.nextTxn++
	x := &Txn{e: e, id: base.TxnID(e.nextTxn)}
	e.txns[x.id] = x
	e.mu.Unlock()
	return x
}

// RunTxn runs fn in a transaction, retrying deadlock victims.
func (e *Engine) RunTxn(fn func(*Txn) error) error {
	var err error
	for attempt := 0; attempt < 8; attempt++ {
		x := e.Begin()
		err = fn(x)
		if err == nil {
			if err = x.Commit(); err == nil {
				return nil
			}
		} else {
			_ = x.Abort()
		}
		if !errors.Is(err, lockmgr.ErrDeadlock) && !errors.Is(err, lockmgr.ErrTimeout) {
			return err
		}
	}
	return err
}

// Read returns the value for key under a shared lock.
func (x *Txn) Read(table, key string) ([]byte, bool, error) {
	if x.state != txnActive {
		return nil, false, ErrTxnDone
	}
	if err := x.lock(table, key, lockmgr.S); err != nil {
		return nil, false, err
	}
	t := x.e.tree(table)
	if t == nil {
		return nil, false, fmt.Errorf("monolith: no table %s", table)
	}
	var val []byte
	var found bool
	err := t.View(key, func(leaf *page.Page) {
		if r := leaf.Get(key); r != nil {
			val = append([]byte(nil), r.Value...)
			found = true
		}
	})
	return val, found, err
}

func (x *Txn) lock(table, key string, mode lockmgr.Mode) error {
	if err := x.e.locks.Lock(context.Background(), x.id, lockmgr.KeyRes(table, key), mode); err != nil {
		_ = x.Abort()
		return err
	}
	return nil
}

// Insert adds a record; ErrDuplicate if present.
func (x *Txn) Insert(table, key string, val []byte) error {
	return x.write(base.OpInsert, table, key, val)
}

// Update overwrites a record; ErrNotFound if absent.
func (x *Txn) Update(table, key string, val []byte) error {
	return x.write(base.OpUpdate, table, key, val)
}

// Upsert writes regardless of prior existence.
func (x *Txn) Upsert(table, key string, val []byte) error {
	return x.write(base.OpUpsert, table, key, val)
}

// Delete removes a record; ErrNotFound if absent.
func (x *Txn) Delete(table, key string) error {
	return x.write(base.OpDelete, table, key, nil)
}

// write is the integrated engine's fast path: one descent; the log record
// (with its pre-image, read directly off the page) is appended and the
// page LSN stamped while the page latch is held — the §5.1.1 discipline
// that makes the traditional idempotence test work.
func (x *Txn) write(kind base.OpKind, table, key string, val []byte) error {
	if x.state != txnActive {
		return ErrTxnDone
	}
	if err := x.lock(table, key, lockmgr.X); err != nil {
		return err
	}
	t := x.e.tree(table)
	if t == nil {
		return fmt.Errorf("monolith: no table %s", table)
	}
	var opErr error
	_, _, err := t.Apply(key, func(leaf *page.Page) bool {
		rec := leaf.Get(key)
		var prior []byte
		priorFound := rec != nil
		if rec != nil {
			prior = append([]byte(nil), rec.Value...)
		}
		switch kind {
		case base.OpInsert:
			if rec != nil {
				opErr = ErrDuplicate
				return false
			}
		case base.OpUpdate, base.OpDelete:
			if rec == nil {
				opErr = ErrNotFound
				return false
			}
		}
		op := &base.Op{Kind: kind, Table: table, Key: key, Value: val}
		lrec := &wal.Record{Kind: recOp, Txn: x.id, Prev: x.lastLSN,
			Payload: encodeOpPayload(leaf.ID, op, prior, priorFound)}
		lsn := x.e.log.AppendAssign(lrec)
		applyMonoWrite(leaf, kind, key, val)
		leaf.DLSN = base.DLSN(lsn) // the traditional page LSN
		x.e.pool.MarkDirty(leaf, 0, 0, base.DLSN(lsn))
		if x.firstLSN == 0 {
			x.firstLSN = lsn
		}
		x.lastLSN = lsn
		return false
	})
	if err != nil {
		return err
	}
	return opErr
}

// applyMonoWrite mutates the latched leaf (no versioning in the baseline).
func applyMonoWrite(leaf *page.Page, kind base.OpKind, key string, val []byte) {
	switch kind {
	case base.OpInsert, base.OpUpsert, base.OpUpdate:
		v := val
		if len(v) > 0 {
			v = append([]byte(nil), val...)
		} else {
			v = nil
		}
		leaf.Put(page.Record{Key: key, Value: v})
	case base.OpDelete:
		leaf.Remove(key)
	}
}

// Scan reads [lo, hi) locking each key as it is encountered (ARIES/IM-
// style key locking happens inside the engine where the keys are known,
// §3.1's observation about integrated kernels).
func (x *Txn) Scan(table, lo, hi string, limit int) (keys []string, vals [][]byte, err error) {
	if x.state != txnActive {
		return nil, nil, ErrTxnDone
	}
	t := x.e.tree(table)
	if t == nil {
		return nil, nil, fmt.Errorf("monolith: no table %s", table)
	}
	if limit <= 0 {
		limit = 1 << 30
	}
	err = t.Scan(lo, func(leaf *page.Page) bool {
		stopped := leaf.Ascend(lo, hi, func(r *page.Record) bool {
			keys = append(keys, r.Key)
			vals = append(vals, append([]byte(nil), r.Value...))
			return len(keys) < limit
		})
		return !stopped
	})
	if err != nil {
		return nil, nil, err
	}
	// Lock what was seen (keys determined inside the engine).
	for _, k := range keys {
		if lerr := x.e.locks.Lock(context.Background(), x.id, lockmgr.KeyRes(table, k), lockmgr.S); lerr != nil {
			_ = x.Abort()
			return nil, nil, lerr
		}
	}
	return keys, vals, nil
}

// Commit forces the log through the commit record and releases locks.
func (x *Txn) Commit() error {
	if x.state != txnActive {
		return ErrTxnDone
	}
	e := x.e
	c := e.log.AppendAssign(&wal.Record{Kind: recCommit, Txn: x.id, Prev: x.lastLSN})
	e.log.ForceTo(c)
	x.state = txnCommitted
	e.locks.ReleaseAll(x.id)
	e.mu.Lock()
	delete(e.txns, x.id)
	e.mu.Unlock()
	e.commits.Add(1)
	return nil
}

// Abort rolls back via logical inverses, logging compensation records.
func (x *Txn) Abort() error {
	if x.state != txnActive {
		if x.state == txnAborted {
			return nil
		}
		return ErrTxnDone
	}
	e := x.e
	e.undoChain(x.id, x.lastLSN)
	e.log.AppendAssign(&wal.Record{Kind: recAbort, Txn: x.id, Prev: x.lastLSN})
	x.state = txnAborted
	e.locks.ReleaseAll(x.id)
	e.mu.Lock()
	delete(e.txns, x.id)
	e.mu.Unlock()
	e.aborts.Add(1)
	return nil
}

// undoChain applies logical inverses for the chain ending at lastLSN,
// exactly the multi-level undo of §5.2.1: page-oriented redo, logical
// undo. Shared by Abort and restart.
func (e *Engine) undoChain(txn base.TxnID, lastLSN base.LSN) {
	cur := lastLSN
	for cur != 0 {
		rec := e.log.Get(cur)
		if rec == nil {
			return
		}
		switch rec.Kind {
		case recOp:
			_, op, prior, priorFound, err := decodeOpPayload(rec.Payload)
			if err != nil {
				return
			}
			if inv := inverseMonoOp(op, prior, priorFound); inv != nil {
				e.applyUndo(txn, cur, rec.Prev, inv)
			}
			cur = rec.Prev
		case recCLR:
			cur = rec.NextUndo
		default:
			cur = rec.Prev
		}
	}
}

// applyUndo executes one inverse operation through the normal descent
// (logical undo must tolerate records having moved between pages), logging
// a CLR whose page field is resolved at apply time.
func (e *Engine) applyUndo(txn base.TxnID, undone, nextUndo base.LSN, inv *base.Op) {
	t := e.tree(inv.Table)
	if t == nil {
		return
	}
	_, _, _ = t.Apply(inv.Key, func(leaf *page.Page) bool {
		clr := &wal.Record{Kind: recCLR, Txn: txn, Prev: undone, NextUndo: nextUndo,
			Payload: encodeOpPayload(leaf.ID, inv, nil, false)}
		lsn := e.log.AppendAssign(clr)
		applyMonoWrite(leaf, inv.Kind, inv.Key, inv.Value)
		leaf.DLSN = base.DLSN(lsn)
		e.pool.MarkDirty(leaf, 0, 0, base.DLSN(lsn))
		e.undoOps.Add(1)
		return false
	})
}

func inverseMonoOp(op *base.Op, prior []byte, priorFound bool) *base.Op {
	switch op.Kind {
	case base.OpInsert:
		return &base.Op{Kind: base.OpDelete, Table: op.Table, Key: op.Key}
	case base.OpUpdate:
		return &base.Op{Kind: base.OpUpdate, Table: op.Table, Key: op.Key, Value: prior}
	case base.OpUpsert:
		if priorFound {
			return &base.Op{Kind: base.OpUpdate, Table: op.Table, Key: op.Key, Value: prior}
		}
		return &base.Op{Kind: base.OpDelete, Table: op.Table, Key: op.Key}
	case base.OpDelete:
		return &base.Op{Kind: base.OpInsert, Table: op.Table, Key: op.Key, Value: prior}
	}
	return nil
}
