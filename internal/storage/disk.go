package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/cidr09/unbundled/internal/base"
)

// Disk-backed stable media. The in-memory PageStore/LogStore simulate
// stable storage for tests and experiments; a standalone DC process
// (cmd/unbundled-dc) needs the real thing, or a SIGKILL would take the
// "stable" half of the §5.3 failure model down with the volatile half.
// Both stores gain an optional write-through backing: reads stay in
// memory (the map is an exact image of the directory), every stable
// mutation also lands in the filesystem, and the Open* constructors
// rebuild the image from a previous incarnation's files.
//
// Durability posture: page writes and log forces go through atomic
// tmp+rename, and log forces fsync. That survives process kills
// unconditionally (the page cache belongs to the OS, not the process) and
// power loss up to the last fsync — the same contract the simulated
// Crash() models.
//
// The stores' mutation methods have no error returns (they model media
// that either works or is gone); an I/O failure on the backing directory
// is therefore fatal — the process dies and the failure becomes an
// ordinary DC crash for the rest of the deployment.

// OpenPageStoreDir returns a PageStore backed by dir, loading any pages a
// previous incarnation left there. Page files are named p<id>; the
// allocator high-water mark persists in "alloc" so crashed allocations
// are never reused.
func OpenPageStoreDir(dir string) (*PageStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := NewPageStore()
	s.dir = dir
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name)) // torn write from a kill
			continue
		}
		if !strings.HasPrefix(name, "p") {
			continue
		}
		id, err := strconv.ParseUint(name[1:], 10, 32)
		if err != nil {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		s.pages[base.PageID(id)] = data
		if uint32(id) > s.nextID {
			s.nextID = uint32(id)
		}
	}
	if data, err := os.ReadFile(filepath.Join(dir, "alloc")); err == nil {
		if n, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 32); err == nil && uint32(n) > s.nextID {
			s.nextID = uint32(n)
		}
	}
	return s, nil
}

func (s *PageStore) pagePath(id base.PageID) string {
	return filepath.Join(s.dir, fmt.Sprintf("p%d", uint32(id)))
}

// atomicWriteFile writes data to path via a tmp file and rename, so a kill
// mid-write never leaves a torn page.
func atomicWriteFile(path string, data []byte, sync bool) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ResetForFormat clears the allocator of an empty store. A kill between
// a format's first allocation and its first page write leaves a persisted
// allocator with zero pages; the next incarnation re-formats from
// scratch, so the stale allocator must go or the format's well-known
// page-ID assumptions break forever. Refuses (loudly) on a non-empty
// store — formatting over data is never intended.
func (s *PageStore) ResetForFormat() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pages) > 0 {
		panic(fmt.Sprintf("storage: allocator reset on a store holding %d pages", len(s.pages)))
	}
	s.nextID = 0
	s.persistAlloc(0)
}

// persistWrite mirrors a page write into the backing directory. It runs
// under the store's write lock deliberately: file rename order must match
// map update order per page, or a reopen could resurrect an older version
// of a page whose newer write was already acknowledged. Page writes are
// off the commit hot path (flushes and SMO forces), so consistency wins
// over concurrency here; the log store, which *is* on the commit path,
// stages its I/O outside the mutex instead.
func (s *PageStore) persistWrite(id base.PageID, data []byte) {
	if s.dir == "" {
		return
	}
	if err := atomicWriteFile(s.pagePath(id), data, false); err != nil {
		panic(fmt.Sprintf("storage: page %d write to %s: %v", id, s.dir, err))
	}
}

func (s *PageStore) persistFree(id base.PageID) {
	if s.dir == "" {
		return
	}
	if err := os.Remove(s.pagePath(id)); err != nil && !os.IsNotExist(err) {
		panic(fmt.Sprintf("storage: page %d free in %s: %v", id, s.dir, err))
	}
}

func (s *PageStore) persistAlloc(next uint32) {
	if s.dir == "" {
		return
	}
	if err := atomicWriteFile(filepath.Join(s.dir, "alloc"), []byte(strconv.FormatUint(uint64(next), 10)), false); err != nil {
		panic(fmt.Sprintf("storage: allocator persist in %s: %v", s.dir, err))
	}
}

// Log file format: a 16-byte big-endian header — the start index (logical
// index of the first retained record, advanced by Truncate) and the owner
// bound (see SetBound) — then length-prefixed records. Force appends the
// volatile tail and fsyncs; Truncate rewrites the file atomically
// (checkpoints are rare; simplicity wins).

// OpenLogStoreFile returns a LogStore backed by path, loading the records
// a previous incarnation forced there. Everything in the file is stable
// by construction — unforced tails never reach it.
func OpenLogStoreFile(path string) (*LogStore, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	os.Remove(path + ".tmp") // torn truncate rewrite from a kill
	l := NewLogStore()
	l.path = path
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		if err := atomicWriteFile(path, encodeLogImage(0, 0, nil), true); err != nil {
			return nil, err
		}
		return l, l.reopenFile()
	}
	if err != nil {
		return nil, err
	}
	start, bound, recs, err := decodeLogImage(data)
	if err != nil {
		return nil, fmt.Errorf("storage: log %s: %w", path, err)
	}
	l.start = start
	l.bound = bound
	l.stable = recs
	// A kill mid-append can leave torn bytes after the last whole record.
	// Rewrite the clean image before appending again, or the garbage would
	// sit between old and new records and corrupt the next reopen.
	if clean := encodeLogImage(start, bound, recs); len(clean) != len(data) {
		if err := atomicWriteFile(path, clean, true); err != nil {
			return nil, err
		}
	}
	return l, l.reopenFile()
}

func (l *LogStore) reopenFile() error {
	f, err := os.OpenFile(l.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.file = f
	return nil
}

func encodeLogImage(start, bound uint64, recs [][]byte) []byte {
	var hdr [16]byte
	binary.BigEndian.PutUint64(hdr[:8], start)
	binary.BigEndian.PutUint64(hdr[8:], bound)
	out := append([]byte(nil), hdr[:]...)
	for _, r := range recs {
		out = binary.AppendUvarint(out, uint64(len(r)))
		out = append(out, r...)
	}
	return out
}

func decodeLogImage(data []byte) (start, bound uint64, recs [][]byte, err error) {
	if len(data) < 16 {
		return 0, 0, nil, fmt.Errorf("truncated header")
	}
	start = binary.BigEndian.Uint64(data[:8])
	bound = binary.BigEndian.Uint64(data[8:16])
	data = data[16:]
	for len(data) > 0 {
		n, w := binary.Uvarint(data)
		if w <= 0 || n > uint64(len(data)-w) {
			// A kill mid-append can leave a torn final record; everything
			// before it was covered by an earlier fsync and is kept.
			break
		}
		data = data[w:]
		rec := make([]byte, n)
		copy(rec, data[:n])
		recs = append(recs, rec)
		data = data[n:]
	}
	return start, bound, recs, nil
}

// imageLocked snapshots the clean file image; callers hold mu.
func (l *LogStore) imageLocked() []byte {
	if l.file == nil {
		return nil
	}
	return encodeLogImage(l.start, l.bound, l.stable)
}

// persistForce appends the tail records that are becoming stable and
// fsyncs. Called by Force holding fmu (not mu): fmu owns the file handle
// and serializes all file I/O.
func (l *LogStore) persistForce(tail [][]byte) {
	if l.file == nil {
		return
	}
	var buf []byte
	for _, r := range tail {
		buf = binary.AppendUvarint(buf, uint64(len(r)))
		buf = append(buf, r...)
	}
	if _, err := l.file.Write(buf); err != nil {
		panic(fmt.Sprintf("storage: log append %s: %v", l.path, err))
	}
	if err := l.file.Sync(); err != nil {
		panic(fmt.Sprintf("storage: log fsync %s: %v", l.path, err))
	}
}

// persistTruncate rewrites the backing file to the given clean image.
// Called by Truncate holding fmu (not mu), after l.stable/l.start moved.
func (l *LogStore) persistTruncate(img []byte) {
	if l.file == nil {
		return
	}
	if err := atomicWriteFile(l.path, img, true); err != nil {
		panic(fmt.Sprintf("storage: log truncate rewrite %s: %v", l.path, err))
	}
	l.file.Close()
	if err := l.reopenFile(); err != nil {
		panic(fmt.Sprintf("storage: log reopen %s: %v", l.path, err))
	}
}
