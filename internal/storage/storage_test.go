package storage

import (
	"bytes"
	"sync"
	"testing"

	"github.com/cidr09/unbundled/internal/base"
)

func TestPageStoreBasics(t *testing.T) {
	s := NewPageStore()
	id := s.AllocPageID()
	if id == 0 {
		t.Fatal("page 0 must never be allocated")
	}
	if _, ok := s.Read(id); ok {
		t.Fatal("unwritten page must not exist")
	}
	s.Write(id, []byte("hello"))
	got, ok := s.Read(id)
	if !ok || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("read = %q ok=%v", got, ok)
	}
	// Write copies: mutating the source must not affect stable contents.
	src := []byte("abc")
	s.Write(id, src)
	src[0] = 'z'
	got, _ = s.Read(id)
	if !bytes.Equal(got, []byte("abc")) {
		t.Fatal("store aliased caller buffer")
	}
	// Read copies too.
	got[0] = 'q'
	got2, _ := s.Read(id)
	if !bytes.Equal(got2, []byte("abc")) {
		t.Fatal("read aliased stable buffer")
	}
	s.Free(id)
	if s.Exists(id) {
		t.Fatal("freed page still exists")
	}
}

func TestPageStoreAllocatorNeverReuses(t *testing.T) {
	s := NewPageStore()
	seen := map[base.PageID]bool{}
	for i := 0; i < 1000; i++ {
		id := s.AllocPageID()
		if seen[id] {
			t.Fatalf("page ID %d reused", id)
		}
		seen[id] = true
	}
	s.NoteAllocated(5000)
	if id := s.AllocPageID(); id <= 5000 {
		t.Fatalf("NoteAllocated not honored: %d", id)
	}
}

func TestPageStoreConcurrent(t *testing.T) {
	s := NewPageStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := s.AllocPageID()
				s.Write(id, []byte{byte(id)})
				d, ok := s.Read(id)
				if !ok || d[0] != byte(id) {
					t.Errorf("lost page %d", id)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("len = %d", s.Len())
	}
	st := s.Stats()
	if st.PageWrites != 800 || st.PageReads != 800 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLogStoreForceCrash(t *testing.T) {
	l := NewLogStore()
	l.Append([]byte("a"))
	l.Append([]byte("b"))
	if l.StableEnd() != 0 {
		t.Fatal("nothing forced yet")
	}
	if end := l.Force(); end != 2 {
		t.Fatalf("force end = %d", end)
	}
	l.Append([]byte("c"))
	l.Crash()
	if l.End() != 2 || l.StableEnd() != 2 {
		t.Fatalf("after crash end=%d stable=%d", l.End(), l.StableEnd())
	}
	recs := l.Scan(0)
	if len(recs) != 2 || string(recs[0]) != "a" || string(recs[1]) != "b" {
		t.Fatalf("scan = %q", recs)
	}
}

func TestLogStoreTruncateAndScan(t *testing.T) {
	l := NewLogStore()
	for _, s := range []string{"a", "b", "c", "d"} {
		l.Append([]byte(s))
	}
	l.Force()
	l.Truncate(2)
	if l.Start() != 2 {
		t.Fatalf("start = %d", l.Start())
	}
	recs := l.Scan(0) // clamped to start
	if len(recs) != 2 || string(recs[0]) != "c" {
		t.Fatalf("scan = %q", recs)
	}
	if got := l.Scan(99); got != nil {
		t.Fatalf("scan past end = %q", got)
	}
	// appends continue with correct logical indexes
	if idx := l.Append([]byte("e")); idx != 4 {
		t.Fatalf("append idx = %d", idx)
	}
}

func TestLogStoreScanCopies(t *testing.T) {
	l := NewLogStore()
	l.Append([]byte("abc"))
	l.Force()
	recs := l.Scan(0)
	recs[0][0] = 'z'
	recs2 := l.Scan(0)
	if string(recs2[0]) != "abc" {
		t.Fatal("scan aliased stable storage")
	}
}
