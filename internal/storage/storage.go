// Package storage simulates the stable media under a data component: an
// atomic page store and an append-only log store. "Stable" contents
// survive component crashes; everything above storage (buffer pool, log
// buffers) is volatile and lost on Crash. This is the substitution for
// real disks described in DESIGN.md §3: it preserves the stable/volatile
// divide that drives the paper's §5.3 partial-failure protocols, and it
// counts I/O so experiments can report read/write/force traffic.
package storage

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cidr09/unbundled/internal/base"
)

// Stats counts stable-media traffic.
type Stats struct {
	PageReads   uint64
	PageWrites  uint64
	PageFrees   uint64
	BytesRead   uint64
	BytesWriten uint64
}

// PageStore is a crash-safe page store: Write is atomic per page (no torn
// writes — mirroring sector-atomic page writes assumed by the paper's
// recovery protocols). The zero value is not usable; call NewPageStore.
type PageStore struct {
	mu     sync.RWMutex
	pages  map[base.PageID][]byte
	nextID uint32 // persisted allocator; see AllocPageID
	// dir, when nonempty, write-through-backs the store with one file per
	// page so stable contents survive process death (see disk.go).
	dir string

	// WriteDelay simulates media latency per page write (0 = none).
	WriteDelay time.Duration
	// ReadDelay simulates media latency per page read (0 = none).
	ReadDelay time.Duration

	reads, writes, frees, bytesRead, bytesWritten atomic.Uint64
}

// NewPageStore returns an empty page store. Page IDs start at 1; 0 is the
// invalid PageID.
func NewPageStore() *PageStore {
	return &PageStore{pages: make(map[base.PageID][]byte), nextID: 0}
}

// AllocPageID durably allocates a fresh page identifier. Allocation is a
// stable operation: a crash after AllocPageID never reuses the ID, so
// system-transaction redo can recreate pages by ID without collisions.
func (s *PageStore) AllocPageID() base.PageID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	s.persistAlloc(s.nextID)
	return base.PageID(s.nextID)
}

// NoteAllocated raises the allocator to at least id (used when DC-log
// recovery observes a page image with an ID the allocator has not reached;
// cannot happen with stable allocation but kept as a defensive invariant).
func (s *PageStore) NoteAllocated(id base.PageID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if uint32(id) > s.nextID {
		s.nextID = uint32(id)
	}
}

// Write atomically replaces the stable contents of page id. The data is
// copied; callers may reuse the buffer.
func (s *PageStore) Write(id base.PageID, data []byte) {
	if id == 0 {
		panic("storage: write to invalid page 0")
	}
	if s.WriteDelay > 0 {
		time.Sleep(s.WriteDelay)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.pages[id] = cp
	s.persistWrite(id, cp)
	s.mu.Unlock()
	s.writes.Add(1)
	s.bytesWritten.Add(uint64(len(data)))
}

// Read returns a copy of the stable contents of page id, or ok=false if the
// page has never been written (or was freed).
func (s *PageStore) Read(id base.PageID) (data []byte, ok bool) {
	if s.ReadDelay > 0 {
		time.Sleep(s.ReadDelay)
	}
	s.mu.RLock()
	d, ok := s.pages[id]
	s.mu.RUnlock()
	if !ok {
		return nil, false
	}
	cp := make([]byte, len(d))
	copy(cp, d)
	s.reads.Add(1)
	s.bytesRead.Add(uint64(len(d)))
	return cp, true
}

// Exists reports whether the page has stable contents without counting a
// read.
func (s *PageStore) Exists(id base.PageID) bool {
	s.mu.RLock()
	_, ok := s.pages[id]
	s.mu.RUnlock()
	return ok
}

// Free durably removes the page (page delete, §5.2.2). The ID is not
// recycled.
func (s *PageStore) Free(id base.PageID) {
	s.mu.Lock()
	delete(s.pages, id)
	s.persistFree(id)
	s.mu.Unlock()
	s.frees.Add(1)
}

// Len returns the number of stable pages.
func (s *PageStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages)
}

// IDs returns all stable page IDs (order unspecified).
func (s *PageStore) IDs() []base.PageID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]base.PageID, 0, len(s.pages))
	for id := range s.pages {
		out = append(out, id)
	}
	return out
}

// Stats returns a snapshot of I/O counters.
func (s *PageStore) Stats() Stats {
	return Stats{
		PageReads:   s.reads.Load(),
		PageWrites:  s.writes.Load(),
		PageFrees:   s.frees.Load(),
		BytesRead:   s.bytesRead.Load(),
		BytesWriten: s.bytesWritten.Load(),
	}
}

// LogStore is the stable half of a write-ahead log: an append-only sequence
// of opaque records with a force boundary. Appends land in a volatile tail;
// Force makes the tail stable; Crash discards whatever was not forced.
type LogStore struct {
	mu         sync.Mutex
	stable     [][]byte // records [0, forced)
	tail       [][]byte // records [forced, end)
	start      uint64   // logical index of stable[0] after truncation
	bound      uint64   // owner-supplied watermark surviving full truncation
	forces     atomic.Uint64
	noopForces atomic.Uint64
	appends    atomic.Uint64
	bytes      atomic.Uint64
	// path/file, when set, back the stable half with an append-mostly
	// fsynced file so forced records survive process death (see disk.go).
	// fmu serializes the file I/O itself, which runs *outside* mu so the
	// documented group-commit concurrency (appends proceed while a force
	// is in flight) holds for disk-backed logs too.
	path string
	file *os.File
	fmu  sync.Mutex

	// ForceDelay simulates the latency of a stable force (fsync). While a
	// force sleeps the store mutex is NOT held, so concurrent appends
	// proceed — this is what makes group forcing observable in benches.
	ForceDelay time.Duration
}

// NewLogStore returns an empty log store.
func NewLogStore() *LogStore { return &LogStore{} }

// Append adds a record to the volatile tail and returns its logical index.
func (l *LogStore) Append(rec []byte) uint64 {
	cp := make([]byte, len(rec))
	copy(cp, rec)
	l.mu.Lock()
	idx := l.start + uint64(len(l.stable)+len(l.tail))
	l.tail = append(l.tail, cp)
	l.mu.Unlock()
	l.appends.Add(1)
	l.bytes.Add(uint64(len(rec)))
	return idx
}

// Force makes every appended record stable and returns the first
// un-appended index (i.e. records < that index are stable). On a
// disk-backed store the file append+fsync runs under fmu but outside mu,
// so concurrent Appends proceed during the (slow) media write; records
// appended mid-force stay volatile until the next force.
//
// A force that finds the tail empty is a no-op: the stable end already
// covers every appended record, so neither ForceDelay nor the media fsync
// is paid. Group commit makes these common — one committer's force covers
// its neighbours', whose own Force calls then land on an empty tail — and
// NoopForces counts them to prove the coalescing.
func (l *LogStore) Force() uint64 {
	l.mu.Lock()
	if len(l.tail) == 0 {
		end := l.start + uint64(len(l.stable))
		l.mu.Unlock()
		l.noopForces.Add(1)
		return end
	}
	l.mu.Unlock()
	if l.ForceDelay > 0 {
		time.Sleep(l.ForceDelay)
	}
	l.fmu.Lock()
	l.mu.Lock()
	n := len(l.tail)
	pending := l.tail[:n:n] // records are immutable once appended
	l.mu.Unlock()
	if n > 0 {
		l.persistForce(pending) // file I/O outside mu, serialized by fmu
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	defer l.fmu.Unlock()
	if n > 0 {
		l.stable = append(l.stable, l.tail[:n]...)
		l.tail = append([][]byte(nil), l.tail[n:]...)
	}
	l.forces.Add(1)
	return l.start + uint64(len(l.stable))
}

// StableEnd returns the first non-stable index.
func (l *LogStore) StableEnd() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.start + uint64(len(l.stable))
}

// End returns the first unused index (stable + volatile).
func (l *LogStore) End() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.start + uint64(len(l.stable)+len(l.tail))
}

// Crash discards the volatile tail, leaving only forced records. A force
// in flight completes first (its records were handed to the media; they
// are stable).
func (l *LogStore) Crash() {
	l.fmu.Lock()
	defer l.fmu.Unlock()
	l.mu.Lock()
	l.tail = nil
	l.mu.Unlock()
}

// Scan returns copies of stable records with logical index in [from, end).
// Volatile tail records are not visible to Scan: recovery reads only the
// stable log.
func (l *LogStore) Scan(from uint64) [][]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.start {
		from = l.start
	}
	lo := from - l.start
	if lo >= uint64(len(l.stable)) {
		return nil
	}
	out := make([][]byte, 0, uint64(len(l.stable))-lo)
	for _, r := range l.stable[lo:] {
		cp := make([]byte, len(r))
		copy(cp, r)
		out = append(out, cp)
	}
	return out
}

// Truncate durably discards stable records with index < before. Volatile
// records are unaffected. Truncating beyond the stable end panics: the
// caller must only release what the checkpoint contract allows. The
// backing-file rewrite runs outside mu (under fmu), so readers and
// appenders are not blocked behind the media I/O.
func (l *LogStore) Truncate(before uint64) {
	l.fmu.Lock()
	defer l.fmu.Unlock()
	l.mu.Lock()
	if before <= l.start {
		l.mu.Unlock()
		return
	}
	n := before - l.start
	if n > uint64(len(l.stable)) {
		end := l.start + uint64(len(l.stable))
		l.mu.Unlock()
		panic(fmt.Sprintf("storage: truncate(%d) beyond stable end %d", before, end))
	}
	l.stable = append([][]byte(nil), l.stable[n:]...)
	l.start = before
	img := l.imageLocked()
	l.mu.Unlock()
	l.persistTruncate(img)
}

// SetBound durably records an owner-supplied watermark (the wal layer's
// highest-truncated LSN) that must survive even when truncation empties
// the log: a reopened store with zero records must still know how far the
// LSN space was consumed, or a new incarnation would re-allocate LSNs the
// stable pages already reference. Call before Truncate; the bound rides
// the truncation rewrite into the file header.
func (l *LogStore) SetBound(bound uint64) {
	l.mu.Lock()
	if bound > l.bound {
		l.bound = bound
	}
	l.mu.Unlock()
}

// Bound returns the highest bound ever set (0 if none).
func (l *LogStore) Bound() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bound
}

// Start returns the logical index of the first retained record.
func (l *LogStore) Start() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.start
}

// Forces returns the number of Force calls that hit the media (the fsync
// count for benches); no-op forces are excluded.
func (l *LogStore) Forces() uint64 { return l.forces.Load() }

// NoopForces returns the number of Force calls skipped because the stable
// end already covered every appended record — each one an fsync (and a
// ForceDelay) that group commit made redundant.
func (l *LogStore) NoopForces() uint64 { return l.noopForces.Load() }

// AppendedBytes returns total bytes appended (log volume for benches).
func (l *LogStore) AppendedBytes() uint64 { return l.bytes.Load() }
