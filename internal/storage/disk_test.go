package storage

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/cidr09/unbundled/internal/base"
)

func TestPageStoreDirReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenPageStoreDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	id1 := s.AllocPageID()
	id2 := s.AllocPageID()
	s.Write(id1, []byte("page-one"))
	s.Write(id2, []byte("page-two"))
	s.Write(id2, []byte("page-two-v2"))
	id3 := s.AllocPageID() // allocated, never written: must not be reused
	s.Free(id1)

	// A new incarnation (the store object is simply dropped — a kill never
	// runs destructors) sees exactly the renamed state.
	r, err := OpenPageStoreDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Read(id1); ok {
		t.Fatal("freed page survived reopen")
	}
	if data, ok := r.Read(id2); !ok || string(data) != "page-two-v2" {
		t.Fatalf("page 2 after reopen: %q ok=%v", data, ok)
	}
	if next := r.AllocPageID(); next <= id3 {
		t.Fatalf("allocator reused id: got %d, previously allocated %d", next, id3)
	}
}

func TestPageStoreDirCleansTornTmp(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenPageStoreDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	id := s.AllocPageID()
	s.Write(id, []byte("good"))
	// Simulate a kill mid-rename: a stray tmp file next to the real page.
	if err := os.WriteFile(filepath.Join(dir, "p999.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenPageStoreDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if data, ok := r.Read(id); !ok || string(data) != "good" {
		t.Fatalf("page after torn-tmp reopen: %q ok=%v", data, ok)
	}
	if _, err := os.Stat(filepath.Join(dir, "p999.tmp")); !os.IsNotExist(err) {
		t.Fatal("torn tmp file not cleaned up")
	}
	if r.Exists(base.PageID(999)) {
		t.Fatal("torn tmp surfaced as a page")
	}
}

func TestLogStoreFileReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := OpenLogStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("r0"))
	l.Append([]byte("r1"))
	l.Force()
	l.Append([]byte("r2-unforced")) // volatile tail: must not survive

	r, err := OpenLogStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := r.Scan(0)
	if len(recs) != 2 || string(recs[0]) != "r0" || string(recs[1]) != "r1" {
		t.Fatalf("reopened records: %q", recs)
	}
	if r.End() != 2 {
		t.Fatalf("reopened end = %d", r.End())
	}

	// Appends continue at the right logical index and survive another cycle.
	if idx := r.Append([]byte("r2")); idx != 2 {
		t.Fatalf("append after reopen at index %d", idx)
	}
	r.Force()
	r.Truncate(2)

	r2, err := OpenLogStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Start() != 2 {
		t.Fatalf("start after truncate+reopen = %d", r2.Start())
	}
	recs = r2.Scan(0)
	if len(recs) != 1 || string(recs[0]) != "r2" {
		t.Fatalf("records after truncate+reopen: %q", recs)
	}
}

func TestLogStoreFileBoundSurvivesFullTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := OpenLogStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.Append([]byte{byte(i)})
	}
	l.Force()
	l.SetBound(5) // the owner's highest-truncated watermark
	l.Truncate(5) // discard everything

	r, err := OpenLogStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scan(0)) != 0 {
		t.Fatalf("records survived full truncation: %d", len(r.Scan(0)))
	}
	if r.Bound() != 5 {
		t.Fatalf("bound after full truncation + reopen = %d, want 5", r.Bound())
	}
	if r.Start() != 5 {
		t.Fatalf("start after full truncation + reopen = %d, want 5", r.Start())
	}
}

func TestLogStoreFileTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := OpenLogStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("whole"))
	l.Force()
	// A kill mid-append can leave a torn final record in the file; the
	// reopen must keep everything before it.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{200}); err != nil { // claims a 200-byte record, provides none
		t.Fatal(err)
	}
	f.Close()

	r, err := OpenLogStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := r.Scan(0)
	if len(recs) != 1 || string(recs[0]) != "whole" {
		t.Fatalf("records after torn tail: %q", recs)
	}

	// The torn bytes must not linger between old and new records: append,
	// force, and reopen once more.
	r.Append([]byte("after-torn"))
	r.Force()
	r2, err := OpenLogStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs = r2.Scan(0)
	if len(recs) != 2 || string(recs[1]) != "after-torn" {
		t.Fatalf("records after append-past-torn reopen: %q", recs)
	}
}
