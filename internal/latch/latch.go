// Package latch provides the short-term physical locks (latches) a data
// component uses to make individual logical operations atomic while staying
// multi-threaded (§4.1.2(1)). As in traditional storage engines, latches
// are held for very short periods and deadlocks are avoided by ordering
// latch requests (tree level first, then page, left before right), which
// the B-tree layer enforces.
//
// Latches are instrumented: contended acquisitions are counted so the
// experiment harness can report latch contention per configuration.
package latch

import (
	"sync"
	"sync/atomic"
)

// Latch is an instrumented reader/writer latch. The zero value is ready to
// use.
type Latch struct {
	mu        sync.RWMutex
	contended atomic.Uint64
}

// Lock acquires the latch exclusively.
func (l *Latch) Lock() {
	if l.mu.TryLock() {
		return
	}
	l.contended.Add(1)
	l.mu.Lock()
}

// Unlock releases an exclusive hold.
func (l *Latch) Unlock() { l.mu.Unlock() }

// RLock acquires the latch shared.
func (l *Latch) RLock() {
	if l.mu.TryRLock() {
		return
	}
	l.contended.Add(1)
	l.mu.RLock()
}

// RUnlock releases a shared hold.
func (l *Latch) RUnlock() { l.mu.RUnlock() }

// TryLock attempts an exclusive acquisition without blocking (buffer-pool
// eviction uses this to skip busy victims).
func (l *Latch) TryLock() bool { return l.mu.TryLock() }

// Contended returns the number of acquisitions that had to wait.
func (l *Latch) Contended() uint64 { return l.contended.Load() }
