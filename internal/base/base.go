// Package base defines the identifiers, logical-operation vocabulary, and
// the TC:DC service contract shared by the transactional component (TC),
// data components (DCs), the wire protocol, and the monolithic baseline.
//
// Terminology follows the paper: a TC labels every request with a unique,
// monotonically increasing LSN drawn from its log sequence space (§4.2
// "Unique request IDs"); a DC uses its own dLSN space for system
// transactions (§5.2.2). The two spaces are never compared with each other.
package base

import (
	"errors"
	"fmt"
)

// LSN is a log sequence number in a TC's log space. It doubles as the
// unique request identifier for operations sent to a DC. Zero means "none".
type LSN uint64

// DLSN is a DC-local log sequence number used to make structure
// modification (system transaction) recovery idempotent. Zero means "none".
type DLSN uint64

// TCID identifies a transactional component instance. A DC tracks abstract
// LSNs separately per TCID (§6.1.1).
type TCID uint16

// Epoch numbers the incarnations of one TC. A TC mints a fresh, strictly
// larger epoch every time it (re)starts, forces it into its log before
// stamping it on any operation, and announces it to every DC via
// begin_restart. The DC refuses anything stamped with an older epoch
// (CodeStaleEpoch): operations of a dead incarnation that were still on
// the wire when the TC crashed can therefore never execute after the
// restart reset, even though the restarted TC reuses the dead
// incarnation's LSN space. Zero means "no epoch" (pre-epoch encodings and
// a DC that has never seen a restart for the TC).
type Epoch uint64

// TS is a commit or snapshot timestamp: nanoseconds on the Unix epoch,
// drawn from a clock-with-error-bound (internal/clock). A TC stamps every
// versioned commit with a TS strictly larger than any it assigned before;
// a snapshot read at T sees exactly the versions committed with TS <= T.
// Zero means "no timestamp": unversioned data, visible to every snapshot.
type TS uint64

// PageID identifies a page within one DC's stable store. Zero is invalid.
type PageID uint32

// TxnID identifies a user transaction within one TC. Zero is invalid.
type TxnID uint64

// OpKind enumerates the logical, record-oriented operations of the TC:DC
// interface (§4.2.1 perform_operation). The DC never learns which user
// transaction an operation belongs to, nor whether it is forward activity
// or an inverse applied during rollback.
type OpKind uint8

const (
	// OpNone is the zero OpKind and is never sent.
	OpNone OpKind = iota
	// OpRead returns the current value for a key. Reads carry request IDs
	// but do not mutate DC state and are not recorded in abstract LSNs.
	OpRead
	// OpInsert adds a record; it fails with CodeDuplicate if the key exists.
	OpInsert
	// OpUpdate overwrites the value of an existing record; CodeNotFound if
	// the key does not exist.
	OpUpdate
	// OpDelete removes a record; CodeNotFound if the key does not exist.
	OpDelete
	// OpUpsert writes the value regardless of prior existence.
	OpUpsert
	// OpScanProbe is the speculative probe of the fetch-ahead protocol
	// (§3.1): it returns the next Limit keys at or after Key without
	// reading their values, so the TC can lock them before the real read.
	OpScanProbe
	// OpRangeRead returns records with Key <= k < EndKey, at most Limit.
	OpRangeRead
	// OpCommitVersions finalizes a versioned write: the before version of
	// Key is discarded, making the later version the committed one (§6.2.2).
	OpCommitVersions
	// OpAbortVersions rolls back a versioned write: the latest version of
	// Key is discarded and the before version restored (§6.2.2).
	OpAbortVersions
)

var opKindNames = [...]string{
	OpNone:           "none",
	OpRead:           "read",
	OpInsert:         "insert",
	OpUpdate:         "update",
	OpDelete:         "delete",
	OpUpsert:         "upsert",
	OpScanProbe:      "scan-probe",
	OpRangeRead:      "range-read",
	OpCommitVersions: "commit-versions",
	OpAbortVersions:  "abort-versions",
}

func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// IsWrite reports whether the operation mutates DC state and therefore
// participates in abstract-LSN idempotence tracking.
func (k OpKind) IsWrite() bool {
	switch k {
	case OpInsert, OpUpdate, OpDelete, OpUpsert, OpCommitVersions, OpAbortVersions:
		return true
	}
	return false
}

// ReadFlavor selects the isolation behaviour of a read when multiple TCs
// share a DC (§6.2).
type ReadFlavor uint8

const (
	// ReadPlain reads the latest version; used by the owning TC for its own
	// partition, where strict two-phase locking already isolates access.
	ReadPlain ReadFlavor = iota
	// ReadDirty reads the latest version regardless of commit state.
	// Always well formed thanks to DC operation atomicity, but the value
	// may belong to an uncommitted transaction (§6.2.1).
	ReadDirty
	// ReadCommitted reads the before version when an uncommitted later
	// version exists; requires versioned data (§6.2.2). Never blocks.
	ReadCommitted
	// ReadSnapshot reads the newest version committed at or before the
	// operation's TS: the multi-version read of a snapshot transaction.
	// Requires versioned data; never blocks on locks (the DC waits until
	// its safe timestamp covers TS instead). Uncommitted versions are
	// never visible regardless of which TC wrote them.
	ReadSnapshot
)

func (f ReadFlavor) String() string {
	switch f {
	case ReadPlain:
		return "plain"
	case ReadDirty:
		return "dirty"
	case ReadCommitted:
		return "read-committed"
	case ReadSnapshot:
		return "snapshot"
	}
	return fmt.Sprintf("ReadFlavor(%d)", uint8(f))
}

// Code is the outcome of a logical operation.
type Code uint8

const (
	// CodeOK means the operation executed (or was recognized as already
	// executed and skipped idempotently).
	CodeOK Code = iota
	// CodeNotFound means the key did not exist for update/delete/read.
	CodeNotFound
	// CodeDuplicate means an insert hit an existing key.
	CodeDuplicate
	// CodeBadRequest means the operation was malformed.
	CodeBadRequest
	// CodeUnavailable means the DC is down or restarting; the sender
	// should retry (resend contract, §4.2).
	CodeUnavailable
	// CodeStaleEpoch means the operation was stamped with an incarnation
	// epoch older than the one the DC holds for that TC: it was issued by a
	// dead incarnation whose unforced log tail is gone. Unlike
	// CodeUnavailable this is a permanent nack — resending can never
	// succeed, because epochs only move forward.
	CodeStaleEpoch
	// CodeCancelled means the caller's context was cancelled while the
	// operation was waiting (on a wire reply, a retry pause, or a recovery
	// gate). It is a local outcome — a DC never sends it — and says nothing
	// about whether the operation executed.
	CodeCancelled
	// CodeWrongOwner means the operation targets a key outside the
	// issuing TC's §6.1 update-ownership partition. The TC enforces
	// ownership before an operation is ever logged or shipped, so today
	// this code crosses the wire only if a future DC-side check refuses
	// one; it is permanent either way — ownership moves by changing the
	// placement, not by retrying.
	CodeWrongOwner
)

func (c Code) String() string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeNotFound:
		return "not-found"
	case CodeDuplicate:
		return "duplicate"
	case CodeBadRequest:
		return "bad-request"
	case CodeUnavailable:
		return "unavailable"
	case CodeStaleEpoch:
		return "stale-epoch"
	case CodeCancelled:
		return "cancelled"
	case CodeWrongOwner:
		return "wrong-owner"
	}
	return fmt.Sprintf("Code(%d)", uint8(c))
}

// Err converts a failure code to an error, or nil for CodeOK.
func (c Code) Err() error {
	if c == CodeOK {
		return nil
	}
	return codeError(c)
}

type codeError Code

func (e codeError) Error() string { return "dc: " + Code(e).String() }

// Is folds the result codes into the error taxonomy, so a code that
// crossed the wire still matches its public sentinel via errors.Is.
func (e codeError) Is(target error) bool {
	switch Code(e) {
	case CodeUnavailable:
		return target == ErrUnavailable
	case CodeCancelled:
		return target == ErrCancelled
	case CodeWrongOwner:
		return target == ErrWrongOwner
	}
	return false
}

// IsNotFound reports whether err is the CodeNotFound error.
func IsNotFound(err error) bool { return err == codeError(CodeNotFound) }

// IsDuplicate reports whether err is the CodeDuplicate error.
func IsDuplicate(err error) bool { return err == codeError(CodeDuplicate) }

// ErrStaleEpoch is the typed error for CodeStaleEpoch: the operation (or
// control call) came from a TC incarnation that has since been fenced by a
// restart. Senders must treat it as permanent and never retry; errors.Is
// works through wrapping.
var ErrStaleEpoch error = codeError(CodeStaleEpoch)

// IsStaleEpoch reports whether err is (or wraps) the stale-epoch error.
func IsStaleEpoch(err error) bool { return errors.Is(err, ErrStaleEpoch) }
