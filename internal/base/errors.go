package base

import (
	"context"
	"errors"
	"strings"
)

// The public error taxonomy. Every failure a transaction can surface is
// rooted in exactly one of these sentinels, so callers branch with
// errors.Is instead of string matching, end to end: the sentinels are
// attached at the layer that detects the condition (lockmgr, wire, DC) and
// rehydrated when a failure crosses the TC:DC wire as a result code or a
// control-reply string.
var (
	// ErrDeadlock marks a transaction chosen as a deadlock victim. The
	// transaction has been aborted; retrying it as a fresh transaction is
	// expected to succeed (transient).
	ErrDeadlock = errors.New("unbundled: deadlock victim")
	// ErrLockTimeout marks a lock wait that exceeded its bound. The
	// transaction has been aborted; transient.
	ErrLockTimeout = errors.New("unbundled: lock wait timeout")
	// ErrUnavailable marks an operation refused because a component is
	// down, restarting, or its wire stub has been closed. Transient: the
	// resend/recovery contract will make a retry succeed once the
	// component is back.
	ErrUnavailable = errors.New("unbundled: component unavailable")
	// ErrCancelled marks an operation abandoned because the caller's
	// context was cancelled or its deadline expired. Errors carrying it
	// also wrap the context's own error, so errors.Is(err,
	// context.Canceled) / context.DeadlineExceeded work too. Permanent:
	// retrying under the same context cannot succeed.
	ErrCancelled = errors.New("unbundled: operation cancelled")
	// ErrReadOnly marks a write attempted inside a transaction begun with
	// TxnOptions.ReadOnly. Permanent.
	ErrReadOnly = errors.New("unbundled: read-only transaction")
	// ErrWrongOwner marks a write outside the issuing TC's §6.1 update-
	// ownership partition: the deployment's placement names another TC as
	// the key's owner, and update responsibility is exclusive. The
	// transaction has been aborted. Permanent — retrying at the same TC
	// can never succeed; route the transaction to the owner instead
	// (TxnOptions.WriteSet, Client.RunTxnAt).
	ErrWrongOwner = errors.New("unbundled: wrong update owner for key")
	// ErrUnknownTable marks a placement lookup for a table no clause of
	// the deployment's placement covers (and no "*" catch-all exists).
	// Permanent: the spec, not the moment, is wrong.
	ErrUnknownTable = errors.New("unbundled: table not covered by placement")
	// ErrDraining marks a transaction refused because the component is
	// draining: an operator asked it to quiesce, so it stops admitting
	// new transactions while finishing in-flight ones. Transient — the
	// client re-routes to another TC or retries after undrain.
	ErrDraining = errors.New("unbundled: component draining")
	// ErrPlacementMismatch marks a fleet-assembly cross-check failure:
	// the placement spec maps a table onto a DC whose live catalog does
	// not serve that table. Permanent: the deployment (spec or -tables
	// flags), not the moment, is wrong.
	ErrPlacementMismatch = errors.New("unbundled: placement does not match DC catalog")
	// ErrOverloaded marks a request refused by a server whose worker
	// queues are full: admission control shedding load instead of growing
	// goroutines without bound. Transient — the request was never
	// executed, so retrying after a pause is always safe and succeeds
	// once the queues drain.
	ErrOverloaded = errors.New("unbundled: server overloaded")
)

// IsTransient reports whether err is an abort a caller should retry as a
// fresh transaction: deadlock victims, bounded lock waits that timed out,
// component-unavailable windows, draining components (the retry
// re-routes), and overload sheds. Cancellation, stale epochs, and
// semantic failures (not-found, duplicate, read-only) are permanent.
func IsTransient(err error) bool {
	return errors.Is(err, ErrDeadlock) || errors.Is(err, ErrLockTimeout) ||
		errors.Is(err, ErrUnavailable) || errors.Is(err, ErrDraining) ||
		errors.Is(err, ErrOverloaded)
}

// CancelErr converts a done context into the taxonomy's cancellation
// error: errors.Is matches ErrCancelled, the context's cause, and the
// plain context error. Callers invoke it only after ctx.Done() fired.
func CancelErr(ctx context.Context) error {
	cause := context.Cause(ctx)
	if cause == nil {
		cause = context.Canceled
	}
	return &cancelErr{cause: cause}
}

type cancelErr struct{ cause error }

func (e *cancelErr) Error() string { return "unbundled: cancelled: " + e.cause.Error() }

func (e *cancelErr) Unwrap() error { return e.cause }

func (e *cancelErr) Is(target error) bool { return target == ErrCancelled }

// RehydrateWireError re-types a control-plane failure that crossed the
// wire as a string, so errors.Is keeps working through the stub: the known
// sentinel messages are matched by substring and re-wrapped.
func RehydrateWireError(msg string) error {
	for _, sentinel := range []error{ErrStaleEpoch, ErrUnavailable, ErrWrongOwner, ErrUnknownTable,
		ErrDraining, ErrPlacementMismatch, ErrOverloaded} {
		if strings.Contains(msg, sentinel.Error()) {
			return &wireErr{msg: msg, sentinel: sentinel}
		}
	}
	return errors.New(msg)
}

type wireErr struct {
	msg      string
	sentinel error
}

func (e *wireErr) Error() string { return e.msg }

func (e *wireErr) Unwrap() error { return e.sentinel }
