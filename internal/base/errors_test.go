package base

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestIsTransientClassification(t *testing.T) {
	for _, err := range []error{ErrDeadlock, ErrLockTimeout, ErrUnavailable} {
		if !IsTransient(err) {
			t.Fatalf("%v must be transient", err)
		}
		if !IsTransient(fmt.Errorf("wrapped: %w", err)) {
			t.Fatalf("wrapped %v must stay transient", err)
		}
	}
	for _, err := range []error{ErrCancelled, ErrReadOnly, ErrStaleEpoch,
		ErrWrongOwner, ErrUnknownTable, errors.New("other")} {
		if IsTransient(err) {
			t.Fatalf("%v must not be transient", err)
		}
	}
}

func TestCodeErrorsFoldIntoTaxonomy(t *testing.T) {
	if err := CodeUnavailable.Err(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("CodeUnavailable error %v does not match ErrUnavailable", err)
	}
	if err := CodeCancelled.Err(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("CodeCancelled error %v does not match ErrCancelled", err)
	}
	if err := CodeStaleEpoch.Err(); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("CodeStaleEpoch error %v does not match ErrStaleEpoch", err)
	}
	// Wrapped one level (the way the txn layer surfaces them).
	if err := fmt.Errorf("tc: read: %w", CodeUnavailable.Err()); !IsTransient(err) {
		t.Fatalf("wrapped unavailable %v lost transience", err)
	}
	if err := CodeWrongOwner.Err(); !errors.Is(err, ErrWrongOwner) {
		t.Fatalf("CodeWrongOwner error %v does not match ErrWrongOwner", err)
	}
	if errors.Is(CodeNotFound.Err(), ErrUnavailable) || errors.Is(CodeOK.Err(), ErrUnavailable) {
		t.Fatal("unrelated codes must not match taxonomy sentinels")
	}
}

func TestCancelErr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := CancelErr(ctx)
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("CancelErr %v must match ErrCancelled and context.Canceled", err)
	}
	if IsTransient(err) {
		t.Fatal("cancellation is not transient")
	}

	cause := errors.New("the reason")
	ctx2, cancel2 := context.WithCancelCause(context.Background())
	cancel2(cause)
	if err := CancelErr(ctx2); !errors.Is(err, cause) || !errors.Is(err, ErrCancelled) {
		t.Fatalf("CancelErr %v must carry the cancel cause", err)
	}
}

func TestRehydrateWireError(t *testing.T) {
	msg := "dc dc0: checkpoint for tc 1 epoch 2 behind fence 3: " + ErrStaleEpoch.Error()
	if err := RehydrateWireError(msg); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("rehydrated %q does not match ErrStaleEpoch", msg)
	}
	msg = "dc dc0: " + ErrUnavailable.Error()
	if err := RehydrateWireError(msg); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("rehydrated %q does not match ErrUnavailable", msg)
	}
	// The §6.1 placement sentinels rehydrate like their siblings, so
	// errors.Is(err, ErrWrongOwner) keeps working when a failure crosses
	// the TC:DC wire as a control-reply string.
	for _, sentinel := range []error{ErrWrongOwner, ErrUnknownTable} {
		msg := "tc 2: upsert kv/\"w1-0\": " + sentinel.Error()
		if err := RehydrateWireError(msg); !errors.Is(err, sentinel) {
			t.Fatalf("rehydrated %q does not match %v", msg, sentinel)
		}
	}
	if err := RehydrateWireError("something else"); err == nil || errors.Is(err, ErrUnavailable) {
		t.Fatalf("unknown message must rehydrate to a plain error, got %v", err)
	}
}
