package base

import (
	"context"
	"encoding/binary"
	"fmt"
)

// Op is one logical, record-oriented operation sent from a TC to a DC
// (§4.2.1 perform_operation). It carries the operation name and arguments
// (table, key or key range) plus the unique request identifier LSN.
// Resends reuse the identifier so the DC can provide idempotence.
type Op struct {
	TC TCID
	// Epoch is the incarnation epoch of the sending TC. The DC rejects
	// operations stamped with an epoch older than the one installed by the
	// TC's last begin_restart (CodeStaleEpoch), fencing requests that were
	// still on the wire when that incarnation died. Zero means "unstamped"
	// (pre-epoch encodings); it is never fenced unless a restart has been
	// seen.
	Epoch  Epoch
	LSN    LSN
	Kind   OpKind
	Table  string
	Key    string
	EndKey string // exclusive upper bound for OpRangeRead
	Value  []byte // payload for insert/update/upsert
	Limit  int32  // max results for probe/range reads
	Flavor ReadFlavor
	// Versioned selects versioned writes (§6.2.2): the DC keeps the before
	// version so other TCs can perform read-committed reads.
	Versioned bool
	// TS is the operation's timestamp: the snapshot timestamp of a
	// ReadSnapshot read (or range read), or the commit timestamp stamped on
	// OpCommitVersions when the transaction's versions are finalized. Zero
	// means "no timestamp" (every pre-snapshot operation).
	TS TS
}

func (o *Op) String() string {
	return fmt.Sprintf("op{tc=%d ep=%d lsn=%d %s %s/%q}", o.TC, o.Epoch, o.LSN, o.Kind, o.Table, o.Key)
}

// ConflictsWith reports whether two operations logically conflict: same
// table and overlapping footprint with at least one writer. The TC must
// never have two conflicting operations outstanding at a DC concurrently
// (§1.2); the DC asserts this in debug builds.
func (o *Op) ConflictsWith(p *Op) bool {
	if o.Table != p.Table {
		return false
	}
	if !o.Kind.IsWrite() && !p.Kind.IsWrite() {
		return false
	}
	// Versioned reads never conflict with writes (§6.2.2); dirty reads
	// never conflict by definition (§6.2.1).
	if isNonBlockingRead(o) || isNonBlockingRead(p) {
		return false
	}
	return footprintOverlap(o, p)
}

func isNonBlockingRead(o *Op) bool {
	if o.Kind.IsWrite() {
		return false
	}
	return o.Flavor == ReadDirty || o.Flavor == ReadCommitted || o.Flavor == ReadSnapshot
}

func footprintOverlap(o, p *Op) bool {
	lo1, hi1, pt1 := footprint(o)
	lo2, hi2, pt2 := footprint(p)
	if pt1 && pt2 {
		return lo1 == lo2
	}
	if pt1 {
		return lo2 <= lo1 && (hi2 == "" || lo1 < hi2)
	}
	if pt2 {
		return lo1 <= lo2 && (hi1 == "" || lo2 < hi1)
	}
	// range vs range
	if hi1 != "" && hi1 <= lo2 {
		return false
	}
	if hi2 != "" && hi2 <= lo1 {
		return false
	}
	return true
}

func footprint(o *Op) (lo, hi string, point bool) {
	switch o.Kind {
	case OpRangeRead, OpScanProbe:
		return o.Key, o.EndKey, false
	default:
		return o.Key, "", true
	}
}

// Result is the reply for one operation; LSN echoes the request identifier
// so the reply can be correlated to the request (§4.2.1).
type Result struct {
	LSN   LSN
	Code  Code
	Found bool
	Value []byte
	// Prior carries the pre-image for update/delete on first execution.
	// Resends of already-applied writes cannot reproduce it (PriorKnown
	// false); the TC only consumes Prior from first replies.
	Prior      []byte
	PriorKnown bool
	PriorFound bool
	// Keys/Values carry probe and range-read results.
	Keys   []string
	Values [][]byte
	// Applied is true when the DC recognized the request as already
	// reflected in its state and skipped re-execution (idempotence, §4.2).
	Applied bool
}

// Err returns the failure of the result as an error, nil when CodeOK.
func (r *Result) Err() error { return r.Code.Err() }

// Service is the TC:DC interface of §4.2.1, expressed as methods invoked by
// the TC. Implementations: the DC itself (direct, in-process) and the wire
// client stub (asynchronous messages with resend).
//
// Blocking calls take a context and honor its cancellation and deadline:
// an abandoned Perform returns CodeCancelled, an abandoned control call an
// ErrCancelled-wrapped ctx error. Cancellation abandons only the *wait* —
// a request already on the wire may still execute at the DC, which is why
// the TC never cancels the delivery of logged (mutating) operations: their
// resend/redo contract must run to completion. Watermark broadcasts are
// fire-and-forget and take no context.
type Service interface {
	// Perform executes one logical operation exactly once (resend +
	// idempotence). It blocks until a reply is available or ctx is done.
	Perform(ctx context.Context, op *Op) *Result
	// PerformBatch executes a batch of logical operations in the given
	// order, returning one result per operation, positionally. Batches are
	// the unit of pipelined operation shipping: a TC coalesces queued
	// operations headed to the same DC into one batch so a single message
	// round trip acknowledges many operations. Each operation keeps its own
	// LSN request ID, so resending a whole batch stays idempotent per
	// operation. Like Perform, it blocks until all replies are available.
	PerformBatch(ctx context.Context, ops []*Op) []*Result
	// EndOfStableLog tells the DC that all operations with LSN <= eosl are
	// stable in the TC log and will not be lost in a TC crash; causality
	// then allows the DC to make such operations stable (write-ahead
	// logging across the kernel split). Watermarks stamped with a fenced
	// epoch are ignored: a dead incarnation's broadcasts still in flight
	// must not re-poison watermarks the restart reset re-based.
	EndOfStableLog(tc TCID, epoch Epoch, eosl LSN)
	// LowWaterMark tells the DC the TC has received replies for every
	// operation with LSN <= lwm, so there are no gaps below lwm among the
	// operations reflected in cached pages (§5.1.2). Epoch-fenced like
	// EndOfStableLog.
	LowWaterMark(tc TCID, epoch Epoch, lwm LSN)
	// Checkpoint asks the DC to make stable every page containing effects
	// of operations with LSN < newRSSP. When it returns nil, the contract
	// requiring the TC to be able to resend those operations is released
	// and the TC may advance its redo scan start point (§4.2.1). A
	// checkpoint from a fenced epoch fails with ErrStaleEpoch.
	Checkpoint(ctx context.Context, tc TCID, epoch Epoch, newRSSP LSN) error
	// BeginRestart starts restart processing for one TC incarnation: the DC
	// installs epoch as the TC's fence — durably, and before any state is
	// touched — then discards from its cache all effects of that TC's
	// operations with LSN beyond stableLSN (they are lost forever;
	// causality guarantees none are stable). Other TCs' data is untouched
	// (§6.1.2). From this point every operation, watermark, or control call
	// stamped with an older epoch is refused, so requests of the dead
	// incarnation still on the wire can never take effect. A BeginRestart
	// whose own epoch is older than the fence fails with ErrStaleEpoch;
	// a duplicate delivery for the already-installed epoch is a no-op (the
	// reset must not repeat once redo has begun).
	BeginRestart(ctx context.Context, tc TCID, epoch Epoch, stableLSN LSN) error
	// EndRestart acknowledges completion of the restart function: the DC
	// atomically activates the staged epoch, discards whatever the prior
	// incarnation still had queued (fenced in-flight operations), and
	// resumes normal processing. Fails with ErrStaleEpoch when epoch is
	// older than the installed fence (a dead incarnation's late call).
	EndRestart(ctx context.Context, tc TCID, epoch Epoch) error
	// SafeTS broadcasts the TC's safe timestamp and version-GC horizon,
	// fire-and-forget like the watermarks. safe promises that every
	// versioned commit this TC assigned a timestamp <= safe has been
	// finalized at the DCs and that no future commit of this TC will be
	// assigned a timestamp <= safe; a snapshot read at T is served once
	// every registered TC's safe covers T. horizon promises no live (or
	// future) snapshot of this TC will read below it, releasing versions
	// and tombstones older than the horizon for garbage collection.
	// Epoch-fenced like EndOfStableLog.
	SafeTS(tc TCID, epoch Epoch, safe TS, horizon TS)
}

// op/result wire encodings -------------------------------------------------

// opEpochFlag marks, on the kind byte, that an epoch varint follows the
// fixed three-byte group. OpKind values are tiny, so the high bit is free; an
// epoch-less (pre-epoch) frame never sets it, which keeps old encodings
// decodable and makes epoch-zero frames byte-identical to them.
const opEpochFlag = 0x80

// opTSFlag marks, on the kind byte, that a timestamp varint follows the
// epoch (when present). Like the epoch flag, a zero-TS operation never
// sets it, so pre-snapshot encodings stay byte-identical and decodable.
const opTSFlag = 0x40

// AppendOp serializes op to buf using a compact length-prefixed binary
// format (stdlib encoding/binary varints).
func AppendOp(buf []byte, o *Op) []byte {
	buf = binary.AppendUvarint(buf, uint64(o.TC))
	buf = binary.AppendUvarint(buf, uint64(o.LSN))
	kind := byte(o.Kind)
	if o.Epoch != 0 {
		kind |= opEpochFlag
	}
	if o.TS != 0 {
		kind |= opTSFlag
	}
	buf = append(buf, kind, byte(o.Flavor), boolByte(o.Versioned))
	if o.Epoch != 0 {
		buf = binary.AppendUvarint(buf, uint64(o.Epoch))
	}
	if o.TS != 0 {
		buf = binary.AppendUvarint(buf, uint64(o.TS))
	}
	buf = appendString(buf, o.Table)
	buf = appendString(buf, o.Key)
	buf = appendString(buf, o.EndKey)
	buf = appendBytes(buf, o.Value)
	buf = binary.AppendVarint(buf, int64(o.Limit))
	return buf
}

// DecodeOp parses an operation previously produced by AppendOp and returns
// the remaining bytes. Frames without the epoch flag (all pre-epoch
// encodings) decode with Epoch zero.
func DecodeOp(buf []byte) (*Op, []byte, error) {
	var o Op
	var err error
	var u uint64
	if u, buf, err = readUvarint(buf); err != nil {
		return nil, nil, err
	}
	o.TC = TCID(u)
	if u, buf, err = readUvarint(buf); err != nil {
		return nil, nil, err
	}
	o.LSN = LSN(u)
	if len(buf) < 3 {
		return nil, nil, errShort
	}
	kind := buf[0]
	o.Kind, o.Flavor, o.Versioned = OpKind(kind&^(opEpochFlag|opTSFlag)), ReadFlavor(buf[1]), buf[2] != 0
	buf = buf[3:]
	if kind&opEpochFlag != 0 {
		if u, buf, err = readUvarint(buf); err != nil {
			return nil, nil, err
		}
		o.Epoch = Epoch(u)
	}
	if kind&opTSFlag != 0 {
		if u, buf, err = readUvarint(buf); err != nil {
			return nil, nil, err
		}
		o.TS = TS(u)
	}
	if o.Table, buf, err = readString(buf); err != nil {
		return nil, nil, err
	}
	if o.Key, buf, err = readString(buf); err != nil {
		return nil, nil, err
	}
	if o.EndKey, buf, err = readString(buf); err != nil {
		return nil, nil, err
	}
	if o.Value, buf, err = readBytes(buf); err != nil {
		return nil, nil, err
	}
	var v int64
	if v, buf, err = readVarint(buf); err != nil {
		return nil, nil, err
	}
	o.Limit = int32(v)
	return &o, buf, nil
}

// AppendResult serializes r to buf.
func AppendResult(buf []byte, r *Result) []byte {
	buf = binary.AppendUvarint(buf, uint64(r.LSN))
	buf = append(buf, byte(r.Code), boolByte(r.Found), boolByte(r.PriorKnown),
		boolByte(r.PriorFound), boolByte(r.Applied))
	buf = appendBytes(buf, r.Value)
	buf = appendBytes(buf, r.Prior)
	buf = binary.AppendUvarint(buf, uint64(len(r.Keys)))
	for _, k := range r.Keys {
		buf = appendString(buf, k)
	}
	buf = binary.AppendUvarint(buf, uint64(len(r.Values)))
	for _, v := range r.Values {
		buf = appendBytes(buf, v)
	}
	return buf
}

// DecodeResult parses a result previously produced by AppendResult.
func DecodeResult(buf []byte) (*Result, []byte, error) {
	var r Result
	var err error
	var u uint64
	if u, buf, err = readUvarint(buf); err != nil {
		return nil, nil, err
	}
	r.LSN = LSN(u)
	if len(buf) < 5 {
		return nil, nil, errShort
	}
	r.Code = Code(buf[0])
	r.Found, r.PriorKnown, r.PriorFound, r.Applied = buf[1] != 0, buf[2] != 0, buf[3] != 0, buf[4] != 0
	buf = buf[5:]
	if r.Value, buf, err = readBytes(buf); err != nil {
		return nil, nil, err
	}
	if r.Prior, buf, err = readBytes(buf); err != nil {
		return nil, nil, err
	}
	if u, buf, err = readUvarint(buf); err != nil {
		return nil, nil, err
	}
	if u > uint64(len(buf)) {
		return nil, nil, errShort
	}
	if u > 0 {
		r.Keys = make([]string, u)
		for i := range r.Keys {
			if r.Keys[i], buf, err = readString(buf); err != nil {
				return nil, nil, err
			}
		}
	}
	if u, buf, err = readUvarint(buf); err != nil {
		return nil, nil, err
	}
	if u > uint64(len(buf)) {
		return nil, nil, errShort
	}
	if u > 0 {
		r.Values = make([][]byte, u)
		for i := range r.Values {
			if r.Values[i], buf, err = readBytes(buf); err != nil {
				return nil, nil, err
			}
		}
	}
	return &r, buf, nil
}

// batch framing -------------------------------------------------------------

// AppendOpBatch serializes a batch of operations: a count followed by the
// operations in shipping order.
func AppendOpBatch(buf []byte, ops []*Op) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ops)))
	for _, o := range ops {
		buf = AppendOp(buf, o)
	}
	return buf
}

// DecodeOpBatch parses a batch previously produced by AppendOpBatch.
func DecodeOpBatch(buf []byte) ([]*Op, []byte, error) {
	n, buf, err := readUvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(buf)) { // each op takes at least one byte
		return nil, nil, errShort
	}
	ops := make([]*Op, n)
	for i := range ops {
		if ops[i], buf, err = DecodeOp(buf); err != nil {
			return nil, nil, err
		}
	}
	return ops, buf, nil
}

// AppendResultBatch serializes the per-operation results of a batch.
func AppendResultBatch(buf []byte, rs []*Result) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(rs)))
	for _, r := range rs {
		buf = AppendResult(buf, r)
	}
	return buf
}

// DecodeResultBatch parses a batch reply previously produced by
// AppendResultBatch.
func DecodeResultBatch(buf []byte) ([]*Result, []byte, error) {
	n, buf, err := readUvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(buf)) { // each result takes at least one byte
		return nil, nil, errShort
	}
	rs := make([]*Result, n)
	for i := range rs {
		if rs[i], buf, err = DecodeResult(buf); err != nil {
			return nil, nil, err
		}
	}
	return rs, buf, nil
}

// small codec helpers -------------------------------------------------------

var errShort = fmt.Errorf("base: truncated encoding")

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func readUvarint(buf []byte) (uint64, []byte, error) {
	u, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, errShort
	}
	return u, buf[n:], nil
}

func readVarint(buf []byte) (int64, []byte, error) {
	v, n := binary.Varint(buf)
	if n <= 0 {
		return 0, nil, errShort
	}
	return v, buf[n:], nil
}

func readString(buf []byte) (string, []byte, error) {
	n, buf, err := readUvarint(buf)
	if err != nil || n > uint64(len(buf)) {
		return "", nil, errShort
	}
	return string(buf[:n]), buf[n:], nil
}

func readBytes(buf []byte) ([]byte, []byte, error) {
	n, buf, err := readUvarint(buf)
	if err != nil || n > uint64(len(buf)) {
		return nil, nil, errShort
	}
	if n == 0 {
		return nil, buf, nil
	}
	out := make([]byte, n)
	copy(out, buf[:n])
	return out, buf[n:], nil
}
