package base

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestOpKindStrings(t *testing.T) {
	for k := OpNone; k <= OpAbortVersions; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", k)
		}
	}
	if got := OpKind(200).String(); got != "OpKind(200)" {
		t.Fatalf("unknown kind name = %q", got)
	}
}

func TestIsWrite(t *testing.T) {
	writes := []OpKind{OpInsert, OpUpdate, OpDelete, OpUpsert, OpCommitVersions, OpAbortVersions}
	reads := []OpKind{OpRead, OpScanProbe, OpRangeRead, OpNone}
	for _, k := range writes {
		if !k.IsWrite() {
			t.Errorf("%v should be a write", k)
		}
	}
	for _, k := range reads {
		if k.IsWrite() {
			t.Errorf("%v should not be a write", k)
		}
	}
}

func TestCodeErr(t *testing.T) {
	if CodeOK.Err() != nil {
		t.Fatal("CodeOK must map to nil error")
	}
	if !IsNotFound(CodeNotFound.Err()) {
		t.Fatal("IsNotFound failed")
	}
	if !IsDuplicate(CodeDuplicate.Err()) {
		t.Fatal("IsDuplicate failed")
	}
	if IsNotFound(CodeDuplicate.Err()) {
		t.Fatal("IsNotFound must not match duplicate")
	}
}

func TestOpRoundTrip(t *testing.T) {
	ops := []*Op{
		{TC: 1, LSN: 42, Kind: OpInsert, Table: "users", Key: "u1", Value: []byte("v")},
		{TC: 7, LSN: 1 << 40, Kind: OpRangeRead, Table: "r", Key: "a", EndKey: "z", Limit: 100},
		{Kind: OpRead, Table: "t", Key: "k", Flavor: ReadCommitted},
		{TC: 3, LSN: 9, Kind: OpUpdate, Table: "t", Key: "k", Value: nil, Versioned: true},
		{Kind: OpScanProbe, Table: "t", Key: "", Limit: -1},
		{TC: 2, Epoch: 1, LSN: 5, Kind: OpUpsert, Table: "t", Key: "k", Value: []byte("v")},
		{TC: 2, Epoch: 1 << 33, LSN: 5, Kind: OpDelete, Table: "t", Key: "k", Versioned: true},
	}
	for _, o := range ops {
		buf := AppendOp(nil, o)
		got, rest, err := DecodeOp(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", o, err)
		}
		if len(rest) != 0 {
			t.Fatalf("decode %v left %d bytes", o, len(rest))
		}
		if !reflect.DeepEqual(o, got) {
			t.Fatalf("roundtrip mismatch:\n in=%#v\nout=%#v", o, got)
		}
	}
}

// legacyAppendOp reproduces the pre-epoch frame layout: no flag bit on the
// kind byte, no epoch varint. Decoders must keep accepting it.
func legacyAppendOp(buf []byte, o *Op) []byte {
	buf = binary.AppendUvarint(buf, uint64(o.TC))
	buf = binary.AppendUvarint(buf, uint64(o.LSN))
	buf = append(buf, byte(o.Kind), byte(o.Flavor), boolByte(o.Versioned))
	buf = appendString(buf, o.Table)
	buf = appendString(buf, o.Key)
	buf = appendString(buf, o.EndKey)
	buf = appendBytes(buf, o.Value)
	buf = binary.AppendVarint(buf, int64(o.Limit))
	return buf
}

func TestOpEpochBackwardCompatibleDecoding(t *testing.T) {
	o := &Op{TC: 4, LSN: 77, Kind: OpUpdate, Table: "t", Key: "k",
		Value: []byte("v"), Limit: 3, Versioned: true}

	// An epoch-zero frame is byte-identical to the legacy frame: old
	// decoders would accept everything a pre-restart sender emits.
	if got, want := AppendOp(nil, o), legacyAppendOp(nil, o); !bytes.Equal(got, want) {
		t.Fatalf("epoch-zero frame differs from legacy frame:\n got %x\nwant %x", got, want)
	}

	// A legacy frame decodes with Epoch zero — including mid-batch, where
	// the decoder cannot rely on "remaining bytes" heuristics.
	stamped := &Op{TC: 4, Epoch: 9, LSN: 78, Kind: OpInsert, Table: "t", Key: "k2"}
	buf := legacyAppendOp(nil, o)
	buf = AppendOp(buf, stamped)
	buf = legacyAppendOp(buf, o)
	first, rest, err := DecodeOp(buf)
	if err != nil || first.Epoch != 0 {
		t.Fatalf("legacy decode: %v epoch=%d", err, first.Epoch)
	}
	second, rest, err := DecodeOp(rest)
	if err != nil || second.Epoch != 9 {
		t.Fatalf("stamped decode: %v epoch=%d", err, second.Epoch)
	}
	third, rest, err := DecodeOp(rest)
	if err != nil || third.Epoch != 0 || len(rest) != 0 {
		t.Fatalf("trailing legacy decode: %v epoch=%d rest=%d", err, third.Epoch, len(rest))
	}
	if !reflect.DeepEqual(first, third) {
		t.Fatalf("legacy frames decoded differently: %#v vs %#v", first, third)
	}
}

func TestOpBatchRoundTripMixedEpochs(t *testing.T) {
	ops := []*Op{
		{TC: 1, Epoch: 2, LSN: 10, Kind: OpInsert, Table: "t", Key: "a", Value: []byte("1")},
		{TC: 1, LSN: 11, Kind: OpDelete, Table: "t", Key: "b"},
		{TC: 1, Epoch: 3, LSN: 12, Kind: OpUpsert, Table: "t", Key: "c", Value: []byte("3")},
	}
	buf := AppendOpBatch(nil, ops)
	got, rest, err := DecodeOpBatch(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("batch decode: %v rest=%d", err, len(rest))
	}
	if !reflect.DeepEqual(ops, got) {
		t.Fatalf("batch mismatch:\n in=%#v\nout=%#v", ops, got)
	}
}

func TestStaleEpochError(t *testing.T) {
	if CodeStaleEpoch.String() != "stale-epoch" {
		t.Fatalf("code name = %q", CodeStaleEpoch.String())
	}
	err := CodeStaleEpoch.Err()
	if !IsStaleEpoch(err) {
		t.Fatal("IsStaleEpoch failed on the direct error")
	}
	if !IsStaleEpoch(fmt.Errorf("dc x: fenced: %w", ErrStaleEpoch)) {
		t.Fatal("IsStaleEpoch failed through wrapping")
	}
	if IsStaleEpoch(CodeUnavailable.Err()) || IsNotFound(err) {
		t.Fatal("stale-epoch error conflated with other codes")
	}
}

func TestResultRoundTrip(t *testing.T) {
	rs := []*Result{
		{LSN: 1, Code: CodeOK, Found: true, Value: []byte("x")},
		{LSN: 2, Code: CodeNotFound},
		{LSN: 3, Code: CodeOK, Applied: true, PriorKnown: true, PriorFound: true, Prior: []byte("old")},
		{LSN: 4, Code: CodeOK, Keys: []string{"a", "b"}, Values: [][]byte{[]byte("1"), nil}},
		{LSN: 5, Code: CodeDuplicate, Keys: []string{}, Values: [][]byte{}},
	}
	for _, r := range rs {
		buf := AppendResult(nil, r)
		got, rest, err := DecodeResult(buf)
		if err != nil {
			t.Fatalf("decode %+v: %v", r, err)
		}
		if len(rest) != 0 {
			t.Fatalf("left %d bytes", len(rest))
		}
		// normalize empty slices produced by decode
		if len(r.Keys) == 0 {
			r.Keys = nil
		}
		if len(r.Values) == 0 {
			r.Values = nil
		}
		if len(got.Keys) == 0 {
			got.Keys = nil
		}
		if len(got.Values) == 0 {
			got.Values = nil
		}
		if !reflect.DeepEqual(r, got) {
			t.Fatalf("roundtrip mismatch:\n in=%#v\nout=%#v", r, got)
		}
	}
}

func TestOpRoundTripQuick(t *testing.T) {
	f := func(tc uint16, epoch, lsn uint64, kind uint8, table, key, end string, val []byte, limit int32, versioned bool) bool {
		o := &Op{
			TC: TCID(tc), Epoch: Epoch(epoch), LSN: LSN(lsn), Kind: OpKind(kind % 10), Table: table,
			Key: key, EndKey: end, Value: val, Limit: limit, Versioned: versioned,
		}
		if len(o.Value) == 0 {
			o.Value = nil
		}
		buf := AppendOp(nil, o)
		got, rest, err := DecodeOp(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		return reflect.DeepEqual(o, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	o := &Op{TC: 1, LSN: 99, Kind: OpInsert, Table: "t", Key: "kkkk", Value: bytes.Repeat([]byte("v"), 40)}
	buf := AppendOp(nil, o)
	for i := 0; i < len(buf); i++ {
		if _, _, err := DecodeOp(buf[:i]); err == nil {
			t.Fatalf("truncation at %d not detected", i)
		}
	}
	r := &Result{LSN: 8, Keys: []string{"a"}, Values: [][]byte{[]byte("zz")}}
	rb := AppendResult(nil, r)
	for i := 0; i < len(rb); i++ {
		if _, _, err := DecodeResult(rb[:i]); err == nil {
			t.Fatalf("result truncation at %d not detected", i)
		}
	}
}

func TestConflictsWith(t *testing.T) {
	w := func(k string) *Op { return &Op{Kind: OpUpdate, Table: "t", Key: k} }
	r := func(k string) *Op { return &Op{Kind: OpRead, Table: "t", Key: k} }
	rng := func(lo, hi string) *Op { return &Op{Kind: OpRangeRead, Table: "t", Key: lo, EndKey: hi} }

	cases := []struct {
		a, b *Op
		want bool
	}{
		{w("k"), w("k"), true},
		{w("k"), w("j"), false},
		{r("k"), r("k"), false},
		{w("k"), r("k"), true},
		{w("k"), r("j"), false},
		{w("k"), rng("a", "z"), true},
		{w("k"), rng("l", "z"), false},
		{rng("a", "m"), rng("l", "z"), false}, // both reads
		{w("k"), &Op{Kind: OpRead, Table: "t", Key: "k", Flavor: ReadCommitted}, false},
		{w("k"), &Op{Kind: OpRead, Table: "t", Key: "k", Flavor: ReadDirty}, false},
		{w("k"), &Op{Kind: OpUpdate, Table: "other", Key: "k"}, false},
		{&Op{Kind: OpScanProbe, Table: "t", Key: "a", EndKey: ""}, w("z"), true}, // open-ended probe
	}
	for i, c := range cases {
		if got := c.a.ConflictsWith(c.b); got != c.want {
			t.Errorf("case %d: conflict(%v,%v)=%v want %v", i, c.a, c.b, got, c.want)
		}
		if got := c.b.ConflictsWith(c.a); got != c.want {
			t.Errorf("case %d (sym): conflict=%v want %v", i, got, c.want)
		}
	}
}

func BenchmarkOpEncode(b *testing.B) {
	o := &Op{TC: 1, LSN: 12345, Kind: OpUpdate, Table: "reviews", Key: "m000123/u000456", Value: bytes.Repeat([]byte("x"), 100)}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendOp(buf[:0], o)
	}
}

func BenchmarkOpDecode(b *testing.B) {
	o := &Op{TC: 1, LSN: 12345, Kind: OpUpdate, Table: "reviews", Key: "m000123/u000456", Value: bytes.Repeat([]byte("x"), 100)}
	buf := AppendOp(nil, o)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeOp(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFootprintOverlapRandomized(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	keys := []string{"a", "b", "c", "d", "e", "f"}
	for i := 0; i < 2000; i++ {
		k1 := keys[rnd.Intn(len(keys))]
		k2 := keys[rnd.Intn(len(keys))]
		a := &Op{Kind: OpUpdate, Table: "t", Key: k1}
		lo := keys[rnd.Intn(len(keys))]
		hi := keys[rnd.Intn(len(keys))]
		if hi < lo {
			lo, hi = hi, lo
		}
		b := &Op{Kind: OpRangeRead, Table: "t", Key: lo, EndKey: hi}
		want := lo <= k1 && k1 < hi
		if got := a.ConflictsWith(b); got != want {
			t.Fatalf("point %q vs range [%q,%q): got %v want %v", k1, lo, hi, got, want)
		}
		_ = k2
	}
}
