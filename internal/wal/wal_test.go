package wal

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/storage"
)

func newLog(t *testing.T) *Log {
	t.Helper()
	l, err := New(storage.NewLogStore())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []*Record{
		{LSN: 1, Kind: 2, Txn: 3, Prev: 0, NextUndo: 0, Payload: []byte("hello")},
		{LSN: 1 << 40, Kind: 255, Txn: 1 << 50, Prev: 99, NextUndo: 98},
		{LSN: 7},
	}
	for _, r := range recs {
		buf := r.Append(nil)
		got, err := DecodeRecord(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(r, got) {
			t.Fatalf("roundtrip: in=%+v out=%+v", r, got)
		}
	}
}

func TestRecordRoundTripQuick(t *testing.T) {
	f := func(lsn uint64, kind uint8, txn, prev, nu uint64, payload []byte) bool {
		r := &Record{LSN: base.LSN(lsn), Kind: kind, Txn: base.TxnID(txn),
			Prev: base.LSN(prev), NextUndo: base.LSN(nu), Payload: payload}
		if len(r.Payload) == 0 {
			r.Payload = nil
		}
		got, err := DecodeRecord(r.Append(nil))
		return err == nil && reflect.DeepEqual(r, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordDecodeTruncated(t *testing.T) {
	r := &Record{LSN: 123456, Kind: 9, Txn: 7, Payload: bytes.Repeat([]byte("p"), 30)}
	buf := r.Append(nil)
	for i := 0; i < len(buf); i++ {
		if _, err := DecodeRecord(buf[:i]); err == nil {
			t.Fatalf("truncation at %d undetected", i)
		}
	}
}

func TestAppendAssignMonotonic(t *testing.T) {
	l := newLog(t)
	var lsns []base.LSN
	for i := 0; i < 10; i++ {
		lsns = append(lsns, l.AppendAssign(&Record{Kind: 1}))
		if i%3 == 0 {
			l.AllocLSN() // read IDs create gaps
		}
	}
	for i := 1; i < len(lsns); i++ {
		if lsns[i] <= lsns[i-1] {
			t.Fatalf("LSNs not increasing: %v", lsns)
		}
	}
}

func TestCrashLosesTail(t *testing.T) {
	l := newLog(t)
	a := l.AppendAssign(&Record{Kind: 1})
	l.ForceTo(a)
	b := l.AppendAssign(&Record{Kind: 2})
	if l.EOSL() != a {
		t.Fatalf("EOSL = %d want %d", l.EOSL(), a)
	}
	l.Crash()
	if l.LastLSN() != a {
		t.Fatalf("after crash last = %d want %d", l.LastLSN(), a)
	}
	// LSN of the lost record is reused.
	c := l.AppendAssign(&Record{Kind: 3})
	if c != b {
		t.Fatalf("LSN reuse expected: got %d want %d", c, b)
	}
	recs := l.Scan(0)
	if len(recs) != 1 || recs[0].Kind != 1 {
		t.Fatalf("stable scan after crash: %+v", recs)
	}
}

func TestScanOnlyStable(t *testing.T) {
	l := newLog(t)
	l.AppendAssign(&Record{Kind: 1})
	l.Force()
	l.AppendAssign(&Record{Kind: 2})
	recs := l.Scan(0)
	if len(recs) != 1 {
		t.Fatalf("scan saw volatile records: %d", len(recs))
	}
	l.Force()
	if got := len(l.Scan(0)); got != 2 {
		t.Fatalf("after force scan = %d", got)
	}
	if got := len(l.Scan(2)); got != 1 {
		t.Fatalf("scan(2) = %d", got)
	}
}

func TestRecoverFromMedia(t *testing.T) {
	media := storage.NewLogStore()
	l, _ := New(media)
	l.AppendAssign(&Record{Kind: 1, Payload: []byte("x")})
	l.AppendAssign(&Record{Kind: 2})
	l.Force()
	l.AppendAssign(&Record{Kind: 3}) // lost
	media.Crash()

	l2, err := New(media)
	if err != nil {
		t.Fatal(err)
	}
	if l2.EOSL() != 2 || l2.LastLSN() != 2 {
		t.Fatalf("recovered eosl=%d last=%d", l2.EOSL(), l2.LastLSN())
	}
	if next := l2.AppendAssign(&Record{Kind: 4}); next != 3 {
		t.Fatalf("allocation after recovery = %d want 3", next)
	}
}

func TestTruncate(t *testing.T) {
	l := newLog(t)
	for i := 0; i < 5; i++ {
		l.AppendAssign(&Record{Kind: uint8(i)})
	}
	l.Force()
	l.Truncate(3)
	recs := l.Scan(0)
	if len(recs) != 3 || recs[0].LSN != 3 {
		t.Fatalf("after truncate: %d recs first=%v", len(recs), recs[0])
	}
	if l.StartLSN() != 3 {
		t.Fatalf("StartLSN = %d", l.StartLSN())
	}
	// Truncate is idempotent and ignores lower bounds.
	l.Truncate(2)
	if len(l.Scan(0)) != 3 {
		t.Fatal("backwards truncate changed the log")
	}
}

func TestGet(t *testing.T) {
	l := newLog(t)
	l.AppendAssign(&Record{Kind: 1})
	l.AllocLSN()
	l.AppendAssign(&Record{Kind: 3})
	if r := l.Get(1); r == nil || r.Kind != 1 {
		t.Fatalf("Get(1) = %+v", r)
	}
	if r := l.Get(2); r != nil {
		t.Fatalf("Get(2) should be nil (read id), got %+v", r)
	}
	if r := l.Get(3); r == nil || r.Kind != 3 {
		t.Fatalf("Get(3) = %+v", r)
	}
}

func TestConcurrentAppendForce(t *testing.T) {
	l := newLog(t)
	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				lsn := l.AppendAssign(&Record{Kind: 1, Txn: base.TxnID(g)})
				if i%10 == 0 {
					l.ForceTo(lsn)
				}
			}
		}(g)
	}
	wg.Wait()
	l.Force()
	recs := l.Scan(0)
	if len(recs) != goroutines*perG {
		t.Fatalf("lost records: %d", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].LSN <= recs[i-1].LSN {
			t.Fatalf("stable log out of order at %d", i)
		}
	}
}

func TestGroupForce(t *testing.T) {
	media := storage.NewLogStore()
	media.ForceDelay = 0 // logic-only check
	l, _ := New(media)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lsn := l.AppendAssign(&Record{Kind: 1})
			l.ForceTo(lsn)
			if l.EOSL() < lsn {
				t.Errorf("ForceTo returned before stability: eosl=%d lsn=%d", l.EOSL(), lsn)
			}
		}()
	}
	wg.Wait()
}

func TestLogStoreTruncateBeyondStablePanics(t *testing.T) {
	media := storage.NewLogStore()
	media.Append([]byte("a"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic truncating past stable end")
		}
	}()
	media.Truncate(1) // record 0 not forced yet
}

func BenchmarkAppend(b *testing.B) {
	l, _ := New(storage.NewLogStore())
	payload := bytes.Repeat([]byte("x"), 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.AppendAssign(&Record{Kind: 1, Payload: payload})
	}
}

func BenchmarkGroupForce(b *testing.B) {
	for _, conc := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("conc=%d", conc), func(b *testing.B) {
			media := storage.NewLogStore()
			l, _ := New(media)
			b.SetParallelism(conc)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					lsn := l.AppendAssign(&Record{Kind: 1})
					l.ForceTo(lsn)
				}
			})
			b.ReportMetric(float64(media.Forces())/float64(b.N), "forces/op")
		})
	}
}
