// Package wal implements the log manager used by both the transactional
// component (the TC-log of §4.1.1, whose LSNs double as operation request
// IDs) and the data component (the DC-log of §5.2.2, whose dLSNs make
// system-transaction recovery idempotent).
//
// The log owns LSN allocation: every allocation is monotonically
// increasing, and an allocation may or may not carry a record. The TC uses
// record-less allocations for reads, which need unique request IDs but no
// redo information. After a crash the tail above the force boundary is
// lost and the LSN space above the stable end is reused — the abstract-LSN
// contract in package ablsn is designed for exactly this.
package wal

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/storage"
)

// Record is one log record. Kind values are interpreted by the owner (TC
// or DC); wal treats them opaquely.
type Record struct {
	LSN      base.LSN
	Kind     uint8
	Txn      base.TxnID
	Prev     base.LSN // previous record of the same transaction (undo chain)
	NextUndo base.LSN // for compensation records: next record to undo
	Payload  []byte
}

// Append encodes r into buf.
func (r *Record) Append(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(r.LSN))
	buf = append(buf, r.Kind)
	buf = binary.AppendUvarint(buf, uint64(r.Txn))
	buf = binary.AppendUvarint(buf, uint64(r.Prev))
	buf = binary.AppendUvarint(buf, uint64(r.NextUndo))
	buf = binary.AppendUvarint(buf, uint64(len(r.Payload)))
	return append(buf, r.Payload...)
}

// DecodeRecord parses a record previously produced by (*Record).Append.
func DecodeRecord(buf []byte) (*Record, error) {
	var r Record
	u, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, errCorrupt
	}
	r.LSN, buf = base.LSN(u), buf[n:]
	if len(buf) < 1 {
		return nil, errCorrupt
	}
	r.Kind, buf = buf[0], buf[1:]
	if u, n = binary.Uvarint(buf); n <= 0 {
		return nil, errCorrupt
	}
	r.Txn, buf = base.TxnID(u), buf[n:]
	if u, n = binary.Uvarint(buf); n <= 0 {
		return nil, errCorrupt
	}
	r.Prev, buf = base.LSN(u), buf[n:]
	if u, n = binary.Uvarint(buf); n <= 0 {
		return nil, errCorrupt
	}
	r.NextUndo, buf = base.LSN(u), buf[n:]
	if u, n = binary.Uvarint(buf); n <= 0 {
		return nil, errCorrupt
	}
	buf = buf[n:]
	if u > uint64(len(buf)) {
		return nil, errCorrupt
	}
	if u > 0 {
		r.Payload = make([]byte, u)
		copy(r.Payload, buf[:u])
	}
	return &r, nil
}

var errCorrupt = fmt.Errorf("wal: corrupt record")

// Log is a write-ahead log over a stable LogStore. All methods are safe for
// concurrent use.
type Log struct {
	mu      sync.Mutex
	cond    *sync.Cond
	media   *storage.LogStore
	recs    []*Record // in-memory image of media records (stable + tail)
	next    base.LSN  // next LSN to allocate
	forced  base.LSN  // EOSL: all records with LSN <= forced are stable
	last    base.LSN  // last appended record LSN
	bound   base.LSN  // highest truncated-away LSN: stable forever
	forcing bool
}

// New returns a log over media. If media already holds stable records (a
// restart), the in-memory image is rebuilt from them, the force boundary is
// the stable end, and LSN allocation resumes just above it — LSNs of lost
// tail records are reused, as §5.3.2 requires the rest of the system to
// tolerate.
func New(media *storage.LogStore) (*Log, error) {
	l := &Log{media: media}
	l.cond = sync.NewCond(&l.mu)
	for _, raw := range media.Scan(media.Start()) {
		r, err := DecodeRecord(raw)
		if err != nil {
			return nil, err
		}
		l.recs = append(l.recs, r)
	}
	if n := len(l.recs); n > 0 {
		l.forced = l.recs[n-1].LSN
		l.last = l.forced
		l.next = l.forced + 1
	} else {
		l.next = 1
	}
	// Truncation may have discarded every record (after a quiescent
	// checkpoint the log is legitimately empty), but the LSN space it
	// consumed is still referenced by stable state elsewhere (page dLSN
	// stamps, abstract LSNs). The media remembers the highest truncated
	// LSN; allocation must resume above it or idempotence tests would
	// mistake new records for already-applied old ones.
	if b := base.LSN(media.Bound()); b > l.forced {
		l.bound = b
		l.forced = b
		l.last = b
		l.next = b + 1
	} else {
		l.bound = base.LSN(media.Bound())
	}
	return l, nil
}

// AllocLSN reserves the next LSN without writing a record (unique request
// IDs for reads, §4.2).
func (l *Log) AllocLSN() base.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn := l.next
	l.next++
	return lsn
}

// AppendAssign atomically assigns the next LSN to r and appends it. It
// returns the assigned LSN. The record is volatile until forced.
func (l *Log) AppendAssign(r *Record) base.LSN {
	l.mu.Lock()
	r.LSN = l.next
	l.next++
	l.last = r.LSN
	l.recs = append(l.recs, r)
	// The media append happens under the same mutex so that the media
	// order always equals the in-memory (LSN) order; OPSR for the TC-log
	// depends on this.
	l.media.Append(r.Append(nil))
	l.mu.Unlock()
	return r.LSN
}

// ForceTo blocks until all records with LSN <= lsn are stable. Concurrent
// callers are group-forced: one caller performs the media force while the
// others wait, so a single (simulated) fsync can commit many transactions.
func (l *Log) ForceTo(lsn base.LSN) {
	l.mu.Lock()
	for l.forced < lsn {
		if l.forcing {
			l.cond.Wait()
			continue
		}
		l.forcing = true
		l.mu.Unlock()
		l.media.Force()
		l.mu.Lock()
		// Everything appended before the force completed is stable.
		end := l.media.StableEnd()
		if n := end - l.media.Start(); n > 0 && int(n) <= len(l.recs) {
			l.forced = l.recs[n-1].LSN
		}
		l.forcing = false
		l.cond.Broadcast()
		if l.forced < lsn && l.media.End() == l.media.StableEnd() {
			// The log is fully stable yet the target is still ahead: the
			// caller names an LSN that was never appended in this
			// incarnation. With the truncation bound tracked this cannot
			// happen; spinning would hang forever, so fail loudly.
			panic(fmt.Sprintf("wal: ForceTo(%d) beyond fully-stable log end %d", lsn, l.forced))
		}
	}
	l.mu.Unlock()
}

// Force makes every appended record stable.
func (l *Log) Force() {
	l.mu.Lock()
	target := l.last
	l.mu.Unlock()
	l.ForceTo(target)
}

// EOSL returns the end of the stable log: every record with LSN <= EOSL
// survives a crash (§4.2.1 end_of_stable_log).
func (l *Log) EOSL() base.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.forced
}

// LastLSN returns the LSN of the most recently appended record.
func (l *Log) LastLSN() base.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last
}

// NextLSN returns the next LSN that would be allocated (diagnostics).
func (l *Log) NextLSN() base.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Crash simulates losing the volatile tail. The in-memory image reverts to
// the stable prefix and LSN allocation restarts just above it.
func (l *Log) Crash() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.media.Crash()
	n := l.media.StableEnd() - l.media.Start()
	l.recs = l.recs[:n]
	if n > 0 {
		l.forced = l.recs[n-1].LSN
	} else {
		l.forced = 0
	}
	// Truncated records were stable by contract; the force watermark (and
	// hence LSN allocation) never regresses below them.
	if l.bound > l.forced {
		l.forced = l.bound
	}
	l.last = l.forced
	l.next = l.forced + 1
}

// Scan returns the stable records with LSN >= from, in LSN order. Volatile
// tail records are not returned: recovery must only see the stable log.
func (l *Log) Scan(from base.LSN) []*Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := int(l.media.StableEnd() - l.media.Start())
	stable := l.recs[:n]
	i := sort.Search(len(stable), func(i int) bool { return stable[i].LSN >= from })
	out := make([]*Record, len(stable)-i)
	copy(out, stable[i:])
	return out
}

// Get returns the record with exactly the given LSN (stable or volatile),
// or nil. Used for undo chain walks during normal rollback.
func (l *Log) Get(lsn base.LSN) *Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	i := sort.Search(len(l.recs), func(i int) bool { return l.recs[i].LSN >= lsn })
	if i < len(l.recs) && l.recs[i].LSN == lsn {
		return l.recs[i]
	}
	return nil
}

// Truncate discards stable records with LSN < before (contract
// termination: the checkpoint protocol has released the resend obligation
// for them, §4.2.1).
func (l *Log) Truncate(before base.LSN) {
	l.mu.Lock()
	defer l.mu.Unlock()
	stableN := int(l.media.StableEnd() - l.media.Start())
	i := sort.Search(stableN, func(i int) bool { return l.recs[i].LSN >= before })
	if i == 0 {
		return
	}
	if last := l.recs[i-1].LSN; last > l.bound {
		l.bound = last
	}
	// Persist the bound with the truncation: a disk-backed media whose
	// records are all discarded must still hand the next incarnation the
	// consumed LSN space (see storage.LogStore.SetBound).
	l.media.SetBound(uint64(l.bound))
	l.media.Truncate(l.media.Start() + uint64(i))
	l.recs = append([]*Record(nil), l.recs[i:]...)
}

// StartLSN returns the LSN of the first retained record, or 0 if empty.
func (l *Log) StartLSN() base.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.recs) == 0 {
		return 0
	}
	return l.recs[0].LSN
}

// Media exposes the underlying store (stats for benches).
func (l *Log) Media() *storage.LogStore { return l.media }
