package ablsn

import (
	"encoding/binary"
	"sort"

	"github.com/cidr09/unbundled/internal/base"
)

// Table maps each TC that has data on a page to that TC's abstract LSN
// (§6.1.1 "Multiple Abstract LSNs"). Pages with data from only a single TC
// carry only one entry; extra entries appear only on genuinely shared
// pages. The zero value is an empty table.
type Table struct {
	m map[base.TCID]*A
}

// Get returns the abstract LSN for tc, or nil if the TC has no data here.
func (t *Table) Get(tc base.TCID) *A {
	if t.m == nil {
		return nil
	}
	return t.m[tc]
}

// Ensure returns the abstract LSN for tc, creating an empty one if needed.
func (t *Table) Ensure(tc base.TCID) *A {
	if t.m == nil {
		t.m = make(map[base.TCID]*A, 1)
	}
	a := t.m[tc]
	if a == nil {
		a = &A{}
		t.m[tc] = a
	}
	return a
}

// Contains applies the idempotence test for one TC's operation.
func (t *Table) Contains(tc base.TCID, lsn base.LSN) bool {
	a := t.Get(tc)
	return a != nil && a.Contains(lsn)
}

// Advance applies a TC-supplied low-water mark to that TC's entry.
func (t *Table) Advance(tc base.TCID, lwm base.LSN) {
	if a := t.Get(tc); a != nil {
		a.Advance(lwm)
	}
}

// Drop removes tc's entry entirely (partial-failure reset when the disk
// version has no data for the failed TC).
func (t *Table) Drop(tc base.TCID) {
	if t.m != nil {
		delete(t.m, tc)
	}
}

// Set replaces tc's entry with a copy of a (nil drops the entry).
func (t *Table) Set(tc base.TCID, a *A) {
	if a == nil {
		t.Drop(tc)
		return
	}
	t.Ensure(tc).Reset(a)
}

// TCs returns the TCIDs present, sorted (deterministic iteration).
func (t *Table) TCs() []base.TCID {
	if len(t.m) == 0 {
		return nil
	}
	out := make([]base.TCID, 0, len(t.m))
	for tc := range t.m {
		out = append(out, tc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of TCs with entries.
func (t *Table) Len() int { return len(t.m) }

// Clone returns a deep copy.
func (t *Table) Clone() *Table {
	c := &Table{}
	if len(t.m) > 0 {
		c.m = make(map[base.TCID]*A, len(t.m))
		for tc, a := range t.m {
			c.m[tc] = a.Clone()
		}
	}
	return c
}

// MergeMax folds o into t per-TC (page consolidation, §5.2.2).
func (t *Table) MergeMax(o *Table) {
	if o == nil {
		return
	}
	for tc, a := range o.m {
		t.Ensure(tc).MergeMax(a)
	}
}

// MaxApplied returns the highest applied LSN for tc, or 0.
func (t *Table) MaxApplied(tc base.TCID) base.LSN {
	if a := t.Get(tc); a != nil {
		return a.MaxApplied()
	}
	return 0
}

// Append serializes the table deterministically (sorted by TCID).
func (t *Table) Append(buf []byte) []byte {
	tcs := t.TCs()
	buf = binary.AppendUvarint(buf, uint64(len(tcs)))
	for _, tc := range tcs {
		buf = binary.AppendUvarint(buf, uint64(tc))
		buf = t.m[tc].Append(buf)
	}
	return buf
}

// DecodeTable parses a table previously produced by Append.
func DecodeTable(buf []byte) (*Table, []byte, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 {
		return nil, nil, errCorrupt
	}
	buf = buf[w:]
	t := &Table{}
	if n > 0 {
		t.m = make(map[base.TCID]*A, n)
	}
	for i := uint64(0); i < n; i++ {
		u, w := binary.Uvarint(buf)
		if w <= 0 {
			return nil, nil, errCorrupt
		}
		buf = buf[w:]
		a, rest, err := Decode(buf)
		if err != nil {
			return nil, nil, err
		}
		t.m[base.TCID(u)] = a
		buf = rest
	}
	return t, buf, nil
}

// EncodedSize returns the serialized size in bytes.
func (t *Table) EncodedSize() int { return len(t.Append(nil)) }

// InCountTotal sums |{LSNin}| across TCs (page-sync strategy 3 uses this
// to decide when the set is "reduced to a manageable size", §5.1.2).
func (t *Table) InCountTotal() int {
	n := 0
	for _, a := range t.m {
		n += len(a.In)
	}
	return n
}
