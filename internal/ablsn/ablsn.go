// Package ablsn implements abstract page LSNs (§5.1.2 of the paper).
//
// Because the TC assigns an operation's LSN before the order in which
// operations reach a page is determined, a later operation with a higher
// LSN can reach a page before an earlier one with a lower LSN. The
// conventional test "operation LSN <= page LSN" then wrongly classifies the
// earlier operation as applied. The abstract LSN
//
//	abLSN = <LSNlw, {LSNin}>
//
// captures exactly which operations' results are included in a page's
// state: every operation with LSN <= LSNlw, plus the explicitly listed set
// {LSNin} of higher LSNs. The generalized test becomes
//
//	LSN <= abLSN  iff  LSN <= LSNlw  or  LSN in {LSNin}
//
// LSNlw may only be advanced to a low-water mark supplied by the TC (the
// TC has received replies for all operations up to the mark, so there are
// no gaps among the lower LSNs reflected in the page).
package ablsn

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"github.com/cidr09/unbundled/internal/base"
)

// A is one abstract LSN, tracking the operations of a single TC whose
// effects are included in a page. The zero value is empty (nothing
// applied). A is not safe for concurrent use; pages guard it with latches.
type A struct {
	// Low is LSNlw: every operation with LSN <= Low is included.
	Low base.LSN
	// In is {LSNin}: the sorted set of LSNs > Low also included.
	In []base.LSN
	// Max is the highest LSN ever actually applied to the page through this
	// abstract LSN. Unlike Low it is never advanced by low-water marks, so
	// it stays exact. Two protocols need it: the causality flush gate (a
	// page may be made stable only when the TC log is stable through Max)
	// and the partial-failure reset test (a cached page must be reset iff
	// Max exceeds the failed TC's stable log, §5.3.2).
	//
	// Contract: callers must only Advance to min(LWM, EOSL) for the owning
	// TC. That keeps Low itself free of claims about operations that could
	// still be lost in a TC crash, so stable pages never assert
	// idempotence for LSNs beyond the TC's stable log — essential because
	// a restarted TC reuses the LSN space above its stable log end.
	Max base.LSN
}

// Contains reports whether the operation with the given LSN has its results
// captured in the page state: the generalized <= test of §5.1.2.
func (a *A) Contains(lsn base.LSN) bool {
	if lsn <= a.Low {
		return true
	}
	i := sort.Search(len(a.In), func(i int) bool { return a.In[i] >= lsn })
	return i < len(a.In) && a.In[i] == lsn
}

// Add records that the operation with the given LSN has been applied to the
// page. Adding an LSN already contained is a no-op (idempotent replays are
// filtered by Contains before application, but Add tolerates it).
func (a *A) Add(lsn base.LSN) {
	if lsn > a.Max {
		a.Max = lsn
	}
	if lsn <= a.Low {
		return
	}
	i := sort.Search(len(a.In), func(i int) bool { return a.In[i] >= lsn })
	if i < len(a.In) && a.In[i] == lsn {
		return
	}
	a.In = append(a.In, 0)
	copy(a.In[i+1:], a.In[i:])
	a.In[i] = lsn
}

// Advance raises Low to lwm (if higher) and discards every element of
// {LSNin} that is <= the new Low (§5.1.2 "Establishing LSNlw"). Only a
// TC-supplied low-water mark may be used: the DC cannot determine by
// itself which lower-LSN operations are still unapplied.
func (a *A) Advance(lwm base.LSN) {
	if lwm <= a.Low {
		return
	}
	a.Low = lwm
	i := sort.Search(len(a.In), func(i int) bool { return a.In[i] > lwm })
	if i > 0 {
		a.In = append(a.In[:0], a.In[i:]...)
	}
	if len(a.In) == 0 {
		a.In = nil
	}
}

// MaxApplied returns the highest LSN actually applied to the page. It can
// be smaller than Low: a low-water mark covers operations applied anywhere,
// not necessarily on this page.
func (a *A) MaxApplied() base.LSN { return a.Max }

// InCount returns |{LSNin}|, the number of explicitly tracked LSNs.
func (a *A) InCount() int { return len(a.In) }

// Clone returns a deep copy.
func (a *A) Clone() *A {
	c := &A{Low: a.Low, Max: a.Max}
	if len(a.In) > 0 {
		c.In = append([]base.LSN(nil), a.In...)
	}
	return c
}

// MergeMax folds b into a taking, per §5.2.2 page consolidation, the
// maximum: the resulting abstract LSN must claim an operation applied iff
// it was applied to either input page. Low becomes min of the Lows would be
// wrong (operations above the smaller Low but below the larger are only
// known applied on one side); instead the union keeps the larger Low only
// if every LSN it swallows is legitimate. Consolidation in the paper uses
// "an abLSN for the consolidated page that is the maximum of abLSNs of the
// two pages"; with a shared per-TC low-water mark both Lows came from the
// same monotone LWM stream, so max(Low) is safe, and the In sets union.
func (a *A) MergeMax(b *A) {
	if b == nil {
		return
	}
	if b.Low > a.Low {
		a.Low = b.Low
	}
	for _, l := range b.In {
		a.Add(l)
	}
	if b.Max > a.Max {
		a.Max = b.Max
	}
	a.Advance(a.Low) // re-prune In against the merged Low
}

// Reset replaces a's contents with b (used by partial-failure page reset);
// b may be nil meaning empty.
func (a *A) Reset(b *A) {
	if b == nil {
		*a = A{}
		return
	}
	a.Low, a.Max = b.Low, b.Max
	a.In = append(a.In[:0:0], b.In...)
}

func (a *A) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "<%d,{", a.Low)
	for i, l := range a.In {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", l)
	}
	fmt.Fprintf(&sb, "},max=%d>", a.Max)
	return sb.String()
}

// Append serializes a in a compact varint format.
func (a *A) Append(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(a.Low))
	buf = binary.AppendUvarint(buf, uint64(a.Max))
	buf = binary.AppendUvarint(buf, uint64(len(a.In)))
	prev := base.LSN(0)
	for _, l := range a.In {
		buf = binary.AppendUvarint(buf, uint64(l-prev)) // delta-encode
		prev = l
	}
	return buf
}

// Decode parses an abstract LSN previously produced by Append and returns
// the remaining bytes.
func Decode(buf []byte) (*A, []byte, error) {
	var a A
	u, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, nil, errCorrupt
	}
	a.Low, buf = base.LSN(u), buf[n:]
	u, n = binary.Uvarint(buf)
	if n <= 0 {
		return nil, nil, errCorrupt
	}
	a.Max, buf = base.LSN(u), buf[n:]
	u, n = binary.Uvarint(buf)
	if n <= 0 {
		return nil, nil, errCorrupt
	}
	buf = buf[n:]
	if u > uint64(len(buf)) {
		return nil, nil, errCorrupt
	}
	if u > 0 {
		a.In = make([]base.LSN, u)
		prev := base.LSN(0)
		for i := range a.In {
			d, n := binary.Uvarint(buf)
			if n <= 0 {
				return nil, nil, errCorrupt
			}
			prev += base.LSN(d)
			a.In[i], buf = prev, buf[n:]
		}
	}
	return &a, buf, nil
}

var errCorrupt = fmt.Errorf("ablsn: corrupt encoding")

// EncodedSize returns the serialized size in bytes; experiment E2 compares
// this against the hypothetical cost of per-record LSNs.
func (a *A) EncodedSize() int { return len(a.Append(nil)) }
