package ablsn

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"github.com/cidr09/unbundled/internal/base"
)

func TestContainsBasic(t *testing.T) {
	var a A
	if a.Contains(1) {
		t.Fatal("empty abLSN must contain nothing > 0")
	}
	if !a.Contains(0) {
		t.Fatal("LSN 0 is vacuously contained (<= Low=0)")
	}
	a.Add(5)
	a.Add(3)
	a.Add(9)
	for _, l := range []base.LSN{3, 5, 9} {
		if !a.Contains(l) {
			t.Fatalf("missing %d", l)
		}
	}
	for _, l := range []base.LSN{1, 2, 4, 6, 7, 8, 10} {
		if a.Contains(l) {
			t.Fatalf("wrongly contains %d", l)
		}
	}
	if a.MaxApplied() != 9 {
		t.Fatalf("max = %d want 9", a.MaxApplied())
	}
}

func TestOutOfOrderScenario(t *testing.T) {
	// The §5.1.1 failure case: Oj (LSN 7) executes before Oi (LSN 3).
	// With a plain page LSN the page would claim to contain Oi; the
	// abstract LSN must not.
	var a A
	a.Add(7)
	if a.Contains(3) {
		t.Fatal("traditional-test bug reproduced: abLSN must not claim LSN 3")
	}
	a.Add(3)
	if !a.Contains(3) || !a.Contains(7) {
		t.Fatal("both operations must now be contained")
	}
}

func TestAdvancePrunes(t *testing.T) {
	var a A
	for _, l := range []base.LSN{2, 4, 6, 8, 10} {
		a.Add(l)
	}
	a.Advance(6)
	if a.Low != 6 {
		t.Fatalf("Low = %d want 6", a.Low)
	}
	if got := a.InCount(); got != 2 {
		t.Fatalf("InCount = %d want 2 (8,10)", got)
	}
	for l := base.LSN(1); l <= 6; l++ {
		if !a.Contains(l) {
			t.Fatalf("after advance, %d must be contained", l)
		}
	}
	if !a.Contains(8) || !a.Contains(10) || a.Contains(9) {
		t.Fatal("In-set membership wrong after advance")
	}
	// Advance must be monotone: a lower lwm is ignored.
	a.Advance(3)
	if a.Low != 6 {
		t.Fatal("Advance went backwards")
	}
	// Max survives pruning and is not dragged up by Advance: it reflects
	// only operations actually applied to this page.
	a.Advance(100)
	if a.InCount() != 0 || a.MaxApplied() != 10 {
		t.Fatalf("after full prune: in=%d max=%d", a.InCount(), a.MaxApplied())
	}
}

func TestAddIdempotent(t *testing.T) {
	var a A
	a.Add(5)
	a.Add(5)
	a.Add(5)
	if a.InCount() != 1 {
		t.Fatalf("duplicate Add grew the set: %d", a.InCount())
	}
}

func TestCloneIndependence(t *testing.T) {
	var a A
	a.Add(3)
	c := a.Clone()
	c.Add(4)
	if a.Contains(4) {
		t.Fatal("clone aliases original")
	}
}

func TestMergeMax(t *testing.T) {
	// Consolidation: left has <4,{6}>, right has <2,{3,9}>.
	l := &A{Low: 4, In: []base.LSN{6}, Max: 6}
	r := &A{Low: 2, In: []base.LSN{3, 9}, Max: 9}
	l.MergeMax(r)
	if l.Low != 4 {
		t.Fatalf("Low = %d want 4", l.Low)
	}
	// 3 <= merged Low so it is pruned but still contained; 6 and 9 in set.
	for _, want := range []base.LSN{1, 2, 3, 4, 6, 9} {
		if !l.Contains(want) {
			t.Fatalf("merged must contain %d: %v", want, l)
		}
	}
	if l.Contains(5) || l.Contains(7) {
		t.Fatalf("merged contains phantom: %v", l)
	}
	if l.MaxApplied() != 9 {
		t.Fatalf("max = %d want 9", l.MaxApplied())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []*A{
		{},
		{Low: 7, Max: 7},
		{Low: 3, In: []base.LSN{5, 6, 100}, Max: 100},
		{Low: 1 << 50, In: []base.LSN{1<<50 + 3}, Max: 1<<50 + 3},
	}
	for _, a := range cases {
		buf := a.Append(nil)
		got, rest, err := Decode(buf)
		if err != nil || len(rest) != 0 {
			t.Fatalf("decode(%v): %v rest=%d", a, err, len(rest))
		}
		if got.Low != a.Low || got.Max != a.Max || !reflect.DeepEqual(normIn(got.In), normIn(a.In)) {
			t.Fatalf("roundtrip: in=%v out=%v", a, got)
		}
	}
}

func normIn(in []base.LSN) []base.LSN {
	if len(in) == 0 {
		return nil
	}
	return in
}

func TestDecodeCorrupt(t *testing.T) {
	a := &A{Low: 3, In: []base.LSN{5, 9}, Max: 9}
	buf := a.Append(nil)
	for i := 0; i < len(buf); i++ {
		if _, _, err := Decode(buf[:i]); err == nil {
			t.Fatalf("truncation at %d undetected", i)
		}
	}
}

// Property: Contains is exactly membership of applied LSNs, under any
// interleaving of Add and Advance with monotone low-water marks that only
// cover fully-applied prefixes (the TC guarantee).
func TestQuickContainsMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		var a A
		applied := map[base.LSN]bool{}
		nextLSN := base.LSN(1)
		issued := []base.LSN{}
		lwm := base.LSN(0)
		for step := 0; step < 200; step++ {
			switch rnd.Intn(3) {
			case 0: // issue + apply an op (possibly out of order application)
				issued = append(issued, nextLSN)
				nextLSN++
				// apply a random issued-but-unapplied op
				perm := rnd.Perm(len(issued))
				for _, i := range perm {
					if !applied[issued[i]] {
						applied[issued[i]] = true
						a.Add(issued[i])
						break
					}
				}
			case 1: // advance LWM to the longest applied prefix
				for applied[lwm+1] {
					lwm++
				}
				a.Advance(lwm)
			case 2: // check a random LSN
				l := base.LSN(rnd.Intn(int(nextLSN) + 2))
				if l == 0 {
					continue
				}
				if a.Contains(l) != applied[l] {
					return false
				}
			}
		}
		// final full check
		for l := base.LSN(1); l < nextLSN; l++ {
			if a.Contains(l) != applied[l] {
				return false
			}
		}
		// In must stay sorted and above Low
		if !sort.SliceIsSorted(a.In, func(i, j int) bool { return a.In[i] < a.In[j] }) {
			return false
		}
		for _, l := range a.In {
			if l <= a.Low {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEncodeRoundTrip(t *testing.T) {
	f := func(low uint32, raw []uint16) bool {
		a := &A{Low: base.LSN(low)}
		for _, r := range raw {
			l := base.LSN(low) + base.LSN(r) + 1
			a.Add(l)
		}
		buf := a.Append(nil)
		got, rest, err := Decode(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		if got.Low != a.Low || got.Max != a.Max || len(got.In) != len(a.In) {
			return false
		}
		for i := range a.In {
			if a.In[i] != got.In[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTableBasics(t *testing.T) {
	var tab Table
	if tab.Get(1) != nil || tab.Len() != 0 {
		t.Fatal("zero table must be empty")
	}
	tab.Ensure(1).Add(5)
	tab.Ensure(2).Add(8)
	if !tab.Contains(1, 5) || tab.Contains(1, 8) || !tab.Contains(2, 8) {
		t.Fatal("per-TC isolation broken")
	}
	if got := tab.TCs(); !reflect.DeepEqual(got, []base.TCID{1, 2}) {
		t.Fatalf("TCs = %v", got)
	}
	tab.Advance(1, 5)
	if tab.Get(1).InCount() != 0 {
		t.Fatal("advance did not prune")
	}
	if tab.MaxApplied(1) != 5 || tab.MaxApplied(3) != 0 {
		t.Fatal("MaxApplied wrong")
	}
	tab.Drop(2)
	if tab.Get(2) != nil {
		t.Fatal("drop failed")
	}
}

func TestTableEncodeRoundTrip(t *testing.T) {
	var tab Table
	tab.Ensure(3).Add(7)
	tab.Ensure(1).Add(2)
	tab.Ensure(1).Advance(2)
	buf := tab.Append(nil)
	got, rest, err := DecodeTable(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v", err)
	}
	if got.Len() != 2 || !got.Contains(3, 7) || !got.Contains(1, 2) || got.Contains(1, 3) {
		t.Fatalf("roundtrip table wrong: %v", got.TCs())
	}
	// empty table
	var empty Table
	got2, _, err := DecodeTable(empty.Append(nil))
	if err != nil || got2.Len() != 0 {
		t.Fatal("empty table roundtrip failed")
	}
}

func TestTableClone(t *testing.T) {
	var tab Table
	tab.Ensure(1).Add(4)
	c := tab.Clone()
	c.Ensure(1).Add(9)
	if tab.Contains(1, 9) {
		t.Fatal("clone aliases original")
	}
}

func TestTableMergeMax(t *testing.T) {
	var a, b Table
	a.Ensure(1).Add(4)
	b.Ensure(1).Add(6)
	b.Ensure(2).Add(3)
	a.MergeMax(&b)
	if !a.Contains(1, 4) || !a.Contains(1, 6) || !a.Contains(2, 3) {
		t.Fatal("merge lost entries")
	}
}

func BenchmarkContains(b *testing.B) {
	var a A
	for i := 0; i < 64; i++ {
		a.Add(base.LSN(i*3 + 1))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Contains(base.LSN(i % 200))
	}
}

func BenchmarkAddAdvance(b *testing.B) {
	var a A
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Add(base.LSN(i + 1))
		if i%32 == 31 {
			a.Advance(base.LSN(i - 16))
		}
	}
}
