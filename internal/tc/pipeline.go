package tc

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/cidr09/unbundled/internal/base"
)

// Pipelined operation shipping. Logged write operations do not need their
// reply before the transaction continues: the X lock freezes the key, the
// pre-check (or versioned-upsert semantics) guarantees the operation
// succeeds at the DC, and the op record is already in the TC-log, so the
// resend/redo contract delivers it even across failures. The TC therefore
// appends the record, posts the op into the per-DC pipeline, and returns;
// the transaction only waits at its commit (or abort/scan) barrier.
//
// Each DC has one shipping goroutine with exactly one batch in flight.
// That discipline is what keeps the logical operation stream ordered per
// DC: everything queued while the previous batch was on the wire is
// coalesced into the next base.Service.PerformBatch call, which the DC
// executes in arrival order. Same-key operations of one transaction always
// route to the same DC, so they can never reorder; cross-transaction
// conflicts are excluded by strict 2PL plus the ack barrier (locks are
// only released once every shipped operation is acknowledged).

// ErrTCStopped is recorded against outstanding pipelined operations when
// the TC is closed or crashes before their acknowledgements arrive. The
// operations themselves are in the TC-log: recovery re-delivers or undoes
// them, so the error reports an interrupted session, not lost data. It
// folds into the taxonomy as a component-unavailable failure.
var ErrTCStopped = fmt.Errorf("tc: stopped with pipelined operations outstanding: %w", base.ErrUnavailable)

// pending tracks one transaction's outstanding pipelined operations: a
// count plus the first failure. Commit and Abort (and scans, for
// read-your-writes) barrier on it before relying on DC state. The barrier
// signal is a channel so waiters can honor context cancellation.
type pending struct {
	mu          sync.Mutex
	outstanding int
	err         error
	// zero is non-nil only while a waiter needs the outstanding-reached-
	// zero signal; done closes and clears it.
	zero chan struct{}
}

func (p *pending) add() {
	p.mu.Lock()
	p.outstanding++
	p.mu.Unlock()
}

// done retires one operation, recording the first failure.
func (p *pending) done(err error) {
	p.mu.Lock()
	p.outstanding--
	if err != nil && p.err == nil {
		p.err = err
	}
	if p.outstanding == 0 && p.zero != nil {
		close(p.zero)
		p.zero = nil
	}
	p.mu.Unlock()
}

// wait blocks until every posted operation has been retired — returning
// the first failure observed (sticky across calls) — or until ctx is done,
// returning the ErrCancelled-wrapped ctx error. An abandoned wait leaves
// the barrier intact: outstanding operations still retire normally.
func (p *pending) wait(ctx context.Context) error {
	for {
		p.mu.Lock()
		if p.outstanding == 0 {
			err := p.err
			p.mu.Unlock()
			return err
		}
		if p.zero == nil {
			p.zero = make(chan struct{})
		}
		ch := p.zero
		p.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return base.CancelErr(ctx)
		}
	}
}

// pipeItem is one queued operation plus its transaction's barrier. The
// incarnation that posted it is stamped on the op itself (op.Epoch, set
// before the op's LSN was assigned), which is the same fence the DC
// enforces — sync and pipelined paths share the one mechanism.
type pipeItem struct {
	op   *base.Op
	pend *pending
}

// pipeline is the per-DC shipping queue and its worker.
type pipeline struct {
	t *TC
	h *dcHandle

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []pipeItem
	closed bool
}

func newPipeline(t *TC, h *dcHandle) *pipeline {
	p := &pipeline{t: t, h: h}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// post enqueues op for shipping. The caller has already added the op to
// its transaction's pending barrier.
func (p *pipeline) post(it pipeItem) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		it.pend.done(ErrTCStopped)
		return
	}
	p.queue = append(p.queue, it)
	p.cond.Signal()
	p.mu.Unlock()
}

// close wakes the worker for shutdown. Queued, unshipped operations fail
// with ErrTCStopped so barrier waiters unblock.
func (p *pipeline) close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// drop discards the queue (TC crash): the posting incarnation is gone and
// its transactions will never commit. In-flight batches are handled by the
// generation check in ship.
func (p *pipeline) drop() {
	p.mu.Lock()
	q := p.queue
	p.queue = nil
	p.mu.Unlock()
	for _, it := range q {
		it.pend.done(ErrTCStopped)
	}
}

func (p *pipeline) run() {
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			q := p.queue
			p.queue = nil
			p.mu.Unlock()
			for _, it := range q {
				it.pend.done(ErrTCStopped)
			}
			return
		}
		batch := p.queue
		if len(batch) > p.t.cfg.MaxBatch {
			batch = batch[:p.t.cfg.MaxBatch]
			p.queue = append([]pipeItem(nil), p.queue[p.t.cfg.MaxBatch:]...)
		} else {
			p.queue = nil
		}
		p.mu.Unlock()
		p.ship(batch)
	}
}

// ship sends one batch and retires its items. CodeUnavailable (the DC is
// down or restarting) triggers a paced resend of the whole batch — the
// §4.2 resend contract; per-operation idempotence at the DC absorbs
// re-execution of operations that did land.
func (p *pipeline) ship(items []pipeItem) {
	ops := make([]*base.Op, 0, len(items))
	backoff := 200 * time.Microsecond
	for {
		// Deliver only items posted by the live incarnation: a batch parked
		// in this retry loop across a TC crash+restart must not reach the DC
		// — its records vanished with the unforced log tail, so executing it
		// would apply writes no undo covers and record reused LSNs in the
		// abstract-LSN tables (poisoning the restarted TC's idempotence
		// checks). A batch already on the wire when the crash hit is beyond
		// this check's reach; the DC-side epoch fence installed by
		// BeginRestart refuses it there (CodeStaleEpoch), closing the window
		// end to end. Both checks compare the same stamp: op.Epoch.
		epoch := p.t.Epoch()
		live := 0
		for _, it := range items {
			if it.op.Epoch != epoch {
				it.pend.done(ErrTCStopped)
				continue
			}
			items[live] = it
			live++
		}
		items = items[:live]
		if len(items) == 0 {
			return
		}
		ops = ops[:0]
		for _, it := range items {
			ops = append(ops, it.op)
		}
		// The pipeline ships on behalf of many transactions and the ops are
		// logged, so delivery is never cancelled by any one caller's
		// context; Close/crash are the only ways out of this loop.
		p.h.waitReady(context.Background())
		// Singleton batches are the service's concern: the wire stub
		// already degrades them to a plain Perform message.
		results := p.h.svc.PerformBatch(context.Background(), ops)
		p.t.opsSent.Add(uint64(len(ops)))
		unavailable := false
		for _, r := range results {
			if r == nil || r.Code == base.CodeUnavailable {
				unavailable = true
				break
			}
		}
		if !unavailable {
			p.complete(items, results)
			return
		}
		// A closed wire client answers every call with CodeUnavailable
		// forever; retrying would wedge commit barriers that its Close
		// contract ("fail outstanding calls") promises to unblock. Probe
		// for it so out-of-order shutdowns (stubs closed before the TC)
		// still terminate; a plain recovering DC keeps the resend loop.
		if c, ok := p.h.svc.(interface{ Closed() bool }); ok && c.Closed() {
			for _, it := range items {
				it.pend.done(ErrTCStopped)
			}
			return
		}
		select {
		case <-p.t.stopCh:
			for _, it := range items {
				it.pend.done(ErrTCStopped)
			}
			return
		case <-time.After(backoff):
		}
		if backoff < 50*time.Millisecond {
			backoff *= 2
		}
	}
}

// complete feeds the ack tracker and retires the items. Items posted by a
// prior TC incarnation (the TC crashed while the batch was on the wire)
// must not touch the reset ack tracker: their LSN space is being reused.
// A stale-epoch nack from the DC means the op never executed — the fence
// fired mid-flight — so its LSN must not complete either; it surfaces as a
// permanent barrier failure.
func (p *pipeline) complete(items []pipeItem, results []*base.Result) {
	epoch := p.t.Epoch()
	for i, it := range items {
		res := results[i]
		var err error
		switch {
		case it.op.Epoch != epoch:
			err = ErrTCStopped
		case res.Code == base.CodeStaleEpoch:
			err = fmt.Errorf("tc: pipelined op fenced at DC: %v: %w", it.op, base.ErrStaleEpoch)
		default:
			p.t.acks.Complete(it.op.LSN)
			if res.Code != base.CodeOK {
				// Cannot happen given the pre-check + X-lock invariant;
				// surface loudly at the barrier if it is ever broken.
				err = fmt.Errorf("tc: pipelined op failed at DC: %v -> %v", it.op, res.Code)
			}
		}
		it.pend.done(err)
	}
}

// postOp hands op to the pipeline of the DC the caller resolved with
// dcIndex (before the op record was appended, so only routable operations
// consume logged LSNs). op.Epoch must have been stamped *before* the op's
// LSN was assigned: a crash+restart racing the post mints the new epoch
// before the reused LSN space is handed out, so an op whose LSN belongs
// to the dead incarnation's log can never carry the live epoch and feed
// its ack into the reset tracker under a reused LSN (nor pass the DC's
// fence).
func (t *TC) postOp(x *Txn, op *base.Op, dcIdx int) {
	x.pend.add()
	t.pipes[dcIdx].post(pipeItem{op: op, pend: &x.pend})
}

// pipelined reports whether writes ship asynchronously.
func (t *TC) pipelined() bool { return t.pipes != nil }
