package tc

import (
	"encoding/binary"
	"fmt"

	"github.com/cidr09/unbundled/internal/base"
)

// Op-record payload: the logical operation (LSN zeroed; the record's own
// LSN is authoritative) plus the undo information captured before the send
// (§4.1.1(3): "Undo logging in the TC will enable rollback … by providing
// information TC can use to submit inverse logical operations").
func encodeOpPayload(op *base.Op, prior []byte, priorFound bool) []byte {
	saved, savedEpoch := op.LSN, op.Epoch
	// LSN and epoch are zeroed in the payload: the record's own LSN is
	// authoritative, and redo stamps the *restarted* incarnation's epoch —
	// a logged (dead) epoch would be refused by the DC fence.
	op.LSN, op.Epoch = 0, 0
	buf := base.AppendOp(nil, op)
	op.LSN, op.Epoch = saved, savedEpoch
	buf = binary.AppendUvarint(buf, uint64(len(prior)))
	buf = append(buf, prior...)
	if priorFound {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

func decodeOpPayload(payload []byte) (op *base.Op, prior []byte, priorFound bool, err error) {
	op, rest, err := base.DecodeOp(payload)
	if err != nil {
		return nil, nil, false, err
	}
	n, w := binary.Uvarint(rest)
	if w <= 0 || n > uint64(len(rest)-w) {
		return nil, nil, false, fmt.Errorf("tc: corrupt op payload")
	}
	rest = rest[w:]
	if n > 0 {
		prior = append([]byte(nil), rest[:n]...)
	}
	rest = rest[n:]
	if len(rest) < 1 {
		return nil, nil, false, fmt.Errorf("tc: corrupt op payload")
	}
	return op, prior, rest[0] != 0, nil
}

// Commit-record payload: the versioned write set plus the commit
// timestamp, so restart can re-issue commit-versions operations for
// winners whose finalize messages were lost with the crashed TC (§6.2.2's
// guarantee that before versions are eventually removed) at the same
// visibility point, and so analysis can re-seed the timestamp allocator
// above every durable commit.
func encodeCommit(keys []tableKey, ts base.TS) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(keys)))
	for _, tk := range keys {
		buf = binary.AppendUvarint(buf, uint64(len(tk.table)))
		buf = append(buf, tk.table...)
		buf = binary.AppendUvarint(buf, uint64(len(tk.key)))
		buf = append(buf, tk.key...)
	}
	if ts != 0 {
		buf = binary.AppendUvarint(buf, uint64(ts))
	}
	return buf
}

func decodeCommit(payload []byte) ([]tableKey, base.TS, error) {
	n, w := binary.Uvarint(payload)
	if w <= 0 {
		return nil, 0, fmt.Errorf("tc: corrupt commit payload")
	}
	payload = payload[w:]
	out := make([]tableKey, 0, n)
	readStr := func() (string, bool) {
		m, w := binary.Uvarint(payload)
		if w <= 0 || m > uint64(len(payload)-w) {
			return "", false
		}
		s := string(payload[w : w+int(m)])
		payload = payload[w+int(m):]
		return s, true
	}
	for i := uint64(0); i < n; i++ {
		table, ok := readStr()
		if !ok {
			return nil, 0, fmt.Errorf("tc: corrupt commit payload")
		}
		key, ok := readStr()
		if !ok {
			return nil, 0, fmt.Errorf("tc: corrupt commit payload")
		}
		out = append(out, tableKey{table, key})
	}
	// Pre-timestamp records end here; they decode with timestamp zero.
	if len(payload) == 0 {
		return out, 0, nil
	}
	u, w := binary.Uvarint(payload)
	if w <= 0 {
		return nil, 0, fmt.Errorf("tc: corrupt commit payload")
	}
	return out, base.TS(u), nil
}

// Checkpoint-record payload: the redo scan start point plus the current
// incarnation epoch. Carrying the epoch here guarantees the stable log
// always holds the newest epoch even after truncation discards the
// recEpoch record (a checkpoint appends its record before truncating).
func encodeCheckpoint(rssp base.LSN, epoch base.Epoch) []byte {
	buf := binary.AppendUvarint(nil, uint64(rssp))
	return binary.AppendUvarint(buf, uint64(epoch))
}

func decodeCheckpoint(payload []byte) (base.LSN, base.Epoch, error) {
	u, w := binary.Uvarint(payload)
	if w <= 0 {
		return 0, 0, fmt.Errorf("tc: corrupt checkpoint payload")
	}
	payload = payload[w:]
	// Pre-epoch records end here; they decode with epoch zero.
	if len(payload) == 0 {
		return base.LSN(u), 0, nil
	}
	e, w := binary.Uvarint(payload)
	if w <= 0 {
		return 0, 0, fmt.Errorf("tc: corrupt checkpoint payload")
	}
	return base.LSN(u), base.Epoch(e), nil
}

// Epoch-record payload: the minted incarnation epoch.
func encodeEpoch(epoch base.Epoch) []byte {
	return binary.AppendUvarint(nil, uint64(epoch))
}

func decodeEpoch(payload []byte) (base.Epoch, error) {
	u, w := binary.Uvarint(payload)
	if w <= 0 {
		return 0, fmt.Errorf("tc: corrupt epoch payload")
	}
	return base.Epoch(u), nil
}
