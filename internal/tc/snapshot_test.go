package tc

import (
	"context"
	"testing"
	"time"

	"github.com/cidr09/unbundled/internal/clock"
)

// commitVersioned commits table t key "k" = val in one versioned txn.
func commitVersioned(t *testing.T, tcx *TC, key, val string) {
	t.Helper()
	if err := tcx.RunTxnOnce(context.Background(), TxnOptions{Versioned: true}, func(x *Txn) error {
		return x.Upsert("t", key, []byte(val))
	}); err != nil {
		t.Fatal(err)
	}
}

// snapRead begins a snapshot transaction shaped by opts, reads one key,
// and commits.
func snapRead(t *testing.T, tcx *TC, opts TxnOptions, key string) (string, bool) {
	t.Helper()
	opts.ReadOnly = true
	x := tcx.Begin(context.Background(), opts)
	v, ok, err := x.Read("t", key)
	if err != nil {
		t.Fatalf("snapshot read: %v", err)
	}
	if err := x.Commit(); err != nil {
		t.Fatal(err)
	}
	return string(v), ok
}

// TestSnapshotReadsCommittedPrefix is the headline contract: a snapshot
// read sees exactly the committed state at its timestamp, does not block
// on a concurrent writer's X lock, and involves neither the lock manager
// nor a TC round trip.
func TestSnapshotReadsCommittedPrefix(t *testing.T) {
	fake := clock.NewFake(1000, 0)
	tcx, d := newPair(t, Config{Clock: fake})
	commitVersioned(t, tcx, "k", "v1")

	// A concurrent writer updates the key but has not committed: it holds
	// the X lock and the DC record carries an uncommitted after version.
	w := tcx.Begin(context.Background(), TxnOptions{Versioned: true})
	if err := w.Update("t", "k", []byte("v2")); err != nil {
		t.Fatal(err)
	}

	locks0 := tcx.Locks().Stats().Acquired
	ops0 := tcx.Stats().OpsSent
	if v, ok := snapRead(t, tcx, TxnOptions{}, "k"); !ok || v != "v1" {
		t.Fatalf("snapshot under writer lock: %q %v, want v1", v, ok)
	}
	if got := tcx.Locks().Stats().Acquired - locks0; got != 0 {
		t.Fatalf("snapshot read acquired %d locks, want 0", got)
	}
	if got := tcx.Stats().OpsSent - ops0; got != 0 {
		t.Fatalf("snapshot read cost %d TC round trips, want 0", got)
	}
	if n := tcx.Stats().Snapshots; n != 1 {
		t.Fatalf("snapshot txn count: %d", n)
	}

	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	// A fresh snapshot begun after the commit completed must see it, even
	// though the clock has not ticked (the snapshot clamps to lastCommit).
	if v, ok := snapRead(t, tcx, TxnOptions{}, "k"); !ok || v != "v2" {
		t.Fatalf("snapshot after commit: %q %v, want v2", v, ok)
	}
	if got := d.Stats().SnapshotReads; got < 2 {
		t.Fatalf("DC snapshot-read count: %d, want >= 2", got)
	}
}

// TestSnapshotUncertaintyWait: a fresh snapshot waits out the clock's
// uncertainty window before its first read can run, and a bounded
// snapshot does not wait at all.
func TestSnapshotUncertaintyWait(t *testing.T) {
	fake := clock.NewFake(1000, 500*time.Nanosecond)
	tcx, _ := newPair(t, Config{Clock: fake})

	begun := make(chan *Txn)
	go func() {
		begun <- tcx.Begin(context.Background(), TxnOptions{ReadOnly: true})
	}()
	select {
	case <-begun:
		t.Fatal("fresh snapshot Begin returned inside the uncertainty window")
	case <-time.After(20 * time.Millisecond):
	}
	// snap = 1000+500; the wait needs Now().ts > snap+unc = 2000.
	fake.Set(2001)
	x := <-begun
	if x.SnapshotTS() != 1500 {
		t.Fatalf("snapshot TS: %d, want 1500", x.SnapshotTS())
	}
	_ = x.Commit()

	y := tcx.Begin(context.Background(), TxnOptions{ReadOnly: true,
		Snapshot: SnapshotBounded, Staleness: 100 * time.Nanosecond})
	if y.SnapshotTS() != 2001-100 {
		t.Fatalf("bounded snapshot TS: %d, want %d", y.SnapshotTS(), 2001-100)
	}
	_ = y.Commit()
}

// TestSnapshotBoundedStaleness: bounded snapshots travel back in time
// through the version history, clamped to the retention window.
func TestSnapshotBoundedStaleness(t *testing.T) {
	fake := clock.NewFake(1000, 0)
	tcx, _ := newPair(t, Config{Clock: fake, SnapshotRetention: 2 * time.Microsecond})
	commitVersioned(t, tcx, "k", "v1") // commit TS just above 1000
	fake.Set(2000)
	commitVersioned(t, tcx, "k", "v2") // commit TS at/just above 2000
	fake.Set(3000)

	// 900ns back => reads at 2100: after v2.
	if v, ok := snapRead(t, tcx, TxnOptions{Snapshot: SnapshotBounded,
		Staleness: 900 * time.Nanosecond}, "k"); !ok || v != "v2" {
		t.Fatalf("900ns-stale read: %q %v, want v2", v, ok)
	}
	// 1500ns back => reads at 1500: between the commits, sees v1.
	if v, ok := snapRead(t, tcx, TxnOptions{Snapshot: SnapshotBounded,
		Staleness: 1500 * time.Nanosecond}, "k"); !ok || v != "v1" {
		t.Fatalf("1500ns-stale read: %q %v, want v1", v, ok)
	}
	// Staleness beyond the retention window clamps to it (2µs => 1000).
	if x := tcx.Begin(context.Background(), TxnOptions{ReadOnly: true,
		Snapshot: SnapshotBounded, Staleness: time.Hour}); x.SnapshotTS() != 1000 {
		t.Fatalf("clamped snapshot TS: %d, want 1000", x.SnapshotTS())
	} else {
		_ = x.Commit()
	}
	// Fresh sees the newest state.
	if v, ok := snapRead(t, tcx, TxnOptions{}, "k"); !ok || v != "v2" {
		t.Fatalf("fresh read: %q %v, want v2", v, ok)
	}
}

// TestSnapshotCommitTSRecovery: commit timestamps survive a TC crash —
// restart re-finalizes winners at their logged timestamps and never
// assigns a new commit timestamp at or below a durable one.
func TestSnapshotCommitTSRecovery(t *testing.T) {
	fake := clock.NewFake(1000, 0)
	tcx, _ := newPair(t, Config{Clock: fake})
	commitVersioned(t, tcx, "k", "v1")
	tcx.Crash()
	if err := tcx.Recover(); err != nil {
		t.Fatal(err)
	}
	commitVersioned(t, tcx, "k", "v2")
	if v, ok := snapRead(t, tcx, TxnOptions{}, "k"); !ok || v != "v2" {
		t.Fatalf("fresh read after recovery: %q %v, want v2", v, ok)
	}
	// Once the clock passes the allocator, bounded now-reads see v2 too:
	// recovery preserved the timestamp order of both incarnations.
	fake.Set(5000)
	if v, ok := snapRead(t, tcx, TxnOptions{Snapshot: SnapshotBounded}, "k"); !ok || v != "v2" {
		t.Fatalf("bounded now-read after recovery: %q %v, want v2", v, ok)
	}
}
