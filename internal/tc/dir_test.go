package tc

import (
	"context"
	"testing"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/dc"
)

// TestDirRestart: with Config.Dir the TC-log survives process death, and
// a new TC built over the same directory comes back in the needs-recovery
// state, runs the ordinary §5.3.2 restart, and ends up with committed
// writes intact, losers undone, and a strictly larger incarnation epoch.
func TestDirRestart(t *testing.T) {
	dir := t.TempDir()
	d, err := dc.New(dc.Config{Name: "dc0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}

	tc1, err := New(Config{ID: 1, Dir: dir}, []base.Service{d}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tc1.NeedsRecovery() {
		t.Fatal("fresh directory must not need recovery")
	}
	if e := tc1.Epoch(); e != 1 {
		t.Fatalf("fresh epoch = %d, want 1", e)
	}
	ctx := context.Background()
	if err := tc1.RunTxnOnce(ctx, TxnOptions{}, func(x *Txn) error {
		return x.Insert("t", "committed", []byte("keep"))
	}); err != nil {
		t.Fatal(err)
	}
	// A loser: its op record forced into the stable log, no commit record.
	loser := tc1.Begin(ctx, TxnOptions{})
	if err := loser.Insert("t", "loser", []byte("undo-me")); err != nil {
		t.Fatal(err)
	}
	tc1.Log().Force()
	// Process death: nothing is closed or flushed; the file holds exactly
	// what was forced.
	tc1.Close()

	tc2, err := New(Config{ID: 1, Dir: dir}, []base.Service{d}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tc2.Close()
	if !tc2.NeedsRecovery() {
		t.Fatal("reopened directory must need recovery")
	}
	if err := tc2.Recover(); err != nil {
		t.Fatalf("restart from dir: %v", err)
	}
	if tc2.NeedsRecovery() {
		t.Fatal("still down after Recover")
	}
	if e := tc2.Epoch(); e < 2 {
		t.Fatalf("restarted epoch = %d, want >= 2", e)
	}

	if err := tc2.RunTxnOnce(ctx, TxnOptions{}, func(x *Txn) error {
		v, ok, err := x.Read("t", "committed")
		if err != nil {
			return err
		}
		if !ok || string(v) != "keep" {
			t.Fatalf("committed write lost across restart: found=%v %q", ok, v)
		}
		_, ok, err = x.Read("t", "loser")
		if err != nil {
			return err
		}
		if ok {
			t.Fatal("loser write survived restart undo")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// New work commits under the new incarnation, and a second restart
	// keeps the epoch strictly monotonic.
	if err := tc2.RunTxnOnce(ctx, TxnOptions{}, func(x *Txn) error {
		return x.Upsert("t", "second-life", []byte("v2"))
	}); err != nil {
		t.Fatal(err)
	}
	e2 := tc2.Epoch()
	tc2.Close()
	tc3, err := New(Config{ID: 1, Dir: dir}, []base.Service{d}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tc3.Close()
	if err := tc3.Recover(); err != nil {
		t.Fatal(err)
	}
	if tc3.Epoch() <= e2 {
		t.Fatalf("epoch not monotonic across restarts: %d -> %d", e2, tc3.Epoch())
	}
	if err := tc3.RunTxnOnce(ctx, TxnOptions{}, func(x *Txn) error {
		v, ok, err := x.Read("t", "second-life")
		if err != nil {
			return err
		}
		if !ok || string(v) != "v2" {
			t.Fatalf("second incarnation's write lost: found=%v %q", ok, v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDirRestartAfterCheckpoint: truncation must not confuse the reopen —
// the checkpoint record carries the epoch across truncation, and redo
// replays only from the redo scan start point.
func TestDirRestartAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	d, err := dc.New(dc.Config{Name: "dc0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	tc1, err := New(Config{ID: 1, Dir: dir}, []base.Service{d}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := tc1.RunTxnOnce(ctx, TxnOptions{}, func(x *Txn) error {
			return x.Upsert("t", "k"+string(rune('a'+i)), []byte{byte(i)})
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tc1.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if err := tc1.RunTxnOnce(ctx, TxnOptions{}, func(x *Txn) error {
		return x.Upsert("t", "post-ckpt", []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}
	tc1.Close()

	tc2, err := New(Config{ID: 1, Dir: dir}, []base.Service{d}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tc2.Close()
	if err := tc2.Recover(); err != nil {
		t.Fatal(err)
	}
	if tc2.Epoch() < 2 {
		t.Fatalf("epoch lost across truncation: %d", tc2.Epoch())
	}
	if err := tc2.RunTxnOnce(ctx, TxnOptions{}, func(x *Txn) error {
		for i := 0; i < 20; i++ {
			if _, ok, err := x.Read("t", "k"+string(rune('a'+i))); err != nil || !ok {
				t.Fatalf("pre-checkpoint write %d lost (ok=%v err=%v)", i, ok, err)
			}
		}
		if _, ok, err := x.Read("t", "post-ckpt"); err != nil || !ok {
			t.Fatalf("post-checkpoint write lost (ok=%v err=%v)", ok, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
