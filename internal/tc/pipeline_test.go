package tc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/dc"
)

// slowService delays every operation delivery, making the asynchrony of
// pipelined writes observable: a posted write is provably not yet applied
// when the transaction continues, so the commit barrier has real work.
type slowService struct {
	base.Service
	delay time.Duration
}

func (s *slowService) Perform(ctx context.Context, op *base.Op) *base.Result {
	time.Sleep(s.delay)
	return s.Service.Perform(ctx, op)
}

func (s *slowService) PerformBatch(ctx context.Context, ops []*base.Op) []*base.Result {
	time.Sleep(s.delay)
	return s.Service.PerformBatch(ctx, ops)
}

// newPipelinedPair wires one pipelined TC to one DC through a delay.
func newPipelinedPair(t *testing.T, delay time.Duration) (*TC, *dc.DC) {
	t.Helper()
	d, err := dc.New(dc.Config{Name: "dc0", CheckConflicts: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, table := range []string{"t", "u"} {
		if err := d.CreateTable(table); err != nil {
			t.Fatal(err)
		}
	}
	var svc base.Service = d
	if delay > 0 {
		svc = &slowService{Service: d, delay: delay}
	}
	tcx, err := New(Config{ID: 1, Pipeline: true}, []base.Service{svc}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tcx.Close)
	return tcx, d
}

func TestPipelinedWriteSemantics(t *testing.T) {
	tcx, _ := newPipelinedPair(t, 0)
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		if err := x.Insert("t", "k", []byte("v1")); err != nil {
			return err
		}
		if err := x.Insert("t", "k", nil); !errors.Is(err, ErrDuplicate) {
			return fmt.Errorf("dup insert: %v", err)
		}
		if err := x.Update("t", "missing", nil); !errors.Is(err, ErrNotFound) {
			return fmt.Errorf("update missing: %v", err)
		}
		// Own write visible before the ack arrives (transaction cache).
		if v, ok, _ := x.Read("t", "k"); !ok || string(v) != "v1" {
			return fmt.Errorf("own read: %q %v", v, ok)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		if err := x.Upsert("t", "k", []byte("v2")); err != nil {
			return err
		}
		return x.Delete("t", "k")
	}); err != nil {
		t.Fatal(err)
	}
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		if _, ok, _ := x.Read("t", "k"); ok {
			return fmt.Errorf("key survived delete")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelinedCommitAckBarrier(t *testing.T) {
	// A 2ms delivery delay means writes are certainly still in flight when
	// the transaction body finishes; Commit must not return (nor release
	// locks) until every one of them has been applied at the DC.
	tcx, d := newPipelinedPair(t, 2*time.Millisecond)
	const n = 5
	start := time.Now()
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		for i := 0; i < n; i++ {
			if err := x.Insert("t", fmt.Sprintf("k%d", i), []byte("v")); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 2*time.Millisecond {
		t.Fatal("commit returned before any batch could have been delivered")
	}
	// After Commit returns, the DC must reflect every write.
	for i := 0; i < n; i++ {
		r := d.Perform(context.Background(), &base.Op{TC: 9, Kind: base.OpRead, Table: "t",
			Key: fmt.Sprintf("k%d", i), Flavor: base.ReadDirty})
		if !r.Found {
			t.Fatalf("k%d not applied at DC after commit", i)
		}
	}
}

func TestPipelinedAbortDrainsBeforeUndo(t *testing.T) {
	tcx, _ := newPipelinedPair(t, time.Millisecond)
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		return x.Insert("t", "base", []byte("committed"))
	}); err != nil {
		t.Fatal(err)
	}
	x := tcx.Begin(context.Background(), TxnOptions{})
	if err := x.Update("t", "base", []byte("scribble")); err != nil {
		t.Fatal(err)
	}
	if err := x.Insert("t", "tmp", []byte("temp")); err != nil {
		t.Fatal(err)
	}
	if err := x.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(y *Txn) error {
		if v, ok, _ := y.Read("t", "base"); !ok || string(v) != "committed" {
			return fmt.Errorf("update not rolled back: %q %v", v, ok)
		}
		if _, ok, _ := y.Read("t", "tmp"); ok {
			return fmt.Errorf("insert not rolled back")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if tcx.Stats().UndoOps != 2 {
		t.Fatalf("stats: %+v", tcx.Stats())
	}
}

func TestPipelinedVersionedBlindUpsert(t *testing.T) {
	tcx, d := newPipelinedPair(t, 0)
	// Versioned upserts skip the existence pre-check entirely; semantics
	// must be unchanged, including finalize-before-unlock at commit.
	if err := tcx.RunTxn(context.Background(), TxnOptions{Versioned: true}, func(x *Txn) error {
		return x.Upsert("t", "v", []byte("v1"))
	}); err != nil {
		t.Fatal(err)
	}
	rc := func() *base.Result {
		return d.Perform(context.Background(), &base.Op{TC: 9, Kind: base.OpRead, Table: "t", Key: "v",
			Flavor: base.ReadCommitted})
	}
	// Commit has drained the finalize op: read-committed sees v1 at once.
	if r := rc(); !r.Found || string(r.Value) != "v1" {
		t.Fatalf("committed read: %+v", r)
	}
	x := tcx.Begin(context.Background(), TxnOptions{Versioned: true})
	if err := x.Upsert("t", "v", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := x.Commit(); err != nil {
		t.Fatal(err)
	}
	if r := rc(); string(r.Value) != "v2" {
		t.Fatalf("after second commit: %+v", r)
	}
	// Aborted blind upsert rolls back via abort-versions.
	y := tcx.Begin(context.Background(), TxnOptions{Versioned: true})
	if err := y.Upsert("t", "v", []byte("v3")); err != nil {
		t.Fatal(err)
	}
	if err := y.Abort(); err != nil {
		t.Fatal(err)
	}
	if r := rc(); string(r.Value) != "v2" {
		t.Fatalf("after abort: %+v", r)
	}
}

func TestPipelinedScanSeesOwnWrites(t *testing.T) {
	tcx, _ := newPipelinedPair(t, time.Millisecond)
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		for i := 0; i < 8; i++ {
			if err := x.Insert("t", fmt.Sprintf("s%03d", i), []byte("v")); err != nil {
				return err
			}
		}
		// The scan must drain the pipeline first (read-your-writes).
		keys, _, err := x.Scan("t", "s000", "s999", 0)
		if err != nil {
			return err
		}
		if len(keys) != 8 {
			return fmt.Errorf("scan sees %d of 8 own writes: %v", len(keys), keys)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelinedTCCrashRecovery(t *testing.T) {
	tcx, _ := newPipelinedPair(t, 0)
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		return x.Insert("t", "committed", []byte("keep"))
	}); err != nil {
		t.Fatal(err)
	}
	// A loser with writes that may still be queued when the crash hits.
	loser := tcx.Begin(context.Background(), TxnOptions{})
	if err := loser.Insert("t", "loser", []byte("drop")); err != nil {
		t.Fatal(err)
	}
	if err := loser.Update("t", "committed", []byte("scribble")); err != nil {
		t.Fatal(err)
	}
	tcx.Crash()
	if err := tcx.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		if v, ok, _ := x.Read("t", "committed"); !ok || string(v) != "keep" {
			return fmt.Errorf("committed data wrong: %q %v", v, ok)
		}
		if _, ok, _ := x.Read("t", "loser"); ok {
			return fmt.Errorf("loser survived")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		return x.Insert("t", "after", []byte("ok"))
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelinedDCCrashRecoveryViaResend(t *testing.T) {
	tcx, d := newPipelinedPair(t, 0)
	for i := 0; i < 50; i++ {
		if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
			return x.Insert("t", fmt.Sprintf("k%03d", i), []byte("v"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	d.Crash()
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := tcx.RecoverDC(0); err != nil {
		t.Fatal(err)
	}
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		for i := 0; i < 50; i++ {
			if _, ok, _ := x.Read("t", fmt.Sprintf("k%03d", i)); !ok {
				return fmt.Errorf("key %d lost in DC crash", i)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelinedWriteRetriesWhileDCDown(t *testing.T) {
	// A pipelined write posted while the DC is down must park in the
	// resend loop and land once the DC recovers; the committing
	// transaction blocks at its ack barrier until then.
	tcx, d := newPipelinedPair(t, 0)
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		return x.Insert("t", "pre", []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	blocked := make(chan error, 1)
	go func() {
		// Versioned: the upsert needs no pre-check read, so the write posts
		// straight into the pipeline and the txn parks at its commit
		// barrier rather than failing on a synchronous unavailable reply.
		blocked <- tcx.RunTxn(context.Background(), TxnOptions{Versioned: true}, func(x *Txn) error {
			return x.Upsert("t", "during", []byte("v"))
		})
	}()
	select {
	case err := <-blocked:
		t.Fatalf("commit completed against a down DC: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := tcx.RecoverDC(0); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pipelined write never recovered after DC restart")
	}
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		if _, ok, _ := x.Read("t", "during"); !ok {
			return fmt.Errorf("write issued during outage lost")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// closedStubService mimics a wire client whose Close was called: every
// call answers CodeUnavailable and Closed reports true.
type closedStubService struct {
	base.Service
	closed atomic.Bool
}

func (s *closedStubService) Perform(ctx context.Context, op *base.Op) *base.Result {
	if s.closed.Load() {
		return &base.Result{LSN: op.LSN, Code: base.CodeUnavailable}
	}
	return s.Service.Perform(ctx, op)
}

func (s *closedStubService) PerformBatch(ctx context.Context, ops []*base.Op) []*base.Result {
	if !s.closed.Load() {
		return s.Service.PerformBatch(ctx, ops)
	}
	out := make([]*base.Result, len(ops))
	for i, op := range ops {
		out[i] = &base.Result{LSN: op.LSN, Code: base.CodeUnavailable}
	}
	return out
}

func (s *closedStubService) Closed() bool { return s.closed.Load() }

func TestPipelinedCommitUnblocksWhenStubClosed(t *testing.T) {
	// A wire stub closed before the TC (out-of-order shutdown) answers
	// everything with CodeUnavailable; the pipeline must recognize the
	// closed stub and fail the commit barrier instead of resending
	// forever.
	d, err := dc.New(dc.Config{Name: "dc0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	stub := &closedStubService{Service: d}
	tcx, err := New(Config{ID: 1, Pipeline: true}, []base.Service{stub}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tcx.Close)
	stub.closed.Store(true)
	done := make(chan error, 1)
	go func() {
		done <- tcx.RunTxn(context.Background(), TxnOptions{Versioned: true}, func(x *Txn) error {
			return x.Upsert("t", "k", []byte("v"))
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrTCStopped) {
			t.Fatalf("commit error = %v, want ErrTCStopped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("commit barrier hung against a closed stub")
	}
}

func TestPipelinedStaleBatchNotDeliveredAfterTCCrash(t *testing.T) {
	// A batch parked in the unavailable-retry loop (DC down) when the TC
	// crashes belongs to a dead incarnation: its records vanished with the
	// unforced log tail, so after recovery it must be retired, never
	// delivered — delivering would apply a write no undo covers and record
	// a reused LSN in the DC's idempotence tables.
	tcx, d := newPipelinedPair(t, 0)
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		return x.Insert("t", "committed", []byte("keep"))
	}); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	x := tcx.Begin(context.Background(), TxnOptions{Versioned: true})
	if err := x.Upsert("t", "ghost", []byte("x")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // let the worker pop the batch and park
	tcx.Crash()
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := tcx.Recover(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the parked batch's backoff expire
	r := d.Perform(context.Background(), &base.Op{TC: 9, Kind: base.OpRead, Table: "t", Key: "ghost",
		Flavor: base.ReadDirty})
	if r.Found {
		t.Fatal("stale pipelined batch delivered after crash+recovery")
	}
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(y *Txn) error {
		if v, ok, _ := y.Read("t", "committed"); !ok || string(v) != "keep" {
			return fmt.Errorf("committed data wrong: %q %v", v, ok)
		}
		return y.Insert("t", "after", []byte("ok"))
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelinedConcurrentNoConflictInvariant(t *testing.T) {
	// Concurrent conflicting transactions through the pipelines: the DC
	// conflict checker must stay clean, proving the ack barrier keeps
	// strict 2PL airtight (no lock release before the ops are applied).
	tcx, d := newPipelinedPair(t, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("hot%d", i%5)
				_ = tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
					return x.Upsert("t", key, []byte(fmt.Sprintf("g%d", g)))
				})
			}
		}(g)
	}
	wg.Wait()
	if v := d.Stats().ConflictViols; v != 0 {
		t.Fatalf("conflicting concurrent operations reached the DC: %d", v)
	}
}
