package tc

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/clock"
	"github.com/cidr09/unbundled/internal/lockmgr"
	"github.com/cidr09/unbundled/internal/wal"
)

// Errors surfaced to transaction code.
var (
	// ErrTxnDone is returned when using a committed/aborted transaction.
	ErrTxnDone = errors.New("tc: transaction already finished")
	// ErrNotFound mirrors base.CodeNotFound at the transaction API.
	ErrNotFound = errors.New("tc: key not found")
	// ErrDuplicate mirrors base.CodeDuplicate.
	ErrDuplicate = errors.New("tc: key already exists")
	// ErrScanUnstable is returned when the fetch-ahead protocol cannot
	// stabilize a range read (sustained insert churn in the range).
	ErrScanUnstable = errors.New("tc: fetch-ahead scan did not stabilize")
)

// SnapshotPolicy selects how a read-only transaction obtains its
// consistent view.
type SnapshotPolicy uint8

const (
	// SnapshotFresh (the default) reads at a fresh timestamp: the clock
	// reading plus its uncertainty bound. Begin waits out the uncertainty
	// window, so every transaction whose commit completed in real time
	// before the snapshot began is visible — external consistency. With
	// the default zero-uncertainty System clock the wait is free.
	SnapshotFresh SnapshotPolicy = iota
	// SnapshotBounded reads at now minus TxnOptions.Staleness (clamped to
	// the TC's SnapshotRetention): no uncertainty wait and usually no
	// safe-timestamp wait either, trading freshness for latency.
	SnapshotBounded
	// SnapshotLocked is the pre-snapshot posture: a read-only transaction
	// that still takes shared locks and reads current state through the
	// TC. It exists for comparison (experiment E9) and for callers that
	// need read-your-lock semantics against unversioned writers.
	SnapshotLocked
)

// TxnOptions shapes one transaction. The zero value is a plain
// (unversioned, read-write) transaction using the TC's configured lock
// timeout.
type TxnOptions struct {
	// Versioned makes writes keep before versions (§6.2.2), enabling
	// cross-TC read-committed readers and cheap undo. Versioned commits
	// carry a commit timestamp, which is what makes the writes visible to
	// snapshot readers.
	Versioned bool
	// ReadOnly refuses every mutation with base.ErrReadOnly and — unless
	// Snapshot is SnapshotLocked — turns the transaction into a snapshot
	// read: Begin draws a read timestamp, and every Read/Scan is served
	// by the DC at that timestamp without locks, without consuming LSNs,
	// and without any TC round trip.
	ReadOnly bool
	// Snapshot selects the read-only view policy; ignored unless ReadOnly.
	Snapshot SnapshotPolicy
	// Staleness is how far behind now a SnapshotBounded view may read
	// (clamped to the TC's SnapshotRetention); ignored otherwise.
	Staleness time.Duration
	// LockTimeout overrides the TC's configured lock-wait bound for this
	// transaction: positive bounds each wait, negative waits forever, zero
	// keeps the TC default.
	LockTimeout time.Duration
}

// lockWait resolves the per-transaction lock-wait bound against the TC
// default (0 means wait forever at the lock manager).
func (o TxnOptions) lockWait(def time.Duration) time.Duration {
	switch {
	case o.LockTimeout > 0:
		return o.LockTimeout
	case o.LockTimeout < 0:
		return 0
	default:
		return def
	}
}

type txnState uint8

const (
	txnActive txnState = iota
	txnCommitted
	txnAborted
)

type tableKey struct{ table, key string }

type cachedVal struct {
	val   []byte
	found bool
}

// Txn is one user transaction executing at this TC. A transaction is used
// from a single goroutine (many transactions run concurrently). It carries
// the context it was begun with: every lock wait and read honors that
// context's cancellation and deadline, while the delivery of logged writes
// deliberately does not (see write).
type Txn struct {
	tc  *TC
	ctx context.Context
	// sendCtx is ctx stripped of cancellation: the delivery context for
	// logged operations, whose resend contract must outlive any cancel.
	sendCtx context.Context
	opts    TxnOptions
	id      base.TxnID
	state   txnState
	// firstLSN/lastLSN delimit the undo chain in the TC-log.
	firstLSN, lastLSN base.LSN
	// cache holds values read or written under locks this transaction
	// already holds; locked values cannot change underfoot (strict 2PL),
	// so cached copies are authoritative and spare read-before-write
	// round trips to the DC.
	cache map[tableKey]cachedVal
	// versioned tracks keys written with versioning; commit/abort send
	// the §6.2.2 finalize operations for them.
	versioned map[tableKey]struct{}
	// pend is the barrier over this transaction's pipelined operations:
	// writes posted into the per-DC pipelines complete here, and Commit/
	// Abort (and scans, for read-your-writes) wait on it before relying on
	// DC state. Unused (always empty) when pipelining is off.
	pend pending
	// snapTS is the snapshot read timestamp (nonzero only for snapshot
	// transactions): every read is served by the DC at this timestamp.
	snapTS base.TS
	// commitTS is the commit timestamp assigned when a versioned
	// transaction commits; it holds the TC's safe timestamp down until
	// the finalize operations are acknowledged.
	commitTS base.TS
}

// Begin starts a transaction shaped by opts, bound to ctx. A nil ctx is
// treated as context.Background().
func (t *TC) Begin(ctx context.Context, opts TxnOptions) *Txn {
	if ctx == nil {
		ctx = context.Background()
	}
	t.begun.Add(1)
	t.mu.Lock()
	t.nextTxn++
	id := base.TxnID(t.nextTxn)
	x := &Txn{tc: t, ctx: ctx, sendCtx: context.WithoutCancel(ctx), opts: opts,
		id: id, cache: make(map[tableKey]cachedVal)}
	if opts.Versioned {
		x.versioned = make(map[tableKey]struct{})
	}
	t.txns[id] = x
	t.mu.Unlock()
	if opts.ReadOnly && opts.Snapshot != SnapshotLocked {
		x.beginSnapshot()
	}
	return x
}

// beginSnapshot draws the transaction's read timestamp and registers it
// so the TC's GC horizon cannot pass it while the snapshot is live. A
// fresh snapshot then waits out the clock's uncertainty window: once
// WaitUntilAfter returns, no clock in the deployment can still read
// snapTS or earlier, so no later-starting commit can be assigned a
// timestamp at or below it — reads at snapTS are externally consistent.
// A cancelled wait is not an error here; the reads themselves honor the
// context and will fail promptly.
func (x *Txn) beginSnapshot() {
	t := x.tc
	now, unc := t.clock.Now()
	snap := now + base.TS(unc)
	if x.opts.Snapshot == SnapshotBounded {
		back := x.opts.Staleness
		if back > t.cfg.SnapshotRetention {
			back = t.cfg.SnapshotRetention
		}
		snap = 1
		if now > base.TS(back) {
			snap = now - base.TS(back)
		}
	}
	t.tsMu.Lock()
	if x.opts.Snapshot != SnapshotBounded && t.lastCommit > snap {
		// Never read below this TC's own newest commit: guarantees fresh
		// snapshots observe local commits even when the clock has not yet
		// caught the allocator up (frozen test clocks, bursts of commits
		// within one clock tick).
		snap = t.lastCommit
	}
	x.snapTS = snap
	t.activeSnaps[snap]++
	t.tsMu.Unlock()
	t.snapshots.Add(1)
	if x.opts.Snapshot != SnapshotBounded && unc > 0 {
		_ = clock.WaitUntilAfter(x.ctx, t.clock, snap)
	}
}

// SnapshotTS returns the snapshot read timestamp, zero for transactions
// that are not snapshot reads.
func (x *Txn) SnapshotTS() base.TS { return x.snapTS }

// RunTxnOnce runs fn inside a single transaction attempt: commit on
// success, abort on failure, no retry. Callers owning their own retry
// policy (the deployment client) build on this.
func (t *TC) RunTxnOnce(ctx context.Context, opts TxnOptions, fn func(*Txn) error) error {
	if t.draining.Load() {
		// The admission gate of the drain protocol (see Drain): refuse
		// before anything is locked or logged, typed and transient so the
		// deployment client re-routes to another TC or retries later.
		t.drainRejects.Add(1)
		return fmt.Errorf("tc %d: %w", t.cfg.ID, base.ErrDraining)
	}
	x := t.Begin(ctx, opts)
	if err := fn(x); err != nil {
		_ = x.Abort()
		return err
	}
	return x.Commit()
}

// RunTxn runs fn inside a transaction, committing on success and retrying
// immediately (with a fresh transaction) on deadlock or lock-timeout
// aborts, up to a bounded number of attempts. The deployment-level client
// adds routing and backoff on top of RunTxnOnce instead.
func (t *TC) RunTxn(ctx context.Context, opts TxnOptions, fn func(*Txn) error) error {
	var err error
	for attempt := 0; attempt < 8; attempt++ {
		err = t.RunTxnOnce(ctx, opts, fn)
		if err == nil {
			return nil
		}
		if !errors.Is(err, base.ErrDeadlock) && !errors.Is(err, base.ErrLockTimeout) {
			return err
		}
		t.retries.Add(1)
	}
	return err
}

// ID returns the transaction identifier.
func (x *Txn) ID() base.TxnID { return x.id }

// Context returns the context the transaction was begun with.
func (x *Txn) Context() context.Context { return x.ctx }

// lockFor acquires the transactional lock guarding a single-key access.
// Under the static-range protocol the bucket is locked instead of the key
// (§3.1: fewer locks, less concurrency). The wait honors the transaction's
// context and per-transaction lock timeout; any failure aborts the
// transaction (locks may not be left half-acquired).
func (x *Txn) lockFor(table, key string, mode lockmgr.Mode) error {
	var res lockmgr.Resource
	if x.tc.cfg.Protocol == StaticRange {
		res = lockmgr.RangeRes(table, x.tc.Partition(table).Locate(key))
	} else {
		res = lockmgr.KeyRes(table, key)
	}
	return x.lock(res, mode)
}

func (x *Txn) lock(res lockmgr.Resource, mode lockmgr.Mode) error {
	err := x.tc.locks.LockWait(x.ctx, x.id, res, mode, x.opts.lockWait(x.tc.cfg.LockTimeout))
	if err != nil {
		if errors.Is(err, errLockTableLost) {
			// The incarnation that owned this wait crashed: restart
			// analysis undoes whatever the transaction logged, so the
			// orphan must not roll itself back — its inverse operations
			// would race the new incarnation, against which it holds no
			// locks. It just dies and reports a transient failure.
			x.state = txnAborted
			x.tc.mu.Lock()
			delete(x.tc.txns, x.id)
			x.tc.mu.Unlock()
			return err
		}
		if errors.Is(err, base.ErrDeadlock) {
			x.tc.deadlocks.Add(1)
		}
		_ = x.Abort()
	}
	return err
}

// Read returns the value of key as of the transaction's view. In a
// snapshot transaction that is the version visible at the snapshot
// timestamp, served by the DC without locks and without TC involvement;
// otherwise it is the committed-by-lock value in this TC's partition
// (plain read under a shared lock; the owner also sees its own writes).
func (x *Txn) Read(table, key string) ([]byte, bool, error) {
	if x.state != txnActive {
		return nil, false, ErrTxnDone
	}
	if c, ok := x.cache[tableKey{table, key}]; ok {
		return c.val, c.found, nil
	}
	if x.snapTS != 0 {
		return x.snapshotRead(table, key)
	}
	if err := x.lockFor(table, key, lockmgr.S); err != nil {
		return nil, false, err
	}
	return x.readOp(table, key, base.ReadPlain, true)
}

// snapshotRead serves a point read at the snapshot timestamp: shipped
// straight to the DC with no lock, no LSN, and no log interaction. The
// view at a fixed timestamp is immutable, so results are cached like
// locked reads.
func (x *Txn) snapshotRead(table, key string) ([]byte, bool, error) {
	res, err := x.snapshotOp(&base.Op{TC: x.tc.cfg.ID, Kind: base.OpRead, Table: table, Key: key,
		Flavor: base.ReadSnapshot, TS: x.snapTS})
	if err != nil {
		return nil, false, fmt.Errorf("tc: snapshot read %s/%s: %w", table, key, err)
	}
	switch res.Code {
	case base.CodeOK:
		x.cache[tableKey{table, key}] = cachedVal{val: res.Value, found: true}
		return res.Value, true, nil
	case base.CodeNotFound:
		x.cache[tableKey{table, key}] = cachedVal{found: false}
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("tc: snapshot read %s/%s: %w", table, key, x.resErr(res))
	}
}

// snapshotOp ships one snapshot-flavored operation directly to its DC,
// bypassing the logging/ack machinery entirely: the op carries no LSN
// (nothing tracks it) and Perform is called without going through
// performOn, so OpsSent stays untouched — a snapshot read really is
// zero-TC-round-trip. CodeUnavailable means the DC gave up waiting for
// some TC's safe timestamp to cover snapTS (a TC partitioned or down);
// the read retries after a pause, bounded only by the caller's context,
// because the condition clears as soon as the lagging TC's broadcasts
// resume.
func (x *Txn) snapshotOp(op *base.Op) (*base.Result, error) {
	t := x.tc
	idx, err := t.dcIndex(op.Table, op.Key)
	if err != nil {
		return nil, err
	}
	op.Epoch = t.Epoch()
	h := t.dcs[idx]
	for {
		if err := h.waitReady(x.ctx); err != nil {
			return nil, err
		}
		res := h.svc.Perform(x.ctx, op)
		if res.Code != base.CodeUnavailable {
			return res, nil
		}
		timer := time.NewTimer(10 * time.Millisecond)
		select {
		case <-timer.C:
		case <-x.ctx.Done():
			timer.Stop()
			return nil, base.CancelErr(x.ctx)
		}
	}
}

// readOp issues the read operation (allocating a request ID) and caches.
// Reads are placement-routed but never ownership-checked: §6.1 partitions
// update responsibility only — every TC may read everywhere. An
// unroutable read (no placement clause for the table) aborts the
// transaction like a failed lock would: the transaction cannot proceed
// and locks must not leak.
func (x *Txn) readOp(table, key string, flavor base.ReadFlavor, cache bool) ([]byte, bool, error) {
	idx, err := x.tc.dcIndex(table, key)
	if err != nil {
		_ = x.Abort()
		return nil, false, err
	}
	lsn := x.tc.log.AllocLSN()
	res := x.tc.performOn(x.ctx, x.tc.dcs[idx], &base.Op{TC: x.tc.cfg.ID, LSN: lsn, Kind: base.OpRead,
		Table: table, Key: key, Flavor: flavor})
	switch res.Code {
	case base.CodeOK:
		if cache {
			x.cache[tableKey{table, key}] = cachedVal{val: res.Value, found: true}
		}
		return res.Value, true, nil
	case base.CodeNotFound:
		if cache {
			x.cache[tableKey{table, key}] = cachedVal{found: false}
		}
		return nil, false, nil
	case base.CodeCancelled:
		return nil, false, fmt.Errorf("tc: read %s/%s: %w", table, key, base.CancelErr(x.ctx))
	default:
		return nil, false, fmt.Errorf("tc: read %s/%s: %w", table, key, res.Code.Err())
	}
}

// ReadCommitted reads the last committed version of a key that may belong
// to another TC's update partition. It takes no locks and never blocks:
// versioned data makes this safe (§6.2.2).
func (x *Txn) ReadCommitted(table, key string) ([]byte, bool, error) {
	if x.state != txnActive {
		return nil, false, ErrTxnDone
	}
	if err := x.drain(); err != nil {
		return nil, false, err
	}
	return x.readOp(table, key, base.ReadCommitted, false)
}

// ReadDirty reads the latest (possibly uncommitted) version without
// locking (§6.2.1).
func (x *Txn) ReadDirty(table, key string) ([]byte, bool, error) {
	if x.state != txnActive {
		return nil, false, ErrTxnDone
	}
	if err := x.drain(); err != nil {
		return nil, false, err
	}
	return x.readOp(table, key, base.ReadDirty, false)
}

// drain waits out this transaction's pipelined writes before an operation
// that must observe them at the DC (scans and unlocked reads bypass the
// transaction cache, so read-your-writes needs the queue empty). Point
// reads never need it: every pipelined write is recorded in the cache.
// The wait honors the transaction's context.
func (x *Txn) drain() error {
	if !x.tc.pipelined() {
		return nil
	}
	return x.pend.wait(x.ctx)
}

// valueOf returns the current value under an already-held X lock, going to
// the DC only when the transaction cache cannot answer.
func (x *Txn) valueOf(table, key string) ([]byte, bool, error) {
	if c, ok := x.cache[tableKey{table, key}]; ok {
		return c.val, c.found, nil
	}
	return x.readOp(table, key, base.ReadPlain, true)
}

// Insert adds a new record; ErrDuplicate if the key exists.
func (x *Txn) Insert(table, key string, val []byte) error {
	return x.write(base.OpInsert, table, key, val)
}

// Update overwrites an existing record; ErrNotFound if absent.
func (x *Txn) Update(table, key string, val []byte) error {
	return x.write(base.OpUpdate, table, key, val)
}

// Upsert writes the record regardless of prior existence.
func (x *Txn) Upsert(table, key string, val []byte) error {
	return x.write(base.OpUpsert, table, key, val)
}

// Delete removes a record; ErrNotFound if absent.
func (x *Txn) Delete(table, key string) error {
	return x.write(base.OpDelete, table, key, nil)
}

// write implements all mutations: X lock, undo capture, logical redo+undo
// logging *before* the send (so the TC-log order is an OPSR order), then
// the operation itself — shipped synchronously, or posted into the per-DC
// pipeline when cfg.Pipeline is on (the pre-check + X-lock invariant
// guarantees the outcome, so nothing needs the reply before commit).
//
// Cancellation points are the lock wait and the pre-check read. Once the
// op record is appended, delivery is no longer cancellable: the resend/
// redo contract must run to completion, or an abandoned forward operation
// could be overtaken by its own inverse on a reordering network.
func (x *Txn) write(kind base.OpKind, table, key string, val []byte) error {
	if x.state != txnActive {
		return ErrTxnDone
	}
	if x.opts.ReadOnly {
		return fmt.Errorf("tc: %s %s/%s: %w", kind, table, key, base.ErrReadOnly)
	}
	// §6.1 enforcement: update responsibility is partitioned among the
	// TCs, and this TC refuses to write outside its own partition —
	// before anything is locked or logged, so a misrouted transaction
	// aborts cleanly with the permanent ErrWrongOwner and its effects
	// never reach a DC owned by somebody else's lock space.
	owner, err := x.tc.router.Owner(table, key)
	if err != nil {
		_ = x.Abort()
		return fmt.Errorf("tc %d: %s %s/%q: %w", x.tc.cfg.ID, kind, table, key, err)
	}
	if owner != 0 && owner != x.tc.cfg.ID {
		_ = x.Abort()
		return fmt.Errorf("tc %d: %s %s/%q is owned by tc %d: %w",
			x.tc.cfg.ID, kind, table, key, owner, base.ErrWrongOwner)
	}
	dcIdx, err := x.tc.dcIndex(table, key)
	if err != nil {
		_ = x.Abort()
		return err
	}
	if err := x.lockFor(table, key, lockmgr.X); err != nil {
		return err
	}
	// Pre-check existence so that every logged operation succeeds at the
	// DC: restart undo can then blindly invert every chained record.
	var prior []byte
	var priorFound bool
	switch kind {
	case base.OpInsert:
		_, found, err := x.valueOf(table, key)
		if err != nil {
			return err
		}
		if found {
			return ErrDuplicate
		}
	case base.OpUpdate, base.OpDelete:
		p, found, err := x.valueOf(table, key)
		if err != nil {
			return err
		}
		if !found {
			return ErrNotFound
		}
		prior, priorFound = p, true
	case base.OpUpsert:
		// Versioned upserts need no pre-check: the DC keeps the before
		// version, the inverse is abort-versions (no prior needed), and
		// upsert semantics do not depend on prior existence. This saves
		// the read round trip that would otherwise gate the pipeline.
		if !x.opts.Versioned {
			p, found, err := x.valueOf(table, key)
			if err != nil {
				return err
			}
			prior, priorFound = p, found
		}
	}
	op := &base.Op{TC: x.tc.cfg.ID, Kind: kind, Table: table, Key: key,
		Value: val, Versioned: x.opts.Versioned}
	rec := &wal.Record{Kind: recOp, Txn: x.id, Prev: x.lastLSN,
		Payload: encodeOpPayload(op, prior, priorFound)}
	op.Epoch = x.tc.Epoch() // before the LSN assignment; see postOp
	lsn := x.tc.log.AppendAssign(rec)
	op.LSN = lsn
	if x.tc.pipelined() {
		x.tc.postOp(x, op, dcIdx)
	} else {
		res := x.tc.performOn(x.sendCtx, x.tc.dcs[dcIdx], op)
		if res.Code != base.CodeOK {
			// Cannot happen given the pre-checks (the lock freezes the key);
			// surface loudly if the invariant is ever broken.
			return fmt.Errorf("tc: logged op failed at DC: %v -> %v", op, res.Code)
		}
	}
	if x.firstLSN == 0 {
		x.firstLSN = lsn
	}
	x.lastLSN = lsn
	tk := tableKey{table, key}
	if kind == base.OpDelete {
		x.cache[tk] = cachedVal{found: false}
	} else {
		x.cache[tk] = cachedVal{val: val, found: true}
	}
	if x.opts.Versioned {
		x.versioned[tk] = struct{}{}
	}
	return nil
}

// ErrCommitAmbiguous marks a Commit that failed after the commit record
// was appended: the transaction's outcome is decided by the log (a winner
// if the record reaches stability, lost otherwise), not by this error.
// Callers must NOT re-execute the transaction on it — re-running could
// apply its effects twice — even when the underlying failure (a closed
// component, a cancelled wait) would otherwise classify as transient.
var ErrCommitAmbiguous = errors.New("tc: commit outcome decided by the log, not by this error")

// Commit makes the transaction durable: append and force the commit
// record (group commit), finalize versioned writes (§6.2.2 — removing the
// before versions; non-blocking for readers, no two-phase commit), then
// release locks (strict two-phase locking).
//
// With pipelining on, the commit-record force overlaps draining the
// transaction's outstanding DC acks — the two waits proceed concurrently —
// and locks are released only after both (plus the finalize barrier for
// versioned writes) complete, so no other transaction can observe a
// not-yet-applied write. A barrier failure (the TC was closed or crashed
// underneath a committing transaction) is reported, but the commit record
// is already durable: restart treats the transaction as a winner and
// re-delivers its logged operations.
//
// Cancellation abandons the waits, never the protocol: Commit returns
// promptly with an error wrapping ErrCommitAmbiguous and base.ErrCancelled
// (the commit record is already appended, so the outcome is whatever the
// log decides), but the transaction's locks are NOT released early — a
// detached finisher holds them until every shipped operation is
// acknowledged and the commit record is stable, preserving strict 2PL: no
// other transaction can observe a not-yet-applied write or a
// not-yet-durable commit.
func (x *Txn) Commit() error {
	if x.state != txnActive {
		return ErrTxnDone
	}
	t := x.tc
	var vkeys []tableKey
	for tk := range x.versioned {
		vkeys = append(vkeys, tk)
	}
	if x.lastLSN == 0 && len(vkeys) == 0 {
		// Read-only (or no-op) commit: the transaction logged nothing, so
		// there is no outcome to make durable — no commit record, no log
		// force. Restart treats an unlogged transaction as having no
		// effects, which is exactly right.
		x.state = txnCommitted
		t.commits.Add(1)
		x.finish()
		return nil
	}
	if len(vkeys) > 0 {
		// The commit timestamp is the snapshot visibility point of this
		// transaction's versioned writes. Logged in the commit record so
		// restart re-finalizes winners at the same timestamp.
		x.commitTS = t.assignCommitTS()
	}
	rec := &wal.Record{Kind: recCommit, Txn: x.id, Prev: x.lastLSN,
		Payload: encodeCommit(vkeys, x.commitTS)}
	cLSN := t.log.AppendAssign(rec)
	t.acks.Complete(cLSN) // local record: no DC round trip
	// The force runs in a goroutine when it must overlap the ack barrier
	// (pipelined) or be abandonable (cancellable ctx); forced is nil when
	// it already completed inline.
	var forced chan struct{}
	if t.pipelined() || x.ctx.Done() != nil {
		forced = make(chan struct{})
		go func() {
			t.log.ForceTo(cLSN)
			close(forced)
		}()
	} else {
		t.log.ForceTo(cLSN)
	}
	var barrierErr error
	if t.pipelined() {
		barrierErr = x.pend.wait(x.ctx)
	}
	if forced != nil && barrierErr == nil {
		select {
		case <-forced:
		case <-x.ctx.Done():
			barrierErr = base.CancelErr(x.ctx)
		}
	}
	// Push the new stable boundary to the DCs promptly: cached pages with
	// this transaction's operations become flushable (causality).
	t.broadcastWatermarks()
	// detach hands the rest of the commit protocol to a background
	// finisher so a cancelled caller returns promptly: drain outstanding
	// acks, send any finalize operations not yet issued (their delivery
	// can block arbitrarily on a down DC — the commit record already
	// carries the versioned write set, so restart re-finalizes winners
	// regardless), wait out the force, then release the locks.
	detach := func(finalize bool) error {
		go func() {
			_ = x.pend.wait(context.Background())
			if finalize {
				for _, tk := range vkeys {
					x.finalizeOp(base.OpCommitVersions, tk)
				}
				_ = x.pend.wait(context.Background())
			}
			<-forced
			x.finish()
		}()
		return fmt.Errorf("tc: commit barrier for txn %d: %w: %w", x.id, ErrCommitAmbiguous, barrierErr)
	}
	x.state = txnCommitted
	t.commits.Add(1)
	if errors.Is(barrierErr, base.ErrCancelled) {
		return detach(true)
	}
	// §6.2.2: "When an updating TC commits the transaction, it sends
	// updates to the DC to eliminate the before versions." These are
	// logged so restart re-delivers them for winners. Pipelined, they ride
	// the same per-DC queues (ordered after the writes they finalize) and
	// are drained before lock release.
	for _, tk := range vkeys {
		x.finalizeOp(base.OpCommitVersions, tk)
	}
	if t.pipelined() && barrierErr == nil {
		barrierErr = x.pend.wait(x.ctx)
		if errors.Is(barrierErr, base.ErrCancelled) {
			return detach(false)
		}
	}
	if barrierErr != nil {
		// Non-cancel failures only surface with the barrier fully drained
		// (pend.wait returns sticky errors at zero outstanding), so locks
		// can release now; still see the force through, as before.
		if forced != nil {
			<-forced
		}
		x.finish()
		return fmt.Errorf("tc: commit barrier for txn %d: %w: %w", x.id, ErrCommitAmbiguous, barrierErr)
	}
	x.finish()
	return nil
}

// finish releases the transaction's locks and drops it from the table:
// the 2PL release point. Runs exactly once per transaction — inline on
// the normal paths, from the detached finisher on a cancelled commit. It
// also releases the transaction's timestamp registrations: the snapshot
// pin on the GC horizon, and the outstanding commit timestamp (every
// path reaching finish after a commit has the finalize operations
// acknowledged, so the safe timestamp may now pass it).
func (x *Txn) finish() {
	t := x.tc
	if x.snapTS != 0 || x.commitTS != 0 {
		t.tsMu.Lock()
		if x.snapTS != 0 {
			if t.activeSnaps[x.snapTS]--; t.activeSnaps[x.snapTS] <= 0 {
				delete(t.activeSnaps, x.snapTS)
			}
		}
		if x.commitTS != 0 {
			delete(t.commitOut, x.commitTS)
		}
		t.tsMu.Unlock()
	}
	t.locks.ReleaseAll(x.id)
	t.mu.Lock()
	delete(t.txns, x.id)
	t.mu.Unlock()
}

func (x *Txn) finalizeOp(kind base.OpKind, tk tableKey) {
	t := x.tc
	// The forward write resolved this key's placement when it was issued,
	// so under a stable placement this cannot fail; resolving before the
	// record is appended keeps the invariant that only routable
	// operations ever consume a logged LSN.
	idx, err := t.dcIndex(tk.table, tk.key)
	if err != nil {
		return
	}
	// Commit-versions operations carry the commit timestamp: the DC stamps
	// it on the record as it removes the before version, making the write
	// visible to snapshot reads at or above it. The payload keeps the TS
	// (only LSN and epoch are zeroed), so restart redo re-finalizes at the
	// same timestamp.
	op := &base.Op{TC: t.cfg.ID, Kind: kind, Table: tk.table, Key: tk.key, TS: x.commitTS}
	rec := &wal.Record{Kind: recOp, Txn: x.id, Prev: 0,
		Payload: encodeOpPayload(op, nil, false)}
	op.Epoch = t.Epoch() // before the LSN assignment; see postOp
	op.LSN = t.log.AppendAssign(rec)
	if t.pipelined() {
		t.postOp(x, op, idx)
	} else {
		// Logged: delivery must complete regardless of cancellation.
		t.performOn(x.sendCtx, t.dcs[idx], op)
	}
}

// Abort rolls the transaction back: walk the undo chain in reverse
// chronological order, sending inverse logical operations (logged as
// compensation records so restart never undoes twice), then release locks
// (§4.1.1(2b)). Outstanding pipelined writes are drained first so an
// inverse can never overtake the forward operation it undoes. Abort does
// not honor cancellation: the rollback protocol must complete before the
// locks can be released (a cancelled transaction still aborts cleanly).
func (x *Txn) Abort() error {
	if x.state != txnActive {
		if x.state == txnAborted {
			return nil
		}
		return ErrTxnDone
	}
	t := x.tc
	_ = x.pend.wait(context.Background()) // barrier failures still leave the log authoritative
	t.undoChain(x.id, x.lastLSN)
	aLSN := t.log.AppendAssign(&wal.Record{Kind: recAbort, Txn: x.id, Prev: x.lastLSN})
	t.acks.Complete(aLSN) // local record: no DC round trip
	x.state = txnAborted
	x.finish()
	t.aborts.Add(1)
	return nil
}

// undoChain applies inverse operations for the chain starting at lastLSN.
// Compensation records jump via NextUndo so an undo interrupted by a crash
// never repeats completed work. Shared by Abort and restart undo.
func (t *TC) undoChain(txn base.TxnID, lastLSN base.LSN) {
	cur := lastLSN
	for cur != 0 {
		rec := t.log.Get(cur)
		if rec == nil {
			return // truncated below the chain: nothing older to undo
		}
		switch rec.Kind {
		case recOp:
			op, prior, priorFound, err := decodeOpPayload(rec.Payload)
			if err != nil {
				return
			}
			if inv := inverseOp(op, prior, priorFound); inv != nil {
				// The forward op routed when it was logged; a failure here
				// means the placement changed underneath a live log, which
				// nothing can undo against — stop like a truncated chain.
				idx, err := t.dcIndex(inv.Table, inv.Key)
				if err != nil {
					return
				}
				clr := &wal.Record{Kind: recCLR, Txn: txn, Prev: cur,
					NextUndo: rec.Prev, Payload: encodeOpPayload(inv, nil, false)}
				inv.Epoch = t.Epoch() // before the LSN assignment; see postOp
				inv.LSN = t.log.AppendAssign(clr)
				t.performOn(context.Background(), t.dcs[idx], inv)
				t.undoOps.Add(1)
			}
			cur = rec.Prev
		case recCLR:
			cur = rec.NextUndo
		default:
			cur = rec.Prev
		}
	}
}

// inverseOp builds the logical inverse (§4.1.1(2b)). Versioned writes
// invert via abort-versions — the DC discards the uncommitted version and
// restores the before version (§6.2.2). Finalize operations have no
// inverse (they only run post-commit).
func inverseOp(op *base.Op, prior []byte, priorFound bool) *base.Op {
	if op.Kind == base.OpCommitVersions || op.Kind == base.OpAbortVersions {
		return nil
	}
	if op.Versioned {
		return &base.Op{TC: op.TC, Kind: base.OpAbortVersions, Table: op.Table, Key: op.Key}
	}
	switch op.Kind {
	case base.OpInsert:
		return &base.Op{TC: op.TC, Kind: base.OpDelete, Table: op.Table, Key: op.Key}
	case base.OpUpdate:
		return &base.Op{TC: op.TC, Kind: base.OpUpdate, Table: op.Table, Key: op.Key, Value: prior}
	case base.OpUpsert:
		if priorFound {
			return &base.Op{TC: op.TC, Kind: base.OpUpdate, Table: op.Table, Key: op.Key, Value: prior}
		}
		return &base.Op{TC: op.TC, Kind: base.OpDelete, Table: op.Table, Key: op.Key}
	case base.OpDelete:
		return &base.Op{TC: op.TC, Kind: base.OpInsert, Table: op.Table, Key: op.Key, Value: prior}
	}
	return nil
}

// Scan reads [lo, hi) in this TC's partition with full locking, using the
// configured §3.1 range protocol. hi == "" scans to the end of the table's
// partition; limit <= 0 means unlimited.
func (x *Txn) Scan(table, lo, hi string, limit int) (keys []string, vals [][]byte, err error) {
	if x.state != txnActive {
		return nil, nil, ErrTxnDone
	}
	if x.snapTS != 0 {
		// Snapshot scans need none of the §3.1 range protocols: the view
		// at the snapshot timestamp is immutable, so one unlocked range
		// read is already stable.
		res, err := x.snapshotOp(&base.Op{TC: x.tc.cfg.ID, Kind: base.OpRangeRead,
			Table: table, Key: lo, EndKey: hi, Limit: int32(limit),
			Flavor: base.ReadSnapshot, TS: x.snapTS})
		if err != nil {
			return nil, nil, fmt.Errorf("tc: snapshot scan %s: %w", table, err)
		}
		if err := x.resErr(res); err != nil {
			return nil, nil, err
		}
		return res.Keys, res.Values, nil
	}
	if err := x.drain(); err != nil {
		return nil, nil, err
	}
	if x.tc.cfg.Protocol == StaticRange {
		for _, b := range x.tc.Partition(table).Overlapping(lo, hi) {
			if err := x.lock(lockmgr.RangeRes(table, b), lockmgr.S); err != nil {
				return nil, nil, err
			}
		}
		res, err := x.rangeOp(table, lo, hi, limit, base.ReadPlain)
		if err != nil {
			return nil, nil, err
		}
		if err := x.resErr(res); err != nil {
			return nil, nil, err
		}
		return res.Keys, res.Values, nil
	}
	return x.fetchAheadScan(table, lo, hi, limit)
}

// fetchAheadScan implements the §3.1 fetch-ahead protocol: speculatively
// probe for the keys in the range, lock them, then read; if the read
// returns keys that were not locked, the read doubles as the next probe.
func (x *Txn) fetchAheadScan(table, lo, hi string, limit int) ([]string, [][]byte, error) {
	locked := make(map[string]bool)
	probeLimit := int32(limit)
	if limit <= 0 || limit > x.tc.cfg.ProbeWidth {
		probeLimit = int32(x.tc.cfg.ProbeWidth)
	}
	// Initial speculative probe. Range reads route by their low key: the
	// range protocols scan within one table partition.
	idx, err := x.tc.dcIndex(table, lo)
	if err != nil {
		_ = x.Abort()
		return nil, nil, err
	}
	x.tc.probes.Add(1)
	probe := x.tc.performOn(x.ctx, x.tc.dcs[idx], &base.Op{TC: x.tc.cfg.ID, LSN: x.tc.log.AllocLSN(),
		Kind: base.OpScanProbe, Table: table, Key: lo, EndKey: hi, Limit: probeLimit})
	if err := x.resErr(probe); err != nil {
		return nil, nil, err
	}
	toLock := probe.Keys
	for attempt := 0; attempt < 16; attempt++ {
		for _, k := range toLock {
			if locked[k] {
				continue
			}
			if err := x.lock(lockmgr.KeyRes(table, k), lockmgr.S); err != nil {
				return nil, nil, err
			}
			locked[k] = true
		}
		res, err := x.rangeOp(table, lo, hi, limit, base.ReadPlain)
		if err != nil {
			return nil, nil, err
		}
		if err := x.resErr(res); err != nil {
			return nil, nil, err
		}
		// Should the records read differ from the ones locked, this read
		// becomes the next speculative probe (§3.1).
		stable := true
		for _, k := range res.Keys {
			if !locked[k] {
				stable = false
				break
			}
		}
		if stable {
			return res.Keys, res.Values, nil
		}
		toLock = res.Keys
		x.tc.probes.Add(1)
	}
	_ = x.Abort()
	return nil, nil, ErrScanUnstable
}

// ScanCommitted range-reads committed versions across TC ownership
// boundaries without locks (§6.2.2; used by reader TCs like Figure 2's
// TC3).
func (x *Txn) ScanCommitted(table, lo, hi string, limit int) ([]string, [][]byte, error) {
	if x.state != txnActive {
		return nil, nil, ErrTxnDone
	}
	if err := x.drain(); err != nil {
		return nil, nil, err
	}
	res, err := x.rangeOp(table, lo, hi, limit, base.ReadCommitted)
	if err != nil {
		return nil, nil, err
	}
	if err := x.resErr(res); err != nil {
		return nil, nil, err
	}
	return res.Keys, res.Values, nil
}

// ScanDirty range-reads latest versions without locks (§6.2.1).
func (x *Txn) ScanDirty(table, lo, hi string, limit int) ([]string, [][]byte, error) {
	if x.state != txnActive {
		return nil, nil, ErrTxnDone
	}
	if err := x.drain(); err != nil {
		return nil, nil, err
	}
	res, err := x.rangeOp(table, lo, hi, limit, base.ReadDirty)
	if err != nil {
		return nil, nil, err
	}
	if err := x.resErr(res); err != nil {
		return nil, nil, err
	}
	return res.Keys, res.Values, nil
}

// resErr converts an operation result's failure into the transaction's
// error, folding a cancelled wait into the context-carrying form so
// errors.Is matches both ErrCancelled and the context's own error (the
// documented contract; readOp does the same for point reads).
func (x *Txn) resErr(res *base.Result) error {
	if res.Code == base.CodeCancelled {
		return base.CancelErr(x.ctx)
	}
	return res.Err()
}

// rangeOp issues one range read, routed by the low key (scans stay within
// one table partition); an unroutable table aborts like readOp.
func (x *Txn) rangeOp(table, lo, hi string, limit int, flavor base.ReadFlavor) (*base.Result, error) {
	idx, err := x.tc.dcIndex(table, lo)
	if err != nil {
		_ = x.Abort()
		return nil, err
	}
	return x.tc.performOn(x.ctx, x.tc.dcs[idx], &base.Op{TC: x.tc.cfg.ID, LSN: x.tc.log.AllocLSN(),
		Kind: base.OpRangeRead, Table: table, Key: lo, EndKey: hi,
		Limit: int32(limit), Flavor: flavor}), nil
}
