package tc

import (
	"context"
	"errors"
	"fmt"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/lockmgr"
	"github.com/cidr09/unbundled/internal/wal"
)

// errLockTableLost is recorded against lock waits orphaned by a TC
// crash: the lock table the waiter was queued in vanished with the
// incarnation, so nothing will ever grant it. It folds into the taxonomy
// as a component-unavailable failure (transient — a retry lands on the
// recovered incarnation), and Txn.lock recognizes it specially: the
// orphaned transaction must NOT run its own rollback, because restart
// owns the undo of everything the dead incarnation logged.
var errLockTableLost = fmt.Errorf("tc: lock table lost in TC crash: %w", base.ErrUnavailable)

// Crash simulates a TC process failure: the log buffer (unforced tail),
// lock table, transaction table, ack bookkeeping, and queued pipeline
// operations vanish. The stable log survives. LSNs above the stable end
// will be reused by the restarted incarnation — the DC-side reset protocol
// (§5.3.2) makes that safe. The epoch fence activates when Recover mints
// the next incarnation; anything a zombie call completes into the tracker
// before then is wiped by recovery's re-base, and anything it delivers to
// a DC before then is swept by BeginRestart.
func (t *TC) Crash() {
	for _, p := range t.pipes {
		p.drop()
	}
	t.mu.Lock()
	t.down = true
	t.txns = make(map[base.TxnID]*Txn)
	t.mu.Unlock()
	t.log.Crash()
	// The superseded lock table is poisoned, not just dropped: waiters
	// still queued in it are blocked behind locks that no longer exist
	// and would otherwise sleep forever.
	old := t.locks
	t.locks = lockmgr.New()
	t.locks.Timeout = t.cfg.LockTimeout
	old.Poison(errLockTableLost)
	t.acks.Reset(0)
	// Outstanding commit timestamps and snapshot pins died with their
	// transactions; lastCommit and maxSafeSent deliberately survive (the
	// promises they encode were already broadcast). Recover re-seeds
	// lastCommit from the log for cross-process restarts.
	t.tsMu.Lock()
	t.commitOut = make(map[base.TS]struct{})
	t.activeSnaps = make(map[base.TS]int)
	t.tsMu.Unlock()
}

// Recover implements the TC side of the restart function (§4.2.1 restart,
// §5.3.2 "TC Failure"):
//
//  1. Analysis over the stable log: find the redo scan start point, the
//     loser transactions, and committed transactions with versioned
//     writes to re-finalize.
//  2. Tell every DC to discard effects of operations beyond the stable
//     log (targeted page reset — only this TC's records are touched).
//  3. Redo: resend every logged operation from the RSSP onward, in LSN
//     order (repeating history at the logical level; DC idempotence
//     filters what survived).
//  4. Undo: send inverse operations for losers, in reverse chronological
//     order, logged as compensation records.
//  5. Re-issue commit-versions for winners, then allow normal processing.
func (t *TC) Recover() error {
	t.mu.Lock()
	if !t.down {
		t.mu.Unlock()
		return errors.New("tc: recover called while running")
	}
	t.mu.Unlock()

	stableEnd := t.log.EOSL()
	records := t.log.Scan(0)

	// --- analysis ---
	rssp := base.LSN(1)
	type loser struct{ lastLSN base.LSN }
	type winner struct {
		keys []tableKey
		ts   base.TS
	}
	losers := make(map[base.TxnID]*loser)
	var winnersVersioned []winner
	maxTxn := uint64(0)
	maxEpoch := base.Epoch(0)
	maxCommitTS := base.TS(0)
	for _, rec := range records {
		if uint64(rec.Txn) > maxTxn {
			maxTxn = uint64(rec.Txn)
		}
		switch rec.Kind {
		case recCheckpoint:
			if r, e, err := decodeCheckpoint(rec.Payload); err == nil {
				if r > rssp {
					rssp = r
				}
				if e > maxEpoch {
					maxEpoch = e
				}
			}
		case recEpoch:
			if e, err := decodeEpoch(rec.Payload); err == nil && e > maxEpoch {
				maxEpoch = e
			}
		case recOp, recCLR:
			if rec.Txn != 0 {
				l := losers[rec.Txn]
				if l == nil {
					l = &loser{}
					losers[rec.Txn] = l
				}
				l.lastLSN = rec.LSN
			}
		case recCommit:
			delete(losers, rec.Txn)
			if keys, cts, err := decodeCommit(rec.Payload); err == nil {
				if cts > maxCommitTS {
					maxCommitTS = cts
				}
				if len(keys) > 0 {
					winnersVersioned = append(winnersVersioned, winner{keys, cts})
				}
			}
		case recAbort:
			delete(losers, rec.Txn)
		}
	}

	t.mu.Lock()
	t.rssp = rssp
	t.nextTxn = maxTxn
	t.mu.Unlock()

	// Re-seed the commit-timestamp allocator above every durable commit
	// and above the clock's current reading. The clock clamp covers safe
	// timestamps a previous process broadcast without committing anything
	// (those tracked its clock), relying on the wall clock not stepping
	// backwards across a process restart — the same assumption the System
	// clock's monotonic forcing makes within one process.
	if now, _ := t.clock.Now(); now > maxCommitTS {
		maxCommitTS = now
	}
	t.tsMu.Lock()
	if maxCommitTS > t.lastCommit {
		t.lastCommit = maxCommitTS
	}
	t.tsMu.Unlock()

	// --- mint the new incarnation epoch and force it before anything is
	// stamped with it. The stable log always names the newest prior epoch
	// (every mint is forced, and checkpoint records carry it across
	// truncation), so strict monotonicity holds across any crash pattern;
	// max-ing with the in-memory value is belt and braces.
	newEpoch := maxEpoch
	if cur := base.Epoch(t.epoch.Load()); cur > newEpoch {
		newEpoch = cur
	}
	newEpoch++
	t.epoch.Store(uint64(newEpoch))
	epochLSN := t.log.AppendAssign(&wal.Record{Kind: recEpoch, Payload: encodeEpoch(newEpoch)})
	t.log.ForceTo(epochLSN)

	// --- DC reset (§5.3.2): drop cached effects beyond the stable log and
	// install the new epoch as the fence, so the dead incarnation's
	// requests still on the wire can never execute after this point.
	for _, h := range t.dcs {
		if err := h.svc.BeginRestart(context.Background(), t.cfg.ID, newEpoch, stableEnd); err != nil {
			return fmt.Errorf("tc %d: begin restart: %w", t.cfg.ID, err)
		}
	}

	// --- redo: repeat history by resending logical operations in order ---
	for _, rec := range records {
		if rec.LSN < rssp {
			continue
		}
		if rec.Kind != recOp && rec.Kind != recCLR {
			continue
		}
		op, _, _, err := decodeOpPayload(rec.Payload)
		if err != nil {
			return fmt.Errorf("tc %d: redo decode @%d: %w", t.cfg.ID, rec.LSN, err)
		}
		op.LSN = rec.LSN
		op.Epoch = newEpoch // resent by (and under the fence of) this incarnation
		idx, err := t.dcIndex(op.Table, op.Key)
		if err != nil {
			// The op routed when it was logged: a failing lookup means the
			// placement changed underneath a durable log, and redo cannot
			// repeat history against the wrong DC. Fail the restart loudly.
			return fmt.Errorf("tc %d: redo @%d: %w", t.cfg.ID, rec.LSN, err)
		}
		h := t.dcs[idx]
		if res := h.svc.Perform(context.Background(), op); res.Code != base.CodeOK &&
			res.Code != base.CodeDuplicate && res.Code != base.CodeNotFound {
			return fmt.Errorf("tc %d: redo @%d failed: %v", t.cfg.ID, rec.LSN, res.Code)
		}
		t.redoOps.Add(1)
	}

	// Redo is complete: every allocated LSN at or below the stable end is
	// accounted for (replayed or void), so the low-water mark restarts
	// there; the DCs reset their own LWM state in BeginRestart. The epoch
	// record appended above sits just past the stable end and needs no DC
	// round trip, so it completes immediately after the re-base.
	t.acks.Reset(stableEnd)
	t.acks.Complete(epochLSN)
	// A drain does not survive the incarnation: the flag is in-memory
	// state, so a kill -9'd draining process restarts serving — recovery
	// behaves identically whether or not a drain was in progress.
	t.draining.Store(false)
	t.mu.Lock()
	t.down = false
	t.mu.Unlock()

	// --- undo losers with inverse operations (multi-level undo) ---
	for txnID, l := range losers {
		t.undoChain(txnID, l.lastLSN)
		aLSN := t.log.AppendAssign(&wal.Record{Kind: recAbort, Txn: txnID, Prev: l.lastLSN})
		t.acks.Complete(aLSN) // local record: no DC round trip
	}

	// --- re-finalize winners' versioned writes (§6.2.2: before versions
	// are guaranteed to be eventually removed) ---
	for _, w := range winnersVersioned {
		for _, tk := range w.keys {
			idx, err := t.dcIndex(tk.table, tk.key)
			if err != nil {
				return fmt.Errorf("tc %d: re-finalize %s/%q: %w", t.cfg.ID, tk.table, tk.key, err)
			}
			op := &base.Op{TC: t.cfg.ID, Kind: base.OpCommitVersions,
				Table: tk.table, Key: tk.key, TS: w.ts}
			rec := &wal.Record{Kind: recOp, Payload: encodeOpPayload(op, nil, false)}
			op.Epoch = newEpoch
			op.LSN = t.log.AppendAssign(rec)
			t.performOn(context.Background(), t.dcs[idx], op)
		}
	}
	t.log.Force()
	t.broadcastWatermarks()

	// --- contract: restart complete, normal processing resumes — the DCs
	// activate the staged epoch and discard the dead incarnation's leftovers.
	for _, h := range t.dcs {
		if err := h.svc.EndRestart(context.Background(), t.cfg.ID, newEpoch); err != nil {
			return fmt.Errorf("tc %d: end restart: %w", t.cfg.ID, err)
		}
	}
	return nil
}

// RecoverDC replays this TC's logged operations to one crashed-and-
// recovered DC (§5.3.2 "DC Failure"): resend from the redo scan start
// point; the DC re-applies whatever is missing from its stable state.
// New operations to that DC wait until the redo stream completes so that
// logical operations are never applied out of order; in-flight resends of
// old operations are part of the redo stream and harmless.
func (t *TC) RecoverDC(idx int) error {
	if idx < 0 || idx >= len(t.dcs) {
		return fmt.Errorf("tc %d: no DC %d", t.cfg.ID, idx)
	}
	h := t.dcs[idx]
	h.setRecovering(true)
	defer h.setRecovering(false)

	// Scan only sees the stable log, but operations whose replies already
	// arrived may still sit in the unforced tail (always possible with
	// pipelining, where an op is acknowledged long before any force).
	// Force first so the redo stream covers every operation the DC might
	// have lost from its cache.
	t.log.Force()
	t.mu.Lock()
	rssp := t.rssp
	t.mu.Unlock()
	for _, rec := range t.log.Scan(rssp) {
		if rec.Kind != recOp && rec.Kind != recCLR {
			continue
		}
		op, _, _, err := decodeOpPayload(rec.Payload)
		if err != nil {
			return fmt.Errorf("tc %d: dc-redo decode @%d: %w", t.cfg.ID, rec.LSN, err)
		}
		opIdx, err := t.dcIndex(op.Table, op.Key)
		if err != nil {
			return fmt.Errorf("tc %d: dc-redo @%d: %w", t.cfg.ID, rec.LSN, err)
		}
		if opIdx != idx {
			continue
		}
		op.LSN = rec.LSN
		op.Epoch = t.Epoch()
		if res := h.svc.Perform(context.Background(), op); res.Code != base.CodeOK &&
			res.Code != base.CodeDuplicate && res.Code != base.CodeNotFound {
			return fmt.Errorf("tc %d: dc-redo @%d failed: %v", t.cfg.ID, rec.LSN, res.Code)
		}
		t.redoOps.Add(1)
	}
	t.broadcastWatermarks()
	return nil
}
