package tc

import (
	"context"
	"fmt"
	"time"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/stats"
)

// This file is the TC's operations plane: the drain/undrain quiesce
// protocol and the metrics registration consumed by the admin HTTP
// endpoint (internal/stats).

// Drain stops admitting new transactions: RunTxnOnce (and therefore
// every deployment-client attempt routed here) fails typed with
// base.ErrDraining, which is transient — clients re-route to another TC
// or retry after Undrain. In-flight transactions run to completion,
// including the pipelined commit's ack barrier; Quiesced reports when
// the last of them (and the last unacknowledged log record) has
// settled. Drain returns immediately — quiescing is observed, not
// awaited (WaitQuiesced does the waiting).
//
// Drain is an admission gate, not a shutdown: watermark broadcasts,
// checkpoints, snapshot-timestamp service for still-open snapshots, and
// recovery protocols all keep running, so a draining TC never stalls
// the rest of the fleet.
func (t *TC) Drain() { t.draining.Store(true) }

// Undrain resumes admitting transactions.
func (t *TC) Undrain() { t.draining.Store(false) }

// Draining reports whether the TC is refusing new transactions.
func (t *TC) Draining() bool { return t.draining.Load() }

// Quiesced reports whether a drain has fully settled: the TC is
// draining, no transaction is active, and the ack barrier is empty
// (every assigned LSN acknowledged, so nothing of this TC's is still in
// flight toward a DC).
func (t *TC) Quiesced() bool {
	return t.draining.Load() && t.ActiveTxns() == 0 && t.AckBarrierDepth() == 0
}

// WaitQuiesced blocks until Quiesced or ctx is done. Undraining while a
// waiter is parked makes it fail with ErrDraining=false semantics — the
// caller asked to observe a quiesce that was called off.
func (t *TC) WaitQuiesced(ctx context.Context) error {
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		if !t.Draining() {
			return fmt.Errorf("tc %d: drain called off while waiting for quiesce", t.cfg.ID)
		}
		if t.Quiesced() {
			return nil
		}
		select {
		case <-ctx.Done():
			return base.CancelErr(ctx)
		case <-tick.C:
		}
	}
}

// AckBarrierDepth returns the number of assigned LSNs not yet
// acknowledged — the depth of the pipelined commit barrier across all
// transactions. Zero means every operation the TC ever shipped (or
// logged locally) has settled.
func (t *TC) AckBarrierDepth() uint64 {
	last := t.log.LastLSN()
	lwm := t.acks.LWM()
	if last > lwm {
		return uint64(last - lwm)
	}
	return 0
}

// SafeTSLag returns how far the last-broadcast safe timestamp trails
// the TC's clock (in timestamp units, i.e. nanoseconds under the system
// clock). A growing lag means snapshot reads fleet-wide are waiting on
// this TC.
func (t *TC) SafeTSLag() uint64 {
	now, _ := t.clock.Now()
	t.tsMu.Lock()
	sent := t.maxSafeSent
	t.tsMu.Unlock()
	if now > sent {
		return uint64(now - sent)
	}
	return 0
}

// RegisterStats registers this TC's counters and derived gauges with a
// stats group. Every value is read at snapshot time from the TC's own
// atomics — registration adds nothing to any hot path.
func (t *TC) RegisterStats(g *stats.Group) {
	g.Func("txns_begun", t.begun.Load)
	g.Func("commits", t.commits.Load)
	g.Func("aborts", t.aborts.Load)
	g.Func("deadlock_aborts", t.deadlocks.Load)
	g.Func("retries", t.retries.Load)
	g.Func("drain_rejects", t.drainRejects.Load)
	g.Func("ops_sent", t.opsSent.Load)
	g.Func("probes", t.probes.Load)
	g.Func("checkpoints", t.checkpoints.Load)
	g.Func("redo_ops", t.redoOps.Load)
	g.Func("undo_ops", t.undoOps.Load)
	g.Func("snapshots", t.snapshots.Load)
	g.Func("active_txns", func() uint64 { return uint64(t.ActiveTxns()) })
	g.Func("ack_barrier_depth", t.AckBarrierDepth)
	g.Func("safe_ts_lag", t.SafeTSLag)
	g.Func("epoch", t.epoch.Load)
	g.Func("lwm", func() uint64 { return uint64(t.acks.LWM()) })
	g.Func("eosl", func() uint64 { return uint64(t.log.EOSL()) })
	g.Func("log_forces", func() uint64 { return t.log.Media().Forces() })
	// Forces skipped because a concurrent committer's fsync already
	// covered the tail — the group-commit win, counted.
	g.Func("log_forces_noop", func() uint64 { return t.log.Media().NoopForces() })
	g.Func("draining", func() uint64 {
		if t.draining.Load() {
			return 1
		}
		return 0
	})
}
