package tc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/dc"
)

// newPair wires one TC directly to one DC (in-process Service).
func newPair(t *testing.T, cfg Config) (*TC, *dc.DC) {
	t.Helper()
	d, err := dc.New(dc.Config{Name: "dc0", CheckConflicts: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, table := range []string{"t", "u"} {
		if err := d.CreateTable(table); err != nil {
			t.Fatal(err)
		}
	}
	if cfg.ID == 0 {
		cfg.ID = 1
	}
	tcx, err := New(cfg, []base.Service{d}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tcx.Close)
	return tcx, d
}

func TestCommitAndReadBack(t *testing.T) {
	tcx, _ := newPair(t, Config{})
	x := tcx.Begin(context.Background(), TxnOptions{})
	if err := x.Insert("t", "a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	// Own write visible before commit.
	if v, ok, _ := x.Read("t", "a"); !ok || string(v) != "1" {
		t.Fatalf("own read: %q %v", v, ok)
	}
	if err := x.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := x.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double commit: %v", err)
	}
	y := tcx.Begin(context.Background(), TxnOptions{})
	defer y.Abort()
	if v, ok, _ := y.Read("t", "a"); !ok || string(v) != "1" {
		t.Fatalf("next txn read: %q %v", v, ok)
	}
}

func TestWriteSemantics(t *testing.T) {
	tcx, _ := newPair(t, Config{})
	// Duplicate inserts and missing updates are detected before logging:
	// they surface as recoverable errors and do not poison the txn.
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		if err := x.Insert("t", "k", []byte("v1")); err != nil {
			return err
		}
		if err := x.Insert("t", "k", nil); !errors.Is(err, ErrDuplicate) {
			return fmt.Errorf("dup insert: %v", err)
		}
		if err := x.Update("t", "missing", nil); !errors.Is(err, ErrNotFound) {
			return fmt.Errorf("update missing: %v", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		if v, ok, _ := x.Read("t", "k"); !ok || string(v) != "v1" {
			return fmt.Errorf("first insert lost: %q %v", v, ok)
		}
		return x.Upsert("t", "k", []byte("v2"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		return x.Upsert("t", "k", []byte("v3"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		v, ok, err := x.Read("t", "k")
		if err != nil || !ok || string(v) != "v3" {
			return fmt.Errorf("read: %q %v %v", v, ok, err)
		}
		return x.Delete("t", "k")
	}); err != nil {
		t.Fatal(err)
	}
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		if _, ok, _ := x.Read("t", "k"); ok {
			return fmt.Errorf("key survived delete")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAbortRollsBack(t *testing.T) {
	tcx, _ := newPair(t, Config{})
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		return x.Insert("t", "base", []byte("committed"))
	}); err != nil {
		t.Fatal(err)
	}
	x := tcx.Begin(context.Background(), TxnOptions{})
	if err := x.Update("t", "base", []byte("scribble")); err != nil {
		t.Fatal(err)
	}
	if err := x.Insert("t", "tmp", []byte("temp")); err != nil {
		t.Fatal(err)
	}
	if err := x.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(y *Txn) error {
		if v, ok, _ := y.Read("t", "base"); !ok || string(v) != "committed" {
			return fmt.Errorf("update not rolled back: %q %v", v, ok)
		}
		if _, ok, _ := y.Read("t", "tmp"); ok {
			return fmt.Errorf("insert not rolled back")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if tcx.Stats().UndoOps != 2 {
		t.Fatalf("stats: %+v", tcx.Stats())
	}
}

func TestDeadlockRetry(t *testing.T) {
	tcx, _ := newPair(t, Config{})
	for _, k := range []string{"a", "b"} {
		if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
			return x.Insert("t", k, []byte("0"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	order := [][]string{{"a", "b"}, {"b", "a"}}
	start := make(chan struct{})
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			errs[i] = tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
				if err := x.Update("t", order[i][0], []byte("x")); err != nil {
					return err
				}
				time.Sleep(20 * time.Millisecond)
				return x.Update("t", order[i][1], []byte("x"))
			})
		}(i)
	}
	close(start)
	wg.Wait()
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("RunTxn retry failed: %v %v", errs[0], errs[1])
	}
	if tcx.Stats().DeadlockAborts == 0 {
		t.Fatal("expected at least one deadlock abort")
	}
}

func TestVersionedCommitAndAbort(t *testing.T) {
	tcx, d := newPair(t, Config{})
	if err := tcx.RunTxn(context.Background(), TxnOptions{Versioned: true}, func(x *Txn) error {
		return x.Insert("t", "v", []byte("v1"))
	}); err != nil {
		t.Fatal(err)
	}
	// Committed: read-committed observers (e.g. another TC) see v1.
	rc := func() *base.Result {
		return d.Perform(context.Background(), &base.Op{TC: 9, Kind: base.OpRead, Table: "t", Key: "v",
			Flavor: base.ReadCommitted})
	}
	if r := rc(); !r.Found || string(r.Value) != "v1" {
		t.Fatalf("committed read: %+v", r)
	}
	// In-flight update: observers still see v1 until commit.
	x := tcx.Begin(context.Background(), TxnOptions{Versioned: true})
	if err := x.Update("t", "v", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if r := rc(); string(r.Value) != "v1" {
		t.Fatalf("before-version not served: %+v", r)
	}
	if err := x.Commit(); err != nil {
		t.Fatal(err)
	}
	if r := rc(); string(r.Value) != "v2" {
		t.Fatalf("after commit: %+v", r)
	}
	// Aborted versioned update disappears entirely.
	y := tcx.Begin(context.Background(), TxnOptions{Versioned: true})
	if err := y.Update("t", "v", []byte("v3")); err != nil {
		t.Fatal(err)
	}
	y.Abort()
	if r := rc(); string(r.Value) != "v2" {
		t.Fatalf("after abort: %+v", r)
	}
}

func TestScanBothProtocols(t *testing.T) {
	for _, proto := range []RangeProtocol{FetchAhead, StaticRange} {
		t.Run(proto.String(), func(t *testing.T) {
			tcx, _ := newPair(t, Config{Protocol: proto})
			if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
				for i := 0; i < 30; i++ {
					if err := x.Insert("t", fmt.Sprintf("k%03d", i), []byte("v")); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
				keys, vals, err := x.Scan("t", "k010", "k020", 0)
				if err != nil {
					return err
				}
				if len(keys) != 10 || len(vals) != 10 || keys[0] != "k010" || keys[9] != "k019" {
					return fmt.Errorf("scan = %v", keys)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestScanBlocksConflictingWriter(t *testing.T) {
	// Both protocols must prevent a concurrent writer from changing the
	// scanned range until the scanner finishes (serializability of the
	// scanned keys).
	for _, proto := range []RangeProtocol{FetchAhead, StaticRange} {
		t.Run(proto.String(), func(t *testing.T) {
			tcx, _ := newPair(t, Config{Protocol: proto})
			if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
				for i := 0; i < 10; i++ {
					if err := x.Insert("t", fmt.Sprintf("k%03d", i), []byte("v")); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			x := tcx.Begin(context.Background(), TxnOptions{})
			keys, _, err := x.Scan("t", "k000", "k009", 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(keys) != 9 {
				t.Fatalf("scan = %v", keys)
			}
			// A writer to a scanned key must block until the scan txn ends.
			done := make(chan error, 1)
			go func() {
				done <- tcx.RunTxn(context.Background(), TxnOptions{}, func(y *Txn) error {
					return y.Update("t", "k005", []byte("w"))
				})
			}()
			select {
			case err := <-done:
				t.Fatalf("writer not blocked by scan locks: %v", err)
			case <-time.After(30 * time.Millisecond):
			}
			x.Commit()
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTCCrashRecovery(t *testing.T) {
	tcx, d := newPair(t, Config{})
	// Committed work (forced).
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		return x.Insert("t", "committed", []byte("keep"))
	}); err != nil {
		t.Fatal(err)
	}
	// A loser: applied at the DC but never committed; log tail unforced.
	loser := tcx.Begin(context.Background(), TxnOptions{})
	if err := loser.Insert("t", "loser", []byte("drop")); err != nil {
		t.Fatal(err)
	}
	if err := loser.Update("t", "committed", []byte("scribble")); err != nil {
		t.Fatal(err)
	}
	// DC currently reflects the loser's writes.
	if r := d.Perform(context.Background(), &base.Op{TC: 9, Kind: base.OpRead, Table: "t", Key: "loser", Flavor: base.ReadDirty}); !r.Found {
		t.Fatalf("precondition: %+v", r)
	}

	tcx.Crash()
	if err := tcx.Recover(); err != nil {
		t.Fatal(err)
	}
	// Committed data intact, loser gone (either via DC reset of unforced
	// ops or logical undo of forced-but-uncommitted ones).
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		if v, ok, _ := x.Read("t", "committed"); !ok || string(v) != "keep" {
			return fmt.Errorf("committed data wrong: %q %v", v, ok)
		}
		if _, ok, _ := x.Read("t", "loser"); ok {
			return fmt.Errorf("loser survived")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// The TC is fully usable after restart.
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		return x.Insert("t", "after", []byte("ok"))
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTCCrashMidUndoUsesCLRs(t *testing.T) {
	tcx, _ := newPair(t, Config{})
	// Forced loser: ops stable, commit record absent -> restart must undo
	// via inverse operations (the §4.1.1(2b) path, not the cache reset).
	x := tcx.Begin(context.Background(), TxnOptions{})
	if err := x.Insert("t", "a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := x.Insert("t", "b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	tcx.Log().Force() // ops stable; no commit record
	tcx.Crash()
	if err := tcx.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(y *Txn) error {
		if _, ok, _ := y.Read("t", "a"); ok {
			return fmt.Errorf("loser op a survived")
		}
		if _, ok, _ := y.Read("t", "b"); ok {
			return fmt.Errorf("loser op b survived")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if tcx.Stats().UndoOps == 0 {
		t.Fatal("expected restart undo")
	}
	// Crash again right away: CLRs must prevent double-undo (second
	// recovery sees CLRs and does nothing harmful).
	tcx.Crash()
	if err := tcx.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(y *Txn) error {
		if _, ok, _ := y.Read("t", "a"); ok {
			return fmt.Errorf("a resurrected after double recovery")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDCCrashRecoveryViaResend(t *testing.T) {
	tcx, d := newPair(t, Config{})
	for i := 0; i < 50; i++ {
		if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
			return x.Insert("t", fmt.Sprintf("k%03d", i), []byte("v"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	d.Crash()
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := tcx.RecoverDC(0); err != nil {
		t.Fatal(err)
	}
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		for i := 0; i < 50; i++ {
			if _, ok, _ := x.Read("t", fmt.Sprintf("k%03d", i)); !ok {
				return fmt.Errorf("key %d lost in DC crash", i)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if tcx.Stats().RedoOps == 0 {
		t.Fatal("expected redo resends")
	}
}

func TestCheckpointAdvancesAndBoundsRedo(t *testing.T) {
	tcx, d := newPair(t, Config{})
	for i := 0; i < 40; i++ {
		if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
			return x.Insert("t", fmt.Sprintf("k%03d", i), []byte("v"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	rssp, err := tcx.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rssp <= 1 {
		t.Fatalf("rssp = %d", rssp)
	}
	if tcx.Log().StartLSN() == 1 {
		t.Fatal("log not truncated by checkpoint")
	}
	// After a checkpoint, a DC crash needs only the redo suffix.
	before := tcx.Stats().RedoOps
	d.Crash()
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := tcx.RecoverDC(0); err != nil {
		t.Fatal(err)
	}
	if got := tcx.Stats().RedoOps - before; got != 0 {
		t.Fatalf("redo after full checkpoint should be empty, resent %d", got)
	}
	// Data nevertheless intact (checkpoint made it stable at the DC).
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		for i := 0; i < 40; i++ {
			if _, ok, _ := x.Read("t", fmt.Sprintf("k%03d", i)); !ok {
				return fmt.Errorf("key %d lost", i)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointAdvancesPastLocalRecords(t *testing.T) {
	// Abort and checkpoint records consume LSNs with no DC round trip;
	// they must feed the ack tracker like commit records do, or the first
	// abort (or checkpoint) freezes the low-water mark and the RSSP can
	// never advance again.
	tcx, _ := newPair(t, Config{})
	x := tcx.Begin(context.Background(), TxnOptions{})
	if err := x.Insert("t", "doomed", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := x.Abort(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
			return x.Insert("t", fmt.Sprintf("k%d", i), []byte("v"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	r1, err := tcx.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r1 <= 1 {
		t.Fatalf("rssp stuck at %d after abort", r1)
	}
	// A second round: the checkpoint record itself must not pin the LWM.
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		return x.Insert("t", "more", []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}
	r2, err := tcx.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r2 <= r1 {
		t.Fatalf("rssp did not advance past checkpoint record: %d -> %d", r1, r2)
	}
}

func TestBothCrash(t *testing.T) {
	tcx, d := newPair(t, Config{})
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		return x.Insert("t", "survivor", []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}
	loser := tcx.Begin(context.Background(), TxnOptions{})
	loser.Insert("t", "ghost", []byte("x"))

	// Complete failure of both components (§5.3.2: "returns us to the
	// current fail-together situation").
	tcx.Crash()
	d.Crash()
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := tcx.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		if _, ok, _ := x.Read("t", "survivor"); !ok {
			return fmt.Errorf("committed data lost")
		}
		if _, ok, _ := x.Read("t", "ghost"); ok {
			return fmt.Errorf("uncommitted data survived")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestNoConflictInvariantHolds(t *testing.T) {
	// Run concurrent conflicting transactions; the DC-side checker must
	// stay at zero violations because 2PL serializes the sends.
	tcx, d := newPair(t, Config{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("hot%d", i%5)
				_ = tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
					return x.Upsert("t", key, []byte(fmt.Sprintf("g%d", g)))
				})
			}
		}(g)
	}
	wg.Wait()
	if v := d.Stats().ConflictViols; v != 0 {
		t.Fatalf("conflicting concurrent operations reached the DC: %d", v)
	}
}

func TestPayloadRoundTrips(t *testing.T) {
	op := &base.Op{TC: 3, LSN: 77, Kind: base.OpUpdate, Table: "t", Key: "k",
		Value: []byte("new"), Versioned: true}
	buf := encodeOpPayload(op, []byte("old"), true)
	if op.LSN != 77 {
		t.Fatal("encode must restore the op LSN")
	}
	got, prior, pf, err := decodeOpPayload(buf)
	if err != nil || string(prior) != "old" || !pf {
		t.Fatalf("decode: %v %q %v", err, prior, pf)
	}
	op.LSN = 0 // payload zeroes it
	if !reflect.DeepEqual(op, got) {
		t.Fatalf("op mismatch: %+v vs %+v", op, got)
	}

	keys := []tableKey{{"a", "k1"}, {"b", "k2"}}
	dk, cts, err := decodeCommit(encodeCommit(keys, 909))
	if err != nil || cts != 909 || !reflect.DeepEqual(keys, dk) {
		t.Fatalf("commit payload: %v %v %v", err, cts, dk)
	}
	empty, cts, err := decodeCommit(encodeCommit(nil, 0))
	if err != nil || cts != 0 || len(empty) != 0 {
		t.Fatalf("empty commit payload: %v %v %v", err, cts, empty)
	}
	// Pre-timestamp commit payloads (no trailing varint) still decode.
	dk, cts, err = decodeCommit(encodeCommit(keys, 0))
	if err != nil || cts != 0 || !reflect.DeepEqual(keys, dk) {
		t.Fatalf("legacy commit payload: %v %v %v", err, cts, dk)
	}

	r, e, err := decodeCheckpoint(encodeCheckpoint(12345, 7))
	if err != nil || r != 12345 || e != 7 {
		t.Fatalf("checkpoint payload: %v %v %v", err, r, e)
	}
	// Pre-epoch checkpoint payloads (bare RSSP varint) still decode.
	r, e, err = decodeCheckpoint(binary.AppendUvarint(nil, 999))
	if err != nil || r != 999 || e != 0 {
		t.Fatalf("legacy checkpoint payload: %v %v %v", err, r, e)
	}

	ep, err := decodeEpoch(encodeEpoch(42))
	if err != nil || ep != 42 {
		t.Fatalf("epoch payload: %v %v", err, ep)
	}
}

func TestAckTracker(t *testing.T) {
	a := newAckTracker()
	a.Complete(2)
	if a.LWM() != 0 {
		t.Fatal("gap not respected")
	}
	a.Complete(1)
	if a.LWM() != 2 {
		t.Fatalf("lwm = %d", a.LWM())
	}
	a.Complete(4)
	a.Complete(3)
	if a.LWM() != 4 {
		t.Fatalf("lwm = %d", a.LWM())
	}
	a.Reset(10)
	if a.LWM() != 10 {
		t.Fatal("reset failed")
	}
	a.Complete(11)
	if a.LWM() != 11 {
		t.Fatal("post-reset completion failed")
	}
}

func TestInverseOp(t *testing.T) {
	mk := func(kind base.OpKind, versioned bool) *base.Op {
		return &base.Op{TC: 1, Kind: kind, Table: "t", Key: "k", Value: []byte("new"), Versioned: versioned}
	}
	if inv := inverseOp(mk(base.OpInsert, false), nil, false); inv.Kind != base.OpDelete {
		t.Fatalf("insert inverse: %v", inv)
	}
	if inv := inverseOp(mk(base.OpUpdate, false), []byte("old"), true); inv.Kind != base.OpUpdate || string(inv.Value) != "old" {
		t.Fatalf("update inverse: %v", inv)
	}
	if inv := inverseOp(mk(base.OpDelete, false), []byte("old"), true); inv.Kind != base.OpInsert || string(inv.Value) != "old" {
		t.Fatalf("delete inverse: %v", inv)
	}
	if inv := inverseOp(mk(base.OpUpsert, false), nil, false); inv.Kind != base.OpDelete {
		t.Fatalf("upsert-new inverse: %v", inv)
	}
	if inv := inverseOp(mk(base.OpUpsert, false), []byte("old"), true); inv.Kind != base.OpUpdate {
		t.Fatalf("upsert-old inverse: %v", inv)
	}
	for _, k := range []base.OpKind{base.OpInsert, base.OpUpdate, base.OpDelete} {
		if inv := inverseOp(mk(k, true), nil, false); inv.Kind != base.OpAbortVersions {
			t.Fatalf("versioned %v inverse: %v", k, inv)
		}
	}
	if inv := inverseOp(mk(base.OpCommitVersions, false), nil, false); inv != nil {
		t.Fatalf("finalize inverse must be nil: %v", inv)
	}
}

// TestCrashFailsBlockedLockWaiters: a transaction blocked in a lock wait
// when the TC crashes must fail out promptly with a transient error (the
// lock table it was queued in vanished with the incarnation) instead of
// sleeping forever, and it must NOT run its own rollback — restart owns
// the undo of everything the dead incarnation logged. Regression test
// for the hang moviesim -crash used to hit.
func TestCrashFailsBlockedLockWaiters(t *testing.T) {
	tcx, _ := newPair(t, Config{})
	ctx := context.Background()

	holder := tcx.Begin(ctx, TxnOptions{})
	if err := holder.Update("t", "contended", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("setup: %v", err)
	}
	if err := holder.Insert("t", "contended", []byte("v")); err != nil {
		t.Fatal(err)
	}

	waiterErr := make(chan error, 1)
	go func() {
		x := tcx.Begin(ctx, TxnOptions{})
		if err := x.Insert("t", "unrelated", []byte("w")); err != nil {
			waiterErr <- err
			return
		}
		waiterErr <- x.Update("t", "contended", []byte("w")) // blocks on holder's X lock
	}()
	for i := 0; tcx.Locks().Stats().Waited == 0; i++ {
		if i > 2000 {
			t.Fatal("waiter never blocked")
		}
		time.Sleep(time.Millisecond)
	}

	redoBefore := tcx.Stats().UndoOps
	tcx.Crash()
	select {
	case err := <-waiterErr:
		if !errors.Is(err, base.ErrUnavailable) {
			t.Fatalf("orphaned waiter = %v, want a transient ErrUnavailable", err)
		}
		if !base.IsTransient(err) {
			t.Fatalf("orphaned waiter error %v must be transient (a retry lands on the recovered TC)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lock waiter still blocked after TC crash (the moviesim hang)")
	}
	// The orphan did not roll itself back: no inverse operations were sent
	// by anyone between crash and recovery.
	if undos := tcx.Stats().UndoOps; undos != redoBefore {
		t.Fatalf("orphaned waiter ran undo (%d -> %d undo ops)", redoBefore, undos)
	}
	if err := tcx.Recover(); err != nil {
		t.Fatal(err)
	}
	// The recovered incarnation serves normally.
	if err := tcx.RunTxnOnce(ctx, TxnOptions{}, func(x *Txn) error {
		return x.Upsert("t", "contended", []byte("after"))
	}); err != nil {
		t.Fatal(err)
	}
}
