// Package tc implements the Transactional Component (§4.1.1): the purely
// logical half of the unbundled kernel. It performs transactional locking
// (never on pages — it has no idea pages exist), logical undo/redo logging
// in OPSR order, log forcing for durability, operation resend bookkeeping,
// checkpoint negotiation (redo-scan-start-point advancement), and restart.
//
// The TC acts as a client to one or more DCs through base.Service. Its log
// sequence numbers double as unique operation request IDs (§4.2); reads
// consume LSNs without log records. Strict two-phase locking acquired
// *before* an operation is sent guarantees the DC never sees conflicting
// operations concurrently, which in turn makes the TC-log's LSN order an
// order-preserving serialization of the logical operation history.
//
// With Config.Pipeline, logged writes ship asynchronously through per-DC
// pipelines (see pipeline.go): the transaction continues as soon as the op
// record is appended, and its commit barriers on the outstanding acks
// before releasing locks.
package tc

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/clock"
	"github.com/cidr09/unbundled/internal/lockmgr"
	"github.com/cidr09/unbundled/internal/placement"
	"github.com/cidr09/unbundled/internal/storage"
	"github.com/cidr09/unbundled/internal/wal"
)

// defaultClock is shared by every TC built without Config.Clock, so
// commit timestamps drawn by co-located TCs are mutually monotonic (the
// System clock forces readings non-decreasing across callers).
var defaultClock clock.Clock = &clock.System{}

// TC-log record kinds.
const (
	recOp         uint8 = iota + 1 // forward logical operation (+ undo info)
	recCLR                         // compensation: inverse logical operation
	recCommit                      // transaction commit (+ versioned write set)
	recAbort                       // transaction abort complete
	recCheckpoint                  // redo scan start point advanced (+ epoch)
	recEpoch                       // incarnation epoch minted at (re)start
)

// RangeProtocol selects the §3.1 range-locking strategy.
type RangeProtocol uint8

const (
	// FetchAhead probes the DC for upcoming keys, locks them, reads, and
	// re-probes if the read surfaces different keys (§3.1).
	FetchAhead RangeProtocol = iota
	// StaticRange locks buckets of a static partition of the key space;
	// single-key operations lock their bucket too. Fewer locks, less
	// concurrency (§3.1).
	StaticRange
)

func (r RangeProtocol) String() string {
	if r == StaticRange {
		return "static-range"
	}
	return "fetch-ahead"
}

// Config shapes a TC.
type Config struct {
	// ID is this TC's identity; a DC tracks abstract LSNs per TC ID.
	ID base.TCID
	// LockTimeout bounds lock waits (0: wait forever, deadlock detection
	// still applies).
	LockTimeout time.Duration
	// Protocol selects the range-locking strategy.
	Protocol RangeProtocol
	// RangeBuckets sizes the static partitions (default 16).
	RangeBuckets int
	// ProbeWidth is the fetch-ahead batch size (default 32).
	ProbeWidth int
	// WatermarkInterval is the period of the EOSL/LWM re-broadcast
	// (default 1ms; also sent opportunistically after commits).
	WatermarkInterval time.Duration
	// ForceDelay simulates stable-log force latency (group commit).
	ForceDelay time.Duration
	// Pipeline ships logged writes asynchronously: Insert/Update/Upsert/
	// Delete append their op record, post the op into the per-DC pipeline,
	// and return without waiting for the DC reply. Commit overlaps the
	// commit-record force with draining the transaction's outstanding acks
	// and releases locks only after both complete, so strict 2PL semantics
	// are preserved while transaction latency drops from ops x RTT to
	// roughly one RTT per batch.
	Pipeline bool
	// MaxBatch caps the operations coalesced into one shipped batch
	// message (default 64).
	MaxBatch int
	// Clock is the timestamp source for commit timestamps and snapshot
	// reads (default: a process-wide monotonic clock.System with zero
	// uncertainty). Deployments spanning machines install a clock whose
	// Uncertainty bounds real inter-machine skew; tests install a
	// clock.Fake.
	Clock clock.Clock
	// SnapshotRetention bounds how far into the past a bounded-staleness
	// snapshot may read, and therefore how long DCs keep superseded
	// versions before the GC horizon releases them (default 10s).
	SnapshotRetention time.Duration
	// Dir, when nonempty, backs the TC-log with a file in that directory
	// (storage.OpenLogStoreFile): forced records survive process death.
	// When the directory already holds a previous incarnation's log, New
	// returns the TC in the needs-recovery state — Recover must run (and
	// reach the DCs) before the TC serves transactions; core runs it
	// automatically for in-process deployments, and cmd/unbundled-tc
	// after its DC connections are up. Empty keeps the in-memory
	// simulated stable log, which dies with the process.
	Dir string
}

func (c Config) withDefaults() Config {
	if c.RangeBuckets <= 0 {
		c.RangeBuckets = 16
	}
	if c.ProbeWidth <= 0 {
		c.ProbeWidth = 32
	}
	if c.WatermarkInterval <= 0 {
		c.WatermarkInterval = time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.Clock == nil {
		c.Clock = defaultClock
	}
	if c.SnapshotRetention <= 0 {
		c.SnapshotRetention = 10 * time.Second
	}
	return c
}

// Stats counts TC activity.
type Stats struct {
	Commits        uint64
	Aborts         uint64
	DeadlockAborts uint64
	OpsSent        uint64
	Probes         uint64
	Checkpoints    uint64
	RedoOps        uint64
	UndoOps        uint64
	// Snapshots counts snapshot transactions begun at this TC. Their
	// reads bypass the lock manager, the TC-log, and OpsSent entirely —
	// the TC's only involvement is handing out the read timestamp.
	Snapshots uint64
}

// dcHandle wraps one DC connection with the recovery gate: while the DC is
// being redone after its crash, new operations hold off (in-flight resends
// of old operations are harmless — they are part of the redo stream). The
// gate is a channel so waiters can also honor context cancellation.
type dcHandle struct {
	svc        base.Service
	mu         sync.Mutex
	recovering bool
	ready      chan struct{} // closed whenever not recovering
}

func newDCHandle(svc base.Service) *dcHandle {
	ready := make(chan struct{})
	close(ready)
	return &dcHandle{svc: svc, ready: ready}
}

// waitReady blocks until the DC is out of recovery or ctx is done.
func (h *dcHandle) waitReady(ctx context.Context) error {
	h.mu.Lock()
	ch := h.ready
	h.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return base.CancelErr(ctx)
	}
}

func (h *dcHandle) setRecovering(v bool) {
	h.mu.Lock()
	if v != h.recovering {
		h.recovering = v
		if v {
			h.ready = make(chan struct{})
		} else {
			close(h.ready)
		}
	}
	h.mu.Unlock()
}

// TC is one transactional component instance.
type TC struct {
	cfg    Config
	lmedia *storage.LogStore
	log    *wal.Log
	locks  *lockmgr.Manager
	dcs    []*dcHandle
	router placement.Router
	clock  clock.Clock

	mu         sync.Mutex
	down       bool
	txns       map[base.TxnID]*Txn
	nextTxn    uint64
	rssp       base.LSN
	partitions map[string]lockmgr.Partition

	// tsMu guards the commit-timestamp / safe-timestamp state of the
	// closed-timestamp protocol: a commit timestamp is assigned strictly
	// above every safe timestamp ever broadcast, and a safe timestamp is
	// broadcast strictly below every assigned-but-not-yet-finalized commit
	// timestamp, so "safe >= T" at a DC really does mean no future commit
	// of this TC can become visible at or below T.
	tsMu        sync.Mutex
	lastCommit  base.TS              // highest commit timestamp assigned
	maxSafeSent base.TS              // highest safe timestamp broadcast
	commitOut   map[base.TS]struct{} // assigned, finalize not yet acked
	activeSnaps map[base.TS]int      // registered snapshot read timestamps

	acks *ackTracker

	// pipes are the per-DC shipping pipelines (nil unless cfg.Pipeline).
	pipes []*pipeline

	// epoch is the durable incarnation number: minted strictly larger on
	// every (re)start and forced into the log *before* it is stamped on any
	// operation, so no two incarnations — however they crash — ever share
	// one. Every operation carries its incarnation's stamp (op.Epoch, set
	// before the LSN is assigned), which serves as the TC-side generation
	// fence for both the sync and pipelined paths — calls in flight across
	// a crash cannot feed the reset ack tracker — and as the DC-side fence
	// installed by BeginRestart that refuses requests of dead incarnations
	// still on the wire (CodeStaleEpoch).
	epoch atomic.Uint64

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup

	commits, aborts, deadlocks, opsSent   atomic.Uint64
	probes, checkpoints, redoOps, undoOps atomic.Uint64
	snapshots                             atomic.Uint64
	lastEOSL                              atomic.Uint64
	broadcastGen                          atomic.Uint64
	begun, retries, drainRejects          atomic.Uint64

	// draining is the operations-plane admission gate (see Drain in
	// admin.go): while set, RunTxnOnce refuses new transactions typed
	// with base.ErrDraining; everything already admitted runs to
	// completion. Not persisted — a restarted process comes back serving.
	draining atomic.Bool
}

// New builds a TC over the given DC connections. router resolves data
// placement ((table, key) to an index into dcs) and §6.1 update
// ownership; it must be deterministic and stable across restarts, since
// restart redo uses it to re-deliver logged operations. A nil router
// places everything on DC 0 with no ownership partition.
//
// With Config.Dir naming a directory a previous incarnation logged into,
// the TC comes back in the needs-recovery state (NeedsRecovery reports
// true) and must run Recover — the ordinary §5.3.2 restart over the
// reopened stable log — before serving transactions.
func New(cfg Config, dcs []base.Service, router placement.Router) (*TC, error) {
	cfg = cfg.withDefaults()
	if cfg.ID == 0 {
		return nil, errors.New("tc: ID must be nonzero")
	}
	if len(dcs) == 0 {
		return nil, errors.New("tc: need at least one DC")
	}
	if router == nil {
		router = placement.MustParse("*: dc=0")
	}
	var lmedia *storage.LogStore
	if cfg.Dir != "" {
		var err error
		if lmedia, err = storage.OpenLogStoreFile(filepath.Join(cfg.Dir, "tclog")); err != nil {
			return nil, fmt.Errorf("tc %d: open tc-log: %w", cfg.ID, err)
		}
	} else {
		lmedia = storage.NewLogStore()
	}
	lmedia.ForceDelay = cfg.ForceDelay
	log, err := wal.New(lmedia)
	if err != nil {
		return nil, err
	}
	t := &TC{
		cfg:         cfg,
		lmedia:      lmedia,
		log:         log,
		locks:       lockmgr.New(),
		router:      router,
		clock:       cfg.Clock,
		txns:        make(map[base.TxnID]*Txn),
		partitions:  make(map[string]lockmgr.Partition),
		acks:        newAckTracker(),
		stopCh:      make(chan struct{}),
		rssp:        1,
		commitOut:   make(map[base.TS]struct{}),
		activeSnaps: make(map[base.TS]int),
	}
	t.locks.Timeout = cfg.LockTimeout
	if log.LastLSN() > 0 {
		// The reopened media holds a previous incarnation's log: a process
		// death is a TC crash whose stable log happens to be on disk.
		// Restart must run the full §5.3.2 protocol — analysis, DC reset
		// under a freshly minted epoch, redo, loser undo — which needs the
		// DCs reachable, so the TC starts down and the caller (or core's
		// deployment assembly) runs Recover.
		t.down = true
	} else {
		// Mint incarnation epoch 1 and force it before any operation can be
		// stamped with it: a crash before this force would otherwise let a
		// second incarnation mint the same epoch (the log would look empty),
		// and the DC fence cannot tell two same-numbered incarnations apart.
		t.epoch.Store(1)
		eLSN := t.log.AppendAssign(&wal.Record{Kind: recEpoch, Payload: encodeEpoch(1)})
		t.acks.Complete(eLSN) // local record: no DC round trip
		t.log.ForceTo(eLSN)
	}
	for _, svc := range dcs {
		t.dcs = append(t.dcs, newDCHandle(svc))
	}
	if cfg.Pipeline {
		// Workers exit on Close but are not waited for: one can be blocked
		// inside a wire call that only unblocks when the deployment closes
		// the client stubs afterwards.
		for _, h := range t.dcs {
			p := newPipeline(t, h)
			t.pipes = append(t.pipes, p)
			go p.run()
		}
	}
	t.wg.Add(1)
	go t.watermarkLoop()
	return t, nil
}

// ID returns the TC's identity.
func (t *TC) ID() base.TCID { return t.cfg.ID }

// Epoch returns the current incarnation epoch (1 for the first
// incarnation; strictly increasing across restarts).
func (t *TC) Epoch() base.Epoch { return base.Epoch(t.epoch.Load()) }

// Log exposes the TC-log (experiments measure log volume and forces).
func (t *TC) Log() *wal.Log { return t.log }

// Locks exposes the lock manager (experiment E4 reads its stats).
func (t *TC) Locks() *lockmgr.Manager { return t.locks }

// RSSP returns the current redo scan start point.
func (t *TC) RSSP() base.LSN {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rssp
}

// NeedsRecovery reports whether the TC was built over a previous
// incarnation's log (Config.Dir) and has not yet run Recover: it is down
// until the §5.3.2 restart protocol completes against its DCs.
func (t *TC) NeedsRecovery() bool { return t.isDown() }

// Owner exposes the router's §6.1 ownership axis (0: unowned).
func (t *TC) Owner(table, key string) (base.TCID, error) {
	return t.router.Owner(table, key)
}

// dcIndex resolves the data placement of (table, key) to an index into
// the TC's DC connections, failing typed on tables the placement does not
// cover (base.ErrUnknownTable) and loudly on indices the deployment does
// not have (a misdeclared spec; deployments validate at build time).
func (t *TC) dcIndex(table, key string) (int, error) {
	idx, err := t.router.DC(table, key)
	if err != nil {
		return 0, fmt.Errorf("tc %d: %w", t.cfg.ID, err)
	}
	if idx < 0 || idx >= len(t.dcs) {
		return 0, fmt.Errorf("tc %d: placement puts %s/%q on DC %d of a %d-DC deployment",
			t.cfg.ID, table, key, idx, len(t.dcs))
	}
	return idx, nil
}

// ActiveTxns returns the number of transactions currently executing at
// this TC; the deployment client uses it as the least-inflight routing
// signal.
func (t *TC) ActiveTxns() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.txns)
}

// Partition returns the static range partition for table, creating a
// uniform one on first use.
func (t *TC) Partition(table string) lockmgr.Partition {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.partitions[table]
	if !ok {
		p = lockmgr.UniformBytePartition(t.cfg.RangeBuckets)
		t.partitions[table] = p
	}
	return p
}

// SetPartition overrides the static range partition for a table (workloads
// with known key shapes install split points matching their key space).
func (t *TC) SetPartition(table string, p lockmgr.Partition) {
	t.mu.Lock()
	t.partitions[table] = p
	t.mu.Unlock()
}

// Close stops background work (the TC stays usable for reads of state).
// Queued pipelined operations fail with ErrTCStopped so their commit
// barriers unblock; an operation already inside a wire call against a
// down DC unblocks only once that client stub is closed too — close the
// TC first and then the stubs, as core.Deployment.Close does.
func (t *TC) Close() {
	t.stopOnce.Do(func() { close(t.stopCh) })
	for _, p := range t.pipes {
		p.close()
	}
	t.wg.Wait()
}

// watermarkLoop re-broadcasts end_of_stable_log and low_water_mark to all
// DCs (§4.2.1). The messages are fire-and-forget on a lossy network, so
// they are refreshed periodically.
func (t *TC) watermarkLoop() {
	defer t.wg.Done()
	tick := time.NewTicker(t.cfg.WatermarkInterval)
	defer tick.Stop()
	for {
		select {
		case <-t.stopCh:
			return
		case <-tick.C:
			if t.isDown() {
				continue
			}
			t.broadcastWatermarks()
		}
	}
}

func (t *TC) broadcastWatermarks() {
	eosl := t.log.EOSL()
	lwm := t.acks.LWM()
	epoch := t.Epoch()
	safe, horizon := t.safeTS()
	for _, h := range t.dcs {
		h.svc.EndOfStableLog(t.cfg.ID, epoch, eosl)
		h.svc.LowWaterMark(t.cfg.ID, epoch, lwm)
		h.svc.SafeTS(t.cfg.ID, epoch, safe, horizon)
	}
	t.broadcastGen.Add(1)
}

// assignCommitTS draws a commit timestamp: the clock reading, pushed
// above both the previous commit and everything already promised safe to
// the DCs. The timestamp stays registered in commitOut — holding the safe
// timestamp below it — until the transaction's commit-versions finalize
// operations are acknowledged (Txn.finish).
func (t *TC) assignCommitTS() base.TS {
	now, _ := t.clock.Now()
	t.tsMu.Lock()
	ts := now
	if ts <= t.lastCommit {
		ts = t.lastCommit + 1
	}
	if ts <= t.maxSafeSent {
		ts = t.maxSafeSent + 1
	}
	t.lastCommit = ts
	t.commitOut[ts] = struct{}{}
	t.tsMu.Unlock()
	return ts
}

// safeTS computes the closed-timestamp pair broadcast to the DCs.
//
// safe is the promise "no commit of this TC will ever become visible at
// or below safe from now on": the clock reading (an idle TC's safe tracks
// real time, so fresh snapshots wait at most one broadcast tick), clamped
// below every assigned-but-unfinalized commit timestamp, and never
// retreating. assignCommitTS keeps the promise forward by assigning
// strictly above maxSafeSent.
//
// horizon is the version-GC watermark: versions invisible at every
// timestamp above it may be pruned. It trails the clock by
// SnapshotRetention and never passes a registered snapshot; zero means
// "no constraint known — do not prune".
func (t *TC) safeTS() (safe, horizon base.TS) {
	now, _ := t.clock.Now()
	t.tsMu.Lock()
	safe = now
	if t.lastCommit > safe {
		safe = t.lastCommit
	}
	for ts := range t.commitOut {
		if ts-1 < safe {
			safe = ts - 1
		}
	}
	if safe < t.maxSafeSent {
		// Invariant: outstanding commit timestamps are strictly above
		// maxSafeSent, so the clamp never undoes an earlier promise.
		safe = t.maxSafeSent
	}
	t.maxSafeSent = safe
	if ret := base.TS(t.cfg.SnapshotRetention); now > ret {
		horizon = now - ret
	}
	for ts := range t.activeSnaps {
		if ts < horizon {
			horizon = ts
		}
	}
	t.tsMu.Unlock()
	return safe, horizon
}

func (t *TC) isDown() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.down
}

// performOn sends one operation to the resolved DC handle, waiting for
// the reply, and feeds the ack tracker (the source of low-water marks).
// Callers resolve the handle with dcIndex *before* the op's LSN is
// assigned, so an unroutable operation is never logged. Like the pipeline's
// complete, the ack is epoch-fenced: a zombie call whose reply lands after
// a Crash+Recover carries a dead incarnation's stamp and must not complete
// an LSN the new incarnation is reusing (the lsn <= lwm guard in the
// tracker only covers the at-or-below-reset-base half of that race). Ops
// not yet stamped (reads and probes, whose LSNs carry no log record) are
// stamped here; logged writes stamp before their LSN is assigned. A
// CodeStaleEpoch reply means the op never executed, so its LSN must not
// complete either.
//
// Cancellation: only read-flavored operations ever arrive with a
// cancellable ctx — logged writes ship under context.WithoutCancel because
// their delivery contract must run to completion. An abandoned read still
// completes its LSN: reads mutate nothing and are never reflected in
// cached pages, so the low-water mark may pass them, and not completing
// would leave a permanent gap that stalls checkpoints.
func (t *TC) performOn(ctx context.Context, h *dcHandle, op *base.Op) *base.Result {
	if op.Epoch == 0 {
		op.Epoch = t.Epoch()
	}
	res := &base.Result{LSN: op.LSN, Code: base.CodeCancelled}
	if err := h.waitReady(ctx); err == nil {
		t.opsSent.Add(1)
		res = h.svc.Perform(ctx, op)
	}
	if op.Epoch == t.Epoch() && res.Code != base.CodeStaleEpoch {
		t.acks.Complete(op.LSN)
	}
	return res
}

// Checkpoint advances the redo scan start point (§4.2.1 checkpoint,
// "contract termination"): force the log, ask every DC to make stable all
// pages containing operations below the proposed point, then advance and
// truncate. Returns the new RSSP. ctx bounds the per-DC control calls.
func (t *TC) Checkpoint(ctx context.Context) (base.LSN, error) {
	if t.isDown() {
		return 0, fmt.Errorf("tc: down: %w", base.ErrUnavailable)
	}
	// Everything acknowledged so far is a candidate.
	newRSSP := t.acks.LWM() + 1
	t.mu.Lock()
	if newRSSP <= t.rssp {
		cur := t.rssp
		t.mu.Unlock()
		return cur, nil
	}
	t.mu.Unlock()
	// The DC flush gates require log stability through the checkpointed
	// operations (causality).
	t.log.Force()
	t.broadcastWatermarks()
	for _, h := range t.dcs {
		if err := h.svc.Checkpoint(ctx, t.cfg.ID, t.Epoch(), newRSSP); err != nil {
			return 0, fmt.Errorf("tc %d: checkpoint: %w", t.cfg.ID, err)
		}
	}
	t.mu.Lock()
	t.rssp = newRSSP
	oldest := t.oldestActiveFirstLSNLocked()
	t.mu.Unlock()

	// The checkpoint record carries the current epoch so that truncation
	// (which may discard the recEpoch record) never erases the incarnation
	// history: the newest checkpoint record always survives its own
	// truncation.
	ckptLSN := t.log.AppendAssign(&wal.Record{Kind: recCheckpoint,
		Payload: encodeCheckpoint(newRSSP, t.Epoch())})
	t.acks.Complete(ckptLSN) // local record: no DC round trip
	t.log.Force()
	// Truncate below both the RSSP (redo needs nothing older) and the
	// oldest active transaction's first record (undo might).
	trunc := newRSSP
	if oldest != 0 && oldest < trunc {
		trunc = oldest
	}
	t.log.Truncate(trunc)
	t.checkpoints.Add(1)
	return newRSSP, nil
}

func (t *TC) oldestActiveFirstLSNLocked() base.LSN {
	var oldest base.LSN
	for _, txn := range t.txns {
		if txn.state == txnActive && txn.firstLSN != 0 {
			if oldest == 0 || txn.firstLSN < oldest {
				oldest = txn.firstLSN
			}
		}
	}
	return oldest
}

// Stats returns a snapshot of counters.
func (t *TC) Stats() Stats {
	return Stats{
		Commits:        t.commits.Load(),
		Aborts:         t.aborts.Load(),
		DeadlockAborts: t.deadlocks.Load(),
		OpsSent:        t.opsSent.Load(),
		Probes:         t.probes.Load(),
		Checkpoints:    t.checkpoints.Load(),
		RedoOps:        t.redoOps.Load(),
		UndoOps:        t.undoOps.Load(),
		Snapshots:      t.snapshots.Load(),
	}
}

// ackTracker computes the low-water mark: the highest LSN such that every
// allocated LSN at or below it has completed (reply received, or the LSN
// belongs to a local record needing no DC round trip).
type ackTracker struct {
	mu   sync.Mutex
	lwm  base.LSN
	done map[base.LSN]struct{}
}

func newAckTracker() *ackTracker {
	return &ackTracker{done: make(map[base.LSN]struct{})}
}

// Complete marks lsn done and advances the contiguous prefix. Completions
// at or below the mark (stale acks racing a restart's Reset) are ignored.
func (a *ackTracker) Complete(lsn base.LSN) {
	a.mu.Lock()
	if lsn <= a.lwm {
		a.mu.Unlock()
		return
	}
	a.done[lsn] = struct{}{}
	for {
		if _, ok := a.done[a.lwm+1]; !ok {
			break
		}
		delete(a.done, a.lwm+1)
		a.lwm++
	}
	a.mu.Unlock()
}

// LWM returns the current low-water mark.
func (a *ackTracker) LWM() base.LSN {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lwm
}

// Reset re-bases the tracker after a restart: every LSN at or below base
// is considered complete (they are either stably logged and redone, or
// gone forever).
func (a *ackTracker) Reset(baseLSN base.LSN) {
	a.mu.Lock()
	a.lwm = baseLSN
	a.done = make(map[base.LSN]struct{})
	a.mu.Unlock()
}
