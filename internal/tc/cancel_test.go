package tc

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/lockmgr"
)

func waitNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), baseline)
}

// TestCommitBarrierCancellation: a pipelined commit whose ack barrier is
// stuck (DC down, pipeline in its resend loop) returns promptly with the
// ErrCancelled-wrapped context error when cancelled — and the barrier is
// only abandoned, not broken: once the DC recovers, the resend contract
// still delivers the committed transaction's operations.
func TestCommitBarrierCancellation(t *testing.T) {
	tcx, d := newPipelinedPair(t, 0)
	ctx, cancel := context.WithCancel(context.Background())

	// Versioned: upserts need no pre-check read, so the write after the
	// crash pipelines cleanly instead of failing its pre-check at the
	// down DC.
	x := tcx.Begin(ctx, TxnOptions{Versioned: true})
	if err := x.Upsert("t", "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Wait out the first write so the crash cannot race the first batch,
	// then park the *next* write's batch against a down DC.
	if err := x.pend.wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	if err := x.Upsert("t", "k2", []byte("v2")); err != nil {
		t.Fatal(err)
	}

	baseline := runtime.NumGoroutine()
	done := make(chan error, 1)
	go func() { done <- x.Commit() }()
	time.Sleep(30 * time.Millisecond) // commit reaches the ack barrier
	start := time.Now()
	cancel()
	var err error
	select {
	case err = <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled commit barrier did not return")
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Fatalf("cancelled commit took %v", el)
	}
	if !errors.Is(err, base.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("commit error %v does not carry ErrCancelled + context.Canceled", err)
	}
	if !errors.Is(err, ErrCommitAmbiguous) {
		t.Fatalf("commit error %v does not carry ErrCommitAmbiguous", err)
	}

	// Strict 2PL: the prompt return must NOT have released the locks —
	// the write to k2 is still unacknowledged, so another transaction must
	// not be able to touch the keys until the barrier actually drains.
	if got := len(tcx.Locks().Held(x.ID())); got == 0 {
		t.Fatal("cancelled commit released locks with unacknowledged pipelined writes outstanding")
	}

	// The commit record is durable and the pipeline keeps resending: after
	// DC recovery the transaction's writes must all be present.
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := tcx.RecoverDC(0); err != nil {
		t.Fatal(err)
	}
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(y *Txn) error {
		for k, want := range map[string]string{"k": "v1", "k2": "v2"} {
			v, ok, err := y.Read("t", k)
			if err != nil {
				return err
			}
			if !ok || string(v) != want {
				t.Fatalf("committed write %s lost after cancel: %q %v", k, v, ok)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	waitNoGoroutineLeak(t, baseline)
}

// TestBlockedLockWaitCancellation, transaction level: a Read blocked
// behind another transaction's X lock returns promptly on cancellation,
// the error carries ErrCancelled + ctx.Err(), and the blocked transaction
// has been aborted (its locks are gone; the system is not wedged).
func TestBlockedLockWaitCancellation(t *testing.T) {
	tcx, _ := newPair(t, Config{})
	holder := tcx.Begin(context.Background(), TxnOptions{})
	if err := holder.Upsert("t", "hot", []byte("v")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	blocked := tcx.Begin(ctx, TxnOptions{})
	done := make(chan error, 1)
	go func() {
		_, _, err := blocked.Read("t", "hot")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // enqueue behind the X lock
	start := time.Now()
	cancel()
	var err error
	select {
	case err = <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled lock wait did not return")
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Fatalf("cancelled read took %v", el)
	}
	if !errors.Is(err, base.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("read error %v does not carry ErrCancelled + context.Canceled", err)
	}
	if got := len(tcx.Locks().Held(blocked.ID())); got != 0 {
		t.Fatalf("cancelled transaction still holds %d locks", got)
	}
	if err := holder.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestPerTxnLockTimeout: TxnOptions.LockTimeout overrides the TC default
// for one transaction and surfaces the typed ErrLockTimeout.
func TestPerTxnLockTimeout(t *testing.T) {
	tcx, _ := newPair(t, Config{}) // no TC-level timeout: default is wait-forever
	holder := tcx.Begin(context.Background(), TxnOptions{})
	if err := holder.Upsert("t", "hot", []byte("v")); err != nil {
		t.Fatal(err)
	}
	bounded := tcx.Begin(context.Background(), TxnOptions{LockTimeout: 30 * time.Millisecond})
	start := time.Now()
	_, _, err := bounded.Read("t", "hot")
	if !errors.Is(err, base.ErrLockTimeout) || !errors.Is(err, lockmgr.ErrTimeout) {
		t.Fatalf("want lock timeout, got %v", err)
	}
	if el := time.Since(start); el < 25*time.Millisecond || el > 2*time.Second {
		t.Fatalf("bounded wait took %v", el)
	}
	if !base.IsTransient(err) {
		t.Fatal("lock timeout must classify as transient")
	}
	if err := holder.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestReadOnlyTxn: writes inside a ReadOnly transaction fail typed and
// mutate nothing; reads proceed normally.
func TestReadOnlyTxn(t *testing.T) {
	tcx, _ := newPair(t, Config{})
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		return x.Insert("t", "k", []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}
	err := tcx.RunTxn(context.Background(), TxnOptions{ReadOnly: true}, func(x *Txn) error {
		if v, ok, err := x.Read("t", "k"); err != nil || !ok || string(v) != "v" {
			t.Fatalf("read in read-only txn: %q %v %v", v, ok, err)
		}
		return x.Upsert("t", "k", []byte("scribble"))
	})
	if !errors.Is(err, base.ErrReadOnly) {
		t.Fatalf("want ErrReadOnly, got %v", err)
	}
	if base.IsTransient(err) {
		t.Fatal("read-only violation must not be transient")
	}
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		v, _, err := x.Read("t", "k")
		if err != nil {
			return err
		}
		if string(v) != "v" {
			t.Fatalf("read-only txn mutated state: %q", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
