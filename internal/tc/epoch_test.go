package tc

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync/atomic"
	"testing"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/dc"
)

// chaosIters returns the iteration count for crash-interleaving tests:
// the default for ordinary runs, or CHAOS_ITERS when the chaos CI job (or
// a developer) wants elevated coverage.
func chaosIters(tb testing.TB, def int) int {
	s := os.Getenv("CHAOS_ITERS")
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		tb.Fatalf("bad CHAOS_ITERS %q", s)
	}
	return n
}

// gatedService wraps a DC and, when armed, parks the next PerformBatch
// until the gate is released — freezing a batch "on the wire" so the test
// can crash and restart the TC underneath it with full determinism.
type gatedService struct {
	base.Service
	armed   atomic.Bool
	gate    chan struct{}
	parked  chan struct{}
	results chan []*base.Result
}

func newGatedService(svc base.Service) *gatedService {
	return &gatedService{
		Service: svc,
		gate:    make(chan struct{}),
		parked:  make(chan struct{}),
		results: make(chan []*base.Result, 1),
	}
}

func (g *gatedService) PerformBatch(ctx context.Context, ops []*base.Op) []*base.Result {
	if g.armed.CompareAndSwap(true, false) {
		g.parked <- struct{}{}
		<-g.gate
		rs := g.Service.PerformBatch(ctx, ops)
		g.results <- rs
		return rs
	}
	return g.Service.PerformBatch(ctx, ops)
}

// TestStaleBatchFencedAtDCAfterTCRestart is the end-to-end fence: the TC
// crashes while a PerformBatch is in flight, restarts, and reuses the dead
// incarnation's LSN space; when the frozen batch finally reaches the DC it
// must be rejected as stale — executing it would apply a write whose log
// record died with the unforced tail and poison the reused LSNs in the
// abstract-LSN tables.
func TestStaleBatchFencedAtDCAfterTCRestart(t *testing.T) {
	for it := 0; it < chaosIters(t, 3); it++ {
		d, err := dc.New(dc.Config{Name: "dc0", CheckConflicts: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.CreateTable("t"); err != nil {
			t.Fatal(err)
		}
		gated := newGatedService(d)
		tcx, err := New(Config{ID: 1, Pipeline: true}, []base.Service{gated}, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(tcx.Close)

		if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
			return x.Insert("t", "committed", []byte("keep"))
		}); err != nil {
			t.Fatal(err)
		}

		// A versioned blind upsert posts straight into the pipeline; the
		// wrapper freezes the shipped batch mid-flight.
		gated.armed.Store(true)
		ghost := tcx.Begin(context.Background(), TxnOptions{Versioned: true})
		if err := ghost.Upsert("t", "ghost", []byte("x")); err != nil {
			t.Fatal(err)
		}
		<-gated.parked

		// Crash with the batch frozen on the wire; restart mints the next
		// incarnation and fences the DC.
		tcx.Crash()
		if err := tcx.Recover(); err != nil {
			t.Fatal(err)
		}
		if got := d.EpochOf(1); got != tcx.Epoch() {
			t.Fatalf("DC fence %d != TC epoch %d after restart", got, tcx.Epoch())
		}

		// Release the batch: it reaches the DC after the restart and must
		// be refused in full with the permanent stale-epoch nack.
		close(gated.gate)
		for i, r := range <-gated.results {
			if r.Code != base.CodeStaleEpoch {
				t.Fatalf("iter %d: late batch op %d executed: %+v", it, i, r)
			}
		}
		if d.Stats().StaleEpochs == 0 {
			t.Fatalf("iter %d: fence never fired", it)
		}
		if r := d.Perform(context.Background(), &base.Op{TC: 9, Kind: base.OpRead, Table: "t", Key: "ghost",
			Flavor: base.ReadDirty}); r.Found {
			t.Fatalf("iter %d: stale batch applied after restart", it)
		}

		// The restarted incarnation reuses the dead one's LSN space; its
		// writes must execute fresh (clean abstract-LSN tables) and the
		// committed data must be intact.
		if err := tcx.RunTxn(context.Background(), TxnOptions{Versioned: true}, func(x *Txn) error {
			return x.Upsert("t", "after", []byte("ok"))
		}); err != nil {
			t.Fatal(err)
		}
		if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
			if v, ok, _ := x.Read("t", "committed"); !ok || string(v) != "keep" {
				return fmt.Errorf("committed data wrong: %q %v", v, ok)
			}
			if v, ok, _ := x.Read("t", "after"); !ok || string(v) != "ok" {
				return fmt.Errorf("post-restart write lost (LSN reuse poisoned): %q %v", v, ok)
			}
			if _, ok, _ := x.Read("t", "ghost"); ok {
				return fmt.Errorf("ghost resurrected")
			}
			return nil
		}); err != nil {
			t.Fatalf("iter %d: %v", it, err)
		}
		tcx.Close()
	}
}

// TestEpochMonotonicAcrossRestarts: each recovery mints a strictly larger
// epoch, forced into the log before use, and installs it at every DC.
func TestEpochMonotonicAcrossRestarts(t *testing.T) {
	tcx, d := newPair(t, Config{})
	if got := tcx.Epoch(); got != 1 {
		t.Fatalf("fresh TC epoch = %d, want 1", got)
	}
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		return x.Insert("t", "k", []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}
	for want := base.Epoch(2); want <= 4; want++ {
		tcx.Crash()
		if err := tcx.Recover(); err != nil {
			t.Fatal(err)
		}
		if got := tcx.Epoch(); got != want {
			t.Fatalf("epoch after restart = %d, want %d", got, want)
		}
		if got := d.EpochOf(1); got != want {
			t.Fatalf("DC fence after restart = %d, want %d", got, want)
		}
	}
	// Still fully usable.
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		return x.Insert("t", "after", []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}
}

// TestEpochSurvivesLogTruncation: checkpoints truncate the log — possibly
// past the recEpoch record — but carry the epoch themselves, so recovery
// still mints a strictly larger incarnation.
func TestEpochSurvivesLogTruncation(t *testing.T) {
	tcx, _ := newPair(t, Config{})
	for i := 0; i < 10; i++ {
		if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
			return x.Insert("t", fmt.Sprintf("k%02d", i), []byte("v"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tcx.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	if start := tcx.Log().StartLSN(); start <= 1 {
		t.Fatalf("checkpoint did not truncate the epoch record away (start=%d); test vacuous", start)
	}
	tcx.Crash()
	if err := tcx.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := tcx.Epoch(); got != 2 {
		t.Fatalf("epoch after truncated-log restart = %d, want 2", got)
	}
	// A second truncation + restart keeps climbing.
	if err := tcx.RunTxn(context.Background(), TxnOptions{}, func(x *Txn) error {
		return x.Insert("t", "more", []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := tcx.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	tcx.Crash()
	if err := tcx.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := tcx.Epoch(); got != 3 {
		t.Fatalf("epoch after second truncated restart = %d, want 3", got)
	}
}
