// Package dclog defines the DC-log record vocabulary for system
// transactions (§5.2.2). System transactions here are single redo-only log
// records: a structure modification is logged atomically at completion and
// forced before any affected page can reach stable storage, so there are
// never incomplete system transactions to undo. Recovery replays them in
// dLSN order *before* any TC redo, restoring well-formed search structures
// (§4.2 "Recovery").
//
// Per the paper:
//   - a page split logs the new page's full contents including its
//     abstract LSN, but only the split key for the pre-split page (§5.2.2
//     "Page Splits");
//   - a page delete/consolidation logs the consolidated page physically,
//     with an abstract LSN that is the per-TC maximum of the two input
//     pages, forcing the delete to keep its position in the execution
//     order relative to TC operations (§5.2.2 "Page Deletes/Consolidates").
package dclog

import (
	"encoding/binary"
	"fmt"

	"github.com/cidr09/unbundled/internal/base"
)

// Record kinds.
const (
	// KindCreateTree creates a table's root leaf and catalog entry.
	KindCreateTree uint8 = iota + 1
	// KindSplit is a leaf or branch page split.
	KindSplit
	// KindConsolidate merges a right page into its left sibling and frees
	// the right page.
	KindConsolidate
	// KindRootCollapse replaces a single-child branch root by its child.
	KindRootCollapse
	// KindEpochs snapshots the per-TC incarnation-epoch table. A record is
	// forced whenever a begin_restart raises a TC's fence, and re-appended
	// ahead of any truncation that would discard the latest snapshot, so a
	// recovered DC always rebuilds the fences before serving operations —
	// a dead TC incarnation's requests stay fenced across DC crashes.
	KindEpochs
)

// TCEpoch is one entry of an epoch snapshot.
type TCEpoch struct {
	TC    base.TCID
	Epoch base.Epoch
}

// Epochs is the payload of KindEpochs: the full per-TC epoch table at the
// time of the bump (full snapshots keep replay trivially idempotent —
// entries are applied with max semantics).
type Epochs struct {
	Epochs []TCEpoch
}

// CreateTree is the payload of KindCreateTree.
type CreateTree struct {
	Table     string
	RootID    base.PageID
	RootImage []byte
}

// Split is the payload of KindSplit. RightImage is the full encoding of
// the new page at split time (abstract LSNs included). For a root split,
// NewRootID is nonzero and a fresh branch page [SplitKey; Left,Right]
// becomes the root.
type Split struct {
	Table      string
	Leaf       bool
	LeftID     base.PageID
	RightID    base.PageID
	SplitKey   string
	RightImage []byte
	ParentID   base.PageID // 0 for a root split
	NewRootID  base.PageID // 0 unless root split
}

// Consolidate is the payload of KindConsolidate. LeftImage is the physical
// image of the consolidated page (key range and contents as immediately
// after the consolidation, abstract LSN = per-TC max of the two pages).
type Consolidate struct {
	Table     string
	LeftID    base.PageID
	RightID   base.PageID // freed
	ParentID  base.PageID
	LeftImage []byte
}

// RootCollapse is the payload of KindRootCollapse.
type RootCollapse struct {
	Table     string
	OldRootID base.PageID
	NewRootID base.PageID
}

// --- encoding ---------------------------------------------------------

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// Encode serializes the record payload.
func (r *CreateTree) Encode() []byte {
	buf := appendStr(nil, r.Table)
	buf = binary.AppendUvarint(buf, uint64(r.RootID))
	return appendBytes(buf, r.RootImage)
}

// Encode serializes the record payload.
func (r *Split) Encode() []byte {
	buf := appendStr(nil, r.Table)
	if r.Leaf {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(r.LeftID))
	buf = binary.AppendUvarint(buf, uint64(r.RightID))
	buf = appendStr(buf, r.SplitKey)
	buf = appendBytes(buf, r.RightImage)
	buf = binary.AppendUvarint(buf, uint64(r.ParentID))
	buf = binary.AppendUvarint(buf, uint64(r.NewRootID))
	return buf
}

// Encode serializes the record payload.
func (r *Consolidate) Encode() []byte {
	buf := appendStr(nil, r.Table)
	buf = binary.AppendUvarint(buf, uint64(r.LeftID))
	buf = binary.AppendUvarint(buf, uint64(r.RightID))
	buf = binary.AppendUvarint(buf, uint64(r.ParentID))
	return appendBytes(buf, r.LeftImage)
}

// Encode serializes the record payload.
func (r *RootCollapse) Encode() []byte {
	buf := appendStr(nil, r.Table)
	buf = binary.AppendUvarint(buf, uint64(r.OldRootID))
	buf = binary.AppendUvarint(buf, uint64(r.NewRootID))
	return buf
}

// Encode serializes the record payload.
func (r *Epochs) Encode() []byte {
	buf := binary.AppendUvarint(nil, uint64(len(r.Epochs)))
	for _, e := range r.Epochs {
		buf = binary.AppendUvarint(buf, uint64(e.TC))
		buf = binary.AppendUvarint(buf, uint64(e.Epoch))
	}
	return buf
}

type reader struct {
	buf []byte
	err error
}

var errCorrupt = fmt.Errorf("dclog: corrupt record")

func (d *reader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	u, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = errCorrupt
		return 0
	}
	d.buf = d.buf[n:]
	return u
}

func (d *reader) str() string {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.buf)) {
		d.err = errCorrupt
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *reader) bytes() []byte {
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.buf)) {
		d.err = errCorrupt
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[:n])
	d.buf = d.buf[n:]
	return out
}

func (d *reader) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) == 0 {
		d.err = errCorrupt
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

// DecodeCreateTree parses a KindCreateTree payload.
func DecodeCreateTree(buf []byte) (*CreateTree, error) {
	d := reader{buf: buf}
	r := &CreateTree{Table: d.str()}
	r.RootID = base.PageID(d.uvarint())
	r.RootImage = d.bytes()
	return r, d.err
}

// DecodeSplit parses a KindSplit payload.
func DecodeSplit(buf []byte) (*Split, error) {
	d := reader{buf: buf}
	r := &Split{Table: d.str()}
	r.Leaf = d.byte() != 0
	r.LeftID = base.PageID(d.uvarint())
	r.RightID = base.PageID(d.uvarint())
	r.SplitKey = d.str()
	r.RightImage = d.bytes()
	r.ParentID = base.PageID(d.uvarint())
	r.NewRootID = base.PageID(d.uvarint())
	return r, d.err
}

// DecodeConsolidate parses a KindConsolidate payload.
func DecodeConsolidate(buf []byte) (*Consolidate, error) {
	d := reader{buf: buf}
	r := &Consolidate{Table: d.str()}
	r.LeftID = base.PageID(d.uvarint())
	r.RightID = base.PageID(d.uvarint())
	r.ParentID = base.PageID(d.uvarint())
	r.LeftImage = d.bytes()
	return r, d.err
}

// DecodeRootCollapse parses a KindRootCollapse payload.
func DecodeRootCollapse(buf []byte) (*RootCollapse, error) {
	d := reader{buf: buf}
	r := &RootCollapse{Table: d.str()}
	r.OldRootID = base.PageID(d.uvarint())
	r.NewRootID = base.PageID(d.uvarint())
	return r, d.err
}

// DecodeEpochs parses a KindEpochs payload.
func DecodeEpochs(buf []byte) (*Epochs, error) {
	d := reader{buf: buf}
	n := d.uvarint()
	if d.err != nil || n > uint64(len(d.buf)) { // each entry is >= 2 bytes
		return nil, errCorrupt
	}
	r := &Epochs{Epochs: make([]TCEpoch, 0, n)}
	for i := uint64(0); i < n; i++ {
		tc := base.TCID(d.uvarint())
		ep := base.Epoch(d.uvarint())
		if d.err != nil {
			return nil, d.err
		}
		r.Epochs = append(r.Epochs, TCEpoch{TC: tc, Epoch: ep})
	}
	return r, nil
}

// Logger is what the B-tree needs from the DC's log manager to make
// structure modifications recoverable.
type Logger interface {
	// AppendSMO appends a system-transaction record and returns its dLSN.
	AppendSMO(kind uint8, payload []byte) base.DLSN
	// ForceSMO makes the DC-log stable through dlsn. Consolidations force
	// before freeing the right page: a stable free without its log record
	// would lose data.
	ForceSMO(dlsn base.DLSN)
}
