package wire

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// DC→TC ack coalescing. Every reply a server produces funnels through a
// per-connection ackBatcher instead of going straight to the transport.
// The batcher works like group commit works in wal.Log.ForceTo: the first
// reply to arrive flushes immediately (idle connections never pay added
// latency), and replies that arrive while that flush is on the wire pile
// up and leave together in a single msgReplyBatch frame. Under load the
// batch size self-tunes to the flush cost — one syscall (TCP) or one
// fabric delivery (sim) acknowledges many transactions, and the TC-side
// committers those acks release then group-force the commit log in one
// fsync window. No timers are involved, so coalescing never trades
// latency for throughput.

// ackBatcher coalesces a connection's replies into batched ack frames.
type ackBatcher struct {
	mu       sync.Mutex
	queue    []*message
	flushing bool

	// out ships one coalesced batch (len >= 1) toward the client. Called
	// without mu held; calls are serialized by the flushing flag.
	out func([]*message)

	batches, coalesced *atomic.Uint64 // owned by the server/listener
}

// add enqueues one reply. The caller that finds the batcher idle becomes
// the flusher and drains the queue — including replies added by others
// while it was writing — before returning.
func (a *ackBatcher) add(m *message) {
	a.mu.Lock()
	a.queue = append(a.queue, m)
	if a.flushing {
		a.mu.Unlock()
		return
	}
	a.flushing = true
	for len(a.queue) > 0 {
		batch := a.queue
		a.queue = nil
		a.mu.Unlock()
		a.batches.Add(1)
		if n := len(batch); n > 1 {
			a.coalesced.Add(uint64(n - 1))
		}
		a.out(batch)
		a.mu.Lock()
	}
	a.flushing = false
	a.mu.Unlock()
}

// encodeAckBatch packs replies into one msgReplyBatch body: uvarint count,
// then per reply its correlation id, error text, and result body (both
// length-prefixed). The member bodies are released to the reply pool —
// encoding consumed them.
func encodeAckBatch(buf []byte, batch []*message) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(batch)))
	for _, m := range batch {
		buf = binary.AppendUvarint(buf, m.id)
		buf = binary.AppendUvarint(buf, uint64(len(m.err)))
		buf = append(buf, m.err...)
		buf = binary.AppendUvarint(buf, uint64(len(m.body)))
		buf = append(buf, m.body...)
		putReplyBuf(m.body)
	}
	return buf
}

// decodeAckBatch unpacks a msgReplyBatch body into the individual replies.
// Each member body is copied into its own pooled buffer, because each
// waiter consumes (and recycles) its reply independently.
func decodeAckBatch(body []byte) ([]*message, error) {
	n, body, err := readUvarint(body)
	// Each member costs at least 3 bytes, so a count beyond len(body) is
	// corrupt; refusing it here bounds the slice allocation below.
	if err != nil || n > uint64(len(body)) {
		return nil, errBadFrame
	}
	batch := make([]*message, 0, n)
	for i := uint64(0); i < n; i++ {
		m := &message{kind: msgReply}
		if m.id, body, err = readUvarint(body); err != nil {
			return nil, err
		}
		var errText []byte
		if errText, body, err = readLenBytes(body); err != nil {
			return nil, err
		}
		m.err = string(errText)
		var raw []byte
		if raw, body, err = readLenBytes(body); err != nil {
			return nil, err
		}
		if len(raw) > 0 {
			m.body = append(getReplyBuf(), raw...)
		}
		batch = append(batch, m)
	}
	if len(body) != 0 {
		return nil, errBadFrame
	}
	return batch, nil
}
