package wire

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/cidr09/unbundled/internal/stats"
)

// The sharded request runtime. Instead of one goroutine per request —
// which under sustained overload grows without bound until the scheduler
// (or the kernel) collapses — the server runs a fixed pool of workers,
// each owning a bounded queue. Dispatch picks the least-busy worker by
// load counter (the ptp4u pattern: fleet-scale servers shard exactly this
// way), falls over to any worker with room, and when every queue is full
// refuses the request with a typed transient overload — backpressure the
// client rides out with its ordinary pause-and-retry loop. Load therefore
// degrades by shedding admissions, never by accumulating goroutines.

// workerPool runs jobs on a fixed set of workers with bounded queues.
type workerPool struct {
	workers []*poolWorker
	wg      sync.WaitGroup

	dispatched atomic.Uint64 // jobs admitted
	overloads  atomic.Uint64 // jobs refused with every queue full
}

// poolWorker is one shard: a queue and its load counter (queued + running
// jobs), read by dispatch for least-busy placement and exported as a
// per-worker gauge.
type poolWorker struct {
	queue chan func()
	load  atomic.Int64
	done  atomic.Uint64
}

func newWorkerPool(workers, queueDepth int) *workerPool {
	p := &workerPool{workers: make([]*poolWorker, workers)}
	for i := range p.workers {
		w := &poolWorker{queue: make(chan func(), queueDepth)}
		p.workers[i] = w
		p.wg.Add(1)
		go w.run(&p.wg)
	}
	return p
}

func (w *poolWorker) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for f := range w.queue {
		f()
		w.load.Add(-1)
		w.done.Add(1)
	}
}

// leastBusy returns the index of the worker with the smallest load. The
// counters move under our feet; that is fine — the answer only needs to
// be a good placement hint, not a linearizable minimum.
func (p *workerPool) leastBusy() int {
	best, min := 0, p.workers[0].load.Load()
	for i := 1; i < len(p.workers); i++ {
		if l := p.workers[i].load.Load(); l < min {
			best, min = i, l
		}
	}
	return best
}

// dispatch queues f on the least-busy worker, falling over to any worker
// with queue room. It reports false — overload — only when every queue is
// full; f then never runs and the caller owes the client a typed refusal.
func (p *workerPool) dispatch(f func()) bool {
	start := p.leastBusy()
	for i := 0; i < len(p.workers); i++ {
		w := p.workers[(start+i)%len(p.workers)]
		select {
		case w.queue <- f:
			w.load.Add(1)
			p.dispatched.Add(1)
			return true
		default: // this shard is full; try the next
		}
	}
	p.overloads.Add(1)
	return false
}

// queued returns the total load (queued + running jobs) across workers.
func (p *workerPool) queued() int64 {
	var n int64
	for _, w := range p.workers {
		n += w.load.Load()
	}
	return n
}

// close stops the workers after they finish everything already queued:
// admitted work always executes, even across a listener shutdown. Callers
// must guarantee no dispatch runs concurrently or after.
func (p *workerPool) close() {
	for _, w := range p.workers {
		close(w.queue)
	}
	p.wg.Wait()
}

// registerStats exports the pool's counters: total admissions and
// refusals, the live aggregate queue depth, the hard queue capacity, and
// a per-worker load gauge (the balance ptp4u's findLeastBusyWorkerID
// maintains, made visible).
func (p *workerPool) registerStats(g *stats.Group) {
	g.Func("workers", func() uint64 { return uint64(len(p.workers)) })
	g.Func("worker_queue_cap", func() uint64 {
		if len(p.workers) == 0 {
			return 0
		}
		return uint64(len(p.workers) * cap(p.workers[0].queue))
	})
	g.Func("worker_queue_depth", func() uint64 {
		if n := p.queued(); n > 0 {
			return uint64(n)
		}
		return 0
	})
	g.Func("dispatched", p.dispatched.Load)
	g.Func("overloads", p.overloads.Load)
	for i, w := range p.workers {
		w := w
		g.Func(fmt.Sprintf("worker%d_load", i), func() uint64 {
			if n := w.load.Load(); n > 0 {
				return uint64(n)
			}
			return 0
		})
		g.Func(fmt.Sprintf("worker%d_done", i), w.done.Load)
	}
}
