package wire

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/cidr09/unbundled/internal/base"
)

// --- worker pool unit tests --------------------------------------------

func TestWorkerPoolOverloadRefusal(t *testing.T) {
	p := newWorkerPool(2, 1)
	gate := make(chan struct{})
	started := make(chan struct{}, 2)
	// Occupy both workers; least-busy placement lands one job on each.
	for i := 0; i < 2; i++ {
		if !p.dispatch(func() { started <- struct{}{}; <-gate }) {
			t.Fatal("dispatch refused with empty queues")
		}
	}
	<-started
	<-started
	// Fill both queues behind the running jobs.
	for i := 0; i < 2; i++ {
		if !p.dispatch(func() {}) {
			t.Fatalf("dispatch %d refused with queue room", i)
		}
	}
	if got := p.queued(); got != 4 {
		t.Fatalf("queued = %d, want 4 (2 running + 2 queued)", got)
	}
	// Every queue full: the next dispatch must refuse, not block.
	if p.dispatch(func() { t.Error("refused job ran") }) {
		t.Fatal("dispatch admitted a job with every queue full")
	}
	if got := p.overloads.Load(); got != 1 {
		t.Fatalf("overloads = %d, want 1", got)
	}
	close(gate)
	p.close()
	if got := p.dispatched.Load(); got != 4 {
		t.Fatalf("dispatched = %d, want 4", got)
	}
	if got := p.queued(); got != 0 {
		t.Fatalf("queued after close = %d, want 0", got)
	}
}

func TestWorkerPoolLeastBusyPlacement(t *testing.T) {
	p := newWorkerPool(2, 4)
	gate := make(chan struct{})
	started := make(chan struct{})
	// First dispatch (loads 0,0) lands on worker 0 and pins it.
	p.dispatch(func() { close(started); <-gate })
	<-started
	blocked, free := p.workers[0], p.workers[1]
	// Every further job must route around the pinned shard.
	done := make(chan struct{})
	for i := 0; i < 3; i++ {
		// Wait for the previous job's load decrement so the free worker
		// reads 0 and the placement is deterministic (1 vs 0).
		for free.load.Load() != 0 {
			runtime.Gosched()
		}
		p.dispatch(func() { done <- struct{}{} })
		<-done
	}
	if got := blocked.done.Load(); got != 0 {
		t.Fatalf("pinned worker executed %d jobs before release", got)
	}
	close(gate)
	p.close()
	if got := free.done.Load(); got != 3 {
		t.Fatalf("free worker executed %d jobs, want 3", got)
	}
}

// --- ack batcher unit tests --------------------------------------------

// TestAckBatcherCoalescesDuringFlush drives the group-commit shape
// deterministically: the first reply flushes alone; replies arriving while
// that flush is on the wire leave together as one batch.
func TestAckBatcherCoalescesDuringFlush(t *testing.T) {
	var batches, coalesced atomic.Uint64
	var mu sync.Mutex
	var got [][]uint64
	inFlush := make(chan struct{})
	release := make(chan struct{})
	first := true
	a := &ackBatcher{batches: &batches, coalesced: &coalesced}
	a.out = func(batch []*message) {
		ids := make([]uint64, len(batch))
		for i, m := range batch {
			ids[i] = m.id
		}
		mu.Lock()
		got = append(got, ids)
		mu.Unlock()
		if first {
			first = false
			inFlush <- struct{}{}
			<-release
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		a.add(&message{kind: msgReply, id: 1})
	}()
	<-inFlush // the adder is now the flusher, blocked mid-write
	a.add(&message{kind: msgReply, id: 2})
	a.add(&message{kind: msgReply, id: 3})
	a.add(&message{kind: msgReply, id: 4})
	close(release)
	wg.Wait()
	if len(got) != 2 || len(got[0]) != 1 || got[0][0] != 1 {
		t.Fatalf("flushes = %v, want first flush [1]", got)
	}
	if want := []uint64{2, 3, 4}; fmt.Sprint(got[1]) != fmt.Sprint(want) {
		t.Fatalf("second flush = %v, want %v", got[1], want)
	}
	if batches.Load() != 2 || coalesced.Load() != 2 {
		t.Fatalf("batches=%d coalesced=%d, want 2 and 2", batches.Load(), coalesced.Load())
	}
}

func TestAckBatchCodecRoundTrip(t *testing.T) {
	batch := []*message{
		{kind: msgReply, id: 1, body: append([]byte(nil), 0xde, 0xad, 0xbe, 0xef)},
		{kind: msgReply, id: 2, err: overloadedErrText},
		{kind: msgReply, id: 1 << 40, body: append([]byte(nil), []byte("result")...)},
		{kind: msgReply, id: 4},
	}
	// encodeAckBatch recycles member bodies; keep copies to compare.
	wantBodies := make([][]byte, len(batch))
	for i, m := range batch {
		wantBodies[i] = append([]byte(nil), m.body...)
	}
	enc := encodeAckBatch(nil, batch)
	dec, err := decodeAckBatch(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(dec) != len(batch) {
		t.Fatalf("decoded %d replies, want %d", len(dec), len(batch))
	}
	for i, m := range dec {
		if m.kind != msgReply || m.id != batch[i].id || m.err != batch[i].err {
			t.Fatalf("reply[%d] = kind=%d id=%d err=%q, want id=%d err=%q",
				i, m.kind, m.id, m.err, batch[i].id, batch[i].err)
		}
		if !bytes.Equal(m.body, wantBodies[i]) {
			t.Fatalf("reply[%d] body = %x, want %x", i, m.body, wantBodies[i])
		}
	}
}

func TestAckBatchDecodeRejectsCorruptFrames(t *testing.T) {
	batch := []*message{
		{kind: msgReply, id: 7, body: append([]byte(nil), []byte("value")...)},
		{kind: msgReply, id: 8, err: "boom"},
	}
	enc := encodeAckBatch(nil, batch)
	// Every truncation must fail typed, never panic or misparse.
	for cut := 0; cut < len(enc); cut++ {
		if _, err := decodeAckBatch(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	if _, err := decodeAckBatch(append(append([]byte(nil), enc...), 0x00)); err == nil {
		t.Fatal("trailing garbage decoded successfully")
	}
	// An absurd member count must be refused before allocation.
	huge := make([]byte, 0, 16)
	huge = appendUvarintForTest(huge, 1<<40)
	if _, err := decodeAckBatch(huge); err == nil {
		t.Fatal("oversized count decoded successfully")
	}
}

func appendUvarintForTest(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

// --- server runtime over TCP -------------------------------------------

// slowService delays every Perform, so a tiny pool backs up on demand.
type slowService struct {
	*echoService
	delay time.Duration
	gate  chan struct{} // non-nil: Perform also waits for the gate
}

func (s *slowService) Perform(ctx context.Context, op *base.Op) *base.Result {
	if s.gate != nil {
		<-s.gate
	}
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	return s.echoService.Perform(ctx, op)
}

// TestTCPBackpressureOverloadIsAbsorbed saturates a deliberately tiny pool
// (one worker, queue depth one) with concurrent calls. The server must
// refuse the excess typed — never queue unboundedly — and the client's
// pause-and-retry loop must absorb every refusal invisibly: all calls
// still complete OK, with the refusals visible only in the counters.
func TestTCPBackpressureOverloadIsAbsorbed(t *testing.T) {
	svc := &slowService{echoService: newEchoService(), delay: 2 * time.Millisecond}
	l, err := ListenWith("127.0.0.1:0", svc, ListenConfig{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cl := Dial(l.Addr(), DialConfig{ResendAfter: 20 * time.Millisecond})
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cl.WaitConnected(ctx); err != nil {
		t.Fatal(err)
	}

	const calls = 32
	var wg sync.WaitGroup
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := cl.Perform(ctx, &base.Op{TC: 1, Epoch: 1, LSN: base.LSN(i + 1),
				Kind: base.OpUpsert, Table: "t", Key: fmt.Sprintf("k%d", i)})
			if res.Code != base.CodeOK {
				errs <- fmt.Errorf("call %d: code %v", i, res.Code)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if cl.Overloads() == 0 {
		t.Fatal("no overload refusals despite 32 concurrent calls on a 1x1 pool")
	}
	if l.pool.overloads.Load() == 0 {
		t.Fatal("listener pool recorded no overloads")
	}
	svc.mu.Lock()
	applied := len(svc.applied)
	svc.mu.Unlock()
	if applied != calls {
		t.Fatalf("service applied %d distinct LSNs, want %d", applied, calls)
	}
}

// TestTCPCloseFinishesQueuedWork pins the lone worker on a gate, queues
// work behind it, and closes the listener. Admission is a promise: Close
// must wait for every admitted request to execute at the service, even
// though the connections (and therefore the replies) are already gone.
func TestTCPCloseFinishesQueuedWork(t *testing.T) {
	gate := make(chan struct{})
	svc := &slowService{echoService: newEchoService(), gate: gate}
	l, err := ListenWith("127.0.0.1:0", svc, ListenConfig{Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	cl := Dial(l.Addr(), DialConfig{ResendAfter: time.Hour}) // no resends: each call sent exactly once
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := cl.WaitConnected(ctx); err != nil {
		t.Fatal(err)
	}

	const calls = 5
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Replies are lost when the listener closes; the calls end via
			// ctx cancel below. Only the service-side effect is asserted.
			cl.Perform(ctx, &base.Op{TC: 1, Epoch: 1, LSN: base.LSN(i + 1),
				Kind: base.OpUpsert, Table: "t", Key: fmt.Sprintf("k%d", i)})
		}(i)
	}
	// Wait until all five are admitted: one running (blocked on the gate),
	// four queued.
	deadline := time.Now().Add(10 * time.Second)
	for l.pool.queued() != calls {
		if time.Now().After(deadline) {
			t.Fatalf("pool load = %d, want %d", l.pool.queued(), calls)
		}
		time.Sleep(time.Millisecond)
	}
	// Release the gate only after Close has begun waiting on the drain.
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(gate)
	}()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	svc.mu.Lock()
	applied := len(svc.applied)
	svc.mu.Unlock()
	if applied != calls {
		t.Fatalf("service executed %d admitted requests, want %d (queued work dropped on Close)", applied, calls)
	}
	cancel()
	cl.Close()
	wg.Wait()
}

// TestTCPReplyBatchFrameDelivery proves the coalesced-reply wire format
// end to end over real TCP: a msgReplyBatch frame written on the server
// side of a live connection fans out through the client's reply pump into
// the waiters of three in-flight calls. Whether replies actually collide
// at the batcher is timing-dependent (with GOMAXPROCS=1 pool workers
// never overlap, so fast flushes never collide at all) — the collision
// mechanics are pinned deterministically by
// TestAckBatcherCoalescesDuringFlush; this test pins the framing: the
// batch a collision produces is what a real dialed client decodes.
func TestTCPReplyBatchFrameDelivery(t *testing.T) {
	gate := make(chan struct{})
	svc := &slowService{echoService: newEchoService(), gate: gate}
	l, err := Listen("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	cl := Dial(l.Addr(), DialConfig{ResendAfter: time.Hour}) // no resends: correlation ids stay 1..3
	t.Cleanup(func() {
		cl.Close()
		l.Close()
	})
	var gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }
	t.Cleanup(release) // runs before l.Close, which waits for the gated workers
	wctx, wcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer wcancel()
	if err := cl.WaitConnected(wctx); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	const calls = 3
	results := make(chan *base.Result, calls)
	for i := 0; i < calls; i++ {
		go func(i int) {
			results <- cl.Perform(ctx, &base.Op{TC: 1, Epoch: 1, LSN: base.LSN(i + 1),
				Kind: base.OpRead, Table: "t", Key: "k"})
		}(i)
	}
	// Each call registers its waiter before sending, so once three sends
	// are counted all three waiters exist — and the gated service holds
	// every request, so none has been answered.
	deadline := time.Now().Add(10 * time.Second)
	for cl.Calls() < calls {
		if time.Now().After(deadline) {
			t.Fatalf("sent %d calls, want %d", cl.Calls(), calls)
		}
		time.Sleep(time.Millisecond)
	}

	// Write one coalesced batch at the outstanding ids from the server side
	// of the live connection, exactly as a flush collision would. The
	// reader's own srvConn is idle — the service is gated — so the frame
	// never interleaves with a real reply.
	l.mu.Lock()
	var conn net.Conn
	for c := range l.conns {
		conn = c
	}
	l.mu.Unlock()
	if conn == nil {
		t.Fatal("no accepted connection")
	}
	sc := &srvConn{conn: conn, bw: bufio.NewWriter(conn)}
	batch := make([]*message, calls)
	for i := range batch {
		batch[i] = &message{kind: msgReply, id: uint64(i + 1),
			body: base.AppendResult(getReplyBuf(), &base.Result{LSN: base.LSN(i + 1),
				Code: base.CodeOK, Found: true, Value: []byte("batched")})}
	}
	sc.writeBatch(batch)

	for i := 0; i < calls; i++ {
		select {
		case res := <-results:
			if res.Code != base.CodeOK || string(res.Value) != "batched" {
				t.Fatalf("batched reply: %+v", res)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("call not completed by the batch frame")
		}
	}
	release() // the gated requests finish; their late replies are dropped as duplicates
}
