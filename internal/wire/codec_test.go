package wire

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"

	"github.com/cidr09/unbundled/internal/base"
)

func frameCases() []*message {
	return []*message{
		{kind: msgPerform, id: 1, tc: 1, lsn: 42, body: []byte("op-bytes")},
		{kind: msgPerformBatch, id: 1<<63 + 5, tc: 200, epoch: 9, lsn: 1 << 40, body: bytes.Repeat([]byte{0xff, 0x00}, 300)},
		{kind: msgEOSL, tc: 3, epoch: 2, lsn: 77},
		{kind: msgLWM, tc: 3, epoch: 2},
		{kind: msgCheckpoint, id: 7, tc: 1, epoch: 1, lsn: 1000},
		{kind: msgBeginRestart, id: 8, tc: 1, epoch: 3, lsn: 12},
		{kind: msgEndRestart, id: 9, tc: 1, epoch: 3},
		{kind: msgReply, id: 7, body: []byte{1, 2, 3}},
		{kind: msgReply, id: 8, err: "dc dc0: " + base.ErrStaleEpoch.Error()},
		{kind: msgReply},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, m := range frameCases() {
		buf := appendFrame(nil, m)
		got, rest, err := decodeFrame(buf)
		if err != nil {
			t.Fatalf("decode %+v: %v", m, err)
		}
		if len(rest) != 0 {
			t.Fatalf("decode %+v left %d bytes", m, len(rest))
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, m)
		}
	}
}

func TestFrameRoundTripConcatenated(t *testing.T) {
	var buf []byte
	cases := frameCases()
	for _, m := range cases {
		buf = appendFrame(buf, m)
	}
	for i, want := range cases {
		var got *message
		var err error
		got, buf, err = decodeFrame(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

func TestStreamFrameRoundTrip(t *testing.T) {
	var net bytes.Buffer
	var scratch []byte
	for _, m := range frameCases() {
		var err error
		scratch, err = writeFrame(&net, scratch, m)
		if err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&net)
	for i, want := range frameCases() {
		got, err := readStreamFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestDecodeFrameRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},                      // kind 0 invalid
		{byte(msgReply) + 1},     // kind beyond range
		{byte(msgPerform)},       // truncated after kind
		{byte(msgPerform), 0x80}, // unterminated varint
	}
	// Every truncation of a valid frame must error, not panic or misparse.
	full := appendFrame(nil, &message{kind: msgPerform, id: 3, tc: 1, epoch: 2, lsn: 9, body: []byte("xyz"), err: "e"})
	for i := 0; i < len(full); i++ {
		cases = append(cases, full[:i])
	}
	for _, c := range cases {
		if m, _, err := decodeFrame(c); err == nil {
			t.Fatalf("decodeFrame(%x) accepted: %+v", c, m)
		}
	}
}

// FuzzFrame pins the frame codec: any input either fails to decode or
// decodes to a message that re-encodes and re-decodes to itself. Run with
// go test -fuzz=FuzzFrame ./internal/wire; the seed corpus doubles as a
// regression suite on every ordinary test run.
func FuzzFrame(f *testing.F) {
	for _, m := range frameCases() {
		f.Add(appendFrame(nil, m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, rest, err := decodeFrame(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("rest grew: %d > %d", len(rest), len(data))
		}
		re := appendFrame(nil, m)
		m2, rest2, err := decodeFrame(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v (frame %+v)", err, m)
		}
		if len(rest2) != 0 {
			t.Fatalf("re-decode left %d bytes", len(rest2))
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("unstable round trip:\n got %+v\nwant %+v", m2, m)
		}
	})
}
