package wire

import "github.com/cidr09/unbundled/internal/stats"

// Stats-registry bridges: both transports publish their counters into one
// stats.Group schema, so an operator reading /stats sees the same names
// whether the fleet runs on the simulated fabric or real TCP. Registration
// installs read-only closures over the counters the transports already
// maintain — the hot path is untouched.

// RegisterStats publishes the simulated fabric's traffic counters into g.
func (n *Network) RegisterStats(g *stats.Group) {
	g.Func("sent", n.sent.Load)
	g.Func("delivered", n.delivered.Load)
	g.Func("dropped", n.dropped.Load)
	g.Func("duplicated", n.duplicated.Load)
	g.Func("bytes", n.bytes.Load)
	g.Func("resends", n.resends.Load)
}

// RegisterStats publishes this client endpoint's counters into g, prefixed
// so several endpoints (one per DC) can share one group. TCP-only counters
// (reconnects, bytes, frame errors, injected drops) read as zero on the
// simulated transport.
func (c *Client) RegisterStats(g *stats.Group, prefix string) {
	g.Func(prefix+"calls", c.calls.Load)
	g.Func(prefix+"resends", c.resends.Load)
	g.Func(prefix+"reconnects", c.Reconnects)
	if c.link != nil {
		g.Func(prefix+"bytes_out", c.link.bytesOut.Load)
		g.Func(prefix+"bytes_in", c.link.bytesIn.Load)
		g.Func(prefix+"frame_errors", c.link.frameErrs.Load)
		g.Func(prefix+"drops_injected", c.link.dropsInjected.Load)
	}
}
