package wire

import (
	"context"
	"testing"
	"time"

	"github.com/cidr09/unbundled/internal/base"
)

// TestSeedDeterminism pins the reproducibility contract of the simulated
// fabric: Config.Seed plus the per-endpoint RNGs (seeded Seed + epSeq) are
// the only randomness in the package — an audit for this test found no
// global-rand or time-seeded path anywhere on the message path (workload
// generators and cmds keep their own explicit seeds) — so two runs of the
// same sequential call sequence over the same seed must consume identical
// RNG streams and end with identical Stats, drops, duplicates and resends
// included.
//
// The workload is deliberately sequential and duplication-free: concurrent
// callers (or dup-spawned server goroutines) would race for RNG draws,
// which reorders outcome *assignment* without changing the configuration —
// reproducibility of a concurrent run is per-endpoint-stream, not
// global-schedule. Loss exercises the interesting path: every dropped
// request or reply forces a resend whose extra draws must line up run to
// run.
func TestSeedDeterminism(t *testing.T) {
	run := func() Stats {
		n := NewNetwork(Config{LossProb: 0.25, ResendAfter: 25 * time.Millisecond, Seed: 99})
		svc := newEchoService()
		cl, srv := n.Connect(svc)
		for i := 1; i <= 120; i++ {
			res := cl.Perform(context.Background(), &base.Op{
				TC: 1, Epoch: 1, LSN: base.LSN(i), Kind: base.OpUpsert, Table: "t", Key: "k"})
			if res.Code != base.CodeOK {
				t.Fatalf("op %d: %+v", i, res)
			}
		}
		cl.Close()
		srv.Close()
		return n.Stats()
	}
	a := run()
	b := run()
	if a != b {
		t.Fatalf("same seed, different stats:\n run1 %+v\n run2 %+v", a, b)
	}
	if a.Dropped == 0 {
		t.Fatalf("lossy run dropped nothing (stats %+v); the test exercised no misbehaviour", a)
	}
	if a.Resends == 0 {
		t.Fatalf("lossy run resent nothing (stats %+v)", a)
	}
}
