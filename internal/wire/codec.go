package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/cidr09/unbundled/internal/base"
)

// The wire frame codec. One frame carries one message: the kind byte, the
// correlation id, the sender's TC identity and incarnation epoch, the
// LSN argument of watermark/control messages, the opaque body (an encoded
// operation, batch, or result — see the base package codecs), and the
// control-reply error text (rehydrated into the typed taxonomy by
// base.RehydrateWireError on the client side).
//
// The codec is shared by every transport: the simulated fabric uses it for
// its byte accounting, the TCP transport for the real stream framing, and
// the fuzz tests to pin the format. Frames are self-delimiting
// (length-prefixed fields), so a decoded frame also reports how many bytes
// it consumed.
//
// Frame layout (all integers are stdlib varints):
//
//	kind     byte        message kind (msgPerform..msgReplyBatch)
//	id       uvarint     correlation id (replies echo the request's)
//	tc       uvarint     sender TC identity
//	epoch    uvarint     sender incarnation epoch
//	lsn      uvarint     LSN argument (watermarks, control calls)
//	bodyLen  uvarint     followed by bodyLen opaque body bytes
//	errLen   uvarint     followed by errLen error-text bytes
//
// On a TCP stream each frame is additionally preceded by a 4-byte
// big-endian length so a reader can frame without parsing.

// maxFrameBytes bounds a single decoded frame (stream framing refuses
// anything larger before allocating). Batches are capped well below this
// by tc.Config.MaxBatch; the limit exists so a corrupt or hostile length
// prefix cannot drive allocation.
const maxFrameBytes = 1 << 26 // 64 MiB

var errBadFrame = fmt.Errorf("wire: corrupt frame")

// appendFrame serializes m to buf.
func appendFrame(buf []byte, m *message) []byte {
	buf = append(buf, byte(m.kind))
	buf = binary.AppendUvarint(buf, m.id)
	buf = binary.AppendUvarint(buf, uint64(m.tc))
	buf = binary.AppendUvarint(buf, uint64(m.epoch))
	buf = binary.AppendUvarint(buf, uint64(m.lsn))
	buf = binary.AppendUvarint(buf, uint64(len(m.body)))
	buf = append(buf, m.body...)
	buf = binary.AppendUvarint(buf, uint64(len(m.err)))
	buf = append(buf, m.err...)
	return buf
}

// decodeFrame parses one frame from buf and returns the remaining bytes.
// The body is copied out of buf, so the caller may recycle it.
func decodeFrame(buf []byte) (*message, []byte, error) {
	if len(buf) < 1 {
		return nil, nil, errBadFrame
	}
	m := &message{kind: msgKind(buf[0])}
	if m.kind < msgPerform || m.kind > msgReplyBatch {
		return nil, nil, fmt.Errorf("%w: kind %d", errBadFrame, buf[0])
	}
	buf = buf[1:]
	var err error
	var u uint64
	if u, buf, err = readUvarint(buf); err != nil {
		return nil, nil, err
	}
	m.id = u
	if u, buf, err = readUvarint(buf); err != nil {
		return nil, nil, err
	}
	m.tc = base.TCID(u)
	if u, buf, err = readUvarint(buf); err != nil {
		return nil, nil, err
	}
	m.epoch = base.Epoch(u)
	if u, buf, err = readUvarint(buf); err != nil {
		return nil, nil, err
	}
	m.lsn = base.LSN(u)
	if m.body, buf, err = readLenBytes(buf); err != nil {
		return nil, nil, err
	}
	var errText []byte
	if errText, buf, err = readLenBytes(buf); err != nil {
		return nil, nil, err
	}
	m.err = string(errText)
	return m, buf, nil
}

func readUvarint(buf []byte) (uint64, []byte, error) {
	u, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, errBadFrame
	}
	return u, buf[n:], nil
}

func readLenBytes(buf []byte) ([]byte, []byte, error) {
	n, buf, err := readUvarint(buf)
	if err != nil || n > uint64(len(buf)) {
		return nil, nil, errBadFrame
	}
	if n == 0 {
		return nil, buf, nil
	}
	out := make([]byte, n)
	copy(out, buf[:n])
	return out, buf[n:], nil
}

// writeFrame writes m to w as one length-prefixed stream frame. scratch, if
// non-nil, is reused for encoding; the (possibly grown) buffer is returned
// so callers can pool it.
func writeFrame(w io.Writer, scratch []byte, m *message) ([]byte, error) {
	buf := append(scratch[:0], 0, 0, 0, 0)
	buf = appendFrame(buf, m)
	n := len(buf) - 4
	if n > maxFrameBytes {
		return buf, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(n))
	_, err := w.Write(buf)
	return buf, err
}

// readStreamFrame reads one length-prefixed frame from r.
func readStreamFrame(r *bufio.Reader) (*message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrameBytes {
		return nil, fmt.Errorf("%w: stream frame length %d out of range", errBadFrame, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	m, rest, err := decodeFrame(buf)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", errBadFrame, len(rest))
	}
	return m, nil
}
