package wire

import (
	"context"
	"testing"
	"time"

	"github.com/cidr09/unbundled/internal/base"
)

// TestTCPDropProbLossIsRiddenOut proves the soak harness's chaos knob:
// with heavy injected outbound loss, every operation still executes
// exactly once (the resend loop recovers each dropped frame), and the
// link-level counters record both the injected drops and the resends that
// healed them.
func TestTCPDropProbLossIsRiddenOut(t *testing.T) {
	svc := newEchoService()
	l, err := Listen("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cl := Dial(l.Addr(), DialConfig{
		DropProb:    0.4,
		DropSeed:    42,
		ResendAfter: 5 * time.Millisecond,
	})
	defer cl.Close()

	for i := 1; i <= 50; i++ {
		op := &base.Op{Kind: base.OpUpsert, LSN: base.LSN(i), Table: "kv", Key: "k"}
		if res := cl.Perform(context.Background(), op); res.Code != base.CodeOK {
			t.Fatalf("Perform %d: code %v", i, res.Code)
		}
	}
	svc.mu.Lock()
	applied := len(svc.applied)
	svc.mu.Unlock()
	if applied != 50 {
		t.Fatalf("applied %d distinct LSNs, want 50", applied)
	}
	if got := cl.link.dropsInjected.Load(); got == 0 {
		t.Fatal("DropProb 0.4 over 50 ops injected zero drops")
	}
	if cl.Resends() == 0 {
		t.Fatal("injected drops but zero resends — loss was not ridden out by resend")
	}
}
