package wire

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/cidr09/unbundled/internal/base"
)

// dialTest pairs a Listener over svc with a dialed client, waiting for the
// session so tests exercise the connected path deterministically.
func dialTest(t *testing.T, svc base.Service, cfg DialConfig) (*Client, *Listener) {
	t.Helper()
	l, err := Listen("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	cl := Dial(l.Addr(), cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cl.WaitConnected(ctx); err != nil {
		t.Fatalf("WaitConnected: %v", err)
	}
	t.Cleanup(func() {
		cl.Close()
		l.Close()
	})
	return cl, l
}

func TestTCPPerformAndBatch(t *testing.T) {
	svc := newEchoService()
	cl, _ := dialTest(t, svc, DialConfig{})

	res := cl.Perform(context.Background(), &base.Op{TC: 1, Epoch: 1, LSN: 7, Kind: base.OpRead, Table: "t", Key: "hello"})
	if res.Code != base.CodeOK || string(res.Value) != "hello" || res.LSN != 7 {
		t.Fatalf("perform over tcp: %+v", res)
	}

	ops := make([]*base.Op, 5)
	for i := range ops {
		ops[i] = &base.Op{TC: 1, Epoch: 1, LSN: base.LSN(100 + i), Kind: base.OpUpsert, Table: "t", Key: fmt.Sprintf("k%d", i)}
	}
	rs := cl.PerformBatch(context.Background(), ops)
	if len(rs) != len(ops) {
		t.Fatalf("batch reply size %d", len(rs))
	}
	for i, r := range rs {
		if r.Code != base.CodeOK || r.LSN != ops[i].LSN {
			t.Fatalf("batch[%d] = %+v", i, r)
		}
	}

	if err := cl.Checkpoint(context.Background(), 1, 1, 50); err != nil {
		t.Fatalf("checkpoint over tcp: %v", err)
	}
	if err := cl.BeginRestart(context.Background(), 1, 2, 10); err != nil {
		t.Fatalf("begin-restart over tcp: %v", err)
	}
	if err := cl.EndRestart(context.Background(), 1, 2); err != nil {
		t.Fatalf("end-restart over tcp: %v", err)
	}

	// Watermarks are fire-and-forget; poll for arrival.
	cl.EndOfStableLog(1, 1, 42)
	cl.LowWaterMark(1, 1, 40)
	deadline := time.Now().Add(2 * time.Second)
	for {
		svc.mu.Lock()
		eosl, lwm := svc.eosl, svc.lwm
		svc.mu.Unlock()
		if eosl == 42 && lwm == 40 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watermarks not delivered: eosl=%d lwm=%d", eosl, lwm)
		}
		time.Sleep(time.Millisecond)
	}
}

// staleService fails control calls with the typed stale-epoch sentinel so
// the test can prove rehydration across a real socket.
type staleService struct{ *echoService }

func (s staleService) Checkpoint(ctx context.Context, tc base.TCID, epoch base.Epoch, newRSSP base.LSN) error {
	return fmt.Errorf("dc dcX: checkpoint for tc %d epoch %d behind fence 9: %w", tc, epoch, base.ErrStaleEpoch)
}

func TestTCPControlErrorRehydrates(t *testing.T) {
	cl, _ := dialTest(t, staleService{newEchoService()}, DialConfig{})
	err := cl.Checkpoint(context.Background(), 1, 1, 5)
	if !errors.Is(err, base.ErrStaleEpoch) {
		t.Fatalf("stale epoch not rehydrated over tcp: %v", err)
	}
}

// TestTCPServerRestartResendsAndReconnects is the transport half of the
// e2e kill -9 story: the listener dies mid-conversation, a blocked call
// resends into the void, a new listener binds the same address, and the
// supervised client reconnects and completes the call — firing the
// reconnect hook the deployment layer hangs recovery on.
func TestTCPServerRestartResendsAndReconnects(t *testing.T) {
	svc := newEchoService()
	cl, l := dialTest(t, svc, DialConfig{ResendAfter: 5 * time.Millisecond, RedialBackoff: 2 * time.Millisecond})
	addr := l.Addr()

	if res := cl.Perform(context.Background(), &base.Op{TC: 1, Epoch: 1, LSN: 1, Kind: base.OpRead, Table: "t", Key: "a"}); res.Code != base.CodeOK {
		t.Fatalf("warmup: %+v", res)
	}

	var hookFired atomic.Uint64
	cl.OnReconnect(func() { hookFired.Add(1) })

	l.Close() // the DC process dies

	done := make(chan *base.Result, 1)
	go func() {
		done <- cl.Perform(context.Background(), &base.Op{TC: 1, Epoch: 1, LSN: 2, Kind: base.OpRead, Table: "t", Key: "b"})
	}()
	select {
	case res := <-done:
		t.Fatalf("perform completed against a dead listener: %+v", res)
	case <-time.After(50 * time.Millisecond):
	}

	l2, err := Listen(addr, svc) // the DC process restarts on the same address
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addr, err)
	}
	defer l2.Close()

	select {
	case res := <-done:
		if res.Code != base.CodeOK || string(res.Value) != "b" {
			t.Fatalf("perform after restart: %+v", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("perform did not recover after listener restart")
	}
	if cl.Reconnects() == 0 {
		t.Fatal("client reports no reconnects after a listener restart")
	}
	if cl.Resends() == 0 {
		t.Fatal("client reports no resends despite the outage")
	}
	deadline := time.Now().Add(2 * time.Second)
	for hookFired.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("OnReconnect hook never fired")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTCPDialBeforeListen(t *testing.T) {
	// Reserve an address, then free it so Dial targets a not-yet-started DC.
	probe, err := Listen("127.0.0.1:0", newEchoService())
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr()
	probe.Close()

	cl := Dial(addr, DialConfig{ResendAfter: 5 * time.Millisecond, RedialBackoff: 2 * time.Millisecond})
	defer cl.Close()
	done := make(chan *base.Result, 1)
	go func() {
		done <- cl.Perform(context.Background(), &base.Op{TC: 1, Epoch: 1, LSN: 3, Kind: base.OpRead, Table: "t", Key: "late"})
	}()
	time.Sleep(20 * time.Millisecond)
	l, err := Listen(addr, newEchoService())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	select {
	case res := <-done:
		if res.Code != base.CodeOK {
			t.Fatalf("perform after late listen: %+v", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("perform never completed after the listener came up")
	}
}

func TestTCPClientCloseUnblocksCalls(t *testing.T) {
	// No listener at all: calls resend into the void until Close.
	probe, err := Listen("127.0.0.1:0", newEchoService())
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr()
	probe.Close()

	cl := Dial(addr, DialConfig{ResendAfter: 5 * time.Millisecond, RedialBackoff: 2 * time.Millisecond})
	done := make(chan *base.Result, 1)
	errs := make(chan error, 1)
	go func() {
		done <- cl.Perform(context.Background(), &base.Op{TC: 1, Epoch: 1, LSN: 4, Kind: base.OpRead, Table: "t", Key: "k"})
	}()
	go func() {
		errs <- cl.Checkpoint(context.Background(), 1, 1, 9)
	}()
	time.Sleep(20 * time.Millisecond)
	cl.Close()
	select {
	case res := <-done:
		if res.Code != base.CodeUnavailable {
			t.Fatalf("perform after close: %+v", res)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("perform still blocked after Close")
	}
	select {
	case err := <-errs:
		if !errors.Is(err, base.ErrUnavailable) {
			t.Fatalf("control call after close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("control call still blocked after Close")
	}
}

func TestTCPCancellation(t *testing.T) {
	probe, err := Listen("127.0.0.1:0", newEchoService())
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr()
	probe.Close()

	cl := Dial(addr, DialConfig{ResendAfter: 5 * time.Millisecond, RedialBackoff: 2 * time.Millisecond})
	defer cl.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *base.Result, 1)
	go func() {
		done <- cl.Perform(ctx, &base.Op{TC: 1, Epoch: 1, LSN: 5, Kind: base.OpRead, Table: "t", Key: "k"})
	}()
	time.Sleep(15 * time.Millisecond)
	cancel()
	select {
	case res := <-done:
		if res.Code != base.CodeCancelled {
			t.Fatalf("cancelled perform: %+v", res)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("perform ignored cancellation")
	}
}
