package wire

import (
	"context"
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cidr09/unbundled/internal/base"
)

// Client is the TC-side stub implementing base.Service over a transport.
// There is exactly one implementation of the resend/encode protocol — this
// type — shared by both transports: the simulated fabric (Network.Connect)
// and real TCP (Dial). A transport supplies only message delivery: a
// best-effort send toward the server, a pump that feeds replies into
// dispatch, and a teardown hook. Everything protocol-shaped — request
// correlation, the §4.2 resend loop with backoff, unavailable-retry
// pauses, operation/batch encoding, and typed-error rehydration — lives
// here and cannot fork between deployments.
type Client struct {
	sendFn      func(*message)       // best-effort delivery toward the server
	resendAfter func() time.Duration // reply wait before resending
	onResend    func()               // transport resend accounting (may be nil)
	teardown    func()               // transport teardown; runs once, from Close

	closeCh   chan struct{}
	closeOnce sync.Once

	mu      sync.Mutex
	waiters map[uint64]chan *message
	nextID  atomic.Uint64

	calls, resends, overloads atomic.Uint64

	simIn *endpoint // simulated transport only: SetDown support
	link  *tcpLink  // dialed transport only: reconnect supervision
}

func newClient(send func(*message), resendAfter func() time.Duration) *Client {
	return &Client{
		sendFn:      send,
		resendAfter: resendAfter,
		closeCh:     make(chan struct{}),
		waiters:     make(map[uint64]chan *message),
	}
}

// Close stops the client and fails outstanding calls: every blocked
// Perform/PerformBatch caller — whether waiting on a reply, mid-resend, or
// pausing out a recovering DC — unblocks promptly with CodeUnavailable,
// and blocked control calls return an error.
func (c *Client) Close() {
	c.closeOnce.Do(func() {
		close(c.closeCh)
		if c.teardown != nil {
			c.teardown()
		}
	})
}

// SetDown marks the client (TC process) up or down; a down client drops
// inbound replies, as a crashed TC would. Only meaningful on the simulated
// transport — a real crashed TC process stops existing instead.
func (c *Client) SetDown(down bool) {
	if c.simIn != nil {
		c.simIn.down.Store(down)
	}
}

// Closed reports whether Close has been called. Callers with their own
// retry loops (the TC's pipelines) use it to stop resending through a
// stub whose every reply will be CodeUnavailable.
func (c *Client) Closed() bool {
	select {
	case <-c.closeCh:
		return true
	default:
		return false
	}
}

// Calls returns the number of request attempts sent (including resends).
func (c *Client) Calls() uint64 { return c.calls.Load() }

// Resends returns how many of those attempts were resends of an
// unacknowledged request — the §4.2 persistence that rides out lossy
// fabrics and DC outages alike.
func (c *Client) Resends() uint64 { return c.resends.Load() }

// Overloads returns how many replies refused a request because the
// server's worker queues were full (base.ErrOverloaded). Each one was
// retried after a pause — the counter makes backpressure visible without
// breaking the delivery contract.
func (c *Client) Overloads() uint64 { return c.overloads.Load() }

// dispatch hands one server reply to the waiter registered under its
// correlation id. Transport pumps call it; duplicate or late replies for
// answered (or abandoned) attempts are dropped here. A coalesced
// msgReplyBatch fans out into its member replies — losing or duplicating
// the whole batch on the way here is no different from losing or
// duplicating each member.
func (c *Client) dispatch(m *message) {
	if m.kind == msgReplyBatch {
		batch, err := decodeAckBatch(m.body)
		if err != nil {
			return // corrupt batch: drop it whole; resends recover
		}
		for _, r := range batch {
			c.dispatch(r)
		}
		return
	}
	if m.kind != msgReply {
		return
	}
	c.mu.Lock()
	ch := c.waiters[m.id]
	c.mu.Unlock()
	if ch != nil {
		select {
		case ch <- m:
		default: // duplicate reply for an already-answered attempt
		}
	}
}

// call sends m (with a fresh correlation id per attempt) and resends until
// a reply arrives, the client is closed, or ctx is done (the returned
// error is then the ErrCancelled-wrapped ctx error). Cancellation abandons
// only the wait: attempts already delivered may still execute at the DC.
func (c *Client) call(ctx context.Context, kind msgKind, tc base.TCID, epoch base.Epoch, lsn base.LSN, body []byte) (*message, error) {
	resend := c.resendAfter()
	attempt := 0
	for {
		id := c.nextID.Add(1)
		ch := make(chan *message, 1)
		c.mu.Lock()
		c.waiters[id] = ch
		c.mu.Unlock()
		c.sendFn(&message{kind: kind, id: id, tc: tc, epoch: epoch, lsn: lsn, body: body})
		c.calls.Add(1)
		if attempt > 0 {
			c.resends.Add(1)
			if c.onResend != nil {
				c.onResend()
			}
		}
		timer := time.NewTimer(resend)
		select {
		case reply := <-ch:
			timer.Stop()
			c.mu.Lock()
			delete(c.waiters, id)
			c.mu.Unlock()
			return reply, nil
		case <-timer.C:
			c.mu.Lock()
			delete(c.waiters, id)
			c.mu.Unlock()
			attempt++
			// Exponential-ish backoff, capped: persistent resend per §4.2.
			if attempt > 4 && resend < time.Second {
				resend *= 2
			}
		case <-ctx.Done():
			timer.Stop()
			c.mu.Lock()
			delete(c.waiters, id)
			c.mu.Unlock()
			return nil, base.CancelErr(ctx)
		case <-c.closeCh:
			timer.Stop()
			return &message{kind: msgReply, err: closedErrText}, nil
		}
	}
}

// closedErrText names the taxonomy sentinel so controlErr rehydrates a
// closed-stub failure as base.ErrUnavailable.
var closedErrText = "wire: client closed: " + base.ErrUnavailable.Error()

// isOverloadReply reports whether a reply error is a server admission
// refusal (the overloadedErrText the listener sends, matched the same way
// base.RehydrateWireError matches every wire-crossing sentinel).
func isOverloadReply(errText string) bool {
	return strings.Contains(errText, base.ErrOverloaded.Error())
}

// Perform implements base.Service. It blocks, resending, until the DC
// acknowledges — exactly-once courtesy of unique request IDs (op.LSN) and
// DC idempotence — or until ctx is done (CodeCancelled).
func (c *Client) Perform(ctx context.Context, op *base.Op) *base.Result {
	body := base.AppendOp(nil, op)
	for {
		reply, err := c.call(ctx, msgPerform, op.TC, op.Epoch, op.LSN, body)
		if err != nil {
			return &base.Result{LSN: op.LSN, Code: base.CodeCancelled}
		}
		if reply.err != "" {
			if isOverloadReply(reply.err) {
				// The server shed the request before it touched the service:
				// count it, pause out the queue pressure, and re-offer,
				// invisibly to the caller.
				c.overloads.Add(1)
				if code := c.pause(ctx); code != base.CodeOK {
					return &base.Result{LSN: op.LSN, Code: code}
				}
				continue
			}
			return &base.Result{LSN: op.LSN, Code: base.CodeUnavailable}
		}
		res, _, derr := base.DecodeResult(reply.body)
		putReplyBuf(reply.body)
		if derr != nil {
			return &base.Result{LSN: op.LSN, Code: base.CodeBadRequest}
		}
		// CodeStaleEpoch is a permanent nack (the sender's incarnation was
		// fenced by a restart): returned as-is, never retried.
		if res.Code == base.CodeUnavailable {
			// DC up but still recovering; retry after a pause (which a
			// concurrent Close or cancellation cuts short).
			if code := c.pause(ctx); code != base.CodeOK {
				return &base.Result{LSN: op.LSN, Code: code}
			}
			continue
		}
		return res
	}
}

// PerformBatch implements base.Service: one message carries the whole
// batch, one reply carries the per-operation results. A reply containing
// any CodeUnavailable result (the DC was down or recovering) triggers a
// resend of the whole batch — per-operation idempotence absorbs the
// re-execution of operations that did land.
func (c *Client) PerformBatch(ctx context.Context, ops []*base.Op) []*base.Result {
	if len(ops) == 1 {
		return []*base.Result{c.Perform(ctx, ops[0])}
	}
	body := base.AppendOpBatch(nil, ops)
	fail := func(code base.Code) []*base.Result {
		rs := make([]*base.Result, len(ops))
		for i, op := range ops {
			rs[i] = &base.Result{LSN: op.LSN, Code: code}
		}
		return rs
	}
	for {
		reply, err := c.call(ctx, msgPerformBatch, ops[0].TC, ops[0].Epoch, ops[0].LSN, body)
		if err != nil {
			return fail(base.CodeCancelled)
		}
		if reply.err != "" {
			if isOverloadReply(reply.err) {
				c.overloads.Add(1)
				if code := c.pause(ctx); code != base.CodeOK {
					return fail(code)
				}
				continue
			}
			return fail(base.CodeUnavailable)
		}
		rs, derr := decodeBatchReply(reply.body, len(ops))
		if derr != nil {
			return fail(base.CodeBadRequest)
		}
		unavailable := false
		for _, r := range rs {
			if r.Code == base.CodeUnavailable {
				unavailable = true
				break
			}
		}
		if !unavailable {
			return rs
		}
		if code := c.pause(ctx); code != base.CodeOK {
			return fail(code)
		}
	}
}

func decodeBatchReply(body []byte, want int) ([]*base.Result, error) {
	rs, _, err := base.DecodeResultBatch(body)
	putReplyBuf(body)
	if err != nil {
		return nil, err
	}
	if len(rs) != want {
		return nil, fmt.Errorf("wire: batch reply size %d, want %d", len(rs), want)
	}
	return rs, nil
}

// pause sleeps one resend interval before retrying a recovering DC. It
// returns CodeOK to retry, CodeUnavailable when the client was closed
// during the wait, or CodeCancelled when ctx expired first.
func (c *Client) pause(ctx context.Context) base.Code {
	timer := time.NewTimer(c.resendAfter())
	defer timer.Stop()
	select {
	case <-timer.C:
		return base.CodeOK
	case <-ctx.Done():
		return base.CodeCancelled
	case <-c.closeCh:
		return base.CodeUnavailable
	}
}

// EndOfStableLog implements base.Service as fire-and-forget; the TC
// re-broadcasts the watermark periodically, so loss only delays pruning.
func (c *Client) EndOfStableLog(tc base.TCID, epoch base.Epoch, eosl base.LSN) {
	c.sendFn(&message{kind: msgEOSL, tc: tc, epoch: epoch, lsn: eosl})
}

// SafeTS implements base.Service as fire-and-forget; the TC re-broadcasts
// its safe timestamp on a tick, so loss only delays snapshot reads. The
// safe timestamp rides the frame's lsn field; the horizon travels in the
// body.
func (c *Client) SafeTS(tc base.TCID, epoch base.Epoch, safe base.TS, horizon base.TS) {
	c.sendFn(&message{
		kind:  msgSafeTS,
		tc:    tc,
		epoch: epoch,
		lsn:   base.LSN(safe),
		body:  binary.AppendUvarint(nil, uint64(horizon)),
	})
}

// LowWaterMark implements base.Service as fire-and-forget.
func (c *Client) LowWaterMark(tc base.TCID, epoch base.Epoch, lwm base.LSN) {
	c.sendFn(&message{kind: msgLWM, tc: tc, epoch: epoch, lsn: lwm})
}

// Checkpoint implements base.Service with resend until acknowledged.
func (c *Client) Checkpoint(ctx context.Context, tc base.TCID, epoch base.Epoch, newRSSP base.LSN) error {
	return c.controlErr(c.call(ctx, msgCheckpoint, tc, epoch, newRSSP, nil))
}

// BeginRestart implements base.Service with resend until acknowledged.
func (c *Client) BeginRestart(ctx context.Context, tc base.TCID, epoch base.Epoch, stableLSN base.LSN) error {
	return c.controlErr(c.call(ctx, msgBeginRestart, tc, epoch, stableLSN, nil))
}

// EndRestart implements base.Service with resend until acknowledged.
func (c *Client) EndRestart(ctx context.Context, tc base.TCID, epoch base.Epoch) error {
	return c.controlErr(c.call(ctx, msgEndRestart, tc, epoch, 0, nil))
}

// Catalog asks the remote service which tables it serves (msgCatalog,
// resent until acknowledged). The fleet-assembly placement cross-check
// compares the answer against the placement spec. Servers whose service
// has no catalog fail typed with base.ErrUnavailable.
func (c *Client) Catalog(ctx context.Context) ([]string, error) {
	reply, err := c.call(ctx, msgCatalog, 0, 0, 0, nil)
	if err != nil {
		return nil, err
	}
	if reply.err != "" {
		return nil, fmt.Errorf("wire: %w", base.RehydrateWireError(reply.err))
	}
	return decodeCatalog(reply.body)
}

func (c *Client) controlErr(reply *message, err error) error {
	if err != nil {
		return err
	}
	if reply.err != "" {
		// Control failures cross the wire as strings; rehydrate the typed
		// sentinels (stale-epoch, unavailable) so errors.Is keeps working
		// through the stub.
		return fmt.Errorf("wire: %w", base.RehydrateWireError(reply.err))
	}
	return nil
}
