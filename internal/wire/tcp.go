package wire

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cidr09/unbundled/internal/base"
	"github.com/cidr09/unbundled/internal/stats"
)

// The TCP transport: the same TC:DC protocol the simulated fabric carries,
// over real sockets between real OS processes. A Listener serves a
// base.Service (a DC); Dial returns the shared Client stub over a
// supervised connection. TCP gives in-order delivery per connection, but
// the process boundary restores every failure mode the simulator injects:
// a killed DC drops requests (loss), a redial re-delivers what was already
// executed (duplication), and replies race reconnects (reordering across
// connections). The client's resend loop plus DC idempotence absorb all of
// it — the protocol does not trust the transport.

// ListenConfig shapes the server runtime behind a Listener. The zero
// value is the production default: a sharded worker pool sized to the
// machine, bounded per-worker queues with typed overload refusals when
// they fill, and coalesced ack frames. The two bool knobs each restore
// one pre-pool behaviour, mostly so benchmarks (and mixed-version peers,
// for FlatAcks) can measure the old runtime against the new one.
type ListenConfig struct {
	// Workers is the number of pool workers executing Perform and
	// PerformBatch requests (default: 2×GOMAXPROCS).
	Workers int
	// QueueDepth is each worker's queue capacity (default 256). With
	// every queue full, further requests are refused with a typed
	// transient base.ErrOverloaded instead of queueing unboundedly.
	QueueDepth int
	// PerRequest restores the unbounded goroutine-per-request dispatch:
	// no pool, no queues, no admission control. Baseline for throughput
	// benchmarks.
	PerRequest bool
	// FlatAcks disables reply coalescing: every reply leaves in its own
	// msgReply frame. The default batches replies that accumulate while
	// a flush is on the wire into one msgReplyBatch frame (clients before
	// that kind existed need FlatAcks).
	FlatAcks bool
}

func (c ListenConfig) withDefaults() ListenConfig {
	if c.Workers <= 0 {
		c.Workers = 2 * runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	return c
}

// Listener serves a base.Service on a TCP address. Each inbound connection
// gets its own reader; Perform/PerformBatch requests execute on the shared
// worker pool (the paper's multi-threaded DC, with bounded admission — see
// ListenConfig), control requests in their own goroutines, and replies are
// written back — coalesced — on the connection the request arrived on.
type Listener struct {
	ln   net.Listener
	svc  base.Service
	cfg  ListenConfig
	pool *workerPool // nil in PerRequest mode

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup

	ackBatches, acksCoalesced atomic.Uint64
}

// Listen starts serving svc on addr (e.g. "127.0.0.1:7070"; ":0" picks a
// free port — read it back with Addr) with the default ListenConfig.
func Listen(addr string, svc base.Service) (*Listener, error) {
	return ListenWith(addr, svc, ListenConfig{})
}

// ListenWith starts serving svc on addr with an explicit runtime
// configuration.
func ListenWith(addr string, svc base.Service, cfg ListenConfig) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	l := &Listener{ln: ln, svc: svc, cfg: cfg, conns: make(map[net.Conn]struct{})}
	if !cfg.PerRequest {
		l.pool = newWorkerPool(cfg.Workers, cfg.QueueDepth)
	}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the bound listen address.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Close stops accepting, closes every open connection, and waits for the
// connection readers *and* all in-flight request handlers to drain: after
// Close returns, the wrapped service receives no further invocations from
// this listener. In-flight operations complete at the service; only their
// replies are lost — exactly what the client's resend contract is for.
// The full quiesce is what lets a test or example re-open a disk-backed
// DC's directory after Close without racing the old incarnation's writes.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	conns := make([]net.Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	err := l.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	l.wg.Wait()
	if l.pool != nil {
		// The readers are gone (no further dispatch); let the workers
		// finish everything already admitted, then stop them. Queued work
		// executes even across shutdown — admission is a promise.
		l.pool.close()
	}
	return err
}

// RegisterStats exports the listener runtime's counters into g: pool
// admissions/refusals, live and per-worker queue depth against the hard
// cap, and ack-coalescing effectiveness.
func (l *Listener) RegisterStats(g *stats.Group) {
	if l.pool != nil {
		l.pool.registerStats(g)
	}
	g.Func("ack_batches", l.ackBatches.Load)
	g.Func("acks_coalesced", l.acksCoalesced.Load)
	g.Func("conns", func() uint64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return uint64(len(l.conns))
	})
}

func (l *Listener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return // listener closed
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			conn.Close()
			return
		}
		l.conns[conn] = struct{}{}
		l.mu.Unlock()
		l.wg.Add(1)
		go l.serveConn(conn)
	}
}

func (l *Listener) serveConn(conn net.Conn) {
	defer l.wg.Done()
	sc := &srvConn{conn: conn, bw: bufio.NewWriter(conn)}
	if !l.cfg.FlatAcks {
		sc.acks = &ackBatcher{out: sc.writeBatch, batches: &l.ackBatches, coalesced: &l.acksCoalesced}
	}
	br := bufio.NewReader(conn)
	for {
		m, err := readStreamFrame(br)
		if err != nil {
			break // connection gone or stream corrupt; client redials
		}
		l.handle(sc, m)
	}
	conn.Close()
	l.mu.Lock()
	delete(l.conns, conn)
	l.mu.Unlock()
}

// handle dispatches one inbound frame, mirroring the simulated Server.run:
// watermarks apply inline; Perform/PerformBatch run on the worker pool
// (least-busy shard, bounded queue, typed overload refusal when every
// queue is full — or their own goroutine in PerRequest mode); the rare
// control requests run in their own goroutines so a slow checkpoint or
// recovery sweep never head-of-line-blocks the connection and is never
// refused by admission control. Spawned goroutines join the listener's
// WaitGroup (the spawn happens on the reader goroutine, whose own wg slot
// is still held, so the Add never races Close's Wait) — Close drains them
// before returning.
func (l *Listener) handle(sc *srvConn, m *message) {
	switch m.kind {
	case msgPerform:
		l.run(sc, m.id, func() {
			op, _, err := base.DecodeOp(m.body)
			if err != nil {
				sc.reply(&message{kind: msgReply, id: m.id, err: err.Error()})
				return
			}
			res := l.svc.Perform(context.Background(), op)
			sc.reply(&message{kind: msgReply, id: m.id, body: base.AppendResult(getReplyBuf(), res)})
		})
	case msgPerformBatch:
		l.run(sc, m.id, func() {
			ops, _, err := base.DecodeOpBatch(m.body)
			if err != nil {
				sc.reply(&message{kind: msgReply, id: m.id, err: err.Error()})
				return
			}
			rs := l.svc.PerformBatch(context.Background(), ops)
			sc.reply(&message{kind: msgReply, id: m.id, body: base.AppendResultBatch(getReplyBuf(), rs)})
		})
	case msgEOSL:
		l.svc.EndOfStableLog(m.tc, m.epoch, m.lsn)
	case msgSafeTS:
		horizon, _ := binary.Uvarint(m.body)
		l.svc.SafeTS(m.tc, m.epoch, base.TS(m.lsn), base.TS(horizon))
	case msgLWM:
		l.svc.LowWaterMark(m.tc, m.epoch, m.lsn)
	case msgCheckpoint:
		l.spawn(func() {
			sc.control(m, func() error { return l.svc.Checkpoint(context.Background(), m.tc, m.epoch, m.lsn) })
		})
	case msgBeginRestart:
		l.spawn(func() {
			sc.control(m, func() error { return l.svc.BeginRestart(context.Background(), m.tc, m.epoch, m.lsn) })
		})
	case msgEndRestart:
		l.spawn(func() { sc.control(m, func() error { return l.svc.EndRestart(context.Background(), m.tc, m.epoch) }) })
	case msgCatalog:
		l.spawn(func() { sc.reply(catalogReply(l.svc, m.id)) })
	}
}

func (l *Listener) spawn(f func()) {
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		f()
	}()
}

// overloadedErrText names the taxonomy sentinel so the client rehydrates
// a shed request as base.ErrOverloaded.
var overloadedErrText = "wire: worker queues full: " + base.ErrOverloaded.Error()

// run executes one replying request: on the pool when one is configured —
// refusing with a typed transient overload when every queue is full, the
// request never having touched the service — or on its own goroutine in
// PerRequest mode.
func (l *Listener) run(sc *srvConn, id uint64, job func()) {
	if l.pool == nil {
		l.spawn(job)
		return
	}
	if !l.pool.dispatch(job) {
		sc.reply(&message{kind: msgReply, id: id, err: overloadedErrText})
	}
}

// srvConn serializes reply writes onto one accepted connection.
type srvConn struct {
	conn net.Conn
	acks *ackBatcher // nil with ListenConfig.FlatAcks
	wmu  sync.Mutex
	bw   *bufio.Writer
	buf  []byte
}

// writeTimeout bounds one frame write. A peer that stops reading (wedged,
// half-dead network) would otherwise block the writer while it holds the
// connection's write lock; timing out turns that into an ordinary
// connection failure the resend/redial machinery already handles.
const writeTimeout = 5 * time.Second

// reply routes one reply through the connection's ack coalescer (or
// straight to the socket with FlatAcks).
func (sc *srvConn) reply(m *message) {
	if sc.acks != nil {
		sc.acks.add(m)
		return
	}
	sc.writeBatch([]*message{m})
}

// writeBatch flushes one coalesced batch as a single frame: a plain
// msgReply when it holds one reply (byte-identical to the uncoalesced
// protocol), a msgReplyBatch otherwise.
func (sc *srvConn) writeBatch(batch []*message) {
	m := batch[0]
	if len(batch) > 1 {
		m = &message{kind: msgReplyBatch, body: encodeAckBatch(getReplyBuf(), batch)}
	}
	sc.wmu.Lock()
	sc.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	buf, err := writeFrame(sc.bw, sc.buf, m)
	sc.buf = buf
	if err == nil {
		err = sc.bw.Flush()
	}
	sc.wmu.Unlock()
	putReplyBuf(m.body)
	if err != nil {
		// The connection died mid-reply: drop it. The request executed; the
		// client's resend re-asks and idempotence answers from state.
		sc.conn.Close()
	}
}

func (sc *srvConn) control(m *message, f func() error) {
	var errStr string
	if err := f(); err != nil {
		errStr = err.Error()
	}
	sc.reply(&message{kind: msgReply, id: m.id, err: errStr})
}

// DialConfig shapes a dialed connection.
type DialConfig struct {
	// ResendAfter is how long the client waits for a reply before
	// resending (default 25ms). TCP rarely loses frames on a healthy
	// connection, so this mostly paces retries across DC outages.
	ResendAfter time.Duration
	// RedialBackoff is the initial pause between failed connection
	// attempts, doubling up to a 1s cap (default 10ms).
	RedialBackoff time.Duration
	// ConnectTimeout bounds one TCP connect attempt (default 2s).
	ConnectTimeout time.Duration
	// DropProb injects outbound frame loss: each send is silently
	// dropped with this probability before it reaches the socket. TCP
	// itself never loses frames, so this is the chaos knob that lets a
	// fleet soak (cmd/soak) exercise the resend path over real sockets
	// without killing processes. Zero (the default) disables it.
	DropProb float64
	// DropSeed makes the injected loss reproducible (0: seed 1).
	DropSeed int64
}

func (c DialConfig) withDefaults() DialConfig {
	if c.ResendAfter <= 0 {
		c.ResendAfter = 25 * time.Millisecond
	}
	if c.RedialBackoff <= 0 {
		c.RedialBackoff = 10 * time.Millisecond
	}
	if c.ConnectTimeout <= 0 {
		c.ConnectTimeout = 2 * time.Second
	}
	return c
}

// Dial returns a Client speaking the TC:DC protocol to the Listener at
// addr. The connection is supervised in the background: it is established
// (and re-established) with capped-backoff redial, so Dial itself never
// blocks and a DC that is down, restarting, or not yet started simply
// looks slow — the client's resend loop rides out the gap. Close the
// client to stop the supervisor.
func Dial(addr string, cfg DialConfig) *Client {
	cfg = cfg.withDefaults()
	link := &tcpLink{addr: addr, cfg: cfg, ready: make(chan struct{})}
	if cfg.DropProb > 0 {
		seed := cfg.DropSeed
		if seed == 0 {
			seed = 1
		}
		link.dropRnd = rand.New(rand.NewSource(seed))
	}
	cl := newClient(link.send, func() time.Duration { return cfg.ResendAfter })
	cl.link = link
	cl.teardown = link.shutdown
	link.cl = cl
	go link.run()
	return cl
}

// tcpLink supervises one client connection: dial with backoff, pump
// replies, redial on failure, and tell the session observer (the
// deployment layer) about re-established sessions so it can trigger the
// §5.3.2 DC-recovery resend.
type tcpLink struct {
	addr string
	cfg  DialConfig
	cl   *Client

	mu       sync.Mutex
	conn     net.Conn
	bw       *bufio.Writer
	buf      []byte
	ready    chan struct{} // closed while a connection is established
	shutOnce sync.Once
	shut     chan struct{}

	// dropRnd, when non-nil, drives DropProb loss injection; guarded by mu
	// (send already holds it).
	dropRnd *rand.Rand

	sessions    atomic.Uint64
	onReconnect atomic.Pointer[func()]

	bytesOut, bytesIn, frameErrs, dropsInjected atomic.Uint64
}

func (ln *tcpLink) shutdown() {
	ln.shutOnce.Do(func() {
		ln.mu.Lock()
		if ln.shut == nil {
			ln.shut = make(chan struct{})
		}
		close(ln.shut)
		if ln.conn != nil {
			ln.conn.Close()
		}
		ln.mu.Unlock()
	})
}

func (ln *tcpLink) closed() <-chan struct{} {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	if ln.shut == nil {
		ln.shut = make(chan struct{})
	}
	return ln.shut
}

func (ln *tcpLink) run() {
	backoff := ln.cfg.RedialBackoff
	shut := ln.closed()
	for {
		select {
		case <-shut:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", ln.addr, ln.cfg.ConnectTimeout)
		if err != nil {
			select {
			case <-shut:
				return
			case <-time.After(backoff):
			}
			if backoff < time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = ln.cfg.RedialBackoff
		ln.mu.Lock()
		select {
		case <-shut:
			ln.mu.Unlock()
			conn.Close()
			return
		default:
		}
		ln.conn = conn
		ln.bw = bufio.NewWriter(conn)
		close(ln.ready)
		ln.mu.Unlock()
		if n := ln.sessions.Add(1); n > 1 {
			// A re-established session: the DC process may have restarted
			// with volatile state lost. The observer (core.Deployment) reacts
			// by replaying the redo stream; it must run outside this
			// goroutine, which is about to become the reply pump the redo's
			// own calls depend on.
			if f := ln.onReconnect.Load(); f != nil {
				go (*f)()
			}
		}
		br := bufio.NewReader(conn)
		for {
			m, err := readStreamFrame(br)
			if err != nil {
				if errors.Is(err, errBadFrame) {
					// Corrupt framing, as opposed to an ordinary connection
					// teardown: worth its own counter on the admin endpoint.
					ln.frameErrs.Add(1)
				}
				break
			}
			ln.bytesIn.Add(uint64(m.size()))
			ln.cl.dispatch(m)
		}
		ln.mu.Lock()
		if ln.conn == conn {
			ln.conn = nil
			ln.bw = nil
			ln.ready = make(chan struct{})
		}
		ln.mu.Unlock()
		conn.Close()
	}
}

// send writes one frame to the current connection. With no connection (or
// on a write error) the message is dropped — the resend loop recovers, so
// loss here is no different from loss on the simulated fabric.
func (ln *tcpLink) send(m *message) {
	ln.mu.Lock()
	conn, bw := ln.conn, ln.bw
	if conn == nil {
		ln.mu.Unlock()
		return
	}
	if ln.dropRnd != nil && ln.dropRnd.Float64() < ln.cfg.DropProb {
		// Injected loss (DialConfig.DropProb): indistinguishable from a
		// frame the network ate; the resend loop recovers.
		ln.dropsInjected.Add(1)
		ln.mu.Unlock()
		return
	}
	conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	buf, err := writeFrame(bw, ln.buf, m)
	ln.buf = buf
	if err == nil {
		err = bw.Flush()
		ln.bytesOut.Add(uint64(len(buf)))
	}
	ln.mu.Unlock()
	if err != nil {
		conn.Close() // unblocks the reader; the supervisor redials
	}
}

// Reconnects reports how many times the supervised connection was
// re-established after the first session — each one a DC outage the
// resend path rode out.
func (c *Client) Reconnects() uint64 {
	if c.link == nil {
		return 0
	}
	if n := c.link.sessions.Load(); n > 1 {
		return n - 1
	}
	return 0
}

// OnReconnect registers f to run (in its own goroutine) every time the
// supervised connection is re-established after the first session. The
// deployment layer uses it to replay the TC's redo stream to a restarted
// DC (§5.3.2 "DC Failure") without any manual intervention. No-op on the
// simulated transport, whose outages are driven explicitly by tests.
func (c *Client) OnReconnect(f func()) {
	if c.link != nil {
		c.link.onReconnect.Store(&f)
	}
}

// WaitConnected blocks until the supervised connection is established or
// ctx is done. The simulated transport is always "connected".
func (c *Client) WaitConnected(ctx context.Context) error {
	if c.link == nil {
		return nil
	}
	for {
		c.link.mu.Lock()
		conn, ready := c.link.conn, c.link.ready
		c.link.mu.Unlock()
		if conn != nil {
			return nil
		}
		select {
		case <-ready:
		case <-ctx.Done():
			return base.CancelErr(ctx)
		case <-c.closeCh:
			return base.ErrUnavailable
		}
	}
}
