// Package wire carries the TC:DC message protocol over two transports.
//
// The simulated fabric (Network, Connect) is the substitute for a cloud
// RPC stack used by tests and experiments (DESIGN.md §3). It deliberately
// misbehaves: configurable one-way delay and jitter (which reorders
// deliveries), message loss, and duplication — the chaos half of the
// package.
//
// The TCP transport (Listen, Dial) is the deployment half: it serves a
// base.Service — a DC — on a real socket and dials it from another OS
// process, with automatic redial when the peer restarts. Both transports
// share one frame codec (codec.go) and one client stub (Client, in
// client.go) implementing base.Service by resending requests until
// acknowledged (§4.2 "Resend Requests"); together with DC idempotence this
// yields exactly-once execution of logical operations over an
// at-most-once network — whether the misbehaviour is injected by the
// simulator or by real processes crashing mid-stream.
//
// Operations and results cross the wire in their binary encodings, so the
// serialization cost the paper's unbundling implies is actually paid.
// Pipelined senders ship whole batches of operations in one message
// (msgPerformBatch) with per-operation results in the reply, amortizing a
// round trip over many operations while preserving arrival order at the DC.
package wire

import (
	"context"
	"encoding/binary"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cidr09/unbundled/internal/base"
)

// Config shapes network behaviour. The zero value is a perfect, zero-delay
// network.
type Config struct {
	// Delay is the base one-way delivery delay.
	Delay time.Duration
	// Jitter adds a uniform random [0, Jitter) to each delivery; any
	// nonzero jitter reorders messages.
	Jitter time.Duration
	// LossProb is the probability a message is silently dropped.
	LossProb float64
	// DupProb is the probability a message is delivered twice.
	DupProb float64
	// ResendAfter is how long the client waits for a reply before
	// resending. Zero picks a default derived from Delay.
	ResendAfter time.Duration
	// Seed makes the misbehaviour reproducible.
	Seed int64
	// CoalesceAcks batches server replies that accumulate while a
	// delivery is in flight into one msgReplyBatch frame, mirroring the
	// TCP transport's default. On the simulated fabric this mostly exists
	// so chaos tests can drive loss/dup/jitter through the batched-ack
	// decode path.
	CoalesceAcks bool
}

func (c Config) resendAfter() time.Duration {
	if c.ResendAfter > 0 {
		return c.ResendAfter
	}
	d := 4*(c.Delay+c.Jitter) + 2*time.Millisecond
	return d
}

// Stats counts network traffic.
type Stats struct {
	Sent       uint64
	Delivered  uint64
	Dropped    uint64
	Duplicated uint64
	Bytes      uint64
	Resends    uint64
}

// Network is a collection of links sharing one misbehaviour configuration.
type Network struct {
	cfg Config
	// misbehaves caches whether any RNG-driven misbehaviour is configured;
	// a well-behaved (possibly delayed) network skips the RNG entirely.
	misbehaves bool

	// epSeq numbers endpoints so each can derive a deterministic RNG seed
	// without sharing (and contending on) one network-global RNG.
	epSeq atomic.Uint64

	sent, delivered, dropped, duplicated, bytes, resends atomic.Uint64
}

// NewNetwork returns a network with the given configuration.
func NewNetwork(cfg Config) *Network {
	return &Network{cfg: cfg,
		misbehaves: cfg.LossProb > 0 || cfg.DupProb > 0 || cfg.Jitter > 0}
}

// Stats returns a snapshot of traffic counters.
func (n *Network) Stats() Stats {
	return Stats{
		Sent:       n.sent.Load(),
		Delivered:  n.delivered.Load(),
		Dropped:    n.dropped.Load(),
		Duplicated: n.duplicated.Load(),
		Bytes:      n.bytes.Load(),
		Resends:    n.resends.Load(),
	}
}

type msgKind uint8

const (
	msgPerform msgKind = iota + 1
	msgPerformBatch
	msgEOSL
	msgLWM
	msgCheckpoint
	msgBeginRestart
	msgEndRestart
	msgReply // server -> client; id correlates
	// msgSafeTS sits after msgReply so pre-snapshot peers that validate
	// kinds against msgReply keep accepting every frame they understand.
	msgSafeTS
	// msgCatalog asks the server for the tables its service actually
	// serves (the fleet-assembly placement cross-check). Appended last,
	// like msgSafeTS, to keep old frames decoding identically.
	msgCatalog
	// msgReplyBatch coalesces several msgReply frames into one — the
	// inverse of msgPerformBatch: where a pipelined sender amortizes a
	// round trip over many operations, the server amortizes a flush (and,
	// at the TC, a commit-force window) over many acks. Appended last, so
	// old frames decode identically.
	msgReplyBatch
)

// Cataloger is the optional service facet behind msgCatalog: a server
// whose wrapped service implements it (the DC does, via Tables) answers
// catalog requests; otherwise the request fails typed with
// base.ErrUnavailable so old servers and thin test fakes stay usable.
type Cataloger interface {
	Tables() []string
}

// appendCatalog encodes a table list as uvarint count + length-prefixed
// names.
func appendCatalog(buf []byte, tables []string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(tables)))
	for _, t := range tables {
		buf = binary.AppendUvarint(buf, uint64(len(t)))
		buf = append(buf, t...)
	}
	return buf
}

func decodeCatalog(body []byte) ([]string, error) {
	n, body, err := readUvarint(body)
	if err != nil {
		return nil, err
	}
	tables := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		var raw []byte
		if raw, body, err = readLenBytes(body); err != nil {
			return nil, err
		}
		tables = append(tables, string(raw))
	}
	return tables, nil
}

// catalogReply builds the msgCatalog reply for a service, shared by both
// transports.
func catalogReply(svc base.Service, id uint64) *message {
	if cat, ok := svc.(Cataloger); ok {
		return &message{kind: msgReply, id: id, body: appendCatalog(nil, cat.Tables())}
	}
	return &message{kind: msgReply, id: id,
		err: "wire: service has no table catalog: " + base.ErrUnavailable.Error()}
}

type message struct {
	kind  msgKind
	id    uint64
	tc    base.TCID
	epoch base.Epoch // sender incarnation (control and watermark messages)
	lsn   base.LSN
	body  []byte // encoded op (perform) or encoded result (reply)
	err   string // control-reply failure
}

func (m *message) size() int { return 32 + len(m.body) + len(m.err) }

// deliver schedules msg into dst applying delay/jitter/loss/duplication.
// The misbehaviour RNG is per destination endpoint, so concurrent senders
// on a busy deployment do not serialize on one network-global mutex.
func (n *Network) deliver(dst *endpoint, m *message) {
	n.sent.Add(1)
	n.bytes.Add(uint64(m.size()))
	var drop, dup bool
	var jitter time.Duration
	if n.misbehaves {
		dst.rmu.Lock()
		drop = dst.rnd.Float64() < n.cfg.LossProb
		dup = dst.rnd.Float64() < n.cfg.DupProb
		if n.cfg.Jitter > 0 {
			jitter = time.Duration(dst.rnd.Int63n(int64(n.cfg.Jitter)))
		}
		dst.rmu.Unlock()
	}
	if drop {
		n.dropped.Add(1)
		return
	}
	send := func() {
		delay := n.cfg.Delay + jitter
		if delay <= 0 {
			dst.push(n, m)
			return
		}
		time.AfterFunc(delay, func() { dst.push(n, m) })
	}
	send()
	if dup {
		n.duplicated.Add(1)
		send()
	}
}

// endpoint is one side of a link: an inbox plus a down flag and the
// link-local misbehaviour RNG.
type endpoint struct {
	inbox chan *message
	down  atomic.Bool
	once  sync.Once
	close chan struct{}

	rmu sync.Mutex
	rnd *rand.Rand
}

func (n *Network) newEndpoint() *endpoint {
	seq := int64(n.epSeq.Add(1))
	return &endpoint{
		inbox: make(chan *message, 8192),
		close: make(chan struct{}),
		rnd:   rand.New(rand.NewSource(n.cfg.Seed + seq*104729 + 1)),
	}
}

func (e *endpoint) push(n *Network, m *message) {
	if e.down.Load() {
		n.dropped.Add(1)
		return
	}
	select {
	case e.inbox <- m:
		n.delivered.Add(1)
	case <-e.close:
		n.dropped.Add(1)
	default:
		// Congestion: the inbox is full; drop. Resend recovers.
		n.dropped.Add(1)
	}
}

func (e *endpoint) shutdown() { e.once.Do(func() { close(e.close) }) }

// Connect builds a client/server pair over n. The server dispatches to
// svc; Perform requests run in their own goroutines, matching the paper's
// multi-threaded DC. Close the returned pair to stop the pumps.
func (n *Network) Connect(svc base.Service) (*Client, *Server) {
	toServer := n.newEndpoint()
	toClient := n.newEndpoint()
	srv := &Server{net: n, svc: svc, in: toServer, out: toClient}
	if n.cfg.CoalesceAcks {
		srv.acks = &ackBatcher{out: srv.deliverBatch, batches: &srv.ackBatches, coalesced: &srv.acksCoalesced}
	}
	cl := newClient(func(m *message) { n.deliver(toServer, m) }, n.cfg.resendAfter)
	cl.onResend = func() { n.resends.Add(1) }
	cl.simIn = toClient
	cl.teardown = toClient.shutdown
	go srv.run()
	go cl.pumpSim(toClient)
	return cl, srv
}

// pumpSim feeds replies delivered by the simulated fabric into the shared
// dispatch path until the client's inbound endpoint shuts down.
func (c *Client) pumpSim(in *endpoint) {
	for {
		select {
		case <-in.close:
			return
		case m := <-in.inbox:
			c.dispatch(m)
		}
	}
}

// Server pumps inbound messages into the wrapped service.
type Server struct {
	net  *Network
	svc  base.Service
	in   *endpoint
	out  *endpoint
	acks *ackBatcher // non-nil with Config.CoalesceAcks

	ackBatches, acksCoalesced atomic.Uint64
}

// reply routes one reply toward the client, through the ack coalescer
// when one is configured.
func (s *Server) reply(m *message) {
	if s.acks != nil {
		s.acks.add(m)
		return
	}
	s.net.deliver(s.out, m)
}

// deliverBatch ships one coalesced batch as a single fabric delivery — so
// loss drops, duplication re-delivers, and jitter reorders whole ack
// batches, exactly the failure modes the oracle tests aim at.
func (s *Server) deliverBatch(batch []*message) {
	if len(batch) == 1 {
		s.net.deliver(s.out, batch[0])
		return
	}
	s.net.deliver(s.out, &message{kind: msgReplyBatch, body: encodeAckBatch(getReplyBuf(), batch)})
}

// AckStats returns the coalescing counters: flushed ack deliveries and
// the number of replies that rode along in a batch instead of paying
// their own delivery (zero without Config.CoalesceAcks).
func (s *Server) AckStats() (batches, coalesced uint64) {
	return s.ackBatches.Load(), s.acksCoalesced.Load()
}

// SetDown marks the server (DC process) up or down. While down, inbound
// messages are dropped — crashed processes do not answer.
func (s *Server) SetDown(down bool) { s.in.down.Store(down) }

// Close stops the server pump.
func (s *Server) Close() { s.in.shutdown() }

func (s *Server) run() {
	for {
		select {
		case <-s.in.close:
			return
		case m := <-s.in.inbox:
			if s.in.down.Load() {
				continue
			}
			switch m.kind {
			case msgPerform:
				go s.perform(m)
			case msgPerformBatch:
				go s.performBatch(m)
			case msgEOSL:
				s.svc.EndOfStableLog(m.tc, m.epoch, m.lsn)
			case msgSafeTS:
				horizon, _ := binary.Uvarint(m.body)
				s.svc.SafeTS(m.tc, m.epoch, base.TS(m.lsn), base.TS(horizon))
			case msgLWM:
				s.svc.LowWaterMark(m.tc, m.epoch, m.lsn)
			case msgCheckpoint:
				go s.control(m, func() error { return s.svc.Checkpoint(context.Background(), m.tc, m.epoch, m.lsn) })
			case msgBeginRestart:
				go s.control(m, func() error { return s.svc.BeginRestart(context.Background(), m.tc, m.epoch, m.lsn) })
			case msgEndRestart:
				go s.control(m, func() error { return s.svc.EndRestart(context.Background(), m.tc, m.epoch) })
			case msgCatalog:
				s.reply(catalogReply(s.svc, m.id))
			}
		}
	}
}

func (s *Server) perform(m *message) {
	op, _, err := base.DecodeOp(m.body)
	if err != nil {
		s.reply(&message{kind: msgReply, id: m.id, err: err.Error()})
		return
	}
	// The server side has no caller context: a request that reached the DC
	// executes to completion (cancellation only ever abandons the client's
	// wait).
	res := s.svc.Perform(context.Background(), op)
	s.reply(&message{kind: msgReply, id: m.id, body: base.AppendResult(getReplyBuf(), res)})
}

func (s *Server) performBatch(m *message) {
	ops, _, err := base.DecodeOpBatch(m.body)
	if err != nil {
		s.reply(&message{kind: msgReply, id: m.id, err: err.Error()})
		return
	}
	rs := s.svc.PerformBatch(context.Background(), ops)
	s.reply(&message{kind: msgReply, id: m.id, body: base.AppendResultBatch(getReplyBuf(), rs)})
}

// Reply bodies are encoded into pooled buffers: a reply is consumed by
// exactly one call() return (duplicate deliveries land in the inbox but
// their bodies are never read once the waiter is gone or full), so the
// consumer can recycle the buffer right after decoding. Request bodies are
// deliberately NOT pooled — resends and delayed duplicate deliveries share
// one request slice whose last reader cannot be identified cheaply.
var replyBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

const maxPooledBuf = 1 << 16

func getReplyBuf() []byte { return (*replyBufPool.Get().(*[]byte))[:0] }

func putReplyBuf(b []byte) {
	if cap(b) > 0 && cap(b) <= maxPooledBuf {
		replyBufPool.Put(&b)
	}
}

func (s *Server) control(m *message, f func() error) {
	var errStr string
	if err := f(); err != nil {
		errStr = err.Error()
	}
	s.reply(&message{kind: msgReply, id: m.id, err: errStr})
}
