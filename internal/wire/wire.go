// Package wire is the asynchronous message fabric between TCs and DCs —
// the substitute for a cloud RPC stack (DESIGN.md §3). It deliberately
// misbehaves: configurable one-way delay and jitter (which reorders
// deliveries), message loss, and duplication. The client stub implements
// base.Service by resending requests until acknowledged (§4.2 "Resend
// Requests"); together with DC idempotence this yields exactly-once
// execution of logical operations over an at-most-once network.
//
// Operations and results cross the wire in their binary encodings, so the
// serialization cost the paper's unbundling implies is actually paid.
// Pipelined senders ship whole batches of operations in one message
// (msgPerformBatch) with per-operation results in the reply, amortizing a
// round trip over many operations while preserving arrival order at the DC.
package wire

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cidr09/unbundled/internal/base"
)

// Config shapes network behaviour. The zero value is a perfect, zero-delay
// network.
type Config struct {
	// Delay is the base one-way delivery delay.
	Delay time.Duration
	// Jitter adds a uniform random [0, Jitter) to each delivery; any
	// nonzero jitter reorders messages.
	Jitter time.Duration
	// LossProb is the probability a message is silently dropped.
	LossProb float64
	// DupProb is the probability a message is delivered twice.
	DupProb float64
	// ResendAfter is how long the client waits for a reply before
	// resending. Zero picks a default derived from Delay.
	ResendAfter time.Duration
	// Seed makes the misbehaviour reproducible.
	Seed int64
}

func (c Config) resendAfter() time.Duration {
	if c.ResendAfter > 0 {
		return c.ResendAfter
	}
	d := 4*(c.Delay+c.Jitter) + 2*time.Millisecond
	return d
}

// Stats counts network traffic.
type Stats struct {
	Sent       uint64
	Delivered  uint64
	Dropped    uint64
	Duplicated uint64
	Bytes      uint64
	Resends    uint64
}

// Network is a collection of links sharing one misbehaviour configuration.
type Network struct {
	cfg Config
	// misbehaves caches whether any RNG-driven misbehaviour is configured;
	// a well-behaved (possibly delayed) network skips the RNG entirely.
	misbehaves bool

	// epSeq numbers endpoints so each can derive a deterministic RNG seed
	// without sharing (and contending on) one network-global RNG.
	epSeq atomic.Uint64

	sent, delivered, dropped, duplicated, bytes, resends atomic.Uint64
}

// NewNetwork returns a network with the given configuration.
func NewNetwork(cfg Config) *Network {
	return &Network{cfg: cfg,
		misbehaves: cfg.LossProb > 0 || cfg.DupProb > 0 || cfg.Jitter > 0}
}

// Stats returns a snapshot of traffic counters.
func (n *Network) Stats() Stats {
	return Stats{
		Sent:       n.sent.Load(),
		Delivered:  n.delivered.Load(),
		Dropped:    n.dropped.Load(),
		Duplicated: n.duplicated.Load(),
		Bytes:      n.bytes.Load(),
		Resends:    n.resends.Load(),
	}
}

type msgKind uint8

const (
	msgPerform msgKind = iota + 1
	msgPerformBatch
	msgEOSL
	msgLWM
	msgCheckpoint
	msgBeginRestart
	msgEndRestart
	msgReply // server -> client; id correlates
)

type message struct {
	kind  msgKind
	id    uint64
	tc    base.TCID
	epoch base.Epoch // sender incarnation (control and watermark messages)
	lsn   base.LSN
	body  []byte // encoded op (perform) or encoded result (reply)
	err   string // control-reply failure
}

func (m *message) size() int { return 32 + len(m.body) + len(m.err) }

// deliver schedules msg into dst applying delay/jitter/loss/duplication.
// The misbehaviour RNG is per destination endpoint, so concurrent senders
// on a busy deployment do not serialize on one network-global mutex.
func (n *Network) deliver(dst *endpoint, m *message) {
	n.sent.Add(1)
	n.bytes.Add(uint64(m.size()))
	var drop, dup bool
	var jitter time.Duration
	if n.misbehaves {
		dst.rmu.Lock()
		drop = dst.rnd.Float64() < n.cfg.LossProb
		dup = dst.rnd.Float64() < n.cfg.DupProb
		if n.cfg.Jitter > 0 {
			jitter = time.Duration(dst.rnd.Int63n(int64(n.cfg.Jitter)))
		}
		dst.rmu.Unlock()
	}
	if drop {
		n.dropped.Add(1)
		return
	}
	send := func() {
		delay := n.cfg.Delay + jitter
		if delay <= 0 {
			dst.push(n, m)
			return
		}
		time.AfterFunc(delay, func() { dst.push(n, m) })
	}
	send()
	if dup {
		n.duplicated.Add(1)
		send()
	}
}

// endpoint is one side of a link: an inbox plus a down flag and the
// link-local misbehaviour RNG.
type endpoint struct {
	inbox chan *message
	down  atomic.Bool
	once  sync.Once
	close chan struct{}

	rmu sync.Mutex
	rnd *rand.Rand
}

func (n *Network) newEndpoint() *endpoint {
	seq := int64(n.epSeq.Add(1))
	return &endpoint{
		inbox: make(chan *message, 8192),
		close: make(chan struct{}),
		rnd:   rand.New(rand.NewSource(n.cfg.Seed + seq*104729 + 1)),
	}
}

func (e *endpoint) push(n *Network, m *message) {
	if e.down.Load() {
		n.dropped.Add(1)
		return
	}
	select {
	case e.inbox <- m:
		n.delivered.Add(1)
	case <-e.close:
		n.dropped.Add(1)
	default:
		// Congestion: the inbox is full; drop. Resend recovers.
		n.dropped.Add(1)
	}
}

func (e *endpoint) shutdown() { e.once.Do(func() { close(e.close) }) }

// Connect builds a client/server pair over n. The server dispatches to
// svc; Perform requests run in their own goroutines, matching the paper's
// multi-threaded DC. Close the returned pair to stop the pumps.
func (n *Network) Connect(svc base.Service) (*Client, *Server) {
	toServer := n.newEndpoint()
	toClient := n.newEndpoint()
	srv := &Server{net: n, svc: svc, in: toServer, out: toClient}
	cl := &Client{net: n, in: toClient, out: toServer,
		waiters: make(map[uint64]chan *message)}
	go srv.run()
	go cl.run()
	return cl, srv
}

// Server pumps inbound messages into the wrapped service.
type Server struct {
	net *Network
	svc base.Service
	in  *endpoint
	out *endpoint
}

// SetDown marks the server (DC process) up or down. While down, inbound
// messages are dropped — crashed processes do not answer.
func (s *Server) SetDown(down bool) { s.in.down.Store(down) }

// Close stops the server pump.
func (s *Server) Close() { s.in.shutdown() }

func (s *Server) run() {
	for {
		select {
		case <-s.in.close:
			return
		case m := <-s.in.inbox:
			if s.in.down.Load() {
				continue
			}
			switch m.kind {
			case msgPerform:
				go s.perform(m)
			case msgPerformBatch:
				go s.performBatch(m)
			case msgEOSL:
				s.svc.EndOfStableLog(m.tc, m.epoch, m.lsn)
			case msgLWM:
				s.svc.LowWaterMark(m.tc, m.epoch, m.lsn)
			case msgCheckpoint:
				go s.control(m, func() error { return s.svc.Checkpoint(context.Background(), m.tc, m.epoch, m.lsn) })
			case msgBeginRestart:
				go s.control(m, func() error { return s.svc.BeginRestart(context.Background(), m.tc, m.epoch, m.lsn) })
			case msgEndRestart:
				go s.control(m, func() error { return s.svc.EndRestart(context.Background(), m.tc, m.epoch) })
			}
		}
	}
}

func (s *Server) perform(m *message) {
	op, _, err := base.DecodeOp(m.body)
	if err != nil {
		s.net.deliver(s.out, &message{kind: msgReply, id: m.id, err: err.Error()})
		return
	}
	// The server side has no caller context: a request that reached the DC
	// executes to completion (cancellation only ever abandons the client's
	// wait).
	res := s.svc.Perform(context.Background(), op)
	s.net.deliver(s.out, &message{kind: msgReply, id: m.id, body: base.AppendResult(getReplyBuf(), res)})
}

func (s *Server) performBatch(m *message) {
	ops, _, err := base.DecodeOpBatch(m.body)
	if err != nil {
		s.net.deliver(s.out, &message{kind: msgReply, id: m.id, err: err.Error()})
		return
	}
	rs := s.svc.PerformBatch(context.Background(), ops)
	s.net.deliver(s.out, &message{kind: msgReply, id: m.id, body: base.AppendResultBatch(getReplyBuf(), rs)})
}

// Reply bodies are encoded into pooled buffers: a reply is consumed by
// exactly one call() return (duplicate deliveries land in the inbox but
// their bodies are never read once the waiter is gone or full), so the
// consumer can recycle the buffer right after decoding. Request bodies are
// deliberately NOT pooled — resends and delayed duplicate deliveries share
// one request slice whose last reader cannot be identified cheaply.
var replyBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

const maxPooledBuf = 1 << 16

func getReplyBuf() []byte { return (*replyBufPool.Get().(*[]byte))[:0] }

func putReplyBuf(b []byte) {
	if cap(b) > 0 && cap(b) <= maxPooledBuf {
		replyBufPool.Put(&b)
	}
}

func (s *Server) control(m *message, f func() error) {
	var errStr string
	if err := f(); err != nil {
		errStr = err.Error()
	}
	s.net.deliver(s.out, &message{kind: msgReply, id: m.id, err: errStr})
}

// Client is the TC-side stub implementing base.Service over the network.
type Client struct {
	net *Network
	in  *endpoint
	out *endpoint

	mu      sync.Mutex
	waiters map[uint64]chan *message
	nextID  atomic.Uint64
}

// Close stops the client pump and fails outstanding calls: every blocked
// Perform/PerformBatch caller — whether waiting on a reply, mid-resend, or
// pausing out a recovering DC — unblocks promptly with CodeUnavailable,
// and blocked control calls return an error.
func (c *Client) Close() {
	c.in.shutdown()
}

// SetDown marks the client (TC process) up or down; a down client drops
// inbound replies, as a crashed TC would.
func (c *Client) SetDown(down bool) { c.in.down.Store(down) }

// Closed reports whether Close has been called. Callers with their own
// retry loops (the TC's pipelines) use it to stop resending through a
// stub whose every reply will be CodeUnavailable.
func (c *Client) Closed() bool {
	select {
	case <-c.in.close:
		return true
	default:
		return false
	}
}

func (c *Client) run() {
	for {
		select {
		case <-c.in.close:
			return
		case m := <-c.in.inbox:
			if m.kind != msgReply {
				continue
			}
			c.mu.Lock()
			ch := c.waiters[m.id]
			c.mu.Unlock()
			if ch != nil {
				select {
				case ch <- m:
				default: // duplicate reply for an already-answered attempt
				}
			}
		}
	}
}

// call sends m (with a fresh correlation id per attempt) and resends until
// a reply arrives, the client is closed, or ctx is done (the returned
// error is then the ErrCancelled-wrapped ctx error). Cancellation abandons
// only the wait: attempts already delivered may still execute at the DC.
func (c *Client) call(ctx context.Context, kind msgKind, tc base.TCID, epoch base.Epoch, lsn base.LSN, body []byte) (*message, error) {
	resend := c.net.cfg.resendAfter()
	attempt := 0
	for {
		id := c.nextID.Add(1)
		ch := make(chan *message, 1)
		c.mu.Lock()
		c.waiters[id] = ch
		c.mu.Unlock()
		c.net.deliver(c.out, &message{kind: kind, id: id, tc: tc, epoch: epoch, lsn: lsn, body: body})
		if attempt > 0 {
			c.net.resends.Add(1)
		}
		timer := time.NewTimer(resend)
		select {
		case reply := <-ch:
			timer.Stop()
			c.mu.Lock()
			delete(c.waiters, id)
			c.mu.Unlock()
			return reply, nil
		case <-timer.C:
			c.mu.Lock()
			delete(c.waiters, id)
			c.mu.Unlock()
			attempt++
			// Exponential-ish backoff, capped: persistent resend per §4.2.
			if attempt > 4 && resend < time.Second {
				resend *= 2
			}
		case <-ctx.Done():
			timer.Stop()
			c.mu.Lock()
			delete(c.waiters, id)
			c.mu.Unlock()
			return nil, base.CancelErr(ctx)
		case <-c.in.close:
			timer.Stop()
			return &message{kind: msgReply, err: closedErrText}, nil
		}
	}
}

// closedErrText names the taxonomy sentinel so controlErr rehydrates a
// closed-stub failure as base.ErrUnavailable.
var closedErrText = "wire: client closed: " + base.ErrUnavailable.Error()

// Perform implements base.Service. It blocks, resending, until the DC
// acknowledges — exactly-once courtesy of unique request IDs (op.LSN) and
// DC idempotence — or until ctx is done (CodeCancelled).
func (c *Client) Perform(ctx context.Context, op *base.Op) *base.Result {
	body := base.AppendOp(nil, op)
	for {
		reply, err := c.call(ctx, msgPerform, op.TC, op.Epoch, op.LSN, body)
		if err != nil {
			return &base.Result{LSN: op.LSN, Code: base.CodeCancelled}
		}
		if reply.err != "" {
			return &base.Result{LSN: op.LSN, Code: base.CodeUnavailable}
		}
		res, _, derr := base.DecodeResult(reply.body)
		putReplyBuf(reply.body)
		if derr != nil {
			return &base.Result{LSN: op.LSN, Code: base.CodeBadRequest}
		}
		// CodeStaleEpoch is a permanent nack (the sender's incarnation was
		// fenced by a restart): returned as-is, never retried.
		if res.Code == base.CodeUnavailable {
			// DC up but still recovering; retry after a pause (which a
			// concurrent Close or cancellation cuts short).
			if code := c.pause(ctx); code != base.CodeOK {
				return &base.Result{LSN: op.LSN, Code: code}
			}
			continue
		}
		return res
	}
}

// PerformBatch implements base.Service: one message carries the whole
// batch, one reply carries the per-operation results. A reply containing
// any CodeUnavailable result (the DC was down or recovering) triggers a
// resend of the whole batch — per-operation idempotence absorbs the
// re-execution of operations that did land.
func (c *Client) PerformBatch(ctx context.Context, ops []*base.Op) []*base.Result {
	if len(ops) == 1 {
		return []*base.Result{c.Perform(ctx, ops[0])}
	}
	body := base.AppendOpBatch(nil, ops)
	fail := func(code base.Code) []*base.Result {
		rs := make([]*base.Result, len(ops))
		for i, op := range ops {
			rs[i] = &base.Result{LSN: op.LSN, Code: code}
		}
		return rs
	}
	for {
		reply, err := c.call(ctx, msgPerformBatch, ops[0].TC, ops[0].Epoch, ops[0].LSN, body)
		if err != nil {
			return fail(base.CodeCancelled)
		}
		if reply.err != "" {
			return fail(base.CodeUnavailable)
		}
		rs, derr := decodeBatchReply(reply.body, len(ops))
		if derr != nil {
			return fail(base.CodeBadRequest)
		}
		unavailable := false
		for _, r := range rs {
			if r.Code == base.CodeUnavailable {
				unavailable = true
				break
			}
		}
		if !unavailable {
			return rs
		}
		if code := c.pause(ctx); code != base.CodeOK {
			return fail(code)
		}
	}
}

func decodeBatchReply(body []byte, want int) ([]*base.Result, error) {
	rs, _, err := base.DecodeResultBatch(body)
	putReplyBuf(body)
	if err != nil {
		return nil, err
	}
	if len(rs) != want {
		return nil, fmt.Errorf("wire: batch reply size %d, want %d", len(rs), want)
	}
	return rs, nil
}

// pause sleeps one resend interval before retrying a recovering DC. It
// returns CodeOK to retry, CodeUnavailable when the client was closed
// during the wait, or CodeCancelled when ctx expired first.
func (c *Client) pause(ctx context.Context) base.Code {
	timer := time.NewTimer(c.net.cfg.resendAfter())
	defer timer.Stop()
	select {
	case <-timer.C:
		return base.CodeOK
	case <-ctx.Done():
		return base.CodeCancelled
	case <-c.in.close:
		return base.CodeUnavailable
	}
}

// EndOfStableLog implements base.Service as fire-and-forget; the TC
// re-broadcasts the watermark periodically, so loss only delays pruning.
func (c *Client) EndOfStableLog(tc base.TCID, epoch base.Epoch, eosl base.LSN) {
	c.net.deliver(c.out, &message{kind: msgEOSL, tc: tc, epoch: epoch, lsn: eosl})
}

// LowWaterMark implements base.Service as fire-and-forget.
func (c *Client) LowWaterMark(tc base.TCID, epoch base.Epoch, lwm base.LSN) {
	c.net.deliver(c.out, &message{kind: msgLWM, tc: tc, epoch: epoch, lsn: lwm})
}

// Checkpoint implements base.Service with resend until acknowledged.
func (c *Client) Checkpoint(ctx context.Context, tc base.TCID, epoch base.Epoch, newRSSP base.LSN) error {
	return c.controlErr(c.call(ctx, msgCheckpoint, tc, epoch, newRSSP, nil))
}

// BeginRestart implements base.Service with resend until acknowledged.
func (c *Client) BeginRestart(ctx context.Context, tc base.TCID, epoch base.Epoch, stableLSN base.LSN) error {
	return c.controlErr(c.call(ctx, msgBeginRestart, tc, epoch, stableLSN, nil))
}

// EndRestart implements base.Service with resend until acknowledged.
func (c *Client) EndRestart(ctx context.Context, tc base.TCID, epoch base.Epoch) error {
	return c.controlErr(c.call(ctx, msgEndRestart, tc, epoch, 0, nil))
}

func (c *Client) controlErr(reply *message, err error) error {
	if err != nil {
		return err
	}
	if reply.err != "" {
		// Control failures cross the wire as strings; rehydrate the typed
		// sentinels (stale-epoch, unavailable) so errors.Is keeps working
		// through the stub.
		return fmt.Errorf("wire: %w", base.RehydrateWireError(reply.err))
	}
	return nil
}
