// Package wire is the asynchronous message fabric between TCs and DCs —
// the substitute for a cloud RPC stack (DESIGN.md §3). It deliberately
// misbehaves: configurable one-way delay and jitter (which reorders
// deliveries), message loss, and duplication. The client stub implements
// base.Service by resending requests until acknowledged (§4.2 "Resend
// Requests"); together with DC idempotence this yields exactly-once
// execution of logical operations over an at-most-once network.
//
// Operations and results cross the wire in their binary encodings, so the
// serialization cost the paper's unbundling implies is actually paid.
package wire

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cidr09/unbundled/internal/base"
)

// Config shapes network behaviour. The zero value is a perfect, zero-delay
// network.
type Config struct {
	// Delay is the base one-way delivery delay.
	Delay time.Duration
	// Jitter adds a uniform random [0, Jitter) to each delivery; any
	// nonzero jitter reorders messages.
	Jitter time.Duration
	// LossProb is the probability a message is silently dropped.
	LossProb float64
	// DupProb is the probability a message is delivered twice.
	DupProb float64
	// ResendAfter is how long the client waits for a reply before
	// resending. Zero picks a default derived from Delay.
	ResendAfter time.Duration
	// Seed makes the misbehaviour reproducible.
	Seed int64
}

func (c Config) resendAfter() time.Duration {
	if c.ResendAfter > 0 {
		return c.ResendAfter
	}
	d := 4*(c.Delay+c.Jitter) + 2*time.Millisecond
	return d
}

// Stats counts network traffic.
type Stats struct {
	Sent       uint64
	Delivered  uint64
	Dropped    uint64
	Duplicated uint64
	Bytes      uint64
	Resends    uint64
}

// Network is a collection of links sharing one misbehaviour configuration.
type Network struct {
	cfg Config

	mu  sync.Mutex
	rnd *rand.Rand

	sent, delivered, dropped, duplicated, bytes, resends atomic.Uint64
}

// NewNetwork returns a network with the given configuration.
func NewNetwork(cfg Config) *Network {
	return &Network{cfg: cfg, rnd: rand.New(rand.NewSource(cfg.Seed + 1))}
}

// Stats returns a snapshot of traffic counters.
func (n *Network) Stats() Stats {
	return Stats{
		Sent:       n.sent.Load(),
		Delivered:  n.delivered.Load(),
		Dropped:    n.dropped.Load(),
		Duplicated: n.duplicated.Load(),
		Bytes:      n.bytes.Load(),
		Resends:    n.resends.Load(),
	}
}

type msgKind uint8

const (
	msgPerform msgKind = iota + 1
	msgEOSL
	msgLWM
	msgCheckpoint
	msgBeginRestart
	msgEndRestart
	msgReply // server -> client; id correlates
)

type message struct {
	kind msgKind
	id   uint64
	tc   base.TCID
	lsn  base.LSN
	body []byte // encoded op (perform) or encoded result (reply)
	err  string // control-reply failure
}

func (m *message) size() int { return 24 + len(m.body) + len(m.err) }

// deliver schedules msg into dst applying delay/jitter/loss/duplication.
func (n *Network) deliver(dst *endpoint, m *message) {
	n.sent.Add(1)
	n.bytes.Add(uint64(m.size()))
	n.mu.Lock()
	drop := n.rnd.Float64() < n.cfg.LossProb
	dup := n.rnd.Float64() < n.cfg.DupProb
	var jitter time.Duration
	if n.cfg.Jitter > 0 {
		jitter = time.Duration(n.rnd.Int63n(int64(n.cfg.Jitter)))
	}
	n.mu.Unlock()
	if drop {
		n.dropped.Add(1)
		return
	}
	send := func() {
		delay := n.cfg.Delay + jitter
		if delay <= 0 {
			dst.push(n, m)
			return
		}
		time.AfterFunc(delay, func() { dst.push(n, m) })
	}
	send()
	if dup {
		n.duplicated.Add(1)
		send()
	}
}

// endpoint is one side of a link: an inbox plus a down flag.
type endpoint struct {
	inbox chan *message
	down  atomic.Bool
	once  sync.Once
	close chan struct{}
}

func newEndpoint() *endpoint {
	return &endpoint{inbox: make(chan *message, 8192), close: make(chan struct{})}
}

func (e *endpoint) push(n *Network, m *message) {
	if e.down.Load() {
		n.dropped.Add(1)
		return
	}
	select {
	case e.inbox <- m:
		n.delivered.Add(1)
	case <-e.close:
		n.dropped.Add(1)
	default:
		// Congestion: the inbox is full; drop. Resend recovers.
		n.dropped.Add(1)
	}
}

func (e *endpoint) shutdown() { e.once.Do(func() { close(e.close) }) }

// Connect builds a client/server pair over n. The server dispatches to
// svc; Perform requests run in their own goroutines, matching the paper's
// multi-threaded DC. Close the returned pair to stop the pumps.
func (n *Network) Connect(svc base.Service) (*Client, *Server) {
	toServer := newEndpoint()
	toClient := newEndpoint()
	srv := &Server{net: n, svc: svc, in: toServer, out: toClient}
	cl := &Client{net: n, in: toClient, out: toServer,
		waiters: make(map[uint64]chan *message)}
	go srv.run()
	go cl.run()
	return cl, srv
}

// Server pumps inbound messages into the wrapped service.
type Server struct {
	net *Network
	svc base.Service
	in  *endpoint
	out *endpoint
}

// SetDown marks the server (DC process) up or down. While down, inbound
// messages are dropped — crashed processes do not answer.
func (s *Server) SetDown(down bool) { s.in.down.Store(down) }

// Close stops the server pump.
func (s *Server) Close() { s.in.shutdown() }

func (s *Server) run() {
	for {
		select {
		case <-s.in.close:
			return
		case m := <-s.in.inbox:
			if s.in.down.Load() {
				continue
			}
			switch m.kind {
			case msgPerform:
				go s.perform(m)
			case msgEOSL:
				s.svc.EndOfStableLog(m.tc, m.lsn)
			case msgLWM:
				s.svc.LowWaterMark(m.tc, m.lsn)
			case msgCheckpoint:
				go s.control(m, func() error { return s.svc.Checkpoint(m.tc, m.lsn) })
			case msgBeginRestart:
				go s.control(m, func() error { return s.svc.BeginRestart(m.tc, m.lsn) })
			case msgEndRestart:
				go s.control(m, func() error { return s.svc.EndRestart(m.tc) })
			}
		}
	}
}

func (s *Server) perform(m *message) {
	op, _, err := base.DecodeOp(m.body)
	if err != nil {
		s.net.deliver(s.out, &message{kind: msgReply, id: m.id, err: err.Error()})
		return
	}
	res := s.svc.Perform(op)
	s.net.deliver(s.out, &message{kind: msgReply, id: m.id, body: base.AppendResult(nil, res)})
}

func (s *Server) control(m *message, f func() error) {
	var errStr string
	if err := f(); err != nil {
		errStr = err.Error()
	}
	s.net.deliver(s.out, &message{kind: msgReply, id: m.id, err: errStr})
}

// Client is the TC-side stub implementing base.Service over the network.
type Client struct {
	net *Network
	in  *endpoint
	out *endpoint

	mu      sync.Mutex
	waiters map[uint64]chan *message
	nextID  atomic.Uint64
}

// Close stops the client pump and fails outstanding calls.
func (c *Client) Close() {
	c.in.shutdown()
}

// SetDown marks the client (TC process) up or down; a down client drops
// inbound replies, as a crashed TC would.
func (c *Client) SetDown(down bool) { c.in.down.Store(down) }

func (c *Client) run() {
	for {
		select {
		case <-c.in.close:
			return
		case m := <-c.in.inbox:
			if m.kind != msgReply {
				continue
			}
			c.mu.Lock()
			ch := c.waiters[m.id]
			c.mu.Unlock()
			if ch != nil {
				select {
				case ch <- m:
				default: // duplicate reply for an already-answered attempt
				}
			}
		}
	}
}

// call sends m (with a fresh correlation id per attempt) and resends until
// a reply arrives.
func (c *Client) call(kind msgKind, tc base.TCID, lsn base.LSN, body []byte) *message {
	resend := c.net.cfg.resendAfter()
	attempt := 0
	for {
		id := c.nextID.Add(1)
		ch := make(chan *message, 1)
		c.mu.Lock()
		c.waiters[id] = ch
		c.mu.Unlock()
		c.net.deliver(c.out, &message{kind: kind, id: id, tc: tc, lsn: lsn, body: body})
		if attempt > 0 {
			c.net.resends.Add(1)
		}
		timer := time.NewTimer(resend)
		select {
		case reply := <-ch:
			timer.Stop()
			c.mu.Lock()
			delete(c.waiters, id)
			c.mu.Unlock()
			return reply
		case <-timer.C:
			c.mu.Lock()
			delete(c.waiters, id)
			c.mu.Unlock()
			attempt++
			// Exponential-ish backoff, capped: persistent resend per §4.2.
			if attempt > 4 && resend < time.Second {
				resend *= 2
			}
		case <-c.in.close:
			timer.Stop()
			return &message{kind: msgReply, err: "wire: client closed"}
		}
	}
}

// Perform implements base.Service. It blocks, resending, until the DC
// acknowledges — exactly-once courtesy of unique request IDs (op.LSN) and
// DC idempotence.
func (c *Client) Perform(op *base.Op) *base.Result {
	body := base.AppendOp(nil, op)
	for {
		reply := c.call(msgPerform, op.TC, op.LSN, body)
		if reply.err != "" {
			return &base.Result{LSN: op.LSN, Code: base.CodeUnavailable}
		}
		res, _, err := base.DecodeResult(reply.body)
		if err != nil {
			return &base.Result{LSN: op.LSN, Code: base.CodeBadRequest}
		}
		if res.Code == base.CodeUnavailable {
			// DC up but still recovering; retry after a pause.
			time.Sleep(c.net.cfg.resendAfter())
			continue
		}
		return res
	}
}

// EndOfStableLog implements base.Service as fire-and-forget; the TC
// re-broadcasts the watermark periodically, so loss only delays pruning.
func (c *Client) EndOfStableLog(tc base.TCID, eosl base.LSN) {
	c.net.deliver(c.out, &message{kind: msgEOSL, tc: tc, lsn: eosl})
}

// LowWaterMark implements base.Service as fire-and-forget.
func (c *Client) LowWaterMark(tc base.TCID, lwm base.LSN) {
	c.net.deliver(c.out, &message{kind: msgLWM, tc: tc, lsn: lwm})
}

// Checkpoint implements base.Service with resend until acknowledged.
func (c *Client) Checkpoint(tc base.TCID, newRSSP base.LSN) error {
	return c.controlErr(c.call(msgCheckpoint, tc, newRSSP, nil))
}

// BeginRestart implements base.Service with resend until acknowledged.
func (c *Client) BeginRestart(tc base.TCID, stableLSN base.LSN) error {
	return c.controlErr(c.call(msgBeginRestart, tc, stableLSN, nil))
}

// EndRestart implements base.Service with resend until acknowledged.
func (c *Client) EndRestart(tc base.TCID) error {
	return c.controlErr(c.call(msgEndRestart, tc, 0, nil))
}

func (c *Client) controlErr(reply *message) error {
	if reply.err != "" {
		return fmt.Errorf("wire: %s", reply.err)
	}
	return nil
}
