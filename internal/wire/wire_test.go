package wire

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/cidr09/unbundled/internal/base"
)

// echoService is a minimal base.Service that records idempotence-relevant
// state: each LSN is applied once; duplicates are reported via Applied.
type echoService struct {
	mu       sync.Mutex
	applied  map[base.LSN]int
	eosl     base.LSN
	lwm      base.LSN
	safe     base.TS
	horizon  base.TS
	ckpts    []base.LSN
	restarts []base.Epoch
	unavail  atomic.Bool
}

func newEchoService() *echoService {
	return &echoService{applied: make(map[base.LSN]int)}
}

func (s *echoService) Perform(ctx context.Context, op *base.Op) *base.Result {
	if s.unavail.Load() {
		return &base.Result{LSN: op.LSN, Code: base.CodeUnavailable}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applied[op.LSN]++
	return &base.Result{LSN: op.LSN, Code: base.CodeOK, Found: true,
		Value: []byte(op.Key), Applied: s.applied[op.LSN] > 1}
}

func (s *echoService) PerformBatch(ctx context.Context, ops []*base.Op) []*base.Result {
	out := make([]*base.Result, len(ops))
	for i, op := range ops {
		out[i] = s.Perform(context.Background(), op)
	}
	return out
}

func (s *echoService) EndOfStableLog(tc base.TCID, epoch base.Epoch, eosl base.LSN) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if eosl > s.eosl {
		s.eosl = eosl
	}
}

func (s *echoService) SafeTS(tc base.TCID, epoch base.Epoch, safe base.TS, horizon base.TS) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if safe > s.safe {
		s.safe = safe
	}
	if horizon > s.horizon {
		s.horizon = horizon
	}
}

func (s *echoService) LowWaterMark(tc base.TCID, epoch base.Epoch, lwm base.LSN) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if lwm > s.lwm {
		s.lwm = lwm
	}
}

func (s *echoService) Checkpoint(ctx context.Context, tc base.TCID, epoch base.Epoch, newRSSP base.LSN) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ckpts = append(s.ckpts, newRSSP)
	return nil
}

func (s *echoService) BeginRestart(ctx context.Context, tc base.TCID, epoch base.Epoch, stableLSN base.LSN) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.restarts = append(s.restarts, epoch)
	return nil
}

func (s *echoService) EndRestart(ctx context.Context, tc base.TCID, epoch base.Epoch) error {
	return nil
}

func TestPerformPerfectNetwork(t *testing.T) {
	n := NewNetwork(Config{})
	svc := newEchoService()
	cl, srv := n.Connect(svc)
	defer cl.Close()
	defer srv.Close()

	res := cl.Perform(context.Background(), &base.Op{TC: 1, LSN: 7, Kind: base.OpRead, Table: "t", Key: "k"})
	if res.Code != base.CodeOK || string(res.Value) != "k" || res.LSN != 7 {
		t.Fatalf("res = %+v", res)
	}
}

func TestPerformLossyNetworkExactlyOnceEffect(t *testing.T) {
	n := NewNetwork(Config{LossProb: 0.3, DupProb: 0.2, Jitter: 500 * time.Microsecond,
		ResendAfter: 2 * time.Millisecond, Seed: 42})
	svc := newEchoService()
	cl, srv := n.Connect(svc)
	defer cl.Close()
	defer srv.Close()

	const ops = 200
	var wg sync.WaitGroup
	for i := 1; i <= ops; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := cl.Perform(context.Background(), &base.Op{TC: 1, LSN: base.LSN(i), Kind: base.OpUpsert,
				Table: "t", Key: fmt.Sprintf("k%d", i)})
			if res.Code != base.CodeOK {
				t.Errorf("op %d failed: %+v", i, res)
			}
		}(i)
	}
	wg.Wait()
	// Every LSN was applied at least once (the server does not dedupe in
	// this mock — the real DC does; here we just assert delivery).
	svc.mu.Lock()
	defer svc.mu.Unlock()
	for i := 1; i <= ops; i++ {
		if svc.applied[base.LSN(i)] == 0 {
			t.Fatalf("op %d never delivered", i)
		}
	}
	if n.Stats().Resends == 0 {
		t.Fatal("expected resends on a lossy network")
	}
}

func TestControlMessages(t *testing.T) {
	n := NewNetwork(Config{LossProb: 0.2, ResendAfter: 2 * time.Millisecond, Seed: 9})
	svc := newEchoService()
	cl, srv := n.Connect(svc)
	defer cl.Close()
	defer srv.Close()

	if err := cl.Checkpoint(context.Background(), 1, 3, 55); err != nil {
		t.Fatal(err)
	}
	svc.mu.Lock()
	ok := len(svc.ckpts) >= 1 && svc.ckpts[0] == 55
	svc.mu.Unlock()
	if !ok {
		t.Fatalf("checkpoint not delivered: %v", svc.ckpts)
	}
	if err := cl.BeginRestart(context.Background(), 1, 4, 10); err != nil {
		t.Fatal(err)
	}
	// The incarnation epoch must survive the trip (it is the DC-side fence).
	svc.mu.Lock()
	gotEpoch := len(svc.restarts) >= 1 && svc.restarts[0] == 4
	svc.mu.Unlock()
	if !gotEpoch {
		t.Fatalf("begin-restart epoch not delivered: %v", svc.restarts)
	}
	if err := cl.EndRestart(context.Background(), 1, 4); err != nil {
		t.Fatal(err)
	}
}

func TestEOSLAndLWMEventuallyArrive(t *testing.T) {
	n := NewNetwork(Config{LossProb: 0.5, Seed: 3})
	svc := newEchoService()
	cl, srv := n.Connect(svc)
	defer cl.Close()
	defer srv.Close()

	// Fire-and-forget with periodic re-broadcast (as the TC does).
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		cl.EndOfStableLog(1, 1, 99)
		cl.LowWaterMark(1, 1, 88)
		cl.SafeTS(1, 1, 77, 66)
		time.Sleep(time.Millisecond)
		svc.mu.Lock()
		got := svc.eosl == 99 && svc.lwm == 88 && svc.safe == 77 && svc.horizon == 66
		svc.mu.Unlock()
		if got {
			return
		}
	}
	t.Fatal("watermarks never arrived despite re-broadcast")
}

func TestServerDownThenUp(t *testing.T) {
	n := NewNetwork(Config{ResendAfter: 2 * time.Millisecond})
	svc := newEchoService()
	cl, srv := n.Connect(svc)
	defer cl.Close()
	defer srv.Close()

	srv.SetDown(true)
	done := make(chan *base.Result, 1)
	go func() {
		done <- cl.Perform(context.Background(), &base.Op{TC: 1, LSN: 1, Kind: base.OpRead, Table: "t", Key: "k"})
	}()
	select {
	case <-done:
		t.Fatal("Perform returned while server down")
	case <-time.After(30 * time.Millisecond):
	}
	srv.SetDown(false)
	select {
	case res := <-done:
		if res.Code != base.CodeOK {
			t.Fatalf("res = %+v", res)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Perform never completed after server recovered")
	}
}

func TestUnavailableRetries(t *testing.T) {
	n := NewNetwork(Config{ResendAfter: time.Millisecond})
	svc := newEchoService()
	svc.unavail.Store(true)
	cl, srv := n.Connect(svc)
	defer cl.Close()
	defer srv.Close()

	done := make(chan *base.Result, 1)
	go func() {
		done <- cl.Perform(context.Background(), &base.Op{TC: 1, LSN: 5, Kind: base.OpRead, Table: "t", Key: "k"})
	}()
	time.Sleep(10 * time.Millisecond)
	svc.unavail.Store(false)
	select {
	case res := <-done:
		if res.Code != base.CodeOK {
			t.Fatalf("res = %+v", res)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("never recovered from unavailable")
	}
}

func TestClientCloseUnblocksPerform(t *testing.T) {
	n := NewNetwork(Config{ResendAfter: 5 * time.Millisecond})
	svc := newEchoService()
	cl, srv := n.Connect(svc)
	defer srv.Close()
	srv.SetDown(true)

	done := make(chan *base.Result, 1)
	go func() {
		done <- cl.Perform(context.Background(), &base.Op{TC: 1, LSN: 1, Kind: base.OpRead, Table: "t", Key: "k"})
	}()
	time.Sleep(10 * time.Millisecond)
	cl.Close()
	select {
	case res := <-done:
		if res.Code != base.CodeUnavailable {
			t.Fatalf("res = %+v", res)
		}
	case <-time.After(time.Second):
		t.Fatal("Perform hung after client close")
	}
}

func TestPerformBatchRoundTrip(t *testing.T) {
	n := NewNetwork(Config{})
	svc := newEchoService()
	cl, srv := n.Connect(svc)
	defer cl.Close()
	defer srv.Close()

	ops := []*base.Op{
		{TC: 1, LSN: 10, Kind: base.OpUpsert, Table: "t", Key: "a"},
		{TC: 1, LSN: 11, Kind: base.OpUpsert, Table: "t", Key: "b"},
		{TC: 1, LSN: 12, Kind: base.OpUpsert, Table: "t", Key: "c"},
	}
	rs := cl.PerformBatch(context.Background(), ops)
	if len(rs) != len(ops) {
		t.Fatalf("got %d results for %d ops", len(rs), len(ops))
	}
	for i, r := range rs {
		if r.Code != base.CodeOK || r.LSN != ops[i].LSN || string(r.Value) != ops[i].Key {
			t.Fatalf("result %d = %+v for op %+v", i, r, ops[i])
		}
	}
}

func TestPerformBatchLossyNetwork(t *testing.T) {
	n := NewNetwork(Config{LossProb: 0.3, DupProb: 0.2, Jitter: 300 * time.Microsecond,
		ResendAfter: 2 * time.Millisecond, Seed: 11})
	svc := newEchoService()
	cl, srv := n.Connect(svc)
	defer cl.Close()
	defer srv.Close()

	var wg sync.WaitGroup
	for b := 0; b < 20; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			ops := make([]*base.Op, 10)
			for i := range ops {
				ops[i] = &base.Op{TC: 1, LSN: base.LSN(b*10 + i + 1),
					Kind: base.OpUpsert, Table: "t", Key: fmt.Sprintf("k%d-%d", b, i)}
			}
			rs := cl.PerformBatch(context.Background(), ops)
			for i, r := range rs {
				if r.Code != base.CodeOK || r.LSN != ops[i].LSN {
					t.Errorf("batch %d result %d = %+v", b, i, r)
				}
			}
		}(b)
	}
	wg.Wait()
	svc.mu.Lock()
	defer svc.mu.Unlock()
	for i := 1; i <= 200; i++ {
		if svc.applied[base.LSN(i)] == 0 {
			t.Fatalf("batched op %d never delivered", i)
		}
	}
}

func TestClientCloseDuringResendUnblocksPerform(t *testing.T) {
	// Close while the call is parked in the resend loop against a dead
	// server: the documented "fail outstanding calls" contract.
	n := NewNetwork(Config{ResendAfter: 5 * time.Millisecond})
	svc := newEchoService()
	cl, srv := n.Connect(svc)
	defer srv.Close()
	srv.SetDown(true)

	done := make(chan *base.Result, 2)
	go func() {
		done <- cl.Perform(context.Background(), &base.Op{TC: 1, LSN: 1, Kind: base.OpUpsert, Table: "t", Key: "k"})
	}()
	go func() {
		rs := cl.PerformBatch(context.Background(), []*base.Op{
			{TC: 1, LSN: 2, Kind: base.OpUpsert, Table: "t", Key: "a"},
			{TC: 1, LSN: 3, Kind: base.OpUpsert, Table: "t", Key: "b"},
		})
		done <- rs[0]
	}()
	time.Sleep(12 * time.Millisecond) // let both enter the resend loop
	cl.Close()
	for i := 0; i < 2; i++ {
		select {
		case res := <-done:
			if res.Code != base.CodeUnavailable {
				t.Fatalf("res = %+v", res)
			}
		case <-time.After(time.Second):
			t.Fatal("call hung after client close mid-resend")
		}
	}
}

func TestClientCloseDuringUnavailableRetryUnblocks(t *testing.T) {
	// The DC answers CodeUnavailable (up but recovering), which parks
	// Perform in its retry pause; Close must cut the pause short instead
	// of letting the caller sleep through another resend interval.
	n := NewNetwork(Config{ResendAfter: 500 * time.Millisecond})
	svc := newEchoService()
	svc.unavail.Store(true)
	cl, srv := n.Connect(svc)
	defer srv.Close()

	done := make(chan *base.Result, 1)
	go func() {
		done <- cl.Perform(context.Background(), &base.Op{TC: 1, LSN: 5, Kind: base.OpUpsert, Table: "t", Key: "k"})
	}()
	time.Sleep(20 * time.Millisecond) // reply with Unavailable arrives; retry pause begins
	start := time.Now()
	cl.Close()
	select {
	case res := <-done:
		if res.Code != base.CodeUnavailable {
			t.Fatalf("res = %+v", res)
		}
		if time.Since(start) > 250*time.Millisecond {
			t.Fatalf("close did not cut the retry pause short: %v", time.Since(start))
		}
	case <-time.After(time.Second):
		t.Fatal("Perform hung in unavailable-retry after client close")
	}
}

// fencingService nacks every Perform with CodeStaleEpoch and fails
// control calls with a wrapped base.ErrStaleEpoch, mimicking a DC whose
// fence has moved past the caller's incarnation.
type fencingService struct{ echoService }

func (s *fencingService) Perform(ctx context.Context, op *base.Op) *base.Result {
	return &base.Result{LSN: op.LSN, Code: base.CodeStaleEpoch}
}

func (s *fencingService) PerformBatch(ctx context.Context, ops []*base.Op) []*base.Result {
	out := make([]*base.Result, len(ops))
	for i, op := range ops {
		out[i] = s.Perform(context.Background(), op)
	}
	return out
}

func (s *fencingService) Checkpoint(ctx context.Context, tc base.TCID, epoch base.Epoch, newRSSP base.LSN) error {
	return fmt.Errorf("dc x: epoch %d fenced: %w", epoch, base.ErrStaleEpoch)
}

func TestStaleEpochIsPermanentNack(t *testing.T) {
	// Unlike CodeUnavailable, a stale-epoch reply must come straight back —
	// no resend pause, no retry loop (epochs only move forward).
	n := NewNetwork(Config{ResendAfter: time.Second})
	svc := &fencingService{}
	svc.applied = make(map[base.LSN]int)
	cl, srv := n.Connect(svc)
	defer cl.Close()
	defer srv.Close()

	start := time.Now()
	res := cl.Perform(context.Background(), &base.Op{TC: 1, Epoch: 1, LSN: 7, Kind: base.OpUpsert, Table: "t", Key: "k"})
	if res.Code != base.CodeStaleEpoch {
		t.Fatalf("res = %+v", res)
	}
	rs := cl.PerformBatch(context.Background(), []*base.Op{
		{TC: 1, Epoch: 1, LSN: 8, Kind: base.OpUpsert, Table: "t", Key: "a"},
		{TC: 1, Epoch: 1, LSN: 9, Kind: base.OpUpsert, Table: "t", Key: "b"},
	})
	for i, r := range rs {
		if r.Code != base.CodeStaleEpoch {
			t.Fatalf("batch result %d = %+v", i, r)
		}
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("stale-epoch nack was retried (%v elapsed)", elapsed)
	}

	// Typed control errors survive the string crossing: errors.Is works
	// through the stub.
	if err := cl.Checkpoint(context.Background(), 1, 1, 10); !base.IsStaleEpoch(err) {
		t.Fatalf("checkpoint error not rehydrated as stale-epoch: %v", err)
	}
}

func TestDelayIsApplied(t *testing.T) {
	n := NewNetwork(Config{Delay: 5 * time.Millisecond})
	svc := newEchoService()
	cl, srv := n.Connect(svc)
	defer cl.Close()
	defer srv.Close()

	start := time.Now()
	cl.Perform(context.Background(), &base.Op{TC: 1, LSN: 1, Kind: base.OpRead, Table: "t", Key: "k"})
	if rtt := time.Since(start); rtt < 10*time.Millisecond {
		t.Fatalf("round trip %v < 2x one-way delay", rtt)
	}
}

func BenchmarkPerformRoundTrip(b *testing.B) {
	for _, cfg := range []struct {
		name string
		c    Config
	}{
		{"perfect", Config{}},
		{"delay100us", Config{Delay: 100 * time.Microsecond}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			n := NewNetwork(cfg.c)
			svc := newEchoService()
			cl, srv := n.Connect(svc)
			defer cl.Close()
			defer srv.Close()
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					i++
					cl.Perform(context.Background(), &base.Op{TC: 1, LSN: base.LSN(i), Kind: base.OpRead, Table: "t", Key: "k"})
				}
			})
		})
	}
}

// checkNoGoroutineLeak polls until the goroutine count returns to within
// slack of the baseline (wire pumps the caller still owns are accounted
// for by taking the baseline after Connect).
func checkNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), baseline)
}

// TestCancelDuringUnavailableRetry: a Perform parked in the unavailable-
// retry pause returns promptly with CodeCancelled when the caller's
// context is cancelled, without tearing down the client, and leaks no
// goroutines.
func TestCancelDuringUnavailableRetry(t *testing.T) {
	n := NewNetwork(Config{ResendAfter: 500 * time.Millisecond})
	svc := newEchoService()
	svc.unavail.Store(true)
	cl, srv := n.Connect(svc)
	defer cl.Close()
	defer srv.Close()
	time.Sleep(10 * time.Millisecond) // pumps up
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *base.Result, 1)
	go func() {
		done <- cl.Perform(ctx, &base.Op{TC: 1, LSN: 5, Kind: base.OpRead, Table: "t", Key: "k"})
	}()
	time.Sleep(20 * time.Millisecond) // Unavailable reply arrives; pause begins
	start := time.Now()
	cancel()
	select {
	case res := <-done:
		if res.Code != base.CodeCancelled {
			t.Fatalf("res = %+v", res)
		}
		if err := res.Err(); !errors.Is(err, base.ErrCancelled) {
			t.Fatalf("result error %v does not match ErrCancelled", err)
		}
		if time.Since(start) > 250*time.Millisecond {
			t.Fatalf("cancel did not cut the retry pause short: %v", time.Since(start))
		}
	case <-time.After(time.Second):
		t.Fatal("Perform hung in unavailable-retry after cancellation")
	}
	// The client stays usable for other contexts.
	svc.unavail.Store(false)
	if res := cl.Perform(context.Background(), &base.Op{TC: 1, LSN: 6, Kind: base.OpRead, Table: "t", Key: "k"}); res.Code != base.CodeOK {
		t.Fatalf("client unusable after a cancelled call: %+v", res)
	}
	checkNoGoroutineLeak(t, baseline)
}

// TestCancelDuringResendLoop: cancellation also unblocks a call that is
// resending into a void (server down, no replies at all).
func TestCancelDuringResendLoop(t *testing.T) {
	n := NewNetwork(Config{ResendAfter: 50 * time.Millisecond})
	svc := newEchoService()
	cl, srv := n.Connect(svc)
	defer cl.Close()
	defer srv.Close()
	srv.SetDown(true)
	time.Sleep(10 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	res := cl.Perform(ctx, &base.Op{TC: 1, LSN: 9, Kind: base.OpRead, Table: "t", Key: "k"})
	if res.Code != base.CodeCancelled {
		t.Fatalf("res = %+v", res)
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Fatalf("cancelled resend loop took %v", el)
	}
	// Batches too.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel2()
	rs := cl.PerformBatch(ctx2, []*base.Op{
		{TC: 1, LSN: 10, Kind: base.OpUpsert, Table: "t", Key: "a"},
		{TC: 1, LSN: 11, Kind: base.OpUpsert, Table: "t", Key: "b"},
	})
	for _, r := range rs {
		if r.Code != base.CodeCancelled {
			t.Fatalf("batch result = %+v", r)
		}
	}
	checkNoGoroutineLeak(t, baseline)
}

// TestCancelControlCall: a control call abandoned by cancellation returns
// the typed taxonomy error wrapping the context error.
func TestCancelControlCall(t *testing.T) {
	n := NewNetwork(Config{ResendAfter: 50 * time.Millisecond})
	svc := newEchoService()
	cl, srv := n.Connect(svc)
	defer cl.Close()
	defer srv.Close()
	srv.SetDown(true)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	err := cl.Checkpoint(ctx, 1, 1, 10)
	if !errors.Is(err, base.ErrCancelled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("control error %v does not carry ErrCancelled + DeadlineExceeded", err)
	}
}

// TestClosedClientErrorIsTyped: a closed stub's control failure folds into
// ErrUnavailable (rehydrated from the reply string), so retry policies
// classify it as transient.
func TestClosedClientErrorIsTyped(t *testing.T) {
	n := NewNetwork(Config{})
	svc := newEchoService()
	cl, srv := n.Connect(svc)
	defer srv.Close()
	cl.Close()
	err := cl.Checkpoint(context.Background(), 1, 1, 10)
	if !errors.Is(err, base.ErrUnavailable) {
		t.Fatalf("closed-client control error %v does not match ErrUnavailable", err)
	}
	if !base.IsTransient(err) {
		t.Fatal("closed-client error must classify as transient")
	}
}
