package wire

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/cidr09/unbundled/internal/base"
)

// catalogedService wraps echoService with the Cataloger facet the DC
// exposes through Tables.
type catalogedService struct {
	*echoService
	tables []string
}

func (s *catalogedService) Tables() []string { return s.tables }

func TestCatalogSimulatedNetwork(t *testing.T) {
	n := NewNetwork(Config{})
	svc := &catalogedService{echoService: newEchoService(), tables: []string{"kv", "users"}}
	cl, srv := n.Connect(svc)
	defer cl.Close()
	defer srv.Close()

	got, err := cl.Catalog(context.Background())
	if err != nil {
		t.Fatalf("Catalog: %v", err)
	}
	if !reflect.DeepEqual(got, []string{"kv", "users"}) {
		t.Fatalf("Catalog = %v, want [kv users]", got)
	}
}

func TestCatalogLossyNetwork(t *testing.T) {
	n := NewNetwork(Config{LossProb: 0.3, Seed: 7})
	svc := &catalogedService{echoService: newEchoService(), tables: []string{"kv"}}
	cl, srv := n.Connect(svc)
	defer cl.Close()
	defer srv.Close()

	got, err := cl.Catalog(context.Background())
	if err != nil {
		t.Fatalf("Catalog over lossy network: %v", err)
	}
	if len(got) != 1 || got[0] != "kv" {
		t.Fatalf("Catalog = %v, want [kv]", got)
	}
}

func TestCatalogUncatalogedServiceFailsTyped(t *testing.T) {
	n := NewNetwork(Config{})
	cl, srv := n.Connect(newEchoService()) // no Tables facet
	defer cl.Close()
	defer srv.Close()

	_, err := cl.Catalog(context.Background())
	if !errors.Is(err, base.ErrUnavailable) {
		t.Fatalf("Catalog on uncataloged service: err = %v, want ErrUnavailable", err)
	}
}

func TestCatalogTCP(t *testing.T) {
	svc := &catalogedService{echoService: newEchoService(), tables: []string{"a", "b", "c"}}
	l, err := Listen("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cl := Dial(l.Addr(), DialConfig{})
	defer cl.Close()

	got, err := cl.Catalog(context.Background())
	if err != nil {
		t.Fatalf("Catalog over TCP: %v", err)
	}
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Catalog = %v, want [a b c]", got)
	}
}

func TestCatalogEmpty(t *testing.T) {
	svc := &catalogedService{echoService: newEchoService()} // zero tables
	n := NewNetwork(Config{})
	cl, srv := n.Connect(svc)
	defer cl.Close()
	defer srv.Close()

	got, err := cl.Catalog(context.Background())
	if err != nil {
		t.Fatalf("Catalog: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("Catalog = %v, want empty", got)
	}
}
