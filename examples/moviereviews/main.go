// Movie reviews: the Figure-2 / §6.3 cloud scenario end to end.
//
// Two updating TCs own disjoint user partitions (UId mod 2); a third TC
// serves movie-review reads as timestamp snapshots over versioned data.
// Movies and Reviews cluster by movie across DC0/DC1; Users and
// MyReviews cluster by user on DC2. Adding a review (W2) touches two DCs
// but stays a LOCAL transaction at the owner TC — no two-phase commit —
// and readers are never blocked by in-flight updates: a snapshot read
// takes no locks and sends nothing through its TC.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/cidr09/unbundled"
	"github.com/cidr09/unbundled/internal/workload"
)

func main() {
	// The placement declares Figure 2's whole deployment map — data
	// clustering AND the §6.1 update-ownership partition the TCs enforce:
	//   movies: dc=mod(2) owner=1; reviews: dc=mod(2) owner=mod2(2);
	//   users: dc=mod(2-2) owner=mod(2); myreviews: dc=mod(2-2) owner=mod(2)
	p := workload.MoviePlacement{MovieDCs: 2, UserDCs: 1, Movies: 10, Users: 10}
	dep, err := unbundled.Open(unbundled.Options{
		TCs: 3, DCs: 3,
		Placement: p.Placement(2),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	ctx := context.Background()
	client := dep.Client()
	// TC pins (1-based TC IDs): the updating TCs own disjoint user
	// partitions, the reader TC serves W1/W4-style reads. ReadOnly makes
	// every read a timestamp snapshot: lock-free, answered straight by
	// the DCs at the transaction's read timestamp.
	tc1 := unbundled.TxnOptions{TC: 1}
	tc1v := unbundled.TxnOptions{TC: 1, Versioned: true}
	tc2v := unbundled.TxnOptions{TC: 2, Versioned: true}
	reader := unbundled.TxnOptions{TC: 3, ReadOnly: true}

	// Seed a movie and two users (one per updating TC).
	must(client.RunTxn(ctx, tc1, func(x *unbundled.Txn) error {
		return x.Insert(workload.TableMovies, workload.MovieKey(1), []byte("The Kernel"))
	}))
	must(client.RunTxn(ctx, tc1v, func(x *unbundled.Txn) error {
		return x.Insert(workload.TableUsers, workload.UserKey(2), []byte("user-2 (even: TC1)"))
	}))
	must(client.RunTxn(ctx, tc2v, func(x *unbundled.Txn) error {
		return x.Insert(workload.TableUsers, workload.UserKey(3), []byte("user-3 (odd: TC2)"))
	}))

	// W2 at TC1: user 2 reviews movie 1 — Reviews row on a movie DC,
	// MyReviews row on the user DC, one local transaction.
	must(client.RunTxn(ctx, tc1v, func(x *unbundled.Txn) error {
		review := []byte("5 stars, very well-formed B-trees")
		if err := x.Insert(workload.TableReviews, workload.ReviewKey(1, 2), review); err != nil {
			return err
		}
		return x.Insert(workload.TableMyReviews, workload.MyReviewKey(2, 1), review)
	}))
	fmt.Println("W2: user 2 reviewed movie 1 (one txn, two DCs, zero 2PC)")

	// Leave an UNCOMMITTED review from user 3 in flight at TC2.
	inflight, err := client.Begin(ctx, tc2v)
	must(err)
	must(inflight.Insert(workload.TableReviews, workload.ReviewKey(1, 3),
		[]byte("draft: 1 star, pages too small")))

	// W1 at the reader TC: a snapshot scan sees committed reviews only —
	// the draft is invisible, and the read never blocks on TC2's
	// in-flight write (no locks, no TC round trip).
	must(client.RunTxn(ctx, reader, func(x *unbundled.Txn) error {
		prefix := workload.MovieKey(1) + "/"
		keys, vals, err := x.Scan(workload.TableReviews, prefix, prefix+"~", 0)
		if err != nil {
			return err
		}
		fmt.Printf("W1: movie 1 has %d committed review(s):\n", len(keys))
		for i := range keys {
			fmt.Printf("    %s -> %s\n", keys[i], vals[i])
		}
		if len(keys) != 1 {
			return fmt.Errorf("draft review leaked to a committed reader")
		}
		return nil
	}))

	// The dirty-read flavor CAN see the draft (§6.2.1) — sometimes useful.
	must(client.RunTxn(ctx, reader, func(x *unbundled.Txn) error {
		v, ok, err := x.ReadDirty(workload.TableReviews, workload.ReviewKey(1, 3))
		if err != nil {
			return err
		}
		fmt.Printf("dirty read of the draft: found=%v %q\n", ok, v)
		return nil
	}))

	// TC2 commits; a fresh snapshot taken afterwards sees the review —
	// Client.Snapshot is the multi-read convenience view.
	must(inflight.Commit())
	snap, err := client.Snapshot(ctx)
	must(err)
	prefix := workload.MovieKey(1) + "/"
	keys, _, err := snap.Scan(workload.TableReviews, prefix, prefix+"~", 0)
	must(err)
	fmt.Printf("after TC2 commit: %d committed reviews (snapshot @%d)\n", len(keys), snap.TS())
	must(snap.Close())

	// W4 at TC1: user 2's own reviews from the clustered MyReviews copy.
	must(client.RunTxn(ctx, tc1, func(x *unbundled.Txn) error {
		prefix := workload.UserKey(2) + "/"
		keys, _, err := x.Scan(workload.TableMyReviews, prefix, prefix+"~", 0)
		if err != nil {
			return err
		}
		fmt.Printf("W4: user 2 wrote %d review(s)\n", len(keys))
		return nil
	}))

	// Crash TC1; TC2 and the reader are unaffected (targeted page reset).
	dep.CrashTC(0)
	must(dep.RecoverTC(0))
	must(client.RunTxn(ctx, reader, func(x *unbundled.Txn) error {
		prefix := workload.MovieKey(1) + "/"
		keys, _, err := x.Scan(workload.TableReviews, prefix, prefix+"~", 0)
		if err != nil {
			return err
		}
		fmt.Printf("after TC1 crash+recovery: %d committed reviews still present\n", len(keys))
		if len(keys) != 2 {
			return fmt.Errorf("committed reviews lost in TC1 crash")
		}
		return nil
	}))
	fmt.Println("ok: Figure-2 scenario holds — no distributed transactions anywhere")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
