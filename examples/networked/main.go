// Example networked: the TC:DC split over real TCP in one runnable file.
// A DC is served on a loopback socket (the role cmd/unbundled-dc plays as
// its own process), a deployment dials it with Options.DCAddrs, and the
// "process kill" is played by closing the listener — Listener.Close
// drains in-flight requests, so afterwards the abandoned DC object is
// quiescent forever and only its data directory matters, exactly what a
// kill between requests leaves behind. A second DC incarnation reopens
// the directory on the same address; the deployment reconnects and
// replays the redo stream by itself, and every committed write is still
// there.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/cidr09/unbundled/internal/core"
	"github.com/cidr09/unbundled/internal/dc"
	"github.com/cidr09/unbundled/internal/tc"
	"github.com/cidr09/unbundled/internal/wire"
)

func main() {
	dir, err := os.MkdirTemp("", "unbundled-networked-*")
	check(err)
	defer os.RemoveAll(dir)

	startDC := func(addr string) *wire.Listener {
		d, err := dc.New(dc.Config{Name: "net-dc", Dir: dir})
		check(err)
		check(d.CreateTable("kv"))
		l, err := wire.Listen(addr, d)
		check(err)
		return l
	}

	l1 := startDC("127.0.0.1:0")
	fmt.Printf("DC serving on %s, stable media in %s\n", l1.Addr(), dir)

	dep, err := core.New(core.Options{
		DCAddrs:    []string{l1.Addr()},
		DialConfig: wire.DialConfig{ResendAfter: 5 * time.Millisecond, RedialBackoff: 2 * time.Millisecond},
	})
	check(err)
	defer dep.Close()
	ctx := context.Background()
	check(dep.WaitConnected(ctx))
	client := dep.Client()

	put := func(i int) error {
		return client.RunTxn(ctx, core.TxnOptions{}, func(x *tc.Txn) error {
			return x.Upsert("kv", fmt.Sprintf("key-%03d", i), []byte(fmt.Sprintf("val-%d", i)))
		})
	}
	const n = 100
	for i := 0; i < n/2; i++ {
		check(put(i))
	}
	fmt.Printf("committed %d transactions over TCP\n", n/2)

	// "kill -9": the listener vanishes mid-deployment; the DC object is
	// abandoned with whatever its cache held.
	addr := l1.Addr()
	l1.Close()
	fmt.Println("DC killed; writes now stall on resend...")

	done := make(chan error, 1)
	go func() {
		for i := n / 2; i < n; i++ {
			if err := put(i); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	time.Sleep(30 * time.Millisecond) // let the outage bite

	l2 := startDC(addr) // restart on the same address and data dir
	defer l2.Close()
	check(<-done)
	fmt.Println("DC restarted; stalled writes landed after automatic redo replay")

	check(client.RunTxn(ctx, core.TxnOptions{}, func(x *tc.Txn) error {
		for i := 0; i < n; i++ {
			v, ok, err := x.Read("kv", fmt.Sprintf("key-%03d", i))
			if err != nil {
				return err
			}
			if !ok || string(v) != fmt.Sprintf("val-%d", i) {
				return fmt.Errorf("key-%03d lost across the kill (found=%v)", i, ok)
			}
		}
		return nil
	}))
	ws := dep.RemoteWireStats()
	fmt.Printf("all %d committed writes intact (wire: %d calls, %d resends, %d reconnects)\n",
		n, ws.Calls, ws.Resends, ws.Reconnects)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "networked:", err)
		os.Exit(1)
	}
}
