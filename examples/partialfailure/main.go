// Partial failure: a tour of §5.3. In a monolithic kernel, "log and cache
// manager fail together"; unbundling makes partial failures possible and
// this example shows both directions:
//
//   - DC failure: the DC loses its cache; after DC-log recovery rebuilds
//     well-formed structures, the TC resends from its redo scan start
//     point and nothing is lost.
//   - TC failure: the TC loses its unforced log tail; the DC resets
//     exactly the cached pages whose abstract LSNs include lost
//     operations (not the whole cache), and the restarted TC redoes and
//     undoes as needed.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/cidr09/unbundled"
)

func main() {
	dep, err := unbundled.Open(unbundled.Options{
		TCs: 1, DCs: 1, Tables: []string{"kv"},
		DCConfig: func(int) unbundled.DCConfig {
			return unbundled.DCConfig{PageBytes: 1024}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	ctx := context.Background()
	client := dep.Client()

	// Committed base data, checkpointed so it is stable at the DC.
	for i := 0; i < 200; i++ {
		must(client.RunTxn(ctx, unbundled.TxnOptions{}, func(x *unbundled.Txn) error {
			return x.Upsert("kv", fmt.Sprintf("key%04d", i), []byte("stable"))
		}))
	}
	if _, err := dep.TCs[0].Checkpoint(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("seeded 200 keys, checkpointed (contract below RSSP released)")

	// --- DC failure -----------------------------------------------------
	for i := 0; i < 50; i++ {
		must(client.RunTxn(ctx, unbundled.TxnOptions{}, func(x *unbundled.Txn) error {
			return x.Upsert("kv", fmt.Sprintf("key%04d", i), []byte("post-ckpt"))
		}))
	}
	dep.CrashDC(0)
	fmt.Println("DC crashed: cache and volatile watermarks gone")
	must(dep.RecoverDC(0))
	st := dep.TCs[0].Stats()
	fmt.Printf("DC recovered: TC resent %d logical operations from its RSSP\n", st.RedoOps)
	must(client.RunTxn(ctx, unbundled.TxnOptions{}, func(x *unbundled.Txn) error {
		v, ok, err := x.Read("kv", "key0000")
		if err != nil || !ok || string(v) != "post-ckpt" {
			return fmt.Errorf("lost update after DC crash: %q %v %v", v, ok, err)
		}
		return nil
	}))

	// --- TC failure -----------------------------------------------------
	// Unforced committed... no: these updates commit (forced). Add an
	// uncommitted transaction whose operations reached the DC cache.
	ghost, err := client.Begin(ctx, unbundled.TxnOptions{})
	must(err)
	must(ghost.Update("kv", "key0001", []byte("lost-tail")))
	must(ghost.Insert("kv", "ghost-key", []byte("boo")))
	cachedBefore := dep.DCs[0].Pool().Cached()
	dep.CrashTC(0)
	fmt.Printf("TC crashed holding an uncommitted txn; DC cache has %d pages\n", cachedBefore)
	must(dep.RecoverTC(0))
	ds := dep.DCs[0].Stats()
	fmt.Printf("TC recovered: DC reset %d page(s) (targeted — not the whole cache), restored %d record(s) from disk\n",
		ds.ResetPages, ds.RestoredRecs)
	must(client.RunTxn(ctx, unbundled.TxnOptions{}, func(x *unbundled.Txn) error {
		v, _, _ := x.Read("kv", "key0001")
		if string(v) != "post-ckpt" {
			return fmt.Errorf("lost-tail update survived: %q", v)
		}
		if _, ok, _ := x.Read("kv", "ghost-key"); ok {
			return fmt.Errorf("ghost insert survived")
		}
		return nil
	}))
	fmt.Println("ok: lost operations rolled away; committed state intact")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
