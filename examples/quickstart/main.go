// Quickstart: open a one-TC/one-DC unbundled kernel, run transactions
// through the deployment client, crash both components, recover, and
// observe that committed data survived while the uncommitted transaction
// vanished.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/cidr09/unbundled"
)

func main() {
	dep, err := unbundled.Open(unbundled.Options{
		TCs: 1, DCs: 1,
		Tables: []string{"accounts"},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	ctx := context.Background()
	client := dep.Client()

	// A committed transfer.
	if err := client.RunTxn(ctx, unbundled.TxnOptions{}, func(x *unbundled.Txn) error {
		if err := x.Insert("accounts", "alice", []byte("100")); err != nil {
			return err
		}
		return x.Insert("accounts", "bob", []byte("50"))
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed: alice=100 bob=50")

	// An uncommitted scribble, alive at the DC but never durable.
	ghost, err := client.Begin(ctx, unbundled.TxnOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := ghost.Update("accounts", "alice", []byte("0")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("in flight: alice=0 (uncommitted)")

	// Both components fail, then recover: DC-log recovery first, then the
	// TC resends its logged operations and rolls back the loser.
	dep.CrashAll()
	if err := dep.RecoverAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("crashed and recovered")

	if err := client.RunTxn(ctx, unbundled.TxnOptions{}, func(x *unbundled.Txn) error {
		a, _, err := x.Read("accounts", "alice")
		if err != nil {
			return err
		}
		b, _, err := x.Read("accounts", "bob")
		if err != nil {
			return err
		}
		fmt.Printf("after recovery: alice=%s bob=%s\n", a, b)
		if string(a) != "100" {
			return fmt.Errorf("durability broken: alice=%s", a)
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("ok: committed state survived; the uncommitted update did not")
}
