// Photo share: the §2 Web-2.0 application perspective.
//
// A photo-sharing platform needs OLTP over users, photos, tags, and
// reviews, plus application-specific index structures (a phrase index for
// review text, a geo index for shapes). With an unbundled kernel the
// application composes stock record DCs with "home-grown" index DCs and
// rents transactions from a TC — here the tag and phrase indexes live on
// their own DC and are maintained transactionally with the base tables,
// giving the referential integrity the paper calls for.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"github.com/cidr09/unbundled"
)

const (
	tUsers   = "users"
	tPhotos  = "photos"
	tReviews = "reviews"
	tTagIdx  = "tagidx"    // tag -> photo postings
	tPhrase  = "phraseidx" // phrase -> review postings
)

func main() {
	// DC0: users+photos (record store); DC1: reviews; DC2: the home-grown
	// index DC holding both inverted indexes. The placement spec declares
	// the whole map — the tables come from it too — and owner=1 gives the
	// single TC exclusive update rights over everything.
	pl := unbundled.MustParsePlacement(fmt.Sprintf(
		"%s: dc=0 owner=1; %s: dc=0 owner=1; %s: dc=1 owner=1; %s: dc=2 owner=1; %s: dc=2 owner=1",
		tUsers, tPhotos, tReviews, tTagIdx, tPhrase))
	dep, err := unbundled.Open(unbundled.Options{
		TCs: 1, DCs: 3,
		Placement: pl,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	ctx := context.Background()
	client := dep.Client()

	must(client.RunTxn(ctx, unbundled.TxnOptions{}, func(x *unbundled.Txn) error {
		return x.Insert(tUsers, "ada", []byte("account: ada, quota 1GB"))
	}))

	// Upload a photo with tags: base row + index postings, one txn.
	uploadPhoto := func(photo, owner string, tags []string) error {
		return client.RunTxn(ctx, unbundled.TxnOptions{}, func(x *unbundled.Txn) error {
			if _, ok, err := x.Read(tUsers, owner); err != nil || !ok {
				return fmt.Errorf("no such user %q (referential integrity): %v", owner, err)
			}
			if err := x.Insert(tPhotos, photo, []byte("owner="+owner)); err != nil {
				return err
			}
			for _, tag := range tags {
				if err := x.Insert(tTagIdx, tag+"#"+photo, nil); err != nil {
					return err
				}
			}
			return nil
		})
	}
	must(uploadPhoto("photo-001", "ada", []string{"bridge", "goldengate", "fog"}))
	must(uploadPhoto("photo-002", "ada", []string{"bridge", "night"}))
	fmt.Println("uploaded 2 photos with tag postings (transactionally)")

	// Uploading for a missing user fails atomically: no photo row, no
	// postings — the application-level constraint held by the txn.
	if err := uploadPhoto("photo-bad", "nobody", []string{"bridge"}); err == nil {
		log.Fatal("upload for missing user should have failed")
	}
	must(client.RunTxn(ctx, unbundled.TxnOptions{}, func(x *unbundled.Txn) error {
		if _, ok, _ := x.Read(tPhotos, "photo-bad"); ok {
			return fmt.Errorf("orphan photo row leaked")
		}
		if _, ok, _ := x.Read(tTagIdx, "bridge#photo-bad"); ok {
			return fmt.Errorf("orphan posting leaked")
		}
		return nil
	}))
	fmt.Println("rejected upload for unknown user; no orphans anywhere")

	// Review with phrase indexing.
	must(client.RunTxn(ctx, unbundled.TxnOptions{}, func(x *unbundled.Txn) error {
		review := "stunning view from the north side"
		if err := x.Insert(tReviews, "photo-001/ada", []byte(review)); err != nil {
			return err
		}
		for _, phrase := range []string{"stunning view", "north side"} {
			key := strings.ReplaceAll(phrase, " ", "_") + "#photo-001/ada"
			if err := x.Insert(tPhrase, key, nil); err != nil {
				return err
			}
		}
		return nil
	}))

	// Tag query: which photos are tagged "bridge"?
	must(client.RunTxn(ctx, unbundled.TxnOptions{}, func(x *unbundled.Txn) error {
		keys, _, err := x.Scan(tTagIdx, "bridge#", "bridge#~", 0)
		if err != nil {
			return err
		}
		fmt.Printf("tag 'bridge' -> %d photos:\n", len(keys))
		for _, k := range keys {
			fmt.Printf("    %s\n", strings.TrimPrefix(k, "bridge#"))
		}
		return nil
	}))

	// Phrase query against the home-grown phrase index.
	must(client.RunTxn(ctx, unbundled.TxnOptions{}, func(x *unbundled.Txn) error {
		keys, _, err := x.Scan(tPhrase, "stunning_view#", "stunning_view#~", 0)
		if err != nil {
			return err
		}
		fmt.Printf("phrase 'stunning view' -> %d reviews\n", len(keys))
		return nil
	}))

	// The index DC fails; after recovery everything is intact because the
	// TC resends whatever the DC lost.
	dep.CrashDC(2)
	must(dep.RecoverDC(2))
	must(client.RunTxn(ctx, unbundled.TxnOptions{}, func(x *unbundled.Txn) error {
		keys, _, err := x.Scan(tTagIdx, "bridge#", "bridge#~", 0)
		if err != nil {
			return err
		}
		if len(keys) != 2 {
			return fmt.Errorf("postings lost in index DC crash: %v", keys)
		}
		return nil
	}))
	fmt.Println("index DC crashed and recovered; postings intact")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
