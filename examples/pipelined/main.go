// Pipelined operation shipping: the same multi-op write transactions over
// the same misbehaving wire (real propagation delay, loss, duplication),
// once with synchronous per-op round trips and once with pipelined
// shipping (async writes, batched messages, commit-time ack barrier) —
// then a TC crash mid-transaction to show recovery still holds.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/cidr09/unbundled"
)

func open(pipeline bool) *unbundled.Deployment {
	dep, err := unbundled.Open(unbundled.Options{
		TCs: 1, DCs: 1, Tables: []string{"kv"},
		TCConfig: func(int) unbundled.TCConfig {
			return unbundled.TCConfig{Pipeline: pipeline}
		},
		Network: &unbundled.NetworkConfig{
			Delay:    200 * time.Microsecond,
			LossProb: 0.01,
			DupProb:  0.01,
			Seed:     1,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	return dep
}

func run(pipeline bool) time.Duration {
	dep := open(pipeline)
	defer dep.Close()
	ctx := context.Background()
	client := dep.Client()
	const txns, ops = 50, 4
	start := time.Now()
	for i := 0; i < txns; i++ {
		if err := client.RunTxn(ctx, unbundled.TxnOptions{Versioned: true}, func(x *unbundled.Txn) error {
			for j := 0; j < ops; j++ {
				key := fmt.Sprintf("k%03d", (i*ops+j)%64)
				if err := x.Upsert("kv", key, []byte(fmt.Sprintf("v%d", i))); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			log.Fatal(err)
		}
	}
	return time.Since(start)
}

func main() {
	sync := run(false)
	pipe := run(true)
	fmt.Printf("50 txns x 4 writes over a 200µs lossy wire:\n")
	fmt.Printf("  synchronous shipping: %v\n", sync.Round(time.Millisecond))
	fmt.Printf("  pipelined shipping:   %v  (%.1fx faster)\n",
		pipe.Round(time.Millisecond), float64(sync)/float64(pipe))

	// Crash the TC with a pipelined transaction still uncommitted: the ack
	// barrier plus restart must keep committed data and drop the loser.
	dep := open(true)
	defer dep.Close()
	ctx := context.Background()
	client := dep.Client()
	if err := client.RunTxn(ctx, unbundled.TxnOptions{}, func(x *unbundled.Txn) error {
		return x.Insert("kv", "committed", []byte("keep"))
	}); err != nil {
		log.Fatal(err)
	}
	loser, err := client.Begin(ctx, unbundled.TxnOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := loser.Insert("kv", "ghost", []byte("drop")); err != nil {
		log.Fatal(err)
	}
	dep.CrashTC(0)
	if err := dep.RecoverTC(0); err != nil {
		log.Fatal(err)
	}
	if err := client.RunTxn(ctx, unbundled.TxnOptions{}, func(x *unbundled.Txn) error {
		if v, ok, _ := x.Read("kv", "committed"); !ok || string(v) != "keep" {
			return fmt.Errorf("committed data lost: %q %v", v, ok)
		}
		if _, ok, _ := x.Read("kv", "ghost"); ok {
			return fmt.Errorf("uncommitted pipelined write survived recovery")
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("crash mid-pipeline: committed data survived, loser rolled back")
}
